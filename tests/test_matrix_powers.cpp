// Matrix-powers kernel and the preconditioned operator: recurrence
// correctness for all three bases, distributed == sequential, and
// solver behaviour under injected network latency.

#include "krylov/matrix_powers.hpp"
#include "krylov/sstep_gmres.hpp"
#include "par/spmd.hpp"
#include "precond/jacobi.hpp"
#include "sparse/generators.hpp"
#include "sparse/spmv.hpp"
#include "util/random.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace {

using namespace tsbo;
using dense::index_t;
using dense::Matrix;

TEST(MatrixPowers, MonomialMatchesRepeatedSpmv) {
  const auto a = sparse::laplace2d_5pt(12, 12);
  const auto n = static_cast<index_t>(a.rows);
  const index_t s = 4;

  // Reference: plain repeated SpMV.
  std::vector<std::vector<double>> ref(static_cast<std::size_t>(s) + 1);
  ref[0].assign(static_cast<std::size_t>(n), 0.0);
  util::Xoshiro256 rng(3);
  util::fill_normal(rng, ref[0]);
  for (index_t k = 0; k < s; ++k) {
    ref[static_cast<std::size_t>(k) + 1].assign(static_cast<std::size_t>(n), 0.0);
    sparse::spmv(a, ref[static_cast<std::size_t>(k)], ref[static_cast<std::size_t>(k) + 1]);
  }

  par::spmd_run(1, [&](par::Communicator& comm) {
    const sparse::RowPartition part(a.rows, 1);
    const sparse::DistCsr dist(a, part, 0);
    krylov::PrecOperator op(dist, nullptr);
    const auto basis = krylov::KrylovBasis::monomial(8);
    Matrix cols(n, s + 1);
    for (index_t i = 0; i < n; ++i) cols(i, 0) = ref[0][static_cast<std::size_t>(i)];
    krylov::matrix_powers(comm, op, basis, cols.view(), 1, s, nullptr);
    for (index_t k = 0; k <= s; ++k) {
      for (index_t i = 0; i < n; ++i) {
        ASSERT_NEAR(cols(i, k), ref[static_cast<std::size_t>(k)][static_cast<std::size_t>(i)],
                    1e-12)
            << k << "," << i;
      }
    }
  });
}

TEST(MatrixPowers, NewtonRecurrenceHoldsExactly) {
  const auto a = sparse::laplace2d_5pt(10, 10);
  const auto n = static_cast<index_t>(a.rows);
  const index_t s = 5;
  const auto basis = krylov::KrylovBasis::newton(10, s, 0.1, 7.9);

  par::spmd_run(1, [&](par::Communicator& comm) {
    const sparse::RowPartition part(a.rows, 1);
    const sparse::DistCsr dist(a, part, 0);
    krylov::PrecOperator op(dist, nullptr);
    Matrix cols(n, s + 1);
    util::Xoshiro256 rng(7);
    util::fill_normal(rng, std::span<double>(cols.col(0), static_cast<std::size_t>(n)));
    krylov::matrix_powers(comm, op, basis, cols.view(), 1, s, nullptr);

    // Check A x_k = gamma v_{k+1} + theta x_k for every step.
    std::vector<double> ax(static_cast<std::size_t>(n));
    for (index_t k = 0; k < s; ++k) {
      sparse::spmv(a, std::span<const double>(cols.col(k), static_cast<std::size_t>(n)), ax);
      const auto& st = basis.step(k);
      for (index_t i = 0; i < n; ++i) {
        ASSERT_NEAR(ax[static_cast<std::size_t>(i)],
                    st.gamma * cols(i, k + 1) + st.theta * cols(i, k), 1e-10);
      }
    }
  });
}

TEST(MatrixPowers, ChebyshevThreeTermRecurrence) {
  const auto a = sparse::laplace2d_5pt(10, 10);
  const auto n = static_cast<index_t>(a.rows);
  const index_t s = 5;
  const auto basis = krylov::KrylovBasis::chebyshev(10, s, 0.1, 7.9);

  par::spmd_run(1, [&](par::Communicator& comm) {
    const sparse::RowPartition part(a.rows, 1);
    const sparse::DistCsr dist(a, part, 0);
    krylov::PrecOperator op(dist, nullptr);
    Matrix cols(n, s + 1);
    util::Xoshiro256 rng(9);
    util::fill_normal(rng, std::span<double>(cols.col(0), static_cast<std::size_t>(n)));
    krylov::matrix_powers(comm, op, basis, cols.view(), 1, s, nullptr);

    std::vector<double> ax(static_cast<std::size_t>(n));
    for (index_t k = 0; k < s; ++k) {
      sparse::spmv(a, std::span<const double>(cols.col(k), static_cast<std::size_t>(n)), ax);
      const auto& st = basis.step(k);
      for (index_t i = 0; i < n; ++i) {
        double rhs = st.gamma * cols(i, k + 1) + st.theta * cols(i, k);
        if (st.sigma != 0.0) rhs += st.sigma * cols(i, k - 1);
        ASSERT_NEAR(ax[static_cast<std::size_t>(i)], rhs, 1e-10);
      }
    }
  });
}

TEST(MatrixPowers, PreconditionedOperatorAppliesMinvFirst) {
  const auto a = sparse::heterogeneous2d(8, 8, false, 1.5, 3);
  const auto n = static_cast<index_t>(a.rows);
  par::spmd_run(1, [&](par::Communicator& comm) {
    const sparse::RowPartition part(a.rows, 1);
    const sparse::DistCsr dist(a, part, 0);
    const precond::Jacobi m(dist);
    krylov::PrecOperator op(dist, &m);

    std::vector<double> x(static_cast<std::size_t>(n), 1.0);
    std::vector<double> y(static_cast<std::size_t>(n));
    op.apply(comm, x, y, nullptr);

    // Reference: z = M^{-1} x, y = A z.
    std::vector<double> z(static_cast<std::size_t>(n)), yref(static_cast<std::size_t>(n));
    m.apply(x, z);
    sparse::spmv(a, z, yref);
    for (index_t i = 0; i < n; ++i) {
      EXPECT_NEAR(y[static_cast<std::size_t>(i)], yref[static_cast<std::size_t>(i)], 1e-13);
    }

    // apply_minv alone.
    op.apply_minv(x, y, nullptr);
    for (index_t i = 0; i < n; ++i) {
      EXPECT_NEAR(y[static_cast<std::size_t>(i)], z[static_cast<std::size_t>(i)], 1e-15);
    }
  });
}

TEST(MatrixPowers, DistributedMatchesSequential) {
  const auto a = sparse::laplace2d_9pt(14, 14);
  const auto n = static_cast<index_t>(a.rows);
  const index_t s = 5;
  std::vector<double> start(static_cast<std::size_t>(n));
  util::Xoshiro256 rng(13);
  util::fill_normal(rng, start);

  Matrix seq(n, s + 1);
  par::spmd_run(1, [&](par::Communicator& comm) {
    const sparse::RowPartition part(a.rows, 1);
    const sparse::DistCsr dist(a, part, 0);
    krylov::PrecOperator op(dist, nullptr);
    for (index_t i = 0; i < n; ++i) seq(i, 0) = start[static_cast<std::size_t>(i)];
    krylov::matrix_powers(comm, op, krylov::KrylovBasis::monomial(s), seq.view(),
                          1, s, nullptr);
  });

  Matrix dist_out(n, s + 1);
  par::spmd_run(3, [&](par::Communicator& comm) {
    const sparse::RowPartition part(a.rows, comm.size());
    const sparse::DistCsr dist(a, part, comm.rank());
    krylov::PrecOperator op(dist, nullptr);
    const auto begin = part.begin(comm.rank());
    const auto nloc = dist.n_local();
    Matrix local(nloc, s + 1);
    for (index_t i = 0; i < nloc; ++i) {
      local(i, 0) = start[static_cast<std::size_t>(begin + i)];
    }
    krylov::matrix_powers(comm, op, krylov::KrylovBasis::monomial(s),
                          local.view(), 1, s, nullptr);
    dense::copy(local.view(), dist_out.view().block(begin, 0, nloc, s + 1));
  });
  EXPECT_LT(dense::max_abs_diff(seq.view(), dist_out.view()), 1e-11);
}

TEST(MatrixPowers, SolverUnaffectedByInjectedLatency) {
  // The network model injects wall time, never changes values: the
  // solver trajectory must be identical with and without it.
  const auto a = sparse::laplace2d_5pt(16, 16);
  std::vector<double> xs(static_cast<std::size_t>(a.rows), 1.0);
  std::vector<double> b(static_cast<std::size_t>(a.rows));
  sparse::spmv(a, xs, b);

  auto run = [&](const par::NetworkModel& model) {
    long iters = 0;
    double relres = 0.0, injected = 0.0;
    par::spmd_run(2, model, [&](par::Communicator& comm) {
      const sparse::RowPartition part(a.rows, comm.size());
      const sparse::DistCsr dist(a, part, comm.rank());
      const auto begin = static_cast<std::size_t>(part.begin(comm.rank()));
      const auto nloc = static_cast<std::size_t>(dist.n_local());
      std::vector<double> x(nloc, 0.0);
      krylov::SStepGmresConfig cfg;
      cfg.scheme = krylov::OrthoScheme::kTwoStage;
      cfg.rtol = 1e-7;
      const auto r = krylov::sstep_gmres(
          comm, dist, nullptr,
          std::span<const double>(b.data() + begin, nloc), x, cfg);
      if (comm.rank() == 0) {
        iters = r.iters;
        relres = r.true_relres;
        injected = r.comm_stats.injected_seconds;
      }
    });
    return std::make_tuple(iters, relres, injected);
  };

  const auto [i0, r0, inj0] = run(par::NetworkModel::off());
  const auto [i1, r1, inj1] = run(par::NetworkModel::cluster());
  EXPECT_EQ(i0, i1);
  EXPECT_DOUBLE_EQ(r0, r1);
  EXPECT_EQ(inj0, 0.0);
  EXPECT_GT(inj1, 0.0);
}

}  // namespace
