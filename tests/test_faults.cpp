// The fault-injection framework (util/fault.hpp) and the resilience
// layer built on it: plan parsing/round-trip, one-shot deterministic
// firing, site behavior (throw / delay / corrupt) through the real
// solver stack, pinned trail + solution determinism at ranks x threads
// {1,2,7}^2, cooperative cancellation (pre-cancelled tokens, deadlines
// expiring mid-solve, unwinding through the split-phase reduce window),
// the soft-error residual guard, and the vacuous-guard option check.

#include "util/fault.hpp"

#include "api/solver.hpp"
#include "par/config.hpp"
#include "sparse/csr.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <string>
#include <vector>

namespace {

using namespace tsbo;
using par::FaultAction;
using par::FaultInjector;
using par::FaultPlan;
using par::FaultSite;

// Small bounded s-step solve (unreachable rtol = fixed restart budget,
// so every run visits the same instrumented-site sequence).
api::SolverOptions bounded_opts(int nx, int ranks) {
  api::SolverOptions o = api::SolverOptions::parse(
      "solver=sstep ortho=two_stage m=20 s=5 bs=20 rtol=1e-300 "
      "max_restarts=2 precond=none matrix=laplace2d_5pt");
  o.nx = nx;
  o.ranks = ranks;
  return o;
}

TEST(FaultPlanTest, ParsesAndRoundTrips) {
  const std::string spec =
      "comm.allreduce@3:throw;spmv.interior@2:corrupt;gram.stage1@1:delay250";
  const FaultPlan plan = FaultPlan::parse(spec);
  ASSERT_EQ(plan.faults.size(), 3u);
  EXPECT_EQ(plan.faults[0].site, FaultSite::kCommAllreduce);
  EXPECT_EQ(plan.faults[0].ordinal, 3);
  EXPECT_EQ(plan.faults[0].action, FaultAction::kThrow);
  EXPECT_EQ(plan.faults[1].site, FaultSite::kSpmvInterior);
  EXPECT_EQ(plan.faults[1].action, FaultAction::kCorrupt);
  EXPECT_EQ(plan.faults[2].site, FaultSite::kGramStage1);
  EXPECT_EQ(plan.faults[2].action, FaultAction::kDelay);
  EXPECT_EQ(plan.faults[2].delay_ms, 250);
  EXPECT_EQ(plan.to_string(), spec);
  EXPECT_EQ(FaultPlan::parse(plan.to_string()).to_string(), spec);
  EXPECT_TRUE(FaultPlan::parse("").empty());
}

TEST(FaultPlanTest, RejectsMalformedSpecsWithHints) {
  EXPECT_THROW(FaultPlan::parse("comm.allreduce:throw"),
               std::invalid_argument);  // missing @ordinal
  EXPECT_THROW(FaultPlan::parse("comm.allreduce@x:throw"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("comm.allreduce@1:explode"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("comm.allreduce@1:delay"),
               std::invalid_argument);  // delay needs <ms>
  try {
    FaultPlan::parse("comm.allreduc@1:throw");
    FAIL() << "typo site accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean comm.allreduce?"),
              std::string::npos)
        << e.what();
  }
}

TEST(FaultInjectorTest, FiresOnceAtMatchingOrdinalOnly) {
  FaultInjector inj(FaultPlan::parse("spmv.interior@2:delay1"), 2);
  for (int i = 0; i < 5; ++i) {
    inj.consult(0, FaultSite::kSpmvInterior);
    inj.consult(0, FaultSite::kGramStage1);  // other sites don't advance it
  }
  ASSERT_EQ(inj.trail(0).size(), 1u);
  EXPECT_EQ(inj.trail(0)[0].site, FaultSite::kSpmvInterior);
  EXPECT_EQ(inj.trail(0)[0].ordinal, 2);
  EXPECT_EQ(inj.trail(0)[0].attempt, 1);
  EXPECT_TRUE(inj.trail(1).empty());  // rank 1 never consulted

  // A fresh attempt resets the ordinal counters but not the fired
  // flags: the same visit sequence now runs clean.
  inj.begin_attempt(2);
  for (int i = 0; i < 5; ++i) inj.consult(0, FaultSite::kSpmvInterior);
  EXPECT_EQ(inj.trail(0).size(), 1u);
}

TEST(FaultInjectorTest, ThrowFaultCarriesSiteAndOrdinal) {
  FaultInjector inj(FaultPlan::parse("comm.allreduce@1:throw"), 1);
  inj.consult(0, FaultSite::kCommAllreduce);
  try {
    inj.consult(0, FaultSite::kCommAllreduce);
    FAIL() << "no fault fired";
  } catch (const par::InjectedFault& e) {
    EXPECT_EQ(e.site(), FaultSite::kCommAllreduce);
    EXPECT_EQ(e.ordinal(), 1);
    EXPECT_NE(std::string(e.what()).find("comm.allreduce#1"),
              std::string::npos);
  }
}

TEST(FaultInjectorTest, FlipBitIsASelfInverse2Pow64Scale) {
  // XORing exponent bit 58 rescales by 2^64 — up or down depending on
  // the value's exponent (1.5's has the bit set, so it shrinks).
  double v = 1.5;
  FaultInjector::flip_bit(v);
  EXPECT_EQ(v, 1.5 * 0x1p-64);
  FaultInjector::flip_bit(v);
  EXPECT_EQ(v, 1.5);
  double w = 3.0 * 0x1p-80;  // exponent bit clear: grows
  FaultInjector::flip_bit(w);
  EXPECT_EQ(w, 3.0 * 0x1p-16);
}

TEST(FaultSolveTest, ThrowFaultAbortsEveryRankCleanly) {
  for (const int ranks : {1, 2, 7}) {
    api::SolverOptions opts = bounded_opts(24, ranks);
    opts.faults = "comm.allreduce@2:throw";
    api::Solver solver(opts);
    try {
      (void)solver.solve();
      FAIL() << "injected throw did not surface (ranks=" << ranks << ")";
    } catch (const par::InjectedFault& e) {
      EXPECT_EQ(e.site(), FaultSite::kCommAllreduce);
      EXPECT_EQ(e.ordinal(), 2);
    }
    // The runtime is reusable after the unwind: a clean solve works.
    api::Solver clean(bounded_opts(24, ranks));
    EXPECT_NO_THROW((void)clean.solve());
  }
}

TEST(FaultSolveTest, DelayFaultLeavesValuesUntouched) {
  const api::SolverOptions clean_opts = bounded_opts(24, 2);
  api::Solver clean(clean_opts);
  (void)clean.solve();

  api::SolverOptions opts = clean_opts;
  opts.faults = "spmv.interior@0:delay20;gram.stage1@1:delay20";
  api::Solver delayed(opts);
  const api::SolveReport report = delayed.solve();
  EXPECT_EQ(delayed.solution(), clean.solution());
  ASSERT_EQ(report.resilience.fault_trail.size(), 2u);
  EXPECT_EQ(report.resilience.fault_trail[0].action, FaultAction::kDelay);
  EXPECT_EQ(report.resilience.outcome, "ok");
}

TEST(FaultSolveTest, CorruptSchedulePinnedAcrossRanksBitwiseAcrossThreads) {
  // Corrupt actions restricted to the globally-addressed sites
  // (spmv.interior / comm.exchange), where the corrupted row is
  // rank-count-invariant by construction.  Within a rank count the
  // faulted solution must be bitwise identical at every thread count
  // (the library-wide determinism contract).  Across rank counts the
  // partitioned reduction folds round differently — solutions are only
  // close — but the fault schedule (site, ordinal, action, attempt)
  // must replay identically, matching the autopilot acceptance matrix.
  const std::string plan =
      "spmv.interior@1:corrupt;comm.exchange@4:corrupt;gram.stage1@2:delay1";
  std::vector<par::FaultRecord> trail_ref;
  for (const int ranks : {1, 2, 7}) {
    std::vector<double> x_rank;  // threads=1 reference at this rank count
    for (const unsigned threads : {1u, 2u, 7u}) {
      par::set_num_threads(threads);
      api::SolverOptions opts = bounded_opts(28, ranks);
      opts.faults = plan;
      api::Solver solver(opts);
      const api::SolveReport report = solver.solve();
      par::set_num_threads(0);
      const auto& trail = report.resilience.fault_trail;
      if (trail_ref.empty()) {
        trail_ref = trail;
        ASSERT_EQ(trail_ref.size(), 3u);
      } else {
        ASSERT_EQ(trail.size(), trail_ref.size())
            << "ranks=" << ranks << " threads=" << threads;
        for (std::size_t i = 0; i < trail.size(); ++i) {
          EXPECT_EQ(trail[i].site, trail_ref[i].site);
          EXPECT_EQ(trail[i].ordinal, trail_ref[i].ordinal);
          EXPECT_EQ(trail[i].action, trail_ref[i].action);
          EXPECT_EQ(trail[i].attempt, trail_ref[i].attempt);
        }
      }
      if (threads == 1u) {
        x_rank = solver.solution();
      } else {
        EXPECT_EQ(solver.solution(), x_rank)
            << "ranks=" << ranks << " threads=" << threads;
      }
    }
    // And the corruption really happened at this rank count: the
    // solution differs from the same-rank clean run's.
    api::Solver clean(bounded_opts(28, ranks));
    (void)clean.solve();
    EXPECT_NE(x_rank, clean.solution()) << "ranks=" << ranks;
  }
}

TEST(CancelTest, PreCancelledTokenStopsBeforeAnyIteration) {
  for (const int ranks : {1, 2}) {
    par::CancelToken token;
    token.cancel();
    api::Solver solver(bounded_opts(24, ranks));
    solver.set_cancel_token(&token);
    const api::SolveReport report = solver.solve();
    EXPECT_TRUE(report.result.cancelled);
    EXPECT_FALSE(report.result.deadline_expired);
    EXPECT_EQ(report.result.iters, 0);
    EXPECT_FALSE(report.result.converged);
    EXPECT_EQ(report.resilience.outcome, "cancelled");
  }
}

TEST(CancelTest, DeadlineExpiresMidSolveAndGuardSkips) {
  // A delay fault stretches the first restart past the deadline; the
  // restart-boundary poll then stops the solve cooperatively.  The
  // residual guard refuses to judge the partial iterate.
  api::SolverOptions opts = bounded_opts(24, 2);
  opts.max_restarts = 50;
  opts.deadline_ms = 40;
  opts.verify_residual = 1;
  opts.rtol = 1e-8;
  opts.faults = "spmv.interior@0:delay250";
  api::Solver solver(opts);
  const api::SolveReport report = solver.solve();
  EXPECT_TRUE(report.result.deadline_expired);
  EXPECT_FALSE(report.result.cancelled);
  EXPECT_EQ(report.resilience.outcome, "timed_out");
  EXPECT_EQ(report.resilience.guard_verdict, "skipped");
  EXPECT_LT(report.result.restarts, 50);
}

TEST(CancelTest, ThrowDuringSplitPhaseReduceWindowUnwindsCleanly) {
  // With pipeline_depth=1 the next panel's matrix-powers kernel runs
  // inside the stage-1 Gram's pending-reduce window; a throw at the
  // spmv site unwinds through it, relying on the PendingReduce /
  // CommRequest destructors to complete the open collective on every
  // rank.  No deadlock, and the runtime stays usable.
  for (const int ranks : {2, 7}) {
    api::SolverOptions opts = bounded_opts(28, ranks);
    opts.pipeline_depth = 1;
    opts.faults = "spmv.interior@7:throw";
    api::Solver solver(opts);
    EXPECT_THROW((void)solver.solve(), par::InjectedFault);
    api::SolverOptions clean_opts = bounded_opts(28, ranks);
    clean_opts.pipeline_depth = 1;
    api::Solver clean(clean_opts);
    EXPECT_NO_THROW((void)clean.solve());
  }
}

TEST(GuardTest, PassesOnCleanConvergedSolve) {
  api::SolverOptions opts = bounded_opts(24, 2);
  opts.rtol = 1e-8;
  opts.max_restarts = 1000000;
  opts.verify_residual = 1;
  api::Solver solver(opts);
  const api::SolveReport report = solver.solve();
  ASSERT_TRUE(report.result.converged);
  EXPECT_EQ(report.resilience.guard_verdict, "ok");
  EXPECT_EQ(report.resilience.outcome, "ok");
  EXPECT_TRUE(report.resilience.guard_enabled);
  EXPECT_GT(report.resilience.guard_tolerance, 0.0);
  EXPECT_LE(report.resilience.guard_true_relres,
            report.resilience.guard_tolerance);
}

TEST(GuardTest, TransientSpmvCorruptionSelfHealsUnderGuard) {
  // A transient soft error in the matrix-powers kernel perturbs one
  // Krylov basis entry O(1), but the solver only banks progress it can
  // confirm against explicitly recomputed restart residuals (the
  // self-correcting property Carson–Ma exploit), so the corruption
  // costs iterations, never correctness — and the serial guard
  // recompute agrees with the reported residual.  The verdict that
  // does fire is persistent-state corruption, where solve and guard
  // see different operators: the service's cached-matrix dispatch
  // site, pinned end-to-end in test_service.cpp.
  api::SolverOptions clean_opts = bounded_opts(24, 2);
  clean_opts.rtol = 1e-8;
  clean_opts.max_restarts = 1000000;
  clean_opts.verify_residual = 1;
  api::Solver clean(clean_opts);
  const api::SolveReport clean_report = clean.solve();
  ASSERT_TRUE(clean_report.result.converged);
  EXPECT_EQ(clean_report.resilience.guard_verdict, "ok");

  api::SolverOptions opts = clean_opts;
  opts.faults = "spmv.interior@9:corrupt";
  api::Solver solver(opts);
  const api::SolveReport report = solver.solve();
  ASSERT_EQ(report.resilience.fault_trail.size(), 1u);
  EXPECT_EQ(report.resilience.fault_trail[0].site, FaultSite::kSpmvInterior);
  EXPECT_EQ(report.resilience.fault_trail[0].action, FaultAction::kCorrupt);
  // The corruption detoured the iteration (extra restarts to re-earn
  // the poisoned progress) yet the final answer satisfies both the
  // solver's own tolerance and the independent guard recompute.
  EXPECT_GT(report.result.iters, clean_report.result.iters);
  EXPECT_TRUE(report.result.converged);
  EXPECT_EQ(report.resilience.guard_verdict, "ok");
  EXPECT_EQ(report.resilience.outcome, "ok");
  EXPECT_LE(report.resilience.guard_true_relres,
            report.resilience.guard_tolerance);
  EXPECT_NE(solver.solution(), clean.solution());
}

TEST(GuardTest, VacuousGuardComboIsRejected) {
  api::SolverOptions opts = bounded_opts(24, 1);
  opts.verify_residual = 1;
  opts.rtol = 0.5;  // 100 * rtol >= 1: the guard could never fire
  try {
    opts.validate();
    FAIL() << "vacuous guard combo accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean a converging"),
              std::string::npos)
        << e.what();
  }
  opts.rtol = 1e-8;
  EXPECT_NO_THROW(opts.validate());
}

TEST(GuardTest, FaultOptionsAreRangeValidated) {
  api::SolverOptions opts = bounded_opts(24, 1);
  opts.deadline_ms = -1;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts.deadline_ms = 0;
  opts.retries = -2;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts.retries = 0;
  opts.verify_residual = 2;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts.verify_residual = 0;
  opts.faults = "not a plan";
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts.faults = "";
  EXPECT_NO_THROW(opts.validate());
}

TEST(ChecksumTest, DetectsValueAndStructureMutation) {
  sparse::CsrMatrix a;
  a.rows = 2;
  a.cols = 2;
  a.row_ptr = {0, 1, 2};
  a.col_idx.resize(2);
  a.col_idx[0] = 0;
  a.col_idx[1] = 1;
  a.values.resize(2);
  a.values[0] = 1.0;
  a.values[1] = 2.0;
  const std::uint64_t ref = a.checksum();
  EXPECT_EQ(a.checksum(), ref);  // stable

  FaultInjector::flip_bit(a.values[1]);
  EXPECT_NE(a.checksum(), ref);
  FaultInjector::flip_bit(a.values[1]);
  EXPECT_EQ(a.checksum(), ref);

  a.col_idx[1] = 0;
  EXPECT_NE(a.checksum(), ref);
}

TEST(CancelTokenTest, FlagAndDeadlineSemantics) {
  par::CancelToken token;
  EXPECT_FALSE(token.should_stop());
  token.set_deadline_after(std::chrono::milliseconds(10000));
  EXPECT_FALSE(token.deadline_expired());
  token.cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(token.should_stop());

  par::CancelToken expired;
  expired.set_deadline_after(std::chrono::milliseconds(0));
  EXPECT_TRUE(expired.deadline_expired());
  EXPECT_FALSE(expired.cancelled());
}

}  // namespace
