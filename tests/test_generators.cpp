// Stencil generators and SuiteSparse surrogates.

#include "sparse/generators.hpp"
#include "sparse/scaling.hpp"
#include "sparse/suitesparse_like.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace tsbo;
using sparse::CsrMatrix;
using sparse::ord;

bool is_symmetric(const CsrMatrix& m, double tol) {
  const auto t = sparse::transpose(m);
  if (t.row_ptr != m.row_ptr || t.col_idx != m.col_idx) return false;
  for (std::size_t k = 0; k < m.values.size(); ++k) {
    if (std::abs(m.values[k] - t.values[k]) > tol) return false;
  }
  return true;
}

/// Interior-row sum is zero for a consistent (Neumann-free) stencil.
double interior_row_sum(const CsrMatrix& m, ord row) {
  double s = 0.0;
  for (auto k = m.row_ptr[row]; k < m.row_ptr[row + 1]; ++k) {
    s += m.values[static_cast<std::size_t>(k)];
  }
  return s;
}

TEST(Laplace2d, FivePointStructure) {
  const auto m = sparse::laplace2d_5pt(5, 4);
  EXPECT_EQ(m.rows, 20);
  EXPECT_TRUE(is_symmetric(m, 0.0));
  // Interior point (2,2) -> row 2*5+2 = 12: full 5-point star.
  EXPECT_DOUBLE_EQ(m.at(12, 12), 4.0);
  EXPECT_DOUBLE_EQ(m.at(12, 11), -1.0);
  EXPECT_DOUBLE_EQ(m.at(12, 13), -1.0);
  EXPECT_DOUBLE_EQ(m.at(12, 7), -1.0);
  EXPECT_DOUBLE_EQ(m.at(12, 17), -1.0);
  EXPECT_DOUBLE_EQ(interior_row_sum(m, 12), 0.0);
  // Corner row has only 2 neighbors.
  EXPECT_EQ(m.row_ptr[1] - m.row_ptr[0], 3);
}

TEST(Laplace2d, NinePointStructure) {
  const auto m = sparse::laplace2d_9pt(5, 5);
  EXPECT_TRUE(is_symmetric(m, 0.0));
  EXPECT_DOUBLE_EQ(m.at(12, 12), 8.0);
  EXPECT_EQ(m.row_ptr[13] - m.row_ptr[12], 9);  // interior: full star
  EXPECT_DOUBLE_EQ(interior_row_sum(m, 12), 0.0);
  // nnz/row approaches 9 as the grid grows (boundary fraction shrinks).
  const auto big = sparse::laplace2d_9pt(40, 40);
  EXPECT_NEAR(big.nnz_per_row(), 9.0, 0.5);
}

TEST(Laplace3d, SevenAndTwentySevenPoint) {
  const auto m7 = sparse::laplace3d_7pt(4, 4, 4);
  EXPECT_EQ(m7.rows, 64);
  EXPECT_TRUE(is_symmetric(m7, 0.0));
  // Center point of 4^3 grid: row (1*4+1)*4+1 = 21 has all 6 neighbors.
  EXPECT_DOUBLE_EQ(m7.at(21, 21), 6.0);
  EXPECT_DOUBLE_EQ(interior_row_sum(m7, 21), 0.0);

  const auto m27 = sparse::laplace3d_27pt(4, 4, 4);
  EXPECT_TRUE(is_symmetric(m27, 0.0));
  EXPECT_DOUBLE_EQ(m27.at(21, 21), 26.0);
  EXPECT_EQ(m27.row_ptr[22] - m27.row_ptr[21], 27);
  EXPECT_DOUBLE_EQ(interior_row_sum(m27, 21), 0.0);
}

TEST(ConvectionDiffusion, UpwindingBreaksSymmetryKeepsRowSums) {
  const auto m = sparse::convection_diffusion3d(5, 5, 5, 1.0, 0.5, 0.0);
  EXPECT_FALSE(is_symmetric(m, 1e-14));
  // Row sums still vanish in the interior (conservation).
  const ord center = (2 * 5 + 2) * 5 + 2;
  EXPECT_NEAR(interior_row_sum(m, center), 0.0, 1e-14);
  // Upwind neighbor (x-1) carries diffusion + convection.
  EXPECT_DOUBLE_EQ(m.at(center, center - 1), -2.0);
  EXPECT_DOUBLE_EQ(m.at(center, center + 1), -1.0);
}

TEST(Elasticity3d, BlockStructureAndSymmetry) {
  const auto m = sparse::elasticity3d(3, 3, 3, /*wide=*/false, 0.3);
  EXPECT_EQ(m.rows, 81);
  EXPECT_TRUE(is_symmetric(m, 1e-14));
  // 3 dofs per node; diagonal block coupling present.
  EXPECT_GT(std::abs(m.at(0, 1)), 0.0);
  EXPECT_GT(m.at(0, 0), 0.0);

  const auto wide = sparse::elasticity3d(4, 4, 4, /*wide=*/true, 0.3);
  // Interior node of the wide stencil couples to 27 nodes x 3 dofs.
  const ord inode = (1 * 4 + 1) * 4 + 1;
  EXPECT_EQ(wide.row_ptr[3 * inode + 1] - wide.row_ptr[3 * inode], 81);
}

TEST(Heterogeneous2d, DeterministicAndSpd) {
  const auto a = sparse::heterogeneous2d(10, 10, false, 3.0, 17);
  const auto b = sparse::heterogeneous2d(10, 10, false, 3.0, 17);
  EXPECT_TRUE(sparse::approx_equal(a, b, 0.0));
  EXPECT_TRUE(is_symmetric(a, 1e-13));
  const auto c = sparse::heterogeneous2d(10, 10, false, 3.0, 18);
  EXPECT_FALSE(sparse::approx_equal(a, c, 1e-12));
  // Diagonal dominance (weak) => positive definiteness for this M-matrix.
  for (ord i = 0; i < a.rows; ++i) {
    double offdiag = 0.0;
    for (auto k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      const auto kk = static_cast<std::size_t>(k);
      if (a.col_idx[kk] != i) offdiag += std::abs(a.values[kk]);
    }
    EXPECT_GE(a.at(i, i), offdiag - 1e-12);
  }
}

TEST(Anisotropic3d, SmallEpsMakesNearDecoupledLines) {
  const auto m = sparse::anisotropic3d(6, 6, 6, 1e-6, 1e-6);
  const ord center = (2 * 6 + 2) * 6 + 2;
  EXPECT_DOUBLE_EQ(m.at(center, center - 1), -1.0);
  EXPECT_DOUBLE_EQ(m.at(center, center - 6), -1e-6);
  EXPECT_TRUE(is_symmetric(m, 0.0));
}

TEST(DiagonalSpread, ScalesSymmetrically) {
  auto m = sparse::laplace2d_5pt(6, 6);
  sparse::apply_diagonal_spread(m, 4.0, 7);
  EXPECT_TRUE(is_symmetric(m, 1e-12));
  // Spread must produce a wide range of diagonal magnitudes.
  double dmin = 1e300, dmax = 0.0;
  for (ord i = 0; i < m.rows; ++i) {
    dmin = std::min(dmin, std::abs(m.at(i, i)));
    dmax = std::max(dmax, std::abs(m.at(i, i)));
  }
  EXPECT_GT(dmax / dmin, 1e2);
}

TEST(Hash01, DeterministicUniformish) {
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double h = sparse::hash01(static_cast<std::uint64_t>(i), 5);
    EXPECT_GE(h, 0.0);
    EXPECT_LT(h, 1.0);
    sum += h;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
  EXPECT_EQ(sparse::hash01(123, 9), sparse::hash01(123, 9));
  EXPECT_NE(sparse::hash01(123, 9), sparse::hash01(124, 9));
}

TEST(Surrogates, AllNamedMatricesBuildWithExpectedCharacter) {
  for (const auto& name : sparse::surrogate_names()) {
    const auto s = sparse::make_surrogate(name, 4000);
    EXPECT_EQ(s.name, name);
    EXPECT_GT(s.matrix.rows, 1000) << name;
    EXPECT_LT(s.matrix.rows, 20000) << name;
    EXPECT_EQ(s.matrix.rows, s.matrix.cols) << name;
    EXPECT_EQ(is_symmetric(s.matrix, 1e-12), s.symmetric) << name;
  }
  EXPECT_THROW(sparse::make_surrogate("not-a-matrix", 1000),
               std::invalid_argument);
}

TEST(Surrogates, CharactersMatchPaper) {
  // nnz/row character: ML_Geer is the heavy one, ecology2 the lightest.
  const auto geer = sparse::make_surrogate("ML_Geer", 6000);
  const auto eco = sparse::make_surrogate("ecology2", 6000);
  EXPECT_GT(geer.matrix.nnz_per_row(), 8 * eco.matrix.nnz_per_row());
  EXPECT_FALSE(geer.symmetric);
  EXPECT_TRUE(eco.symmetric);

  // dielFilterV2real surrogate must be indefinite: the quadratic form
  // changes sign (negative on the constant vector, positive on e_0).
  const auto diel = sparse::make_surrogate("dielFilterV2real", 4000);
  double form_ones = 0.0;
  for (const double v : diel.matrix.values) form_ones += v;
  EXPECT_LT(form_ones, 0.0);
  EXPECT_GT(diel.matrix.at(0, 0) != 0.0 ? diel.matrix.at(0, 0)
                                        : diel.matrix.at(1, 1),
            0.0);
}

TEST(Surrogates, PaperScalingMakesNonsymmetric) {
  auto s = sparse::make_surrogate("ecology2", 3000);
  ASSERT_TRUE(is_symmetric(s.matrix, 1e-12));
  sparse::equilibrate_max(s.matrix);
  EXPECT_FALSE(is_symmetric(s.matrix, 1e-12));  // the paper's Section VI note
}

}  // namespace
