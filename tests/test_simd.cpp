// SIMD kernel layer: per-lane bit-equality of the vectorized EFT
// primitives against the scalar util/eft.hpp sequences, fixed-order
// horizontal reductions, remainder-loop edge cases (n not divisible by
// the lane width, n < lane width), bitwise thread-count parity for
// every vectorized kernel, the aligned-storage invariant of
// dense::Matrix / util::aligned_vector, and the dd kappa boundary
// re-pinned under the SIMD build.

#include "dense/blas1.hpp"
#include "dense/blas3.hpp"
#include "dense/dd.hpp"
#include "dense/svd.hpp"
#include "ortho/intra.hpp"
#include "par/config.hpp"
#include "sparse/generators.hpp"
#include "sparse/spmv.hpp"
#include "synth/synthetic.hpp"
#include "util/aligned.hpp"
#include "util/eft.hpp"
#include "util/random.hpp"
#include "util/simd.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace tsbo;
using dense::index_t;
using dense::Matrix;

constexpr std::size_t kW = simd::kLanes;

Matrix random_matrix(index_t rows, index_t cols, std::uint64_t seed) {
  Matrix m(rows, cols);
  util::Xoshiro256 rng(seed);
  util::fill_normal(rng, m.data());
  return m;
}

util::aligned_vector<double> random_vector(std::size_t n, std::uint64_t seed) {
  util::aligned_vector<double> v(n, 0.0);
  util::Xoshiro256 rng(seed);
  util::fill_normal(rng, v);
  return v;
}

// ---------------------------------------------------------------------------
// The layer itself: ISA dispatch, per-lane EFT equality, reductions.
// ---------------------------------------------------------------------------

TEST(Simd, IsaNameAndLaneWidthConsistent) {
  const std::string isa = simd::isa_name();
#if defined(TSBO_DISABLE_SIMD)
  EXPECT_EQ(isa, "scalar");
#endif
  if (isa == "avx512") {
    EXPECT_EQ(kW, 8u);
  } else if (isa == "avx2" || isa == "scalar") {
    EXPECT_EQ(kW, 4u);
  } else if (isa == "neon") {
    EXPECT_EQ(kW, 2u);
  } else {
    FAIL() << "unknown isa " << isa;
  }
}

TEST(Simd, VectorEftMatchesScalarPerLane) {
  // two_sum / quick_two_sum / two_prod are branch-free, so each vector
  // lane must reproduce the scalar EFT bit-for-bit — including the
  // correctly rounded FMA residual of two_prod.
  util::Xoshiro256 rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    double a[kW], b[kW];
    for (std::size_t l = 0; l < kW; ++l) {
      a[l] = rng.normal() * std::ldexp(1.0, static_cast<int>(l * 7) % 40);
      b[l] = rng.normal();
    }
    const simd::Vec va = simd::load(a);
    const simd::Vec vb = simd::load(b);

    const simd::VecDD ts = simd::vec_two_sum(va, vb);
    const simd::VecDD tp = simd::vec_two_prod(va, vb);
    double ts_hi[kW], ts_lo[kW], tp_hi[kW], tp_lo[kW];
    simd::store(ts_hi, ts.hi);
    simd::store(ts_lo, ts.lo);
    simd::store(tp_hi, tp.hi);
    simd::store(tp_lo, tp.lo);
    for (std::size_t l = 0; l < kW; ++l) {
      const eft::dd s = eft::two_sum(a[l], b[l]);
      const eft::dd p = eft::two_prod(a[l], b[l]);
      EXPECT_EQ(ts_hi[l], s.hi) << l;
      EXPECT_EQ(ts_lo[l], s.lo) << l;
      EXPECT_EQ(tp_hi[l], p.hi) << l;
      EXPECT_EQ(tp_lo[l], p.lo) << l;
    }
  }
}

TEST(Simd, DdAccumulationMatchesScalarPerLaneStride) {
  // Lane l of a vectorized dd product accumulation must equal the
  // scalar renormalized accumulation of the lane's strided subsequence
  // x[l], x[l + W], x[l + 2W], ... — the exact property that makes the
  // vectorized gemm_tn_dd a per-lane transcription of the scalar one.
  const std::size_t n = kW * 37;
  const auto x = random_vector(n, 21);
  const auto y = random_vector(n, 22);

  simd::VecDD acc = simd::dd_zero();
  for (std::size_t i = 0; i < n; i += kW) {
    simd::dd_add(acc,
                 simd::vec_two_prod(simd::load(x.data() + i),
                                    simd::load(y.data() + i)));
  }
  double hi[kW], lo[kW];
  simd::store(hi, acc.hi);
  simd::store(lo, acc.lo);

  for (std::size_t l = 0; l < kW; ++l) {
    eft::dd ref;
    for (std::size_t i = l; i < n; i += kW) {
      eft::dd_add(ref, eft::two_prod(x[i], y[i]));
    }
    EXPECT_EQ(hi[l], ref.hi) << l;
    EXPECT_EQ(lo[l], ref.lo) << l;
  }

  // The plain-Vec accumulate overload (dd sum of doubles) must equally
  // match eft::dd_add(dd&, double) per lane.
  simd::VecDD acc2 = simd::dd_zero();
  for (std::size_t i = 0; i < n; i += kW) {
    simd::dd_add(acc2, simd::load(x.data() + i));
  }
  simd::store(hi, acc2.hi);
  simd::store(lo, acc2.lo);
  for (std::size_t l = 0; l < kW; ++l) {
    eft::dd ref;
    for (std::size_t i = l; i < n; i += kW) eft::dd_add(ref, x[i]);
    EXPECT_EQ(hi[l], ref.hi) << l;
    EXPECT_EQ(lo[l], ref.lo) << l;
  }
}

TEST(Simd, ReduceAddIsFixedPairwiseOrder) {
  double lanes[kW];
  for (std::size_t l = 0; l < kW; ++l) {
    lanes[l] = std::ldexp(1.0, static_cast<int>(l) * 3) + 1.0 / (l + 1.0);
  }
  // Reference: the documented pairwise fold.
  double t[kW];
  std::memcpy(t, lanes, sizeof(t));
  for (std::size_t width = kW; width > 1; width /= 2) {
    for (std::size_t l = 0; l < width / 2; ++l) t[l] = t[2 * l] + t[2 * l + 1];
  }
  EXPECT_EQ(simd::reduce_add(simd::load(lanes)), t[0]);
}

TEST(Simd, ReduceDdFoldsLanesAscending) {
  simd::VecDD acc = simd::dd_zero();
  double hi[kW], lo[kW];
  for (std::size_t l = 0; l < kW; ++l) {
    hi[l] = std::ldexp(1.0, static_cast<int>(l * 13) % 30);
    lo[l] = hi[l] * 1e-18;
  }
  acc.hi = simd::load(hi);
  acc.lo = simd::load(lo);
  eft::dd ref{hi[0], lo[0]};
  for (std::size_t l = 1; l < kW; ++l) eft::dd_add(ref, eft::dd{hi[l], lo[l]});
  const eft::dd got = simd::reduce(acc);
  EXPECT_EQ(got.hi, ref.hi);
  EXPECT_EQ(got.lo, ref.lo);
}

// ---------------------------------------------------------------------------
// Remainder-loop edge cases: n not divisible by the lane width, and
// n < lane width, for the vectorized kernels.
// ---------------------------------------------------------------------------

TEST(SimdKernels, DotRemainderEdgeCases) {
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{1}, kW - 1, kW, kW + 1, 2 * kW + 3,
        4 * kW + 1, std::size_t{4096} + kW + 3}) {
    const auto x = random_vector(n, 100 + n);
    const auto y = random_vector(n, 200 + n);
    long double ref = 0.0L;
    for (std::size_t i = 0; i < n; ++i) {
      ref += static_cast<long double>(x[i]) * static_cast<long double>(y[i]);
    }
    const double got = dense::dot(x, y);
    EXPECT_NEAR(got, static_cast<double>(ref),
                1e-12 * (1.0 + std::abs(static_cast<double>(ref))))
        << n;
  }
}

TEST(SimdKernels, DotDdRemainderEdgeCases) {
  // The dd dot is exact to ~n * u_dd, so a long-double reference must
  // agree to its own precision (~1e-19 relative).
  for (const std::size_t n :
       {std::size_t{1}, kW - 1, kW, kW + 1, 2 * kW + 1, 3 * kW - 1,
        std::size_t{256} + kW + 1}) {
    const auto x = random_vector(n, 300 + n);
    const auto y = random_vector(n, 400 + n);
    long double ref = 0.0L;
    for (std::size_t i = 0; i < n; ++i) {
      ref += static_cast<long double>(x[i]) * static_cast<long double>(y[i]);
    }
    const double got =
        dense::dot_dd(x.data(), y.data(), static_cast<index_t>(n));
    EXPECT_NEAR(got, static_cast<double>(ref),
                1e-15 * (1.0 + std::abs(static_cast<double>(ref))))
        << n;
  }
}

TEST(SimdKernels, GemmSmallerThanLaneWidth) {
  // m < kW exercises the pure-tail path of every GEMM inner loop.
  const auto m = static_cast<index_t>(kW - 1);
  const Matrix a = random_matrix(m, 3, 31);
  const Matrix b = random_matrix(m, 2, 32);
  Matrix c(3, 2);
  dense::gemm_tn(1.0, a.view(), b.view(), 0.0, c.view());
  for (index_t j = 0; j < 2; ++j) {
    for (index_t i = 0; i < 3; ++i) {
      long double ref = 0.0L;
      for (index_t r = 0; r < m; ++r) {
        ref += static_cast<long double>(a(r, i)) *
               static_cast<long double>(b(r, j));
      }
      EXPECT_NEAR(c(i, j), static_cast<double>(ref), 1e-13) << i << "," << j;
    }
  }

  Matrix q = random_matrix(m, 2, 33);
  const Matrix r2 = random_matrix(2, 2, 34);
  Matrix v = random_matrix(m, 2, 35);
  const Matrix v0 = dense::copy_of(v.view());
  dense::gemm_nn(-1.0, q.view(), r2.view(), 1.0, v.view());
  for (index_t j = 0; j < 2; ++j) {
    for (index_t i = 0; i < m; ++i) {
      long double ref = v0(i, j);
      for (index_t l = 0; l < 2; ++l) {
        ref -= static_cast<long double>(q(i, l)) *
               static_cast<long double>(r2(l, j));
      }
      EXPECT_NEAR(v(i, j), static_cast<double>(ref), 1e-13) << i << "," << j;
    }
  }
}

// ---------------------------------------------------------------------------
// Bitwise thread-count parity for every vectorized kernel.
// ---------------------------------------------------------------------------

/// Restores the global threading config after each test, and lowers the
/// dispatch grain so modest test sizes actually cross the threshold.
class SimdParKernels : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_grain_ = par::parallel_grain();
    par::set_parallel_grain(512);
  }
  void TearDown() override {
    par::set_num_threads(0);
    par::set_parallel_grain(saved_grain_);
  }

  static std::vector<unsigned> sweep() {
    return {1u, 2u, 7u, std::max(1u, std::thread::hardware_concurrency())};
  }

 private:
  std::size_t saved_grain_ = 0;
};

TEST_F(SimdParKernels, Blas1BitwiseAcrossThreadCounts) {
  // Several reduction chunks plus a ragged tail.
  const std::size_t n = 3 * 4096 + 2 * kW + 5;
  const auto x = random_vector(n, 41);
  const auto y = random_vector(n, 42);

  struct Ref {
    double dot, sumsq, nrm2, amax;
    util::aligned_vector<double> axpy, scal;
  } ref{};
  for (const unsigned t : sweep()) {
    par::set_num_threads(t);
    const double d = dense::dot(x, y);
    const double s = dense::sumsq(x);
    const double nr = dense::nrm2(x);
    const double am = dense::amax(x);
    util::aligned_vector<double> ya(y);
    dense::axpy(0.37, x, ya);
    util::aligned_vector<double> xs(x);
    dense::scal(1.0 / 3.0, xs);
    if (t == 1u) {
      ref = {d, s, nr, am, ya, xs};
      continue;
    }
    EXPECT_EQ(d, ref.dot) << t;
    EXPECT_EQ(s, ref.sumsq) << t;
    EXPECT_EQ(nr, ref.nrm2) << t;
    EXPECT_EQ(am, ref.amax) << t;
    ASSERT_TRUE(ya == ref.axpy) << t;
    ASSERT_TRUE(xs == ref.scal) << t;
  }
}

TEST_F(SimdParKernels, Blas3BitwiseAcrossThreadCounts) {
  const index_t m = 2 * 4096 + 517;
  const index_t p = 7, nn = 5;
  const Matrix a = random_matrix(m, p, 51);
  const Matrix b = random_matrix(m, nn, 52);
  const Matrix small = random_matrix(p, nn, 53);
  Matrix u = random_matrix(nn, nn, 54);
  for (index_t j = 0; j < nn; ++j) u(j, j) = 4.0 + j;  // well-conditioned

  Matrix tn_ref, nn_ref, nt_ref, tr_ref;
  double fro_ref = 0.0;
  for (const unsigned t : sweep()) {
    par::set_num_threads(t);
    Matrix tn(p, nn);
    dense::gemm_tn(1.0, a.view(), b.view(), 0.0, tn.view());
    Matrix vnn = dense::copy_of(b.view());
    dense::gemm_nn(-1.0, a.view(), small.view(), 1.0, vnn.view());
    Matrix vnt = dense::copy_of(a.view());
    dense::gemm_nt(0.5, b.view(), small.view(), 1.0, vnt.view());
    Matrix vtr = dense::copy_of(b.view());
    dense::trsm_right_upper(u.view(), vtr.view());
    const double fro = dense::frobenius_norm(a.view());
    if (t == 1u) {
      tn_ref = std::move(tn);
      nn_ref = std::move(vnn);
      nt_ref = std::move(vnt);
      tr_ref = std::move(vtr);
      fro_ref = fro;
      continue;
    }
    EXPECT_EQ(dense::max_abs_diff(tn.view(), tn_ref.view()), 0.0) << t;
    EXPECT_EQ(dense::max_abs_diff(vnn.view(), nn_ref.view()), 0.0) << t;
    EXPECT_EQ(dense::max_abs_diff(vnt.view(), nt_ref.view()), 0.0) << t;
    EXPECT_EQ(dense::max_abs_diff(vtr.view(), tr_ref.view()), 0.0) << t;
    EXPECT_EQ(fro, fro_ref) << t;
  }
}

TEST_F(SimdParKernels, GemmTnDdBitwiseAcrossThreadCounts) {
  const index_t m = 4096 + 2 * static_cast<index_t>(kW) + 3;
  const Matrix a = random_matrix(m, 5, 61);
  const Matrix b = random_matrix(m, 4, 62);
  Matrix ref_hi, ref_lo;
  for (const unsigned t : sweep()) {
    par::set_num_threads(t);
    Matrix hi(5, 4), lo(5, 4);
    dense::gemm_tn_dd(a.view(), b.view(), hi.view(), lo.view());
    if (t == 1u) {
      ref_hi = std::move(hi);
      ref_lo = std::move(lo);
      continue;
    }
    EXPECT_EQ(dense::max_abs_diff(hi.view(), ref_hi.view()), 0.0) << t;
    EXPECT_EQ(dense::max_abs_diff(lo.view(), ref_lo.view()), 0.0) << t;
  }
}

TEST_F(SimdParKernels, SpmvBitwiseAcrossThreadCountsBothRowPaths) {
  // 9-pt stencil rows take the short-row scalar path; a few dense rows
  // (>= 4 * kW nnz) exercise the gather-vectorized path.
  sparse::CsrMatrix a = sparse::laplace2d_9pt(37, 41);
  {
    std::vector<sparse::Triplet> t;
    const sparse::ord n = a.rows;
    for (sparse::ord i = 0; i < n; ++i) {
      for (sparse::offset k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
        t.push_back({i, a.col_idx[static_cast<std::size_t>(k)],
                     a.values[static_cast<std::size_t>(k)]});
      }
    }
    for (sparse::ord i = 0; i < 3; ++i) {  // three wide rows
      for (sparse::ord j = 0; j < n; j += 2) {
        t.push_back({i, j, sparse::hash01(static_cast<std::uint64_t>(i) * n + j,
                                          9) -
                               0.5});
      }
    }
    a = sparse::csr_from_triplets(n, n, std::move(t));
    ASSERT_GE(a.row_ptr[1] - a.row_ptr[0],
              static_cast<sparse::offset>(4 * kW));
  }
  const auto x = random_vector(static_cast<std::size_t>(a.cols), 71);

  util::aligned_vector<double> ref;
  for (const unsigned t : sweep()) {
    par::set_num_threads(t);
    util::aligned_vector<double> y(static_cast<std::size_t>(a.rows), 0.0);
    sparse::spmv(a, x, y);
    util::aligned_vector<double> y2(y);
    sparse::spmv(0.7, a, x, -0.3, y2);
    y.insert(y.end(), y2.begin(), y2.end());
    if (t == 1u) {
      ref = y;
      continue;
    }
    ASSERT_TRUE(y == ref) << t;
  }
}

TEST_F(SimdParKernels, GeneratorsBitwiseAcrossThreadCounts) {
  // The two-pass row builder computes each row from its index alone, so
  // every generator must assemble identical CSR arrays at any thread
  // count.
  const auto build = [] {
    std::vector<sparse::CsrMatrix> ms;
    ms.push_back(sparse::laplace2d_9pt(23, 19));
    ms.push_back(sparse::laplace3d_27pt(7, 6, 5));
    ms.push_back(sparse::convection_diffusion3d(8, 7, 6, 0.3, -0.2, 0.1));
    ms.push_back(sparse::elasticity3d(5, 4, 3, true, 0.4));
    ms.push_back(sparse::heterogeneous2d(21, 17, true, 4.0, 7));
    ms.push_back(sparse::anisotropic3d(9, 8, 7, 0.1, 0.01));
    sparse::CsrMatrix sp = sparse::laplace2d_5pt(31, 29);
    sparse::apply_diagonal_spread(sp, 3.0, 13);
    ms.push_back(std::move(sp));
    return ms;
  };
  par::set_num_threads(1);
  const auto ref = build();
  for (const unsigned t : {2u, 7u}) {
    par::set_num_threads(t);
    const auto got = build();
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_TRUE(got[i].row_ptr == ref[i].row_ptr) << t << " #" << i;
      EXPECT_TRUE(got[i].col_idx == ref[i].col_idx) << t << " #" << i;
      EXPECT_TRUE(got[i].values == ref[i].values) << t << " #" << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Aligned storage invariant.
// ---------------------------------------------------------------------------

TEST(AlignedStorage, MatrixIsCacheLineAlignedThroughCopyAndMove) {
  const auto aligned = [](const void* p) {
    return reinterpret_cast<std::uintptr_t>(p) % util::kBufferAlign == 0;
  };
  Matrix m = random_matrix(123, 7, 81);
  EXPECT_TRUE(aligned(m.data().data()));

  Matrix copy = dense::copy_of(m.view());
  EXPECT_TRUE(aligned(copy.data().data()));
  EXPECT_EQ(dense::max_abs_diff(copy.view(), m.view()), 0.0);

  Matrix assigned;
  assigned = copy;  // copy-assign
  EXPECT_TRUE(aligned(assigned.data().data()));

  const Matrix moved = std::move(copy);
  EXPECT_TRUE(aligned(moved.data().data()));
  EXPECT_EQ(dense::max_abs_diff(moved.view(), m.view()), 0.0);

  util::aligned_vector<double> v(1000, 1.0);
  EXPECT_TRUE(aligned(v.data()));
  util::aligned_vector<double> v2 = v;
  EXPECT_TRUE(aligned(v2.data()));
  const util::aligned_vector<double> v3 = std::move(v2);
  EXPECT_TRUE(aligned(v3.data()));
}

// ---------------------------------------------------------------------------
// The dd kappa boundary, re-pinned under the SIMD build: the vectorized
// pair-form Gram + dd Cholesky must still deliver O(eps) orthogonality
// decades past the double cliff (mirrors tests/test_dd.cpp's sweep).
// ---------------------------------------------------------------------------

TEST(SimdDd, CholQr2KappaBoundaryRepinned) {
  const index_t n = 1500, s = 5;
  for (const double kappa : {3e9, 1e11, 1e12}) {
    Matrix v = synth::logscaled(n, s, kappa, 53);
    Matrix r(s, s);
    ortho::OrthoContext ctx;
    ctx.mixed_precision_gram = true;
    ctx.policy = ortho::BreakdownPolicy::kThrow;
    ASSERT_NO_THROW(ortho::cholqr2(ctx, v.view(), r.view())) << kappa;
    EXPECT_LT(dense::orthogonality_error(v.view()), 1e-11) << kappa;
    EXPECT_EQ(ctx.cholesky_breakdowns, 0) << kappa;
  }
}

}  // namespace
