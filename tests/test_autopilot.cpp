// The stability autopilot: adaptive step-size ladder, on-demand
// double-double Gram escalation, and re-base recovery from
// CholeskyBreakdown — driven both through the api facade (the natural
// ill-conditioned breakdown the Ga41As41H72 surrogate provides) and
// through the krylov layer directly with the deterministic
// fault-injection seam (SStepGmresConfig::inject_chol_breakdown).
// Every decision consumes globally-reduced quantities only, so the
// trails and the solutions are checked for determinism across thread
// and rank counts.

#include "api/solver.hpp"
#include "krylov/sstep_gmres.hpp"
#include "par/config.hpp"
#include "par/spmd.hpp"
#include "sparse/generators.hpp"
#include "sparse/partition.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <string>
#include <vector>

namespace {

using namespace tsbo;

// The pinned natural-breakdown configuration (see test_sstep_gmres's
// BreakdownPolicyThrowSurfacesIllConditioning): s = 15 monomial steps
// on the Ga41As41H72 surrogate violate condition (5) and the plain
// double Gram Cholesky fails.
constexpr const char* kRampSpec =
    "solver=sstep ortho=two_stage matrix=Ga41As41H72 n=800 equilibrate=1 "
    "m=60 s=15 bs=60 rtol=1e-8 breakdown=throw max_restarts=40";

/// Sequence of (kind, s_before, s_after, dd_before, dd_after, restart)
/// — the decision trail stripped of the kappa estimates, for exact
/// comparison across runs.
std::vector<std::string> trail_of(const krylov::SolveResult& res) {
  std::vector<std::string> out;
  for (const krylov::AutopilotEvent& ev : res.autopilot_events) {
    out.push_back(ev.kind + "@" + std::to_string(ev.restart) + ":" +
                  std::to_string(ev.s_before) + "->" +
                  std::to_string(ev.s_after) + ":" +
                  (ev.dd_before ? "dd" : "d") + "->" +
                  (ev.dd_after ? "dd" : "d"));
  }
  return out;
}

struct DirectRun {
  krylov::SolveResult res;
  std::vector<double> x;
};

/// Runs two-stage s-step GMRES at the krylov layer (full config
/// access, including the fault-injection seam) on `ranks` SPMD ranks.
DirectRun run_direct(
    const sparse::CsrMatrix& a, int ranks,
    const std::function<void(krylov::SStepGmresConfig&)>& tweak) {
  const std::vector<double> b = api::ones_rhs(a);
  DirectRun out;
  out.x.assign(b.size(), 0.0);
  par::spmd_run(ranks, [&](par::Communicator& comm) {
    const sparse::RowPartition part(a.rows, comm.size());
    const sparse::DistCsr dist(a, part, comm.rank());
    const auto begin = static_cast<std::size_t>(part.begin(comm.rank()));
    const auto nloc = static_cast<std::size_t>(dist.n_local());
    std::vector<double> x(nloc, 0.0);
    krylov::SStepGmresConfig cfg;
    cfg.scheme = krylov::OrthoScheme::kTwoStage;
    tweak(cfg);
    const auto res = krylov::sstep_gmres(
        comm, dist, nullptr, std::span<const double>(b.data() + begin, nloc),
        x, cfg);
    std::copy(x.begin(), x.end(),
              out.x.begin() + static_cast<std::ptrdiff_t>(begin));
    if (comm.rank() == 0) out.res = res;
  });
  return out;
}

// ---------------------------------------------------------------------------
// The acceptance bar: a solve that aborts under the fixed configuration
// completes under the autopilot, with the decisions in the report.
// ---------------------------------------------------------------------------

TEST(Autopilot, CompletesWhereFixedConfigAborts) {
  // Fixed config: abort.
  {
    api::Solver solver(api::SolverOptions::parse(kRampSpec));
    EXPECT_THROW(solver.solve(), ortho::CholeskyBreakdown);
  }
  // Same problem, autopilot on: completes to tolerance, and the report
  // carries the decision trail (schema tsbo.solve_report/7).
  api::SolverOptions opts = api::SolverOptions::parse(kRampSpec);
  opts.autopilot = true;
  api::Solver solver(opts);
  const api::SolveReport rep = solver.solve();

  EXPECT_TRUE(rep.result.converged);
  EXPECT_LE(rep.result.true_relres, 1e-7);
  EXPECT_GE(rep.result.rebase_recoveries, 1);
  EXPECT_LT(rep.result.autopilot_final_s, 15);
  ASSERT_FALSE(rep.result.autopilot_events.empty());
  bool shrank = false;
  for (const auto& ev : rep.result.autopilot_events) {
    if (ev.kind == "shrink_s") shrank = true;
  }
  EXPECT_TRUE(shrank);

  const std::string text = rep.json();
  for (const char* needle :
       {"\"schema\": \"tsbo.solve_report/7\"", "\"autopilot\"",
        "\"enabled\": true", "\"rebase_recoveries\"", "\"final_s\"",
        "\"kind\": \"shrink_s\"", "\"kind\": \"rebase\""}) {
    EXPECT_NE(text.find(needle), std::string::npos) << "missing " << needle;
  }
}

// ---------------------------------------------------------------------------
// Policy ladder, rung by rung.
// ---------------------------------------------------------------------------

TEST(Autopilot, ShrinksStepSizeOnHighKappaEstimate) {
  // An absurdly low kappa_high makes every cycle look ill-conditioned:
  // the first decision must be shrink_s, and the ladder must walk the
  // divisors of m downward, never below ap_s_min.  The 64x64 grid keeps
  // all 4 cycles solidly mid-convergence — a near-converged basis adds
  // degenerate-direction breakdowns that belong to other tests.
  api::Solver solver(api::SolverOptions::parse(
      "solver=sstep ortho=two_stage matrix=laplace2d_5pt nx=64 "
      "rtol=1e-30 max_restarts=4 autopilot=1 ap_kappa_high=1.5 "
      "ap_kappa_low=1.0 ap_s_min=2"));
  const api::SolveReport rep = solver.solve();

  ASSERT_FALSE(rep.result.autopilot_events.empty());
  EXPECT_EQ(rep.result.autopilot_events.front().kind, "shrink_s");
  for (const auto& ev : rep.result.autopilot_events) {
    if (ev.kind != "shrink_s") {
      // Once the ladder bottoms out at ap_s_min the only move left is
      // the Gram escalation; nothing else fits this policy.
      EXPECT_EQ(ev.kind, "escalate_gram");
      continue;
    }
    EXPECT_LT(ev.s_after, ev.s_before);
    EXPECT_GE(ev.s_after, 2);       // ap_s_min
    EXPECT_EQ(60 % ev.s_after, 0);  // ladder rungs divide m
  }
  EXPECT_LT(rep.result.autopilot_final_s, 5);
  EXPECT_GE(rep.result.autopilot_final_s, 2);
}

TEST(Autopilot, EscalatesGramWhenLadderSaturated) {
  // ap_s_min = s leaves a one-rung ladder, so the only escalation left
  // is the double-double Gram.
  api::Solver solver(api::SolverOptions::parse(
      "solver=sstep ortho=two_stage matrix=laplace2d_5pt nx=64 "
      "rtol=1e-30 max_restarts=3 autopilot=1 ap_kappa_high=1.5 "
      "ap_kappa_low=1.0 ap_s_min=5"));
  const api::SolveReport rep = solver.solve();

  ASSERT_FALSE(rep.result.autopilot_events.empty());
  EXPECT_EQ(rep.result.autopilot_events.front().kind, "escalate_gram");
  EXPECT_TRUE(rep.result.autopilot_final_dd);
  EXPECT_EQ(rep.result.autopilot_final_s, 5);
}

TEST(Autopilot, GrowsBackAfterHealthyCycles) {
  // Inject a breakdown into the very first Gram Cholesky: the autopilot
  // re-bases and shrinks.  Every later cycle is healthy (Laplace panels
  // sit far below kappa_low = 1e7), so with patience = 1 the ladder
  // relaxes straight back to the configured s after one good cycle, and
  // stays there — exactly three decisions in the whole solve.
  const sparse::CsrMatrix a = sparse::laplace2d_5pt(64, 64);
  const DirectRun run = run_direct(a, 1, [](krylov::SStepGmresConfig& cfg) {
    cfg.rtol = 1e-8;
    cfg.autopilot.enabled = true;
    cfg.autopilot.kappa_high = 1e8;
    cfg.autopilot.kappa_low = 1e7;
    cfg.autopilot.patience = 1;
    cfg.inject_chol_breakdown = [](long ordinal) { return ordinal == 0; };
  });

  EXPECT_TRUE(run.res.converged);
  EXPECT_EQ(run.res.rebase_recoveries, 1);
  std::vector<std::string> kinds;
  for (const auto& ev : run.res.autopilot_events) kinds.push_back(ev.kind);
  EXPECT_EQ(kinds, (std::vector<std::string>{"rebase", "shrink_s", "grow_s"}))
      << ::testing::PrintToString(kinds);
  EXPECT_EQ(run.res.autopilot_final_s, 5);  // back at the configured s
  EXPECT_FALSE(run.res.autopilot_final_dd);
}

// ---------------------------------------------------------------------------
// Fault-injection seam.
// ---------------------------------------------------------------------------

TEST(Autopilot, InjectionSeamIsDeterministicAndHonorsThrowPolicy) {
  // The seam sees every Gram Cholesky exactly once, in a fixed global
  // order; with the autopilot OFF and policy=throw, a forced failure
  // surfaces as the ordinary CholeskyBreakdown abort.
  const sparse::CsrMatrix a = sparse::laplace2d_5pt(16, 16);
  std::vector<long> seen;
  EXPECT_THROW(
      run_direct(a, 1,
                 [&](krylov::SStepGmresConfig& cfg) {
                   cfg.policy = ortho::BreakdownPolicy::kThrow;
                   cfg.inject_chol_breakdown = [&seen](long ordinal) {
                     seen.push_back(ordinal);
                     return ordinal == 3;
                   };
                 }),
      ortho::CholeskyBreakdown);
  ASSERT_EQ(seen.size(), 4u);  // ordinals 0..3, then the forced abort
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], static_cast<long>(i));
  }
}

TEST(Autopilot, ForcedMidSolveBreakdownRecoversBitwiseAcrossThreads) {
  // Force a failure deep in the first cycle (ordinal 7 = a stage-1
  // panel factor mid-restart): the autopilot re-bases off the accepted
  // prefix, converges anyway, and — because every decision input is a
  // globally-reduced scalar — the whole run is bitwise identical at
  // every thread count.
  const sparse::CsrMatrix a = sparse::laplace2d_5pt(24, 24);
  const auto tweak = [](krylov::SStepGmresConfig& cfg) {
    cfg.rtol = 1e-8;
    cfg.autopilot.enabled = true;
    cfg.inject_chol_breakdown = [](long ordinal) { return ordinal == 7; };
  };

  std::vector<std::string> trail0;
  std::vector<double> x0;
  long iters0 = -1;
  for (const unsigned t : {1u, 2u, 7u}) {
    par::set_num_threads(t);
    const DirectRun run = run_direct(a, 2, tweak);
    par::set_num_threads(0);
    EXPECT_TRUE(run.res.converged) << "threads=" << t;
    EXPECT_GE(run.res.rebase_recoveries, 1) << "threads=" << t;
    if (t == 1u) {
      trail0 = trail_of(run.res);
      x0 = run.x;
      iters0 = run.res.iters;
      continue;
    }
    EXPECT_EQ(trail_of(run.res), trail0) << "threads=" << t;
    EXPECT_EQ(run.res.iters, iters0) << "threads=" << t;
    ASSERT_EQ(run.x.size(), x0.size());
    for (std::size_t i = 0; i < x0.size(); ++i) {
      ASSERT_EQ(run.x[i], x0[i]) << "threads=" << t << " drift at " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Determinism of the full recovery path across the acceptance matrix.
// ---------------------------------------------------------------------------

TEST(Autopilot, RecoveryBitwiseAcrossThreadsAndStableAcrossRanks) {
  // The acceptance matrix: ranks x threads in {1, 2, 7}^2 on a forced
  // first-cycle breakdown, so the run provably walks rebase + shrink +
  // grow.  Within a rank count, everything — solution bits, iteration
  // count, decision trail — must be identical across thread counts.
  // Across rank counts the reductions round differently (the
  // partitioned fold order changes), so solutions are only close; but
  // on a solve this far from any conditioning edge the decision trail
  // must still come out identical.
  const sparse::CsrMatrix a = sparse::laplace2d_5pt(64, 64);
  const auto tweak = [](krylov::SStepGmresConfig& cfg) {
    cfg.rtol = 1e-8;
    cfg.autopilot.enabled = true;
    cfg.autopilot.patience = 1;
    cfg.inject_chol_breakdown = [](long ordinal) { return ordinal == 0; };
  };

  std::vector<std::string> ref_trail;
  for (const int ranks : {1, 2, 7}) {
    std::vector<std::string> trail_t1;
    std::vector<double> x_t1;
    long iters_t1 = -1;
    for (const unsigned t : {1u, 2u, 7u}) {
      par::set_num_threads(t);
      const DirectRun run = run_direct(a, ranks, tweak);
      par::set_num_threads(0);
      ASSERT_TRUE(run.res.converged) << ranks << "x" << t;
      ASSERT_FALSE(run.res.autopilot_events.empty()) << ranks << "x" << t;
      EXPECT_GE(run.res.rebase_recoveries, 1) << ranks << "x" << t;

      if (t == 1u) {
        trail_t1 = trail_of(run.res);
        x_t1 = run.x;
        iters_t1 = run.res.iters;
      } else {
        EXPECT_EQ(trail_of(run.res), trail_t1) << ranks << "x" << t;
        EXPECT_EQ(run.res.iters, iters_t1) << ranks << "x" << t;
        ASSERT_EQ(run.x.size(), x_t1.size());
        for (std::size_t i = 0; i < x_t1.size(); ++i) {
          ASSERT_EQ(run.x[i], x_t1[i])
              << ranks << "x" << t << " drift at " << i;
        }
      }
    }
    // Decisions consume globally-reduced scalars only: the trail is a
    // pure function of those values, and on this problem they land on
    // the same side of every threshold at each rank count.
    if (ranks == 1) {
      ref_trail = trail_t1;
    } else {
      EXPECT_EQ(trail_t1, ref_trail) << "ranks=" << ranks;
    }
  }
}

}  // namespace
