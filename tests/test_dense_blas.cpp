// BLAS-1/2/3 kernels against naive references.

#include "dense/blas1.hpp"
#include "dense/blas2.hpp"
#include "dense/blas3.hpp"
#include "dense/matrix.hpp"
#include "util/random.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

namespace {

using namespace tsbo;
using dense::ConstMatrixView;
using dense::index_t;
using dense::Matrix;

Matrix random_matrix(index_t rows, index_t cols, std::uint64_t seed) {
  Matrix m(rows, cols);
  util::Xoshiro256 rng(seed);
  util::fill_normal(rng, m.data());
  return m;
}

Matrix ref_gemm_nn(double alpha, ConstMatrixView a, ConstMatrixView b,
                   double beta, ConstMatrixView c0) {
  Matrix c = dense::copy_of(c0);
  for (index_t i = 0; i < c.rows(); ++i) {
    for (index_t j = 0; j < c.cols(); ++j) {
      double s = 0.0;
      for (index_t k = 0; k < a.cols; ++k) s += a(i, k) * b(k, j);
      c(i, j) = alpha * s + beta * c0(i, j);
    }
  }
  return c;
}

TEST(Blas1, DotMatchesNaive) {
  util::Xoshiro256 rng(7);
  std::vector<double> x(1001), y(1001);
  util::fill_normal(rng, x);
  util::fill_normal(rng, y);
  double ref = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) ref += x[i] * y[i];
  EXPECT_NEAR(dense::dot(x, y), ref, 1e-10 * std::abs(ref) + 1e-12);
}

TEST(Blas1, Nrm2RobustToScale) {
  std::vector<double> x = {3e150, 4e150};
  EXPECT_DOUBLE_EQ(dense::nrm2(x), 5e150);
  std::vector<double> tiny = {3e-160, 4e-160};
  EXPECT_NEAR(dense::nrm2(tiny) / 5e-160, 1.0, 1e-12);
  std::vector<double> zero(5, 0.0);
  EXPECT_EQ(dense::nrm2(zero), 0.0);
}

TEST(Blas1, AxpyScalCopyAmax) {
  std::vector<double> x = {1.0, -2.0, 3.0};
  std::vector<double> y = {0.5, 0.5, 0.5};
  dense::axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 2.5);
  EXPECT_DOUBLE_EQ(y[1], -3.5);
  EXPECT_DOUBLE_EQ(y[2], 6.5);
  dense::scal(-1.0, y);
  EXPECT_DOUBLE_EQ(y[1], 3.5);
  EXPECT_DOUBLE_EQ(dense::amax(y), 6.5);
  std::vector<double> z(3);
  dense::vcopy(y, z);
  EXPECT_EQ(z, y);
}

TEST(Blas2, GemvBothTranspositions) {
  const Matrix a = random_matrix(17, 9, 11);
  std::vector<double> x(9), y(17, 1.0);
  util::Xoshiro256 rng(3);
  util::fill_normal(rng, x);

  std::vector<double> y_ref(17);
  for (index_t i = 0; i < 17; ++i) {
    double s = 0.0;
    for (index_t j = 0; j < 9; ++j) s += a(i, j) * x[j];
    y_ref[static_cast<std::size_t>(i)] = 2.0 * s + 3.0 * 1.0;
  }
  dense::gemv(2.0, a.view(), x, 3.0, y);
  for (index_t i = 0; i < 17; ++i) {
    EXPECT_NEAR(y[static_cast<std::size_t>(i)], y_ref[static_cast<std::size_t>(i)], 1e-12);
  }

  std::vector<double> xt(17), yt(9, 0.0);
  util::fill_normal(rng, xt);
  dense::gemv_t(1.0, a.view(), xt, 0.0, yt);
  for (index_t j = 0; j < 9; ++j) {
    double s = 0.0;
    for (index_t i = 0; i < 17; ++i) s += a(i, j) * xt[static_cast<std::size_t>(i)];
    EXPECT_NEAR(yt[static_cast<std::size_t>(j)], s, 1e-12);
  }
}

TEST(Blas2, TriangularSolves) {
  Matrix u(4, 4);
  for (index_t j = 0; j < 4; ++j) {
    for (index_t i = 0; i <= j; ++i) u(i, j) = 1.0 + i + 2 * j;
  }
  std::vector<double> x_true = {1.0, -2.0, 0.5, 3.0};
  std::vector<double> b(4, 0.0);
  for (index_t i = 0; i < 4; ++i) {
    for (index_t j = i; j < 4; ++j) b[static_cast<std::size_t>(i)] += u(i, j) * x_true[static_cast<std::size_t>(j)];
  }
  dense::trsv_upper(u.view(), b);
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(b[static_cast<std::size_t>(i)], x_true[static_cast<std::size_t>(i)], 1e-12);

  Matrix l(4, 4);
  for (index_t j = 0; j < 4; ++j) {
    for (index_t i = j; i < 4; ++i) l(i, j) = 1.0 + 2 * i + j;
  }
  std::vector<double> bl(4, 0.0);
  for (index_t i = 0; i < 4; ++i) {
    for (index_t j = 0; j <= i; ++j) bl[static_cast<std::size_t>(i)] += l(i, j) * x_true[static_cast<std::size_t>(j)];
  }
  dense::trsv_lower(l.view(), bl);
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(bl[static_cast<std::size_t>(i)], x_true[static_cast<std::size_t>(i)], 1e-12);
}

class GemmShapes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapes, NnMatchesReference) {
  const auto [m, k, n] = GetParam();
  const Matrix a = random_matrix(m, k, 101);
  const Matrix b = random_matrix(k, n, 102);
  const Matrix c0 = random_matrix(m, n, 103);

  Matrix c = dense::copy_of(c0.view());
  dense::gemm_nn(1.7, a.view(), b.view(), -0.3, c.view());
  const Matrix ref = ref_gemm_nn(1.7, a.view(), b.view(), -0.3, c0.view());
  EXPECT_LT(dense::max_abs_diff(c.view(), ref.view()), 1e-11 * (k + 1));
}

TEST_P(GemmShapes, TnMatchesReference) {
  const auto [m, k, n] = GetParam();
  // C (k x n) = A^T (k x m) * B (m x n)
  const Matrix a = random_matrix(m, k, 201);
  const Matrix b = random_matrix(m, n, 202);
  Matrix c(k, n);
  dense::gemm_tn(1.0, a.view(), b.view(), 0.0, c.view());
  for (index_t i = 0; i < k; ++i) {
    for (index_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (index_t r = 0; r < m; ++r) s += a(r, i) * b(r, j);
      EXPECT_NEAR(c(i, j), s, 1e-10 * (m + 1));
    }
  }
}

TEST_P(GemmShapes, NtMatchesReference) {
  const auto [m, k, n] = GetParam();
  // C (m x n) = A (m x k) * B^T with B (n x k)
  const Matrix a = random_matrix(m, k, 301);
  const Matrix b = random_matrix(n, k, 302);
  Matrix c(m, n);
  dense::gemm_nt(1.0, a.view(), b.view(), 0.0, c.view());
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (index_t r = 0; r < k; ++r) s += a(i, r) * b(j, r);
      EXPECT_NEAR(c(i, j), s, 1e-10 * (k + 1));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(5, 3, 2),
                      std::make_tuple(64, 6, 6), std::make_tuple(257, 5, 7),
                      std::make_tuple(300, 13, 13), std::make_tuple(1000, 2, 61),
                      std::make_tuple(33, 61, 4)));

TEST(Blas3, TrsmRightUpperInvertsTrmm) {
  const index_t n = 200, s = 7;
  Matrix b0 = random_matrix(n, s, 55);
  Matrix u(s, s);
  util::Xoshiro256 rng(56);
  for (index_t j = 0; j < s; ++j) {
    for (index_t i = 0; i < j; ++i) u(i, j) = rng.normal();
    u(j, j) = 2.0 + rng.uniform();  // well away from zero
  }
  Matrix b = dense::copy_of(b0.view());
  dense::trmm_right_upper(u.view(), b.view());   // b = b0 * U
  dense::trsm_right_upper(u.view(), b.view());   // b = b0 again
  EXPECT_LT(dense::max_abs_diff(b.view(), b0.view()), 1e-12 * s);
}

TEST(Blas3, SyrkIsSymmetricGram) {
  const Matrix a = random_matrix(150, 6, 77);
  Matrix g(6, 6);
  dense::syrk_tn(a.view(), g.view());
  for (index_t i = 0; i < 6; ++i) {
    for (index_t j = 0; j < 6; ++j) {
      EXPECT_DOUBLE_EQ(g(i, j), g(j, i));
      double s = 0.0;
      for (index_t r = 0; r < 150; ++r) s += a(r, i) * a(r, j);
      EXPECT_NEAR(g(i, j), s, 1e-10);
    }
  }
}

TEST(Blas3, FrobeniusNorm) {
  Matrix a(2, 2);
  a(0, 0) = 3.0;
  a(1, 1) = 4.0;
  EXPECT_DOUBLE_EQ(dense::frobenius_norm(a.view()), 5.0);
}

TEST(MatrixView, BlockAndColumnsViews) {
  Matrix m(6, 5);
  for (index_t j = 0; j < 5; ++j) {
    for (index_t i = 0; i < 6; ++i) m(i, j) = i + 10.0 * j;
  }
  auto blk = m.view().block(2, 1, 3, 2);
  EXPECT_EQ(blk.rows, 3);
  EXPECT_EQ(blk.cols, 2);
  EXPECT_DOUBLE_EQ(blk(0, 0), 12.0);
  EXPECT_DOUBLE_EQ(blk(2, 1), 24.0);
  blk(0, 0) = -1.0;
  EXPECT_DOUBLE_EQ(m(2, 1), -1.0);

  auto cols = m.view().columns(3, 2);
  EXPECT_DOUBLE_EQ(cols(0, 0), 30.0);
  EXPECT_DOUBLE_EQ(cols(5, 1), 45.0);
}

TEST(MatrixView, CopyAndMaxAbsDiff) {
  const Matrix a = random_matrix(10, 4, 5);
  Matrix b(10, 4);
  dense::copy(a.view(), b.view());
  EXPECT_EQ(dense::max_abs_diff(a.view(), b.view()), 0.0);
  b(3, 2) += 0.5;
  EXPECT_DOUBLE_EQ(dense::max_abs_diff(a.view(), b.view()), 0.5);
}

}  // namespace
