// Preconditioners: Jacobi, multicolor Gauss-Seidel, Chebyshev.

#include "par/spmd.hpp"
#include "precond/chebyshev.hpp"
#include "precond/gauss_seidel.hpp"
#include "precond/jacobi.hpp"
#include "sparse/generators.hpp"
#include "sparse/spmv.hpp"
#include "util/random.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace {

using namespace tsbo;

sparse::DistCsr single_rank(const sparse::CsrMatrix& a) {
  return sparse::DistCsr(a, sparse::RowPartition(a.rows, 1), 0);
}

TEST(Jacobi, InvertsDiagonalMatrixExactly) {
  auto a = sparse::csr_from_triplets(
      3, 3, {{0, 0, 2.0}, {1, 1, 4.0}, {2, 2, 0.5}});
  const auto dist = single_rank(a);
  const precond::Jacobi m(dist);
  std::vector<double> x = {2.0, 4.0, 0.5}, y(3);
  m.apply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[1], 1.0);
  EXPECT_DOUBLE_EQ(y[2], 1.0);
  EXPECT_EQ(m.name(), "Jacobi");
}

TEST(Jacobi, ZeroDiagonalFallsBackToIdentity) {
  auto a = sparse::csr_from_triplets(2, 2, {{0, 1, 1.0}, {1, 0, 1.0}});
  const auto dist = single_rank(a);
  const precond::Jacobi m(dist);
  std::vector<double> x = {3.0, -2.0}, y(2);
  m.apply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
}

TEST(GreedyColoring, ProperColoringOfGridGraph) {
  const auto a = sparse::laplace2d_9pt(12, 12);
  const auto colors = precond::greedy_coloring(a, a.rows);
  ASSERT_EQ(colors.size(), static_cast<std::size_t>(a.rows));
  // Proper: no stored edge joins equal colors.
  for (sparse::ord i = 0; i < a.rows; ++i) {
    for (auto k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      const sparse::ord j = a.col_idx[static_cast<std::size_t>(k)];
      if (j != i) {
        EXPECT_NE(colors[static_cast<std::size_t>(i)],
                  colors[static_cast<std::size_t>(j)])
            << i << "-" << j;
      }
    }
  }
  // 9-pt stencil is 8-regular: greedy needs <= 9 colors; typically 4.
  const int nc = *std::max_element(colors.begin(), colors.end()) + 1;
  EXPECT_LE(nc, 9);
  EXPECT_GE(nc, 4);
}

TEST(MulticolorGs, ActsAsExactSolveOnDiagonalMatrix) {
  auto a = sparse::csr_from_triplets(3, 3,
                                     {{0, 0, 2.0}, {1, 1, 5.0}, {2, 2, 4.0}});
  const auto dist = single_rank(a);
  const precond::MulticolorGaussSeidel m(dist);
  std::vector<double> x = {2.0, 10.0, 8.0}, y(3);
  m.apply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[1], 2.0);
  EXPECT_DOUBLE_EQ(y[2], 2.0);
}

TEST(MulticolorGs, ReducesResidualAsSmoother) {
  // Enough sweeps that the GS iteration (convergent on this SPD
  // M-matrix) visibly contracts the residual; a couple of sweeps can
  // transiently increase the 2-norm.
  const auto a = sparse::laplace2d_5pt(10, 10);
  const auto dist = single_rank(a);
  const precond::MulticolorGaussSeidel m(dist, /*sweeps=*/60);
  EXPECT_GE(m.num_colors(), 2);

  // Apply M^{-1} to b and check the residual of the resulting
  // approximate solve is smaller than ||b|| (a contraction on this SPD
  // problem).
  std::vector<double> b(static_cast<std::size_t>(a.rows), 1.0);
  std::vector<double> y(b.size()), r(b.size());
  m.apply(b, y);
  sparse::spmv(a, y, r);
  double rn = 0.0, bn = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    rn += (b[i] - r[i]) * (b[i] - r[i]);
    bn += b[i] * b[i];
  }
  EXPECT_LT(std::sqrt(rn), std::sqrt(bn));
}

TEST(MulticolorGs, SymmetricVariantAlsoContracts) {
  const auto a = sparse::laplace2d_5pt(10, 10);
  const auto dist = single_rank(a);
  const precond::MulticolorGaussSeidel m(dist, 40, /*symmetric=*/true);
  EXPECT_EQ(m.name(), "MC-SymGS");
  std::vector<double> b(static_cast<std::size_t>(a.rows), 1.0);
  std::vector<double> y(b.size()), ay(b.size());
  m.apply(b, y);
  sparse::spmv(a, y, ay);
  double rn = 0.0, bn = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    rn += (b[i] - ay[i]) * (b[i] - ay[i]);
    bn += b[i] * b[i];
  }
  EXPECT_LT(std::sqrt(rn), std::sqrt(bn));
}

TEST(MulticolorGs, BlockJacobiAcrossRanksIsLocal) {
  const auto a = sparse::laplace2d_5pt(16, 16);
  par::spmd_run(2, [&](par::Communicator& comm) {
    const sparse::RowPartition part(a.rows, comm.size());
    const sparse::DistCsr dist(a, part, comm.rank());
    const precond::MulticolorGaussSeidel m(dist);
    comm.reset_stats();
    std::vector<double> x(static_cast<std::size_t>(dist.n_local()), 1.0);
    std::vector<double> y(x.size());
    m.apply(x, y);
    // Strictly local: no communication of any kind.
    EXPECT_EQ(comm.stats().allreduces, 0u);
    EXPECT_EQ(comm.stats().p2p_rounds, 0u);
  });
}

TEST(Chebyshev, ApproximatesInverseOnSpdBlock) {
  const auto a = sparse::laplace2d_5pt(12, 12);
  const auto dist = single_rank(a);
  const precond::ChebyshevPolynomial m(dist, /*degree=*/8);
  EXPECT_GT(m.lambda_max(), 0.5);

  std::vector<double> b(static_cast<std::size_t>(a.rows), 1.0);
  std::vector<double> y(b.size()), ay(b.size());
  m.apply(b, y);
  sparse::spmv(a, y, ay);
  double rn = 0.0, bn = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    rn += (b[i] - ay[i]) * (b[i] - ay[i]);
    bn += b[i] * b[i];
  }
  // Degree-8 Chebyshev is a strong approximate inverse here.
  EXPECT_LT(std::sqrt(rn / bn), 0.5);
}

TEST(SetupExtraction, SharedSetupMatchesFusedConstructorBitwise) {
  // The service's operator cache builds MulticolorSetup /
  // ChebyshevSetup once and shares them across solver instances; the
  // extraction must not perturb a single bit of the apply.
  const auto a = sparse::laplace2d_5pt(14, 14);
  const auto dist = single_rank(a);
  std::vector<double> b(static_cast<std::size_t>(a.rows));
  util::Xoshiro256 rng(11);
  util::fill_normal(rng, b);

  const precond::MulticolorGaussSeidel gs_fused(dist, 3, /*symmetric=*/true);
  const auto gs_setup = std::make_shared<const precond::MulticolorSetup>(dist);
  const precond::MulticolorGaussSeidel gs_shared(gs_setup, 3,
                                                 /*symmetric=*/true);
  std::vector<double> y_fused(b.size()), y_shared(b.size());
  gs_fused.apply(b, y_fused);
  gs_shared.apply(b, y_shared);
  EXPECT_EQ(y_fused, y_shared);
  EXPECT_EQ(gs_fused.num_colors(), gs_shared.num_colors());

  // Two instances on one shared setup are also identical to each other.
  const precond::MulticolorGaussSeidel gs_shared2(gs_setup, 3,
                                                  /*symmetric=*/true);
  std::vector<double> y_shared2(b.size());
  gs_shared2.apply(b, y_shared2);
  EXPECT_EQ(y_shared, y_shared2);

  // Chebyshev, estimate path: the power method in ChebyshevSetup is
  // the exact arithmetic the fused constructor ran.
  const precond::ChebyshevPolynomial ch_fused(dist, /*degree=*/6,
                                              /*power_iters=*/10);
  const auto ch_setup =
      std::make_shared<const precond::ChebyshevSetup>(dist, /*power_iters=*/10);
  const precond::ChebyshevPolynomial ch_shared(ch_setup, /*degree=*/6);
  EXPECT_EQ(ch_fused.lambda_max(), ch_shared.lambda_max());
  ch_fused.apply(b, y_fused);
  ch_shared.apply(b, y_shared);
  EXPECT_EQ(y_fused, y_shared);

  // Chebyshev, explicit-interval path.
  const precond::ChebyshevPolynomial ce_fused(dist, 6, 0.1, 1.9);
  const precond::ChebyshevPolynomial ce_shared(
      std::make_shared<const precond::ChebyshevSetup>(dist, 0.1, 1.9), 6);
  ce_fused.apply(b, y_fused);
  ce_shared.apply(b, y_shared);
  EXPECT_EQ(y_fused, y_shared);
}

TEST(Chebyshev, HigherDegreeIsMoreAccurate) {
  // Use the exact spectral interval of the Jacobi-scaled 5-pt Laplacian
  // (eigenvalues 2 - cos - cos over 4): with a correct interval the
  // Chebyshev error bound is monotone in the degree.  (The estimated
  // interval of the default constructor under-covers the low end,
  // which is fine for a smoother but not monotone as a solver.)
  const int nx = 10;
  const auto a = sparse::laplace2d_5pt(nx, nx);
  const auto dist = single_rank(a);
  const double t = std::cos(M_PI / (nx + 1));
  const double lmin = (2.0 - 2.0 * t) / 2.0;  // scaled by diag = 4 -> /4*2
  const double lmax = (2.0 + 2.0 * t) / 2.0;
  std::vector<double> b(static_cast<std::size_t>(a.rows));
  util::Xoshiro256 rng(5);
  util::fill_normal(rng, b);

  auto residual_for = [&](int degree) {
    const precond::ChebyshevPolynomial m(dist, degree, lmin, lmax);
    std::vector<double> y(b.size()), ay(b.size());
    m.apply(b, y);
    sparse::spmv(a, y, ay);
    double rn = 0.0;
    for (std::size_t i = 0; i < b.size(); ++i) {
      rn += (b[i] - ay[i]) * (b[i] - ay[i]);
    }
    return std::sqrt(rn);
  };
  EXPECT_LT(residual_for(10), residual_for(3));
}

}  // namespace
