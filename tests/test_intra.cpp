// Intra-block orthogonalization: CholQR, CholQR2, shifted CholQR3,
// distributed HHQR, MGS — correctness, stability bounds (paper Fig. 6
// behaviour), synchronization counts, breakdown handling.

#include "dense/blas3.hpp"
#include "dense/svd.hpp"
#include "ortho/intra.hpp"
#include "ortho/measures.hpp"
#include "par/spmd.hpp"
#include "synth/synthetic.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

namespace {

using namespace tsbo;
using dense::index_t;
using dense::Matrix;

using IntraFn = std::function<void(ortho::OrthoContext&, dense::MatrixView,
                                   dense::MatrixView)>;

struct IntraCase {
  const char* name;
  IntraFn fn;
  double kappa_limit;    // kappa at which `stable_tol` orthogonality holds
  double stable_tol;     // orthogonality bound at kappa_limit
  double factor_tol;     // orthogonality bound at the mild kappa = 1e3
  int expected_reduces;  // per call at s = 5 (-1: don't check)
};

class IntraAlgos : public ::testing::TestWithParam<IntraCase> {};

TEST_P(IntraAlgos, FactorizesWellConditionedPanel) {
  const auto& c = GetParam();
  const index_t n = 3000, s = 5;
  const Matrix v0 = synth::logscaled(n, s, 1e3, 17);
  Matrix v = dense::copy_of(v0.view());
  Matrix r(s, s);
  ortho::OrthoContext ctx;
  c.fn(ctx, v.view(), r.view());

  // Q R == V, Q orthonormal (to the algorithm's kappa-dependent
  // accuracy: single-pass CholQR is kappa^2*eps, MGS is kappa*eps),
  // R upper triangular with non-negative diagonal.
  Matrix qr(n, s);
  dense::gemm_nn(1.0, v.view(), r.view(), 0.0, qr.view());
  EXPECT_LT(dense::max_abs_diff(qr.view(), v0.view()), 1e-11);
  EXPECT_LT(dense::orthogonality_error(v.view()), c.factor_tol);
  for (index_t j = 0; j < s; ++j) {
    EXPECT_GE(r(j, j), 0.0) << c.name;
    for (index_t i = j + 1; i < s; ++i) EXPECT_EQ(r(i, j), 0.0);
  }
}

TEST_P(IntraAlgos, StableUpToDocumentedKappa) {
  const auto& c = GetParam();
  const index_t n = 2000, s = 5;
  const Matrix v0 = synth::logscaled(n, s, c.kappa_limit, 23);
  Matrix v = dense::copy_of(v0.view());
  Matrix r(s, s);
  ortho::OrthoContext ctx;
  ctx.policy = ortho::BreakdownPolicy::kShift;
  c.fn(ctx, v.view(), r.view());
  EXPECT_LT(dense::orthogonality_error(v.view()), c.stable_tol) << c.name;
}

TEST_P(IntraAlgos, DistributedMatchesSequential) {
  const auto& c = GetParam();
  const index_t n = 1200, s = 4;
  const Matrix v0 = synth::logscaled(n, s, 1e4, 29);

  Matrix v_seq = dense::copy_of(v0.view());
  Matrix r_seq(s, s);
  ortho::OrthoContext seq_ctx;
  c.fn(seq_ctx, v_seq.view(), r_seq.view());

  for (const int p : {2, 3}) {
    Matrix v_dist(n, s);
    Matrix r_dist(s, s);
    par::spmd_run(p, [&](par::Communicator& comm) {
      const auto range = par::block_row_range(n, comm.size(), comm.rank());
      Matrix local = dense::copy_of(v0.view().block(
          static_cast<index_t>(range.begin), 0,
          static_cast<index_t>(range.size()), s));
      Matrix r_local(s, s);
      ortho::OrthoContext ctx;
      ctx.comm = &comm;
      c.fn(ctx, local.view(), r_local.view());
      // Stitch local rows back for comparison.
      dense::copy(local.view(),
                  v_dist.view().block(static_cast<index_t>(range.begin), 0,
                                      static_cast<index_t>(range.size()), s));
      if (comm.rank() == 0) dense::copy(r_local.view(), r_dist.view());
    });
    // Deterministic reductions: distributed == sequential to rounding.
    EXPECT_LT(dense::max_abs_diff(r_seq.view(), r_dist.view()),
              1e-9 * dense::frobenius_norm(r_seq.view()))
        << c.name << " p=" << p;
    EXPECT_LT(dense::max_abs_diff(v_seq.view(), v_dist.view()), 1e-9)
        << c.name << " p=" << p;
  }
}

TEST_P(IntraAlgos, SynchronizationCountMatchesPaper) {
  const auto& c = GetParam();
  if (c.expected_reduces < 0) GTEST_SKIP();
  const index_t n = 600, s = 5;
  const Matrix v0 = synth::logscaled(n, s, 1e2, 31);
  par::spmd_run(2, [&](par::Communicator& comm) {
    const auto range = par::block_row_range(n, comm.size(), comm.rank());
    Matrix local = dense::copy_of(
        v0.view().block(static_cast<index_t>(range.begin), 0,
                        static_cast<index_t>(range.size()), s));
    Matrix r(s, s);
    ortho::OrthoContext ctx;
    ctx.comm = &comm;
    comm.reset_stats();
    c.fn(ctx, local.view(), r.view());
    EXPECT_EQ(static_cast<int>(comm.stats().allreduces +
                               comm.stats().broadcasts),
              c.expected_reduces)
        << c.name;
  });
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, IntraAlgos,
    ::testing::Values(
        // Single-pass CholQR: orthogonality kappa^2 * eps (Fig. 6 law);
        // one reduce.  "Stable" only for modest kappa.
        IntraCase{"cholqr",
                  [](ortho::OrthoContext& c, dense::MatrixView v,
                     dense::MatrixView r) { ortho::cholqr(c, v, r); },
                  1e2, 1e-9, 1e-7, 1},
        // CholQR2: O(eps) up to kappa ~ eps^{-1/2} (Theorem IV.1).
        IntraCase{"cholqr2",
                  [](ortho::OrthoContext& c, dense::MatrixView v,
                     dense::MatrixView r) { ortho::cholqr2(c, v, r); },
                  1e6, 1e-12, 1e-13, 2},
        // Shifted CholQR3: stable for any numerically full-rank input.
        IntraCase{"shifted_cholqr3",
                  [](ortho::OrthoContext& c, dense::MatrixView v,
                     dense::MatrixView r) { ortho::shifted_cholqr3(c, v, r); },
                  1e12, 1e-12, 1e-13, 3},
        // HHQR: unconditionally O(eps).
        IntraCase{"hhqr",
                  [](ortho::OrthoContext& c, dense::MatrixView v,
                     dense::MatrixView r) { ortho::hhqr(c, v, r); },
                  1e14, 1e-12, 1e-13, -1},
        // MGS: orthogonality kappa * eps.
        IntraCase{"mgs",
                  [](ortho::OrthoContext& c, dense::MatrixView v,
                     dense::MatrixView r) { ortho::mgs(c, v, r); },
                  1e3, 1e-10, 1e-11, -1}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(CholQr, OrthogonalityErrorGrowsAsKappaSquared) {
  // The Fig. 6 law: after one CholQR, ||I - Q^T Q|| ~ kappa(V)^2 eps.
  const index_t n = 2000, s = 5;
  double prev_err = 0.0;
  for (const double kappa : {1e2, 1e4, 1e6}) {
    Matrix v = synth::logscaled(n, s, kappa, 41);
    Matrix r(s, s);
    ortho::OrthoContext ctx;
    ortho::cholqr(ctx, v.view(), r.view());
    const double err = dense::orthogonality_error(v.view());
    const double bound = 16 * (n * s + s * (s + 1)) * 1.1e-16 * kappa * kappa;
    EXPECT_LT(err, bound) << "kappa " << kappa;
    EXPECT_GT(err, prev_err) << "kappa " << kappa;  // grows with kappa
    prev_err = err;
  }
}

TEST(CholQr, ThrowPolicySurfacesBreakdownPastEpsHalf) {
  // kappa = 1e12 >> eps^{-1/2}: the Gram matrix is numerically
  // indefinite.  Whether a given seed produces a negative pivot is
  // rounding-dependent, so sweep seeds and require that breakdowns
  // occur and are reported via the exception under kThrow.
  int breakdowns = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Matrix v = synth::logscaled(1500, 5, 1e12, seed);
    Matrix r(5, 5);
    ortho::OrthoContext ctx;
    ctx.policy = ortho::BreakdownPolicy::kThrow;
    try {
      ortho::cholqr(ctx, v.view(), r.view());
    } catch (const ortho::CholeskyBreakdown&) {
      EXPECT_EQ(ctx.cholesky_breakdowns, 1);
      ++breakdowns;
    }
  }
  EXPECT_GE(breakdowns, 1);
}

TEST(CholQr, ShiftPolicyRecoversAndCounts) {
  // Same sweep under kShift: every run must complete, and the runs
  // that broke down must record shift retries and stay finite.
  int breakdowns = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Matrix v = synth::logscaled(1500, 5, 1e12, seed);
    Matrix r(5, 5);
    ortho::OrthoContext ctx;
    ctx.policy = ortho::BreakdownPolicy::kShift;
    EXPECT_NO_THROW(ortho::cholqr(ctx, v.view(), r.view()));
    if (ctx.cholesky_breakdowns > 0) {
      EXPECT_GE(ctx.shift_retries, 1);
      ++breakdowns;
    }
    for (index_t j = 0; j < 5; ++j) {
      for (index_t i = 0; i < 1500; ++i) EXPECT_TRUE(std::isfinite(v(i, j)));
    }
  }
  EXPECT_GE(breakdowns, 1);
}

TEST(MixedPrecision, DdGramExtendsCholQr2Range) {
  // With double-double Gram accumulation, CholQR2 survives kappa well
  // past eps^{-1/2} (the paper's related-work mixed-precision variant).
  const index_t n = 1500, s = 5;
  Matrix v = synth::logscaled(n, s, 3e9, 53);
  Matrix r(s, s);
  ortho::OrthoContext ctx;
  ctx.mixed_precision_gram = true;
  ctx.policy = ortho::BreakdownPolicy::kThrow;
  EXPECT_NO_THROW(ortho::cholqr2(ctx, v.view(), r.view()));
  EXPECT_LT(dense::orthogonality_error(v.view()), 1e-11);
}

TEST(Hhqr, RequiresRankZeroToOwnPivotRows) {
  // 6 rows on rank 0 with s = 8 would underflow the pivot block.
  par::spmd_run(2, [&](par::Communicator& comm) {
    const index_t nloc = 6;
    Matrix v(nloc, 8);
    Matrix r(8, 8);
    ortho::OrthoContext ctx;
    ctx.comm = &comm;
    EXPECT_THROW(ortho::hhqr(ctx, v.view(), r.view()), std::invalid_argument);
  });
}

TEST(Hhqr, ObservedSyncsScaleWithColumns) {
  // The paper's point: HHQR needs O(s) synchronizations.
  const index_t n = 400;
  for (const index_t s : {2, 4, 8}) {
    const Matrix v0 = synth::logscaled(n, s, 1e2, 59);
    par::spmd_run(2, [&](par::Communicator& comm) {
      const auto range = par::block_row_range(n, comm.size(), comm.rank());
      Matrix local = dense::copy_of(
          v0.view().block(static_cast<index_t>(range.begin), 0,
                          static_cast<index_t>(range.size()), s));
      Matrix r(s, s);
      ortho::OrthoContext ctx;
      ctx.comm = &comm;
      comm.reset_stats();
      ortho::hhqr(ctx, local.view(), r.view());
      const auto syncs = comm.stats().allreduces + comm.stats().broadcasts;
      EXPECT_GE(syncs, static_cast<std::uint64_t>(2 * s));
      EXPECT_LE(syncs, static_cast<std::uint64_t>(3 * s + 2));
    });
  }
}

}  // namespace
