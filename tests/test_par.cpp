// SPMD runtime: thread pool, barrier, collectives, cost model.

#include "par/spmd.hpp"
#include "par/thread_pool.hpp"
#include "util/timer.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <vector>

namespace {

using namespace tsbo;

TEST(ThreadPool, CoversRangeExactlyOnce) {
  par::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.parallel_for(hits.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SmallRangeRunsInline) {
  par::ThreadPool pool(8);
  int count = 0;
  pool.parallel_for(3, [&](std::size_t b, std::size_t e) {
    count += static_cast<int>(e - b);
  });
  EXPECT_EQ(count, 3);
}

TEST(ThreadPool, ReusableAcrossManyCalls) {
  par::ThreadPool pool(3);
  for (int rep = 0; rep < 50; ++rep) {
    std::atomic<long> sum{0};
    pool.parallel_for(1000, [&](std::size_t b, std::size_t e) {
      long local = 0;
      for (std::size_t i = b; i < e; ++i) local += static_cast<long>(i);
      sum.fetch_add(local);
    });
    EXPECT_EQ(sum.load(), 999L * 1000 / 2);
  }
}

TEST(BlockRowRange, PartitionsExactlyWithRemainder) {
  const long n = 103;
  const int p = 4;
  long total = 0;
  long prev_end = 0;
  for (int r = 0; r < p; ++r) {
    const auto range = par::block_row_range(n, p, r);
    EXPECT_EQ(range.begin, prev_end);
    prev_end = range.end;
    total += range.size();
    // Remainder rows go to the lowest ranks.
    EXPECT_TRUE(range.size() == 26 || range.size() == 25);
  }
  EXPECT_EQ(total, n);
  EXPECT_EQ(prev_end, n);
}

class SpmdRanks : public ::testing::TestWithParam<int> {};

TEST_P(SpmdRanks, AllreduceSumIsDeterministicAndCorrect) {
  const int p = GetParam();
  std::vector<std::vector<double>> results(static_cast<std::size_t>(p));
  par::spmd_run(p, [&](par::Communicator& comm) {
    std::vector<double> v = {1.0 * comm.rank(), 2.0, -1.0 * comm.rank()};
    comm.allreduce_sum(v);
    results[static_cast<std::size_t>(comm.rank())] = v;
  });
  const double rank_sum = p * (p - 1) / 2.0;
  for (int r = 0; r < p; ++r) {
    EXPECT_DOUBLE_EQ(results[static_cast<std::size_t>(r)][0], rank_sum);
    EXPECT_DOUBLE_EQ(results[static_cast<std::size_t>(r)][1], 2.0 * p);
    EXPECT_DOUBLE_EQ(results[static_cast<std::size_t>(r)][2], -rank_sum);
    // Bit-identical across ranks (deterministic reduction order).
    EXPECT_EQ(results[static_cast<std::size_t>(r)],
              results[0]);
  }
}

TEST_P(SpmdRanks, AllreduceMax) {
  const int p = GetParam();
  std::vector<double> out(static_cast<std::size_t>(p));
  par::spmd_run(p, [&](par::Communicator& comm) {
    out[static_cast<std::size_t>(comm.rank())] =
        comm.allreduce_max_scalar(static_cast<double>(comm.rank() % 3));
  });
  for (const double v : out) EXPECT_DOUBLE_EQ(v, std::min(2, p - 1));
}

TEST_P(SpmdRanks, BroadcastFromEveryRoot) {
  const int p = GetParam();
  for (int root = 0; root < p; ++root) {
    std::vector<double> seen(static_cast<std::size_t>(p));
    par::spmd_run(p, [&](par::Communicator& comm) {
      std::vector<double> v = {comm.rank() == root ? 42.5 : -1.0};
      comm.broadcast(v, root);
      seen[static_cast<std::size_t>(comm.rank())] = v[0];
    });
    for (const double v : seen) EXPECT_DOUBLE_EQ(v, 42.5);
  }
}

TEST_P(SpmdRanks, GatherConcatenatesInRankOrder) {
  const int p = GetParam();
  std::vector<double> gathered;
  par::spmd_run(p, [&](par::Communicator& comm) {
    // Rank r contributes r+1 values of value r.
    std::vector<double> mine(static_cast<std::size_t>(comm.rank()) + 1,
                             static_cast<double>(comm.rank()));
    auto all = comm.gather(mine, 0);
    if (comm.rank() == 0) gathered = all;
  });
  std::size_t idx = 0;
  for (int r = 0; r < p; ++r) {
    for (int i = 0; i <= r; ++i) {
      ASSERT_LT(idx, gathered.size());
      EXPECT_DOUBLE_EQ(gathered[idx++], static_cast<double>(r));
    }
  }
  EXPECT_EQ(idx, gathered.size());
}

TEST_P(SpmdRanks, ExchangePublishesPeerBuffers) {
  const int p = GetParam();
  std::vector<double> ok(static_cast<std::size_t>(p), 0.0);
  par::spmd_run(p, [&](par::Communicator& comm) {
    std::vector<double> mine = {100.0 + comm.rank()};
    comm.exchange_begin(mine);
    bool good = true;
    for (int peer = 0; peer < comm.size(); ++peer) {
      const auto buf = comm.peer_buffer(peer);
      good = good && buf.size() == 1 && buf[0] == 100.0 + peer;
    }
    comm.exchange_end(sizeof(double));
    ok[static_cast<std::size_t>(comm.rank())] = good ? 1.0 : 0.0;
  });
  for (const double v : ok) EXPECT_DOUBLE_EQ(v, 1.0);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, SpmdRanks, ::testing::Values(1, 2, 3, 4, 8));

TEST(Spmd, ExceptionsPropagateToCaller) {
  EXPECT_THROW(
      par::spmd_run(3,
                    [&](par::Communicator& comm) {
                      // Every rank must throw: a single-rank throw would
                      // deadlock peers blocked in a barrier by design
                      // (same as MPI).
                      if (comm.rank() >= 0) throw std::runtime_error("boom");
                    }),
      std::runtime_error);
}

TEST(Spmd, CommStatsCountOperations) {
  par::spmd_run(2, [&](par::Communicator& comm) {
    comm.reset_stats();
    double v = 1.0;
    comm.allreduce_sum(std::span<double>(&v, 1));
    comm.allreduce_sum(std::span<double>(&v, 1));
    std::vector<double> b = {1.0};
    comm.broadcast(b, 0);
    EXPECT_EQ(comm.stats().allreduces, 2u);
    EXPECT_EQ(comm.stats().broadcasts, 1u);
    EXPECT_EQ(comm.stats().bytes_allreduced, 2 * sizeof(double));
  });
}

TEST(Spmd, StatsSubtractGivesWindow) {
  par::CommStats a, b;
  a.allreduces = 10;
  a.injected_seconds = 2.0;
  a.bytes_exchanged = 300;
  a.overlapped_seconds = 0.75;
  b.allreduces = 4;
  b.injected_seconds = 0.5;
  b.bytes_exchanged = 100;
  b.overlapped_seconds = 0.25;
  const auto d = par::subtract(a, b);
  EXPECT_EQ(d.allreduces, 6u);
  EXPECT_DOUBLE_EQ(d.injected_seconds, 1.5);
  EXPECT_EQ(d.bytes_exchanged, 200u);
  EXPECT_DOUBLE_EQ(d.overlapped_seconds, 0.5);
}

// ---- split-phase collectives ----------------------------------------

TEST_P(SpmdRanks, IallreduceSumMatchesBlockingBitwise) {
  const int p = GetParam();
  std::vector<std::vector<double>> blocking(static_cast<std::size_t>(p));
  std::vector<std::vector<double>> split(static_cast<std::size_t>(p));
  par::spmd_run(p, [&](par::Communicator& comm) {
    const double r = comm.rank();
    std::vector<double> v1 = {0.1 * r, -3.0 * r, 7.5, r * r};
    std::vector<double> v2 = v1;
    comm.allreduce_sum(v1);
    auto req = comm.iallreduce_sum(v2);
    // Local compute inside the overlap window must not perturb bits.
    volatile double sink = 0.0;
    for (int i = 0; i < 1000; ++i) sink = sink + 1.0;
    req.wait();
    blocking[static_cast<std::size_t>(comm.rank())] = v1;
    split[static_cast<std::size_t>(comm.rank())] = v2;
  });
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(blocking[static_cast<std::size_t>(r)],
              split[static_cast<std::size_t>(r)]);
  }
}

TEST_P(SpmdRanks, IallreduceSumDdMatchesBlockingBitwise) {
  const int p = GetParam();
  std::vector<std::vector<double>> blocking(static_cast<std::size_t>(p));
  std::vector<std::vector<double>> split(static_cast<std::size_t>(p));
  par::spmd_run(p, [&](par::Communicator& comm) {
    const double r = comm.rank();
    std::vector<double> hi1 = {1.0 + r, 1e-30 * r, -2.5};
    std::vector<double> lo1 = {1e-18 * r, 3e-40, 0.0};
    std::vector<double> hi2 = hi1, lo2 = lo1;
    comm.allreduce_sum_dd(hi1, lo1);
    auto req = comm.iallreduce_sum_dd(hi2, lo2);
    req.wait();
    std::vector<double> b = hi1;
    b.insert(b.end(), lo1.begin(), lo1.end());
    std::vector<double> s = hi2;
    s.insert(s.end(), lo2.begin(), lo2.end());
    blocking[static_cast<std::size_t>(comm.rank())] = b;
    split[static_cast<std::size_t>(comm.rank())] = s;
  });
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(blocking[static_cast<std::size_t>(r)],
              split[static_cast<std::size_t>(r)]);
  }
}

TEST_P(SpmdRanks, IbroadcastDeliversFromEveryRoot) {
  const int p = GetParam();
  for (int root = 0; root < p; ++root) {
    std::vector<double> seen(static_cast<std::size_t>(p));
    par::spmd_run(p, [&](par::Communicator& comm) {
      std::vector<double> v = {comm.rank() == root ? 19.25 : -1.0};
      auto req = comm.ibroadcast(v, root);
      req.wait();
      seen[static_cast<std::size_t>(comm.rank())] = v[0];
    });
    for (const double v : seen) EXPECT_DOUBLE_EQ(v, 19.25);
  }
}

TEST(CommRequest, EmptyAndCompletedWaitAreNoOps) {
  par::CommRequest empty;
  EXPECT_FALSE(empty.active());
  empty.wait();  // no-op
  par::spmd_run(2, [&](par::Communicator& comm) {
    double v = 1.0;
    auto req = comm.iallreduce_sum(std::span<double>(&v, 1));
    EXPECT_TRUE(req.active());
    req.wait();
    EXPECT_FALSE(req.active());
    req.wait();  // second wait is a no-op
    EXPECT_DOUBLE_EQ(v, 2.0);
    // Move transfers ownership; the moved-from handle is inert.
    auto req2 = comm.iallreduce_sum(std::span<double>(&v, 1));
    par::CommRequest req3 = std::move(req2);
    EXPECT_FALSE(req2.active());
    EXPECT_TRUE(req3.active());
    req3.wait();
  });
}

TEST(CommRequest, DestructorCompletesOutstandingRequest) {
  // Dropping an active request must keep the ranks collective (the
  // destructor waits) and still deliver the reduced values.
  std::vector<double> out(3, 0.0);
  par::spmd_run(3, [&](par::Communicator& comm) {
    double v = 1.0;
    {
      auto req = comm.iallreduce_sum(std::span<double>(&v, 1));
    }  // destructor waits here
    out[static_cast<std::size_t>(comm.rank())] = v;
  });
  for (const double v : out) EXPECT_DOUBLE_EQ(v, 3.0);
}

TEST(CommRequest, OverlapWindowDiscountsModeledLatency) {
  // With compute between begin and wait that exceeds the modeled
  // allreduce cost, (almost) the whole latency must be accounted as
  // overlapped rather than injected.
  const auto model = par::NetworkModel::cluster();
  const double modeled = model.allreduce_seconds(4, 8);
  ASSERT_GT(modeled, 0.0);
  par::spmd_run(4, model, [&](par::Communicator& comm) {
    comm.reset_stats();
    double v = comm.rank();
    auto req = comm.iallreduce_sum(std::span<double>(&v, 1));
    util::spin_wait(4.0 * modeled);  // "interior work"
    req.wait();
    EXPECT_NEAR(comm.stats().overlapped_seconds, modeled, 1e-12);
    EXPECT_DOUBLE_EQ(comm.stats().injected_seconds, 0.0);
    // Blocking calls take no overlap credit: full cost is exposed.
    comm.allreduce_sum(std::span<double>(&v, 1));
    EXPECT_NEAR(comm.stats().injected_seconds, modeled, 1e-12);
    EXPECT_NEAR(comm.stats().overlapped_seconds, modeled, 1e-12);
  });
}

TEST(CommRequest, ExchangeWindowDiscountsP2pLatency) {
  const auto model = par::NetworkModel::cluster();
  const double modeled = model.p2p_seconds(64);
  par::spmd_run(2, model, [&](par::Communicator& comm) {
    comm.reset_stats();
    std::vector<double> mine(8, 1.0 * comm.rank());
    comm.exchange_begin(mine);
    util::spin_wait(4.0 * modeled);  // interior rows
    const auto buf = comm.peer_buffer(1 - comm.rank());
    EXPECT_DOUBLE_EQ(buf[0], 1.0 * (1 - comm.rank()));
    comm.exchange_end(64, 64);
    EXPECT_EQ(comm.stats().bytes_exchanged, 64u);
    EXPECT_NEAR(comm.stats().overlapped_seconds, modeled, 1e-12);
    EXPECT_DOUBLE_EQ(comm.stats().injected_seconds, 0.0);
  });
}

// ---- multi-request split-phase coverage -----------------------------

TEST_P(SpmdRanks, MultipleRequestsInFlightMatchBlockingOutOfOrder) {
  // Several collectives of different kinds in flight at once; waits in
  // an order different from issue order (but identical on every rank).
  const int p = GetParam();
  par::spmd_run(p, [&](par::Communicator& comm) {
    const double r = comm.rank();
    std::vector<double> a = {1.0 + r, -r}, ab = a;
    std::vector<double> b = {0.5 * r, r * r, 3.0}, bb = b;
    std::vector<double> hi = {1.0 + r, -2.5}, lo = {1e-18 * r, 3e-40};
    std::vector<double> hib = hi, lob = lo;
    std::vector<double> c = {comm.rank() == 0 ? 42.0 : -1.0}, cb = c;
    comm.allreduce_sum(ab);
    comm.allreduce_sum(bb);
    comm.allreduce_sum_dd(hib, lob);
    comm.broadcast(cb, 0);

    auto ra = comm.iallreduce_sum(a);
    auto rb = comm.iallreduce_sum(b);
    auto rd = comm.iallreduce_sum_dd(hi, lo);
    auto rc = comm.ibroadcast(c, 0);
    rb.wait();
    rd.wait();
    ra.wait();
    rc.wait();
    EXPECT_EQ(a, ab);
    EXPECT_EQ(b, bb);
    EXPECT_EQ(hi, hib);
    EXPECT_EQ(lo, lob);
    EXPECT_EQ(c, cb);
  });
}

TEST_P(SpmdRanks, RequestRingFillsToCapAndDrainsReversed) {
  // kMaxInflight simultaneous reduces, waited newest-first: slot reuse
  // and out-of-order completion must not mix payloads up.
  const int p = GetParam();
  par::spmd_run(p, [&](par::Communicator& comm) {
    const double r = comm.rank();
    std::vector<std::vector<double>> v(par::kMaxInflight);
    std::vector<par::CommRequest> reqs;
    for (int k = 0; k < par::kMaxInflight; ++k) {
      v[static_cast<std::size_t>(k)] = {k + r, 100.0 * k - r};
      reqs.push_back(comm.iallreduce_sum(v[static_cast<std::size_t>(k)]));
    }
    for (int k = par::kMaxInflight - 1; k >= 0; --k) {
      reqs[static_cast<std::size_t>(k)].wait();
    }
    const double rsum = p * (p - 1) / 2.0;  // sum of ranks
    for (int k = 0; k < par::kMaxInflight; ++k) {
      EXPECT_DOUBLE_EQ(v[static_cast<std::size_t>(k)][0], p * k + rsum);
      EXPECT_DOUBLE_EQ(v[static_cast<std::size_t>(k)][1], 100.0 * k * p - rsum);
    }
  });
}

TEST(CommRequest, DestructorCompletesWithPendingSiblings) {
  // Dropping one active request while siblings are still in flight must
  // complete only the dropped one; the siblings stay valid.
  std::vector<double> out(3 * 3, 0.0);
  par::spmd_run(3, [&](par::Communicator& comm) {
    double x = 1.0, y = 10.0 + comm.rank(), z = 100.0;
    auto rx = comm.iallreduce_sum(std::span<double>(&x, 1));
    auto rz = comm.iallreduce_sum(std::span<double>(&z, 1));
    {
      auto ry = comm.iallreduce_sum(std::span<double>(&y, 1));
    }  // destructor waits on ry with rx/rz still pending
    rx.wait();
    rz.wait();
    const auto o = static_cast<std::size_t>(3 * comm.rank());
    out[o] = x;
    out[o + 1] = y;
    out[o + 2] = z;
  });
  for (int r = 0; r < 3; ++r) {
    const auto o = static_cast<std::size_t>(3 * r);
    EXPECT_DOUBLE_EQ(out[o], 3.0);
    EXPECT_DOUBLE_EQ(out[o + 1], 33.0);  // 10+11+12
    EXPECT_DOUBLE_EQ(out[o + 2], 300.0);
  }
}

TEST(CommRequest, NestedExchangeInsideReduceWindowCreditsBothWindows) {
  // A halo exchange nested inside a pending reduce window (the
  // pipelined SpMV-under-reduce pattern): one compute stretch spanning
  // both windows earns each its own full overlap credit.
  const auto model = par::NetworkModel::cluster();
  const double modeled_ar = model.allreduce_seconds(2, 8);
  const double modeled_x = model.p2p_seconds(64);
  ASSERT_GT(modeled_ar, 0.0);
  ASSERT_GT(modeled_x, 0.0);
  par::spmd_run(2, model, [&](par::Communicator& comm) {
    comm.reset_stats();
    double v = 1.0 + comm.rank();
    auto req = comm.iallreduce_sum(std::span<double>(&v, 1));

    std::vector<double> mine(8, 1.0 * comm.rank());
    comm.exchange_begin(mine);
    util::spin_wait(4.0 * (modeled_ar + modeled_x));  // interior work
    const auto buf = comm.peer_buffer(1 - comm.rank());
    EXPECT_DOUBLE_EQ(buf[0], 1.0 * (1 - comm.rank()));
    comm.exchange_end(64, 64);

    req.wait();
    EXPECT_DOUBLE_EQ(v, 3.0);
    EXPECT_NEAR(comm.stats().overlapped_seconds, modeled_ar + modeled_x,
                1e-12);
    EXPECT_DOUBLE_EQ(comm.stats().injected_seconds, 0.0);
  });
}

TEST(Spmd, PerPeerExchangeEndChargesPerPeerRound) {
  // The per-peer exchange_end overload models one send per peer on a
  // single injection port; exposed + overlapped must equal that round
  // cost exactly.
  const auto model = par::NetworkModel::cluster();
  const std::size_t bytes[] = {64, 128};
  const double modeled = model.p2p_round_seconds(bytes);
  EXPECT_NEAR(modeled, model.p2p_seconds(64) + model.p2p_seconds(128), 1e-18);
  par::spmd_run(3, model, [&](par::Communicator& comm) {
    comm.reset_stats();
    std::vector<double> mine(8, 1.0 * comm.rank());
    comm.exchange_begin(mine);
    comm.exchange_end(bytes, 64 + 128);
    EXPECT_EQ(comm.stats().bytes_exchanged, 64u + 128u);
    EXPECT_NEAR(
        comm.stats().injected_seconds + comm.stats().overlapped_seconds,
        modeled, 1e-12);
  });
}

TEST(NetworkModel, SplitOverlapAccounting) {
  using NM = par::NetworkModel;
  const auto full = NM::split_overlap(1.0e-3, 5.0e-3);
  EXPECT_DOUBLE_EQ(full.overlapped, 1.0e-3);
  EXPECT_DOUBLE_EQ(full.exposed, 0.0);
  const auto partial = NM::split_overlap(1.0e-3, 0.25e-3);
  EXPECT_DOUBLE_EQ(partial.overlapped, 0.25e-3);
  EXPECT_DOUBLE_EQ(partial.exposed, 0.75e-3);
  const auto none = NM::split_overlap(1.0e-3, 0.0);
  EXPECT_DOUBLE_EQ(none.overlapped, 0.0);
  EXPECT_DOUBLE_EQ(none.exposed, 1.0e-3);
  const auto negative = NM::split_overlap(1.0e-3, -1.0);
  EXPECT_DOUBLE_EQ(negative.overlapped, 0.0);
  EXPECT_DOUBLE_EQ(negative.exposed, 1.0e-3);
}

TEST(NetworkModel, CostsScaleWithLogRanks) {
  const auto m = par::NetworkModel::cluster();
  EXPECT_EQ(m.allreduce_seconds(1, 64), 0.0);
  const double c2 = m.allreduce_seconds(2, 64);
  const double c16 = m.allreduce_seconds(16, 64);
  EXPECT_GT(c2, 0.0);
  EXPECT_NEAR(c16 / c2, 4.0, 1e-9);  // ceil(log2 16) / ceil(log2 2)
  EXPECT_EQ(par::NetworkModel::off().allreduce_seconds(16, 1 << 20), 0.0);
}

TEST(NetworkModel, InjectedLatencyIsObservable) {
  // With the cluster model, 100 all-reduces across 4 ranks must take at
  // least 100 * 2 stages * alpha seconds of wall time.
  const auto model = par::NetworkModel::cluster();
  const double expect_min = 100 * model.allreduce_seconds(4, 8) * 0.9;
  util::WallTimer t;
  par::spmd_run(4, model, [&](par::Communicator& comm) {
    double v = comm.rank();
    for (int i = 0; i < 100; ++i) comm.allreduce_sum(std::span<double>(&v, 1));
    EXPECT_GE(comm.stats().injected_seconds, expect_min);
  });
  EXPECT_GE(t.seconds(), expect_min);
}

TEST(PhaseTimers, AccumulateAndMerge) {
  util::PhaseTimers t;
  t.add("a", 1.0);
  t.add("a", 0.5);
  t.add("b", 2.0);
  EXPECT_DOUBLE_EQ(t.seconds("a"), 1.5);
  EXPECT_EQ(t.count("a"), 2u);
  EXPECT_DOUBLE_EQ(t.seconds("missing"), 0.0);

  util::PhaseTimers u;
  u.add("a", 3.0);
  u.add("c", 0.1);
  t.merge_max(u);
  EXPECT_DOUBLE_EQ(t.seconds("a"), 3.0);
  EXPECT_DOUBLE_EQ(t.seconds("b"), 2.0);
  EXPECT_DOUBLE_EQ(t.seconds("c"), 0.1);

  EXPECT_THROW(t.stop("never-started"), std::logic_error);
}

}  // namespace
