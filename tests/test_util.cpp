// util module: CLI parsing, table rendering, statistics, RNG quality.

#include "util/cli.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace tsbo;

TEST(Cli, ParsesKeyValueAndFlags) {
  const char* argv[] = {"prog", "--nx=128", "--verbose", "--rtol=1e-7",
                        "--ranks=1,2,4"};
  util::Cli cli(5, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("nx", 0), 128);
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_FALSE(cli.has("quiet"));
  EXPECT_DOUBLE_EQ(cli.get_double("rtol", 0.0), 1e-7);
  EXPECT_EQ(cli.get_int("missing", 42), 42);
  EXPECT_EQ(cli.get_int_list("ranks", {}), (std::vector<int>{1, 2, 4}));
  EXPECT_EQ(cli.get_int_list("absent", {7}), (std::vector<int>{7}));
}

TEST(Cli, RejectsPositionalArguments) {
  const char* argv[] = {"prog", "stray"};
  EXPECT_THROW(util::Cli(2, const_cast<char**>(argv)), std::invalid_argument);
}

TEST(Table, RendersAlignedCells) {
  util::Table t({"name", "value"});
  t.row().add("alpha").add(1.5, 1);
  t.row().add("b").add(22);
  t.separator();
  t.row().add("gamma").add("x");
  const std::string s = t.str();
  EXPECT_NE(s.find("| alpha | 1.5   |"), std::string::npos);
  EXPECT_NE(s.find("| b     | 22    |"), std::string::npos);
  // Header, 3 rows, 4 separators.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 8);
}

TEST(Table, SpeedupAndSciFormatting) {
  EXPECT_EQ(util::speedup_str(2.0, 1.0), "2.0x");
  EXPECT_EQ(util::speedup_str(1.0, 2.0), "0.5x");
  EXPECT_EQ(util::speedup_str(1.0, 0.0), "-");
  EXPECT_EQ(util::sci(12345.678, 2), "1.23e+04");
  EXPECT_EQ(util::sci(-1e-15, 1), "-1.0e-15");
}

TEST(Stats, MinMeanMax) {
  util::MinMeanMax s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  s.add(2.0);
  s.add(-1.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.min(), -1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_EQ(s.count(), 3u);
}

TEST(Random, DeterministicPerSeed) {
  util::Xoshiro256 a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
  }
  bool any_diff = false;
  util::Xoshiro256 a2(7);
  for (int i = 0; i < 100; ++i) any_diff |= a2.next() != c.next();
  EXPECT_TRUE(any_diff);
}

TEST(Random, UniformRangeAndMoments) {
  util::Xoshiro256 rng(3);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
    sum2 += u * u;
  }
  EXPECT_NEAR(sum / n, 0.5, 5e-3);
  EXPECT_NEAR(sum2 / n - 0.25, 1.0 / 12.0, 5e-3);
}

TEST(Random, NormalMoments) {
  util::Xoshiro256 rng(11);
  double sum = 0.0, sum2 = 0.0, sum4 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
    sum4 += x * x * x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
  EXPECT_NEAR(sum4 / n, 3.0, 0.15);  // Gaussian kurtosis
}

TEST(Random, UniformIndexInRange) {
  util::Xoshiro256 rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform_index(17), 17u);
  }
}

TEST(Timer, WallTimerMeasuresSpinWait) {
  util::WallTimer t;
  util::spin_wait(5e-3);
  const double el = t.seconds();
  EXPECT_GE(el, 4.5e-3);
  EXPECT_LT(el, 0.25);
}

TEST(Timer, ScopedPhaseAccumulates) {
  util::PhaseTimers pt;
  {
    util::ScopedPhase p(pt, "region");
    util::spin_wait(2e-3);
  }
  {
    util::ScopedPhase p(pt, "region");
    util::spin_wait(2e-3);
  }
  EXPECT_GE(pt.seconds("region"), 3.5e-3);
  EXPECT_EQ(pt.count("region"), 2u);
  EXPECT_EQ(pt.names(), std::vector<std::string>{"region"});
}

TEST(Timer, DoubleStartThrows) {
  util::PhaseTimers pt;
  pt.start("x");
  EXPECT_THROW(pt.start("x"), std::logic_error);
  pt.stop("x");
  EXPECT_NO_THROW(pt.start("x"));
  pt.stop("x");
}

}  // namespace
