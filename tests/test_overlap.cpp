// Split-phase runtime end to end: compute-communication overlap
// accounting through DistCsr, matrix_powers, the ortho managers, and
// the s-step solver — with the paper's per-algorithm sync counts
// (5 / 2 / 1 + s/bs) re-pinned over the split-phase paths and the
// solver trajectory proven independent of the overlap machinery.

#include "api/solver.hpp"
#include "krylov/matrix_powers.hpp"
#include "krylov/sstep_gmres.hpp"
#include "ortho/manager.hpp"
#include "ortho/multivector.hpp"
#include "par/config.hpp"
#include "par/spmd.hpp"
#include "sparse/generators.hpp"
#include "sparse/spmv.hpp"
#include "util/random.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace {

using namespace tsbo;
using dense::index_t;
using dense::Matrix;

TEST(Overlap, DistSpmvHidesP2pLatencyBehindInteriorRows) {
  // A matrix large enough that the interior rows take longer than the
  // modeled p2p round: the whole halo latency must land in
  // overlapped_seconds and none of it in injected_seconds.
  const auto a = sparse::laplace2d_9pt(160, 160);
  const auto model = par::NetworkModel::cluster();
  par::spmd_run(2, model, [&](par::Communicator& comm) {
    const sparse::RowPartition part(a.rows, comm.size());
    const sparse::DistCsr dist(a, part, comm.rank());
    const auto nloc = static_cast<std::size_t>(dist.n_local());
    std::vector<double> x(nloc, 1.0), y(nloc);
    dist.spmv(comm, x, y);  // warm up (page in the matrix)
    comm.reset_stats();
    dist.spmv(comm, x, y);
    EXPECT_GT(comm.stats().overlapped_seconds, 0.0);
    EXPECT_EQ(comm.stats().p2p_rounds, 1u);
    EXPECT_EQ(comm.stats().bytes_exchanged,
              static_cast<std::uint64_t>(dist.n_ghost()) * sizeof(double));
  });
}

TEST(Overlap, MatrixPowersOverlapsEveryExchange) {
  const auto a = sparse::laplace2d_9pt(96, 96);
  const index_t s = 5;
  par::spmd_run(2, par::NetworkModel::cluster(), [&](par::Communicator& comm) {
    const sparse::RowPartition part(a.rows, comm.size());
    const sparse::DistCsr dist(a, part, comm.rank());
    krylov::PrecOperator op(dist, nullptr);
    const auto nloc = dist.n_local();
    Matrix cols(nloc, s + 1);
    util::Xoshiro256 rng(17);
    util::fill_normal(rng,
                      std::span<double>(cols.col(0),
                                        static_cast<std::size_t>(nloc)));
    comm.reset_stats();
    krylov::matrix_powers(comm, op, krylov::KrylovBasis::monomial(s),
                          cols.view(), 1, s, nullptr);
    EXPECT_EQ(comm.stats().p2p_rounds, static_cast<std::uint64_t>(s));
    EXPECT_GT(comm.stats().overlapped_seconds, 0.0);
  });
}

TEST(Overlap, SolveValuesIndependentOfOverlapAccounting) {
  // The overlap machinery discounts modeled wall time only — the solver
  // trajectory (iters, residuals, solution bits) must be identical
  // with and without a network model, and overlapped_seconds must be
  // strictly positive whenever fabric latency is modeled.
  const auto run = [](const std::string& net) {
    api::Solver solver(api::SolverOptions::parse(
        "solver=sstep ortho=two_stage matrix=laplace2d_5pt nx=48 ranks=2 "
        "rtol=1e-8 net=" +
        net));
    const api::SolveReport rep = solver.solve();
    return std::make_tuple(rep.result.iters, rep.result.true_relres,
                           rep.result.comm_stats, solver.solution());
  };
  const auto [iters_off, relres_off, comm_off, x_off] = run("off");
  const auto [iters_on, relres_on, comm_on, x_on] = run("cluster");
  EXPECT_EQ(iters_off, iters_on);
  EXPECT_DOUBLE_EQ(relres_off, relres_on);
  ASSERT_EQ(x_off.size(), x_on.size());
  for (std::size_t i = 0; i < x_off.size(); ++i) {
    EXPECT_EQ(x_off[i], x_on[i]) << "solution bit drift at " << i;
  }
  EXPECT_DOUBLE_EQ(comm_off.overlapped_seconds, 0.0);
  EXPECT_DOUBLE_EQ(comm_off.injected_seconds, 0.0);
  EXPECT_GT(comm_on.overlapped_seconds, 0.0);
  EXPECT_GT(comm_on.injected_seconds, 0.0);
  EXPECT_EQ(comm_off.allreduces, comm_on.allreduces);
  EXPECT_EQ(comm_off.p2p_rounds, comm_on.p2p_rounds);
}

// ---- sync counts over the split-phase paths -------------------------
//
// The paper's accounting (manager.hpp): BCGS2+CholQR2 = 5, BCGS-PIP2 =
// 2, two-stage = 1 + s/bs global synchronizations per s steps.  The
// split-phase refactor routes every reduce through iallreduce + wait;
// these pins prove the restructuring did not add or merge syncs.

struct SyncCase {
  const char* scheme;
  index_t bs;
  double per_panel;  // all-reduces per s-step panel, steady state
};

class SplitPhaseSyncs : public ::testing::TestWithParam<SyncCase> {};

TEST_P(SplitPhaseSyncs, PerPanelAllreduceCountPinned) {
  const auto& c = GetParam();
  const auto a = sparse::laplace2d_5pt(24, 24);
  const index_t s = 5;
  const index_t npanels = 12;  // m = 60
  par::spmd_run(2, [&](par::Communicator& comm) {
    const sparse::RowPartition part(a.rows, comm.size());
    const auto nloc = static_cast<index_t>(
        part.end(comm.rank()) - part.begin(comm.rank()));
    ortho::OrthoContext ctx;
    ctx.comm = &comm;
    // Shift recovery is rank-local (no extra reduces), so the pinned
    // counts hold even if a random panel trips a Cholesky cliff.
    ctx.policy = ortho::BreakdownPolicy::kShift;

    auto manager = [&]() -> std::unique_ptr<ortho::BlockOrthoManager> {
      if (std::string(c.scheme) == "bcgs2") {
        return ortho::make_bcgs2_manager(ortho::IntraKind::kCholQR2);
      }
      if (std::string(c.scheme) == "bcgs_pip2") {
        return ortho::make_bcgs_pip2_manager();
      }
      return ortho::make_two_stage_manager(c.bs);
    }();

    const index_t m = s * npanels;
    Matrix basis(nloc, m + 1);
    Matrix r(m + 1, m + 1), l(m + 1, m + 1);
    util::Xoshiro256 rng(7 + comm.rank());
    // Random full-rank panels are enough: only the comm counts matter.
    util::fill_normal(rng, basis.data());
    // The managers assume the seed column is normalized (the solver
    // seeds with r / ||r||): the Pythagorean S = V^T V - R^T R is only
    // positive definite against an orthonormal prefix.
    {
      std::span<double> q0(basis.col(0), static_cast<std::size_t>(nloc));
      const double nrm = ortho::global_norm(ctx, q0);
      for (double& v : q0) v /= nrm;
    }
    manager->reset();
    comm.reset_stats();
    for (index_t p = 0; p < npanels; ++p) {
      manager->note_mpk_start(ctx, l.view(), p * s);
      manager->add_panel(ctx, basis.view(), p * s + 1, s, r.view(), l.view());
    }
    manager->finalize(ctx, basis.view(), m + 1, r.view(), l.view());
    const double per_panel =
        static_cast<double>(comm.stats().allreduces) / npanels;
    EXPECT_NEAR(per_panel, c.per_panel, 1e-9)
        << c.scheme << " bs=" << c.bs;
    EXPECT_NEAR(per_panel,
                manager->syncs_per_s_steps(s, c.bs > 0 ? c.bs : m), 1e-9);
  });
}

INSTANTIATE_TEST_SUITE_P(
    PaperAccounting, SplitPhaseSyncs,
    ::testing::Values(SyncCase{"bcgs2", 0, 5.0},
                      SyncCase{"bcgs_pip2", 0, 2.0},
                      SyncCase{"two_stage", 60, 1.0 + 5.0 / 60.0},
                      SyncCase{"two_stage", 20, 1.0 + 5.0 / 20.0}),
    [](const auto& info) {
      return std::string(info.param.scheme) + "_bs" +
             std::to_string(info.param.bs);
    });

// ---- pipelined s-step runtime ---------------------------------------

TEST(Pipelined, DepthBitIdenticalAcrossRanksAndThreads) {
  // pipeline_depth selects only the accounting of the lookahead window
  // — the schedule (and so every arithmetic operation) is the same at
  // depth 0 and depth 1.  Pin bitwise-identical solutions and unchanged
  // sync counts at ranks {1, 2, 7} x threads {1, 2, 7}.
  const auto run = [](int ranks, int depth) {
    api::Solver solver(api::SolverOptions::parse(
        "solver=sstep ortho=two_stage matrix=laplace2d_5pt nx=40 s=5 bs=20 "
        "rtol=1e-8 ranks=" +
        std::to_string(ranks) +
        " pipeline_depth=" + std::to_string(depth)));
    const api::SolveReport rep = solver.solve();
    return std::make_tuple(rep.result.iters, rep.result.comm_stats,
                           rep.result.lookahead_hits,
                           rep.result.lookahead_misses, solver.solution());
  };
  for (const int ranks : {1, 2, 7}) {
    for (const unsigned threads : {1u, 2u, 7u}) {
      par::set_num_threads(threads);
      const auto [it0, cs0, hits0, miss0, x0] = run(ranks, 0);
      const auto [it1, cs1, hits1, miss1, x1] = run(ranks, 1);
      EXPECT_EQ(it0, it1) << "ranks=" << ranks << " threads=" << threads;
      EXPECT_EQ(hits0, hits1);
      EXPECT_EQ(miss0, miss1);
      // Sync counts unchanged: the lookahead rides inside the stage-1
      // reduce that add_panel issued anyway.
      EXPECT_EQ(cs0.allreduces, cs1.allreduces);
      EXPECT_EQ(cs0.broadcasts, cs1.broadcasts);
      EXPECT_EQ(cs0.p2p_rounds, cs1.p2p_rounds);
      EXPECT_EQ(cs0.bytes_allreduced, cs1.bytes_allreduced);
      ASSERT_EQ(x0.size(), x1.size());
      for (std::size_t i = 0; i < x0.size(); ++i) {
        ASSERT_EQ(x0[i], x1[i])
            << "solution bit drift at " << i << " ranks=" << ranks
            << " threads=" << threads;
      }
      // The lookahead actually engages (speculation survives the
      // quality guard on at least some panels).
      EXPECT_GT(hits0 + miss0, 0);
    }
  }
  par::set_num_threads(0);  // restore the default thread count
}

TEST(Pipelined, DepthOneStrictlyReducesExposedComm) {
  // Under a modeled fabric the depth-1 window earns overlap credit for
  // the speculative MPK; exposed comm seconds must strictly drop while
  // the solution stays bitwise identical (same CI gate as the bench).
  const auto run = [](int depth) {
    api::Solver solver(api::SolverOptions::parse(
        "solver=sstep ortho=two_stage matrix=laplace2d_5pt nx=48 s=5 bs=60 "
        "rtol=1e-8 ranks=2 net=calibrated pipeline_depth=" +
        std::to_string(depth)));
    const api::SolveReport rep = solver.solve();
    return std::make_tuple(rep.result.comm_stats, rep.result.lookahead_hits,
                           solver.solution());
  };
  const auto [cs0, hits0, x0] = run(0);
  const auto [cs1, hits1, x1] = run(1);
  EXPECT_EQ(hits0, hits1);
  ASSERT_GT(hits0 + 0, 0);  // speculation engaged — credit is earnable
  EXPECT_LT(cs1.injected_seconds, cs0.injected_seconds);
  EXPECT_GT(cs1.overlapped_seconds, cs0.overlapped_seconds);
  ASSERT_EQ(x0.size(), x1.size());
  for (std::size_t i = 0; i < x0.size(); ++i) {
    ASSERT_EQ(x0[i], x1[i]) << "solution bit drift at " << i;
  }
}

TEST(Overlap, ManagerOverlapHooksPreserveBits) {
  // bcgs_pip with and without an overlap hook must produce identical
  // coefficients and panel bits: the hook window must not perturb the
  // reduction.
  const index_t n = 500, q0 = 10, s = 5;
  par::spmd_run(2, [&](par::Communicator& comm) {
    const auto nloc = static_cast<index_t>(
        par::block_row_range(n, comm.size(), comm.rank()).size());
    ortho::OrthoContext ctx;
    ctx.comm = &comm;
    util::Xoshiro256 rng(11 + comm.rank());
    Matrix v0(nloc, q0 + s);
    util::fill_normal(rng, v0.data());
    Matrix q = dense::copy_of(v0.view().columns(0, q0));
    {
      Matrix rq(q0, q0);
      Matrix rq_prev(0, q0);
      ortho::bcgs_pip(ctx, q.view().columns(0, 0), q.view(), rq_prev.view(),
                      rq.view());
    }

    const auto run = [&](bool with_hook) {
      Matrix v = dense::copy_of(v0.view().columns(q0, s));
      Matrix r_prev(q0, s), r_diag(s, s);
      int hook_calls = 0;
      ortho::bcgs_pip(ctx, q.view(), v.view(), r_prev.view(), r_diag.view(),
                      with_hook ? ortho::OverlapHook([&] { ++hook_calls; })
                                : ortho::OverlapHook(nullptr));
      if (with_hook) EXPECT_EQ(hook_calls, 1);
      return std::make_tuple(std::move(v), std::move(r_prev),
                             std::move(r_diag));
    };
    auto [v1, rp1, rd1] = run(false);
    auto [v2, rp2, rd2] = run(true);
    EXPECT_EQ(dense::max_abs_diff(v1.view(), v2.view()), 0.0);
    EXPECT_EQ(dense::max_abs_diff(rp1.view(), rp2.view()), 0.0);
    EXPECT_EQ(dense::max_abs_diff(rd1.view(), rd2.view()), 0.0);
  });
}

}  // namespace
