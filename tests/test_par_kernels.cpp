// Thread-parallel kernel layer: parallel-vs-serial bitwise equality for
// the deterministic chunked kernels, plus ThreadPool stress tests.

#include "dense/blas1.hpp"
#include "dense/blas2.hpp"
#include "dense/blas3.hpp"
#include "par/config.hpp"
#include "par/thread_pool.hpp"
#include "sparse/generators.hpp"
#include "sparse/spmv.hpp"
#include "util/random.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace {

using namespace tsbo;
using dense::index_t;
using dense::Matrix;

/// Thread counts the kernels must agree across: serial, even, odd
/// (exercises remainder chunks), and whatever the host offers.
std::vector<unsigned> sweep_thread_counts() {
  return {1u, 2u, 7u, std::max(1u, std::thread::hardware_concurrency())};
}

/// Restores the global threading config after each test, and lowers the
/// dispatch grain so modest test sizes actually cross the threshold.
class ParKernels : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_grain_ = par::parallel_grain();
    par::set_parallel_grain(512);
  }
  void TearDown() override {
    par::set_num_threads(0);
    par::set_parallel_grain(saved_grain_);
  }

 private:
  std::size_t saved_grain_ = 0;
};

Matrix random_matrix(index_t rows, index_t cols, std::uint64_t seed) {
  Matrix m(rows, cols);
  util::Xoshiro256 rng(seed);
  util::fill_normal(rng, m.data());
  return m;
}

void expect_bitwise_equal(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (index_t j = 0; j < a.cols(); ++j) {
    for (index_t i = 0; i < a.rows(); ++i) {
      ASSERT_EQ(a(i, j), b(i, j)) << "entry (" << i << ", " << j << ")";
    }
  }
}

// Uneven row count: several reduction chunks plus a remainder.
constexpr index_t kRows = 3 * 4096 + 517;

TEST_F(ParKernels, GemmTnBitwiseAcrossThreadCounts) {
  const Matrix a = random_matrix(kRows, 7, 1);
  const Matrix b = random_matrix(kRows, 5, 2);
  const Matrix c0 = random_matrix(7, 5, 3);

  Matrix ref;
  for (const unsigned t : sweep_thread_counts()) {
    par::set_num_threads(t);
    Matrix c = dense::copy_of(c0.view());
    dense::gemm_tn(0.5, a.view(), b.view(), -2.0, c.view());
    if (ref.rows() == 0) {
      ref = std::move(c);
    } else {
      SCOPED_TRACE(testing::Message() << "threads = " << t);
      expect_bitwise_equal(ref, c);
    }
  }
}

TEST_F(ParKernels, GemmNnBitwiseAcrossThreadCounts) {
  const Matrix q = random_matrix(kRows, 6, 4);
  const Matrix r = random_matrix(6, 4, 5);
  const Matrix v0 = random_matrix(kRows, 4, 6);

  Matrix ref;
  for (const unsigned t : sweep_thread_counts()) {
    par::set_num_threads(t);
    Matrix v = dense::copy_of(v0.view());
    dense::gemm_nn(-1.0, q.view(), r.view(), 1.0, v.view());
    if (ref.rows() == 0) {
      ref = std::move(v);
    } else {
      SCOPED_TRACE(testing::Message() << "threads = " << t);
      expect_bitwise_equal(ref, v);
    }
  }
}

TEST_F(ParKernels, TrsmTrmmBitwiseAcrossThreadCounts) {
  const Matrix u0 = random_matrix(5, 5, 7);
  Matrix u(5, 5);
  for (index_t j = 0; j < 5; ++j) {
    for (index_t i = 0; i <= j; ++i) u(i, j) = u0(i, j);
    u(j, j) += 4.0;  // well-conditioned triangle
  }
  const Matrix b0 = random_matrix(kRows, 5, 8);

  Matrix ref_solve, ref_mult;
  for (const unsigned t : sweep_thread_counts()) {
    par::set_num_threads(t);
    Matrix bs = dense::copy_of(b0.view());
    dense::trsm_right_upper(u.view(), bs.view());
    Matrix bm = dense::copy_of(b0.view());
    dense::trmm_right_upper(u.view(), bm.view());
    if (ref_solve.rows() == 0) {
      ref_solve = std::move(bs);
      ref_mult = std::move(bm);
    } else {
      SCOPED_TRACE(testing::Message() << "trsm threads = " << t);
      expect_bitwise_equal(ref_solve, bs);
      SCOPED_TRACE(testing::Message() << "trmm threads = " << t);
      expect_bitwise_equal(ref_mult, bm);
    }
  }
}

TEST_F(ParKernels, SpmvBitwiseAcrossThreadCounts) {
  const sparse::CsrMatrix a = sparse::laplace2d_9pt(113, 97);
  const Matrix xm = random_matrix(a.cols, 1, 9);
  const std::vector<double> x(xm.data().begin(), xm.data().end());

  std::vector<double> ref, ref_scaled;
  for (const unsigned t : sweep_thread_counts()) {
    par::set_num_threads(t);
    std::vector<double> y(static_cast<std::size_t>(a.rows), 0.0);
    sparse::spmv(a, x, y);
    std::vector<double> ys(static_cast<std::size_t>(a.rows), 1.5);
    sparse::spmv(0.75, a, x, -0.25, ys);
    if (ref.empty()) {
      ref = y;
      ref_scaled = ys;
    } else {
      EXPECT_EQ(ref, y) << "threads = " << t;
      EXPECT_EQ(ref_scaled, ys) << "threads = " << t;
    }
  }
}

TEST_F(ParKernels, SpmvScaledMatchesPlainPlusAxpby) {
  // The unified pointer-based path: alpha/beta variant must equal
  // alpha * (A x) + beta * y against the plain product.
  const sparse::CsrMatrix a = sparse::laplace2d_9pt(41, 37);
  const Matrix xm = random_matrix(a.cols, 1, 10);
  const std::vector<double> x(xm.data().begin(), xm.data().end());
  std::vector<double> ax(static_cast<std::size_t>(a.rows), 0.0);
  sparse::spmv(a, x, ax);
  std::vector<double> y(static_cast<std::size_t>(a.rows), 2.0);
  sparse::spmv(3.0, a, x, -1.0, y);
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_NEAR(y[i], 3.0 * ax[i] - 2.0, 1e-12);
  }
}

TEST_F(ParKernels, Blas1ReductionsBitwiseAcrossThreadCounts) {
  const Matrix a = random_matrix(kRows, 2, 11);
  const std::span<const double> x(a.col(0), static_cast<std::size_t>(kRows));
  const std::span<const double> y(a.col(1), static_cast<std::size_t>(kRows));

  par::set_num_threads(1);
  const double dot1 = dense::dot(x, y);
  const double nrm1 = dense::nrm2(x);
  const double sq1 = dense::sumsq(x);
  const double amax1 = dense::amax(x);
  for (const unsigned t : sweep_thread_counts()) {
    par::set_num_threads(t);
    EXPECT_EQ(dot1, dense::dot(x, y)) << "threads = " << t;
    EXPECT_EQ(nrm1, dense::nrm2(x)) << "threads = " << t;
    EXPECT_EQ(sq1, dense::sumsq(x)) << "threads = " << t;
    EXPECT_EQ(amax1, dense::amax(x)) << "threads = " << t;
  }
}

TEST_F(ParKernels, RepeatedRunsAreBitwiseIdentical) {
  const Matrix a = random_matrix(kRows, 9, 12);
  const Matrix b = random_matrix(kRows, 9, 13);
  par::set_num_threads(std::max(2u, std::thread::hardware_concurrency()));
  Matrix first(9, 9);
  dense::gemm_tn(1.0, a.view(), b.view(), 0.0, first.view());
  for (int rep = 0; rep < 5; ++rep) {
    Matrix c(9, 9);
    dense::gemm_tn(1.0, a.view(), b.view(), 0.0, c.view());
    expect_bitwise_equal(first, c);
  }
}

TEST_F(ParKernels, GemvBitwiseAcrossThreadCounts) {
  const Matrix a = random_matrix(kRows, 6, 14);
  const Matrix xm = random_matrix(6, 1, 15);
  const std::vector<double> x(xm.data().begin(), xm.data().end());

  std::vector<double> ref;
  for (const unsigned t : sweep_thread_counts()) {
    par::set_num_threads(t);
    std::vector<double> y(static_cast<std::size_t>(kRows), 0.5);
    dense::gemv(2.0, a.view(), x, -0.5, y);
    if (ref.empty()) {
      ref = y;
    } else {
      EXPECT_EQ(ref, y) << "threads = " << t;
    }
  }
}

TEST_F(ParKernels, EnvAndExplicitThreadCountPrecedence) {
  par::set_num_threads(3);
  EXPECT_EQ(par::num_threads(), 3u);
  ASSERT_EQ(setenv("TSBO_NUM_THREADS", "5", 1), 0);
  EXPECT_EQ(par::num_threads(), 3u);  // explicit setting wins until reset
  par::set_num_threads(0);            // re-resolve: env wins over hardware
  EXPECT_EQ(par::num_threads(), 5u);
  ASSERT_EQ(unsetenv("TSBO_NUM_THREADS"), 0);
  par::set_num_threads(0);
  EXPECT_GE(par::num_threads(), 1u);
}

// ---- ThreadPool stress -----------------------------------------------

TEST(ThreadPoolStress, EmptyRangeNeverInvokes) {
  par::ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::size_t, std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolStress, RangeSmallerThanChunkRunsInlineOnce) {
  par::ThreadPool pool(8);
  std::atomic<int> calls{0};
  std::atomic<long> covered{0};
  pool.parallel_for(5, [&](std::size_t b, std::size_t e) {
    calls.fetch_add(1);
    covered.fetch_add(static_cast<long>(e - b));
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(covered.load(), 5);
}

TEST(ThreadPoolStress, ExceptionPropagatesToCaller) {
  par::ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100000,
                        [&](std::size_t b, std::size_t e) {
                          for (std::size_t i = b; i < e; ++i) {
                            if (i == 31337) throw std::runtime_error("boom");
                          }
                        }),
      std::runtime_error);
}

TEST(ThreadPoolStress, PoolSurvivesExceptionsAndStaysCorrect) {
  par::ThreadPool pool(4);
  for (int rep = 0; rep < 3; ++rep) {
    EXPECT_THROW(pool.parallel_for(
                     50000, [&](std::size_t, std::size_t) {
                       throw std::runtime_error("every chunk throws");
                     }),
                 std::runtime_error);
    std::vector<std::atomic<int>> hits(50000);
    pool.parallel_for(hits.size(), [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
    });
    long total = 0;
    for (const auto& h : hits) total += h.load();
    EXPECT_EQ(total, 50000);
  }
}

TEST(ThreadPoolStress, GrainedHelpersHandleConcurrentCallers) {
  // Kernels invoked from many threads at once (the SPMD pattern) must
  // fall back to serial execution instead of corrupting the shared
  // pool, with identical results.
  par::set_parallel_grain(256);
  par::set_num_threads(4);
  const Matrix a = random_matrix(20000, 3, 21);
  const Matrix b = random_matrix(20000, 3, 22);
  Matrix expected(3, 3);
  dense::gemm_tn(1.0, a.view(), b.view(), 0.0, expected.view());

  std::vector<Matrix> results(8);
  std::vector<std::thread> callers;
  callers.reserve(results.size());
  for (auto& out : results) {
    callers.emplace_back([&a, &b, &out] {
      out = Matrix(3, 3);
      dense::gemm_tn(1.0, a.view(), b.view(), 0.0, out.view());
    });
  }
  for (auto& th : callers) th.join();
  for (const Matrix& c : results) expect_bitwise_equal(expected, c);
  par::set_num_threads(0);
  par::set_parallel_grain(0);
}

}  // namespace
