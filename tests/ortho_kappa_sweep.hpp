#pragma once
// Shared kappa-sweep harness for the registered s-step ortho schemes.
//
// Drives one scheme, named by its ortho-registry key, over glued panels
// of prescribed condition number through the BlockOrthoManager
// interface — the same note_mpk_start / add_panel / finalize loop the
// solver runs — and reports the three facts the stability story needs:
// whether the Gram Cholesky broke down (hard-failure policy), the final
// orthogonality error of the accepted columns, and what the
// conditioning monitor estimated along the way.  test_dd.cpp sweeps
// every scheme through this to pin each one's stability boundary
// against the paper's conditions (1)/(5)/(9).

#include "api/options.hpp"
#include "dense/svd.hpp"
#include "krylov/sstep_gmres.hpp"
#include "ortho/manager.hpp"
#include "ortho/multivector.hpp"
#include "synth/synthetic.hpp"

#include <cmath>
#include <string>

namespace tsbo::test {

struct KappaSweepResult {
  bool breakdown = false;     ///< CholeskyBreakdown under kThrow
  double ortho_error = 0.0;   ///< ||I - Q^T Q|| over the accepted columns
  double monitor_kappa = 0.0; ///< peak basis-kappa estimate (0 = no Cholesky)
};

struct KappaSweepSpec {
  dense::index_t n = 600;
  dense::index_t s = 5;
  dense::index_t bs = 10;
  int panels = 4;
  bool dd_gram = false;
  std::uint64_t seed = 7;
};

/// Runs `scheme` (an ortho-registry key) over glued panels of condition
/// number `kappa` under the hard-failure breakdown policy.
inline KappaSweepResult kappa_sweep(const std::string& scheme, double kappa,
                                    const KappaSweepSpec& spec = {}) {
  using dense::index_t;
  using dense::Matrix;

  const index_t m = spec.s * spec.panels;
  api::SolverOptions opts = api::SolverOptions::parse(
      "solver=sstep ortho=" + scheme + " s=" + std::to_string(spec.s) +
      " bs=" + std::to_string(spec.bs) + " m=" + std::to_string(m));
  const krylov::SStepGmresConfig cfg = opts.sstep_config();
  auto mgr = krylov::make_manager(cfg);
  mgr->reset();

  synth::GluedSpec glue;
  glue.n = spec.n;
  glue.panels = spec.panels;
  glue.panel_cols = spec.s;
  glue.kappa_panel = kappa;
  glue.growth = 1.0;
  const Matrix vpanels = synth::glued(glue, spec.seed);

  Matrix basis(spec.n, m + 1);
  {
    const Matrix q0 = synth::random_orthonormal(spec.n, 1, spec.seed + 1);
    dense::copy(q0.view(), basis.view().columns(0, 1));
    dense::copy(vpanels.view(), basis.view().columns(1, m));
  }
  Matrix r(m + 1, m + 1), l(m + 1, m + 1);
  r(0, 0) = 1.0;

  ortho::OrthoContext ctx;
  ctx.policy = ortho::BreakdownPolicy::kThrow;
  ctx.mixed_precision_gram = spec.dd_gram;

  KappaSweepResult out;
  index_t accepted = 1;
  try {
    for (int p = 0; p < spec.panels; ++p) {
      const index_t q0 = static_cast<index_t>(p) * spec.s + 1;
      mgr->note_mpk_start(ctx, l.view(), q0 - 1);
      mgr->add_panel(ctx, basis.view(), q0, spec.s, r.view(), l.view());
      accepted = q0 + spec.s;
    }
    accepted = mgr->finalize(ctx, basis.view(), m + 1, r.view(), l.view());
  } catch (const ortho::CholeskyBreakdown&) {
    out.breakdown = true;
  }
  out.monitor_kappa = std::sqrt(ctx.take_gram_kappa_peak());
  if (!out.breakdown) {
    out.ortho_error =
        dense::orthogonality_error(basis.view().columns(0, accepted));
  }
  return out;
}

}  // namespace tsbo::test
