// Synthetic test-matrix factory: the generators behind Figs. 6-8.

#include "dense/svd.hpp"
#include "synth/synthetic.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace tsbo;
using dense::index_t;
using dense::Matrix;

TEST(RandomOrthonormal, SmallPathIsExactlyOrthonormal) {
  const Matrix q = synth::random_orthonormal(200, 7, 3);
  EXPECT_LT(dense::orthogonality_error(q.view()), 1e-13);
}

TEST(RandomOrthonormal, ReflectorPathIsExactlyOrthonormal) {
  // Large enough to trigger the reflector-product fast path.
  const Matrix q = synth::random_orthonormal(300000, 20, 3);
  EXPECT_LT(dense::orthogonality_error(q.view()), 1e-12);
}

TEST(RandomOrthonormal, SeedsDiffer) {
  const Matrix a = synth::random_orthonormal(50, 3, 1);
  const Matrix b = synth::random_orthonormal(50, 3, 2);
  EXPECT_GT(dense::max_abs_diff(a.view(), b.view()), 1e-3);
  const Matrix c = synth::random_orthonormal(50, 3, 1);
  EXPECT_EQ(dense::max_abs_diff(a.view(), c.view()), 0.0);
}

class LogscaledKappa : public ::testing::TestWithParam<double> {};

TEST_P(LogscaledKappa, ConditionNumberIsExact) {
  const double kappa = GetParam();
  const Matrix v = synth::logscaled(2000, 5, kappa, 7);
  const double measured = dense::cond_2(v.view());
  EXPECT_NEAR(std::log10(measured), std::log10(kappa), 0.05)
      << "target " << kappa << " measured " << measured;
}

INSTANTIATE_TEST_SUITE_P(KappaSweep, LogscaledKappa,
                         ::testing::Values(1e1, 1e4, 1e7, 1e10, 1e13));

TEST(Logscaled, RejectsBadKappa) {
  EXPECT_THROW(synth::logscaled(10, 2, 0.5, 1), std::invalid_argument);
}

TEST(Glued, PanelConditionNumbersAreUniform) {
  synth::GluedSpec spec;
  spec.n = 3000;
  spec.panels = 6;
  spec.panel_cols = 5;
  spec.kappa_panel = 1e6;
  spec.growth = 1.0;
  const Matrix v = synth::glued(spec, 11);

  for (int j = 0; j < spec.panels; ++j) {
    const auto panel = v.view().columns(spec.panel_cols * j, spec.panel_cols);
    EXPECT_NEAR(std::log10(dense::cond_2(panel)), 6.0, 0.05) << "panel " << j;
  }
  // Uniform growth=1: the whole matrix has the same kappa as each panel.
  EXPECT_NEAR(std::log10(dense::cond_2(v.view())), 6.0, 0.05);
}

TEST(Glued, CumulativeConditionGrowsGeometrically) {
  // The Fig. 8 matrix: panel kappa 1e7 fixed, cumulative kappa
  // 2^{j-1} * 1e7.
  synth::GluedSpec spec;
  spec.n = 4000;
  spec.panels = 8;
  spec.panel_cols = 5;
  spec.kappa_panel = 1e7;
  spec.growth = 2.0;
  const Matrix v = synth::glued(spec, 13);

  for (int j = 1; j <= spec.panels; ++j) {
    const auto head = v.view().columns(0, spec.panel_cols * j);
    const double expected = std::pow(2.0, j - 1) * 1e7;
    EXPECT_NEAR(std::log10(dense::cond_2(head)), std::log10(expected), 0.08)
        << "after " << j << " panels";
    const auto panel = v.view().columns(spec.panel_cols * (j - 1), spec.panel_cols);
    EXPECT_NEAR(std::log10(dense::cond_2(panel)), 7.0, 0.05);
  }
}

TEST(Glued, SingularValueScheduleMatchesSpec) {
  synth::GluedSpec spec;
  spec.n = 100;
  spec.panels = 3;
  spec.panel_cols = 4;
  spec.kappa_panel = 1e5;
  spec.growth = 4.0;
  for (int j = 0; j < 3; ++j) {
    const auto sv = synth::glued_panel_singular_values(spec, j);
    ASSERT_EQ(sv.size(), 4u);
    EXPECT_NEAR(sv.front(), std::pow(4.0, -j), 1e-12);
    EXPECT_NEAR(sv.front() / sv.back(), 1e5, 1e-6 * 1e5);
  }
}

TEST(Glued, ValidatesSpec) {
  synth::GluedSpec spec;
  spec.n = 10;
  spec.panels = 4;
  spec.panel_cols = 5;  // 20 cols > 10 rows
  EXPECT_THROW(synth::glued(spec, 1), std::invalid_argument);
  spec.panels = 0;
  EXPECT_THROW(synth::glued(spec, 1), std::invalid_argument);
}

}  // namespace
