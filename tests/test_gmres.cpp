// Standard GMRES: convergence, restarts, preconditioning, edge cases —
// driven through the api::Solver facade (options strings in, reports
// out), which is how every harness and example runs the solver.

#include "api/solver.hpp"
#include "sparse/generators.hpp"
#include "sparse/spmv.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace {

using namespace tsbo;

struct Problem {
  sparse::CsrMatrix a;
  std::vector<double> b;
  std::vector<double> x_star;
};

Problem laplace_problem(int nx, int ny) {
  Problem p;
  p.a = sparse::laplace2d_5pt(nx, ny);
  p.x_star.assign(static_cast<std::size_t>(p.a.rows), 1.0);
  p.b = api::ones_rhs(p.a);
  return p;
}

/// Runs GMRES distributed over `ranks` ranks via the facade and
/// returns (result, gathered solution).  `spec` overlays the defaults.
std::pair<krylov::SolveResult, std::vector<double>> run_gmres(
    const Problem& prob, int ranks, const std::string& spec = "") {
  api::SolverOptions opts =
      api::SolverOptions::parse("solver=gmres " + spec);
  opts.ranks = ranks;
  api::Solver solver(opts);
  solver.set_matrix_ref(prob.a, "test");
  solver.set_rhs(prob.b);
  const api::SolveReport rep = solver.solve();
  return {rep.result, solver.solution()};
}

double error_vs_exact(const Problem& p, const std::vector<double>& x) {
  double e = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    e = std::max(e, std::abs(x[i] - p.x_star[i]));
  }
  return e;
}

TEST(Gmres, SolvesLaplaceToTolerance) {
  const Problem p = laplace_problem(32, 32);
  const auto [res, x] = run_gmres(p, 1, "rtol=1e-8");
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.true_relres, 1e-7);
  EXPECT_LT(error_vs_exact(p, x), 1e-4);
  EXPECT_GT(res.iters, 60);  // needs restarts at m = 60
  EXPECT_GT(res.restarts, 1);
}

class GmresRanks : public ::testing::TestWithParam<int> {};

TEST_P(GmresRanks, DistributedIterationCountsMatchSequential) {
  const Problem p = laplace_problem(24, 24);
  const auto [seq, xs] = run_gmres(p, 1, "rtol=1e-6");
  const auto [dist, xd] = run_gmres(p, GetParam(), "rtol=1e-6");
  // Deterministic reductions: identical iteration trajectory.
  EXPECT_EQ(seq.iters, dist.iters);
  EXPECT_TRUE(dist.converged);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_NEAR(xs[i], xd[i], 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, GmresRanks, ::testing::Values(2, 3, 5));

TEST(Gmres, ZeroRhsConvergesInstantly) {
  Problem p = laplace_problem(8, 8);
  std::fill(p.b.begin(), p.b.end(), 0.0);
  const auto [res, x] = run_gmres(p, 1);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iters, 0);
  for (const double v : x) EXPECT_EQ(v, 0.0);
}

TEST(Gmres, ExactInitialGuessNoIterations) {
  const Problem p = laplace_problem(8, 8);
  api::Solver solver(api::SolverOptions::parse("solver=gmres ranks=1"));
  solver.set_matrix_ref(p.a, "test");
  solver.set_rhs(p.b);
  solver.set_initial_guess(p.x_star);  // start at the solution
  const api::SolveReport rep = solver.solve();
  EXPECT_TRUE(rep.result.converged);
  EXPECT_EQ(rep.result.iters, 0);
}

TEST(Gmres, MaxItersCapRespected) {
  const Problem p = laplace_problem(48, 48);
  const auto [res, x] = run_gmres(p, 1, "rtol=1e-14 max_iters=25");
  EXPECT_FALSE(res.converged);
  EXPECT_LE(res.iters, 25);
  EXPECT_GT(res.iters, 0);
}

TEST(Gmres, MgsVariantAgreesWithCgs2) {
  const Problem p = laplace_problem(20, 20);
  const auto [cgs2, x1] = run_gmres(p, 1, "ortho=cgs2 rtol=1e-8");
  const auto [mgs, x2] = run_gmres(p, 1, "ortho=mgs rtol=1e-8");
  EXPECT_TRUE(cgs2.converged);
  EXPECT_TRUE(mgs.converged);
  // Same problem, same restart structure: iteration counts agree to a
  // few steps (different rounding paths).
  EXPECT_NEAR(static_cast<double>(cgs2.iters), static_cast<double>(mgs.iters),
              5.0);
}

TEST(Gmres, JacobiPreconditioningReducesIterations) {
  // Jacobi helps once the diagonal varies: use the heterogeneous matrix.
  Problem p;
  p.a = sparse::heterogeneous2d(24, 24, false, 2.0, 3);
  p.x_star.assign(static_cast<std::size_t>(p.a.rows), 1.0);
  p.b = api::ones_rhs(p.a);

  const auto [plain, x1] = run_gmres(p, 2, "rtol=1e-8");
  const auto [prec, x2] = run_gmres(p, 2, "rtol=1e-8 precond=jacobi");
  EXPECT_TRUE(plain.converged);
  EXPECT_TRUE(prec.converged);
  EXPECT_LT(prec.iters, plain.iters);
  EXPECT_LE(prec.true_relres, 1e-6);
}

TEST(Gmres, CgsSyncCountPerIteration) {
  // CGS2: 2 projection reduces + 1 norm per step (the baseline cost the
  // paper's block methods amortize).
  const Problem p = laplace_problem(16, 16);
  const auto [res, x] = run_gmres(p, 2, "rtol=1e-6");
  ASSERT_TRUE(res.converged);
  // allreduces ~= 3 per iteration + ~2 per restart + initial norms.
  const double per_iter = static_cast<double>(res.comm_stats.allreduces) /
                          static_cast<double>(res.iters);
  EXPECT_NEAR(per_iter, 3.0, 0.2);
}

TEST(Gmres, TracksTrueResidualIndependently) {
  const Problem p = laplace_problem(24, 24);
  const auto [res, x] = run_gmres(p, 1, "rtol=1e-9");
  EXPECT_TRUE(res.converged);
  // Recurrence and true residual agree at convergence (orthonormal basis).
  EXPECT_NEAR(std::log10(res.true_relres + 1e-300),
              std::log10(res.relres + 1e-300), 1.0);
}

}  // namespace
