// The api facade layer: SolverOptions parse/serialize round-trips and
// rejection behaviour, registry coverage for every scheme /
// preconditioner / matrix-source name, the SolveReport JSON schema, the
// per-restart observer, Cli typo rejection, and facade-vs-direct-krylov
// equivalence.

#include "api/solver.hpp"
#include "krylov/sstep_gmres.hpp"
#include "ortho/manager.hpp"
#include "par/spmd.hpp"
#include "sparse/generators.hpp"
#include "sparse/mm_io.hpp"
#include "sparse/partition.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

namespace {

using namespace tsbo;

// ---- SolverOptions ---------------------------------------------------

TEST(SolverOptions, ParseSerializeRoundTrip) {
  const api::SolverOptions a = api::SolverOptions::parse(
      "solver=sstep ortho=bcgs_pip2 basis=newton precond=jacobi m=30 s=3 "
      "bs=15 rtol=2.5e-9 max_iters=12345 max_restarts=7 lambda_min=0.01 "
      "lambda_max=8 mixed_precision_gram=1 breakdown=throw ranks=3 "
      "net=ethernet matrix=laplace3d_7pt nx=12 ny=10 nz=8 equilibrate=1 "
      "autopilot=1 ap_kappa_high=5e7 ap_kappa_low=1e4 ap_s_min=2 "
      "ap_patience=3");
  const api::SolverOptions b = api::SolverOptions::parse(a.to_kv());
  EXPECT_EQ(a, b);
  // And through the one-line echo.
  const api::SolverOptions c = api::SolverOptions::parse(a.to_string());
  EXPECT_EQ(a, c);
  // Spot-check lowered values.
  EXPECT_EQ(b.m, 30);
  EXPECT_EQ(b.rtol, 2.5e-9);
  EXPECT_TRUE(b.mixed_precision_gram);
  EXPECT_EQ(b.breakdown, "throw");
}

TEST(SolverOptions, SpecRoundTripQuotesWhitespaceValues) {
  api::SolverOptions a = api::SolverOptions::parse("matrix=file");
  a.matrix_file = "/data/my matrix.mtx";
  EXPECT_NE(a.to_string().find("matrix_file=\"/data/my matrix.mtx\""),
            std::string::npos);
  EXPECT_EQ(api::SolverOptions::parse(a.to_string()), a);
  EXPECT_THROW(api::SolverOptions::parse("matrix_file=\"unterminated"),
               std::invalid_argument);
}

TEST(SolverOptions, DefaultOrthoResolvesPerSolver) {
  EXPECT_EQ(api::SolverOptions::parse("solver=sstep").ortho, "two_stage");
  EXPECT_EQ(api::SolverOptions::parse("solver=gmres").ortho, "cgs2");
  // A default-constructed struct (never through parse()) must still
  // validate and lower: "" resolves at use via resolved_ortho().
  const api::SolverOptions raw;
  EXPECT_NO_THROW(raw.validate());
  EXPECT_NO_THROW(raw.sstep_config());
}

TEST(SolverOptions, SolverOverlayResetsIncompatibleInheritedOrtho) {
  // "solver=gmres" on an s-step base (ortho already resolved to
  // two_stage) must fall back to the gmres default...
  const api::SolverOptions base = api::SolverOptions::parse("solver=sstep");
  EXPECT_EQ(api::SolverOptions::parse("solver=gmres", base).ortho, "cgs2");
  // ...but an explicit or compatible scheme is preserved.
  EXPECT_EQ(api::SolverOptions::parse("solver=gmres ortho=mgs", base).ortho,
            "mgs");
  const api::SolverOptions gbase =
      api::SolverOptions::parse("solver=gmres ortho=mgs");
  EXPECT_EQ(api::SolverOptions::parse("solver=sstep", gbase).ortho,
            "two_stage");
  EXPECT_EQ(api::SolverOptions::parse("rtol=1e-8", gbase).ortho, "mgs");
}

TEST(SolverOptions, RejectsUnknownKeyWithSuggestion) {
  try {
    api::SolverOptions::parse("shceme=two_stage");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("shceme"), std::string::npos) << msg;
  }
  try {
    api::SolverOptions::parse("mx=100");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    // Levenshtein distance 1 from "nx": suggestion expected.
    EXPECT_NE(std::string(e.what()).find("did you mean"), std::string::npos);
  }
}

TEST(SolverOptions, RejectsInvalidValues) {
  EXPECT_THROW(api::SolverOptions::parse("m=abc"), std::invalid_argument);
  EXPECT_THROW(api::SolverOptions::parse("m=12x"), std::invalid_argument);
  EXPECT_THROW(api::SolverOptions::parse("rtol=tiny"), std::invalid_argument);
  EXPECT_THROW(api::SolverOptions::parse("mixed_precision_gram=2"),
               std::invalid_argument);
  EXPECT_THROW(api::SolverOptions::parse("key-without-value"),
               std::invalid_argument);
}

TEST(SolverOptions, RejectsOutOfRangeValuesWithRangeText) {
  // Numeric keys that parse fine but violate their range must fail at
  // validate() with a message naming the key, the offending value, and
  // the accepted range (the same spirit as the did-you-mean hint).
  const auto expect_range_error = [](const std::string& spec,
                                     const std::string& needle) {
    try {
      api::SolverOptions::parse(spec).validate();
      FAIL() << "expected invalid_argument for " << spec;
    } catch (const std::invalid_argument& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("out of range"), std::string::npos) << msg;
      EXPECT_NE(msg.find(needle), std::string::npos) << msg;
    }
  };
  expect_range_error("m=0", "m=0");
  expect_range_error("s=-3", "s=-3");
  expect_range_error("pipeline_depth=-1", "expected >= 0");
  expect_range_error("ranks=0", "ranks=0");
  expect_range_error("rtol=-1e-6", "a finite number > 0");
  expect_range_error("ny=-2", "0 inherits nx");
  expect_range_error("ap_s_min=0", "ap_s_min=0");
  expect_range_error("solver=sstep autopilot=1 ap_kappa_high=1e3",
                     "a finite number > ap_kappa_low");
  expect_range_error("warm_start=2", "warm_start=2 out of range");
  expect_range_error("warm_start=-1", "expected 0 or 1");
  expect_range_error("lambda_min=nan", "a finite number");
  expect_range_error("lambda_max=inf", "a finite number");
  expect_range_error("precond_lambda_min=-inf", "a finite number");
  expect_range_error("precond_lambda_max=nan", "a finite number");

  // The autopilot's monitor lives in the s-step panel loop.
  try {
    api::SolverOptions::parse("solver=gmres autopilot=1").validate();
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("requires solver=sstep"),
              std::string::npos);
  }
  // In-range values pass, including the autopilot knobs.
  EXPECT_NO_THROW(api::SolverOptions::parse(
                      "solver=sstep autopilot=1 ap_kappa_high=1e8 "
                      "ap_kappa_low=1e4 ap_s_min=2 ap_patience=3")
                      .validate());
}

TEST(SolverOptions, ValidateCatchesCrossFieldErrors) {
  // s-step-only scheme under standard GMRES (and vice versa).
  EXPECT_THROW(
      api::SolverOptions::parse("solver=gmres ortho=two_stage").validate(),
      std::invalid_argument);
  EXPECT_THROW(api::SolverOptions::parse("solver=sstep ortho=mgs").validate(),
               std::invalid_argument);
  EXPECT_THROW(api::SolverOptions::parse("solver=hybrid").validate(),
               std::invalid_argument);
  EXPECT_THROW(api::SolverOptions::parse("basis=legendre").validate(),
               std::invalid_argument);
  EXPECT_THROW(api::SolverOptions::parse("net=warp").validate(),
               std::invalid_argument);
  EXPECT_THROW(api::SolverOptions::parse("breakdown=retry").validate(),
               std::invalid_argument);
  // An unknown matrix source fails at validate(), not first solve().
  EXPECT_THROW(api::SolverOptions::parse("matrix=bogus_name").validate(),
               std::invalid_argument);
  EXPECT_NO_THROW(api::SolverOptions::parse("solver=sstep").validate());
}

TEST(SolverOptions, FromCliReadsEveryKey) {
  const char* argv[] = {"prog", "--ortho=bcgs_pip2", "--m=30", "--s=3",
                        "--rtol=1e-4"};
  util::Cli cli(5, const_cast<char**>(argv));
  const api::SolverOptions opts = api::SolverOptions::from_cli(cli);
  EXPECT_EQ(opts.ortho, "bcgs_pip2");
  EXPECT_EQ(opts.m, 30);
  EXPECT_EQ(opts.s, 3);
  EXPECT_EQ(opts.rtol, 1e-4);
  // from_cli queried every option key, so nothing is "unknown".
  EXPECT_NO_THROW(cli.reject_unknown());
}

// ---- registries ------------------------------------------------------

TEST(Registries, OrthoCoversEverySchemeName) {
  const std::vector<std::string> names = api::ortho_registry().names();
  ASSERT_GE(names.size(), 7u);  // cgs2, mgs + 5 block schemes
  for (const std::string& name : names) {
    const api::OrthoEntry& entry = api::ortho_registry().at(name);
    EXPECT_FALSE(entry.description.empty()) << name;
    if (entry.sstep) {
      const api::SolverOptions opts =
          api::SolverOptions::parse("solver=sstep ortho=" + name);
      const krylov::SStepGmresConfig cfg = opts.sstep_config();
      const auto mgr = krylov::make_manager(cfg);
      ASSERT_NE(mgr, nullptr) << name;
      EXPECT_FALSE(mgr->name().empty()) << name;
    } else {
      const api::SolverOptions opts =
          api::SolverOptions::parse("solver=gmres ortho=" + name);
      EXPECT_NO_THROW(opts.gmres_config()) << name;
    }
  }
}

TEST(Registries, UnknownNameErrorsCarrySuggestions) {
  try {
    (void)api::ortho_registry().at("two_stge");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("two_stage"), std::string::npos) << msg;
    EXPECT_NE(msg.find("known:"), std::string::npos) << msg;
  }
}

TEST(Registries, PrecondBuildsEveryEntry) {
  const sparse::CsrMatrix a = sparse::laplace2d_5pt(8, 8);
  const sparse::RowPartition part(a.rows, 1);
  const sparse::DistCsr dist(a, part, 0);
  const api::SolverOptions opts = api::SolverOptions::parse("");
  for (const std::string& name : api::precond_registry().names()) {
    const api::PrecondEntry& entry = api::precond_registry().at(name);
    const auto prec = entry.make(opts, dist);
    if (name == "none") {
      EXPECT_EQ(prec, nullptr);
    } else {
      ASSERT_NE(prec, nullptr) << name;
      EXPECT_FALSE(prec->name().empty()) << name;
    }
  }
}

TEST(Registries, MatrixBuildsEverySource) {
  api::SolverOptions opts = api::SolverOptions::parse("");
  opts.nx = 6;
  opts.n = 400;  // keeps the surrogates small
  for (const std::string& name : api::matrix_registry().names()) {
    if (name == "file") continue;  // exercised below
    opts.matrix = name;
    const sparse::CsrMatrix a = api::make_matrix(opts);
    EXPECT_GT(a.rows, 0) << name;
    EXPECT_GT(a.nnz(), 0) << name;
  }
}

TEST(Registries, MatrixFileSourceRoundTripsThroughMatrixMarket) {
  const sparse::CsrMatrix a = sparse::laplace2d_5pt(5, 5);
  const std::string path = ::testing::TempDir() + "tsbo_api_test.mtx";
  sparse::write_matrix_market_file(path, a);

  api::SolverOptions opts = api::SolverOptions::parse("matrix=file");
  EXPECT_THROW(api::make_matrix(opts), std::invalid_argument);  // no path
  opts.matrix_file = path;
  std::string label;
  const sparse::CsrMatrix b = api::make_matrix(opts, &label);
  EXPECT_EQ(label, path);
  EXPECT_TRUE(sparse::approx_equal(a, b, 1e-14));
}

TEST(Registries, SelfRegisteredSchemeRunsThroughManagerFactory) {
  // A "new" scheme plugs in by name: no OrthoScheme enum growth, the
  // entry routes through SStepGmresConfig::manager_factory.
  api::OrthoEntry entry;
  entry.description = "test-only alias of the two-stage manager";
  entry.sstep = true;
  entry.configure_sstep = [](const api::SolverOptions&,
                             krylov::SStepGmresConfig& cfg) {
    cfg.manager_factory = [](const krylov::SStepGmresConfig& c) {
      return ortho::make_two_stage_manager(c.bs);
    };
  };
  api::ortho_registry().add("two_stage_alias", entry);

  const sparse::CsrMatrix a = sparse::laplace2d_5pt(16, 16);
  api::Solver solver(api::SolverOptions::parse(
      "solver=sstep ortho=two_stage_alias ranks=2 rtol=1e-6"));
  solver.set_matrix_ref(a, "laplace");
  const api::SolveReport rep = solver.solve();
  EXPECT_TRUE(rep.result.converged);
  EXPECT_EQ(rep.result.iters % 60, 0);  // two-stage granularity
}

// ---- SolveReport JSON ------------------------------------------------

TEST(SolveReport, JsonMatchesGoldenSchema) {
  api::Solver solver(api::SolverOptions::parse(
      "solver=sstep ortho=two_stage matrix=laplace2d_5pt nx=16 ranks=2 "
      "rtol=1e-6"));
  const api::SolveReport rep = solver.solve();
  const std::string text = rep.json();

  std::string error;
  EXPECT_TRUE(util::json_validate(text, &error)) << error;

  // Golden schema: the keys every consumer (compare tooling, plotting)
  // relies on must be present.
  for (const char* needle :
       {"\"schema\": \"tsbo.solve_report/7\"", "\"options\"", "\"matrix\"",
        "\"environment\"", "\"ranks\"", "\"threads\"", "\"result\"",
        "\"converged\"", "\"iters\"", "\"restarts\"", "\"relres\"",
        "\"true_relres\"", "\"time\"", "\"spmv\"", "\"ortho\"", "\"total\"",
        "\"ortho_breakdown\"", "\"phase_seconds\"", "\"comm\"",
        "\"allreduces\"", "\"bytes_exchanged\"", "\"exposed_seconds\"",
        "\"overlapped_seconds\"", "\"lookahead_hits\"",
        "\"lookahead_misses\"", "\"pipeline_depth\"", "\"service\"",
        "\"cache_hit\"", "\"warm_started\"", "\"reused\"", "\"history\"",
        "\"explicit_relres\"", "\"autopilot\"", "\"max_kappa_estimate\"",
        "\"rebase_recoveries\"", "\"final_s\"", "\"final_gram\"",
        "\"events\"",
        "\"ortho\": \"two_stage\"", "\"matrix\": \"laplace2d_5pt\""}) {
    EXPECT_NE(text.find(needle), std::string::npos) << "missing " << needle;
  }
  // The options echo must itself re-parse to the run's options.
  EXPECT_EQ(api::SolverOptions::parse(rep.options.to_string()), rep.options);
}

TEST(SolveReport, ReportLogAggregatesAndSaves) {
  api::Solver solver(api::SolverOptions::parse(
      "solver=gmres matrix=laplace2d_5pt nx=12 ranks=1 rtol=1e-6"));
  api::ReportLog log("test_log");
  log.add(solver.solve());
  log.add(solver.solve());
  ASSERT_EQ(log.size(), 2u);

  std::string error;
  EXPECT_TRUE(util::json_validate(log.json(), &error)) << error;
  EXPECT_NE(log.json().find("tsbo.report_log/1"), std::string::npos);

  EXPECT_FALSE(log.save(""));      // no-op sinks
  EXPECT_FALSE(log.save("none"));
  const std::string path = ::testing::TempDir() + "tsbo_api_log.json";
  EXPECT_TRUE(log.save(path));
}

// ---- observer --------------------------------------------------------

TEST(Observer, HistoryRecordsEveryRestart) {
  // Tight tolerance + capped restarts: a fixed number of cycles.
  api::Solver solver(api::SolverOptions::parse(
      "solver=sstep ortho=two_stage matrix=laplace2d_5pt nx=24 ranks=2 "
      "rtol=1e-30 max_restarts=3"));
  int live_events = 0;
  solver.on_restart([&](const krylov::ProgressEvent& ev) {
    ++live_events;
    EXPECT_GT(ev.iters, 0);
    EXPECT_NE(ev.timers, nullptr);
  });
  const api::SolveReport rep = solver.solve();

  EXPECT_EQ(rep.result.restarts, 3);
  ASSERT_EQ(rep.history.size(), 3u);
  EXPECT_EQ(live_events, 3);
  for (std::size_t i = 0; i < rep.history.size(); ++i) {
    EXPECT_EQ(rep.history[i].restart, static_cast<int>(i) + 1);
    if (i > 0) EXPECT_GT(rep.history[i].iters, rep.history[i - 1].iters);
    EXPECT_GT(rep.history[i].explicit_relres, 0.0);
  }
  // Residual decreases across cycles on this SPD-ish problem.
  EXPECT_LT(rep.history.back().explicit_relres,
            rep.history.front().explicit_relres);
}

// ---- facade vs direct krylov ----------------------------------------

TEST(Facade, MatchesDirectKrylovRun) {
  const sparse::CsrMatrix a = sparse::laplace2d_5pt(20, 20);
  const std::vector<double> b = api::ones_rhs(a);

  api::Solver solver(
      api::SolverOptions::parse("solver=sstep ortho=bcgs_pip2 rtol=1e-7 "
                                "ranks=2"));
  solver.set_matrix_ref(a, "laplace");
  solver.set_rhs(b);
  const api::SolveReport rep = solver.solve();

  krylov::SolveResult direct;
  std::vector<double> x_direct(b.size(), 0.0);
  par::spmd_run(2, [&](par::Communicator& comm) {
    const sparse::RowPartition part(a.rows, comm.size());
    const sparse::DistCsr dist(a, part, comm.rank());
    const auto begin = static_cast<std::size_t>(part.begin(comm.rank()));
    const auto nloc = static_cast<std::size_t>(dist.n_local());
    std::vector<double> x(nloc, 0.0);
    krylov::SStepGmresConfig cfg;
    cfg.scheme = krylov::OrthoScheme::kBcgsPip2;
    cfg.rtol = 1e-7;
    const auto res = krylov::sstep_gmres(
        comm, dist, nullptr,
        std::span<const double>(b.data() + begin, nloc), x, cfg);
    std::copy(x.begin(), x.end(),
              x_direct.begin() + static_cast<std::ptrdiff_t>(begin));
    if (comm.rank() == 0) direct = res;
  });

  EXPECT_EQ(rep.result.iters, direct.iters);
  EXPECT_EQ(rep.result.converged, direct.converged);
  EXPECT_EQ(rep.result.comm_stats.allreduces, direct.comm_stats.allreduces);
  const std::vector<double>& x_facade = solver.solution();
  ASSERT_EQ(x_facade.size(), x_direct.size());
  for (std::size_t i = 0; i < x_direct.size(); ++i) {
    EXPECT_EQ(x_facade[i], x_direct[i]);  // identical arithmetic path
  }
}

// ---- util::Cli typo rejection ---------------------------------------

TEST(Cli, RejectUnknownFlagsTyposWithSuggestion) {
  const char* argv[] = {"prog", "--nx=32", "--shceme=two_stage"};
  util::Cli cli(3, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("nx", 0), 32);
  (void)cli.get("scheme", "");  // the key the harness actually reads
  try {
    cli.reject_unknown();
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("--shceme"), std::string::npos) << msg;
    EXPECT_NE(msg.find("did you mean --scheme?"), std::string::npos) << msg;
  }
}

TEST(Cli, RejectUnknownPassesWhenAllKeysQueried) {
  const char* argv[] = {"prog", "--nx=32", "--rtol=1e-8"};
  util::Cli cli(3, const_cast<char**>(argv));
  (void)cli.get_int("nx", 0);
  (void)cli.get_double("rtol", 0.0);
  EXPECT_NO_THROW(cli.reject_unknown());
  EXPECT_EQ(cli.keys(), (std::vector<std::string>{"nx", "rtol"}));
}

TEST(Cli, DidYouMeanOnlySuggestsCloseNames) {
  EXPECT_EQ(util::did_you_mean("shceme", {"scheme", "ranks"}), "scheme");
  EXPECT_EQ(util::did_you_mean("zzz", {"scheme", "ranks"}), "");
}

// ---- util::json ------------------------------------------------------

TEST(Json, WriterEscapesAndValidates) {
  util::JsonWriter w;
  w.begin_object();
  w.kv("text", "a\"b\\c\nd");
  w.kv("num", 1.5e-300);
  w.kv("count", 42);
  w.kv("flag", true);
  w.key("list").begin_array().value(1).value(2.5).value("x").end_array();
  w.key("nan_is_null").value(std::nan(""));
  w.end_object();
  const std::string text = w.str();
  std::string error;
  EXPECT_TRUE(util::json_validate(text, &error)) << error;
  EXPECT_NE(text.find("\\\""), std::string::npos);
  EXPECT_NE(text.find("null"), std::string::npos);
}

TEST(Json, ValidatorRejectsMalformedDocuments) {
  std::string error;
  EXPECT_FALSE(util::json_validate("{", &error));
  EXPECT_FALSE(util::json_validate("{\"a\": }", &error));
  EXPECT_FALSE(util::json_validate("[1, 2,]", &error));
  EXPECT_FALSE(util::json_validate("{\"a\": 1} trailing", &error));
  EXPECT_FALSE(util::json_validate("{'a': 1}", &error));
  EXPECT_TRUE(util::json_validate("  {\"a\": [1, -2.5e3, null]} ", &error))
      << error;
}

TEST(Json, WriterThrowsOnScopeMisuse) {
  util::JsonWriter w;
  w.begin_object();
  EXPECT_THROW(w.value(1), std::logic_error);   // value without key
  EXPECT_THROW(w.end_array(), std::logic_error);
  EXPECT_THROW(w.str(), std::logic_error);      // open scope
}

}  // namespace
