// s-step GMRES with every block-orthogonalization scheme: convergence,
// iteration-count granularity (the paper's 60251/60255/60300 rounding),
// solution agreement with standard GMRES, sync counts, bases,
// preconditioning, and the mixed-precision extension.

#include "krylov/gmres.hpp"
#include "krylov/sstep_gmres.hpp"
#include "par/spmd.hpp"
#include "precond/gauss_seidel.hpp"
#include "precond/jacobi.hpp"
#include "sparse/generators.hpp"
#include "sparse/scaling.hpp"
#include "sparse/spmv.hpp"
#include "sparse/suitesparse_like.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace {

using namespace tsbo;
using krylov::OrthoScheme;

struct Problem {
  sparse::CsrMatrix a;
  std::vector<double> b;
  std::vector<double> x_star;
};

Problem make_problem(sparse::CsrMatrix a) {
  Problem p;
  p.a = std::move(a);
  p.x_star.assign(static_cast<std::size_t>(p.a.rows), 1.0);
  p.b.assign(static_cast<std::size_t>(p.a.rows), 0.0);
  sparse::spmv(p.a, p.x_star, p.b);
  return p;
}

std::pair<krylov::SolveResult, std::vector<double>> run_sstep(
    const Problem& prob, int nranks, const krylov::SStepGmresConfig& cfg,
    const char* prec = nullptr) {
  std::vector<double> x(prob.b.size(), 0.0);
  krylov::SolveResult out;
  par::spmd_run(nranks, [&](par::Communicator& comm) {
    const sparse::RowPartition part(prob.a.rows, comm.size());
    const sparse::DistCsr dist(prob.a, part, comm.rank());
    const auto begin = static_cast<std::size_t>(part.begin(comm.rank()));
    const auto nloc = static_cast<std::size_t>(dist.n_local());
    std::vector<double> x_local(nloc, 0.0);
    std::unique_ptr<precond::Preconditioner> m;
    if (prec && std::string(prec) == "jacobi") {
      m = std::make_unique<precond::Jacobi>(dist);
    } else if (prec && std::string(prec) == "gs") {
      m = std::make_unique<precond::MulticolorGaussSeidel>(dist);
    }
    auto res = krylov::sstep_gmres(
        comm, dist, m.get(),
        std::span<const double>(prob.b.data() + begin, nloc), x_local, cfg);
    std::copy(x_local.begin(), x_local.end(),
              x.begin() + static_cast<std::ptrdiff_t>(begin));
    if (comm.rank() == 0) out = res;
  });
  return {out, x};
}

struct SchemeCase {
  const char* name;
  OrthoScheme scheme;
};

class Schemes : public ::testing::TestWithParam<SchemeCase> {};

TEST_P(Schemes, SolvesLaplaceAndRoundsItersToGranularity) {
  const auto& c = GetParam();
  const Problem p = make_problem(sparse::laplace2d_5pt(32, 32));
  krylov::SStepGmresConfig cfg;
  cfg.scheme = c.scheme;
  cfg.s = 5;
  cfg.bs = 60;
  cfg.rtol = 1e-7;

  const auto [res, x] = run_sstep(p, 2, cfg);
  EXPECT_TRUE(res.converged) << c.name;
  EXPECT_LE(res.true_relres, 5e-7) << c.name;

  // Iteration-count granularity: multiples of s (one-stage) or bs
  // (two-stage) — the Table III rounding behaviour.
  const long granule = c.scheme == OrthoScheme::kTwoStage ? cfg.bs : cfg.s;
  EXPECT_EQ(res.iters % granule, 0) << c.name << " iters=" << res.iters;

  // Solution is correct.
  double err = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    err = std::max(err, std::abs(x[i] - p.x_star[i]));
  }
  EXPECT_LT(err, 1e-3) << c.name;
}

TEST_P(Schemes, ItersCloseToStandardGmres) {
  const auto& c = GetParam();
  const Problem p = make_problem(sparse::laplace2d_9pt(28, 28));
  krylov::GmresConfig gcfg;
  gcfg.rtol = 1e-6;
  krylov::SStepGmresConfig scfg;
  scfg.scheme = c.scheme;
  scfg.rtol = 1e-6;

  krylov::SolveResult gres;
  par::spmd_run(1, [&](par::Communicator& comm) {
    const sparse::RowPartition part(p.a.rows, 1);
    const sparse::DistCsr dist(p.a, part, 0);
    std::vector<double> x(p.b.size(), 0.0);
    gres = krylov::gmres(comm, dist, nullptr, p.b, x, gcfg);
  });
  const auto [sres, x2] = run_sstep(p, 1, scfg);

  ASSERT_TRUE(gres.converged);
  ASSERT_TRUE(sres.converged);
  // The s-step count equals the standard count rounded up to its
  // granule, within one extra restart cycle of slack (paper Table III:
  // 60251 -> 60255 -> 60300).
  EXPECT_GE(sres.iters, gres.iters - 1) << c.name;
  EXPECT_LE(sres.iters, gres.iters + 60) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, Schemes,
    ::testing::Values(SchemeCase{"bcgs2_cholqr2", OrthoScheme::kBcgs2CholQr2},
                      SchemeCase{"bcgs2_hhqr", OrthoScheme::kBcgs2Hhqr},
                      SchemeCase{"bcgs_pip2", OrthoScheme::kBcgsPip2},
                      SchemeCase{"two_stage", OrthoScheme::kTwoStage}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(SstepGmres, TwoStageBsSweepAllConverge) {
  // Table II structure: bs in {5, 20, 40, 60} with s = 5 fixed.
  const Problem p = make_problem(sparse::laplace2d_5pt(40, 40));
  for (const int bs : {5, 20, 60}) {
    krylov::SStepGmresConfig cfg;
    cfg.scheme = OrthoScheme::kTwoStage;
    cfg.s = 5;
    cfg.bs = bs;
    cfg.rtol = 1e-6;
    const auto [res, x] = run_sstep(p, 2, cfg);
    EXPECT_TRUE(res.converged) << "bs=" << bs;
    EXPECT_EQ(res.iters % bs, 0) << "bs=" << bs;
    EXPECT_LE(res.true_relres, 2e-6) << "bs=" << bs;
  }
}

TEST(SstepGmres, SyncCountsFollowPaperAccounting) {
  // Fixed 2 restarts (no convergence): count all-reduces per scheme and
  // verify the ordering and the per-panel arithmetic.
  const Problem p = make_problem(sparse::laplace2d_5pt(32, 32));

  auto count_syncs = [&](OrthoScheme scheme, int bs) {
    krylov::SStepGmresConfig cfg;
    cfg.scheme = scheme;
    cfg.s = 5;
    cfg.bs = bs;
    cfg.rtol = 1e-30;  // never converges
    cfg.max_restarts = 2;
    std::uint64_t reduces = 0;
    par::spmd_run(2, [&](par::Communicator& comm) {
      const sparse::RowPartition part(p.a.rows, comm.size());
      const sparse::DistCsr dist(p.a, part, comm.rank());
      const auto begin = static_cast<std::size_t>(part.begin(comm.rank()));
      const auto nloc = static_cast<std::size_t>(dist.n_local());
      std::vector<double> x(nloc, 0.0);
      const auto res = krylov::sstep_gmres(
          comm, dist, nullptr,
          std::span<const double>(p.b.data() + begin, nloc), x, cfg);
      if (comm.rank() == 0) reduces = res.comm_stats.allreduces;
    });
    return static_cast<double>(reduces);
  };

  // 2 cycles x 12 panels each; subtract the ~5 residual-norm reduces.
  const double bcgs2 = count_syncs(OrthoScheme::kBcgs2CholQr2, 60);
  const double pip2 = count_syncs(OrthoScheme::kBcgsPip2, 60);
  const double two_stage = count_syncs(OrthoScheme::kTwoStage, 60);

  // Paper accounting per panel: 5 vs 2 vs 1 + s/bs.
  EXPECT_NEAR(bcgs2 - pip2, 2 * 12 * 3.0, 2.0);          // 5 - 2 = 3 per panel
  EXPECT_NEAR(pip2 - two_stage, 2 * (12 * 1.0 - 1.0), 2.0);  // 2 - (1 + 1/12)
  EXPECT_LT(two_stage, pip2);
  EXPECT_LT(pip2, bcgs2);
}

TEST(SstepGmres, ConfigValidation) {
  const Problem p = make_problem(sparse::laplace2d_5pt(8, 8));
  par::spmd_run(1, [&](par::Communicator& comm) {
    const sparse::RowPartition part(p.a.rows, 1);
    const sparse::DistCsr dist(p.a, part, 0);
    std::vector<double> x(p.b.size(), 0.0);

    krylov::SStepGmresConfig bad;
    bad.s = 7;  // does not divide m = 60... actually 60 % 7 != 0
    EXPECT_THROW(krylov::sstep_gmres(comm, dist, nullptr, p.b, x, bad),
                 std::invalid_argument);

    bad = {};
    bad.scheme = OrthoScheme::kTwoStage;
    bad.bs = 13;  // not a multiple of s = 5
    EXPECT_THROW(krylov::sstep_gmres(comm, dist, nullptr, p.b, x, bad),
                 std::invalid_argument);

    bad = {};
    bad.basis = krylov::BasisKind::kNewton;  // missing interval
    EXPECT_THROW(krylov::sstep_gmres(comm, dist, nullptr, p.b, x, bad),
                 std::invalid_argument);
  });
}

TEST(SstepGmres, NewtonAndChebyshevBasesConverge) {
  const Problem p = make_problem(sparse::laplace2d_5pt(24, 24));
  // 5-pt Laplace eigenvalues lie in (0, 8).
  for (const auto basis :
       {krylov::BasisKind::kNewton, krylov::BasisKind::kChebyshev}) {
    krylov::SStepGmresConfig cfg;
    cfg.scheme = OrthoScheme::kBcgsPip2;
    cfg.basis = basis;
    cfg.lambda_min = 0.01;
    cfg.lambda_max = 8.0;
    cfg.rtol = 1e-7;
    const auto [res, x] = run_sstep(p, 1, cfg);
    EXPECT_TRUE(res.converged);
    EXPECT_LE(res.true_relres, 5e-7);
    double err = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      err = std::max(err, std::abs(x[i] - p.x_star[i]));
    }
    EXPECT_LT(err, 1e-3);
  }
}

TEST(SstepGmres, LargerStepSizeWorksWithStableBasis) {
  // s = 10 needs a stable basis (the paper's point: the monomial basis
  // forces a conservatively small s).  With the Newton basis the
  // two-stage scheme handles s = 10 fine.
  const Problem p = make_problem(sparse::laplace2d_5pt(24, 24));
  krylov::SStepGmresConfig cfg;
  cfg.s = 10;
  cfg.bs = 60;
  cfg.scheme = OrthoScheme::kTwoStage;
  cfg.basis = krylov::BasisKind::kNewton;
  cfg.lambda_min = 0.01;
  cfg.lambda_max = 8.0;  // 5-pt Laplace spectrum
  cfg.rtol = 1e-6;
  const auto [res, x] = run_sstep(p, 1, cfg);
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.true_relres, 2e-6);
}

TEST(SstepGmres, PreconditionedSolveConvergesFaster) {
  Problem p = make_problem(sparse::heterogeneous2d(26, 26, true, 2.5, 7));
  krylov::SStepGmresConfig cfg;
  cfg.scheme = OrthoScheme::kTwoStage;
  cfg.rtol = 1e-7;
  const auto [plain, x1] = run_sstep(p, 2, cfg);
  const auto [gs, x2] = run_sstep(p, 2, cfg, "gs");
  EXPECT_TRUE(plain.converged);
  EXPECT_TRUE(gs.converged);
  EXPECT_LT(gs.iters, plain.iters);
  EXPECT_LE(gs.true_relres, 1e-6);
}

TEST(SstepGmres, MixedPrecisionGramMatchesPlain) {
  const Problem p = make_problem(sparse::laplace2d_5pt(20, 20));
  krylov::SStepGmresConfig cfg;
  cfg.scheme = OrthoScheme::kBcgsPip2;
  cfg.rtol = 1e-7;
  const auto [plain, x1] = run_sstep(p, 1, cfg);
  cfg.mixed_precision_gram = true;
  const auto [dd, x2] = run_sstep(p, 1, cfg);
  EXPECT_TRUE(plain.converged);
  EXPECT_TRUE(dd.converged);
  EXPECT_EQ(plain.iters, dd.iters);
  for (std::size_t i = 0; i < x1.size(); ++i) EXPECT_NEAR(x1[i], x2[i], 1e-8);
}

TEST(SstepGmres, ScaledSurrogateMatrixSolves) {
  // Fig. 9 / Table IV path: surrogate + the paper's max-scaling.
  auto s = sparse::make_surrogate("ecology2", 1000);
  sparse::equilibrate_max(s.matrix);
  const Problem p = make_problem(std::move(s.matrix));
  krylov::SStepGmresConfig cfg;
  cfg.scheme = OrthoScheme::kTwoStage;
  cfg.rtol = 1e-6;
  cfg.max_restarts = 400;
  const auto [res, x] = run_sstep(p, 2, cfg);
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.true_relres, 1e-5);
}

TEST(SstepGmres, DeterministicAcrossRankCounts) {
  const Problem p = make_problem(sparse::laplace2d_5pt(20, 20));
  krylov::SStepGmresConfig cfg;
  cfg.scheme = OrthoScheme::kBcgsPip2;
  cfg.rtol = 1e-7;
  const auto [r1, x1] = run_sstep(p, 1, cfg);
  const auto [r3, x3] = run_sstep(p, 3, cfg);
  EXPECT_EQ(r1.iters, r3.iters);
  for (std::size_t i = 0; i < x1.size(); ++i) EXPECT_NEAR(x1[i], x3[i], 1e-9);
}

TEST(SstepGmres, BreakdownPolicyThrowSurfacesIllConditioning) {
  // An extremely ill-conditioned operator with monomial basis and large
  // s will violate condition (5); kThrow must surface it.
  auto s = sparse::make_surrogate("Ga41As41H72", 800);
  const Problem p = make_problem(std::move(s.matrix));
  krylov::SStepGmresConfig cfg;
  cfg.s = 15;
  cfg.bs = 60;
  cfg.scheme = OrthoScheme::kTwoStage;
  cfg.policy = ortho::BreakdownPolicy::kThrow;
  cfg.rtol = 1e-10;
  cfg.max_restarts = 3;
  bool threw = false;
  try {
    run_sstep(p, 1, cfg);
  } catch (const ortho::CholeskyBreakdown&) {
    threw = true;
  }
  EXPECT_TRUE(threw);
  // Under kShift the same setup must complete without throwing.
  cfg.policy = ortho::BreakdownPolicy::kShift;
  EXPECT_NO_THROW(run_sstep(p, 1, cfg));
}

}  // namespace
