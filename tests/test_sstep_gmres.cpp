// s-step GMRES with every block-orthogonalization scheme: convergence,
// iteration-count granularity (the paper's 60251/60255/60300 rounding),
// solution agreement with standard GMRES, sync counts, bases,
// preconditioning, and the mixed-precision extension — all driven
// through the api::Solver facade with string-keyed options, the same
// path the harnesses use.

#include "api/solver.hpp"
#include "sparse/generators.hpp"
#include "sparse/scaling.hpp"
#include "sparse/spmv.hpp"
#include "sparse/suitesparse_like.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace {

using namespace tsbo;

struct Problem {
  sparse::CsrMatrix a;
  std::vector<double> b;
  std::vector<double> x_star;
};

Problem make_problem(sparse::CsrMatrix a) {
  Problem p;
  p.a = std::move(a);
  p.x_star.assign(static_cast<std::size_t>(p.a.rows), 1.0);
  p.b = api::ones_rhs(p.a);
  return p;
}

/// Runs s-step GMRES via the facade; `spec` overlays the defaults
/// (s=5, bs=60, two_stage, rtol=1e-6, ...).
std::pair<krylov::SolveResult, std::vector<double>> run_sstep(
    const Problem& prob, int nranks, const std::string& spec) {
  api::SolverOptions opts =
      api::SolverOptions::parse("solver=sstep " + spec);
  opts.ranks = nranks;
  api::Solver solver(opts);
  solver.set_matrix_ref(prob.a, "test");
  solver.set_rhs(prob.b);
  const api::SolveReport rep = solver.solve();
  return {rep.result, solver.solution()};
}

struct SchemeCase {
  const char* name;  ///< ortho registry key
  bool two_stage;
};

class Schemes : public ::testing::TestWithParam<SchemeCase> {};

TEST_P(Schemes, SolvesLaplaceAndRoundsItersToGranularity) {
  const auto& c = GetParam();
  const Problem p = make_problem(sparse::laplace2d_5pt(32, 32));
  const std::string spec =
      std::string("ortho=") + c.name + " s=5 bs=60 rtol=1e-7";
  const auto [res, x] = run_sstep(p, 2, spec);
  EXPECT_TRUE(res.converged) << c.name;
  EXPECT_LE(res.true_relres, 5e-7) << c.name;

  // Iteration-count granularity: multiples of s (one-stage) or bs
  // (two-stage) — the Table III rounding behaviour.
  const long granule = c.two_stage ? 60 : 5;
  EXPECT_EQ(res.iters % granule, 0) << c.name << " iters=" << res.iters;

  // Solution is correct.
  double err = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    err = std::max(err, std::abs(x[i] - p.x_star[i]));
  }
  EXPECT_LT(err, 1e-3) << c.name;
}

TEST_P(Schemes, ItersCloseToStandardGmres) {
  const auto& c = GetParam();
  const Problem p = make_problem(sparse::laplace2d_9pt(28, 28));

  api::Solver gsolver(api::SolverOptions::parse("solver=gmres ranks=1"));
  gsolver.set_matrix_ref(p.a, "test");
  gsolver.set_rhs(p.b);
  const krylov::SolveResult gres = gsolver.solve().result;

  const auto [sres, x2] =
      run_sstep(p, 1, std::string("ortho=") + c.name + " rtol=1e-6");

  ASSERT_TRUE(gres.converged);
  ASSERT_TRUE(sres.converged);
  // The s-step count equals the standard count rounded up to its
  // granule, within one extra restart cycle of slack (paper Table III:
  // 60251 -> 60255 -> 60300).
  EXPECT_GE(sres.iters, gres.iters - 1) << c.name;
  EXPECT_LE(sres.iters, gres.iters + 60) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, Schemes,
    ::testing::Values(SchemeCase{"bcgs2", false},
                      SchemeCase{"bcgs2_hhqr", false},
                      SchemeCase{"bcgs_pip2", false},
                      SchemeCase{"two_stage", true}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(SstepGmres, TwoStageBsSweepAllConverge) {
  // Table II structure: bs in {5, 20, 40, 60} with s = 5 fixed.
  const Problem p = make_problem(sparse::laplace2d_5pt(40, 40));
  for (const int bs : {5, 20, 60}) {
    const auto [res, x] = run_sstep(
        p, 2,
        "ortho=two_stage s=5 bs=" + std::to_string(bs) + " rtol=1e-6");
    EXPECT_TRUE(res.converged) << "bs=" << bs;
    EXPECT_EQ(res.iters % bs, 0) << "bs=" << bs;
    EXPECT_LE(res.true_relres, 2e-6) << "bs=" << bs;
  }
}

TEST(SstepGmres, SyncCountsFollowPaperAccounting) {
  // Fixed 2 restarts (no convergence): count all-reduces per scheme and
  // verify the ordering and the per-panel arithmetic.
  const Problem p = make_problem(sparse::laplace2d_5pt(32, 32));

  auto count_syncs = [&](const char* ortho, int bs) {
    const auto [res, x] = run_sstep(
        p, 2,
        std::string("ortho=") + ortho + " s=5 bs=" + std::to_string(bs) +
            " rtol=1e-30 max_restarts=2");  // never converges
    return static_cast<double>(res.comm_stats.allreduces);
  };

  // 2 cycles x 12 panels each; subtract the ~5 residual-norm reduces.
  const double bcgs2 = count_syncs("bcgs2", 60);
  const double pip2 = count_syncs("bcgs_pip2", 60);
  const double two_stage = count_syncs("two_stage", 60);

  // Paper accounting per panel: 5 vs 2 vs 1 + s/bs.
  EXPECT_NEAR(bcgs2 - pip2, 2 * 12 * 3.0, 2.0);  // 5 - 2 = 3 per panel
  EXPECT_NEAR(pip2 - two_stage, 2 * (12 * 1.0 - 1.0), 2.0);  // 2 - (1 + 1/12)
  EXPECT_LT(two_stage, pip2);
  EXPECT_LT(pip2, bcgs2);
}

TEST(SstepGmres, ConfigValidation) {
  const Problem p = make_problem(sparse::laplace2d_5pt(8, 8));
  // s does not divide m = 60.
  EXPECT_THROW(run_sstep(p, 1, "s=7"), std::invalid_argument);
  // bs not a multiple of s = 5.
  EXPECT_THROW(run_sstep(p, 1, "ortho=two_stage bs=13"),
               std::invalid_argument);
  // Newton basis without a spectral interval.
  EXPECT_THROW(run_sstep(p, 1, "basis=newton"), std::invalid_argument);
  // Negative lookahead depth.
  EXPECT_THROW(run_sstep(p, 1, "pipeline_depth=-1"), std::invalid_argument);
}

TEST(SstepGmres, PipelineDepthDoesNotChangeResults) {
  // The lookahead schedule runs whenever the manager supports split
  // stage-1; pipeline_depth (including depths beyond 1) only relabels
  // the window's accounting.  Results must be bitwise identical, and
  // the lookahead counters must report the speculation either way.
  const Problem p = make_problem(sparse::laplace2d_5pt(32, 32));
  long iters0 = -1, hits0 = -1, misses0 = -1;
  std::vector<double> x0;
  for (const int depth : {0, 1, 3}) {
    const auto [res, x] = run_sstep(
        p, 2,
        "ortho=two_stage s=5 bs=20 rtol=1e-8 pipeline_depth=" +
            std::to_string(depth));
    EXPECT_TRUE(res.converged) << "depth=" << depth;
    if (depth == 0) {
      iters0 = res.iters;
      hits0 = res.lookahead_hits;
      misses0 = res.lookahead_misses;
      x0 = x;
      EXPECT_GT(hits0 + misses0, 0);  // the speculative path engaged
      continue;
    }
    EXPECT_EQ(res.iters, iters0) << "depth=" << depth;
    EXPECT_EQ(res.lookahead_hits, hits0) << "depth=" << depth;
    EXPECT_EQ(res.lookahead_misses, misses0) << "depth=" << depth;
    ASSERT_EQ(x.size(), x0.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      ASSERT_EQ(x[i], x0[i]) << "depth=" << depth << " bit drift at " << i;
    }
  }
  // One-stage schemes have no split stage-1: counters stay zero and the
  // option is inert there too.
  const auto [res1, x1] =
      run_sstep(p, 2, "ortho=bcgs_pip2 rtol=1e-8 pipeline_depth=1");
  EXPECT_EQ(res1.lookahead_hits, 0);
  EXPECT_EQ(res1.lookahead_misses, 0);
}

TEST(SstepGmres, DecayedMonomialChainMissesLookaheadDeterministically) {
  // s = 15 monomial steps on the 5-pt Laplace decay the panel's last
  // column until r(last,last) falls under the lookahead guard, so the
  // speculative stage-1 result is rejected and regenerated
  // (lookahead_misses).  Cycle-end abandonment also counts a miss — so
  // misses strictly greater than restarts proves real guard rejections
  // happened.  Regeneration must replay the same arithmetic: results
  // bitwise identical to the unpipelined schedule.
  const Problem p = make_problem(sparse::laplace2d_5pt(32, 32));
  long iters0 = -1, hits0 = -1, misses0 = -1;
  std::vector<double> x0;
  for (const int depth : {0, 1}) {
    const auto [res, x] = run_sstep(
        p, 2,
        "ortho=two_stage s=15 bs=15 rtol=1e-8 pipeline_depth=" +
            std::to_string(depth));
    EXPECT_TRUE(res.converged) << "depth=" << depth;
    if (depth == 0) {
      iters0 = res.iters;
      hits0 = res.lookahead_hits;
      misses0 = res.lookahead_misses;
      x0 = x;
      EXPECT_GT(misses0, res.restarts) << "no guard rejections happened";
      continue;
    }
    EXPECT_EQ(res.iters, iters0);
    EXPECT_EQ(res.lookahead_hits, hits0);
    EXPECT_EQ(res.lookahead_misses, misses0);
    ASSERT_EQ(x.size(), x0.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      ASSERT_EQ(x[i], x0[i]) << "regeneration drifted at " << i;
    }
  }
}

TEST(SstepGmres, NewtonAndChebyshevBasesConverge) {
  const Problem p = make_problem(sparse::laplace2d_5pt(24, 24));
  // 5-pt Laplace eigenvalues lie in (0, 8).
  for (const char* basis : {"newton", "chebyshev"}) {
    const auto [res, x] = run_sstep(
        p, 1,
        std::string("ortho=bcgs_pip2 basis=") + basis +
            " lambda_min=0.01 lambda_max=8 rtol=1e-7");
    EXPECT_TRUE(res.converged);
    EXPECT_LE(res.true_relres, 5e-7);
    double err = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      err = std::max(err, std::abs(x[i] - p.x_star[i]));
    }
    EXPECT_LT(err, 1e-3);
  }
}

TEST(SstepGmres, LargerStepSizeWorksWithStableBasis) {
  // s = 10 needs a stable basis (the paper's point: the monomial basis
  // forces a conservatively small s).  With the Newton basis the
  // two-stage scheme handles s = 10 fine.
  const Problem p = make_problem(sparse::laplace2d_5pt(24, 24));
  const auto [res, x] = run_sstep(
      p, 1,
      "ortho=two_stage s=10 bs=60 basis=newton lambda_min=0.01 lambda_max=8 "
      "rtol=1e-6");  // 5-pt Laplace spectrum
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.true_relres, 2e-6);
}

TEST(SstepGmres, PreconditionedSolveConvergesFaster) {
  Problem p = make_problem(sparse::heterogeneous2d(26, 26, true, 2.5, 7));
  const auto [plain, x1] = run_sstep(p, 2, "ortho=two_stage rtol=1e-7");
  const auto [gs, x2] =
      run_sstep(p, 2, "ortho=two_stage rtol=1e-7 precond=mc-gs");
  EXPECT_TRUE(plain.converged);
  EXPECT_TRUE(gs.converged);
  EXPECT_LT(gs.iters, plain.iters);
  EXPECT_LE(gs.true_relres, 1e-6);
}

TEST(SstepGmres, MixedPrecisionGramMatchesPlain) {
  const Problem p = make_problem(sparse::laplace2d_5pt(20, 20));
  const auto [plain, x1] = run_sstep(p, 1, "ortho=bcgs_pip2 rtol=1e-7");
  const auto [dd, x2] =
      run_sstep(p, 1, "ortho=bcgs_pip2 rtol=1e-7 mixed_precision_gram=1");
  EXPECT_TRUE(plain.converged);
  EXPECT_TRUE(dd.converged);
  EXPECT_EQ(plain.iters, dd.iters);
  for (std::size_t i = 0; i < x1.size(); ++i) EXPECT_NEAR(x1[i], x2[i], 1e-8);
}

TEST(SstepGmres, ScaledSurrogateMatrixSolves) {
  // Fig. 9 / Table IV path: surrogate + the paper's max-scaling.
  auto s = sparse::make_surrogate("ecology2", 1000);
  sparse::equilibrate_max(s.matrix);
  const Problem p = make_problem(std::move(s.matrix));
  const auto [res, x] =
      run_sstep(p, 2, "ortho=two_stage rtol=1e-6 max_restarts=400");
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.true_relres, 1e-5);
}

TEST(SstepGmres, DeterministicAcrossRankCounts) {
  const Problem p = make_problem(sparse::laplace2d_5pt(20, 20));
  const auto [r1, x1] = run_sstep(p, 1, "ortho=bcgs_pip2 rtol=1e-7");
  const auto [r3, x3] = run_sstep(p, 3, "ortho=bcgs_pip2 rtol=1e-7");
  EXPECT_EQ(r1.iters, r3.iters);
  for (std::size_t i = 0; i < x1.size(); ++i) EXPECT_NEAR(x1[i], x3[i], 1e-9);
}

TEST(SstepGmres, BreakdownPolicyThrowSurfacesIllConditioning) {
  // An extremely ill-conditioned operator with monomial basis and large
  // s will violate condition (5); breakdown=throw must surface it.
  auto s = sparse::make_surrogate("Ga41As41H72", 800);
  const Problem p = make_problem(std::move(s.matrix));
  const std::string spec =
      "ortho=two_stage s=15 bs=60 rtol=1e-10 max_restarts=3";
  bool threw = false;
  try {
    run_sstep(p, 1, spec + " breakdown=throw");
  } catch (const ortho::CholeskyBreakdown&) {
    threw = true;
  }
  EXPECT_TRUE(threw);
  // Under breakdown=shift the same setup must complete without throwing.
  EXPECT_NO_THROW(run_sstep(p, 1, spec + " breakdown=shift"));
}

}  // namespace
