// Block s-step GMRES (batched multi-RHS): k=1 delegation pinned
// bitwise to the single-RHS solver, block solves agreeing with k
// independent solves column by column, per-RHS deflation at restart
// boundaries, bitwise reproducibility across ranks x threads {1,2,7}^2,
// the unchanged per-outer-iteration synchronization count, rhs=k
// option validation, and the service's per-column warm-start seeds.

#include "api/solver.hpp"
#include "krylov/block_sstep_gmres.hpp"
#include "par/config.hpp"
#include "par/spmd.hpp"
#include "service/solver_service.hpp"
#include "sparse/generators.hpp"
#include "sparse/partition.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace {

using namespace tsbo;

struct BlockRun {
  krylov::SolveResult res;
  std::vector<double> x;  ///< n*k, column-major
};

/// Runs the block solver at the krylov layer on `ranks` SPMD ranks.
/// `b` is the full n*k column-major RHS block.
BlockRun run_block_direct(
    const sparse::CsrMatrix& a, const std::vector<double>& b, int k, int ranks,
    const std::function<void(krylov::BlockSStepGmresConfig&)>& tweak = {}) {
  const auto n = static_cast<std::size_t>(a.rows);
  BlockRun out;
  out.x.assign(n * static_cast<std::size_t>(k), 0.0);
  par::spmd_run(ranks, [&](par::Communicator& comm) {
    const sparse::RowPartition part(a.rows, comm.size());
    const sparse::DistCsr dist(a, part, comm.rank());
    const auto begin = static_cast<std::size_t>(part.begin(comm.rank()));
    const auto nloc = static_cast<std::size_t>(dist.n_local());
    std::vector<double> xloc(nloc * static_cast<std::size_t>(k), 0.0);
    krylov::BlockSStepGmresConfig cfg;
    cfg.base.scheme = krylov::OrthoScheme::kTwoStage;
    if (tweak) tweak(cfg);
    const dense::ConstMatrixView bv{b.data() + begin,
                                    static_cast<dense::index_t>(nloc),
                                    static_cast<dense::index_t>(k),
                                    static_cast<dense::index_t>(n)};
    const dense::MatrixView xv{xloc.data(), static_cast<dense::index_t>(nloc),
                               static_cast<dense::index_t>(k),
                               static_cast<dense::index_t>(nloc)};
    const auto res = krylov::block_sstep_gmres(comm, dist, nullptr, bv, xv, cfg);
    for (int t = 0; t < k; ++t) {
      std::copy(xloc.begin() + static_cast<std::ptrdiff_t>(nloc) * t,
                xloc.begin() + static_cast<std::ptrdiff_t>(nloc) * (t + 1),
                out.x.begin() + static_cast<std::ptrdiff_t>(n) * t +
                    static_cast<std::ptrdiff_t>(begin));
    }
    if (comm.rank() == 0) out.res = res;
  });
  return out;
}

/// Runs a batched rhs=k solve through the api::Solver facade.
std::pair<api::SolveReport, std::vector<double>> run_facade(
    const sparse::CsrMatrix& a, const std::vector<double>& bk, int k,
    int ranks, const std::string& spec,
    const std::vector<double>* x0 = nullptr) {
  api::SolverOptions opts = api::SolverOptions::parse("solver=sstep " + spec);
  opts.ranks = ranks;
  opts.rhs = k;
  api::Solver solver(opts);
  solver.set_matrix_ref(a, "test");
  solver.set_rhs(bk);
  if (x0 != nullptr) solver.set_initial_guess(*x0);
  const api::SolveReport rep = solver.solve();
  return {rep, solver.solution()};
}

std::vector<double> column(const std::vector<double>& block, std::size_t n,
                           int t) {
  return {block.begin() + static_cast<std::ptrdiff_t>(n) * t,
          block.begin() + static_cast<std::ptrdiff_t>(n) * (t + 1)};
}

/// Runs the single-RHS solver at the krylov layer, two-stage defaults.
std::pair<krylov::SolveResult, std::vector<double>> run_scalar_direct(
    const sparse::CsrMatrix& a, const std::vector<double>& b, int ranks) {
  const auto n = static_cast<std::size_t>(a.rows);
  std::vector<double> x(n, 0.0);
  krylov::SolveResult out;
  par::spmd_run(ranks, [&](par::Communicator& comm) {
    const sparse::RowPartition part(a.rows, comm.size());
    const sparse::DistCsr dist(a, part, comm.rank());
    const auto begin = static_cast<std::size_t>(part.begin(comm.rank()));
    const auto nloc = static_cast<std::size_t>(dist.n_local());
    std::vector<double> xloc(nloc, 0.0);
    krylov::SStepGmresConfig cfg;
    cfg.scheme = krylov::OrthoScheme::kTwoStage;
    const auto res = krylov::sstep_gmres(
        comm, dist, nullptr, std::span<const double>(b.data() + begin, nloc),
        xloc, cfg);
    std::copy(xloc.begin(), xloc.end(),
              x.begin() + static_cast<std::ptrdiff_t>(begin));
    if (comm.rank() == 0) out = res;
  });
  return {out, x};
}

TEST(BlockGmres, KEquals1DelegatesBitwiseToSingleRhsAcrossMatrix) {
  // The determinism contract: a width-1 "block" solve IS the existing
  // single-RHS solver — bitwise, not just close — at every point of
  // the ranks x threads {1,2,7}^2 acceptance matrix.
  const sparse::CsrMatrix a = sparse::laplace2d_5pt(20, 20);
  const std::vector<double> b = api::ones_rhs(a);
  const auto n = static_cast<std::size_t>(a.rows);

  for (const int ranks : {1, 2, 7}) {
    for (const unsigned threads : {1u, 2u, 7u}) {
      par::set_num_threads(threads);
      const auto [res_single, x_single] = run_scalar_direct(a, b, ranks);
      const BlockRun block = run_block_direct(a, b, 1, ranks);
      par::set_num_threads(0);
      EXPECT_TRUE(block.res.converged)
          << "ranks=" << ranks << " threads=" << threads;
      EXPECT_EQ(block.res.iters, res_single.iters)
          << "ranks=" << ranks << " threads=" << threads;
      EXPECT_EQ(block.res.relres, res_single.relres)
          << "ranks=" << ranks << " threads=" << threads;
      ASSERT_EQ(block.res.rhs_results.size(), 1u);
      EXPECT_EQ(block.res.rhs_results[0].iters, res_single.iters);
      ASSERT_EQ(block.x.size(), x_single.size());
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(block.x[i], x_single[i])
            << "ranks=" << ranks << " threads=" << threads
            << " bit drift at " << i;
      }
    }
  }
}

TEST(BlockGmres, FacadeBatchSolvesAllColumnsAndReportsPerRhs) {
  const sparse::CsrMatrix a = sparse::laplace2d_5pt(32, 32);
  const auto n = static_cast<std::size_t>(a.rows);
  const int k = 4;
  const std::vector<double> bk = api::batch_rhs(a, k);

  const auto [rep, x] =
      run_facade(a, bk, k, 2, "ortho=two_stage rtol=1e-7 max_restarts=200");
  EXPECT_TRUE(rep.result.converged);
  ASSERT_EQ(rep.result.rhs_results.size(), static_cast<std::size_t>(k));
  for (int t = 0; t < k; ++t) {
    const auto& rr = rep.result.rhs_results[static_cast<std::size_t>(t)];
    EXPECT_TRUE(rr.converged) << "rhs " << t;
    EXPECT_LE(rr.true_relres, 5e-7) << "rhs " << t;
  }
  // Column 0 is the ones-RHS: its solution is the all-ones vector.
  double err = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    err = std::max(err, std::abs(x[i] - 1.0));
  }
  EXPECT_LT(err, 1e-3);
  // The /7 report carries the per-RHS results array.
  const std::string json = rep.json();
  EXPECT_NE(json.find(std::string("\"schema\": \"") + api::kSolveReportSchema),
            std::string::npos);
  EXPECT_NE(json.find("\"results\": ["), std::string::npos);
}

TEST(BlockGmres, BlockMatchesIndependentSolvesPerColumn) {
  const sparse::CsrMatrix a = sparse::laplace2d_5pt(32, 32);
  const auto n = static_cast<std::size_t>(a.rows);
  const int k = 3;
  const std::vector<double> bk = api::batch_rhs(a, k);
  const std::string spec = "ortho=two_stage rtol=1e-8 max_restarts=300";

  const auto [rep, x] = run_facade(a, bk, k, 2, spec);
  ASSERT_TRUE(rep.result.converged);

  for (int t = 0; t < k; ++t) {
    api::SolverOptions opts = api::SolverOptions::parse("solver=sstep " + spec);
    opts.ranks = 2;
    api::Solver solver(opts);
    solver.set_matrix_ref(a, "test");
    solver.set_rhs(column(bk, n, t));
    const api::SolveReport srep = solver.solve();
    ASSERT_TRUE(srep.result.converged) << "rhs " << t;
    const std::vector<double> xt = solver.solution();
    double diff = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      diff = std::max(diff, std::abs(x[static_cast<std::size_t>(t) * n + i] -
                                     xt[i]));
    }
    EXPECT_LT(diff, 1e-4) << "rhs " << t;
  }
}

TEST(BlockGmres, DeflationFreezesConvergedColumnAtRestartBoundary) {
  const sparse::CsrMatrix a = sparse::laplace2d_5pt(24, 24);
  const auto n = static_cast<std::size_t>(a.rows);
  const int k = 2;
  const std::vector<double> bk = api::batch_rhs(a, k);

  // Pre-solve column 1 tightly; feeding that solution back as the
  // initial guess makes column 1 start converged.
  api::SolverOptions opts = api::SolverOptions::parse(
      "solver=sstep ortho=two_stage rtol=1e-10 max_restarts=500");
  api::Solver pre(opts);
  pre.set_matrix_ref(a, "test");
  pre.set_rhs(column(bk, n, 1));
  ASSERT_TRUE(pre.solve().result.converged);
  const std::vector<double> x1 = pre.solution();

  std::vector<double> x0(n * k, 0.0);
  std::copy(x1.begin(), x1.end(), x0.begin() + static_cast<std::ptrdiff_t>(n));

  const auto [rep, x] = run_facade(
      a, bk, k, 2, "ortho=two_stage rtol=1e-6 max_restarts=200", &x0);
  ASSERT_TRUE(rep.result.converged);
  ASSERT_EQ(rep.result.rhs_results.size(), 2u);
  const auto& easy = rep.result.rhs_results[1];
  const auto& hard = rep.result.rhs_results[0];
  // Column 1 deflates at the very first boundary, before any panel:
  // zero iterations charged, solution column frozen at the guess bits.
  EXPECT_TRUE(easy.converged);
  EXPECT_EQ(easy.deflated_at_restart, 0);
  EXPECT_EQ(easy.iters, 0);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(x[n + i], x1[i]) << "deflated column moved at " << i;
  }
  // Column 0 keeps iterating on its own, and still converges.
  EXPECT_TRUE(hard.converged);
  EXPECT_GT(hard.iters, 0);
  EXPECT_LE(hard.true_relres, 5e-6);
}

TEST(BlockGmres, BitwiseAcrossThreadsStableAcrossRanks) {
  // The acceptance matrix, with the repo's determinism convention
  // (test_autopilot): within a rank count, solution bits and iteration
  // counts are identical across thread counts {1,2,7}; across rank
  // counts the partitioned fold order changes, so the solutions are
  // only close — but the iteration count must not move.
  const sparse::CsrMatrix a = sparse::laplace2d_5pt(20, 20);
  const int k = 3;
  const std::vector<double> bk = api::batch_rhs(a, k);
  const std::string spec = "ortho=two_stage rtol=1e-8 max_restarts=300";

  std::vector<double> x_r1;
  long iters_r1 = -1;
  for (const int ranks : {1, 2, 7}) {
    std::vector<double> x_t1;
    long iters_t1 = -1;
    for (const unsigned threads : {1u, 2u, 7u}) {
      par::set_num_threads(threads);
      const auto [rep, x] = run_facade(a, bk, k, ranks, spec);
      par::set_num_threads(0);
      EXPECT_TRUE(rep.result.converged)
          << "ranks=" << ranks << " threads=" << threads;
      if (threads == 1u) {
        x_t1 = x;
        iters_t1 = rep.result.iters;
        continue;
      }
      EXPECT_EQ(rep.result.iters, iters_t1)
          << "ranks=" << ranks << " threads=" << threads;
      ASSERT_EQ(x.size(), x_t1.size());
      for (std::size_t i = 0; i < x.size(); ++i) {
        ASSERT_EQ(x[i], x_t1[i]) << "ranks=" << ranks << " threads="
                                 << threads << " bit drift at " << i;
      }
    }
    if (ranks == 1) {
      x_r1 = x_t1;
      iters_r1 = iters_t1;
      continue;
    }
    EXPECT_EQ(iters_t1, iters_r1) << "ranks=" << ranks;
    ASSERT_EQ(x_t1.size(), x_r1.size());
    for (std::size_t i = 0; i < x_t1.size(); ++i) {
      EXPECT_NEAR(x_t1[i], x_r1[i], 1e-7) << "ranks=" << ranks;
    }
  }
}

TEST(BlockGmres, SyncCountPerOuterIterationMatchesSingleRhs) {
  // The amortization claim: panels get WIDER with k, not more numerous,
  // so the all-reduce count added per restart cycle is identical to the
  // single-RHS solver's.  Measure the per-cycle delta (4 restarts minus
  // 2 restarts) to cancel setup/exit constants.
  const sparse::CsrMatrix a = sparse::laplace2d_5pt(24, 24);
  const auto n = static_cast<std::size_t>(a.rows);
  const std::vector<double> b4 = api::batch_rhs(a, 4);

  const auto syncs = [&](int k, int restarts) {
    const std::string spec =
        "ortho=two_stage s=5 bs=60 rtol=1e-30 max_restarts=" +
        std::to_string(restarts);
    if (k == 1) {
      api::SolverOptions opts =
          api::SolverOptions::parse("solver=sstep " + spec);
      opts.ranks = 2;
      api::Solver solver(opts);
      solver.set_matrix_ref(a, "test");
      solver.set_rhs(column(b4, n, 0));
      return solver.solve().result.comm_stats.allreduces;
    }
    const auto [rep, x] = run_facade(a, b4, k, 2, spec);
    return rep.result.comm_stats.allreduces;
  };

  const auto scalar_delta = syncs(1, 4) - syncs(1, 2);
  const auto block_delta = syncs(4, 4) - syncs(4, 2);
  EXPECT_GT(scalar_delta, 0);
  EXPECT_EQ(block_delta, scalar_delta);
}

TEST(BlockGmres, OptionsValidation) {
  const auto check = [](const std::string& spec) {
    api::SolverOptions::parse(spec).validate();
  };
  // rhs must be positive, and batched solves require the s-step solver.
  EXPECT_THROW(check("solver=sstep rhs=0"), std::invalid_argument);
  EXPECT_THROW(check("solver=gmres rhs=2"), std::invalid_argument);
  EXPECT_NO_THROW(check("solver=gmres rhs=1"));
  EXPECT_NO_THROW(check("solver=sstep rhs=4"));
  // The block solver enforces the same shape rules as the scalar one.
  const sparse::CsrMatrix a = sparse::laplace2d_5pt(8, 8);
  const std::vector<double> bk = api::batch_rhs(a, 2);
  EXPECT_THROW(run_facade(a, bk, 2, 1, "s=7"), std::invalid_argument);
  EXPECT_THROW(run_facade(a, bk, 2, 1, "ortho=two_stage bs=13"),
               std::invalid_argument);
  // conv_reference, when given, must carry one norm per RHS.
  EXPECT_THROW(
      run_block_direct(a, bk, 2, 1,
                       [](krylov::BlockSStepGmresConfig& cfg) {
                         cfg.conv_reference = {1.0};
                       }),
      std::invalid_argument);
}

TEST(BlockGmres, ServiceSeedsWarmStartsPerColumn) {
  // A batch stores one warm-start seed per COLUMN, keyed by that
  // column's RHS fingerprint — a later single-RHS job solving one of
  // the batch's columns warm-starts from the matching seed.
  api::SolverOptions opts = api::SolverOptions::parse(
      "solver=sstep ortho=two_stage rtol=1e-8 max_restarts=1000 "
      "matrix=laplace2d_5pt");
  opts.nx = 24;
  opts.ranks = 2;
  opts.rhs = 3;

  service::SolverService svc;
  const service::JobResult cold = svc.wait(svc.submit(opts));
  ASSERT_TRUE(cold.error.empty()) << cold.error;
  ASSERT_TRUE(cold.report.result.converged);
  EXPECT_FALSE(cold.report.service.warm_started);

  // Re-batching the identical RHS block: every column's fingerprint
  // matches, the whole guess is seeded, and the repeat is trivial.
  api::SolverOptions warm_opts = opts;
  warm_opts.warm_start = 1;
  const service::JobResult warm = svc.wait(svc.submit(warm_opts));
  ASSERT_TRUE(warm.error.empty()) << warm.error;
  EXPECT_TRUE(warm.report.service.warm_started);
  EXPECT_TRUE(warm.report.result.converged);
  EXPECT_LT(warm.report.result.iters, cold.report.result.iters);

  // A single-RHS job for batch column 2 finds that column's seed.
  const sparse::CsrMatrix a = api::make_matrix(opts);
  const auto n = static_cast<std::size_t>(a.rows);
  const std::vector<double> bk = api::batch_rhs(a, 3);
  api::SolverOptions single = opts;
  single.rhs = 1;
  single.warm_start = 1;
  const service::JobResult one =
      svc.wait(svc.submit(single, column(bk, n, 2)));
  ASSERT_TRUE(one.error.empty()) << one.error;
  EXPECT_TRUE(one.report.service.warm_started);
  EXPECT_TRUE(one.report.result.converged);
  EXPECT_LT(one.report.result.iters, cold.report.result.iters);

  // The warm-started repeat reproduces the cold batch's solution.
  double diff = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    diff = std::max(diff,
                    std::abs(one.solution[i] - cold.solution[2 * n + i]));
  }
  EXPECT_LT(diff, 1e-6);
}

}  // namespace
