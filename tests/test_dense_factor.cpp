// Cholesky, Householder QR, Givens least squares, Jacobi SVD, and
// double-double kernels.

#include "dense/blas3.hpp"
#include "dense/cholesky.hpp"
#include "dense/dd.hpp"
#include "dense/givens.hpp"
#include "dense/householder.hpp"
#include "dense/svd.hpp"
#include "synth/synthetic.hpp"
#include "util/random.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace tsbo;
using dense::index_t;
using dense::Matrix;

Matrix random_matrix(index_t rows, index_t cols, std::uint64_t seed) {
  Matrix m(rows, cols);
  util::Xoshiro256 rng(seed);
  util::fill_normal(rng, m.data());
  return m;
}

Matrix spd_matrix(index_t n, std::uint64_t seed) {
  const Matrix a = random_matrix(2 * n, n, seed);
  Matrix g(n, n);
  dense::syrk_tn(a.view(), g.view());
  for (index_t i = 0; i < n; ++i) g(i, i) += n;  // well-conditioned
  return g;
}

TEST(Cholesky, FactorsSpdMatrix) {
  Matrix g = spd_matrix(8, 42);
  const Matrix g0 = dense::copy_of(g.view());
  const auto res = dense::potrf_upper(g.view());
  ASSERT_TRUE(res.ok());

  // R^T R == G and the strict lower triangle is zeroed.
  Matrix rr(8, 8);
  dense::gemm_tn(1.0, g.view(), g.view(), 0.0, rr.view());
  EXPECT_LT(dense::max_abs_diff(rr.view(), g0.view()), 1e-10 * 8);
  for (index_t j = 0; j < 8; ++j) {
    for (index_t i = j + 1; i < 8; ++i) EXPECT_EQ(g(i, j), 0.0);
    EXPECT_GT(g(j, j), 0.0);
  }
}

TEST(Cholesky, ReportsIndefiniteMatrixWithPivotIndex) {
  Matrix g = Matrix::identity(5);
  g(3, 3) = -1.0;  // indefinite at pivot 4 (1-based)
  const auto res = dense::potrf_upper(g.view());
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.info, 4);
}

TEST(Cholesky, ShiftRecoversNearSingular) {
  Matrix g = Matrix::identity(4);
  g(2, 2) = -1e-18;  // numerically zero pivot
  Matrix g2 = dense::copy_of(g.view());
  EXPECT_FALSE(dense::potrf_upper(g.view()).ok());
  EXPECT_TRUE(dense::potrf_upper_shifted(g2.view(), 1e-12).ok());
}

TEST(Cholesky, OneNorm) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(1, 0) = -3.0;
  a(0, 1) = 2.0;
  a(1, 1) = 1.0;
  EXPECT_DOUBLE_EQ(dense::one_norm(a.view()), 4.0);
}

class HouseholderShapes
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(HouseholderShapes, QrReconstructsAndQOrthonormal) {
  const auto [n, s] = GetParam();
  const Matrix a = random_matrix(n, s, 1234 + n + s);
  auto [q, r] = dense::householder_qr(a.view());

  // Q R == A
  Matrix qr(n, s);
  dense::gemm_nn(1.0, q.view(), r.view(), 0.0, qr.view());
  EXPECT_LT(dense::max_abs_diff(qr.view(), a.view()), 1e-11 * n);

  // ||I - Q^T Q|| = O(eps), R upper triangular with non-negative diag.
  EXPECT_LT(dense::orthogonality_error(q.view()), 1e-13 * n);
  for (index_t j = 0; j < s; ++j) {
    EXPECT_GE(r(j, j), 0.0);
    for (index_t i = j + 1; i < s; ++i) EXPECT_EQ(r(i, j), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, HouseholderShapes,
                         ::testing::Values(std::make_pair(1, 1),
                                           std::make_pair(10, 10),
                                           std::make_pair(100, 5),
                                           std::make_pair(500, 21),
                                           std::make_pair(64, 1)));

TEST(Householder, HandlesRankDeficientColumns) {
  Matrix a(20, 3);
  util::Xoshiro256 rng(9);
  for (index_t i = 0; i < 20; ++i) {
    a(i, 0) = rng.normal();
    a(i, 1) = 2.0 * a(i, 0);  // dependent column
    a(i, 2) = rng.normal();
  }
  auto [q, r] = dense::householder_qr(a.view());
  Matrix qr(20, 3);
  dense::gemm_nn(1.0, q.view(), r.view(), 0.0, qr.view());
  EXPECT_LT(dense::max_abs_diff(qr.view(), a.view()), 1e-12 * 20);
  EXPECT_NEAR(r(1, 1), 0.0, 1e-13 * dense::frobenius_norm(a.view()));
}

TEST(Givens, RotationAnnihilates) {
  double r = 0.0;
  const auto g = dense::make_givens(3.0, 4.0, r);
  EXPECT_DOUBLE_EQ(r, 5.0);
  EXPECT_NEAR(-g.s * 3.0 + g.c * 4.0, 0.0, 1e-15);
  EXPECT_NEAR(g.c * 3.0 + g.s * 4.0, 5.0, 1e-15);

  const auto gz = dense::make_givens(-2.0, 0.0, r);
  EXPECT_DOUBLE_EQ(r, 2.0);
  EXPECT_DOUBLE_EQ(gz.c, -1.0);
}

TEST(Givens, LeastSquaresMatchesNormalEquations) {
  // Hessenberg system from a tiny Arnoldi-like recurrence.
  const index_t m = 6;
  Matrix h(m + 1, m);
  util::Xoshiro256 rng(31);
  for (index_t j = 0; j < m; ++j) {
    for (index_t i = 0; i <= j + 1; ++i) h(i, j) = rng.normal();
    h(j + 1, j) += 3.0;  // keep subdiagonal well sized
  }
  const double gamma = 2.5;

  dense::HessenbergLeastSquares ls(m, gamma);
  for (index_t j = 0; j < m; ++j) {
    ls.append_column(std::span<const double>(h.col(j), static_cast<std::size_t>(j) + 2));
  }
  const std::vector<double> y = ls.solve_y();

  // Residual of the solved LS problem must be orthogonal to range(H).
  std::vector<double> res(m + 1, 0.0);
  res[0] = gamma;
  for (index_t j = 0; j < m; ++j) {
    for (index_t i = 0; i <= j + 1; ++i) res[static_cast<std::size_t>(i)] -= h(i, j) * y[static_cast<std::size_t>(j)];
  }
  double rnorm = 0.0;
  for (const double v : res) rnorm += v * v;
  rnorm = std::sqrt(rnorm);
  EXPECT_NEAR(ls.residual_norm(), rnorm, 1e-10);

  for (index_t j = 0; j < m; ++j) {
    double dot = 0.0;
    for (index_t i = 0; i <= j + 1; ++i) dot += h(i, j) * res[static_cast<std::size_t>(i)];
    EXPECT_NEAR(dot, 0.0, 1e-9);
  }
}

TEST(Givens, ResidualDecreasesMonotonically) {
  const index_t m = 12;
  dense::HessenbergLeastSquares ls(m, 1.0);
  util::Xoshiro256 rng(77);
  double prev = 1.0;
  std::vector<double> col(m + 1);
  for (index_t j = 0; j < m; ++j) {
    for (index_t i = 0; i <= j + 1; ++i) col[static_cast<std::size_t>(i)] = rng.normal();
    ls.append_column(std::span<const double>(col.data(), static_cast<std::size_t>(j) + 2));
    EXPECT_LE(ls.residual_norm(), prev + 1e-14);
    prev = ls.residual_norm();
  }
}

TEST(Svd, ExactSingularValuesOfLogscaled) {
  // synth::logscaled builds X diag(sigma) Y^T with known sigma.
  for (const double kappa : {1e2, 1e6, 1e10, 1e14}) {
    const Matrix v = synth::logscaled(500, 5, kappa, 3);
    const auto sv = dense::singular_values(v.view());
    ASSERT_EQ(sv.size(), 5u);
    EXPECT_NEAR(sv.front(), 1.0, 1e-10);
    EXPECT_NEAR(sv.back() * kappa, 1.0, 1e-4 * kappa * 1e-10 + 1e-2);
    EXPECT_NEAR(dense::cond_2(v.view()) / kappa, 1.0, 1e-2);
  }
}

TEST(Svd, TallInputUsesQrReduction) {
  const Matrix v = synth::logscaled(4000, 4, 1e8, 5);
  EXPECT_NEAR(dense::cond_2(v.view()) / 1e8, 1.0, 1e-2);
}

TEST(Svd, Norm2OfIdentityPerturbation) {
  Matrix a = Matrix::identity(6);
  a(2, 4) = 1e-7;
  const double n2 = dense::norm_2(a.view());
  EXPECT_GT(n2, 1.0);
  EXPECT_LT(n2, 1.0 + 1e-6);
}

TEST(Svd, OrthogonalityErrorMetric) {
  const Matrix q = synth::random_orthonormal(300, 8, 21);
  EXPECT_LT(dense::orthogonality_error(q.view()), 1e-14 * 300);
  Matrix bad = dense::copy_of(q.view());
  for (index_t i = 0; i < 300; ++i) bad(i, 0) = bad(i, 1);  // rank collapse
  EXPECT_GT(dense::orthogonality_error(bad.view()), 0.5);
}

TEST(Svd, RankDeficientReportsInfiniteCondition) {
  Matrix a(50, 3);
  util::Xoshiro256 rng(4);
  for (index_t i = 0; i < 50; ++i) {
    a(i, 0) = rng.normal();
    a(i, 1) = a(i, 0);
    a(i, 2) = rng.normal();
  }
  EXPECT_TRUE(std::isinf(dense::cond_2(a.view())) ||
              dense::cond_2(a.view()) > 1e15);
}

TEST(DoubleDouble, TwoSumAndTwoProdAreExact) {
  const auto s = dense::two_sum(1.0, 1e-20);
  EXPECT_DOUBLE_EQ(s.hi, 1.0);
  EXPECT_DOUBLE_EQ(s.lo, 1e-20);

  // two_prod must capture the rounding error of the double product
  // exactly: hi == fl(a*b) and hi + lo == a*b in extended precision.
  const double a = 1.0 + 1e-8;
  const double b = 1.0 - 1e-8;
  const auto p = dense::two_prod(a, b);
  EXPECT_DOUBLE_EQ(p.hi, a * b);
  const long double exact =
      static_cast<long double>(a) * static_cast<long double>(b);
  EXPECT_NEAR(static_cast<double>(static_cast<long double>(p.hi) +
                                  static_cast<long double>(p.lo) - exact),
              0.0, 1e-25);
  EXPECT_NE(p.lo, 0.0);  // the product is not exactly representable
}

TEST(DoubleDouble, DotBeatsDoubleOnCancellation) {
  // Sum of alternating large/small products that cancels catastrophically.
  const index_t n = 4000;
  std::vector<double> x(static_cast<std::size_t>(n)), y(static_cast<std::size_t>(n));
  util::Xoshiro256 rng(8);
  long double exact = 0.0L;
  for (index_t i = 0; i < n; ++i) {
    const double xv = rng.normal() * (i % 2 == 0 ? 1e8 : 1.0);
    const double yv = rng.normal() * (i % 2 == 0 ? 1e8 : 1.0);
    x[static_cast<std::size_t>(i)] = xv;
    y[static_cast<std::size_t>(i)] = yv;
    exact += static_cast<long double>(xv) * static_cast<long double>(yv);
  }
  const double dd = dense::dot_dd(x.data(), y.data(), n);
  double plain = 0.0;
  for (index_t i = 0; i < n; ++i) {
    plain += x[static_cast<std::size_t>(i)] * y[static_cast<std::size_t>(i)];
  }
  // The long-double reference itself carries ~n * 2^-64 noise; dd must
  // agree with it to near that level and beat the plain double sum.
  const double err_dd = std::abs(
      static_cast<double>(static_cast<long double>(dd) - exact) /
      static_cast<double>(std::abs(exact)));
  const double err_plain = std::abs(
      static_cast<double>(static_cast<long double>(plain) - exact) /
      static_cast<double>(std::abs(exact)));
  EXPECT_LT(err_dd, 1e-15);
  EXPECT_LT(err_dd, err_plain + 1e-18);
}

TEST(DoubleDouble, GramMatchesHighPrecision) {
  const Matrix a = random_matrix(300, 4, 15);
  Matrix g(4, 4);
  dense::gram_dd(a.view(), g.view());
  for (index_t i = 0; i < 4; ++i) {
    for (index_t j = 0; j < 4; ++j) {
      long double exact = 0.0L;
      for (index_t r = 0; r < 300; ++r) {
        exact += static_cast<long double>(a(r, i)) * static_cast<long double>(a(r, j));
      }
      EXPECT_NEAR(g(i, j), static_cast<double>(exact), 1e-13);
      EXPECT_DOUBLE_EQ(g(i, j), g(j, i));
    }
  }
}

}  // namespace
