// The two-stage block orthogonalization manager (paper Fig. 5) and the
// one-stage managers behind the same interface: R/L bookkeeping,
// big-panel finalization, orthogonality (Theorem V.1), sync counts
// (1 per s steps + 1 per bs steps), and Fig. 8 behaviour on glued
// matrices.

#include "dense/blas3.hpp"
#include "dense/svd.hpp"
#include "ortho/manager.hpp"
#include "ortho/measures.hpp"
#include "par/spmd.hpp"
#include "synth/synthetic.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace tsbo;
using dense::index_t;
using dense::Matrix;

/// Drives a manager the way the s-step solver does, but with
/// pre-generated panel columns instead of MPK output: column 0 is the
/// (normalized) first column of `v`, then panels of s columns are
/// copied in and handed to the manager.  Returns the basis (overwritten
/// in place) plus R and L.
struct ManagerRun {
  Matrix basis;
  Matrix r;
  Matrix l;
  index_t nfinal = 0;
};

ManagerRun run_manager(ortho::BlockOrthoManager& mgr, ortho::OrthoContext& ctx,
                       const Matrix& v, index_t s, bool finalize_at_end = true) {
  const index_t n = v.rows();
  const index_t m = v.cols() - 1;  // v columns: 1 seed + m panel columns
  ManagerRun out{dense::copy_of(v.view()), Matrix(m + 1, m + 1),
                 Matrix(m + 1, m + 1), 0};
  // Normalize the seed column like the solver does.
  {
    double nrm = 0.0;
    for (index_t i = 0; i < n; ++i) nrm += out.basis(i, 0) * out.basis(i, 0);
    nrm = std::sqrt(nrm);
    for (index_t i = 0; i < n; ++i) out.basis(i, 0) /= nrm;
  }
  out.r(0, 0) = 1.0;
  mgr.reset();
  for (index_t p = 0; p < m / s; ++p) {
    mgr.note_mpk_start(ctx, out.l.view(), p * s);
    out.nfinal = mgr.add_panel(ctx, out.basis.view(), p * s + 1, s,
                               out.r.view(), out.l.view());
  }
  if (finalize_at_end) {
    out.nfinal =
        mgr.finalize(ctx, out.basis.view(), m + 1, out.r.view(), out.l.view());
  }
  return out;
}

Matrix glued_with_seed(index_t n, int panels, index_t s, double kappa,
                       double growth, std::uint64_t seed) {
  synth::GluedSpec spec;
  spec.n = n;
  spec.panels = panels;
  spec.panel_cols = s;
  spec.kappa_panel = kappa;
  spec.growth = growth;
  const Matrix panels_m = synth::glued(spec, seed);
  // Prepend a seed column (random, normalized later by the harness).
  Matrix v(n, panels_m.cols() + 1);
  const Matrix seed_col = synth::random_orthonormal(n, 1, seed + 999);
  dense::copy(seed_col.view(), v.view().columns(0, 1));
  dense::copy(panels_m.view(), v.view().columns(1, panels_m.cols()));
  return v;
}

TEST(TwoStageManager, FinalizesOnlyAtBigPanelBoundaries) {
  const index_t n = 1200, s = 5, bs = 15, m = 30;
  const Matrix v = glued_with_seed(n, m / s, s, 1e4, 1.0, 3);
  auto mgr = ortho::make_two_stage_manager(bs);
  ortho::OrthoContext ctx;

  ManagerRun run{dense::copy_of(v.view()), Matrix(m + 1, m + 1),
                 Matrix(m + 1, m + 1), 0};
  double nrm = 0.0;
  for (index_t i = 0; i < n; ++i) nrm += run.basis(i, 0) * run.basis(i, 0);
  nrm = std::sqrt(nrm);
  for (index_t i = 0; i < n; ++i) run.basis(i, 0) /= nrm;
  run.r(0, 0) = 1.0;
  mgr->reset();

  std::vector<index_t> finals;
  for (index_t p = 0; p < m / s; ++p) {
    mgr->note_mpk_start(ctx, run.l.view(), p * s);
    finals.push_back(mgr->add_panel(ctx, run.basis.view(), p * s + 1, s,
                                    run.r.view(), run.l.view()));
  }
  // bs = 15, s = 5: finalization after panels 3 and 6 only.
  EXPECT_EQ(finals, (std::vector<index_t>{1, 1, 16, 16, 16, 31}));
}

class ManagerKinds
    : public ::testing::TestWithParam<std::tuple<const char*, index_t>> {};

TEST_P(ManagerKinds, QrReconstructionAndOrthogonality) {
  const auto [kind, bs] = GetParam();
  const index_t n = 2000, s = 5, m = 30;
  const Matrix v = glued_with_seed(n, m / s, s, 1e5, 1.0, 7);

  std::unique_ptr<ortho::BlockOrthoManager> mgr;
  if (std::string(kind) == "bcgs2") {
    mgr = ortho::make_bcgs2_manager(ortho::IntraKind::kCholQR2);
  } else if (std::string(kind) == "pip2") {
    mgr = ortho::make_bcgs_pip2_manager();
  } else {
    mgr = ortho::make_two_stage_manager(bs);
  }
  ortho::OrthoContext ctx;
  const ManagerRun run = run_manager(*mgr, ctx, v, s);

  ASSERT_EQ(run.nfinal, m + 1);
  // Orthogonality of the whole final basis: O(eps) (Theorem V.1).
  EXPECT_LT(dense::orthogonality_error(run.basis.view()), 1e-12) << kind;

  // Q R == [seed/||seed||, panels]: verify the panel columns.
  Matrix qr(n, m + 1);
  dense::gemm_nn(1.0, run.basis.view(), run.r.view(), 0.0, qr.view());
  for (index_t j = 1; j <= m; ++j) {
    for (index_t i = 0; i < n; ++i) {
      ASSERT_NEAR(qr(i, j), v(i, j), 1e-9) << kind << " col " << j;
    }
  }

  // L: unit columns at finalized MPK starts, final R elsewhere.
  EXPECT_DOUBLE_EQ(run.l(0, 0), 1.0);
  for (index_t j = 1; j < m; ++j) {
    if (j % s != 0) {
      for (index_t i = 0; i <= j; ++i) {
        ASSERT_NEAR(run.l(i, j), run.r(i, j), 1e-12) << kind << " col " << j;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, ManagerKinds,
    ::testing::Values(std::make_tuple("bcgs2", index_t{0}),
                      std::make_tuple("pip2", index_t{0}),
                      std::make_tuple("two_stage_bs5", index_t{5}),
                      std::make_tuple("two_stage_bs15", index_t{15}),
                      std::make_tuple("two_stage_bs30", index_t{30})),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? std::to_string(std::get<1>(info.param))
                                      : "");
    });

TEST(TwoStageManager, MatchesPip2WhenBsEqualsS) {
  // Paper Section V: with bs = s the two-stage approach degenerates to
  // one-stage BCGS-PIP2 (same math, same per-panel finalization).
  const index_t n = 1000, s = 5, m = 20;
  const Matrix v = glued_with_seed(n, m / s, s, 1e4, 1.0, 11);

  ortho::OrthoContext ctx;
  auto two = ortho::make_two_stage_manager(s);
  auto pip2 = ortho::make_bcgs_pip2_manager();
  const ManagerRun a = run_manager(*two, ctx, v, s);
  const ManagerRun b = run_manager(*pip2, ctx, v, s);

  // Both produce an orthonormal basis spanning the same space with the
  // same column-by-column QR (identical up to rounding since both run
  // PIP then PIP on each panel; the two-stage "big panel" is the panel
  // itself).
  EXPECT_LT(dense::max_abs_diff(a.basis.view(), b.basis.view()), 1e-9);
  EXPECT_LT(dense::max_abs_diff(a.r.view(), b.r.view()), 1e-9);
}

TEST(TwoStageManager, SyncCountIsOnePerPanelPlusOnePerBigPanel) {
  const index_t n = 1500, s = 5, m = 30, bs = 15;
  const Matrix v = glued_with_seed(n, m / s, s, 1e3, 1.0, 13);

  par::spmd_run(2, [&](par::Communicator& comm) {
    const auto range = par::block_row_range(n, comm.size(), comm.rank());
    Matrix local = dense::copy_of(
        v.view().block(static_cast<index_t>(range.begin), 0,
                       static_cast<index_t>(range.size()), v.cols()));
    // Seed normalization consistent across ranks: use global norm.
    ortho::OrthoContext ctx;
    ctx.comm = &comm;
    const double nrm = ortho::global_norm(
        ctx, std::span<const double>(local.col(0),
                                     static_cast<std::size_t>(local.rows())));
    for (index_t i = 0; i < local.rows(); ++i) local(i, 0) /= nrm;

    Matrix r(m + 1, m + 1), l(m + 1, m + 1);
    r(0, 0) = 1.0;
    auto mgr = ortho::make_two_stage_manager(bs);
    mgr->reset();
    comm.reset_stats();
    for (index_t p = 0; p < m / s; ++p) {
      mgr->note_mpk_start(ctx, l.view(), p * s);
      mgr->add_panel(ctx, local.view(), p * s + 1, s, r.view(), l.view());
    }
    // 6 panels x 1 reduce + 2 big panels x 1 reduce = 8.
    EXPECT_EQ(comm.stats().allreduces, 8u);
    EXPECT_DOUBLE_EQ(mgr->syncs_per_s_steps(s, bs), 1.0 + 5.0 / 15.0);
  });
}

TEST(TwoStageManager, Fig8GluedMatrixStaysOrthogonal) {
  // Scaled-down Fig. 8: glued panels with kappa 1e7 each and cumulative
  // kappa growing as 2^{j-1} 1e7.  Pre-processing must keep the big
  // panel condition number O(1)-ish and the final orthogonality O(eps).
  const index_t n = 4000, s = 5, m = 40, bs = 20;
  const Matrix v = glued_with_seed(n, m / s, s, 1e7, 2.0, 17);

  auto mgr = ortho::make_two_stage_manager(bs);
  ortho::OrthoContext ctx;
  const ManagerRun run = run_manager(*mgr, ctx, v, s);
  ASSERT_EQ(run.nfinal, m + 1);
  EXPECT_LT(dense::orthogonality_error(run.basis.view()), 1e-11);

  // The pre-processed (stage-1 only) basis would NOT be orthonormal:
  // verify stage 1 alone leaves a measurable error on this matrix.
  auto pip = ortho::make_bcgs_pip_manager();
  const ManagerRun once = run_manager(*pip, ctx, v, s);
  EXPECT_GT(dense::orthogonality_error(once.basis.view()),
            dense::orthogonality_error(run.basis.view()) * 10);
}

TEST(TwoStageManager, PartialBigPanelFlushesOnFinalize) {
  // m = 20, bs = 15: the last big panel holds only 5 columns and must
  // be finalized by finalize(), not add_panel().
  const index_t n = 900, s = 5, m = 20, bs = 15;
  const Matrix v = glued_with_seed(n, m / s, s, 1e3, 1.0, 19);
  auto mgr = ortho::make_two_stage_manager(bs);
  ortho::OrthoContext ctx;
  const ManagerRun run = run_manager(*mgr, ctx, v, s, /*finalize_at_end=*/true);
  EXPECT_EQ(run.nfinal, m + 1);
  EXPECT_LT(dense::orthogonality_error(run.basis.view()), 1e-12);
}

TEST(TwoStageManager, RejectsBadConfiguration) {
  EXPECT_THROW(ortho::make_two_stage_manager(0), std::invalid_argument);
  EXPECT_THROW(ortho::make_two_stage_manager(-5), std::invalid_argument);
}

TEST(Managers, NamesAndSyncAccounting) {
  EXPECT_EQ(ortho::make_bcgs2_manager(ortho::IntraKind::kCholQR2)->name(),
            "BCGS2(CholQR2)");
  EXPECT_EQ(ortho::make_bcgs_pip2_manager()->name(), "BCGS-PIP2");
  EXPECT_EQ(ortho::make_two_stage_manager(60)->name(), "Two-stage");

  EXPECT_DOUBLE_EQ(
      ortho::make_bcgs2_manager(ortho::IntraKind::kCholQR2)->syncs_per_s_steps(5, 60),
      5.0);
  EXPECT_DOUBLE_EQ(ortho::make_bcgs_pip2_manager()->syncs_per_s_steps(5, 60),
                   2.0);
  EXPECT_DOUBLE_EQ(ortho::make_two_stage_manager(60)->syncs_per_s_steps(5, 60),
                   1.0 + 5.0 / 60.0);
}

}  // namespace
