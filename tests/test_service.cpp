// The persistent solver service: keyed operator cache (hit/miss/LRU
// eviction under a byte budget), bounded-FIFO job scheduling
// determinism, bitwise equivalence of cached solves with standalone
// api::Solver runs at ranks x threads {1,2,7}^2, warm-started repeat
// solves, and the /5 report's service object.

#include "service/solver_service.hpp"

#include "api/solver.hpp"
#include "par/config.hpp"
#include "service/operator_cache.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace tsbo;

// Small fixed-budget s-step solve (an unreachable rtol runs the whole
// restart budget, so iteration counts and solutions are
// schedule-independent).
api::SolverOptions bounded_opts(int nx, int ranks) {
  api::SolverOptions o = api::SolverOptions::parse(
      "solver=sstep ortho=two_stage m=20 s=5 bs=20 rtol=1e-300 "
      "max_restarts=1 precond=chebyshev matrix=laplace2d_5pt");
  o.nx = nx;
  o.ranks = ranks;
  return o;
}

TEST(Service, CacheHitBitwiseIdenticalAcrossRanksThreads) {
  for (const int ranks : {1, 2, 7}) {
    for (const unsigned threads : {1u, 2u, 7u}) {
      par::set_num_threads(threads);
      const api::SolverOptions opts = bounded_opts(28, ranks);

      api::Solver standalone(opts);
      const api::SolveReport ref = standalone.solve();
      const std::vector<double> x_ref = standalone.solution();
      EXPECT_FALSE(ref.service.enabled);

      service::SolverService svc;
      const service::JobResult cold = svc.wait(svc.submit(opts));
      const service::JobResult warm = svc.wait(svc.submit(opts));

      ASSERT_TRUE(cold.error.empty()) << cold.error;
      ASSERT_TRUE(warm.error.empty()) << warm.error;
      EXPECT_FALSE(cold.report.service.cache_hit);
      EXPECT_TRUE(warm.report.service.cache_hit);
      EXPECT_TRUE(warm.report.service.reused_matrix);
      EXPECT_TRUE(warm.report.service.reused_partition);
      EXPECT_TRUE(warm.report.service.reused_precond_setup);
      EXPECT_TRUE(warm.report.service.reused_rhs);
      EXPECT_TRUE(cold.report.service.enabled);
      EXPECT_GT(cold.report.service.setup_seconds, 0.0);
      EXPECT_EQ(warm.report.service.setup_seconds, 0.0);

      // The determinism pin: service solves (cold and cached) are
      // bitwise-identical to the standalone facade run, at every rank
      // and thread count.
      EXPECT_EQ(cold.solution, x_ref)
          << "ranks=" << ranks << " threads=" << threads;
      EXPECT_EQ(warm.solution, x_ref)
          << "ranks=" << ranks << " threads=" << threads;
      EXPECT_EQ(cold.report.result.iters, ref.result.iters);
      EXPECT_EQ(warm.report.result.iters, ref.result.iters);
    }
  }
  par::set_num_threads(0);  // restore the default thread count
}

TEST(Service, OperatorCacheKeyCoversOperatorNotAlgorithm) {
  const api::SolverOptions a = bounded_opts(24, 2);
  api::SolverOptions b = a;
  b.s = 4;
  b.precond = "none";
  b.rtol = 1e-3;  // algorithm knobs: same operator
  EXPECT_EQ(service::operator_cache_key(a), service::operator_cache_key(b));
  api::SolverOptions c = a;
  c.nx = 25;  // geometry: different operator
  api::SolverOptions d = a;
  d.ranks = 3;  // partition: different operator
  EXPECT_NE(service::operator_cache_key(a), service::operator_cache_key(c));
  EXPECT_NE(service::operator_cache_key(a), service::operator_cache_key(d));
}

TEST(Service, LruEvictionUnderByteBudget) {
  // Sizes descending so the third (smallest) entry's post-solve growth
  // keeps two entries under a budget sized for the first two.
  const api::SolverOptions a = bounded_opts(32, 2);
  const api::SolverOptions b = bounded_opts(28, 2);
  const api::SolverOptions c = bounded_opts(24, 2);

  // Measure each operator's grown (post-solve) footprint.
  const auto grown_bytes = [](const api::SolverOptions& opts) {
    service::SolverService svc;
    (void)svc.wait(svc.submit(opts));
    return svc.cache().total_bytes();
  };
  const std::size_t ga = grown_bytes(a);
  const std::size_t gb = grown_bytes(b);
  const std::size_t gc = grown_bytes(c);
  ASSERT_GT(gc, 0u);
  ASSERT_LT(gc, ga);

  service::ServiceConfig cfg;
  cfg.cache_budget_bytes = ga + gb;  // two entries fit, three never do
  service::SolverService svc(cfg);
  (void)svc.wait(svc.submit(a));
  (void)svc.wait(svc.submit(b));
  EXPECT_EQ(svc.cache().size(), 2u);
  EXPECT_EQ(svc.cache_stats().evictions, 0u);

  (void)svc.wait(svc.submit(c));
  // Inserting C overflows the budget: A (least recently used) goes.
  EXPECT_EQ(svc.cache_stats().evictions, 1u);
  EXPECT_EQ(svc.cache().size(), 2u);
  EXPECT_FALSE(svc.cache().contains(service::operator_cache_key(a)));
  EXPECT_TRUE(svc.cache().contains(service::operator_cache_key(b)));
  EXPECT_TRUE(svc.cache().contains(service::operator_cache_key(c)));

  // A solves again — as a fresh miss.
  const service::JobResult again = svc.wait(svc.submit(a));
  EXPECT_FALSE(again.report.service.cache_hit);
  EXPECT_EQ(svc.cache_stats().misses, 4u);
  EXPECT_LE(svc.cache().total_bytes(), cfg.cache_budget_bytes);
}

TEST(Service, QueueFifoDispatchOrderIsSubmissionOrder) {
  par::set_num_threads(1);  // fully sequential: completion == dispatch
  std::vector<std::vector<double>> first_run;
  for (int run = 0; run < 2; ++run) {
    service::ServiceConfig cfg;
    cfg.queue_capacity = 4;  // smaller than the burst: submit blocks
    service::SolverService svc(cfg);
    std::vector<std::uint64_t> ids;
    for (const int nx : {24, 28, 24, 32, 28, 24}) {
      ids.push_back(svc.submit(bounded_opts(nx, 2)));
    }
    const std::vector<service::JobResult> results = svc.drain();
    ASSERT_EQ(results.size(), ids.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_TRUE(results[i].error.empty()) << results[i].error;
      EXPECT_EQ(results[i].id, ids[i]);  // drain: submission (id) order
      // Jobs are dispatched strictly in submission order at any lane
      // count (unit chunks off one monotone cursor).
      EXPECT_EQ(results[i].dispatch_seq, static_cast<std::uint64_t>(i));
    }
    if (run == 0) {
      for (const service::JobResult& r : results) {
        first_run.push_back(r.solution);
      }
    } else {
      for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].solution, first_run[i]) << "job " << i;
      }
    }
  }
  par::set_num_threads(0);
}

TEST(Service, WarmStartCutsIterationsOnPerturbedRhsRepeat) {
  api::SolverOptions opts = bounded_opts(32, 2);
  opts.rtol = 1e-8;
  opts.max_restarts = 1000000;

  api::Solver solver(opts);
  const std::vector<double> b = api::ones_rhs(solver.matrix());
  std::vector<double> b_perturbed = b;
  for (double& v : b_perturbed) v *= 1.0 + 1e-6;

  // Cold baseline for the perturbed system.
  api::Solver cold_solver(opts);
  cold_solver.set_rhs(b_perturbed);
  const api::SolveReport cold = cold_solver.solve();
  ASSERT_TRUE(cold.result.converged);

  service::SolverService svc;
  // Seed solve against the original RHS...
  (void)svc.wait(svc.submit(opts));
  // ...then the perturbed-RHS repeat, warm-started from its solution.
  api::SolverOptions warm_opts = opts;
  warm_opts.warm_start = 1;
  const service::JobResult warm = svc.wait(svc.submit(warm_opts, b_perturbed));
  ASSERT_TRUE(warm.error.empty()) << warm.error;
  EXPECT_TRUE(warm.report.service.warm_started);
  EXPECT_FALSE(warm.report.service.reused_rhs);
  EXPECT_TRUE(warm.report.result.converged);
  EXPECT_LT(warm.report.result.iters, cold.result.iters);

  // warm_start=0 on the same repeat stays bit-for-bit cold.
  service::SolverService svc2;
  (void)svc2.wait(svc2.submit(opts));
  const service::JobResult repeat =
      svc2.wait(svc2.submit(opts, b_perturbed));
  ASSERT_TRUE(repeat.error.empty()) << repeat.error;
  EXPECT_FALSE(repeat.report.service.warm_started);
  EXPECT_EQ(repeat.report.result.iters, cold.result.iters);
  EXPECT_EQ(repeat.solution, cold_solver.solution());
}

TEST(Service, ReportCarriesServiceObject) {
  service::SolverService svc;
  const api::SolverOptions opts = bounded_opts(24, 2);
  (void)svc.wait(svc.submit(opts));
  const service::JobResult warm = svc.wait(svc.submit(opts));
  const std::string json = warm.report.json();
  EXPECT_NE(json.find("\"schema\": \"tsbo.solve_report/7\""),
            std::string::npos);
  EXPECT_NE(json.find("\"service\": {"), std::string::npos);
  EXPECT_NE(json.find("\"cache_hit\": true"), std::string::npos);
  EXPECT_NE(json.find("\"warm_started\": false"), std::string::npos);
  EXPECT_NE(json.find("\"reused\": {"), std::string::npos);
  EXPECT_NE(json.find("\"cache_key\": \"" +
                      service::operator_cache_key(opts) + "\""),
            std::string::npos);
  // Standalone solves emit the same object shape, disabled.
  api::Solver standalone(opts);
  const std::string off = standalone.solve().json();
  EXPECT_NE(off.find("\"service\": {"), std::string::npos);
  EXPECT_NE(off.find("\"enabled\": false"), std::string::npos);
}

TEST(Service, RetryAfterCorruptedDispatchIsBitwiseClean) {
  // service.dispatch@0:corrupt flips one value of the *cached* global
  // matrix after the pieces were built: the solve converges on the
  // clean pieces, but the residual guard recomputes against the
  // corrupted cached matrix and flags the job.  The retry re-validates
  // the checksum, invalidates the poisoned entry, rebuilds it, and —
  // the injected fault being one-shot — completes bitwise-identical to
  // a never-faulted run.
  api::SolverOptions opts = bounded_opts(24, 2);
  opts.rtol = 1e-8;
  opts.max_restarts = 1000000;
  opts.verify_residual = 1;

  service::SolverService clean_svc;
  const service::JobResult clean = clean_svc.wait(clean_svc.submit(opts));
  ASSERT_EQ(clean.outcome, service::JobOutcome::kOk);

  api::SolverOptions faulty = opts;
  faulty.faults = "service.dispatch@0:corrupt";
  faulty.retries = 1;
  service::SolverService svc;
  const service::JobResult retried = svc.wait(svc.submit(faulty));
  EXPECT_EQ(retried.outcome, service::JobOutcome::kOk);
  EXPECT_EQ(retried.attempts, 2);
  EXPECT_EQ(retried.solution, clean.solution);
  EXPECT_EQ(retried.report.result.iters, clean.report.result.iters);
  EXPECT_EQ(retried.report.resilience.outcome, "ok");
  EXPECT_EQ(retried.report.resilience.attempts, 2);
  // The poisoned entry was invalidated and rebuilt: 2 misses, and the
  // invalidation counts as an eviction.
  EXPECT_EQ(svc.cache_stats().misses, 2u);
  EXPECT_EQ(svc.cache_stats().evictions, 1u);
  // The trail names the dispatch corruption, fired in attempt 1.
  ASSERT_EQ(retried.report.resilience.fault_trail.size(), 1u);
  EXPECT_EQ(retried.report.resilience.fault_trail[0].site,
            par::FaultSite::kServiceDispatch);
  EXPECT_EQ(retried.report.resilience.fault_trail[0].attempt, 1);

  // Without retries the same job terminates as corrupted — the queue
  // still drains.
  service::SolverService svc2;
  api::SolverOptions no_retry = faulty;
  no_retry.retries = 0;
  const service::JobResult stuck = svc2.wait(svc2.submit(no_retry));
  EXPECT_EQ(stuck.outcome, service::JobOutcome::kCorrupted);
  EXPECT_EQ(stuck.report.resilience.outcome, "corrupted");
  EXPECT_TRUE(stuck.error.empty());  // a report was produced
}

TEST(Service, RetriesThrowFaultThenSucceeds) {
  api::SolverOptions opts = bounded_opts(24, 2);
  opts.faults = "comm.allreduce@2:throw";
  opts.retries = 2;
  service::SolverService svc;
  const service::JobResult res = svc.wait(svc.submit(opts));
  EXPECT_EQ(res.outcome, service::JobOutcome::kOk);
  EXPECT_EQ(res.attempts, 2);  // one failure, one clean retry
  EXPECT_TRUE(res.error.empty());

  // Retries exhausted -> failed, with the injected error text.
  api::SolverOptions hopeless = opts;
  hopeless.faults = "comm.allreduce@2:throw;comm.allreduce@2:throw";
  hopeless.retries = 0;
  service::SolverService svc2;
  const service::JobResult failed = svc2.wait(svc2.submit(hopeless));
  EXPECT_EQ(failed.outcome, service::JobOutcome::kFailed);
  EXPECT_EQ(failed.attempts, 1);
  EXPECT_NE(failed.error.find("injected fault"), std::string::npos)
      << failed.error;
}

TEST(Service, QuarantineAfterConsecutiveFailures) {
  api::SolverOptions bad = bounded_opts(24, 2);
  bad.faults =
      "comm.allreduce@2:throw;comm.allreduce@2:throw;comm.allreduce@2:throw";
  bad.retries = 2;  // every attempt re-throws: the job always fails
  bad.quarantine_after = 2;

  service::SolverService svc;
  std::vector<service::JobOutcome> outcomes;
  for (int i = 0; i < 4; ++i) {
    outcomes.push_back(svc.wait(svc.submit(bad)).outcome);
  }
  EXPECT_EQ(outcomes[0], service::JobOutcome::kFailed);
  EXPECT_EQ(outcomes[1], service::JobOutcome::kFailed);
  EXPECT_EQ(outcomes[2], service::JobOutcome::kQuarantined);
  EXPECT_EQ(outcomes[3], service::JobOutcome::kQuarantined);

  // A different spec (the clean twin) is untouched by the quarantine.
  api::SolverOptions good = bounded_opts(24, 2);
  good.quarantine_after = 2;
  EXPECT_EQ(svc.wait(svc.submit(good)).outcome, service::JobOutcome::kOk);
}

TEST(Service, CancelReachesQueuedAndRunningJobs) {
  // Job A holds the scheduler's first dispatch round long enough for B
  // to be submitted and cancelled while still queued: B then resolves
  // kCancelled without dispatching a solve.
  api::SolverOptions slow = bounded_opts(24, 2);
  slow.faults = "spmv.interior@0:delay300";
  service::SolverService svc;
  const std::uint64_t a = svc.submit(slow);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const std::uint64_t b = svc.submit(bounded_opts(28, 2));
  EXPECT_TRUE(svc.cancel(b));
  EXPECT_FALSE(svc.cancel(b + 100));  // unknown id
  const service::JobResult rb = svc.wait(b);
  EXPECT_EQ(rb.outcome, service::JobOutcome::kCancelled);
  EXPECT_NE(rb.error.find("cancelled before attempt"), std::string::npos)
      << rb.error;
  EXPECT_EQ(svc.wait(a).outcome, service::JobOutcome::kOk);
  // A completed job can no longer be cancelled.
  EXPECT_FALSE(svc.cancel(a));

  // Mid-solve: the delay stretches the first restart; cancel() lands
  // while it runs and the restart-boundary poll takes the exit.
  api::SolverOptions long_job = bounded_opts(32, 2);
  long_job.max_restarts = 1000000;
  long_job.faults = "spmv.interior@0:delay300";
  service::SolverService svc2;
  const std::uint64_t c = svc2.submit(long_job);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_TRUE(svc2.cancel(c));
  const service::JobResult rc = svc2.wait(c);
  EXPECT_EQ(rc.outcome, service::JobOutcome::kCancelled);
  EXPECT_TRUE(rc.error.empty());  // the solve produced a (partial) report
  EXPECT_TRUE(rc.report.result.cancelled);
  EXPECT_EQ(rc.report.resilience.outcome, "cancelled");
}

TEST(Service, DeadlineTimesOutButQueueDrains) {
  api::SolverOptions opts = bounded_opts(24, 2);
  opts.max_restarts = 1000000;
  opts.deadline_ms = 40;
  opts.faults = "spmv.interior@0:delay250";
  service::SolverService svc;
  const std::uint64_t id = svc.submit(opts);
  const std::uint64_t after = svc.submit(bounded_opts(24, 2));
  const service::JobResult res = svc.wait(id);
  EXPECT_EQ(res.outcome, service::JobOutcome::kTimedOut);
  EXPECT_TRUE(res.report.result.deadline_expired);
  EXPECT_EQ(res.report.resilience.outcome, "timed_out");
  // The job behind it still completes: the queue always drains.
  EXPECT_EQ(svc.wait(after).outcome, service::JobOutcome::kOk);
}

TEST(Service, MaxInflightPerKeyCapsBurstsButKeepsRelativeOrder) {
  // Uncapped reference run (threads=1: completion order == dispatch).
  par::set_num_threads(1);
  const std::vector<int> burst_nx = {24, 24, 24, 28, 32};
  std::vector<std::vector<double>> ref;
  {
    service::SolverService svc;
    std::vector<std::uint64_t> ids;
    for (const int nx : burst_nx) ids.push_back(svc.submit(bounded_opts(nx, 2)));
    for (const std::uint64_t id : ids) ref.push_back(svc.wait(id).solution);
  }

  service::ServiceConfig cfg;
  cfg.max_inflight_per_key = 1;
  service::SolverService svc(cfg);
  std::vector<std::uint64_t> ids;
  for (const int nx : burst_nx) ids.push_back(svc.submit(bounded_opts(nx, 2)));
  std::vector<service::JobResult> results;
  for (const std::uint64_t id : ids) results.push_back(svc.wait(id));

  // Solutions are unaffected by the scheduling policy.
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].outcome, service::JobOutcome::kOk);
    EXPECT_EQ(results[i].solution, ref[i]) << "job " << i;
  }
  // Round 1 takes the first nx=24 job plus the nx=28 and nx=32 jobs
  // (first of each key, front to back); the capped nx=24 repeats land
  // in later rounds.  Jobs the cap does not affect keep their relative
  // order — and jump ahead of the same-key overflow instead of
  // starving behind it.
  EXPECT_EQ(results[0].dispatch_seq, 0u);  // first 24
  EXPECT_EQ(results[3].dispatch_seq, 1u);  // 28: round 1
  EXPECT_EQ(results[4].dispatch_seq, 2u);  // 32: round 1
  EXPECT_EQ(results[1].dispatch_seq, 3u);  // second 24: round 2
  EXPECT_EQ(results[2].dispatch_seq, 4u);  // third 24: round 3
  par::set_num_threads(0);
}

TEST(Service, WarmStartSeedsAreKeyedByRhsFingerprint) {
  api::SolverOptions opts = bounded_opts(32, 2);
  opts.rtol = 1e-8;
  opts.max_restarts = 1000000;

  api::Solver probe(opts);
  const std::vector<double> b1 = api::ones_rhs(probe.matrix());
  std::vector<double> b2 = b1;
  for (std::size_t i = 0; i < b2.size(); ++i) b2[i] *= (i % 2 == 0) ? 2.0 : 0.5;

  service::SolverService svc;
  // Seed both RHS streams cold.
  const service::JobResult cold1 = svc.wait(svc.submit(opts, b1));
  const service::JobResult cold2 = svc.wait(svc.submit(opts, b2));
  ASSERT_EQ(cold1.outcome, service::JobOutcome::kOk);
  ASSERT_EQ(cold2.outcome, service::JobOutcome::kOk);

  // Warm repeat of the b1 stream: although b2's solution is more
  // recent, the exact fingerprint match picks the b1 seed — the repeat
  // starts at its own solution and converges almost immediately.
  api::SolverOptions warm_opts = opts;
  warm_opts.warm_start = 1;
  const service::JobResult warm1 = svc.wait(svc.submit(warm_opts, b1));
  ASSERT_EQ(warm1.outcome, service::JobOutcome::kOk);
  EXPECT_TRUE(warm1.report.service.warm_started);
  EXPECT_LT(warm1.report.result.iters, cold1.report.result.iters / 4);
}

TEST(Service, ReportResilienceObjectInJson) {
  service::SolverService svc;
  api::SolverOptions opts = bounded_opts(24, 2);
  opts.faults = "gram.stage1@1:delay1";
  const service::JobResult res = svc.wait(svc.submit(opts));
  const std::string json = res.report.json();
  EXPECT_NE(json.find("\"resilience\": {"), std::string::npos);
  EXPECT_NE(json.find("\"outcome\": \"ok\""), std::string::npos);
  EXPECT_NE(json.find("\"attempts\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"guard\": {"), std::string::npos);
  EXPECT_NE(json.find("\"verdict\": \"off\""), std::string::npos);
  EXPECT_NE(json.find("\"fault_trail\": ["), std::string::npos);
  EXPECT_NE(json.find("\"site\": \"gram.stage1\""), std::string::npos);
  EXPECT_NE(json.find("\"action\": \"delay\""), std::string::npos);
}

TEST(Service, SubmitRejectsInvalidOptionsEagerly) {
  service::SolverService svc;
  try {
    svc.submit("matrix=laplace2d_5pt nx=24 warm_start=2");
    FAIL() << "warm_start=2 accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what())
                  .find("warm_start=2 out of range (expected 0 or 1)"),
              std::string::npos)
        << e.what();
  }
  EXPECT_THROW(svc.submit("matrix=no_such_matrix nx=24"),
               std::invalid_argument);
  // The queue saw nothing.
  EXPECT_TRUE(svc.drain().empty());
}

}  // namespace
