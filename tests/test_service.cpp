// The persistent solver service: keyed operator cache (hit/miss/LRU
// eviction under a byte budget), bounded-FIFO job scheduling
// determinism, bitwise equivalence of cached solves with standalone
// api::Solver runs at ranks x threads {1,2,7}^2, warm-started repeat
// solves, and the /5 report's service object.

#include "service/solver_service.hpp"

#include "api/solver.hpp"
#include "par/config.hpp"
#include "service/operator_cache.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace {

using namespace tsbo;

// Small fixed-budget s-step solve (an unreachable rtol runs the whole
// restart budget, so iteration counts and solutions are
// schedule-independent).
api::SolverOptions bounded_opts(int nx, int ranks) {
  api::SolverOptions o = api::SolverOptions::parse(
      "solver=sstep ortho=two_stage m=20 s=5 bs=20 rtol=1e-300 "
      "max_restarts=1 precond=chebyshev matrix=laplace2d_5pt");
  o.nx = nx;
  o.ranks = ranks;
  return o;
}

TEST(Service, CacheHitBitwiseIdenticalAcrossRanksThreads) {
  for (const int ranks : {1, 2, 7}) {
    for (const unsigned threads : {1u, 2u, 7u}) {
      par::set_num_threads(threads);
      const api::SolverOptions opts = bounded_opts(28, ranks);

      api::Solver standalone(opts);
      const api::SolveReport ref = standalone.solve();
      const std::vector<double> x_ref = standalone.solution();
      EXPECT_FALSE(ref.service.enabled);

      service::SolverService svc;
      const service::JobResult cold = svc.wait(svc.submit(opts));
      const service::JobResult warm = svc.wait(svc.submit(opts));

      ASSERT_TRUE(cold.error.empty()) << cold.error;
      ASSERT_TRUE(warm.error.empty()) << warm.error;
      EXPECT_FALSE(cold.report.service.cache_hit);
      EXPECT_TRUE(warm.report.service.cache_hit);
      EXPECT_TRUE(warm.report.service.reused_matrix);
      EXPECT_TRUE(warm.report.service.reused_partition);
      EXPECT_TRUE(warm.report.service.reused_precond_setup);
      EXPECT_TRUE(warm.report.service.reused_rhs);
      EXPECT_TRUE(cold.report.service.enabled);
      EXPECT_GT(cold.report.service.setup_seconds, 0.0);
      EXPECT_EQ(warm.report.service.setup_seconds, 0.0);

      // The determinism pin: service solves (cold and cached) are
      // bitwise-identical to the standalone facade run, at every rank
      // and thread count.
      EXPECT_EQ(cold.solution, x_ref)
          << "ranks=" << ranks << " threads=" << threads;
      EXPECT_EQ(warm.solution, x_ref)
          << "ranks=" << ranks << " threads=" << threads;
      EXPECT_EQ(cold.report.result.iters, ref.result.iters);
      EXPECT_EQ(warm.report.result.iters, ref.result.iters);
    }
  }
  par::set_num_threads(0);  // restore the default thread count
}

TEST(Service, OperatorCacheKeyCoversOperatorNotAlgorithm) {
  const api::SolverOptions a = bounded_opts(24, 2);
  api::SolverOptions b = a;
  b.s = 4;
  b.precond = "none";
  b.rtol = 1e-3;  // algorithm knobs: same operator
  EXPECT_EQ(service::operator_cache_key(a), service::operator_cache_key(b));
  api::SolverOptions c = a;
  c.nx = 25;  // geometry: different operator
  api::SolverOptions d = a;
  d.ranks = 3;  // partition: different operator
  EXPECT_NE(service::operator_cache_key(a), service::operator_cache_key(c));
  EXPECT_NE(service::operator_cache_key(a), service::operator_cache_key(d));
}

TEST(Service, LruEvictionUnderByteBudget) {
  // Sizes descending so the third (smallest) entry's post-solve growth
  // keeps two entries under a budget sized for the first two.
  const api::SolverOptions a = bounded_opts(32, 2);
  const api::SolverOptions b = bounded_opts(28, 2);
  const api::SolverOptions c = bounded_opts(24, 2);

  // Measure each operator's grown (post-solve) footprint.
  const auto grown_bytes = [](const api::SolverOptions& opts) {
    service::SolverService svc;
    (void)svc.wait(svc.submit(opts));
    return svc.cache().total_bytes();
  };
  const std::size_t ga = grown_bytes(a);
  const std::size_t gb = grown_bytes(b);
  const std::size_t gc = grown_bytes(c);
  ASSERT_GT(gc, 0u);
  ASSERT_LT(gc, ga);

  service::ServiceConfig cfg;
  cfg.cache_budget_bytes = ga + gb;  // two entries fit, three never do
  service::SolverService svc(cfg);
  (void)svc.wait(svc.submit(a));
  (void)svc.wait(svc.submit(b));
  EXPECT_EQ(svc.cache().size(), 2u);
  EXPECT_EQ(svc.cache_stats().evictions, 0u);

  (void)svc.wait(svc.submit(c));
  // Inserting C overflows the budget: A (least recently used) goes.
  EXPECT_EQ(svc.cache_stats().evictions, 1u);
  EXPECT_EQ(svc.cache().size(), 2u);
  EXPECT_FALSE(svc.cache().contains(service::operator_cache_key(a)));
  EXPECT_TRUE(svc.cache().contains(service::operator_cache_key(b)));
  EXPECT_TRUE(svc.cache().contains(service::operator_cache_key(c)));

  // A solves again — as a fresh miss.
  const service::JobResult again = svc.wait(svc.submit(a));
  EXPECT_FALSE(again.report.service.cache_hit);
  EXPECT_EQ(svc.cache_stats().misses, 4u);
  EXPECT_LE(svc.cache().total_bytes(), cfg.cache_budget_bytes);
}

TEST(Service, QueueFifoDispatchOrderIsSubmissionOrder) {
  par::set_num_threads(1);  // fully sequential: completion == dispatch
  std::vector<std::vector<double>> first_run;
  for (int run = 0; run < 2; ++run) {
    service::ServiceConfig cfg;
    cfg.queue_capacity = 4;  // smaller than the burst: submit blocks
    service::SolverService svc(cfg);
    std::vector<std::uint64_t> ids;
    for (const int nx : {24, 28, 24, 32, 28, 24}) {
      ids.push_back(svc.submit(bounded_opts(nx, 2)));
    }
    const std::vector<service::JobResult> results = svc.drain();
    ASSERT_EQ(results.size(), ids.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_TRUE(results[i].error.empty()) << results[i].error;
      EXPECT_EQ(results[i].id, ids[i]);  // drain: submission (id) order
      // Jobs are dispatched strictly in submission order at any lane
      // count (unit chunks off one monotone cursor).
      EXPECT_EQ(results[i].dispatch_seq, static_cast<std::uint64_t>(i));
    }
    if (run == 0) {
      for (const service::JobResult& r : results) {
        first_run.push_back(r.solution);
      }
    } else {
      for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].solution, first_run[i]) << "job " << i;
      }
    }
  }
  par::set_num_threads(0);
}

TEST(Service, WarmStartCutsIterationsOnPerturbedRhsRepeat) {
  api::SolverOptions opts = bounded_opts(32, 2);
  opts.rtol = 1e-8;
  opts.max_restarts = 1000000;

  api::Solver solver(opts);
  const std::vector<double> b = api::ones_rhs(solver.matrix());
  std::vector<double> b_perturbed = b;
  for (double& v : b_perturbed) v *= 1.0 + 1e-6;

  // Cold baseline for the perturbed system.
  api::Solver cold_solver(opts);
  cold_solver.set_rhs(b_perturbed);
  const api::SolveReport cold = cold_solver.solve();
  ASSERT_TRUE(cold.result.converged);

  service::SolverService svc;
  // Seed solve against the original RHS...
  (void)svc.wait(svc.submit(opts));
  // ...then the perturbed-RHS repeat, warm-started from its solution.
  api::SolverOptions warm_opts = opts;
  warm_opts.warm_start = 1;
  const service::JobResult warm = svc.wait(svc.submit(warm_opts, b_perturbed));
  ASSERT_TRUE(warm.error.empty()) << warm.error;
  EXPECT_TRUE(warm.report.service.warm_started);
  EXPECT_FALSE(warm.report.service.reused_rhs);
  EXPECT_TRUE(warm.report.result.converged);
  EXPECT_LT(warm.report.result.iters, cold.result.iters);

  // warm_start=0 on the same repeat stays bit-for-bit cold.
  service::SolverService svc2;
  (void)svc2.wait(svc2.submit(opts));
  const service::JobResult repeat =
      svc2.wait(svc2.submit(opts, b_perturbed));
  ASSERT_TRUE(repeat.error.empty()) << repeat.error;
  EXPECT_FALSE(repeat.report.service.warm_started);
  EXPECT_EQ(repeat.report.result.iters, cold.result.iters);
  EXPECT_EQ(repeat.solution, cold_solver.solution());
}

TEST(Service, ReportCarriesServiceObject) {
  service::SolverService svc;
  const api::SolverOptions opts = bounded_opts(24, 2);
  (void)svc.wait(svc.submit(opts));
  const service::JobResult warm = svc.wait(svc.submit(opts));
  const std::string json = warm.report.json();
  EXPECT_NE(json.find("\"schema\": \"tsbo.solve_report/5\""),
            std::string::npos);
  EXPECT_NE(json.find("\"service\": {"), std::string::npos);
  EXPECT_NE(json.find("\"cache_hit\": true"), std::string::npos);
  EXPECT_NE(json.find("\"warm_started\": false"), std::string::npos);
  EXPECT_NE(json.find("\"reused\": {"), std::string::npos);
  EXPECT_NE(json.find("\"cache_key\": \"" +
                      service::operator_cache_key(opts) + "\""),
            std::string::npos);
  // Standalone solves emit the same object shape, disabled.
  api::Solver standalone(opts);
  const std::string off = standalone.solve().json();
  EXPECT_NE(off.find("\"service\": {"), std::string::npos);
  EXPECT_NE(off.find("\"enabled\": false"), std::string::npos);
}

TEST(Service, SubmitRejectsInvalidOptionsEagerly) {
  service::SolverService svc;
  try {
    svc.submit("matrix=laplace2d_5pt nx=24 warm_start=2");
    FAIL() << "warm_start=2 accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what())
                  .find("warm_start=2 out of range (expected 0 or 1)"),
              std::string::npos)
        << e.what();
  }
  EXPECT_THROW(svc.submit("matrix=no_such_matrix nx=24"),
               std::invalid_argument);
  // The queue saw nothing.
  EXPECT_TRUE(svc.drain().empty());
}

}  // namespace
