// CSR assembly, SpMV, transpose, scaling, MatrixMarket I/O.

#include "sparse/csr.hpp"
#include "sparse/mm_io.hpp"
#include "sparse/scaling.hpp"
#include "sparse/spmv.hpp"
#include "util/random.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace {

using namespace tsbo;
using sparse::CsrMatrix;
using sparse::ord;
using sparse::Triplet;

CsrMatrix small_matrix() {
  // [ 2 -1  0 ]
  // [ 0  3  1 ]
  // [ 4  0  5 ]
  return sparse::csr_from_triplets(
      3, 3,
      {{0, 0, 2.0}, {0, 1, -1.0}, {1, 1, 3.0}, {1, 2, 1.0}, {2, 0, 4.0}, {2, 2, 5.0}});
}

TEST(Csr, FromTripletsSortsAndSumsDuplicates) {
  const auto m = sparse::csr_from_triplets(
      2, 2, {{1, 1, 1.0}, {0, 0, 2.0}, {1, 1, 3.0}, {0, 1, -1.0}});
  EXPECT_EQ(m.nnz(), 3);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 4.0);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 0.0);
  // Column indices strictly increasing within rows.
  for (ord i = 0; i < m.rows; ++i) {
    for (auto k = m.row_ptr[i] + 1; k < m.row_ptr[i + 1]; ++k) {
      EXPECT_LT(m.col_idx[static_cast<std::size_t>(k - 1)],
                m.col_idx[static_cast<std::size_t>(k)]);
    }
  }
}

TEST(Csr, EmptyRowsGetValidPointers) {
  const auto m = sparse::csr_from_triplets(4, 4, {{0, 0, 1.0}, {3, 3, 1.0}});
  EXPECT_EQ(m.row_ptr[1], 1);
  EXPECT_EQ(m.row_ptr[2], 1);
  EXPECT_EQ(m.row_ptr[3], 1);
  EXPECT_EQ(m.nnz(), 2);
}

TEST(Csr, OutOfRangeTripletThrows) {
  EXPECT_THROW(sparse::csr_from_triplets(2, 2, {{2, 0, 1.0}}),
               std::out_of_range);
}

TEST(Csr, TransposeTwiceIsIdentity) {
  const auto m = small_matrix();
  const auto tt = sparse::transpose(sparse::transpose(m));
  EXPECT_TRUE(sparse::approx_equal(m, tt, 0.0));
  const auto t = sparse::transpose(m);
  EXPECT_DOUBLE_EQ(t.at(0, 2), 4.0);
  EXPECT_DOUBLE_EQ(t.at(1, 0), -1.0);
}

TEST(Csr, ExtractRowsKeepsGlobalColumns) {
  const auto m = small_matrix();
  const auto sub = sparse::extract_rows(m, 1, 3);
  EXPECT_EQ(sub.rows, 2);
  EXPECT_EQ(sub.cols, 3);
  EXPECT_DOUBLE_EQ(sub.at(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(sub.at(1, 0), 4.0);
}

TEST(Spmv, MatchesDenseProduct) {
  const auto m = small_matrix();
  const std::vector<double> x = {1.0, 2.0, 3.0};
  std::vector<double> y(3);
  sparse::spmv(m, x, y);
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  EXPECT_DOUBLE_EQ(y[1], 9.0);
  EXPECT_DOUBLE_EQ(y[2], 19.0);
}

TEST(Spmv, AlphaBetaForm) {
  const auto m = small_matrix();
  const std::vector<double> x = {1.0, 2.0, 3.0};
  std::vector<double> y = {1.0, 1.0, 1.0};
  sparse::spmv(2.0, m, x, -1.0, y);
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[1], 17.0);
  EXPECT_DOUBLE_EQ(y[2], 37.0);
}

TEST(Spmv, RowRangeSlices) {
  const auto m = small_matrix();
  const std::vector<double> x = {1.0, 2.0, 3.0};
  std::vector<double> y(3, -7.0);
  sparse::spmv_rows(m, 1, 2, x, y);
  EXPECT_DOUBLE_EQ(y[0], -7.0);  // untouched
  EXPECT_DOUBLE_EQ(y[1], 9.0);
  EXPECT_DOUBLE_EQ(y[2], -7.0);
}

TEST(Scaling, MaxEquilibrationNormalizesRows) {
  auto m = small_matrix();
  const auto scales = sparse::equilibrate_max(m);
  // After column-then-row max scaling every row's max |entry| is 1.
  const auto rmax = sparse::row_max_abs(m);
  for (const double v : rmax) EXPECT_NEAR(v, 1.0, 1e-15);
  // All entries bounded by 1 in magnitude.
  for (const double v : m.values) EXPECT_LE(std::abs(v), 1.0 + 1e-15);
  EXPECT_EQ(scales.col_scale.size(), 3u);
  EXPECT_EQ(scales.row_scale.size(), 3u);
}

TEST(Scaling, ReconstructsOriginal) {
  auto m = small_matrix();
  const auto orig = m;
  const auto s = sparse::equilibrate_max(m);
  // A = diag(row_scale) * A_scaled * diag(col_scale)
  for (ord i = 0; i < m.rows; ++i) {
    for (auto k = m.row_ptr[i]; k < m.row_ptr[i + 1]; ++k) {
      const auto kk = static_cast<std::size_t>(k);
      const double rebuilt = m.values[kk] *
                             s.row_scale[static_cast<std::size_t>(i)] *
                             s.col_scale[static_cast<std::size_t>(m.col_idx[kk])];
      EXPECT_NEAR(rebuilt, orig.values[kk], 1e-14);
    }
  }
}

TEST(MatrixMarket, RoundTripGeneral) {
  const auto m = small_matrix();
  std::stringstream ss;
  sparse::write_matrix_market(ss, m);
  const auto back = sparse::read_matrix_market(ss);
  EXPECT_TRUE(sparse::approx_equal(m, back, 1e-15));
}

TEST(MatrixMarket, SymmetricExpansion) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate real symmetric\n"
     << "% a comment line\n"
     << "3 3 4\n"
     << "1 1 2.0\n2 1 -1.0\n3 3 5.0\n3 2 0.5\n";
  const auto m = sparse::read_matrix_market(ss);
  EXPECT_EQ(m.nnz(), 6);  // two off-diagonals mirrored
  EXPECT_DOUBLE_EQ(m.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), -1.0);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 0.5);
}

TEST(MatrixMarket, RejectsGarbage) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n";
  EXPECT_THROW(sparse::read_matrix_market(ss), std::runtime_error);
  std::stringstream empty;
  EXPECT_THROW(sparse::read_matrix_market(empty), std::runtime_error);
}

TEST(Csr, DenseRowExtraction) {
  const auto m = small_matrix();
  const auto row = sparse::dense_row(m, 2);
  EXPECT_DOUBLE_EQ(row[0], 4.0);
  EXPECT_DOUBLE_EQ(row[1], 0.0);
  EXPECT_DOUBLE_EQ(row[2], 5.0);
}

}  // namespace
