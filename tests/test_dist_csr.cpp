// Distributed CSR: partition, halo exchange, distributed SpMV.

#include "par/config.hpp"
#include "par/spmd.hpp"
#include "sparse/dist_csr.hpp"
#include "sparse/generators.hpp"
#include "sparse/spmv.hpp"
#include "sparse/suitesparse_like.hpp"
#include "util/random.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace {

using namespace tsbo;
using sparse::ord;

TEST(RowPartition, OwnersAreConsistent) {
  const sparse::RowPartition p(100, 7);
  EXPECT_EQ(p.nranks(), 7);
  ord total = 0;
  for (int r = 0; r < 7; ++r) {
    total += p.local_rows(r);
    for (ord row = p.begin(r); row < p.end(r); ++row) {
      EXPECT_EQ(p.owner(row), r);
    }
  }
  EXPECT_EQ(total, 100);
  EXPECT_EQ(p.owner(0), 0);
  EXPECT_EQ(p.owner(99), 6);
}

class DistSpmvRanks : public ::testing::TestWithParam<int> {};

TEST_P(DistSpmvRanks, MatchesSequentialOnLaplace) {
  const int p = GetParam();
  const auto a = sparse::laplace2d_9pt(23, 17);
  std::vector<double> x(static_cast<std::size_t>(a.rows));
  util::Xoshiro256 rng(5);
  util::fill_normal(rng, x);
  std::vector<double> y_ref(static_cast<std::size_t>(a.rows));
  sparse::spmv(a, x, y_ref);

  std::vector<double> y(static_cast<std::size_t>(a.rows), 0.0);
  par::spmd_run(p, [&](par::Communicator& comm) {
    const sparse::RowPartition part(a.rows, comm.size());
    const sparse::DistCsr dist(a, part, comm.rank());
    const auto begin = static_cast<std::size_t>(part.begin(comm.rank()));
    const auto nloc = static_cast<std::size_t>(dist.n_local());
    std::vector<double> y_local(nloc);
    dist.spmv(comm, std::span<const double>(x.data() + begin, nloc), y_local);
    std::copy(y_local.begin(), y_local.end(), y.begin() + static_cast<std::ptrdiff_t>(begin));
  });

  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_NEAR(y[i], y_ref[i], 1e-12) << "row " << i;
  }
}

TEST_P(DistSpmvRanks, MatchesSequentialOnWideStencil) {
  // 27-pt stencil: ghosts span whole planes; elasticity: 3 dofs/node.
  const int p = GetParam();
  for (const bool elastic : {false, true}) {
    const auto a = elastic ? sparse::elasticity3d(5, 5, 5, true, 0.3)
                           : sparse::laplace3d_27pt(6, 6, 6);
    std::vector<double> x(static_cast<std::size_t>(a.rows));
    util::Xoshiro256 rng(11);
    util::fill_normal(rng, x);
    std::vector<double> y_ref(static_cast<std::size_t>(a.rows));
    sparse::spmv(a, x, y_ref);

    std::vector<double> y(static_cast<std::size_t>(a.rows), 0.0);
    par::spmd_run(p, [&](par::Communicator& comm) {
      const sparse::RowPartition part(a.rows, comm.size());
      const sparse::DistCsr dist(a, part, comm.rank());
      const auto begin = static_cast<std::size_t>(part.begin(comm.rank()));
      const auto nloc = static_cast<std::size_t>(dist.n_local());
      std::vector<double> y_local(nloc);
      dist.spmv(comm, std::span<const double>(x.data() + begin, nloc), y_local);
      std::copy(y_local.begin(), y_local.end(),
                y.begin() + static_cast<std::ptrdiff_t>(begin));
    });
    for (std::size_t i = 0; i < y.size(); ++i) {
      EXPECT_NEAR(y[i], y_ref[i], 1e-11) << (elastic ? "elastic" : "27pt") << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, DistSpmvRanks, ::testing::Values(1, 2, 3, 4, 6));

TEST(DistCsr, GhostCountMatchesStencilOverlap) {
  // 1-D block rows of a 2-D 5-pt grid: each interior rank needs one
  // row-strip (nx values) from each side.
  const ord nx = 16, ny = 12;
  const auto a = sparse::laplace2d_5pt(nx, ny);
  par::spmd_run(4, [&](par::Communicator& comm) {
    const sparse::RowPartition part(a.rows, comm.size());
    const sparse::DistCsr dist(a, part, comm.rank());
    const int r = comm.rank();
    const ord expected = (r == 0 || r == 3) ? nx : 2 * nx;
    EXPECT_EQ(dist.n_ghost(), expected) << "rank " << r;
  });
}

TEST(DistCsr, RepeatedSpmvReusesBuffers) {
  const auto a = sparse::laplace2d_5pt(20, 20);
  par::spmd_run(3, [&](par::Communicator& comm) {
    const sparse::RowPartition part(a.rows, comm.size());
    const sparse::DistCsr dist(a, part, comm.rank());
    const auto nloc = static_cast<std::size_t>(dist.n_local());
    std::vector<double> x(nloc, 1.0), y(nloc);
    for (int rep = 0; rep < 5; ++rep) {
      dist.spmv(comm, x, y);
      // Laplacian times constant vector: zero in grid interior rows.
      // Just verify it's finite and consistent across reps.
      for (const double v : y) EXPECT_TRUE(std::isfinite(v));
    }
  });
}

TEST(DistCsr, P2pRoundsCounted) {
  const auto a = sparse::laplace2d_5pt(12, 12);
  par::spmd_run(2, [&](par::Communicator& comm) {
    const sparse::RowPartition part(a.rows, comm.size());
    const sparse::DistCsr dist(a, part, comm.rank());
    comm.reset_stats();
    const auto nloc = static_cast<std::size_t>(dist.n_local());
    std::vector<double> x(nloc, 1.0), y(nloc);
    dist.spmv(comm, x, y);
    dist.spmv(comm, x, y);
    EXPECT_EQ(comm.stats().p2p_rounds, 2u);
    EXPECT_EQ(comm.stats().allreduces, 0u);  // SpMV is reduce-free
  });
}

// ---- interior/boundary split ----------------------------------------

/// Pre-split reference apply: rebuild the gathered [own | ghosts]
/// buffer from the global data (same sorted-unique ghost ordering the
/// constructor uses) and run the UNSPLIT per-row kernel over all local
/// rows of the remapped local matrix — exactly what DistCsr::spmv did
/// before the interior/boundary refactor.
std::vector<double> presplit_apply(const sparse::CsrMatrix& global,
                                   const sparse::DistCsr& dist,
                                   std::span<const double> x_global) {
  const sparse::ord begin = dist.row_begin();
  const auto nloc = static_cast<std::size_t>(dist.n_local());
  const sparse::ord end = begin + static_cast<sparse::ord>(nloc);
  std::vector<sparse::ord> ghosts;
  for (sparse::ord i = begin; i < end; ++i) {
    for (sparse::offset k = global.row_ptr[i]; k < global.row_ptr[i + 1];
         ++k) {
      const sparse::ord c = global.col_idx[static_cast<std::size_t>(k)];
      if (c < begin || c >= end) ghosts.push_back(c);
    }
  }
  std::sort(ghosts.begin(), ghosts.end());
  ghosts.erase(std::unique(ghosts.begin(), ghosts.end()), ghosts.end());

  std::vector<double> xbuf(nloc + ghosts.size());
  std::copy_n(x_global.data() + begin, nloc, xbuf.begin());
  for (std::size_t g = 0; g < ghosts.size(); ++g) {
    xbuf[nloc + g] = x_global[static_cast<std::size_t>(ghosts[g])];
  }
  std::vector<double> y(nloc, 0.0);
  sparse::spmv_rows(dist.local_matrix(), 0, dist.n_local(), xbuf, y);
  return y;
}

class SplitParityRanks : public ::testing::TestWithParam<int> {};

TEST_P(SplitParityRanks, SplitApplyBitwiseEqualsUnsplitReference) {
  // The acceptance bar: the interior/boundary-split apply must be
  // BITWISE identical to the pre-split apply (and to the sequential
  // product: per-row accumulation order is unchanged by partitioning).
  const int p = GetParam();
  for (const unsigned threads : {1u, 2u, 7u}) {
    par::set_num_threads(threads);
    const auto a = sparse::laplace2d_9pt(23, 17);
    std::vector<double> x(static_cast<std::size_t>(a.rows));
    util::Xoshiro256 rng(29);
    util::fill_normal(rng, x);
    std::vector<double> y_seq(static_cast<std::size_t>(a.rows));
    sparse::spmv(a, x, y_seq);

    par::spmd_run(p, [&](par::Communicator& comm) {
      const sparse::RowPartition part(a.rows, comm.size());
      const sparse::DistCsr dist(a, part, comm.rank());
      const auto begin = static_cast<std::size_t>(part.begin(comm.rank()));
      const auto nloc = static_cast<std::size_t>(dist.n_local());
      const std::span<const double> x_local(x.data() + begin, nloc);

      std::vector<double> y_split(nloc, 0.0);
      dist.spmv(comm, x_local, y_split);
      const std::vector<double> y_ref = presplit_apply(a, dist, x);

      for (std::size_t i = 0; i < nloc; ++i) {
        // EXPECT_EQ on doubles: bit-for-bit (no NaNs in this product).
        EXPECT_EQ(y_split[i], y_ref[i]) << "rank " << comm.rank() << " row "
                                        << i << " threads " << threads;
        EXPECT_EQ(y_split[i], y_seq[begin + i]) << "vs sequential, row " << i;
      }
      // Split covers every local row exactly once.
      EXPECT_EQ(dist.interior_rows().size() + dist.boundary_rows().size(),
                nloc);
      EXPECT_EQ(dist.interior_matrix().nnz() + dist.boundary_matrix().nnz(),
                dist.local_matrix().nnz());
    });
  }
  par::set_num_threads(0);  // restore default resolution
}

INSTANTIATE_TEST_SUITE_P(RankCounts, SplitParityRanks,
                         ::testing::Values(1, 2, 7));

TEST(DistCsr, EmptyBoundaryPartition) {
  // Block-diagonal matrix: no rank needs ghosts, every row is interior;
  // the exchange round still runs (it is collective) but moves 0 bytes.
  const sparse::ord n = 24;
  std::vector<sparse::Triplet> t;
  for (sparse::ord i = 0; i < n; ++i) t.push_back({i, i, 2.0 + i});
  const auto a = sparse::csr_from_triplets(n, n, std::move(t));
  par::spmd_run(3, [&](par::Communicator& comm) {
    const sparse::RowPartition part(a.rows, comm.size());
    const sparse::DistCsr dist(a, part, comm.rank());
    EXPECT_EQ(dist.n_ghost(), 0);
    EXPECT_EQ(dist.boundary_rows().size(), 0u);
    EXPECT_EQ(dist.boundary_matrix().rows, 0);
    const auto nloc = static_cast<std::size_t>(dist.n_local());
    std::vector<double> x(nloc, 1.0), y(nloc, -1.0);
    comm.reset_stats();
    dist.spmv(comm, x, y);
    EXPECT_EQ(comm.stats().p2p_rounds, 1u);
    EXPECT_EQ(comm.stats().bytes_exchanged, 0u);
    const auto begin = part.begin(comm.rank());
    for (std::size_t i = 0; i < nloc; ++i) {
      EXPECT_DOUBLE_EQ(y[i], 2.0 + begin + static_cast<sparse::ord>(i));
    }
  });
}

TEST(DistCsr, EmptyInteriorPartition) {
  // Every row touches both global corners, so on 2 ranks every row of
  // both ranks holds an off-rank column: the interior block is empty.
  const sparse::ord n = 16;
  std::vector<sparse::Triplet> t;
  for (sparse::ord i = 0; i < n; ++i) {
    t.push_back({i, i, 4.0});
    t.push_back({i, 0, 1.0});
    t.push_back({i, n - 1, 1.0});
  }
  const auto a = sparse::csr_from_triplets(n, n, std::move(t));
  std::vector<double> x(static_cast<std::size_t>(n));
  util::Xoshiro256 rng(31);
  util::fill_normal(rng, x);
  std::vector<double> y_ref(static_cast<std::size_t>(n));
  sparse::spmv(a, x, y_ref);

  par::spmd_run(2, [&](par::Communicator& comm) {
    const sparse::RowPartition part(a.rows, comm.size());
    const sparse::DistCsr dist(a, part, comm.rank());
    EXPECT_EQ(dist.interior_rows().size(), 0u);
    EXPECT_EQ(dist.interior_matrix().rows, 0);
    EXPECT_EQ(dist.boundary_rows().size(),
              static_cast<std::size_t>(dist.n_local()));
    const auto begin = static_cast<std::size_t>(part.begin(comm.rank()));
    const auto nloc = static_cast<std::size_t>(dist.n_local());
    std::vector<double> y(nloc);
    dist.spmv(comm, std::span<const double>(x.data() + begin, nloc), y);
    for (std::size_t i = 0; i < nloc; ++i) {
      EXPECT_EQ(y[i], y_ref[begin + i]) << "row " << i;
    }
  });
}

TEST(DistCsr, LocalDiagonalBlockMatchesGhostFilter) {
  // local_diagonal_block() (built from the split) must equal the plain
  // every-row ghost filter the preconditioners used to perform.
  const auto a = sparse::laplace2d_5pt(14, 11);
  par::spmd_run(3, [&](par::Communicator& comm) {
    const sparse::RowPartition part(a.rows, comm.size());
    const sparse::DistCsr dist(a, part, comm.rank());
    const sparse::CsrMatrix& local = dist.local_matrix();
    const sparse::ord n = local.rows;
    std::vector<sparse::Triplet> t;
    for (sparse::ord i = 0; i < n; ++i) {
      for (sparse::offset k = local.row_ptr[i]; k < local.row_ptr[i + 1];
           ++k) {
        const sparse::ord j = local.col_idx[static_cast<std::size_t>(k)];
        if (j < n) {
          t.push_back({i, j, local.values[static_cast<std::size_t>(k)]});
        }
      }
    }
    const auto expect = sparse::csr_from_triplets(n, n, std::move(t));
    const auto got = dist.local_diagonal_block();
    ASSERT_EQ(got.rows, expect.rows);
    ASSERT_EQ(got.nnz(), expect.nnz());
    EXPECT_TRUE(std::equal(got.row_ptr.begin(), got.row_ptr.end(),
                           expect.row_ptr.begin()));
    EXPECT_TRUE(std::equal(got.col_idx.begin(), got.col_idx.end(),
                           expect.col_idx.begin()));
    EXPECT_TRUE(std::equal(got.values.begin(), got.values.end(),
                           expect.values.begin()));
  });
}

TEST(DistCsr, SurrogateMatrixDistributes) {
  const auto s = sparse::make_surrogate("atmosmodl", 3000);
  std::vector<double> x(static_cast<std::size_t>(s.matrix.rows));
  util::Xoshiro256 rng(3);
  util::fill_normal(rng, x);
  std::vector<double> y_ref(static_cast<std::size_t>(s.matrix.rows));
  sparse::spmv(s.matrix, x, y_ref);

  par::spmd_run(4, [&](par::Communicator& comm) {
    const sparse::RowPartition part(s.matrix.rows, comm.size());
    const sparse::DistCsr dist(s.matrix, part, comm.rank());
    const auto begin = static_cast<std::size_t>(part.begin(comm.rank()));
    const auto nloc = static_cast<std::size_t>(dist.n_local());
    std::vector<double> y_local(nloc);
    dist.spmv(comm, std::span<const double>(x.data() + begin, nloc), y_local);
    for (std::size_t i = 0; i < nloc; ++i) {
      EXPECT_NEAR(y_local[i], y_ref[begin + i], 1e-11);
    }
  });
}

}  // namespace
