// Distributed CSR: partition, halo exchange, distributed SpMV.

#include "par/spmd.hpp"
#include "sparse/dist_csr.hpp"
#include "sparse/generators.hpp"
#include "sparse/spmv.hpp"
#include "sparse/suitesparse_like.hpp"
#include "util/random.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace {

using namespace tsbo;
using sparse::ord;

TEST(RowPartition, OwnersAreConsistent) {
  const sparse::RowPartition p(100, 7);
  EXPECT_EQ(p.nranks(), 7);
  ord total = 0;
  for (int r = 0; r < 7; ++r) {
    total += p.local_rows(r);
    for (ord row = p.begin(r); row < p.end(r); ++row) {
      EXPECT_EQ(p.owner(row), r);
    }
  }
  EXPECT_EQ(total, 100);
  EXPECT_EQ(p.owner(0), 0);
  EXPECT_EQ(p.owner(99), 6);
}

class DistSpmvRanks : public ::testing::TestWithParam<int> {};

TEST_P(DistSpmvRanks, MatchesSequentialOnLaplace) {
  const int p = GetParam();
  const auto a = sparse::laplace2d_9pt(23, 17);
  std::vector<double> x(static_cast<std::size_t>(a.rows));
  util::Xoshiro256 rng(5);
  util::fill_normal(rng, x);
  std::vector<double> y_ref(static_cast<std::size_t>(a.rows));
  sparse::spmv(a, x, y_ref);

  std::vector<double> y(static_cast<std::size_t>(a.rows), 0.0);
  par::spmd_run(p, [&](par::Communicator& comm) {
    const sparse::RowPartition part(a.rows, comm.size());
    const sparse::DistCsr dist(a, part, comm.rank());
    const auto begin = static_cast<std::size_t>(part.begin(comm.rank()));
    const auto nloc = static_cast<std::size_t>(dist.n_local());
    std::vector<double> y_local(nloc);
    dist.spmv(comm, std::span<const double>(x.data() + begin, nloc), y_local);
    std::copy(y_local.begin(), y_local.end(), y.begin() + static_cast<std::ptrdiff_t>(begin));
  });

  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_NEAR(y[i], y_ref[i], 1e-12) << "row " << i;
  }
}

TEST_P(DistSpmvRanks, MatchesSequentialOnWideStencil) {
  // 27-pt stencil: ghosts span whole planes; elasticity: 3 dofs/node.
  const int p = GetParam();
  for (const bool elastic : {false, true}) {
    const auto a = elastic ? sparse::elasticity3d(5, 5, 5, true, 0.3)
                           : sparse::laplace3d_27pt(6, 6, 6);
    std::vector<double> x(static_cast<std::size_t>(a.rows));
    util::Xoshiro256 rng(11);
    util::fill_normal(rng, x);
    std::vector<double> y_ref(static_cast<std::size_t>(a.rows));
    sparse::spmv(a, x, y_ref);

    std::vector<double> y(static_cast<std::size_t>(a.rows), 0.0);
    par::spmd_run(p, [&](par::Communicator& comm) {
      const sparse::RowPartition part(a.rows, comm.size());
      const sparse::DistCsr dist(a, part, comm.rank());
      const auto begin = static_cast<std::size_t>(part.begin(comm.rank()));
      const auto nloc = static_cast<std::size_t>(dist.n_local());
      std::vector<double> y_local(nloc);
      dist.spmv(comm, std::span<const double>(x.data() + begin, nloc), y_local);
      std::copy(y_local.begin(), y_local.end(),
                y.begin() + static_cast<std::ptrdiff_t>(begin));
    });
    for (std::size_t i = 0; i < y.size(); ++i) {
      EXPECT_NEAR(y[i], y_ref[i], 1e-11) << (elastic ? "elastic" : "27pt") << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, DistSpmvRanks, ::testing::Values(1, 2, 3, 4, 6));

TEST(DistCsr, GhostCountMatchesStencilOverlap) {
  // 1-D block rows of a 2-D 5-pt grid: each interior rank needs one
  // row-strip (nx values) from each side.
  const ord nx = 16, ny = 12;
  const auto a = sparse::laplace2d_5pt(nx, ny);
  par::spmd_run(4, [&](par::Communicator& comm) {
    const sparse::RowPartition part(a.rows, comm.size());
    const sparse::DistCsr dist(a, part, comm.rank());
    const int r = comm.rank();
    const ord expected = (r == 0 || r == 3) ? nx : 2 * nx;
    EXPECT_EQ(dist.n_ghost(), expected) << "rank " << r;
  });
}

TEST(DistCsr, RepeatedSpmvReusesBuffers) {
  const auto a = sparse::laplace2d_5pt(20, 20);
  par::spmd_run(3, [&](par::Communicator& comm) {
    const sparse::RowPartition part(a.rows, comm.size());
    const sparse::DistCsr dist(a, part, comm.rank());
    const auto nloc = static_cast<std::size_t>(dist.n_local());
    std::vector<double> x(nloc, 1.0), y(nloc);
    for (int rep = 0; rep < 5; ++rep) {
      dist.spmv(comm, x, y);
      // Laplacian times constant vector: zero in grid interior rows.
      // Just verify it's finite and consistent across reps.
      for (const double v : y) EXPECT_TRUE(std::isfinite(v));
    }
  });
}

TEST(DistCsr, P2pRoundsCounted) {
  const auto a = sparse::laplace2d_5pt(12, 12);
  par::spmd_run(2, [&](par::Communicator& comm) {
    const sparse::RowPartition part(a.rows, comm.size());
    const sparse::DistCsr dist(a, part, comm.rank());
    comm.reset_stats();
    const auto nloc = static_cast<std::size_t>(dist.n_local());
    std::vector<double> x(nloc, 1.0), y(nloc);
    dist.spmv(comm, x, y);
    dist.spmv(comm, x, y);
    EXPECT_EQ(comm.stats().p2p_rounds, 2u);
    EXPECT_EQ(comm.stats().allreduces, 0u);  // SpMV is reduce-free
  });
}

TEST(DistCsr, SurrogateMatrixDistributes) {
  const auto s = sparse::make_surrogate("atmosmodl", 3000);
  std::vector<double> x(static_cast<std::size_t>(s.matrix.rows));
  util::Xoshiro256 rng(3);
  util::fill_normal(rng, x);
  std::vector<double> y_ref(static_cast<std::size_t>(s.matrix.rows));
  sparse::spmv(s.matrix, x, y_ref);

  par::spmd_run(4, [&](par::Communicator& comm) {
    const sparse::RowPartition part(s.matrix.rows, comm.size());
    const sparse::DistCsr dist(s.matrix, part, comm.rank());
    const auto begin = static_cast<std::size_t>(part.begin(comm.rank()));
    const auto nloc = static_cast<std::size_t>(dist.n_local());
    std::vector<double> y_local(nloc);
    dist.spmv(comm, std::span<const double>(x.data() + begin, nloc), y_local);
    for (std::size_t i = 0; i < nloc; ++i) {
      EXPECT_NEAR(y_local[i], y_ref[begin + i], 1e-11);
    }
  });
}

}  // namespace
