// Inter-block orthogonalization: BCGS, BCGS2, BCGS-PIP, BCGS-PIP2 —
// reconstruction, orthogonality bounds (paper Theorems IV.1/IV.2),
// single-reduce property of PIP, synchronization counts.

#include "dense/blas3.hpp"
#include "dense/svd.hpp"
#include "ortho/block_gs.hpp"
#include "ortho/intra.hpp"
#include "ortho/measures.hpp"
#include "par/spmd.hpp"
#include "synth/synthetic.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

namespace {

using namespace tsbo;
using dense::index_t;
using dense::Matrix;

/// Orthogonalizes panels of `v0` sequentially with `algo`, returning
/// the accumulated Q and R.
struct PanelRun {
  Matrix q;  // n x total
  Matrix r;  // total x total (block upper triangular)
};

using BlockAlgo =
    std::function<void(ortho::OrthoContext&, dense::ConstMatrixView,
                       dense::MatrixView, dense::MatrixView, dense::MatrixView)>;

PanelRun run_panels(ortho::OrthoContext& ctx, const Matrix& v0, index_t s,
                    const BlockAlgo& algo) {
  const index_t n = v0.rows(), total = v0.cols();
  PanelRun out{dense::copy_of(v0.view()), Matrix(total, total)};
  for (index_t c0 = 0; c0 < total; c0 += s) {
    auto qprev = out.q.view().columns(0, c0);
    auto panel = out.q.view().columns(c0, s);
    auto r_prev = out.r.view().block(0, c0, c0, s);
    auto r_diag = out.r.view().block(c0, c0, s, s);
    algo(ctx, qprev, panel, r_prev, r_diag);
  }
  return out;
}

const BlockAlgo kBcgs2 = [](ortho::OrthoContext& c, dense::ConstMatrixView q,
                            dense::MatrixView v, dense::MatrixView rp,
                            dense::MatrixView rd) {
  ortho::bcgs2(c, q, v, rp, rd, ortho::IntraKind::kCholQR2);
};
const BlockAlgo kBcgs2Hhqr = [](ortho::OrthoContext& c,
                                dense::ConstMatrixView q, dense::MatrixView v,
                                dense::MatrixView rp, dense::MatrixView rd) {
  ortho::bcgs2(c, q, v, rp, rd, ortho::IntraKind::kHHQR);
};
const BlockAlgo kPip = [](ortho::OrthoContext& c, dense::ConstMatrixView q,
                          dense::MatrixView v, dense::MatrixView rp,
                          dense::MatrixView rd) {
  ortho::bcgs_pip(c, q, v, rp, rd);
};
const BlockAlgo kPip2 = [](ortho::OrthoContext& c, dense::ConstMatrixView q,
                           dense::MatrixView v, dense::MatrixView rp,
                           dense::MatrixView rd) {
  ortho::bcgs_pip2(c, q, v, rp, rd);
};

struct BlockCase {
  const char* name;
  BlockAlgo algo;
  double kappa_ok;  // panel kappa for which O(eps) orthogonality holds
  int syncs_per_panel;
};

class BlockAlgos : public ::testing::TestWithParam<BlockCase> {};

TEST_P(BlockAlgos, ReconstructsQRandOrthogonality) {
  const auto& c = GetParam();
  synth::GluedSpec spec;
  spec.n = 2500;
  spec.panels = 5;
  spec.panel_cols = 5;
  spec.kappa_panel = c.kappa_ok;
  spec.growth = 1.0;
  const Matrix v0 = synth::glued(spec, 3);

  ortho::OrthoContext ctx;
  const PanelRun run = run_panels(ctx, v0, 5, c.algo);

  // Q R == V.
  Matrix qr(v0.rows(), v0.cols());
  dense::gemm_nn(1.0, run.q.view(), run.r.view(), 0.0, qr.view());
  const double scale = dense::frobenius_norm(v0.view());
  EXPECT_LT(dense::max_abs_diff(qr.view(), v0.view()), 1e-10 * scale) << c.name;

  // ||I - Q^T Q|| = O(eps) (Theorems IV.1 / IV.2).
  EXPECT_LT(dense::orthogonality_error(run.q.view()), 5e-13) << c.name;
}

TEST_P(BlockAlgos, SyncCountMatchesPaperAccounting) {
  const auto& c = GetParam();
  const index_t n = 800, s = 5;
  synth::GluedSpec spec;
  spec.n = n;
  spec.panels = 3;
  spec.panel_cols = s;
  spec.kappa_panel = 1e2;
  const Matrix v0 = synth::glued(spec, 5);

  par::spmd_run(2, [&](par::Communicator& comm) {
    const auto range = par::block_row_range(n, comm.size(), comm.rank());
    Matrix local = dense::copy_of(
        v0.view().block(static_cast<index_t>(range.begin), 0,
                        static_cast<index_t>(range.size()), v0.cols()));
    ortho::OrthoContext ctx;
    ctx.comm = &comm;

    Matrix r(v0.cols(), v0.cols());
    // Count syncs on the LAST panel (j > 1 path includes inter-block).
    for (index_t c0 = 0; c0 < v0.cols(); c0 += s) {
      auto qprev = local.view().columns(0, c0);
      auto panel = local.view().columns(c0, s);
      if (c0 == v0.cols() - s) comm.reset_stats();
      c.algo(ctx, qprev, panel, r.view().block(0, c0, c0, s),
             r.view().block(c0, c0, s, s));
    }
    EXPECT_EQ(static_cast<int>(comm.stats().allreduces +
                               comm.stats().broadcasts),
              c.syncs_per_panel)
        << c.name;
  });
}

TEST_P(BlockAlgos, DistributedMatchesSequential) {
  const auto& c = GetParam();
  const index_t n = 900, s = 3;
  synth::GluedSpec spec;
  spec.n = n;
  spec.panels = 4;
  spec.panel_cols = s;
  spec.kappa_panel = 1e3;
  const Matrix v0 = synth::glued(spec, 7);

  ortho::OrthoContext seq;
  const PanelRun ref = run_panels(seq, v0, s, c.algo);

  Matrix q_dist(n, v0.cols());
  par::spmd_run(3, [&](par::Communicator& comm) {
    const auto range = par::block_row_range(n, comm.size(), comm.rank());
    Matrix local = dense::copy_of(
        v0.view().block(static_cast<index_t>(range.begin), 0,
                        static_cast<index_t>(range.size()), v0.cols()));
    ortho::OrthoContext ctx;
    ctx.comm = &comm;
    Matrix r(v0.cols(), v0.cols());
    for (index_t c0 = 0; c0 < v0.cols(); c0 += s) {
      c.algo(ctx, local.view().columns(0, c0), local.view().columns(c0, s),
             r.view().block(0, c0, c0, s), r.view().block(c0, c0, s, s));
    }
    dense::copy(local.view(),
                q_dist.view().block(static_cast<index_t>(range.begin), 0,
                                    static_cast<index_t>(range.size()),
                                    v0.cols()));
  });
  // Local partial sums round differently than one sequential sweep, and
  // re-orthogonalization amplifies the difference by O(kappa); the
  // bases agree far beyond what the orthogonality tolerance needs.
  EXPECT_LT(dense::max_abs_diff(ref.q.view(), q_dist.view()), 1e-6) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, BlockAlgos,
    ::testing::Values(BlockCase{"bcgs2_cholqr2", kBcgs2, 1e7, 5},
                      BlockCase{"pip2", kPip2, 1e7, 2},
                      BlockCase{"pip_single", kPip, 1e2, 1}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(BcgsPip, IsCholQrForFirstBlock) {
  // Paper note: with no previous blocks BCGS-PIP == CholQR (and PIP2 ==
  // CholQR2).
  const index_t n = 1000, s = 5;
  const Matrix v0 = synth::logscaled(n, s, 1e4, 9);

  Matrix v_pip = dense::copy_of(v0.view());
  Matrix r_pip(s, s);
  ortho::OrthoContext ctx;
  Matrix empty(n, 0);
  Matrix r_prev_empty(0, s);
  ortho::bcgs_pip(ctx, empty.view().columns(0, 0), v_pip.view(),
                  r_prev_empty.view(), r_pip.view());

  Matrix v_chol = dense::copy_of(v0.view());
  Matrix r_chol(s, s);
  ortho::cholqr(ctx, v_chol.view(), r_chol.view());

  EXPECT_LT(dense::max_abs_diff(v_pip.view(), v_chol.view()), 1e-14);
  EXPECT_LT(dense::max_abs_diff(r_pip.view(), r_chol.view()), 1e-12);
}

TEST(BcgsPip, SingleReduceRegardlessOfBasisSize) {
  // The defining property (paper Fig. 4a): one all-reduce even with a
  // large accumulated Q.
  const index_t n = 1200, s = 5;
  synth::GluedSpec spec;
  spec.n = n;
  spec.panels = 8;
  spec.panel_cols = s;
  spec.kappa_panel = 10.0;
  const Matrix v0 = synth::glued(spec, 21);

  par::spmd_run(2, [&](par::Communicator& comm) {
    const auto range = par::block_row_range(n, comm.size(), comm.rank());
    Matrix local = dense::copy_of(
        v0.view().block(static_cast<index_t>(range.begin), 0,
                        static_cast<index_t>(range.size()), v0.cols()));
    ortho::OrthoContext ctx;
    ctx.comm = &comm;
    Matrix r(v0.cols(), v0.cols());
    for (index_t c0 = 0; c0 < v0.cols(); c0 += s) {
      comm.reset_stats();
      ortho::bcgs_pip(ctx, local.view().columns(0, c0),
                      local.view().columns(c0, s),
                      r.view().block(0, c0, c0, s),
                      r.view().block(c0, c0, s, s));
      EXPECT_EQ(comm.stats().allreduces, 1u) << "panel at " << c0;
    }
  });
}

TEST(BcgsPip2, FixupMakesRProductExact) {
  // After PIP2 the accumulated R must satisfy QR == V *including* the
  // re-orthogonalization corrections (exact fix-up form of Fig. 4b).
  const index_t n = 1500, s = 5;
  synth::GluedSpec spec;
  spec.n = n;
  spec.panels = 4;
  spec.panel_cols = s;
  spec.kappa_panel = 1e6;
  const Matrix v0 = synth::glued(spec, 33);

  ortho::OrthoContext ctx;
  const PanelRun run = run_panels(ctx, v0, s, kPip2);
  Matrix qr(n, v0.cols());
  dense::gemm_nn(1.0, run.q.view(), run.r.view(), 0.0, qr.view());
  EXPECT_LT(dense::max_abs_diff(qr.view(), v0.view()),
            1e-11 * dense::frobenius_norm(v0.view()));
  // R block upper triangular with positive diagonal.
  for (index_t j = 0; j < v0.cols(); ++j) {
    EXPECT_GT(run.r(j, j), 0.0);
    for (index_t i = j + 1; i < v0.cols(); ++i) EXPECT_EQ(run.r(i, j), 0.0);
  }
}

TEST(Bcgs2WithHhqr, HandlesIllConditionedPanels) {
  // The paper's stability reference: BCGS2 + HHQR keeps O(eps)
  // orthogonality even when CholQR-based variants are near their limit.
  synth::GluedSpec spec;
  spec.n = 1200;
  spec.panels = 3;
  spec.panel_cols = 5;
  spec.kappa_panel = 1e10;  // past CholQR2's reliable range
  const Matrix v0 = synth::glued(spec, 39);

  ortho::OrthoContext ctx;
  const PanelRun run = run_panels(ctx, v0, 5, kBcgs2Hhqr);
  EXPECT_LT(dense::orthogonality_error(run.q.view()), 1e-12);
}

TEST(BcgsProject, SinglePassProjectsButDoesNotNormalize) {
  const index_t n = 500;
  const Matrix q = synth::random_orthonormal(n, 6, 41);
  Matrix v = synth::logscaled(n, 3, 10.0, 43);
  Matrix r(6, 3);
  ortho::OrthoContext ctx;
  ortho::bcgs_project(ctx, q.view(), v.view(), r.view());
  // v is now orthogonal to range(q).
  Matrix c(6, 3);
  dense::gemm_tn(1.0, q.view(), v.view(), 0.0, c.view());
  EXPECT_LT(dense::frobenius_norm(c.view()), 1e-12);
}

TEST(BlockGs, PipOrthogonalityDegradesAsKappaSquaredBeforeReorth) {
  // Fig. 7 behaviour: after the FIRST BCGS-PIP pass the error is
  // kappa^2 * O(eps); the second pass brings it to O(eps).
  const index_t n = 2000, s = 5;
  for (const double kappa : {1e3, 1e5, 1e7}) {
    synth::GluedSpec spec;
    spec.n = n;
    spec.panels = 3;
    spec.panel_cols = s;
    spec.kappa_panel = kappa;
    const Matrix v0 = synth::glued(spec, 47);
    ortho::OrthoContext ctx;

    const PanelRun once = run_panels(ctx, v0, s, kPip);
    const PanelRun twice = run_panels(ctx, v0, s, kPip2);
    const double e1 = dense::orthogonality_error(once.q.view());
    const double e2 = dense::orthogonality_error(twice.q.view());
    EXPECT_LT(e2, 5e-13) << kappa;
    EXPECT_LT(e1, 1e-11 * kappa * kappa) << kappa;
    if (kappa >= 1e5) EXPECT_GT(e1, e2) << kappa;
  }
}

}  // namespace
