// Measurement helpers: distributed gather, orthogonality error,
// condition numbers.

#include "dense/svd.hpp"
#include "ortho/measures.hpp"
#include "par/spmd.hpp"
#include "synth/synthetic.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace tsbo;
using dense::index_t;
using dense::Matrix;

TEST(GatherMultivector, ReassemblesRowBlocks) {
  const index_t n = 103, s = 4;
  const Matrix v = synth::logscaled(n, s, 100.0, 3);
  for (const int p : {1, 2, 3, 5}) {
    Matrix gathered;
    par::spmd_run(p, [&](par::Communicator& comm) {
      const auto range = par::block_row_range(n, comm.size(), comm.rank());
      const auto local = v.view().block(static_cast<index_t>(range.begin), 0,
                                        static_cast<index_t>(range.size()), s);
      Matrix g = ortho::gather_multivector(&comm, local, 0);
      if (comm.rank() == 0) gathered = std::move(g);
    });
    ASSERT_EQ(gathered.rows(), n) << p;
    EXPECT_EQ(dense::max_abs_diff(gathered.view(), v.view()), 0.0) << p;
  }
}

TEST(Measures, DistributedOrthogonalityErrorMatchesSequential) {
  const index_t n = 500, s = 6;
  Matrix q = synth::random_orthonormal(n, s, 7);
  // Perturb one column to create a measurable error.
  for (index_t i = 0; i < n; ++i) q(i, 2) += 1e-5 * q(i, 3);

  ortho::OrthoContext seq;
  const double ref = ortho::orthogonality_error(seq, q.view());
  EXPECT_GT(ref, 1e-6);

  par::spmd_run(3, [&](par::Communicator& comm) {
    const auto range = par::block_row_range(n, comm.size(), comm.rank());
    const auto local = q.view().block(static_cast<index_t>(range.begin), 0,
                                      static_cast<index_t>(range.size()), s);
    ortho::OrthoContext ctx;
    ctx.comm = &comm;
    const double got = ortho::orthogonality_error(ctx, local);
    EXPECT_NEAR(got, ref, 1e-12 + 1e-8 * ref);
  });
}

TEST(Measures, DistributedConditionNumberMatchesSequential) {
  const index_t n = 800, s = 5;
  const Matrix v = synth::logscaled(n, s, 1e8, 9);
  const double ref = dense::cond_2(v.view());

  par::spmd_run(4, [&](par::Communicator& comm) {
    const auto range = par::block_row_range(n, comm.size(), comm.rank());
    const auto local = v.view().block(static_cast<index_t>(range.begin), 0,
                                      static_cast<index_t>(range.size()), s);
    ortho::OrthoContext ctx;
    ctx.comm = &comm;
    const double got = ortho::condition_number(ctx, local);
    // Every rank receives the broadcast value.
    EXPECT_NEAR(std::log10(got), std::log10(ref), 1e-6);
  });
}

}  // namespace
