// Randomized (sketched) CholQR — the paper's future-work direction.

#include "dense/blas3.hpp"
#include "dense/svd.hpp"
#include "ortho/intra.hpp"
#include "ortho/randomized.hpp"
#include "par/spmd.hpp"
#include "synth/synthetic.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace tsbo;
using dense::index_t;
using dense::Matrix;

TEST(Sketch, PreservesNormsApproximately) {
  // Sparse sign embeddings are (1 +- eps) subspace embeddings whp:
  // sketched column norms stay within a modest factor of the originals.
  const index_t n = 20000, s = 5;
  const Matrix v = synth::logscaled(n, s, 1e3, 3);
  ortho::SketchConfig cfg;
  const index_t k = cfg.rows_per_col * s;
  Matrix sk(k, s);
  ortho::apply_sketch(v.view(), 0, k, cfg, sk.view());
  for (index_t j = 0; j < s; ++j) {
    double orig = 0.0, sketched = 0.0;
    for (index_t i = 0; i < n; ++i) orig += v(i, j) * v(i, j);
    for (index_t i = 0; i < k; ++i) sketched += sk(i, j) * sk(i, j);
    const double ratio = sketched / orig;
    EXPECT_GT(ratio, 0.2) << j;
    EXPECT_LT(ratio, 5.0) << j;
  }
}

TEST(Sketch, PartitionIndependent) {
  // Sketching rank-local blocks and summing equals sketching globally:
  // the embedding is hashed from global row ids.
  const index_t n = 5000, s = 4;
  const Matrix v = synth::logscaled(n, s, 100.0, 7);
  ortho::SketchConfig cfg;
  const index_t k = cfg.rows_per_col * s;

  Matrix global(k, s);
  ortho::apply_sketch(v.view(), 0, k, cfg, global.view());

  Matrix summed(k, s);
  for (const auto range : {std::make_pair(0, 1700), std::make_pair(1700, 3400),
                           std::make_pair(3400, 5000)}) {
    const auto rows = static_cast<index_t>(range.second - range.first);
    ortho::apply_sketch(
        v.view().block(static_cast<index_t>(range.first), 0, rows, s),
        static_cast<index_t>(range.first), k, cfg, summed.view());
  }
  EXPECT_LT(dense::max_abs_diff(global.view(), summed.view()), 1e-12);
}

class RandomizedKappa : public ::testing::TestWithParam<double> {};

TEST_P(RandomizedKappa, StableFarBeyondCholQr2Range) {
  // CholQR2 requires kappa < eps^{-1/2} ~ 6.7e7; the sketched variant
  // is stable for any numerically full-rank input (like shifted
  // CholQR3, but with 2 reduces instead of 3).
  const double kappa = GetParam();
  const index_t n = 20000, s = 5;
  const Matrix v0 = synth::logscaled(n, s, kappa, 11);
  Matrix v = dense::copy_of(v0.view());
  Matrix r(s, s);
  ortho::OrthoContext ctx;
  ctx.policy = ortho::BreakdownPolicy::kThrow;
  ortho::randomized_cholqr(ctx, v.view(), r.view(), 0);

  EXPECT_LT(dense::orthogonality_error(v.view()), 1e-12) << kappa;
  // Q R == V.
  Matrix qr(n, s);
  dense::gemm_nn(1.0, v.view(), r.view(), 0.0, qr.view());
  EXPECT_LT(dense::max_abs_diff(qr.view(), v0.view()),
            1e-10 * dense::frobenius_norm(v0.view()))
      << kappa;
}

INSTANTIATE_TEST_SUITE_P(KappaSweep, RandomizedKappa,
                         ::testing::Values(1e2, 1e6, 1e9, 1e12));

TEST(Randomized, DistributedMatchesSequentialAndCostsTwoReduces) {
  const index_t n = 6000, s = 5;
  const Matrix v0 = synth::logscaled(n, s, 1e8, 13);

  Matrix v_seq = dense::copy_of(v0.view());
  Matrix r_seq(s, s);
  ortho::OrthoContext seq;
  ortho::randomized_cholqr(seq, v_seq.view(), r_seq.view(), 0);

  par::spmd_run(3, [&](par::Communicator& comm) {
    const auto range = par::block_row_range(n, comm.size(), comm.rank());
    Matrix local = dense::copy_of(
        v0.view().block(static_cast<index_t>(range.begin), 0,
                        static_cast<index_t>(range.size()), s));
    Matrix r(s, s);
    ortho::OrthoContext ctx;
    ctx.comm = &comm;
    comm.reset_stats();
    ortho::randomized_cholqr(ctx, local.view(), r.view(),
                             static_cast<index_t>(range.begin));
    EXPECT_EQ(comm.stats().allreduces, 2u);
    EXPECT_LT(dense::max_abs_diff(r.view(), r_seq.view()),
              1e-8 * dense::frobenius_norm(r_seq.view()));
    const auto seq_block =
        v_seq.view().block(static_cast<index_t>(range.begin), 0,
                           static_cast<index_t>(range.size()), s);
    EXPECT_LT(dense::max_abs_diff(local.view(), seq_block), 1e-8);
  });
}

TEST(Randomized, BeatsCholQr2WhereItBreaksDown) {
  // At kappa = 1e10, plain CholQR2 under kThrow breaks down for most
  // seeds; randomized CholQR must succeed on every one.
  const index_t n = 8000, s = 5;
  int plain_failures = 0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Matrix v0 = synth::logscaled(n, s, 1e10, seed);
    {
      Matrix v = dense::copy_of(v0.view());
      Matrix r(s, s);
      ortho::OrthoContext ctx;
      ctx.policy = ortho::BreakdownPolicy::kThrow;
      try {
        ortho::cholqr2(ctx, v.view(), r.view());
      } catch (const ortho::CholeskyBreakdown&) {
        ++plain_failures;
      }
    }
    {
      Matrix v = dense::copy_of(v0.view());
      Matrix r(s, s);
      ortho::OrthoContext ctx;
      ctx.policy = ortho::BreakdownPolicy::kThrow;
      EXPECT_NO_THROW(
          ortho::randomized_cholqr(ctx, v.view(), r.view(), 0));
      EXPECT_LT(dense::orthogonality_error(v.view()), 1e-12) << seed;
    }
  }
  EXPECT_GE(plain_failures, 1);
}

}  // namespace
