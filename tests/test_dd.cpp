// Double-double layer: EFT exactness identities, normalization
// invariants, dd Cholesky beyond the double range, the CholQR2+dd
// conditioning boundary (paper related work [26]/[27]), and
// parallel-vs-serial bitwise equality of gemm_tn_dd.

#include "ortho_kappa_sweep.hpp"

#include "api/registry.hpp"
#include "dense/blas3.hpp"
#include "dense/dd.hpp"
#include "dense/svd.hpp"
#include "ortho/intra.hpp"
#include "par/config.hpp"
#include "par/spmd.hpp"
#include "synth/synthetic.hpp"
#include "util/random.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

namespace {

using namespace tsbo;
using dense::dd;
using dense::index_t;
using dense::Matrix;

constexpr double kEps = std::numeric_limits<double>::epsilon();

Matrix random_matrix(index_t rows, index_t cols, std::uint64_t seed) {
  Matrix m(rows, cols);
  util::Xoshiro256 rng(seed);
  util::fill_normal(rng, m.data());
  return m;
}

// ---------------------------------------------------------------------------
// EFT exactness identities.
// ---------------------------------------------------------------------------

TEST(Eft, TwoSumResidualIsExactAtModerateExponentGaps) {
  // With an exponent gap <= 10 the exact sum of two doubles fits in the
  // 64-bit x87 long double mantissa, so the identity a + b == s + err
  // can be checked exactly against it.
  util::Xoshiro256 rng(1);
  for (int trial = 0; trial < 1000; ++trial) {
    const double a = rng.normal() * std::ldexp(1.0, trial % 11);
    const double b = rng.normal();
    const dd r = dense::two_sum(a, b);
    const long double exact =
        static_cast<long double>(a) + static_cast<long double>(b);
    EXPECT_EQ(static_cast<long double>(r.hi) + static_cast<long double>(r.lo),
              exact);
  }
}

TEST(Eft, TwoSumRecoversSwampedAddend) {
  // Exponent gap >> 53: the addend vanishes from the rounded sum and
  // must reappear *exactly* in the residual.
  const dd r = dense::two_sum(1e20, 3.0);
  EXPECT_EQ(r.hi, 1e20);
  EXPECT_EQ(r.lo, 3.0);
  const dd q = dense::two_sum(1.0, kEps / 4.0);
  EXPECT_EQ(q.hi, 1.0);
  EXPECT_EQ(q.lo, kEps / 4.0);
}

TEST(Eft, TwoProdMatchesDekkerSplit) {
  // The FMA residual must agree bit-for-bit with Dekker's split-based
  // error-free product (the pre-FMA reference construction).
  const auto dekker = [](double a, double b) {
    constexpr double split = 134217729.0;  // 2^27 + 1
    const double ta = split * a, tb = split * b;
    const double ahi = ta - (ta - a), bhi = tb - (tb - b);
    const double alo = a - ahi, blo = b - bhi;
    const double p = a * b;
    const double err = ((ahi * bhi - p) + ahi * blo + alo * bhi) + alo * blo;
    return dd{p, err};
  };
  util::Xoshiro256 rng(2);
  for (int trial = 0; trial < 1000; ++trial) {
    const double a = rng.normal() * std::ldexp(1.0, trial % 40);
    const double b = rng.normal();
    const dd fma = dense::two_prod(a, b);
    const dd ref = dekker(a, b);
    EXPECT_EQ(fma.hi, ref.hi);
    EXPECT_EQ(fma.lo, ref.lo);
  }
}

TEST(Eft, DdAddKeepsResultNormalized) {
  // |lo| <= ulp(hi) after every accumulate — the invariant the seed
  // implementation violated (its low word drifted unrenormalized).
  const auto ulp = [](double x) {
    const double ax = std::abs(x);
    return std::nextafter(ax, std::numeric_limits<double>::infinity()) - ax;
  };
  util::Xoshiro256 rng(3);
  dd acc;
  for (int trial = 0; trial < 5000; ++trial) {
    dense::dd_add(acc, rng.normal() * std::ldexp(1.0, trial % 60 - 30));
    if (acc.hi != 0.0) {
      EXPECT_LE(std::abs(acc.lo), ulp(acc.hi)) << "trial " << trial;
    }
  }
}

TEST(Eft, AccumulationSurvivesCatastrophicCancellation) {
  // 1e16 swamps 1e-8 in plain double (ulp(1e16) = 2), so the double sum
  // of this sequence collapses to 0; the dd accumulation must recover
  // the 1e-5 remainder to near dd precision.
  dd acc;
  double plain = 0.0;
  dense::dd_add(acc, 1e16);
  plain += 1e16;
  for (int k = 0; k < 1000; ++k) {
    dense::dd_add(acc, 1e-8);
    plain += 1e-8;
  }
  dense::dd_add(acc, -1e16);
  plain += -1e16;
  EXPECT_EQ(plain, 0.0);
  EXPECT_NEAR(dense::dd_to_double(acc), 1e-5, 1e-17);
}

TEST(Eft, MulDivSqrtRoundtrip) {
  util::Xoshiro256 rng(4);
  for (int trial = 0; trial < 200; ++trial) {
    const dd x = dense::two_sum(std::abs(rng.normal()) + 0.5,
                                rng.normal() * 1e-18);
    const dd y = dense::two_sum(std::abs(rng.normal()) + 0.5,
                                rng.normal() * 1e-18);
    // (x / y) * y == x to ~u_dd.
    const dd q = dense::dd_mul(dense::dd_div(x, y), y);
    EXPECT_NEAR(dense::dd_to_double(dense::dd_sub(q, x)), 0.0,
                1e-29 * std::abs(x.hi));
    // sqrt(x)^2 == x to ~u_dd.
    const dd s = dense::dd_sqrt(x);
    const dd sq = dense::dd_mul(s, s);
    EXPECT_NEAR(dense::dd_to_double(dense::dd_sub(sq, x)), 0.0,
                1e-29 * std::abs(x.hi));
  }
}

// ---------------------------------------------------------------------------
// dd Cholesky: succeeds where the double factorization must fail.
// ---------------------------------------------------------------------------

TEST(PotrfDd, FactorsGramBeyondTheDoubleCliff) {
  // kappa(V) = 1e10 => kappa(V^T V) = 1e20 > 1/eps: the double
  // Cholesky sees an indefinite matrix even though the Gram was
  // accumulated in dd, while the dd factorization still has ~11
  // digits of headroom (u_dd^{-1} ~ 2e31).
  const index_t n = 800, s = 5;
  const Matrix v = synth::logscaled(n, s, 1e10, 7);
  Matrix g_hi(s, s), g_lo(s, s);
  dense::gemm_tn_dd(v.view(), v.view(), g_hi.view(), g_lo.view());

  Matrix g_double(s, s);
  dense::dd_round(g_hi.view(), g_lo.view(), g_double.view());
  // The trailing pivot's exact value is sigma_min(V)^2 ~ 1e-20 ||G||,
  // four orders below the O(eps ||G||) rounding noise of the double
  // sweep — so whether the double factorization *detects* breakdown is
  // a per-build coin flip on the noise sign (the SIMD build's fused
  // contractions flip it).  The build-stable pin: if it completes, its
  // trailing pivot is noise (far above the true value the dd
  // factorization recovers below).
  Matrix g_double_copy = dense::copy_of(g_double.view());
  const bool double_ok = dense::potrf_upper(g_double_copy.view()).ok();

  ASSERT_TRUE(dense::potrf_upper_dd(g_hi.view(), g_lo.view()).ok());
  const double pivot_dd = g_hi(s - 1, s - 1);
  const double gnorm = dense::one_norm(g_double.view());
  // dd pivot is the accurate sigma_min-level value, well below the
  // double noise floor of sqrt(eps ||G||) ~ 1e-8.
  EXPECT_LT(pivot_dd * pivot_dd, 1e-2 * kEps * gnorm);
  if (double_ok) {
    const double pivot_double = g_double_copy(s - 1, s - 1);
    EXPECT_GT(pivot_double, 10.0 * pivot_dd)
        << "a completed double factorization can only carry a "
           "noise-level trailing pivot here";
  }

  // Rounded R reconstructs the Gram matrix to working precision.
  Matrix r(s, s);
  dense::dd_round(g_hi.view(), g_lo.view(), r.view());
  Matrix rtr(s, s);
  dense::gemm_tn(1.0, r.view(), r.view(), 0.0, rtr.view());
  EXPECT_LT(dense::max_abs_diff(rtr.view(), g_double.view()),
            1e-13 * dense::one_norm(g_double.view()));
}

// ---------------------------------------------------------------------------
// The CholQR2 + dd-Gram conditioning range (the paper's mixed-precision
// related work, and this repo's MixedPrecision seed test at kappa 3e9).
// ---------------------------------------------------------------------------

TEST(CholQr2Dd, KappaSweepExtendsRangePastEpsHalf) {
  // Plain CholQR2 is limited to kappa < eps^{-1/2} ~ 6.7e7; the dd
  // Gram + dd Cholesky extend the usable range to ~1e15 (u_dd^{-1/2}).
  // Sweep decades past the double cliff and require full O(eps)
  // orthogonality under the hard-failure policy.
  const index_t n = 1500, s = 5;
  for (const double kappa : {3e9, 1e11, 1e12}) {
    Matrix v = synth::logscaled(n, s, kappa, 53);
    Matrix r(s, s);
    ortho::OrthoContext ctx;
    ctx.mixed_precision_gram = true;
    ctx.policy = ortho::BreakdownPolicy::kThrow;
    ASSERT_NO_THROW(ortho::cholqr2(ctx, v.view(), r.view())) << kappa;
    EXPECT_LT(dense::orthogonality_error(v.view()), 1e-11) << kappa;
    EXPECT_EQ(ctx.cholesky_breakdowns, 0) << kappa;
  }
}

TEST(CholQr2Dd, PlainDoubleStillBreaksAtTheBoundary) {
  // The same panels that the dd path factors cleanly must break the
  // plain-double path — this pins the range boundary from both sides.
  // "Breaks" has two build-dependent manifestations past the eps^{-1/2}
  // cliff: the Cholesky detects the indefinite Gram and throws, or it
  // completes on rounding noise and the resulting Q loses
  // orthogonality wholesale (error ~ eps * kappa^2 >> 1e-6).  Which one
  // occurs flips with the build's rounding (the SIMD build contracts
  // differently), so the test accepts either — single-pass CholQR,
  // because a lucky second pass of the *2 variants can fully
  // re-orthogonalize a noise factor and mask the cliff.
  const index_t n = 1500, s = 5;
  for (const double kappa : {3e9, 1e11, 1e12}) {
    Matrix v = synth::logscaled(n, s, kappa, 53);
    Matrix r(s, s);
    ortho::OrthoContext ctx;
    ctx.policy = ortho::BreakdownPolicy::kThrow;
    bool threw = false;
    try {
      ortho::cholqr(ctx, v.view(), r.view());
    } catch (const ortho::CholeskyBreakdown&) {
      threw = true;
    }
    if (!threw) {
      EXPECT_GT(dense::orthogonality_error(v.view()), 1e-6) << kappa;
    }
  }
}

TEST(CholQr2Dd, NonFiniteGramThrowsUnderShiftPolicy) {
  // A NaN basis entry makes ||G|| NaN, which would defeat the shifted
  // retry loop's growth/bail-out arithmetic — both precision paths must
  // fail loudly instead of retrying forever.
  for (const bool dd : {false, true}) {
    Matrix v = random_matrix(200, 4, 17);
    v(7, 2) = std::numeric_limits<double>::quiet_NaN();
    Matrix r(4, 4);
    ortho::OrthoContext ctx;
    ctx.mixed_precision_gram = dd;
    ctx.policy = ortho::BreakdownPolicy::kShift;
    EXPECT_THROW(ortho::cholqr(ctx, v.view(), r.view()),
                 ortho::CholeskyBreakdown)
        << "dd=" << dd;
  }
}

// ---------------------------------------------------------------------------
// Determinism: thread sweep and distributed execution.
// ---------------------------------------------------------------------------

/// Restores the global threading config after each test, and lowers the
/// dispatch grain so modest test sizes actually cross the threshold.
class DdParKernels : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_grain_ = par::parallel_grain();
    par::set_parallel_grain(512);
  }
  void TearDown() override {
    par::set_num_threads(0);
    par::set_parallel_grain(saved_grain_);
  }

 private:
  std::size_t saved_grain_ = 0;
};

TEST_F(DdParKernels, GemmTnDdBitwiseAcrossThreadCounts) {
  // Several reduction chunks plus a remainder; thread counts cover
  // serial, even, odd, and the host's concurrency.
  const index_t m = 3 * 4096 + 517;
  const Matrix a = random_matrix(m, 7, 11);
  const Matrix b = random_matrix(m, 5, 12);

  Matrix ref_hi, ref_lo;
  const std::vector<unsigned> sweep = {
      1u, 2u, 7u, std::max(1u, std::thread::hardware_concurrency())};
  for (const unsigned t : sweep) {
    par::set_num_threads(t);
    Matrix c_hi(7, 5), c_lo(7, 5);
    dense::gemm_tn_dd(a.view(), b.view(), c_hi.view(), c_lo.view());
    if (t == 1u) {
      ref_hi = dense::copy_of(c_hi.view());
      ref_lo = dense::copy_of(c_lo.view());
      continue;
    }
    for (index_t j = 0; j < 5; ++j) {
      for (index_t i = 0; i < 7; ++i) {
        ASSERT_EQ(c_hi(i, j), ref_hi(i, j)) << t;
        ASSERT_EQ(c_lo(i, j), ref_lo(i, j)) << t;
      }
    }
  }
}

TEST_F(DdParKernels, RoundedGramIsBitwiseSymmetricAndThreadStable) {
  const Matrix a = random_matrix(4096 + 233, 6, 13);
  Matrix g1(6, 6), g2(6, 6);
  par::set_num_threads(1);
  dense::gram_dd(a.view(), g1.view());
  par::set_num_threads(7);
  dense::gram_dd(a.view(), g2.view());
  for (index_t j = 0; j < 6; ++j) {
    for (index_t i = 0; i < 6; ++i) {
      ASSERT_EQ(g1(i, j), g1(j, i));
      ASSERT_EQ(g1(i, j), g2(i, j));
    }
  }
}

// ---------------------------------------------------------------------------
// Registered-scheme kappa sweep (shared harness, tests/ortho_kappa_sweep.hpp):
// every s-step scheme's stability boundary, pinned from both sides of the
// eps^{-1/2} cliff, and the dd-Gram extension past it.
// ---------------------------------------------------------------------------

struct SweepCase {
  const char* name;  ///< ortho registry key
  bool chol_based;   ///< panel factorization is a Gram Cholesky
  bool two_pass;     ///< re-orthogonalized => O(eps) final error
};

class OrthoKappaSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(OrthoKappaSweep, CoversARegisteredSstepScheme) {
  // The sweep must track the registry: a scheme rename or removal shows
  // up here instead of silently shrinking the boundary coverage.
  const api::OrthoEntry& entry = api::ortho_registry().at(GetParam().name);
  EXPECT_TRUE(entry.sstep) << GetParam().name;
}

TEST_P(OrthoKappaSweep, BelowCliffEverySchemeHolds) {
  // kappa = 1e5 < eps^{-1/2} ~ 6.7e7: condition (1) satisfied, so no
  // scheme may break down.  Two-pass schemes deliver O(eps); the
  // one-pass PIP is bounded by its kappa^2 * eps first-sweep error.
  const auto& c = GetParam();
  const test::KappaSweepResult r = test::kappa_sweep(c.name, 1e5);
  EXPECT_FALSE(r.breakdown) << c.name;
  EXPECT_LT(r.ortho_error, c.two_pass ? 1e-12 : 1e-3) << c.name;
  if (c.chol_based) {
    // The free conditioning estimate must see the ill-conditioning at
    // the right order (diagonal ratios underestimate kappa, never by
    // more than a couple of decades on these panels).
    EXPECT_GT(r.monitor_kappa, 1e2) << c.name;
    EXPECT_LT(r.monitor_kappa, 6.7e7) << c.name;
  } else {
    // HHQR panels never square the conditioning into a Gram Cholesky;
    // at most a trivial normalization records an O(1) ratio.
    EXPECT_LT(r.monitor_kappa, 2.0) << c.name;
  }
}

TEST_P(OrthoKappaSweep, PastCliffPinsTheBoundary) {
  // kappa = 1e10 >> eps^{-1/2}: the Gram squares it past 1/eps.
  // Cholesky-based schemes must fail — either detected (throw) or
  // silently (orthogonality lost wholesale); which one is a per-build
  // coin flip on the rounding noise, so the pin is the disjunction.
  // The HHQR inner factorization has no squared Gram and must survive.
  const auto& c = GetParam();
  const test::KappaSweepResult r = test::kappa_sweep(c.name, 1e10);
  if (c.chol_based) {
    EXPECT_TRUE(r.breakdown || r.ortho_error > 1e-6)
        << c.name << " err=" << r.ortho_error;
  } else {
    EXPECT_FALSE(r.breakdown) << c.name;
    EXPECT_LT(r.ortho_error, 1e-12) << c.name;
  }
}

TEST_P(OrthoKappaSweep, DdGramExtendsTheBoundary) {
  // The same kappa = 1e10 panels with the double-double Gram: every
  // Cholesky-based scheme must now factor cleanly (u_dd^{-1/2} ~ 1e15
  // headroom), which is exactly the escalation step the stability
  // autopilot buys when it flips mixed_precision_gram on.
  const auto& c = GetParam();
  test::KappaSweepSpec spec;
  spec.dd_gram = true;
  const test::KappaSweepResult r = test::kappa_sweep(c.name, 1e10, spec);
  EXPECT_FALSE(r.breakdown) << c.name;
  EXPECT_LT(r.ortho_error, c.two_pass ? 1e-10 : 1e-3) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllSstepSchemes, OrthoKappaSweep,
    ::testing::Values(SweepCase{"bcgs2", true, true},
                      SweepCase{"bcgs2_hhqr", false, true},
                      SweepCase{"bcgs_pip", true, false},
                      SweepCase{"bcgs_pip2", true, true},
                      SweepCase{"two_stage", true, true}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(DdDistributed, CholQr2DdMatchesSequentialAndKeepsSyncCount) {
  // The fused dd all-reduce must (a) preserve CholQR2's two-reduce
  // budget and (b) reproduce the sequential factor to rounding (the
  // rank partition changes the dd association only at ~u_dd level).
  const index_t n = 1200, s = 4;
  const Matrix v0 = synth::logscaled(n, s, 1e9, 29);

  Matrix v_seq = dense::copy_of(v0.view());
  Matrix r_seq(s, s);
  ortho::OrthoContext seq_ctx;
  seq_ctx.mixed_precision_gram = true;
  ortho::cholqr2(seq_ctx, v_seq.view(), r_seq.view());

  for (const int p : {2, 3}) {
    Matrix v_dist(n, s);
    Matrix r_dist(s, s);
    par::spmd_run(p, [&](par::Communicator& comm) {
      const auto range = par::block_row_range(n, comm.size(), comm.rank());
      Matrix local = dense::copy_of(v0.view().block(
          static_cast<index_t>(range.begin), 0,
          static_cast<index_t>(range.size()), s));
      Matrix r_local(s, s);
      ortho::OrthoContext ctx;
      ctx.comm = &comm;
      ctx.mixed_precision_gram = true;
      comm.reset_stats();
      ortho::cholqr2(ctx, local.view(), r_local.view());
      EXPECT_EQ(comm.stats().allreduces, 2u);
      dense::copy(local.view(),
                  v_dist.view().block(static_cast<index_t>(range.begin), 0,
                                      static_cast<index_t>(range.size()), s));
      if (comm.rank() == 0) dense::copy(r_local.view(), r_dist.view());
    });
    EXPECT_LT(dense::max_abs_diff(r_seq.view(), r_dist.view()),
              1e-9 * dense::frobenius_norm(r_seq.view()))
        << "p=" << p;
    EXPECT_LT(dense::max_abs_diff(v_seq.view(), v_dist.view()), 1e-9)
        << "p=" << p;
  }
}

}  // namespace
