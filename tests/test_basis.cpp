// Krylov basis polynomials and the Hessenberg assembly machinery.

#include "dense/blas3.hpp"
#include "dense/householder.hpp"
#include "krylov/basis.hpp"
#include "krylov/hessenberg.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace {

using namespace tsbo;
using dense::index_t;
using dense::Matrix;
using krylov::KrylovBasis;

TEST(Basis, MonomialIsPureShift) {
  const auto b = KrylovBasis::monomial(10);
  EXPECT_EQ(b.kind(), krylov::BasisKind::kMonomial);
  EXPECT_EQ(b.steps(), 10);
  for (index_t k = 0; k < 10; ++k) {
    EXPECT_EQ(b.step(k).theta, 0.0);
    EXPECT_EQ(b.step(k).sigma, 0.0);
    EXPECT_EQ(b.step(k).gamma, 1.0);
  }
  const Matrix t = b.change_of_basis();
  EXPECT_EQ(t.rows(), 11);
  EXPECT_EQ(t.cols(), 10);
  for (index_t k = 0; k < 10; ++k) EXPECT_EQ(t(k + 1, k), 1.0);
}

TEST(Basis, NewtonShiftsLieInIntervalAndRepeatPerPanel) {
  const auto b = KrylovBasis::newton(20, 5, 1.0, 9.0);
  for (index_t k = 0; k < 20; ++k) {
    EXPECT_GE(b.step(k).theta, 1.0);
    EXPECT_LE(b.step(k).theta, 9.0);
    EXPECT_EQ(b.step(k).sigma, 0.0);
    // Shifts repeat with period s.
    EXPECT_EQ(b.step(k).theta, b.step(k % 5).theta);
  }
  // The s shifts within a panel are distinct (Chebyshev points).
  for (index_t i = 0; i < 5; ++i) {
    for (index_t j = i + 1; j < 5; ++j) {
      EXPECT_NE(b.step(i).theta, b.step(j).theta);
    }
  }
}

TEST(Basis, ChebyshevRestartsAtPanelBoundaries) {
  const auto b = KrylovBasis::chebyshev(15, 5, 0.0, 8.0);
  for (index_t k = 0; k < 15; ++k) {
    EXPECT_DOUBLE_EQ(b.step(k).theta, 4.0);  // interval midpoint
    if (k % 5 == 0) {
      EXPECT_EQ(b.step(k).sigma, 0.0);  // recurrence restart
      EXPECT_DOUBLE_EQ(b.step(k).gamma, 4.0);
    } else {
      EXPECT_DOUBLE_EQ(b.step(k).sigma, 2.0);
      EXPECT_DOUBLE_EQ(b.step(k).gamma, 2.0);
    }
  }
}

TEST(Basis, Validation) {
  EXPECT_THROW(KrylovBasis::newton(10, 3, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(KrylovBasis::chebyshev(10, 5, 1.0, 1.0), std::invalid_argument);
}

TEST(LejaOrder, StartsAtMaxMagnitudeAndPermutes) {
  const std::vector<double> pts = {0.5, -3.0, 2.0, 1.0};
  const auto ordered = krylov::leja_order(pts);
  ASSERT_EQ(ordered.size(), 4u);
  EXPECT_DOUBLE_EQ(ordered[0], -3.0);
  auto sorted_in = pts;
  auto sorted_out = ordered;
  std::sort(sorted_in.begin(), sorted_in.end());
  std::sort(sorted_out.begin(), sorted_out.end());
  EXPECT_EQ(sorted_in, sorted_out);
  // Second point maximizes distance from the first.
  EXPECT_DOUBLE_EQ(ordered[1], 2.0);
}

// ---------------------------------------------------------------------------
// Hessenberg assembly: drive it with a tiny dense "matrix" and verify
// the Arnoldi relation A X = Q H column by column.
// ---------------------------------------------------------------------------

TEST(Hessenberg, RecoversArnoldiRelationMonomial) {
  // Small dense SPD-ish matrix; build the Krylov sequence explicitly,
  // QR-factor it exactly (Householder), and feed R/L to the assembler.
  const index_t n = 30, m = 6, s = 3;
  Matrix a(n, n);
  for (index_t i = 0; i < n; ++i) {
    a(i, i) = 4.0 + 0.01 * i;
    if (i > 0) a(i, i - 1) = -1.0;
    if (i + 1 < n) a(i, i + 1) = -1.3;  // nonsymmetric
  }

  // Krylov columns with re-orthogonalized panel starts, mimicking the
  // solver: v_{k+1} = A x_k where x_k is the stored column k.
  Matrix v(n, m + 1);
  v(0, 0) = 1.0;  // e_0 seed (already unit)
  Matrix r(m + 1, m + 1), l(m + 1, m + 1);
  r(0, 0) = 1.0;
  l(0, 0) = 1.0;

  // Basis starts as the raw sequence: orthogonalize each panel with
  // exact Householder against everything before (gold-standard BlkOrth).
  for (index_t p = 0; p < m / s; ++p) {
    const index_t c0 = p * s;
    l.set_zero();  // rebuilt below; unit starts + R interior
    for (index_t k = 0; k < s; ++k) {
      // x = column c0 + k (stored, already orthogonalized for k = 0).
      for (index_t i = 0; i < n; ++i) {
        double sum = 0.0;
        for (index_t j = 0; j < n; ++j) sum += a(i, j) * v(j, c0 + k);
        v(i, c0 + k + 1) = sum;
      }
    }
    // Orthogonalize columns [c0+1, c0+s] against [0, c0] and internally
    // via Householder QR of the full prefix (exact, small n).  Only the
    // NEW columns' coefficients are recorded: the prefix is already
    // orthonormal (its R block is the identity), and overwriting the
    // earlier columns' R would lose the raw-vector representations the
    // Hessenberg assembly needs.
    auto qr = dense::householder_qr(v.view().columns(0, c0 + s + 1));
    dense::copy(qr.q.view(), v.view().columns(0, c0 + s + 1));
    for (index_t j = c0 + 1; j <= c0 + s; ++j) {
      for (index_t i = 0; i <= j; ++i) r(i, j) = qr.r(i, j);
    }
  }
  // L: unit at panel starts, R elsewhere.
  for (index_t k = 0; k < m; ++k) {
    if (k % s == 0) {
      l(k, k) = 1.0;
    } else {
      for (index_t i = 0; i <= k; ++i) l(i, k) = r(i, k);
    }
  }

  const auto basis = KrylovBasis::monomial(m);
  Matrix h(m + 1, m);
  krylov::assemble_hessenberg(r.view(), l.view(), basis, s, 0, m, h.view());

  // H satisfies the Arnoldi relation in the ORTHONORMAL basis:
  // A Q = Q_{m+1} H (the construction solves H L = Rhat, and
  // A Q L = Q Rhat exactly, with L invertible).
  for (index_t k = 0; k < m; ++k) {
    for (index_t i = 0; i < n; ++i) {
      double lhs = 0.0;
      for (index_t j = 0; j < n; ++j) lhs += a(i, j) * v(j, k);
      double rhs = 0.0;
      for (index_t j = 0; j <= k + 1; ++j) rhs += v(i, j) * h(j, k);
      ASSERT_NEAR(lhs, rhs, 1e-9) << "column " << k << " row " << i;
    }
  }
}

TEST(Hessenberg, ProgressiveAssemblyMatchesOneShot) {
  const index_t m = 8, s = 2;
  Matrix r(m + 1, m + 1), l(m + 1, m + 1);
  // Synthetic upper-triangular R/L with dominant diagonals.
  for (index_t j = 0; j <= m; ++j) {
    for (index_t i = 0; i < j; ++i) r(i, j) = 0.1 * (i + 1);
    r(j, j) = 2.0 + j;
  }
  for (index_t k = 0; k < m; ++k) {
    if (k % s == 0) {
      l(k, k) = 1.0;
    } else {
      for (index_t i = 0; i <= k; ++i) l(i, k) = r(i, k);
    }
  }
  const auto basis = KrylovBasis::monomial(m);

  Matrix h1(m + 1, m), h2(m + 1, m);
  krylov::assemble_hessenberg(r.view(), l.view(), basis, s, 0, m, h1.view());
  for (index_t c = 0; c < m; c += s) {
    krylov::assemble_hessenberg(r.view(), l.view(), basis, s, c, c + s,
                                h2.view());
  }
  EXPECT_LT(dense::max_abs_diff(h1.view(), h2.view()), 1e-13);
}

TEST(Hessenberg, ThrowsOnSingularL) {
  const index_t m = 4;
  Matrix r(m + 1, m + 1), l(m + 1, m + 1);
  for (index_t j = 0; j <= m; ++j) r(j, j) = 1.0;
  // l(0,0) left zero -> singular representation.
  const auto basis = KrylovBasis::monomial(m);
  Matrix h(m + 1, m);
  EXPECT_THROW(
      krylov::assemble_hessenberg(r.view(), l.view(), basis, 2, 0, m, h.view()),
      std::runtime_error);
}

}  // namespace
