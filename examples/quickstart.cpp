// Quickstart: solve a 2-D Laplace system with s-step GMRES using the
// two-stage block orthogonalization, and compare against standard
// GMRES.  This is the 60-second tour of the public API.
//
//   ./example_quickstart [--nx=128] [--ranks=4] [--rtol=1e-6]

#include "par/config.hpp"
#include "krylov/gmres.hpp"
#include "krylov/sstep_gmres.hpp"
#include "par/spmd.hpp"
#include "sparse/generators.hpp"
#include "sparse/spmv.hpp"
#include "util/cli.hpp"

#include <cstdio>
#include <mutex>
#include <vector>

int main(int argc, char** argv) {
  using namespace tsbo;
  util::Cli cli(argc, argv);
  par::configure_from_cli(cli);  // --threads=N / TSBO_NUM_THREADS
  const int nx = cli.get_int("nx", 128);
  const int nranks = cli.get_int("ranks", 4);
  const double rtol = cli.get_double("rtol", 1e-6);

  // 1. Build the problem: 2-D Laplacian, RHS chosen so x* = all-ones.
  const sparse::CsrMatrix a = sparse::laplace2d_5pt(nx, nx);
  std::vector<double> x_star(static_cast<std::size_t>(a.rows), 1.0);
  std::vector<double> b(static_cast<std::size_t>(a.rows), 0.0);
  sparse::spmv(a, x_star, b);

  std::printf("2-D Laplace %dx%d (n = %d, nnz = %lld), %d ranks\n\n", nx, nx,
              a.rows, static_cast<long long>(a.nnz()), nranks);

  std::mutex io;

  // 2. Run both solvers under the SPMD runtime (each rank owns a block
  //    of rows; collectives go through the Communicator).
  par::spmd_run(nranks, [&](par::Communicator& comm) {
    const sparse::RowPartition part(a.rows, comm.size());
    const sparse::DistCsr dist(a, part, comm.rank());

    const auto begin = static_cast<std::size_t>(part.begin(comm.rank()));
    const auto nloc = static_cast<std::size_t>(dist.n_local());
    std::span<const double> b_local(b.data() + begin, nloc);

    // --- standard GMRES + CGS2 ---
    std::vector<double> x(nloc, 0.0);
    krylov::GmresConfig gcfg;
    gcfg.rtol = rtol;
    krylov::SolveResult std_res =
        krylov::gmres(comm, dist, nullptr, b_local, x, gcfg);

    // --- s-step GMRES + two-stage orthogonalization ---
    std::fill(x.begin(), x.end(), 0.0);
    krylov::SStepGmresConfig scfg;
    scfg.s = 5;
    scfg.bs = scfg.m;  // bs = m: the paper's best configuration
    scfg.scheme = krylov::OrthoScheme::kTwoStage;
    scfg.rtol = rtol;
    krylov::SolveResult ts_res =
        krylov::sstep_gmres(comm, dist, nullptr, b_local, x, scfg);

    if (comm.rank() == 0) {
      std::lock_guard lock(io);
      std::printf("%-28s iters=%-7ld relres=%.2e  true=%.2e  ortho=%.3fs total=%.3fs\n",
                  "GMRES + CGS2:", std_res.iters, std_res.relres,
                  std_res.true_relres, std_res.time_ortho(),
                  std_res.time_total());
      std::printf("%-28s iters=%-7ld relres=%.2e  true=%.2e  ortho=%.3fs total=%.3fs\n",
                  "s-step + two-stage:", ts_res.iters, ts_res.relres,
                  ts_res.true_relres, ts_res.time_ortho(),
                  ts_res.time_total());
      std::printf("\nsyncs: standard=%llu  two-stage=%llu (global all-reduces)\n",
                  static_cast<unsigned long long>(std_res.comm_stats.allreduces),
                  static_cast<unsigned long long>(ts_res.comm_stats.allreduces));
    }
  });
  return 0;
}
