// Quickstart: solve a 2-D Laplace system with s-step GMRES using the
// two-stage block orthogonalization, and compare against standard
// GMRES.  This is the 60-second tour of the public API: describe each
// run as string options, hand them to the api::Solver facade, read the
// SolveReport.
//
//   ./example_quickstart [--nx=128] [--ranks=4] [--rtol=1e-6]
//                        [--json=quickstart.json]
//
// Every api::SolverOptions key ("matrix=...", "ortho=...", "s=...") is
// accepted on the command line, so this binary doubles as a generic
// solver driver:
//
//   ./example_quickstart --matrix=laplace3d_7pt --nx=24 --precond=jacobi

#include "api/solver.hpp"
#include "par/config.hpp"
#include "util/cli.hpp"

#include <cstdio>
#include <string>

int main(int argc, char** argv) {
  using namespace tsbo;
  util::Cli cli(argc, argv);
  par::configure_from_cli(cli);  // --threads=N / TSBO_NUM_THREADS

  // 1. Describe the problem.  Demo defaults: 128x128 Laplace, 4 ranks;
  //    any option key on the command line overrides them.
  api::SolverOptions base;
  base.matrix = "laplace2d_5pt";
  base.nx = 128;
  base.ranks = 4;
  base = api::SolverOptions::from_cli(cli, base);
  const std::string json_path = cli.get("json", "");
  cli.reject_unknown();

  // 2. Run standard GMRES + CGS2, then s-step GMRES + two-stage
  //    orthogonalization (defaults s=5, bs=m=60: the paper's best
  //    configuration) on the same matrix.  Only the solver kind is
  //    forced per run — user overrides like --ortho/--s/--bs stick for
  //    the run they apply to (an incompatible ortho falls back to the
  //    solver's default).  The facade builds the matrix from the
  //    options, uses the all-ones-solution RHS, and runs under SPMD.
  api::Solver std_solver(api::SolverOptions::parse("solver=gmres", base));
  const api::SolveReport std_rep = std_solver.solve();

  api::Solver ts_solver(api::SolverOptions::parse("solver=sstep", base));
  ts_solver.set_matrix_ref(std_solver.matrix(), base.matrix);
  const api::SolveReport ts_rep = ts_solver.solve();

  std::printf("%s: n = %ld, nnz = %lld, %d ranks\n\n",
              ts_rep.matrix.name.c_str(), ts_rep.matrix.rows,
              ts_rep.matrix.nnz, ts_rep.ranks);
  const auto row = [](const std::string& name, const api::SolveReport& rep) {
    std::printf(
        "%-28s iters=%-7ld relres=%.2e  true=%.2e  ortho=%.3fs total=%.3fs\n",
        name.c_str(), rep.result.iters, rep.result.relres,
        rep.result.true_relres, rep.result.time_ortho(),
        rep.result.time_total());
  };
  row("GMRES + " + std_rep.options.ortho + ":", std_rep);
  row("s-step + " + ts_rep.options.ortho + ":", ts_rep);
  std::printf("\nsyncs: standard=%llu  s-step=%llu (global all-reduces)\n",
              static_cast<unsigned long long>(
                  std_rep.result.comm_stats.allreduces),
              static_cast<unsigned long long>(
                  ts_rep.result.comm_stats.allreduces));

  // Split-phase comm accounting: exposed = modeled fabric time spun on
  // the critical path, overlapped = the share hidden behind local
  // compute (interior SpMV rows, trailing ortho panel work).
  const auto comm_row = [](const std::string& name,
                           const api::SolveReport& rep) {
    const auto& c = rep.result.comm_stats;
    std::printf("%-28s comm exposed=%.3fs overlapped=%.3fs (hidden %.0f%%)\n",
                name.c_str(), c.injected_seconds, c.overlapped_seconds,
                c.injected_seconds + c.overlapped_seconds > 0.0
                    ? 100.0 * c.overlapped_seconds /
                          (c.injected_seconds + c.overlapped_seconds)
                    : 0.0);
  };
  comm_row("GMRES + " + std_rep.options.ortho + ":", std_rep);
  comm_row("s-step + " + ts_rep.options.ortho + ":", ts_rep);

  // 3. Optionally dump both reports as one machine-readable artifact.
  api::ReportLog log("quickstart");
  log.add(std_rep);
  log.add(ts_rep);
  if (log.save(json_path)) std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
