// 3-D Poisson solve with preconditioner comparison: none / Jacobi /
// multicolor Gauss-Seidel / Chebyshev, all under s-step GMRES with the
// two-stage orthogonalization.  Demonstrates the preconditioner
// registry and the paper's point that local (communication-free)
// preconditioners compose with s-step methods without extra
// synchronization.
//
//   ./example_poisson3d [--n=32] [--ranks=4] [--rtol=1e-8]

#include "api/solver.hpp"
#include "par/config.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

#include <cmath>
#include <cstdio>

int main(int argc, char** argv) {
  using namespace tsbo;
  util::Cli cli(argc, argv);
  par::configure_from_cli(cli);  // --threads=N / TSBO_NUM_THREADS
  const int side = cli.get_int("n", 32);

  api::SolverOptions base = api::SolverOptions::parse(
      "solver=sstep ortho=two_stage matrix=laplace3d_7pt rtol=1e-8");
  base.nx = side;
  base.ranks = cli.get_int("ranks", 4);
  base.rtol = cli.get_double("rtol", base.rtol);
  cli.reject_unknown();

  // Share one matrix (and RHS) across the preconditioner sweep.
  const sparse::CsrMatrix a = api::make_matrix(base);
  const std::vector<double> b = api::ones_rhs(a);

  std::printf(
      "3-D Poisson %d^3 (n = %d), s-step GMRES + two-stage, %d ranks\n\n",
      side, a.rows, base.ranks);

  util::Table table({"preconditioner", "iters", "restarts", "true relres",
                     "allreduces", "time s", "comm exp s", "comm ovl s"});

  for (const std::string kind : {"none", "jacobi", "mc-gs", "chebyshev"}) {
    api::SolverOptions opts = base;
    opts.precond = kind;
    if (kind == "mc-gs") {
      opts.precond_sweeps = 2;
    } else if (kind == "chebyshev") {
      // The 7-pt Laplacian spectrum is known analytically; give the
      // polynomial the exact interval (of D^{-1}A) rather than the
      // power-method estimate — Chebyshev is very sensitive to
      // interval coverage at the low end.
      const double c = std::cos(M_PI / (side + 1));
      opts.precond_degree = 4;
      opts.precond_lambda_min = 1.0 - c;
      opts.precond_lambda_max = 1.0 + c;
    }
    api::Solver solver(opts);
    solver.set_matrix_ref(a, base.matrix);
    solver.set_rhs(b);
    const api::SolveReport rep = solver.solve();
    table.row()
        .add(kind)
        .add(rep.result.iters)
        .add(rep.result.restarts)
        .add(util::sci(rep.result.true_relres))
        .add(static_cast<long>(rep.result.comm_stats.allreduces))
        .add(rep.result.time_total(), 3)
        .add(rep.result.comm_stats.injected_seconds, 3)
        .add(rep.result.comm_stats.overlapped_seconds, 3);
  }
  table.print();
  std::printf(
      "\nAll preconditioners are rank-local (block Jacobi style): note the\n"
      "all-reduce counts shrink with the iteration count, never grow with\n"
      "preconditioner complexity.  'comm exp/ovl' split the modeled fabric\n"
      "time into the exposed share and the share the split-phase runtime\n"
      "hid behind interior SpMV rows and trailing ortho work.\n");
  return 0;
}
