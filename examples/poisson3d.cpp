// 3-D Poisson solve with preconditioner comparison: none / Jacobi /
// multicolor Gauss-Seidel / Chebyshev, all under s-step GMRES with the
// two-stage orthogonalization.  Demonstrates the preconditioner API
// and the paper's point that local (communication-free) preconditioners
// compose with s-step methods without extra synchronization.
//
//   ./example_poisson3d [--n=32] [--ranks=4] [--rtol=1e-8]

#include "par/config.hpp"
#include "krylov/sstep_gmres.hpp"
#include "par/spmd.hpp"
#include "precond/chebyshev.hpp"
#include "precond/gauss_seidel.hpp"
#include "precond/jacobi.hpp"
#include "sparse/generators.hpp"
#include "sparse/spmv.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

#include <cmath>
#include <cstdio>
#include <memory>
#include <mutex>

int main(int argc, char** argv) {
  using namespace tsbo;
  util::Cli cli(argc, argv);
  par::configure_from_cli(cli);  // --threads=N / TSBO_NUM_THREADS
  const int side = cli.get_int("n", 32);
  const int nranks = cli.get_int("ranks", 4);
  const double rtol = cli.get_double("rtol", 1e-8);

  const sparse::CsrMatrix a = sparse::laplace3d_7pt(side, side, side);
  std::vector<double> x_star(static_cast<std::size_t>(a.rows), 1.0);
  std::vector<double> b(static_cast<std::size_t>(a.rows), 0.0);
  sparse::spmv(a, x_star, b);

  std::printf("3-D Poisson %d^3 (n = %d), s-step GMRES + two-stage, %d ranks\n\n",
              side, a.rows, nranks);

  util::Table table({"preconditioner", "iters", "restarts", "true relres",
                     "allreduces", "time s"});
  std::mutex io;

  for (const std::string kind : {"none", "jacobi", "mc-gs", "chebyshev"}) {
    par::spmd_run(nranks, [&](par::Communicator& comm) {
      const sparse::RowPartition part(a.rows, comm.size());
      const sparse::DistCsr dist(a, part, comm.rank());
      const auto begin = static_cast<std::size_t>(part.begin(comm.rank()));
      const auto nloc = static_cast<std::size_t>(dist.n_local());

      std::unique_ptr<precond::Preconditioner> m;
      if (kind == "jacobi") {
        m = std::make_unique<precond::Jacobi>(dist);
      } else if (kind == "mc-gs") {
        m = std::make_unique<precond::MulticolorGaussSeidel>(dist, 2);
      } else if (kind == "chebyshev") {
        // The 7-pt Laplacian spectrum is known analytically; give the
        // polynomial the exact interval (of D^{-1}A) rather than the
        // power-method estimate — Chebyshev is very sensitive to
        // interval coverage at the low end.
        const double c = std::cos(M_PI / (side + 1));
        m = std::make_unique<precond::ChebyshevPolynomial>(
            dist, 4, (1.0 - c), (1.0 + c));
      }

      std::vector<double> x(nloc, 0.0);
      krylov::SStepGmresConfig cfg;
      cfg.scheme = krylov::OrthoScheme::kTwoStage;
      cfg.rtol = rtol;
      const auto res = krylov::sstep_gmres(
          comm, dist, m.get(),
          std::span<const double>(b.data() + begin, nloc), x, cfg);

      if (comm.rank() == 0) {
        std::lock_guard lock(io);
        table.row()
            .add(kind)
            .add(res.iters)
            .add(res.restarts)
            .add(util::sci(res.true_relres))
            .add(static_cast<long>(res.comm_stats.allreduces))
            .add(res.time_total(), 3);
      }
    });
  }
  table.print();
  std::printf(
      "\nAll preconditioners are rank-local (block Jacobi style): note the\n"
      "all-reduce counts shrink with the iteration count, never grow with\n"
      "preconditioner complexity.\n");
  return 0;
}
