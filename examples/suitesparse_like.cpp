// Solves the SuiteSparse surrogate matrices (or a user-supplied
// MatrixMarket file) with all four solver configurations, applying the
// paper's column-then-row max-scaling first — the Table IV workflow as
// a runnable example of the matrix registry ("ecology2", "thermal2",
// ..., or "file" + matrix_file).
//
//   ./example_suitesparse_like [--matrix=ecology2] [--n=40000] [--ranks=4]
//   ./example_suitesparse_like --file=/path/to/real_matrix.mtx

#include "api/solver.hpp"
#include "par/config.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

#include <cstdio>

int main(int argc, char** argv) {
  using namespace tsbo;
  util::Cli cli(argc, argv);
  par::configure_from_cli(cli);  // --threads=N / TSBO_NUM_THREADS

  api::SolverOptions base = api::SolverOptions::parse(
      // The paper's Section VI equilibration (makes the matrix
      // nonsymmetric) and its convergence setup.
      "matrix=ecology2 equilibrate=1 rtol=1e-6 max_iters=60000");
  base.n = 40000;
  base.ranks = 4;
  base = api::SolverOptions::from_cli(cli, base);
  if (cli.has("file")) {  // convenience alias for matrix=file
    base.matrix = "file";
    base.matrix_file = cli.get("file", "");
  }
  cli.reject_unknown();

  std::string label;
  const sparse::CsrMatrix a = api::make_matrix(base, &label);
  const std::vector<double> b = api::ones_rhs(a);

  std::printf("%s: n = %d, nnz/row = %.1f, max-scaled, %d ranks\n\n",
              label.c_str(), a.rows, a.nnz_per_row(), base.ranks);

  util::Table table(
      {"solver", "iters", "converged", "true relres", "allreduces"});

  struct Config {
    const char* name;
    const char* spec;
  };
  const Config configs[] = {
      {"standard GMRES", "solver=gmres ortho=cgs2"},
      {"s-step BCGS2", "solver=sstep ortho=bcgs2"},
      {"s-step BCGS-PIP2", "solver=sstep ortho=bcgs_pip2"},
      {"s-step two-stage", "solver=sstep ortho=two_stage"},
  };

  for (const Config& config : configs) {
    api::Solver solver(api::SolverOptions::parse(config.spec, base));
    solver.set_matrix_ref(a, label);
    solver.set_rhs(b);
    const api::SolveReport rep = solver.solve();
    table.row()
        .add(config.name)
        .add(rep.result.iters)
        .add(rep.result.converged ? "yes" : "no")
        .add(util::sci(rep.result.true_relres))
        .add(static_cast<long>(rep.result.comm_stats.allreduces));
  }
  table.print();
  std::printf(
      "\nIteration counts differ only by the convergence-check granularity\n"
      "(every step / every s steps / every bs steps) — the paper's Table\n"
      "III rounding. All-reduce counts show the communication savings.\n");
  return 0;
}
