// Solves the SuiteSparse surrogate matrices (or a user-supplied
// MatrixMarket file) with all four solver configurations, applying the
// paper's column-then-row max-scaling first — the Table IV workflow as
// a runnable example.
//
//   ./example_suitesparse_like [--matrix=ecology2] [--n=40000] [--ranks=4]
//   ./example_suitesparse_like --file=/path/to/real_matrix.mtx

#include "par/config.hpp"
#include "krylov/gmres.hpp"
#include "krylov/sstep_gmres.hpp"
#include "par/spmd.hpp"
#include "sparse/mm_io.hpp"
#include "sparse/scaling.hpp"
#include "sparse/spmv.hpp"
#include "sparse/suitesparse_like.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

#include <cstdio>
#include <mutex>

int main(int argc, char** argv) {
  using namespace tsbo;
  util::Cli cli(argc, argv);
  par::configure_from_cli(cli);  // --threads=N / TSBO_NUM_THREADS
  const int nranks = cli.get_int("ranks", 4);

  sparse::CsrMatrix a;
  std::string label;
  if (cli.has("file")) {
    label = cli.get("file", "");
    a = sparse::read_matrix_market_file(label);
  } else {
    label = cli.get("matrix", "ecology2");
    a = sparse::make_surrogate(label, static_cast<sparse::ord>(
                                          cli.get_int("n", 40000)))
            .matrix;
  }
  // The paper's Section VI equilibration (makes the matrix nonsymmetric).
  sparse::equilibrate_max(a);

  std::vector<double> x_star(static_cast<std::size_t>(a.rows), 1.0);
  std::vector<double> b(static_cast<std::size_t>(a.rows), 0.0);
  sparse::spmv(a, x_star, b);

  std::printf("%s: n = %d, nnz/row = %.1f, max-scaled, %d ranks\n\n",
              label.c_str(), a.rows, a.nnz_per_row(), nranks);

  util::Table table(
      {"solver", "iters", "converged", "true relres", "allreduces"});
  std::mutex io;

  struct Config {
    const char* name;
    int scheme;  // -1: standard GMRES
  };
  const Config configs[] = {
      {"standard GMRES", -1},
      {"s-step BCGS2", static_cast<int>(krylov::OrthoScheme::kBcgs2CholQr2)},
      {"s-step BCGS-PIP2", static_cast<int>(krylov::OrthoScheme::kBcgsPip2)},
      {"s-step two-stage", static_cast<int>(krylov::OrthoScheme::kTwoStage)},
  };

  for (const Config& config : configs) {
    par::spmd_run(nranks, [&](par::Communicator& comm) {
      const sparse::RowPartition part(a.rows, comm.size());
      const sparse::DistCsr dist(a, part, comm.rank());
      const auto begin = static_cast<std::size_t>(part.begin(comm.rank()));
      const auto nloc = static_cast<std::size_t>(dist.n_local());
      std::vector<double> x(nloc, 0.0);
      std::span<const double> b_local(b.data() + begin, nloc);

      krylov::SolveResult res;
      if (config.scheme < 0) {
        krylov::GmresConfig cfg;
        cfg.rtol = 1e-6;
        cfg.max_iters = 60000;
        res = krylov::gmres(comm, dist, nullptr, b_local, x, cfg);
      } else {
        krylov::SStepGmresConfig cfg;
        cfg.scheme = static_cast<krylov::OrthoScheme>(config.scheme);
        cfg.rtol = 1e-6;
        cfg.max_iters = 60000;
        res = krylov::sstep_gmres(comm, dist, nullptr, b_local, x, cfg);
      }
      if (comm.rank() == 0) {
        std::lock_guard lock(io);
        table.row()
            .add(config.name)
            .add(res.iters)
            .add(res.converged ? "yes" : "no")
            .add(util::sci(res.true_relres))
            .add(static_cast<long>(res.comm_stats.allreduces));
      }
    });
  }
  table.print();
  std::printf(
      "\nIteration counts differ only by the convergence-check granularity\n"
      "(every step / every s steps / every bs steps) — the paper's Table\n"
      "III rounding. All-reduce counts show the communication savings.\n");
  return 0;
}
