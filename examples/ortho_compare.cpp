// Compares every block-orthogonalization scheme in the library on
// synthetic matrices of controlled conditioning: the numerical story of
// the paper (Sections IV-VI) in one runnable program.
//
//   ./example_ortho_compare [--n=20000] [--panels=6] [--s=5] [--kappa=1e7]

#include "par/config.hpp"
#include "dense/svd.hpp"
#include "ortho/block_gs.hpp"
#include "ortho/intra.hpp"
#include "ortho/manager.hpp"
#include "synth/synthetic.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

#include <cstdio>
#include <functional>

int main(int argc, char** argv) {
  using namespace tsbo;
  using dense::index_t;
  using dense::Matrix;

  util::Cli cli(argc, argv);
  par::configure_from_cli(cli);  // --threads=N / TSBO_NUM_THREADS
  const auto n = static_cast<index_t>(cli.get_int("n", 20000));
  const int panels = cli.get_int("panels", 6);
  const auto s = static_cast<index_t>(cli.get_int("s", 5));
  const double kappa = cli.get_double("kappa", 1e7);
  cli.reject_unknown();

  synth::GluedSpec spec;
  spec.n = n;
  spec.panels = panels;
  spec.panel_cols = s;
  spec.kappa_panel = kappa;
  const Matrix v0 = synth::glued(spec, 42);

  std::printf(
      "Block orthogonalization on a glued %d x %d matrix "
      "(%d panels of %d, panel kappa = %.0e)\n\n",
      n, panels * s, panels, s, kappa);

  using Algo = std::function<void(ortho::OrthoContext&, dense::ConstMatrixView,
                                  dense::MatrixView, dense::MatrixView,
                                  dense::MatrixView)>;
  struct Row {
    const char* name;
    Algo algo;
    const char* syncs;
  };
  const Row rows[] = {
      {"BCGS (single pass)",
       [](ortho::OrthoContext& c, dense::ConstMatrixView q, dense::MatrixView v,
          dense::MatrixView rp, dense::MatrixView rd) {
         ortho::bcgs_project(c, q, v, rp);
         ortho::cholqr(c, v, rd);
       },
       "2"},
      {"BCGS2 + CholQR2",
       [](ortho::OrthoContext& c, dense::ConstMatrixView q, dense::MatrixView v,
          dense::MatrixView rp, dense::MatrixView rd) {
         ortho::bcgs2(c, q, v, rp, rd, ortho::IntraKind::kCholQR2);
       },
       "5"},
      {"BCGS2 + HHQR",
       [](ortho::OrthoContext& c, dense::ConstMatrixView q, dense::MatrixView v,
          dense::MatrixView rp, dense::MatrixView rd) {
         ortho::bcgs2(c, q, v, rp, rd, ortho::IntraKind::kHHQR);
       },
       "O(s)"},
      {"BCGS-PIP",
       [](ortho::OrthoContext& c, dense::ConstMatrixView q, dense::MatrixView v,
          dense::MatrixView rp, dense::MatrixView rd) {
         ortho::bcgs_pip(c, q, v, rp, rd);
       },
       "1"},
      {"BCGS-PIP2",
       [](ortho::OrthoContext& c, dense::ConstMatrixView q, dense::MatrixView v,
          dense::MatrixView rp, dense::MatrixView rd) {
         ortho::bcgs_pip2(c, q, v, rp, rd);
       },
       "2"},
  };

  util::Table table(
      {"scheme", "syncs/panel", "||I - QtQ||", "kappa(Q)", "time ms"});
  for (const Row& row : rows) {
    Matrix q = dense::copy_of(v0.view());
    Matrix r(v0.cols(), v0.cols());
    ortho::OrthoContext ctx;
    ctx.policy = ortho::BreakdownPolicy::kShift;
    util::WallTimer timer;
    for (index_t c0 = 0; c0 < v0.cols(); c0 += s) {
      row.algo(ctx, q.view().columns(0, c0), q.view().columns(c0, s),
               r.view().block(0, c0, c0, s), r.view().block(c0, c0, s, s));
    }
    const double ms = 1e3 * timer.seconds();
    table.row()
        .add(row.name)
        .add(row.syncs)
        .add(util::sci(dense::orthogonality_error(q.view())))
        .add(util::sci(dense::cond_2(q.view())))
        .add(ms, 2);
  }
  table.print();

  std::printf(
      "\nNote how the single-reduce schemes (PIP) match the accuracy of\n"
      "the 5-reduce BCGS2+CholQR2 once re-orthogonalized (PIP2) — the\n"
      "observation that motivates the paper's two-stage scheme.\n");
  return 0;
}
