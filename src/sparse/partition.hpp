#pragma once
// 1-D block row partitioning (paper Section VII: matrices and vectors
// are distributed among MPI processes in 1-D block row format).

#include "par/spmd.hpp"
#include "sparse/csr.hpp"

#include <vector>

namespace tsbo::sparse {

/// Row partition of n rows over p ranks: contiguous blocks, remainder
/// to the lowest ranks (Tpetra default).
class RowPartition {
 public:
  RowPartition(ord n, int nranks);

  [[nodiscard]] ord n() const { return n_; }
  [[nodiscard]] int nranks() const { return static_cast<int>(begin_.size()) - 1; }
  [[nodiscard]] ord begin(int rank) const { return begin_[static_cast<std::size_t>(rank)]; }
  [[nodiscard]] ord end(int rank) const { return begin_[static_cast<std::size_t>(rank) + 1]; }
  [[nodiscard]] ord local_rows(int rank) const { return end(rank) - begin(rank); }

  /// Owning rank of a global row (binary search).
  [[nodiscard]] int owner(ord row) const;

 private:
  ord n_;
  std::vector<ord> begin_;  // size nranks + 1
};

}  // namespace tsbo::sparse
