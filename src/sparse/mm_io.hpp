#pragma once
// MatrixMarket coordinate I/O.
//
// Lets users drop in the real SuiteSparse matrices (the paper's
// evaluation set) in place of the built-in surrogates.  Supports
// `matrix coordinate real {general|symmetric}`.

#include "sparse/csr.hpp"

#include <iosfwd>
#include <string>

namespace tsbo::sparse {

/// Parses a MatrixMarket stream.  Symmetric files are expanded to full
/// storage.  Throws std::runtime_error on malformed input.
CsrMatrix read_matrix_market(std::istream& in);

/// Reads a .mtx file from disk.
CsrMatrix read_matrix_market_file(const std::string& path);

/// Writes general coordinate format.
void write_matrix_market(std::ostream& out, const CsrMatrix& a);
void write_matrix_market_file(const std::string& path, const CsrMatrix& a);

}  // namespace tsbo::sparse
