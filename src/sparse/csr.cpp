#include "sparse/csr.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace tsbo::sparse {

std::uint64_t CsrMatrix::checksum() const {
  // FNV-1a, folding the raw bit patterns (not numeric values): a
  // flipped exponent bit changes the sum even where the numeric
  // difference would cancel, and -0.0 vs 0.0 are distinct.
  constexpr std::uint64_t kOffset = 1469598103934665603ull;
  constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t h = kOffset;
  const auto fold = [&h](const void* data, std::size_t bytes) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < bytes; ++i) {
      h ^= p[i];
      h *= kPrime;
    }
  };
  fold(&rows, sizeof(rows));
  fold(&cols, sizeof(cols));
  fold(row_ptr.data(), row_ptr.size() * sizeof(offset));
  fold(col_idx.data(), col_idx.size() * sizeof(ord));
  fold(values.data(), values.size() * sizeof(double));
  return h;
}

double CsrMatrix::at(ord i, ord j) const {
  assert(i >= 0 && i < rows);
  const auto b = col_idx.begin() + row_ptr[i];
  const auto e = col_idx.begin() + row_ptr[i + 1];
  const auto it = std::lower_bound(b, e, j);
  if (it == e || *it != j) return 0.0;
  return values[static_cast<std::size_t>(it - col_idx.begin())];
}

CsrMatrix csr_from_triplets(ord rows, ord cols,
                            std::vector<Triplet> triplets) {
  for (const Triplet& t : triplets) {
    if (t.row < 0 || t.row >= rows || t.col < 0 || t.col >= cols) {
      throw std::out_of_range("csr_from_triplets: triplet out of range");
    }
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  CsrMatrix m;
  m.rows = rows;
  m.cols = cols;
  m.row_ptr.assign(static_cast<std::size_t>(rows) + 1, 0);
  m.col_idx.reserve(triplets.size());
  m.values.reserve(triplets.size());

  std::size_t i = 0;
  while (i < triplets.size()) {
    const ord r = triplets[i].row;
    const ord c = triplets[i].col;
    double v = 0.0;
    while (i < triplets.size() && triplets[i].row == r && triplets[i].col == c) {
      v += triplets[i].value;
      ++i;
    }
    m.col_idx.push_back(c);
    m.values.push_back(v);
    m.row_ptr[static_cast<std::size_t>(r) + 1] =
        static_cast<offset>(m.col_idx.size());
  }
  // Fill gaps for empty rows.
  for (std::size_t r = 1; r <= static_cast<std::size_t>(rows); ++r) {
    m.row_ptr[r] = std::max(m.row_ptr[r], m.row_ptr[r - 1]);
  }
  return m;
}

CsrMatrix transpose(const CsrMatrix& a) {
  CsrMatrix t;
  t.rows = a.cols;
  t.cols = a.rows;
  t.row_ptr.assign(static_cast<std::size_t>(a.cols) + 1, 0);
  t.col_idx.resize(static_cast<std::size_t>(a.nnz()));
  t.values.resize(static_cast<std::size_t>(a.nnz()));

  for (offset k = 0; k < a.nnz(); ++k) {
    t.row_ptr[static_cast<std::size_t>(a.col_idx[static_cast<std::size_t>(k)]) + 1] += 1;
  }
  for (std::size_t r = 1; r <= static_cast<std::size_t>(a.cols); ++r) {
    t.row_ptr[r] += t.row_ptr[r - 1];
  }
  std::vector<offset> next(t.row_ptr.begin(), t.row_ptr.end() - 1);
  for (ord i = 0; i < a.rows; ++i) {
    for (offset k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      const ord j = a.col_idx[static_cast<std::size_t>(k)];
      const offset pos = next[static_cast<std::size_t>(j)]++;
      t.col_idx[static_cast<std::size_t>(pos)] = i;
      t.values[static_cast<std::size_t>(pos)] = a.values[static_cast<std::size_t>(k)];
    }
  }
  return t;
}

bool approx_equal(const CsrMatrix& a, const CsrMatrix& b, double tol) {
  if (a.rows != b.rows || a.cols != b.cols) return false;
  if (a.row_ptr != b.row_ptr || a.col_idx != b.col_idx) return false;
  for (std::size_t k = 0; k < a.values.size(); ++k) {
    if (std::abs(a.values[k] - b.values[k]) > tol) return false;
  }
  return true;
}

CsrMatrix extract_rows(const CsrMatrix& a, ord begin, ord end) {
  assert(begin >= 0 && begin <= end && end <= a.rows);
  CsrMatrix m;
  m.rows = end - begin;
  m.cols = a.cols;
  m.row_ptr.assign(static_cast<std::size_t>(m.rows) + 1, 0);
  const offset k0 = a.row_ptr[begin];
  const offset k1 = a.row_ptr[end];
  m.col_idx.assign(a.col_idx.begin() + k0, a.col_idx.begin() + k1);
  m.values.assign(a.values.begin() + k0, a.values.begin() + k1);
  for (ord i = 0; i < m.rows; ++i) {
    m.row_ptr[static_cast<std::size_t>(i) + 1] = a.row_ptr[begin + i + 1] - k0;
  }
  return m;
}

std::vector<double> dense_row(const CsrMatrix& a, ord i) {
  std::vector<double> out(static_cast<std::size_t>(a.cols), 0.0);
  for (offset k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
    out[static_cast<std::size_t>(a.col_idx[static_cast<std::size_t>(k)])] =
        a.values[static_cast<std::size_t>(k)];
  }
  return out;
}

}  // namespace tsbo::sparse
