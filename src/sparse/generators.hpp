#pragma once
// Structured sparse matrix generators.
//
// These produce the paper's model problems (2-D/3-D Laplace on 5/9/7/27
// point stencils, 3-D elasticity) and the parameterized stencils that
// back the SuiteSparse surrogates (convection-diffusion, heterogeneous
// coefficients, anisotropy, diagonal spread).  All generators are
// deterministic: random coefficient fields are hashed from node ids, so
// repeated calls (and calls from different ranks) agree exactly.

#include "sparse/csr.hpp"

namespace tsbo::sparse {

/// 2-D Laplace, 5-point stencil (4 on diagonal, -1 on N/S/E/W),
/// Dirichlet boundaries.  n = nx * ny.  Paper Table II workload.
CsrMatrix laplace2d_5pt(ord nx, ord ny);

/// 2-D Laplace, 9-point stencil (8 on diagonal, -1 on all 8 neighbors).
/// Paper Table III workload.
CsrMatrix laplace2d_9pt(ord nx, ord ny);

/// 3-D Laplace, 7-point stencil.  Paper Table IV "Laplace3D".
CsrMatrix laplace3d_7pt(ord nx, ord ny, ord nz);

/// 3-D Laplace, 27-point stencil (26 on diagonal, -1 on neighbors).
CsrMatrix laplace3d_27pt(ord nx, ord ny, ord nz);

/// 3-D convection-diffusion, 7-point with first-order upwinding of the
/// wind field (wx, wy, wz): nonsymmetric.  atmosmodl surrogate.
CsrMatrix convection_diffusion3d(ord nx, ord ny, ord nz, double wx, double wy,
                                 double wz);

/// 3-D linear-elasticity-like operator: 3 dofs/node; per-component
/// stencil + symmetric cross-component coupling of strength `coupling`.
/// `wide` selects 27-point (true) vs 7-point (false) per-component
/// stencils.  Paper Table IV "Elasticity3D" (narrow) and the ML_Geer
/// surrogate (wide).
CsrMatrix elasticity3d(ord nx, ord ny, ord nz, bool wide = false,
                       double coupling = 0.3);

/// 2-D heterogeneous diffusion: 5- or 9-point with lognormal cell
/// conductivities spanning `decades` orders of magnitude (harmonic
/// averaging on edges).  ecology2 / thermal2 surrogates.
CsrMatrix heterogeneous2d(ord nx, ord ny, bool nine_point, double decades,
                          std::uint64_t seed);

/// 3-D anisotropic diffusion: 7-point with coefficients (1, eps_y,
/// eps_z).  Small eps makes the operator extremely ill-conditioned
/// (HTC surrogate).
CsrMatrix anisotropic3d(ord nx, ord ny, ord nz, double eps_y, double eps_z);

/// Applies D A D with d_i = 10^(decades * (h(i) - 0.5)) for a hashed
/// uniform h: spreads the spectrum across `decades` orders of magnitude
/// (Ga41As41H72 surrogate).  Deterministic in `seed`.
void apply_diagonal_spread(CsrMatrix& a, double decades, std::uint64_t seed);

/// Deterministic hash of (id, seed) to [0, 1).  Exposed for tests.
double hash01(std::uint64_t id, std::uint64_t seed);

}  // namespace tsbo::sparse
