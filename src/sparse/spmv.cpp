#include "sparse/spmv.hpp"

#include <cassert>

namespace tsbo::sparse {

void spmv(const CsrMatrix& a, std::span<const double> x, std::span<double> y) {
  assert(static_cast<ord>(x.size()) == a.cols);
  assert(static_cast<ord>(y.size()) == a.rows);
  spmv_rows(a, 0, a.rows, x, y);
}

void spmv(double alpha, const CsrMatrix& a, std::span<const double> x,
          double beta, std::span<double> y) {
  assert(static_cast<ord>(x.size()) == a.cols);
  assert(static_cast<ord>(y.size()) == a.rows);
  for (ord i = 0; i < a.rows; ++i) {
    double s = 0.0;
    for (offset k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      s += a.values[static_cast<std::size_t>(k)] *
           x[static_cast<std::size_t>(a.col_idx[static_cast<std::size_t>(k)])];
    }
    y[static_cast<std::size_t>(i)] =
        alpha * s + beta * y[static_cast<std::size_t>(i)];
  }
}

void spmv_rows(const CsrMatrix& a, ord begin, ord end,
               std::span<const double> x, std::span<double> y) {
  assert(begin >= 0 && end <= a.rows);
  const ord* col = a.col_idx.data();
  const double* val = a.values.data();
  for (ord i = begin; i < end; ++i) {
    double s = 0.0;
    for (offset k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      s += val[k] * x[static_cast<std::size_t>(col[k])];
    }
    y[static_cast<std::size_t>(i)] = s;
  }
}

}  // namespace tsbo::sparse
