#include "sparse/spmv.hpp"

#include "par/config.hpp"

#include <cassert>

namespace tsbo::sparse {

namespace {

// Pointer-based row kernels shared by every public entry point.  Each
// row's accumulation order is fixed by the CSR layout, so any row
// partition across threads reproduces the serial bits exactly.

inline void spmv_range(const CsrMatrix& a, ord begin, ord end,
                       const double* x, double* y) {
  const offset* rp = a.row_ptr.data();
  const ord* col = a.col_idx.data();
  const double* val = a.values.data();
  for (ord i = begin; i < end; ++i) {
    double s = 0.0;
    for (offset k = rp[i]; k < rp[i + 1]; ++k) s += val[k] * x[col[k]];
    y[i] = s;
  }
}

inline void spmv_range_scaled(double alpha, const CsrMatrix& a, ord begin,
                              ord end, const double* x, double beta,
                              double* y) {
  const offset* rp = a.row_ptr.data();
  const ord* col = a.col_idx.data();
  const double* val = a.values.data();
  for (ord i = begin; i < end; ++i) {
    double s = 0.0;
    for (offset k = rp[i]; k < rp[i + 1]; ++k) s += val[k] * x[col[k]];
    y[i] = alpha * s + beta * y[i];
  }
}

}  // namespace

void spmv(const CsrMatrix& a, std::span<const double> x, std::span<double> y) {
  assert(static_cast<ord>(x.size()) == a.cols);
  assert(static_cast<ord>(y.size()) == a.rows);
  spmv_rows(a, 0, a.rows, x, y);
}

void spmv(double alpha, const CsrMatrix& a, std::span<const double> x,
          double beta, std::span<double> y) {
  assert(static_cast<ord>(x.size()) == a.cols);
  assert(static_cast<ord>(y.size()) == a.rows);
  par::parallel_for_grained(
      static_cast<std::size_t>(a.rows), [&](std::size_t b, std::size_t e) {
        spmv_range_scaled(alpha, a, static_cast<ord>(b), static_cast<ord>(e),
                          x.data(), beta, y.data());
      });
}

void spmv_rows(const CsrMatrix& a, ord begin, ord end,
               std::span<const double> x, std::span<double> y) {
  assert(begin >= 0 && end <= a.rows);
  if (end <= begin) return;
  par::parallel_for_grained(
      static_cast<std::size_t>(end - begin),
      [&](std::size_t b, std::size_t e) {
        spmv_range(a, begin + static_cast<ord>(b), begin + static_cast<ord>(e),
                   x.data(), y.data());
      });
}

}  // namespace tsbo::sparse
