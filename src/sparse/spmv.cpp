#include "sparse/spmv.hpp"

#include "par/config.hpp"
#include "util/simd.hpp"

#include <algorithm>
#include <cassert>

namespace tsbo::sparse {

namespace {

// Pointer-based row kernels shared by every public entry point.  Each
// row's accumulation order is fixed by the CSR layout (vector lanes at
// fixed offsets from the row start — x values gathered through the
// 32-bit column ordinals — then the scalar tail), so any row partition
// across threads reproduces the serial bits exactly.

constexpr offset kW = static_cast<offset>(simd::kLanes);

// Stencil rows (7-27 nnz) are too short to amortize gather latency and
// the horizontal reduce; they keep the plain serial-accumulation loop
// (measured at parity with unrolled variants — the row is index-load
// bound, not FMA-chain bound).  Wide rows (suitesparse-like irregular
// matrices) go through the gather-vectorized loop.  The split is on
// the row's nnz only — a per-build constant — so any row partition
// across threads reproduces the same bits.
constexpr offset kGatherMinRow = 4 * kW;

inline double row_dot(const double* val, const ord* col, offset len,
                      const double* x) {
  if (len >= kGatherMinRow) {
    simd::Vec acc0 = simd::zero(), acc1 = simd::zero();
    offset k = 0;
    for (; k + 2 * kW <= len; k += 2 * kW) {
      acc0 =
          simd::mul_add(simd::load(val + k), simd::gather(x, col + k), acc0);
      acc1 = simd::mul_add(simd::load(val + k + kW),
                           simd::gather(x, col + k + kW), acc1);
    }
    for (; k + kW <= len; k += kW) {
      acc0 =
          simd::mul_add(simd::load(val + k), simd::gather(x, col + k), acc0);
    }
    double s = simd::reduce_add(simd::add(acc0, acc1));
    for (; k < len; ++k) s += val[k] * x[col[k]];
    return s;
  }
  double s = 0.0;
  for (offset k = 0; k < len; ++k) s += val[k] * x[col[k]];
  return s;
}

inline void spmv_range(const CsrMatrix& a, ord begin, ord end,
                       const double* x, double* y) {
  const offset* rp = a.row_ptr.data();
  const ord* col = a.col_idx.data();
  const double* val = a.values.data();
  for (ord i = begin; i < end; ++i) {
    y[i] = row_dot(val + rp[i], col + rp[i], rp[i + 1] - rp[i], x);
  }
}

inline void spmv_range_scaled(double alpha, const CsrMatrix& a, ord begin,
                              ord end, const double* x, double beta,
                              double* y) {
  const offset* rp = a.row_ptr.data();
  const ord* col = a.col_idx.data();
  const double* val = a.values.data();
  for (ord i = begin; i < end; ++i) {
    const double s = row_dot(val + rp[i], col + rp[i], rp[i + 1] - rp[i], x);
    y[i] = alpha * s + beta * y[i];
  }
}

}  // namespace

void spmv(const CsrMatrix& a, std::span<const double> x, std::span<double> y) {
  assert(static_cast<ord>(x.size()) == a.cols);
  assert(static_cast<ord>(y.size()) == a.rows);
  spmv_rows(a, 0, a.rows, x, y);
}

void spmv(double alpha, const CsrMatrix& a, std::span<const double> x,
          double beta, std::span<double> y) {
  assert(static_cast<ord>(x.size()) == a.cols);
  assert(static_cast<ord>(y.size()) == a.rows);
  par::parallel_for_grained(
      static_cast<std::size_t>(a.rows), [&](std::size_t b, std::size_t e) {
        spmv_range_scaled(alpha, a, static_cast<ord>(b), static_cast<ord>(e),
                          x.data(), beta, y.data());
      });
}

void spmv_rows(const CsrMatrix& a, ord begin, ord end,
               std::span<const double> x, std::span<double> y) {
  assert(begin >= 0 && end <= a.rows);
  if (end <= begin) return;
  par::parallel_for_grained(
      static_cast<std::size_t>(end - begin),
      [&](std::size_t b, std::size_t e) {
        spmv_range(a, begin + static_cast<ord>(b), begin + static_cast<ord>(e),
                   x.data(), y.data());
      });
}

void spmv_rows_mapped(const CsrMatrix& a, std::span<const ord> rows,
                      std::span<const double> x, std::span<double> y) {
  assert(rows.size() == static_cast<std::size_t>(a.rows));
  if (rows.empty()) return;
  const offset* rp = a.row_ptr.data();
  const ord* col = a.col_idx.data();
  const double* val = a.values.data();
  par::parallel_for_grained(rows.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      y[static_cast<std::size_t>(rows[i])] =
          row_dot(val + rp[i], col + rp[i], rp[i + 1] - rp[i], x.data());
    }
  });
}

void spmm_rows_mapped(const CsrMatrix& a, std::span<const ord> rows,
                      const double* xk, ord k, double* y, std::size_t ldy) {
  assert(rows.size() == static_cast<std::size_t>(a.rows));
  assert(k >= 1);
  if (rows.empty()) return;
  const offset* rp = a.row_ptr.data();
  const ord* col = a.col_idx.data();
  const double* val = a.values.data();
  // Column chunks bound the accumulator set; each column's per-row sum
  // still runs in ascending nnz order regardless of the chunking.
  constexpr ord kColChunk = 16;
  par::parallel_for_grained(rows.size(), [&](std::size_t b, std::size_t e) {
    double acc[kColChunk];
    for (ord t0 = 0; t0 < k; t0 += kColChunk) {
      const ord tn = std::min<ord>(kColChunk, k - t0);
      for (std::size_t i = b; i < e; ++i) {
        for (ord t = 0; t < tn; ++t) acc[t] = 0.0;
        const offset len = rp[i + 1] - rp[i];
        const ord* c = col + rp[i];
        const double* v = val + rp[i];
        for (offset kk = 0; kk < len; ++kk) {
          const double* xrow = xk + static_cast<std::size_t>(c[kk]) *
                                        static_cast<std::size_t>(k) +
                               t0;
          const double akk = v[kk];
          for (ord t = 0; t < tn; ++t) acc[t] += akk * xrow[t];
        }
        const std::size_t row = static_cast<std::size_t>(rows[i]);
        for (ord t = 0; t < tn; ++t) {
          y[(static_cast<std::size_t>(t0) + t) * ldy + row] = acc[t];
        }
      }
    }
  });
}

}  // namespace tsbo::sparse
