#pragma once
// Compressed sparse row matrices.
//
// The library's sparse substrate: CSR storage, a COO assembly path for
// generators/IO, and structural helpers.  Row ids are 64-bit capable
// via std::int64_t row_ptr; column ids are 32-bit (the paper's largest
// problem, n = 4e6, fits comfortably).

#include "util/aligned.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace tsbo::sparse {

using ord = std::int32_t;    // row/column ordinal
using offset = std::int64_t; // nnz offset

/// One COO entry used during assembly.
struct Triplet {
  ord row = 0;
  ord col = 0;
  double value = 0.0;
};

/// CSR sparse matrix.  `rows` counts the stored (possibly rank-local)
/// rows; `cols` is the global column count.  Column indices within each
/// row are strictly increasing.
///
/// The arrays are 64-byte aligned for the SIMD SpMV path; col_idx and
/// values additionally skip the serial zero-fill on resize (their
/// producers — the threaded generator builder and transpose — write
/// every element, so the writing threads are the first touch).
struct CsrMatrix {
  ord rows = 0;
  ord cols = 0;
  util::aligned_vector<offset> row_ptr;        // size rows + 1
  util::aligned_uninit_vector<ord> col_idx;    // size nnz
  util::aligned_uninit_vector<double> values;  // size nnz

  [[nodiscard]] offset nnz() const {
    return row_ptr.empty() ? 0 : row_ptr.back();
  }
  [[nodiscard]] double nnz_per_row() const {
    return rows == 0 ? 0.0 : static_cast<double>(nnz()) / rows;
  }

  /// Entry lookup (binary search within the row); 0 when not stored.
  [[nodiscard]] double at(ord i, ord j) const;

  /// Heap bytes held by the three CSR arrays (capacity, not size) —
  /// the operator cache budgets entries with this.
  [[nodiscard]] std::size_t storage_bytes() const {
    return row_ptr.capacity() * sizeof(offset) +
           col_idx.capacity() * sizeof(ord) +
           values.capacity() * sizeof(double);
  }

  /// Deterministic FNV-1a fold over the dimensions, structure, and
  /// value bits.  The operator cache stores it at insert and
  /// re-validates after a corrupted-verdict solve: a mutated cached
  /// matrix (soft error, stray write) is detected and the entry
  /// rebuilt instead of poisoning every future job that hits it.
  [[nodiscard]] std::uint64_t checksum() const;
};

/// Builds CSR from triplets; duplicate (row, col) entries are summed.
/// Triplets may arrive in any order.
CsrMatrix csr_from_triplets(ord rows, ord cols, std::vector<Triplet> triplets);

/// Explicit transpose.
CsrMatrix transpose(const CsrMatrix& a);

/// Structural + numerical equality within tolerance (tests).
bool approx_equal(const CsrMatrix& a, const CsrMatrix& b, double tol);

/// Extracts rows [begin, end) keeping global column indices.
CsrMatrix extract_rows(const CsrMatrix& a, ord begin, ord end);

/// Dense row of the matrix (tests / debugging).
std::vector<double> dense_row(const CsrMatrix& a, ord i);

}  // namespace tsbo::sparse
