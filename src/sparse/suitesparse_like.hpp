#pragma once
// Synthetic surrogates for the paper's SuiteSparse matrices.
//
// The offline build environment cannot download the SuiteSparse
// collection, so every matrix the paper evaluates is replaced by a
// generator matched to its published character: dimension class,
// symmetry, nnz/row, and spectrum behaviour (see DESIGN.md Section 5).
// A MatrixMarket reader (mm_io.hpp) allows substituting the real
// matrices when available.

#include "sparse/csr.hpp"

#include <string>
#include <vector>

namespace tsbo::sparse {

struct Surrogate {
  std::string name;        // paper's matrix name
  std::string character;   // one-line description from the paper
  bool symmetric = false;  // before the paper's max-scaling
  CsrMatrix matrix;
};

/// Names accepted by make_surrogate, in the order the paper lists them.
std::vector<std::string> surrogate_names();

/// Subset used in Fig. 9 (the MPK conditioning study).
std::vector<std::string> fig9_surrogate_names();

/// Subset used in Table IV (the per-iteration timing study).
std::vector<std::string> table4_surrogate_names();

/// Builds the named surrogate with approximately `target_n` rows
/// (grid dimensions are derived from it).  Throws on unknown names.
Surrogate make_surrogate(const std::string& name, ord target_n);

}  // namespace tsbo::sparse
