#include "sparse/dist_csr.hpp"

#include "par/config.hpp"
#include "sparse/spmv.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <map>

namespace tsbo::sparse {

namespace {

/// Copies the listed rows of `a` (ascending local row order) into a
/// standalone CSR block, preserving each row's entry order verbatim.
CsrMatrix extract_row_subset(const CsrMatrix& a, const std::vector<ord>& rows) {
  CsrMatrix out;
  out.rows = static_cast<ord>(rows.size());
  out.cols = a.cols;
  out.row_ptr.assign(rows.size() + 1, 0);
  offset nnz = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    nnz += a.row_ptr[rows[i] + 1] - a.row_ptr[rows[i]];
    out.row_ptr[i + 1] = nnz;
  }
  out.col_idx.resize(static_cast<std::size_t>(nnz));
  out.values.resize(static_cast<std::size_t>(nnz));
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const offset src = a.row_ptr[rows[i]];
    const offset len = a.row_ptr[rows[i] + 1] - src;
    std::memcpy(out.col_idx.data() + out.row_ptr[i], a.col_idx.data() + src,
                static_cast<std::size_t>(len) * sizeof(ord));
    std::memcpy(out.values.data() + out.row_ptr[i], a.values.data() + src,
                static_cast<std::size_t>(len) * sizeof(double));
  }
  return out;
}

}  // namespace

DistCsr::DistCsr(const CsrMatrix& global, const RowPartition& partition,
                 int rank)
    : rank_(rank), partition_(partition.n(), partition.nranks()) {
  const ord begin = partition_.begin(rank);
  const ord end = partition_.end(rank);
  local_ = extract_rows(global, begin, end);

  // Collect off-rank (ghost) column ids.
  std::vector<ord> ghosts;
  for (const ord c : local_.col_idx) {
    if (c < begin || c >= end) ghosts.push_back(c);
  }
  std::sort(ghosts.begin(), ghosts.end());
  ghosts.erase(std::unique(ghosts.begin(), ghosts.end()), ghosts.end());
  ghost_gid_ = std::move(ghosts);

  // Remap columns: own rows -> [0, nlocal), ghosts -> nlocal + slot.
  const ord nlocal = end - begin;
  for (ord& c : local_.col_idx) {
    if (c >= begin && c < end) {
      c -= begin;
    } else {
      const auto it =
          std::lower_bound(ghost_gid_.begin(), ghost_gid_.end(), c);
      c = nlocal + static_cast<ord>(it - ghost_gid_.begin());
    }
  }
  local_.cols = nlocal + static_cast<ord>(ghost_gid_.size());

  // Deterministic interior/boundary row partition: a row is interior
  // iff every column it touches is owned (< nlocal).  Ascending row
  // order in both lists keeps the split reproducible and the blocks'
  // per-row data bit-identical to local_'s.
  for (ord i = 0; i < local_.rows; ++i) {
    bool has_ghost = false;
    for (offset k = local_.row_ptr[i]; k < local_.row_ptr[i + 1]; ++k) {
      if (local_.col_idx[static_cast<std::size_t>(k)] >= nlocal) {
        has_ghost = true;
        break;
      }
    }
    (has_ghost ? boundary_rows_ : interior_rows_).push_back(i);
  }
  interior_ = extract_row_subset(local_, interior_rows_);
  boundary_ = extract_row_subset(local_, boundary_rows_);

  ghost_owner_.resize(ghost_gid_.size());
  ghost_peer_offset_.resize(ghost_gid_.size());
  std::map<int, std::size_t> per_peer;
  for (std::size_t g = 0; g < ghost_gid_.size(); ++g) {
    const int owner = partition_.owner(ghost_gid_[g]);
    ghost_owner_[g] = owner;
    ghost_peer_offset_[g] = ghost_gid_[g] - partition_.begin(owner);
    per_peer[owner] += sizeof(double);
  }
  // Per-peer pull sizes feed NetworkModel::p2p_round_seconds: the round
  // costs the sum over peers (single-port injection), not the max.
  peer_recv_bytes_.reserve(per_peer.size());
  for (const auto& [peer, bytes] : per_peer) {
    peer_recv_bytes_.push_back(bytes);
  }

  xbuf_.resize(static_cast<std::size_t>(local_.cols));
}

CsrMatrix DistCsr::local_diagonal_block() const {
  const ord n = local_.rows;
  std::vector<Triplet> t;
  t.reserve(static_cast<std::size_t>(local_.nnz()));
  // Interior rows hold no ghost columns by construction: copy verbatim.
  for (const ord i : interior_rows_) {
    for (offset k = local_.row_ptr[i]; k < local_.row_ptr[i + 1]; ++k) {
      t.push_back({i, local_.col_idx[static_cast<std::size_t>(k)],
                   local_.values[static_cast<std::size_t>(k)]});
    }
  }
  // Boundary rows: drop the ghost columns (block Jacobi across ranks).
  for (const ord i : boundary_rows_) {
    for (offset k = local_.row_ptr[i]; k < local_.row_ptr[i + 1]; ++k) {
      const ord j = local_.col_idx[static_cast<std::size_t>(k)];
      if (j < n) t.push_back({i, j, local_.values[static_cast<std::size_t>(k)]});
    }
  }
  return csr_from_triplets(n, n, std::move(t));
}

void DistCsr::fill_ghosts(par::Communicator& comm) const {
  const std::size_t nlocal = static_cast<std::size_t>(n_local());
  for (std::size_t g = 0; g < ghost_gid_.size(); ++g) {
    xbuf_[nlocal + g] =
        comm.peer_buffer(ghost_owner_[g])[static_cast<std::size_t>(
            ghost_peer_offset_[g])];
  }
}

void DistCsr::gather_ghosts(par::Communicator& comm,
                            std::span<const double> x_local) const {
  assert(static_cast<ord>(x_local.size()) == n_local());
  std::memcpy(xbuf_.data(), x_local.data(), x_local.size_bytes());
  if (comm.size() > 1) {
    comm.exchange_begin(x_local);
    fill_ghosts(comm);
    comm.exchange_end(peer_recv_bytes_, ghost_gid_.size() * sizeof(double));
  }
}

void DistCsr::spmv(par::Communicator& comm, std::span<const double> x_local,
                   std::span<double> y_local, util::PhaseTimers* timers) const {
  assert(static_cast<ord>(y_local.size()) == n_local());
  assert(static_cast<ord>(x_local.size()) == n_local());
  if (comm.size() > 1) {
    // Split-phase apply: open the exchange, multiply the interior rows
    // while the modeled halo latency progresses, then gather the
    // ghosts, close the exchange (which discounts the interior compute
    // from the injected latency), and finish the boundary rows.
    if (timers) timers->start("spmv/comm");
    comm.exchange_begin(x_local);
    if (timers) {
      timers->stop("spmv/comm");
      timers->start("spmv/local");
    }
    std::memcpy(xbuf_.data(), x_local.data(), x_local.size_bytes());
    spmv_rows_mapped(interior_, interior_rows_, xbuf_, y_local);
    if (timers) {
      timers->stop("spmv/local");
      timers->start("spmv/comm");
    }
    fill_ghosts(comm);
    comm.exchange_end(peer_recv_bytes_, ghost_gid_.size() * sizeof(double));
    if (timers) {
      timers->stop("spmv/comm");
      timers->start("spmv/local");
    }
    spmv_rows_mapped(boundary_, boundary_rows_, xbuf_, y_local);
    if (timers) timers->stop("spmv/local");
  } else {
    if (timers) timers->start("spmv/local");
    std::memcpy(xbuf_.data(), x_local.data(), x_local.size_bytes());
    spmv_rows_mapped(interior_, interior_rows_, xbuf_, y_local);
    spmv_rows_mapped(boundary_, boundary_rows_, xbuf_, y_local);
    if (timers) timers->stop("spmv/local");
  }
  consult_spmv_faults(comm, y_local);
}

void DistCsr::consult_spmv_faults(par::Communicator& comm,
                                  std::span<double> y_local) const {
  par::FaultInjector* injector = comm.fault_injector();
  if (injector == nullptr) return;
  // Both spmv-layer sites are consulted once per apply, after every row
  // is written and the exchange window is closed: a throw fires on all
  // ranks with no half-open exchange (the piece stays reusable by a
  // retry), and a corrupt addresses a GLOBAL row — only the owner of
  // row (ordinal mod n) flips its local entry — so the corrupted
  // vector, and the whole downstream trajectory, is bitwise-identical
  // at any rank count.  `comm.exchange` is consulted here rather than
  // inside exchange_begin so its ordinal stream also exists at
  // ranks=1, where no exchange happens.
  const long n = static_cast<long>(n_global());
  const long begin = static_cast<long>(row_begin());
  const long nloc = static_cast<long>(n_local());
  const auto corrupt = [&](long ordinal) {
    const long g = ordinal % n;
    if (g >= begin && g < begin + nloc) {
      par::FaultInjector::flip_bit(y_local[static_cast<std::size_t>(g - begin)]);
    }
  };
  injector->consult(comm.rank(), par::FaultSite::kSpmvInterior, corrupt);
  injector->consult(comm.rank(), par::FaultSite::kCommExchange, corrupt);
}

void DistCsr::spmm(par::Communicator& comm, dense::ConstMatrixView x_local,
                   dense::MatrixView y_local, util::PhaseTimers* timers) const {
  const ord nlocal = n_local();
  assert(static_cast<ord>(x_local.rows) == nlocal);
  assert(static_cast<ord>(y_local.rows) == nlocal);
  assert(x_local.cols == y_local.cols);
  const ord k = static_cast<ord>(x_local.cols);
  assert(k >= 1);
  xkbuf_.resize(static_cast<std::size_t>(local_.cols) *
                static_cast<std::size_t>(k));
  // Pack the owned entries k-interleaved BEFORE opening the exchange:
  // exchange_begin publishes this buffer and peers read from it inside
  // the begin/end window, so it must be complete at begin.
  par::parallel_for_grained(
      static_cast<std::size_t>(nlocal), [&](std::size_t b, std::size_t e) {
        for (std::size_t j = b; j < e; ++j) {
          double* dst = xkbuf_.data() + j * static_cast<std::size_t>(k);
          for (ord t = 0; t < k; ++t) {
            dst[t] = x_local(static_cast<dense::index_t>(j), t);
          }
        }
      });
  const std::span<const double> packed(
      xkbuf_.data(), static_cast<std::size_t>(nlocal) * k);
  if (comm.size() > 1) {
    if (timers) timers->start("spmv/comm");
    comm.exchange_begin(packed);
    if (timers) {
      timers->stop("spmv/comm");
      timers->start("spmv/local");
    }
    spmm_rows_mapped(interior_, interior_rows_, xkbuf_.data(), k,
                     y_local.data, static_cast<std::size_t>(y_local.ld));
    if (timers) {
      timers->stop("spmv/local");
      timers->start("spmv/comm");
    }
    // Ghost row g arrives as k consecutive values at the owner's
    // interleaved offset; one exchange moves k times the spmv volume.
    for (std::size_t g = 0; g < ghost_gid_.size(); ++g) {
      const double* src =
          comm.peer_buffer(ghost_owner_[g]).data() +
          static_cast<std::size_t>(ghost_peer_offset_[g]) * k;
      double* dst =
          xkbuf_.data() + (static_cast<std::size_t>(nlocal) + g) * k;
      std::memcpy(dst, src, static_cast<std::size_t>(k) * sizeof(double));
    }
    peer_recv_bytes_k_.resize(peer_recv_bytes_.size());
    for (std::size_t p = 0; p < peer_recv_bytes_.size(); ++p) {
      peer_recv_bytes_k_[p] = peer_recv_bytes_[p] * static_cast<std::size_t>(k);
    }
    comm.exchange_end(peer_recv_bytes_k_,
                      ghost_gid_.size() * static_cast<std::size_t>(k) *
                          sizeof(double));
    if (timers) {
      timers->stop("spmv/comm");
      timers->start("spmv/local");
    }
    spmm_rows_mapped(boundary_, boundary_rows_, xkbuf_.data(), k,
                     y_local.data, static_cast<std::size_t>(y_local.ld));
    if (timers) timers->stop("spmv/local");
  } else {
    if (timers) timers->start("spmv/local");
    spmm_rows_mapped(interior_, interior_rows_, xkbuf_.data(), k,
                     y_local.data, static_cast<std::size_t>(y_local.ld));
    spmm_rows_mapped(boundary_, boundary_rows_, xkbuf_.data(), k,
                     y_local.data, static_cast<std::size_t>(y_local.ld));
    if (timers) timers->stop("spmv/local");
  }
  // One fault consult per apply (not per column): a corrupt addresses
  // the global row in column 0, keeping the perturbed state invariant
  // across rank counts exactly as in spmv().
  consult_spmv_faults(
      comm, std::span<double>(y_local.col(0), static_cast<std::size_t>(nlocal)));
}

void DistCsr::spmv_local_only(std::span<const double> x_local,
                              std::span<double> y_local) const {
  std::memcpy(xbuf_.data(), x_local.data(), x_local.size_bytes());
  spmv_rows_mapped(interior_, interior_rows_, xbuf_, y_local);
  spmv_rows_mapped(boundary_, boundary_rows_, xbuf_, y_local);
}

}  // namespace tsbo::sparse
