#include "sparse/dist_csr.hpp"

#include "sparse/spmv.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <map>

namespace tsbo::sparse {

DistCsr::DistCsr(const CsrMatrix& global, const RowPartition& partition,
                 int rank)
    : rank_(rank), partition_(partition.n(), partition.nranks()) {
  const ord begin = partition_.begin(rank);
  const ord end = partition_.end(rank);
  local_ = extract_rows(global, begin, end);

  // Collect off-rank (ghost) column ids.
  std::vector<ord> ghosts;
  for (const ord c : local_.col_idx) {
    if (c < begin || c >= end) ghosts.push_back(c);
  }
  std::sort(ghosts.begin(), ghosts.end());
  ghosts.erase(std::unique(ghosts.begin(), ghosts.end()), ghosts.end());
  ghost_gid_ = std::move(ghosts);

  // Remap columns: own rows -> [0, nlocal), ghosts -> nlocal + slot.
  const ord nlocal = end - begin;
  for (ord& c : local_.col_idx) {
    if (c >= begin && c < end) {
      c -= begin;
    } else {
      const auto it =
          std::lower_bound(ghost_gid_.begin(), ghost_gid_.end(), c);
      c = nlocal + static_cast<ord>(it - ghost_gid_.begin());
    }
  }
  local_.cols = nlocal + static_cast<ord>(ghost_gid_.size());

  ghost_owner_.resize(ghost_gid_.size());
  ghost_peer_offset_.resize(ghost_gid_.size());
  std::map<int, std::size_t> per_peer;
  for (std::size_t g = 0; g < ghost_gid_.size(); ++g) {
    const int owner = partition_.owner(ghost_gid_[g]);
    ghost_owner_[g] = owner;
    ghost_peer_offset_[g] = ghost_gid_[g] - partition_.begin(owner);
    per_peer[owner] += sizeof(double);
  }
  for (const auto& [peer, bytes] : per_peer) {
    max_recv_bytes_ = std::max(max_recv_bytes_, bytes);
  }

  xbuf_.resize(static_cast<std::size_t>(local_.cols));
}

void DistCsr::gather_ghosts(par::Communicator& comm,
                            std::span<const double> x_local) const {
  assert(static_cast<ord>(x_local.size()) == n_local());
  std::memcpy(xbuf_.data(), x_local.data(), x_local.size_bytes());
  if (comm.size() > 1) {
    comm.exchange_begin(x_local);
    const std::size_t nlocal = static_cast<std::size_t>(n_local());
    for (std::size_t g = 0; g < ghost_gid_.size(); ++g) {
      xbuf_[nlocal + g] =
          comm.peer_buffer(ghost_owner_[g])[static_cast<std::size_t>(
              ghost_peer_offset_[g])];
    }
    comm.exchange_end(max_recv_bytes_);
  }
}

void DistCsr::spmv(par::Communicator& comm, std::span<const double> x_local,
                   std::span<double> y_local, util::PhaseTimers* timers) const {
  assert(static_cast<ord>(y_local.size()) == n_local());
  if (timers) timers->start("spmv/comm");
  gather_ghosts(comm, x_local);
  if (timers) {
    timers->stop("spmv/comm");
    timers->start("spmv/local");
  }
  spmv_rows(local_, 0, local_.rows, xbuf_, y_local);
  if (timers) timers->stop("spmv/local");
}

void DistCsr::spmv_local_only(std::span<const double> x_local,
                              std::span<double> y_local) const {
  std::memcpy(xbuf_.data(), x_local.data(), x_local.size_bytes());
  spmv_rows(local_, 0, local_.rows, xbuf_, y_local);
}

}  // namespace tsbo::sparse
