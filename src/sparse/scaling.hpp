#pragma once
// Matrix equilibration as the paper prescribes (Section VI): "we scaled
// the columns and then rows of the matrices by the maximum nonzero
// entries in the columns and rows (hence, all the resulting matrices
// are non-symmetric)."

#include "sparse/csr.hpp"

namespace tsbo::sparse {

struct EquilibrationScales {
  std::vector<double> col_scale;  // applied first
  std::vector<double> row_scale;  // applied second
};

/// In-place max-scaling: first every column is divided by its max
/// absolute nonzero, then every row by its max absolute nonzero.
/// Returns the scale factors that were applied.
EquilibrationScales equilibrate_max(CsrMatrix& a);

/// Max absolute value per column / per row (helpers, also for tests).
std::vector<double> col_max_abs(const CsrMatrix& a);
std::vector<double> row_max_abs(const CsrMatrix& a);

}  // namespace tsbo::sparse
