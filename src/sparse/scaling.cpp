#include "sparse/scaling.hpp"

#include <cmath>

namespace tsbo::sparse {

std::vector<double> col_max_abs(const CsrMatrix& a) {
  std::vector<double> m(static_cast<std::size_t>(a.cols), 0.0);
  for (std::size_t k = 0; k < a.values.size(); ++k) {
    const auto j = static_cast<std::size_t>(a.col_idx[k]);
    const double v = std::abs(a.values[k]);
    if (v > m[j]) m[j] = v;
  }
  return m;
}

std::vector<double> row_max_abs(const CsrMatrix& a) {
  std::vector<double> m(static_cast<std::size_t>(a.rows), 0.0);
  for (ord i = 0; i < a.rows; ++i) {
    for (offset k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      const double v = std::abs(a.values[static_cast<std::size_t>(k)]);
      if (v > m[static_cast<std::size_t>(i)]) m[static_cast<std::size_t>(i)] = v;
    }
  }
  return m;
}

EquilibrationScales equilibrate_max(CsrMatrix& a) {
  EquilibrationScales s;
  s.col_scale = col_max_abs(a);
  for (double& v : s.col_scale) {
    if (v == 0.0) v = 1.0;
  }
  for (std::size_t k = 0; k < a.values.size(); ++k) {
    a.values[k] /= s.col_scale[static_cast<std::size_t>(a.col_idx[k])];
  }
  s.row_scale = row_max_abs(a);
  for (double& v : s.row_scale) {
    if (v == 0.0) v = 1.0;
  }
  for (ord i = 0; i < a.rows; ++i) {
    for (offset k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      a.values[static_cast<std::size_t>(k)] /= s.row_scale[static_cast<std::size_t>(i)];
    }
  }
  return s;
}

}  // namespace tsbo::sparse
