#include "sparse/generators.hpp"

#include "par/config.hpp"

#include <cassert>
#include <cmath>

namespace tsbo::sparse {

double hash01(std::uint64_t id, std::uint64_t seed) {
  // SplitMix64 finalizer over (id, seed).
  std::uint64_t x = id * 0x9e3779b97f4a7c15ull + seed * 0xbf58476d1ce4e5b9ull + 1;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

namespace {

/// Two-pass threaded CSR assembly from a deterministic per-row emitter.
/// emit(i, add) must call add(col, value) for row i's entries in
/// strictly ascending column order (debug-asserted in the fill pass —
/// the CSR invariant that at()'s binary search and the distributed
/// partitioning rely on, which the removed triplet path enforced by
/// sorting), computing them from i alone; `count(i)` returns row i's
/// entry count without evaluating values — pass-1 uses it so emitters
/// with expensive entries (heterogeneous2d's pow-heavy conductivities)
/// are evaluated once, in the fill pass.  The builder counts row
/// lengths in a first parallel pass, exclusive-scans the row pointers,
/// then fills col_idx/values in a second parallel pass.  Because every
/// row's content is a pure function of the row index, the assembled
/// matrix is bit-identical at any thread count — and to the former
/// serial triplet path, whose (row, col) sort produced the same
/// ascending order.  Writer threads touch exactly the nnz ranges they
/// later stream in SpMV.
template <typename Count, typename Emit>
CsrMatrix csr_from_rows(ord rows, ord cols, const Count& count,
                        const Emit& emit) {
  CsrMatrix m;
  m.rows = rows;
  m.cols = cols;
  m.row_ptr.assign(static_cast<std::size_t>(rows) + 1, 0);
  par::parallel_for_grained(
      static_cast<std::size_t>(rows), [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
          m.row_ptr[i + 1] = count(static_cast<ord>(i));
        }
      });
  for (std::size_t r = 1; r <= static_cast<std::size_t>(rows); ++r) {
    m.row_ptr[r] += m.row_ptr[r - 1];
  }
  m.col_idx.resize(static_cast<std::size_t>(m.nnz()));
  m.values.resize(static_cast<std::size_t>(m.nnz()));
  par::parallel_for_grained(
      static_cast<std::size_t>(rows), [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
          offset k = m.row_ptr[i];
          [[maybe_unused]] ord prev_col = -1;
          emit(static_cast<ord>(i), [&](ord c, double v) {
            assert(c > prev_col && "emitter must emit ascending columns");
#ifndef NDEBUG
            prev_col = c;
#endif
            m.col_idx[static_cast<std::size_t>(k)] = c;
            m.values[static_cast<std::size_t>(k)] = v;
            ++k;
          });
          assert(k == m.row_ptr[i + 1]);
        }
      });
  return m;
}

/// Overload for emitters whose values are cheap: pass-1 runs the
/// emitter itself, discarding values.
template <typename Emit>
CsrMatrix csr_from_rows(ord rows, ord cols, const Emit& emit) {
  return csr_from_rows(
      rows, cols,
      [&](ord i) {
        offset n = 0;
        emit(i, [&](ord, double) { ++n; });
        return n;
      },
      emit);
}

}  // namespace

CsrMatrix laplace2d_5pt(ord nx, ord ny) {
  const ord n = nx * ny;
  return csr_from_rows(n, n, [nx, ny](ord i, auto&& add) {
    const ord x = i % nx, y = i / nx;
    if (y > 0) add(i - nx, -1.0);
    if (x > 0) add(i - 1, -1.0);
    add(i, 4.0);
    if (x < nx - 1) add(i + 1, -1.0);
    if (y < ny - 1) add(i + nx, -1.0);
  });
}

CsrMatrix laplace2d_9pt(ord nx, ord ny) {
  const ord n = nx * ny;
  return csr_from_rows(n, n, [nx, ny](ord i, auto&& add) {
    const ord x = i % nx, y = i / nx;
    for (ord dy = -1; dy <= 1; ++dy) {
      for (ord dx = -1; dx <= 1; ++dx) {
        const ord xx = x + dx, yy = y + dy;
        if (xx < 0 || xx >= nx || yy < 0 || yy >= ny) continue;
        add(yy * nx + xx, (dx == 0 && dy == 0) ? 8.0 : -1.0);
      }
    }
  });
}

CsrMatrix laplace3d_7pt(ord nx, ord ny, ord nz) {
  const ord n = nx * ny * nz;
  return csr_from_rows(n, n, [nx, ny, nz](ord i, auto&& add) {
    const ord x = i % nx, y = (i / nx) % ny, z = i / (nx * ny);
    if (z > 0) add(i - nx * ny, -1.0);
    if (y > 0) add(i - nx, -1.0);
    if (x > 0) add(i - 1, -1.0);
    add(i, 6.0);
    if (x < nx - 1) add(i + 1, -1.0);
    if (y < ny - 1) add(i + nx, -1.0);
    if (z < nz - 1) add(i + nx * ny, -1.0);
  });
}

CsrMatrix laplace3d_27pt(ord nx, ord ny, ord nz) {
  const ord n = nx * ny * nz;
  return csr_from_rows(n, n, [nx, ny, nz](ord i, auto&& add) {
    const ord x = i % nx, y = (i / nx) % ny, z = i / (nx * ny);
    for (ord dz = -1; dz <= 1; ++dz) {
      for (ord dy = -1; dy <= 1; ++dy) {
        for (ord dx = -1; dx <= 1; ++dx) {
          const ord xx = x + dx, yy = y + dy, zz = z + dz;
          if (xx < 0 || xx >= nx || yy < 0 || yy >= ny || zz < 0 ||
              zz >= nz) {
            continue;
          }
          add((zz * ny + yy) * nx + xx,
              (dx == 0 && dy == 0 && dz == 0) ? 26.0 : -1.0);
        }
      }
    }
  });
}

CsrMatrix convection_diffusion3d(ord nx, ord ny, ord nz, double wx, double wy,
                                 double wz) {
  const ord n = nx * ny * nz;
  // Diffusion 7-pt plus first-order upwind convection: for wind w > 0
  // the upwind neighbor is i-1, contributing (-w) off-diagonal and (+w)
  // to the diagonal.
  const double ax = std::abs(wx), ay = std::abs(wy), az = std::abs(wz);
  return csr_from_rows(n, n, [=](ord i, auto&& add) {
    const ord x = i % nx, y = (i / nx) % ny, z = i / (nx * ny);
    const double wxm = wx > 0 ? wx : 0.0, wxp = wx < 0 ? -wx : 0.0;
    const double wym = wy > 0 ? wy : 0.0, wyp = wy < 0 ? -wy : 0.0;
    const double wzm = wz > 0 ? wz : 0.0, wzp = wz < 0 ? -wz : 0.0;
    if (z > 0) add(i - nx * ny, -1.0 - wzm);
    if (y > 0) add(i - nx, -1.0 - wym);
    if (x > 0) add(i - 1, -1.0 - wxm);
    add(i, 6.0 + ax + ay + az);
    if (x < nx - 1) add(i + 1, -1.0 - wxp);
    if (y < ny - 1) add(i + nx, -1.0 - wyp);
    if (z < nz - 1) add(i + nx * ny, -1.0 - wzp);
  });
}

CsrMatrix elasticity3d(ord nx, ord ny, ord nz, bool wide, double coupling) {
  const ord nodes = nx * ny * nz;
  const ord n = 3 * nodes;
  // Shared by the counting pass and the emission pass: the number of
  // in-bounds stencil neighbors of node (x, y, z).
  const auto node_degree = [=](ord x, ord y, ord z) {
    int degree = 0;
    for (ord dz = -1; dz <= 1; ++dz) {
      for (ord dy = -1; dy <= 1; ++dy) {
        for (ord dx = -1; dx <= 1; ++dx) {
          if (dx == 0 && dy == 0 && dz == 0) continue;
          if (!wide && (std::abs(dx) + std::abs(dy) + std::abs(dz)) != 1) {
            continue;
          }
          const ord xx = x + dx, yy = y + dy, zz = z + dz;
          if (xx < 0 || xx >= nx || yy < 0 || yy >= ny || zz < 0 ||
              zz >= nz) {
            continue;
          }
          ++degree;
        }
      }
    }
    return degree;
  };
  // (degree + 1) node blocks of 3 columns each; avoids running the
  // full block-emission sweep in the counting pass.
  const auto row_count = [=](ord i) {
    const ord nid = i / 3;
    return static_cast<offset>(
        3 * (node_degree(nid % nx, (nid / nx) % ny, nid / (nx * ny)) + 1));
  };
  return csr_from_rows(n, n, row_count, [=](ord i, auto&& add) {
    const ord nid = i / 3;
    const int c = static_cast<int>(i % 3);
    const ord x = nid % nx, y = (nid / nx) % ny, z = nid / (nx * ny);
    // The node-diagonal 3x3 block (dominant enough to keep the
    // symmetric operator positive definite) needs the degree but sits
    // mid-row in column order, so it is computed up front.
    const int degree = node_degree(x, y, z);
    for (ord dz = -1; dz <= 1; ++dz) {
      for (ord dy = -1; dy <= 1; ++dy) {
        for (ord dx = -1; dx <= 1; ++dx) {
          const bool self = dx == 0 && dy == 0 && dz == 0;
          if (!self && !wide &&
              (std::abs(dx) + std::abs(dy) + std::abs(dz)) != 1) {
            continue;
          }
          const ord xx = x + dx, yy = y + dy, zz = z + dz;
          if (xx < 0 || xx >= nx || yy < 0 || yy >= ny || zz < 0 ||
              zz >= nz) {
            continue;
          }
          const ord mid = (zz * ny + yy) * nx + xx;
          for (int d = 0; d < 3; ++d) {
            double v;
            if (self) {
              v = (c == d) ? static_cast<double>(degree) + 1.0 : coupling;
            } else {
              // Neighbor coupling: full 3x3 block.  Diagonal of the
              // block is the Laplacian stencil; off-diagonals mix
              // displacement components (shear-like terms).
              v = (c == d) ? -1.0 : -coupling * 0.25;
            }
            add(3 * mid + d, v);
          }
        }
      }
    }
  });
}

CsrMatrix heterogeneous2d(ord nx, ord ny, bool nine_point, double decades,
                          std::uint64_t seed) {
  const ord n = nx * ny;

  // Lognormal cell conductivity; edges use the harmonic mean of the two
  // cells they join (standard finite-volume treatment of jumps).
  auto kcell = [=](ord x, ord y) {
    return std::pow(10.0, decades * (hash01(static_cast<std::uint64_t>(y) * nx + x,
                                            seed) -
                                     0.5));
  };
  auto kedge = [=](ord x0, ord y0, ord x1, ord y1) {
    const double a = kcell(x0, y0), b = kcell(x1, y1);
    return 2.0 * a * b / (a + b);
  };

  // Closed-form count keeps the pow-heavy conductivity evaluations out
  // of the counting pass.
  const auto row_count = [=](ord i) {
    const ord x = i % nx, y = i / nx;
    offset cnt = 1;  // diagonal
    for (ord dy = -1; dy <= 1; ++dy) {
      for (ord dx = -1; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0) continue;
        if (!nine_point && dx != 0 && dy != 0) continue;
        const ord xx = x + dx, yy = y + dy;
        if (xx < 0 || xx >= nx || yy < 0 || yy >= ny) continue;
        ++cnt;
      }
    }
    return cnt;
  };

  return csr_from_rows(n, n, row_count, [=](ord i, auto&& add) {
    const ord x = i % nx, y = i / nx;
    // One sweep evaluates each pow-heavy edge weight exactly once,
    // staging the (col, value) pairs; the diagonal (accumulated in the
    // same neighbor order as the former serial path, so its bits are
    // unchanged) is then spliced into its ascending-column position.
    ord ncol[8];
    double nval[8];
    int cnt = 0;
    double diag = 0.0;
    for (ord dy = -1; dy <= 1; ++dy) {
      for (ord dx = -1; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0) continue;
        if (!nine_point && dx != 0 && dy != 0) continue;
        const ord xx = x + dx, yy = y + dy;
        if (xx < 0 || xx >= nx || yy < 0 || yy >= ny) continue;
        // Diagonal stencil legs are weighted half (9-pt consistency).
        const double k = ((dx != 0 && dy != 0) ? 0.5 : 1.0) *
                         kedge(x, y, xx, yy);
        diag += k;
        ncol[cnt] = yy * nx + xx;
        nval[cnt] = -k;
        ++cnt;
      }
    }
    // +1 keeps Dirichlet-like definiteness at the boundary.
    const double dval = diag + 1e-8 + 1.0 * kcell(x, y) * 1e-2;
    bool diag_emitted = false;
    for (int t = 0; t < cnt; ++t) {
      if (!diag_emitted && ncol[t] > i) {
        add(i, dval);
        diag_emitted = true;
      }
      add(ncol[t], nval[t]);
    }
    if (!diag_emitted) add(i, dval);
  });
}

CsrMatrix anisotropic3d(ord nx, ord ny, ord nz, double eps_y, double eps_z) {
  const ord n = nx * ny * nz;
  return csr_from_rows(n, n, [=](ord i, auto&& add) {
    const ord x = i % nx, y = (i / nx) % ny, z = i / (nx * ny);
    if (z > 0) add(i - nx * ny, -eps_z);
    if (y > 0) add(i - nx, -eps_y);
    if (x > 0) add(i - 1, -1.0);
    add(i, 2.0 + 2.0 * eps_y + 2.0 * eps_z);
    if (x < nx - 1) add(i + 1, -1.0);
    if (y < ny - 1) add(i + nx, -eps_y);
    if (z < nz - 1) add(i + nx * ny, -eps_z);
  });
}

void apply_diagonal_spread(CsrMatrix& a, double decades, std::uint64_t seed) {
  assert(a.rows == a.cols);
  std::vector<double> d(static_cast<std::size_t>(a.rows));
  par::parallel_for_grained(
      static_cast<std::size_t>(a.rows), [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
          d[i] = std::pow(
              10.0, decades * (hash01(static_cast<std::uint64_t>(i), seed) - 0.5));
        }
      });
  par::parallel_for_grained(
      static_cast<std::size_t>(a.rows), [&](std::size_t b, std::size_t e) {
        for (ord i = static_cast<ord>(b); i < static_cast<ord>(e); ++i) {
          for (offset k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
            const std::size_t kk = static_cast<std::size_t>(k);
            a.values[kk] *= d[static_cast<std::size_t>(i)] *
                            d[static_cast<std::size_t>(a.col_idx[kk])];
          }
        }
      });
}

}  // namespace tsbo::sparse
