#include "sparse/generators.hpp"

#include <cassert>
#include <cmath>

namespace tsbo::sparse {

double hash01(std::uint64_t id, std::uint64_t seed) {
  // SplitMix64 finalizer over (id, seed).
  std::uint64_t x = id * 0x9e3779b97f4a7c15ull + seed * 0xbf58476d1ce4e5b9ull + 1;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

namespace {

struct TripletSink {
  std::vector<Triplet> t;
  void add(ord r, ord c, double v) { t.push_back({r, c, v}); }
};

}  // namespace

CsrMatrix laplace2d_5pt(ord nx, ord ny) {
  const ord n = nx * ny;
  TripletSink s;
  s.t.reserve(static_cast<std::size_t>(n) * 5);
  for (ord y = 0; y < ny; ++y) {
    for (ord x = 0; x < nx; ++x) {
      const ord i = y * nx + x;
      s.add(i, i, 4.0);
      if (x > 0) s.add(i, i - 1, -1.0);
      if (x < nx - 1) s.add(i, i + 1, -1.0);
      if (y > 0) s.add(i, i - nx, -1.0);
      if (y < ny - 1) s.add(i, i + nx, -1.0);
    }
  }
  return csr_from_triplets(n, n, std::move(s.t));
}

CsrMatrix laplace2d_9pt(ord nx, ord ny) {
  const ord n = nx * ny;
  TripletSink s;
  s.t.reserve(static_cast<std::size_t>(n) * 9);
  for (ord y = 0; y < ny; ++y) {
    for (ord x = 0; x < nx; ++x) {
      const ord i = y * nx + x;
      s.add(i, i, 8.0);
      for (ord dy = -1; dy <= 1; ++dy) {
        for (ord dx = -1; dx <= 1; ++dx) {
          if (dx == 0 && dy == 0) continue;
          const ord xx = x + dx, yy = y + dy;
          if (xx < 0 || xx >= nx || yy < 0 || yy >= ny) continue;
          s.add(i, yy * nx + xx, -1.0);
        }
      }
    }
  }
  return csr_from_triplets(n, n, std::move(s.t));
}

CsrMatrix laplace3d_7pt(ord nx, ord ny, ord nz) {
  const ord n = nx * ny * nz;
  TripletSink s;
  s.t.reserve(static_cast<std::size_t>(n) * 7);
  for (ord z = 0; z < nz; ++z) {
    for (ord y = 0; y < ny; ++y) {
      for (ord x = 0; x < nx; ++x) {
        const ord i = (z * ny + y) * nx + x;
        s.add(i, i, 6.0);
        if (x > 0) s.add(i, i - 1, -1.0);
        if (x < nx - 1) s.add(i, i + 1, -1.0);
        if (y > 0) s.add(i, i - nx, -1.0);
        if (y < ny - 1) s.add(i, i + nx, -1.0);
        if (z > 0) s.add(i, i - nx * ny, -1.0);
        if (z < nz - 1) s.add(i, i + nx * ny, -1.0);
      }
    }
  }
  return csr_from_triplets(n, n, std::move(s.t));
}

CsrMatrix laplace3d_27pt(ord nx, ord ny, ord nz) {
  const ord n = nx * ny * nz;
  TripletSink s;
  s.t.reserve(static_cast<std::size_t>(n) * 27);
  for (ord z = 0; z < nz; ++z) {
    for (ord y = 0; y < ny; ++y) {
      for (ord x = 0; x < nx; ++x) {
        const ord i = (z * ny + y) * nx + x;
        s.add(i, i, 26.0);
        for (ord dz = -1; dz <= 1; ++dz) {
          for (ord dy = -1; dy <= 1; ++dy) {
            for (ord dx = -1; dx <= 1; ++dx) {
              if (dx == 0 && dy == 0 && dz == 0) continue;
              const ord xx = x + dx, yy = y + dy, zz = z + dz;
              if (xx < 0 || xx >= nx || yy < 0 || yy >= ny || zz < 0 ||
                  zz >= nz) {
                continue;
              }
              s.add(i, (zz * ny + yy) * nx + xx, -1.0);
            }
          }
        }
      }
    }
  }
  return csr_from_triplets(n, n, std::move(s.t));
}

CsrMatrix convection_diffusion3d(ord nx, ord ny, ord nz, double wx, double wy,
                                 double wz) {
  const ord n = nx * ny * nz;
  TripletSink s;
  s.t.reserve(static_cast<std::size_t>(n) * 7);
  // Diffusion 7-pt plus first-order upwind convection: for wind w > 0
  // the upwind neighbor is i-1, contributing (-w) off-diagonal and (+w)
  // to the diagonal.
  const double ax = std::abs(wx), ay = std::abs(wy), az = std::abs(wz);
  for (ord z = 0; z < nz; ++z) {
    for (ord y = 0; y < ny; ++y) {
      for (ord x = 0; x < nx; ++x) {
        const ord i = (z * ny + y) * nx + x;
        s.add(i, i, 6.0 + ax + ay + az);
        const double wxm = wx > 0 ? wx : 0.0, wxp = wx < 0 ? -wx : 0.0;
        const double wym = wy > 0 ? wy : 0.0, wyp = wy < 0 ? -wy : 0.0;
        const double wzm = wz > 0 ? wz : 0.0, wzp = wz < 0 ? -wz : 0.0;
        if (x > 0) s.add(i, i - 1, -1.0 - wxm);
        if (x < nx - 1) s.add(i, i + 1, -1.0 - wxp);
        if (y > 0) s.add(i, i - nx, -1.0 - wym);
        if (y < ny - 1) s.add(i, i + nx, -1.0 - wyp);
        if (z > 0) s.add(i, i - nx * ny, -1.0 - wzm);
        if (z < nz - 1) s.add(i, i + nx * ny, -1.0 - wzp);
      }
    }
  }
  return csr_from_triplets(n, n, std::move(s.t));
}

CsrMatrix elasticity3d(ord nx, ord ny, ord nz, bool wide, double coupling) {
  const ord nodes = nx * ny * nz;
  const ord n = 3 * nodes;
  TripletSink s;
  const int reach = wide ? 27 : 7;
  s.t.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(reach) * 3);

  auto node_id = [&](ord x, ord y, ord z) { return (z * ny + y) * nx + x; };

  for (ord z = 0; z < nz; ++z) {
    for (ord y = 0; y < ny; ++y) {
      for (ord x = 0; x < nx; ++x) {
        const ord nid = node_id(x, y, z);
        int degree = 0;
        for (ord dz = -1; dz <= 1; ++dz) {
          for (ord dy = -1; dy <= 1; ++dy) {
            for (ord dx = -1; dx <= 1; ++dx) {
              if (dx == 0 && dy == 0 && dz == 0) continue;
              if (!wide && (std::abs(dx) + std::abs(dy) + std::abs(dz)) != 1) {
                continue;
              }
              const ord xx = x + dx, yy = y + dy, zz = z + dz;
              if (xx < 0 || xx >= nx || yy < 0 || yy >= ny || zz < 0 ||
                  zz >= nz) {
                continue;
              }
              const ord mid = node_id(xx, yy, zz);
              ++degree;
              // Neighbor coupling: full 3x3 block.  Diagonal of the
              // block is the Laplacian stencil; off-diagonals mix
              // displacement components (shear-like terms).
              for (int c = 0; c < 3; ++c) {
                for (int d = 0; d < 3; ++d) {
                  const double v = (c == d) ? -1.0 : -coupling * 0.25;
                  s.add(3 * nid + c, 3 * mid + d, v);
                }
              }
            }
          }
        }
        // Node-diagonal 3x3 block: dominant enough to keep the operator
        // positive definite in its symmetric version.
        for (int c = 0; c < 3; ++c) {
          for (int d = 0; d < 3; ++d) {
            const double v =
                (c == d) ? static_cast<double>(degree) + 1.0 : coupling;
            s.add(3 * nid + c, 3 * nid + d, v);
          }
        }
      }
    }
  }
  return csr_from_triplets(n, n, std::move(s.t));
}

CsrMatrix heterogeneous2d(ord nx, ord ny, bool nine_point, double decades,
                          std::uint64_t seed) {
  const ord n = nx * ny;
  TripletSink s;
  s.t.reserve(static_cast<std::size_t>(n) * (nine_point ? 9 : 5));

  // Lognormal cell conductivity; edges use the harmonic mean of the two
  // cells they join (standard finite-volume treatment of jumps).
  auto kcell = [&](ord x, ord y) {
    return std::pow(10.0, decades * (hash01(static_cast<std::uint64_t>(y) * nx + x,
                                            seed) -
                                     0.5));
  };
  auto kedge = [&](ord x0, ord y0, ord x1, ord y1) {
    const double a = kcell(x0, y0), b = kcell(x1, y1);
    return 2.0 * a * b / (a + b);
  };

  for (ord y = 0; y < ny; ++y) {
    for (ord x = 0; x < nx; ++x) {
      const ord i = y * nx + x;
      double diag = 0.0;
      for (ord dy = -1; dy <= 1; ++dy) {
        for (ord dx = -1; dx <= 1; ++dx) {
          if (dx == 0 && dy == 0) continue;
          if (!nine_point && dx != 0 && dy != 0) continue;
          const ord xx = x + dx, yy = y + dy;
          if (xx < 0 || xx >= nx || yy < 0 || yy >= ny) continue;
          // Diagonal stencil legs are weighted half (9-pt consistency).
          const double w = (dx != 0 && dy != 0) ? 0.5 : 1.0;
          const double k = w * kedge(x, y, xx, yy);
          s.add(i, yy * nx + xx, -k);
          diag += k;
        }
      }
      // +1 keeps Dirichlet-like definiteness at the boundary.
      s.add(i, i, diag + 1e-8 + 1.0 * kcell(x, y) * 1e-2);
    }
  }
  return csr_from_triplets(n, n, std::move(s.t));
}

CsrMatrix anisotropic3d(ord nx, ord ny, ord nz, double eps_y, double eps_z) {
  const ord n = nx * ny * nz;
  TripletSink s;
  s.t.reserve(static_cast<std::size_t>(n) * 7);
  for (ord z = 0; z < nz; ++z) {
    for (ord y = 0; y < ny; ++y) {
      for (ord x = 0; x < nx; ++x) {
        const ord i = (z * ny + y) * nx + x;
        s.add(i, i, 2.0 + 2.0 * eps_y + 2.0 * eps_z);
        if (x > 0) s.add(i, i - 1, -1.0);
        if (x < nx - 1) s.add(i, i + 1, -1.0);
        if (y > 0) s.add(i, i - nx, -eps_y);
        if (y < ny - 1) s.add(i, i + nx, -eps_y);
        if (z > 0) s.add(i, i - nx * ny, -eps_z);
        if (z < nz - 1) s.add(i, i + nx * ny, -eps_z);
      }
    }
  }
  return csr_from_triplets(n, n, std::move(s.t));
}

void apply_diagonal_spread(CsrMatrix& a, double decades, std::uint64_t seed) {
  assert(a.rows == a.cols);
  std::vector<double> d(static_cast<std::size_t>(a.rows));
  for (ord i = 0; i < a.rows; ++i) {
    d[static_cast<std::size_t>(i)] = std::pow(
        10.0, decades * (hash01(static_cast<std::uint64_t>(i), seed) - 0.5));
  }
  for (ord i = 0; i < a.rows; ++i) {
    for (offset k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      const std::size_t kk = static_cast<std::size_t>(k);
      a.values[kk] *= d[static_cast<std::size_t>(i)] *
                      d[static_cast<std::size_t>(a.col_idx[kk])];
    }
  }
}

}  // namespace tsbo::sparse
