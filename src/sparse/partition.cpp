#include "sparse/partition.hpp"

#include <algorithm>
#include <cassert>

namespace tsbo::sparse {

RowPartition::RowPartition(ord n, int nranks) : n_(n) {
  assert(n >= 0 && nranks >= 1);
  begin_.resize(static_cast<std::size_t>(nranks) + 1);
  for (int r = 0; r <= nranks; ++r) {
    if (r == nranks) {
      begin_[static_cast<std::size_t>(r)] = n;
    } else {
      begin_[static_cast<std::size_t>(r)] =
          static_cast<ord>(par::block_row_range(n, nranks, r).begin);
    }
  }
}

int RowPartition::owner(ord row) const {
  assert(row >= 0 && row < n_);
  const auto it = std::upper_bound(begin_.begin(), begin_.end(), row);
  return static_cast<int>(it - begin_.begin()) - 1;
}

}  // namespace tsbo::sparse
