#include "sparse/mm_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace tsbo::sparse {

CsrMatrix read_matrix_market(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("mm_io: empty stream");
  }
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket" || object != "matrix" ||
      format != "coordinate" || field != "real") {
    throw std::runtime_error("mm_io: unsupported header: " + line);
  }
  const bool symmetric = symmetry == "symmetric";
  if (!symmetric && symmetry != "general") {
    throw std::runtime_error("mm_io: unsupported symmetry: " + symmetry);
  }

  // Skip comments.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  long rows = 0, cols = 0, nnz = 0;
  {
    std::istringstream sizes(line);
    if (!(sizes >> rows >> cols >> nnz)) {
      throw std::runtime_error("mm_io: bad size line: " + line);
    }
  }

  std::vector<Triplet> t;
  t.reserve(static_cast<std::size_t>(symmetric ? 2 * nnz : nnz));
  for (long k = 0; k < nnz; ++k) {
    long i = 0, j = 0;
    double v = 0.0;
    if (!(in >> i >> j >> v)) {
      throw std::runtime_error("mm_io: truncated entry list");
    }
    t.push_back({static_cast<ord>(i - 1), static_cast<ord>(j - 1), v});
    if (symmetric && i != j) {
      t.push_back({static_cast<ord>(j - 1), static_cast<ord>(i - 1), v});
    }
  }
  return csr_from_triplets(static_cast<ord>(rows), static_cast<ord>(cols),
                           std::move(t));
}

CsrMatrix read_matrix_market_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("mm_io: cannot open " + path);
  return read_matrix_market(f);
}

void write_matrix_market(std::ostream& out, const CsrMatrix& a) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << a.rows << " " << a.cols << " " << a.nnz() << "\n";
  out.precision(17);
  for (ord i = 0; i < a.rows; ++i) {
    for (offset k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      out << (i + 1) << " " << (a.col_idx[static_cast<std::size_t>(k)] + 1)
          << " " << a.values[static_cast<std::size_t>(k)] << "\n";
    }
  }
}

void write_matrix_market_file(const std::string& path, const CsrMatrix& a) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("mm_io: cannot open " + path);
  write_matrix_market(f, a);
}

}  // namespace tsbo::sparse
