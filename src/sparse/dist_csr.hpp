#pragma once
// Distributed CSR with halo exchange (Tpetra-style import).
//
// Each rank owns a contiguous block of rows (1-D block row format); the
// off-rank vector entries its rows touch are "ghosts" gathered by a
// neighbor exchange before every product.  This is the paper's standard
// (non-communication-avoiding) matrix-powers substrate: SpMV applied s
// times in sequence, each with neighborhood communication (Section III).

#include "par/communicator.hpp"
#include "sparse/csr.hpp"
#include "sparse/partition.hpp"
#include "util/timer.hpp"
#include "util/aligned.hpp"

#include <span>
#include <vector>

namespace tsbo::sparse {

class DistCsr {
 public:
  /// Builds rank `rank`'s piece of `global` (the global matrix is only
  /// read, not retained).  All ranks must use the same partition.
  DistCsr(const CsrMatrix& global, const RowPartition& partition, int rank);

  [[nodiscard]] ord n_global() const { return partition_.n(); }
  [[nodiscard]] ord n_local() const { return local_.rows; }
  [[nodiscard]] ord n_ghost() const { return static_cast<ord>(ghost_gid_.size()); }
  [[nodiscard]] ord row_begin() const { return partition_.begin(rank_); }
  [[nodiscard]] const RowPartition& partition() const { return partition_; }
  [[nodiscard]] const CsrMatrix& local_matrix() const { return local_; }
  /// Global nnz summed over ranks (identical on all ranks).
  [[nodiscard]] offset nnz_local() const { return local_.nnz(); }

  /// y_local = A x: gathers ghosts via one neighbor-exchange round on
  /// `comm`, then multiplies the local rows.  `timers` (optional)
  /// receives "spmv/comm" and "spmv/local" phases.
  void spmv(par::Communicator& comm, std::span<const double> x_local,
            std::span<double> y_local, util::PhaseTimers* timers = nullptr) const;

  /// Local-only product assuming ghosts are already in place (used by
  /// preconditioners that reuse a gathered halo).
  void spmv_local_only(std::span<const double> x_local,
                       std::span<double> y_local) const;

  /// Performs just the halo gather into the internal buffer.
  void gather_ghosts(par::Communicator& comm,
                     std::span<const double> x_local) const;

 private:
  int rank_;
  RowPartition partition_;
  CsrMatrix local_;             // columns remapped: [0,nlocal) own, then ghosts
  std::vector<ord> ghost_gid_;  // sorted global ids of ghost columns
  std::vector<int> ghost_owner_;
  std::vector<ord> ghost_peer_offset_;  // gid - peer row_begin
  std::size_t max_recv_bytes_ = 0;      // largest per-peer pull
  mutable util::aligned_vector<double> xbuf_;    // [x_local | ghosts]
};

}  // namespace tsbo::sparse
