#pragma once
// Distributed CSR with halo exchange (Tpetra-style import).
//
// Each rank owns a contiguous block of rows (1-D block row format); the
// off-rank vector entries its rows touch are "ghosts" gathered by a
// neighbor exchange before every product.  This is the paper's standard
// (non-communication-avoiding) matrix-powers substrate: SpMV applied s
// times in sequence, each with neighborhood communication (Section III).
//
// Split-phase overlap: the local rows are partitioned deterministically
// (ascending row order) into an INTERIOR block — rows touching only
// owned columns — and a BOUNDARY block — rows with at least one ghost
// column.  spmv() runs exchange_begin -> interior SpMV -> ghost gather
// + exchange_end -> boundary SpMV, hiding the modeled p2p latency
// behind the interior rows exactly like an MPI code posting
// Irecv/Isend around its interior sweep.  Both blocks reuse the
// spmv_rows per-row kernel unchanged, so the split product is bitwise
// identical to the unsplit one at any rank/thread count.

#include "dense/matrix.hpp"
#include "par/communicator.hpp"
#include "sparse/csr.hpp"
#include "sparse/partition.hpp"
#include "util/timer.hpp"
#include "util/aligned.hpp"

#include <span>
#include <vector>

namespace tsbo::sparse {

class DistCsr {
 public:
  /// Builds rank `rank`'s piece of `global` (the global matrix is only
  /// read, not retained).  All ranks must use the same partition.
  DistCsr(const CsrMatrix& global, const RowPartition& partition, int rank);

  [[nodiscard]] ord n_global() const { return partition_.n(); }
  [[nodiscard]] ord n_local() const { return local_.rows; }
  [[nodiscard]] ord n_ghost() const { return static_cast<ord>(ghost_gid_.size()); }
  [[nodiscard]] ord row_begin() const { return partition_.begin(rank_); }
  [[nodiscard]] const RowPartition& partition() const { return partition_; }
  [[nodiscard]] const CsrMatrix& local_matrix() const { return local_; }
  /// Global nnz summed over ranks (identical on all ranks).
  [[nodiscard]] offset nnz_local() const { return local_.nnz(); }

  /// Interior/boundary row split (ghost-free vs ghost-touching rows).
  /// Row i of interior_matrix() is local row interior_rows()[i]; same
  /// for the boundary block.  Exposed for halo-reusing consumers
  /// (preconditioners, tests).  Footprint note: the blocks replicate
  /// local_'s entries (interior nnz + boundary nnz == local nnz), so a
  /// rank stores its rows twice — the price of serving both the
  /// overlapped split product and the row-ordered local_matrix()
  /// consumers (norm estimates, preconditioner setup) without a merge
  /// on every access.
  [[nodiscard]] const CsrMatrix& interior_matrix() const { return interior_; }
  [[nodiscard]] const CsrMatrix& boundary_matrix() const { return boundary_; }
  [[nodiscard]] std::span<const ord> interior_rows() const {
    return interior_rows_;
  }
  [[nodiscard]] std::span<const ord> boundary_rows() const {
    return boundary_rows_;
  }

  /// Ghost-stripped rank-local diagonal block (block-Jacobi substrate
  /// shared by the local preconditioners).  Interior rows are copied
  /// verbatim — by construction they hold no ghost columns — and only
  /// boundary rows are filtered; entry order per row is preserved, so
  /// the result is identical to filtering every row.
  [[nodiscard]] CsrMatrix local_diagonal_block() const;

  /// y_local = A x with compute-communication overlap: one neighbor
  /// exchange is opened on `comm`, the interior rows are multiplied
  /// while the modeled halo latency progresses, then the ghosts are
  /// gathered and the boundary rows finish.  `timers` (optional)
  /// receives "spmv/comm" and "spmv/local" phases.
  void spmv(par::Communicator& comm, std::span<const double> x_local,
            std::span<double> y_local, util::PhaseTimers* timers = nullptr) const;

  /// Multi-column product Y = A X (rank-local row blocks, column-major
  /// views) with ONE halo exchange regardless of the column count k:
  /// the owned entries are packed k-interleaved (entry (j, t) at
  /// j*k + t) so each ghost row travels as k consecutive values, the
  /// per-peer wire volume scales by k, and the interior/boundary split
  /// with split-phase overlap is preserved exactly as in spmv().  The
  /// pack completes before exchange_begin publishes the buffer, so
  /// peers always read a consistent interleaved span.  Per-column
  /// accumulation uses the plain serial row kernel (no SIMD gather) —
  /// bits are thread- and rank-count invariant, but a k=1 spmm is NOT
  /// bitwise-identical to spmv() on gather-vectorized wide rows; the
  /// block solver delegates k=1 to the single-vector path instead.
  void spmm(par::Communicator& comm, dense::ConstMatrixView x_local,
            dense::MatrixView y_local, util::PhaseTimers* timers = nullptr) const;

  /// Local-only product assuming ghosts are already in place (used by
  /// preconditioners that reuse a gathered halo).
  void spmv_local_only(std::span<const double> x_local,
                       std::span<double> y_local) const;

  /// Performs just the halo gather into the internal buffer.
  void gather_ghosts(par::Communicator& comm,
                     std::span<const double> x_local) const;

  /// Approximate heap footprint of this rank's piece: the three CSR
  /// blocks, the ghost/comm-plan arrays, and the halo buffer.  Used by
  /// the operator cache's byte budget.
  [[nodiscard]] std::size_t footprint_bytes() const {
    return local_.storage_bytes() + interior_.storage_bytes() +
           boundary_.storage_bytes() +
           (interior_rows_.capacity() + boundary_rows_.capacity() +
            ghost_gid_.capacity() + ghost_peer_offset_.capacity()) *
               sizeof(ord) +
           ghost_owner_.capacity() * sizeof(int) +
           (peer_recv_bytes_.capacity() + peer_recv_bytes_k_.capacity()) *
               sizeof(std::size_t) +
           (xbuf_.capacity() + xkbuf_.capacity()) * sizeof(double);
  }

 private:
  /// Copies peers' published values into the ghost tail of xbuf_;
  /// valid only between exchange_begin and exchange_end.
  void fill_ghosts(par::Communicator& comm) const;

  /// Fault seam of spmv(): consults the `spmv.interior` and
  /// `comm.exchange` sites once per apply on the completed y (see the
  /// definition for the rank-count-invariance argument).
  void consult_spmv_faults(par::Communicator& comm,
                           std::span<double> y_local) const;

  int rank_;
  RowPartition partition_;
  CsrMatrix local_;             // columns remapped: [0,nlocal) own, then ghosts
  CsrMatrix interior_;          // ghost-free rows (row i -> interior_rows_[i])
  CsrMatrix boundary_;          // ghost-touching rows
  std::vector<ord> interior_rows_;
  std::vector<ord> boundary_rows_;
  std::vector<ord> ghost_gid_;  // sorted global ids of ghost columns
  std::vector<int> ghost_owner_;
  std::vector<ord> ghost_peer_offset_;  // gid - peer row_begin
  std::vector<std::size_t> peer_recv_bytes_;  // per-peer pull sizes
  mutable util::aligned_vector<double> xbuf_;    // [x_local | ghosts]
  // spmm scratch, sized lazily per apply: the k-interleaved operand
  // [owned | ghosts] and the k-scaled per-peer pull sizes.
  mutable util::aligned_vector<double> xkbuf_;
  mutable std::vector<std::size_t> peer_recv_bytes_k_;
};

}  // namespace tsbo::sparse
