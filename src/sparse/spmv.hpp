#pragma once
// Sparse matrix-vector products.

#include "sparse/csr.hpp"

#include <span>

namespace tsbo::sparse {

/// y = A x
void spmv(const CsrMatrix& a, std::span<const double> x, std::span<double> y);

/// y = alpha * A x + beta * y
void spmv(double alpha, const CsrMatrix& a, std::span<const double> x,
          double beta, std::span<double> y);

/// Rows [begin, end) only: y[begin..end) = A(begin..end, :) x.
/// Building block for threaded and rank-local products.
void spmv_rows(const CsrMatrix& a, ord begin, ord end,
               std::span<const double> x, std::span<double> y);

}  // namespace tsbo::sparse
