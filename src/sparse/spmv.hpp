#pragma once
// Sparse matrix-vector products.
//
// All entry points share one pointer-based row kernel and are threaded
// over disjoint row ranges via par::ThreadPool; per-row accumulation
// order is fixed by the CSR layout, so results are bit-identical at any
// thread count.  SPMD rank threads always take the serial path (see
// par::ScopedSerial); other concurrent callers degrade automatically.

#include "sparse/csr.hpp"

#include <span>

namespace tsbo::sparse {

/// y = A x
void spmv(const CsrMatrix& a, std::span<const double> x, std::span<double> y);

/// y = alpha * A x + beta * y
void spmv(double alpha, const CsrMatrix& a, std::span<const double> x,
          double beta, std::span<double> y);

/// Rows [begin, end) only: y[begin..end) = A(begin..end, :) x.
/// Building block for threaded and rank-local products.
void spmv_rows(const CsrMatrix& a, ord begin, ord end,
               std::span<const double> x, std::span<double> y);

/// Row-mapped product for split row sets: row i of `a` is scattered to
/// y[rows[i]].  Same per-row kernel and accumulation order as
/// spmv_rows, so a partition of a matrix into row-subset blocks (e.g.
/// DistCsr's interior/boundary split) reproduces the unsplit product
/// bit for bit at any thread count.
void spmv_rows_mapped(const CsrMatrix& a, std::span<const ord> rows,
                      std::span<const double> x, std::span<double> y);

/// Multi-column row-mapped product: row i of `a` is scattered to
/// y[t*ldy + rows[i]] for each of the k right-hand columns.  The input
/// is k-interleaved — entry (j, t) of the logical n x k operand lives
/// at xk[j*k + t] — so one pass over the matrix streams all k columns.
/// Each column's per-row accumulation runs in plain serial order (no
/// SIMD gather), independent of the other columns; the row partition
/// across threads cannot change the bits.
void spmm_rows_mapped(const CsrMatrix& a, std::span<const ord> rows,
                      const double* xk, ord k, double* y, std::size_t ldy);

}  // namespace tsbo::sparse
