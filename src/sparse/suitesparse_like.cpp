#include "sparse/suitesparse_like.hpp"

#include "sparse/generators.hpp"

#include <cmath>
#include <stdexcept>

namespace tsbo::sparse {

namespace {

ord cube_side(ord target_n) {
  return static_cast<ord>(std::lround(std::cbrt(static_cast<double>(target_n))));
}

ord square_side(ord target_n) {
  return static_cast<ord>(std::lround(std::sqrt(static_cast<double>(target_n))));
}

}  // namespace

std::vector<std::string> surrogate_names() {
  return {"atmosmodl",     "dielFilterV2real", "ecology2",    "ML_Geer",
          "thermal2",      "HTC_336_4438",     "Ga41As41H72"};
}

std::vector<std::string> fig9_surrogate_names() {
  // Paper Fig. 9 runs positive indefinite matrices of dimension
  // 200k-300k; it names HTC_336_4438 and Ga41As41H72 as the two that
  // break condition (9).
  return {"atmosmodl", "ecology2", "thermal2", "dielFilterV2real",
          "HTC_336_4438", "Ga41As41H72"};
}

std::vector<std::string> table4_surrogate_names() {
  return {"atmosmodl", "dielFilterV2real", "ecology2", "ML_Geer", "thermal2"};
}

Surrogate make_surrogate(const std::string& name, ord target_n) {
  Surrogate s;
  s.name = name;
  if (name == "atmosmodl") {
    // CFD, numerically non-symmetric, nnz/n = 6.9.
    const ord m = cube_side(target_n);
    s.character = "CFD, numerically non-symmetric (convection-diffusion)";
    s.symmetric = false;
    s.matrix = convection_diffusion3d(m, m, m, 1.0, 0.6, 0.3);
  } else if (name == "dielFilterV2real") {
    // Electromagnetics, symmetric indefinite, heavy rows (nnz/n = 41.9;
    // our 27-pt surrogate carries 27).
    const ord m = cube_side(target_n);
    s.character = "electromagnetics, symmetric indefinite (shifted 27-pt)";
    s.symmetric = true;
    s.matrix = laplace3d_27pt(m, m, m);
    for (ord i = 0; i < s.matrix.rows; ++i) {
      for (offset k = s.matrix.row_ptr[i]; k < s.matrix.row_ptr[i + 1]; ++k) {
        const auto kk = static_cast<std::size_t>(k);
        if (s.matrix.col_idx[kk] == i) s.matrix.values[kk] -= 13.0;  // indefinite shift
      }
    }
  } else if (name == "ecology2") {
    // Circuit/landscape, SPD, nnz/n = 5.0.
    const ord m = square_side(target_n);
    s.character = "SPD 5-pt heterogeneous diffusion";
    s.symmetric = true;
    s.matrix = heterogeneous2d(m, m, /*nine_point=*/false, /*decades=*/3.0,
                               /*seed=*/17);
  } else if (name == "ML_Geer") {
    // Structural, numerically non-symmetric, nnz/n = 73.7.
    const ord m = cube_side(target_n / 3);
    s.character = "structural elasticity, heavy rows, non-symmetric";
    s.symmetric = false;
    s.matrix = elasticity3d(m, m, m, /*wide=*/true, /*coupling=*/0.3);
    // Non-symmetric perturbation of the off-diagonal blocks.
    for (ord i = 0; i < s.matrix.rows; ++i) {
      for (offset k = s.matrix.row_ptr[i]; k < s.matrix.row_ptr[i + 1]; ++k) {
        const auto kk = static_cast<std::size_t>(k);
        const ord j = s.matrix.col_idx[kk];
        if (j > i) {
          s.matrix.values[kk] *=
              1.0 + 0.05 * (hash01(static_cast<std::uint64_t>(i) * s.matrix.cols +
                                       static_cast<std::uint64_t>(j),
                                   23) -
                            0.5);
        }
      }
    }
  } else if (name == "thermal2") {
    // Unstructured thermal FEM, SPD, nnz/n = 7.0.
    const ord m = square_side(target_n);
    s.character = "SPD 9-pt thermal diffusion with coefficient jumps";
    s.symmetric = true;
    s.matrix = heterogeneous2d(m, m, /*nine_point=*/true, /*decades=*/4.0,
                               /*seed=*/29);
  } else if (name == "HTC_336_4438") {
    // Ill-conditioned; breaks the two-stage condition (9) in Fig. 9.
    const ord m = cube_side(target_n);
    s.character = "extreme anisotropy; very ill-conditioned";
    s.symmetric = true;
    s.matrix = anisotropic3d(m, m, m, 1e-5, 1e-7);
    apply_diagonal_spread(s.matrix, 4.0, 31);
  } else if (name == "Ga41As41H72") {
    // Ill-conditioned wide spectrum; also breaks condition (9).
    const ord m = cube_side(target_n);
    s.character = "wide-spread spectrum; very ill-conditioned";
    s.symmetric = true;
    s.matrix = laplace3d_27pt(m, m, m);
    apply_diagonal_spread(s.matrix, 7.0, 37);
  } else {
    throw std::invalid_argument("make_surrogate: unknown matrix " + name);
  }
  return s;
}

}  // namespace tsbo::sparse
