#pragma once
// Column-major dense matrix storage and lightweight views.
//
// All dense kernels in tsbo operate on (Const)MatrixView: a non-owning
// {data, rows, cols, ld} quadruple in column-major (BLAS/LAPACK) layout.
// Matrix owns storage via std::vector and hands out views.  Column-major
// is chosen because the library's hot loops are tall-skinny panel
// operations (Q^T V, V - Q R, V R^{-1}) whose unit-stride direction is
// down a column.

#include "util/aligned.hpp"

#include <cassert>
#include <cstddef>
#include <span>

namespace tsbo::dense {

using index_t = int;

/// Non-owning read-only view of a column-major matrix.
struct ConstMatrixView {
  const double* data = nullptr;
  index_t rows = 0;
  index_t cols = 0;
  index_t ld = 0;  // leading dimension (>= rows)

  [[nodiscard]] const double* col(index_t j) const {
    assert(j >= 0 && j < cols);
    return data + static_cast<std::size_t>(j) * static_cast<std::size_t>(ld);
  }
  [[nodiscard]] double operator()(index_t i, index_t j) const {
    assert(i >= 0 && i < rows);
    return col(j)[i];
  }
  /// Sub-block view [r0, r0+nr) x [c0, c0+nc).  Empty blocks at the
  /// boundary (r0 == rows or c0 == cols with zero extent) are valid, so
  /// the pointer is formed directly rather than through col()'s assert.
  [[nodiscard]] ConstMatrixView block(index_t r0, index_t c0, index_t nr,
                                      index_t nc) const {
    assert(r0 >= 0 && c0 >= 0 && r0 + nr <= rows && c0 + nc <= cols);
    return {data + static_cast<std::size_t>(c0) * static_cast<std::size_t>(ld) +
                static_cast<std::size_t>(r0),
            nr, nc, ld};
  }
  [[nodiscard]] ConstMatrixView columns(index_t c0, index_t nc) const {
    return block(0, c0, rows, nc);
  }
  [[nodiscard]] bool empty() const { return rows == 0 || cols == 0; }
};

/// Non-owning mutable view of a column-major matrix.
struct MatrixView {
  double* data = nullptr;
  index_t rows = 0;
  index_t cols = 0;
  index_t ld = 0;

  [[nodiscard]] double* col(index_t j) const {
    assert(j >= 0 && j < cols);
    return data + static_cast<std::size_t>(j) * static_cast<std::size_t>(ld);
  }
  [[nodiscard]] double& operator()(index_t i, index_t j) const {
    assert(i >= 0 && i < rows);
    return col(j)[i];
  }
  [[nodiscard]] MatrixView block(index_t r0, index_t c0, index_t nr,
                                 index_t nc) const {
    assert(r0 >= 0 && c0 >= 0 && r0 + nr <= rows && c0 + nc <= cols);
    return {data + static_cast<std::size_t>(c0) * static_cast<std::size_t>(ld) +
                static_cast<std::size_t>(r0),
            nr, nc, ld};
  }
  [[nodiscard]] MatrixView columns(index_t c0, index_t nc) const {
    return block(0, c0, rows, nc);
  }
  [[nodiscard]] bool empty() const { return rows == 0 || cols == 0; }

  // NOLINTNEXTLINE(google-explicit-constructor): views decay like spans.
  operator ConstMatrixView() const { return {data, rows, cols, ld}; }
};

/// Owning column-major matrix (ld == rows).
///
/// Storage is 64-byte aligned (util::AlignedBuffer) and zero-filled by
/// a parallel first touch, so the pages of a tall panel land on the
/// threads that stream it; copy and move preserve the alignment
/// invariant (copy re-allocates aligned and re-touches in parallel,
/// move transfers the aligned allocation).
class Matrix {
 public:
  Matrix() = default;
  Matrix(index_t rows, index_t cols)
      : rows_(rows),
        cols_(cols),
        data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols)) {
    assert(rows >= 0 && cols >= 0);
  }

  [[nodiscard]] index_t rows() const { return rows_; }
  [[nodiscard]] index_t cols() const { return cols_; }

  [[nodiscard]] double& operator()(index_t i, index_t j) {
    return data_[static_cast<std::size_t>(j) * rows_ + i];
  }
  [[nodiscard]] double operator()(index_t i, index_t j) const {
    return data_[static_cast<std::size_t>(j) * rows_ + i];
  }

  [[nodiscard]] double* col(index_t j) {
    return data_.data() + static_cast<std::size_t>(j) * rows_;
  }
  [[nodiscard]] const double* col(index_t j) const {
    return data_.data() + static_cast<std::size_t>(j) * rows_;
  }

  [[nodiscard]] MatrixView view() {
    return {data_.data(), rows_, cols_, rows_};
  }
  [[nodiscard]] ConstMatrixView view() const {
    return {data_.data(), rows_, cols_, rows_};
  }
  [[nodiscard]] MatrixView block(index_t r0, index_t c0, index_t nr, index_t nc) {
    return view().block(r0, c0, nr, nc);
  }
  [[nodiscard]] ConstMatrixView block(index_t r0, index_t c0, index_t nr,
                                      index_t nc) const {
    return view().block(r0, c0, nr, nc);
  }

  [[nodiscard]] std::span<double> data() { return data_.span(); }
  [[nodiscard]] std::span<const double> data() const { return data_.span(); }

  void set_zero() { data_.set_zero(); }

  /// Identity in the top-left min(rows, cols) block, zero elsewhere.
  static Matrix identity(index_t n);

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  util::AlignedBuffer data_;
};

/// Deep copy of a view into an owning Matrix.
Matrix copy_of(ConstMatrixView a);

/// Copies src into dst (shapes must match; ld may differ).
void copy(ConstMatrixView src, MatrixView dst);

/// Sets all entries of the view to v.
void fill(MatrixView a, double v);

/// Max-abs entry difference between two equal-shaped views.
double max_abs_diff(ConstMatrixView a, ConstMatrixView b);

}  // namespace tsbo::dense
