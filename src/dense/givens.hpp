#pragma once
// Givens rotations for the GMRES least-squares solve.
//
// GMRES minimizes ||gamma*e1 - H y|| over the Hessenberg system; the
// standard technique maintains a QR factorization of H by one Givens
// rotation per column, giving the residual norm for free as the last
// entry of the rotated right-hand side (paper Fig. 1 lines 14-17).

#include "dense/matrix.hpp"

#include <span>
#include <vector>

namespace tsbo::dense {

/// One plane rotation: [c s; -s c]^T applied to rows (i, i+1).
struct GivensRotation {
  double c = 1.0;
  double s = 0.0;
};

/// Computes c, s such that [c s; -s c]^T [a; b] = [r; 0], r >= 0 and
/// returns r.  Robust (hypot-based) against over/underflow.
GivensRotation make_givens(double a, double b, double& r);

/// Progressive least-squares solver for Hessenberg systems.
///
/// Columns of H arrive block by block (s at a time in s-step GMRES, one
/// at a time in standard GMRES).  append_column() rotates the new column
/// through all previous rotations, generates one new rotation, and
/// updates the rotated RHS; residual_norm() is then the current GMRES
/// residual estimate.  solve_y() back-substitutes for the minimizer.
class HessenbergLeastSquares {
 public:
  /// max_cols: restart length m; rhs0: initial residual norm gamma.
  HessenbergLeastSquares(index_t max_cols, double rhs0);

  /// Appends column k (0-based) of the Hessenberg matrix: h has k+2
  /// leading entries (H(0..k+1, k)).
  void append_column(std::span<const double> h);

  /// |last rotated RHS entry| = current minimal residual norm.
  [[nodiscard]] double residual_norm() const { return std::abs(g_[ncols_]); }

  [[nodiscard]] index_t cols() const { return ncols_; }

  /// Solves the triangular system for y (size == cols()).
  [[nodiscard]] std::vector<double> solve_y() const;

 private:
  Matrix r_;                          // rotated upper-triangular factor
  std::vector<GivensRotation> rot_;
  std::vector<double> g_;             // rotated RHS
  index_t ncols_ = 0;
};

}  // namespace tsbo::dense
