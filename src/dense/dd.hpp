#pragma once
// Double-double (compensated) matrix kernels for mixed-precision
// CholQR (paper related work: Yamazaki et al. [26], [27]).
//
// CholQR computes chol(V^T V); since kappa(V^T V) = kappa(V)^2, plain
// double arithmetic breaks down once kappa(V) exceeds ~eps^{-1/2}
// ~ 6.7e7 — *even if the Gram matrix were computed exactly*, because
// the factorization itself sees an indefinite matrix after rounding.
// The mixed-precision remedy therefore keeps the Gram matrix in
// software double-double (u_dd = 2^-104, util/eft.hpp) from the
// accumulation **through the Cholesky factorization**, and only rounds
// the triangular factor R back to double for the TRSM.  That moves the
// breakdown cliff from kappa(V) ~ eps^{-1/2} ~ 6.7e7 out to
// kappa(V) ~ u_dd^{-1/2} ~ 1e15, i.e. CholQR2 with a dd Gram delivers
// O(eps) orthogonality for any numerically full-rank (in double) V.
//
// Precision contract of the pair-output kernels: for double inputs the
// products are exact (two_prod) and the accumulation is normalized
// double-double, so an m-term Gram entry carries relative error
// <= ~m * u_dd ~ m * 4.9e-32 — indistinguishable from exact for every
// double-representable input of practical size.
//
// Determinism contract: gemm_tn_dd follows the kernel layer's
// fixed-chunk reduction scheme (par/config.hpp) — chunk boundaries
// depend only on the row count and per-chunk dd partials combine in
// ascending chunk order, so serial and threaded runs are bit-identical
// at any thread count.

#include "dense/cholesky.hpp"
#include "dense/matrix.hpp"
#include "util/eft.hpp"

namespace tsbo::dense {

// Scalar double-double arithmetic, re-exported from util/eft.hpp (the
// par layer shares the same definitions for its dd all-reduce).
using eft::dd;
using eft::quick_two_sum;
using eft::two_prod;
using eft::two_sum;
using eft::dd_add;
using eft::dd_div;
using eft::dd_mul;
using eft::dd_neg;
using eft::dd_sqrt;
using eft::dd_sub;

/// Rounds back to working precision.
inline double dd_to_double(const dd& x) { return eft::to_double(x); }

/// Compensated dot product: exact products accumulated in normalized
/// double-double, rounded on return.
double dot_dd(const double* x, const double* y, index_t n);

/// Gram matrix G = A^T A with double-double accumulation, rounded to
/// double on output (bitwise symmetric).  Convenience wrapper over the
/// pair-output gemm_tn_dd; use the pair output + potrf_upper_dd when
/// the factorization must also run in dd.
void gram_dd(ConstMatrixView a, MatrixView g);

/// Block inner product C = A^T B with double-double accumulation,
/// rounded to double on output.
void gemm_tn_dd(ConstMatrixView a, ConstMatrixView b, MatrixView c);

/// Pair-output block inner product: C = A^T B accumulated and returned
/// as the unevaluated normalized sum c_hi + c_lo.  This is the kernel
/// of mixed-precision CholQR — thread-parallel with the deterministic
/// fixed-chunk reduction (bit-identical at any thread count).
void gemm_tn_dd(ConstMatrixView a, ConstMatrixView b, MatrixView c_hi,
                MatrixView c_lo);

/// Elementwise rounding out = hi + lo of a pair-form matrix.
void dd_round(ConstMatrixView hi, ConstMatrixView lo, MatrixView out);

/// In-place upper Cholesky of the pair-form matrix A = a_hi + a_lo,
/// entirely in double-double: A = R^T R with R returned in pair form in
/// the upper triangles (strict lower triangles zeroed).  Succeeds for
/// kappa(A) up to ~u_dd^{-1} ~ 2e31, i.e. Gram matrices of V with
/// kappa(V) up to ~1e15.  Returns the 1-based index of the first
/// non-positive pivot on breakdown (LAPACK info convention).
CholResult potrf_upper_dd(MatrixView a_hi, MatrixView a_lo);

/// Shifted variant: factors (a_hi + a_lo) + shift * I.  The shift is
/// applied in dd, so it can be sized to u_dd * ||A|| rather than
/// eps * ||A|| — shifted retries perturb ~1e16x less than in double.
CholResult potrf_upper_dd_shifted(MatrixView a_hi, MatrixView a_lo,
                                  double shift);

}  // namespace tsbo::dense
