#pragma once
// Double-double (compensated) arithmetic for mixed-precision CholQR.
//
// The paper's related work (Yamazaki et al. [26], [27]) stabilizes
// CholQR by accumulating the Gram matrix in twice the working
// precision; on hardware without float128 this is software-emulated
// double-double (Hida/Li/Bailey [15]).  We provide the accumulation
// kernels so the mixed-precision variant can be composed with every
// block scheme in ortho/.

#include "dense/matrix.hpp"

#include <cmath>

namespace tsbo::dense {

/// Unevaluated sum hi + lo with |lo| <= ulp(hi)/2.
struct dd {
  double hi = 0.0;
  double lo = 0.0;
};

/// Error-free transformation: a + b = s + err exactly.
inline dd two_sum(double a, double b) {
  const double s = a + b;
  const double bb = s - a;
  const double err = (a - (s - bb)) + (b - bb);
  return {s, err};
}

/// Error-free product via FMA: a * b = p + err exactly.
inline dd two_prod(double a, double b) {
  const double p = a * b;
  const double err = std::fma(a, b, -p);
  return {p, err};
}

/// x += y (double-double accumulate of a double).
inline void dd_add(dd& x, double y) {
  const dd s = two_sum(x.hi, y);
  x.lo += s.lo;
  x.hi = s.hi;
}

/// x += y (full double-double addition).
inline void dd_add(dd& x, const dd& y) {
  dd s = two_sum(x.hi, y.hi);
  s.lo += x.lo + y.lo;
  x = two_sum(s.hi, s.lo);
}

/// Rounds back to working precision.
inline double dd_to_double(const dd& x) { return x.hi + x.lo; }

/// Compensated dot product: exact products accumulated in double-double.
double dot_dd(const double* x, const double* y, index_t n);

/// Gram matrix G = A^T A with double-double accumulation, rounded to
/// double on output.  This is the kernel of mixed-precision CholQR.
void gram_dd(ConstMatrixView a, MatrixView g);

/// Block inner product C = A^T B with double-double accumulation.
void gemm_tn_dd(ConstMatrixView a, ConstMatrixView b, MatrixView c);

}  // namespace tsbo::dense
