#include "dense/givens.hpp"

#include <cassert>
#include <cmath>

namespace tsbo::dense {

GivensRotation make_givens(double a, double b, double& r) {
  if (b == 0.0) {
    r = std::abs(a);
    return {a >= 0.0 ? 1.0 : -1.0, 0.0};
  }
  const double h = std::hypot(a, b);
  r = h;
  return {a / h, b / h};
}

HessenbergLeastSquares::HessenbergLeastSquares(index_t max_cols, double rhs0)
    : r_(max_cols + 1, max_cols),
      g_(static_cast<std::size_t>(max_cols) + 1, 0.0) {
  g_[0] = rhs0;
}

void HessenbergLeastSquares::append_column(std::span<const double> h) {
  const index_t k = ncols_;
  assert(k < r_.cols());
  assert(static_cast<index_t>(h.size()) >= k + 2);

  // Copy, then apply all previous rotations to the new column.
  std::vector<double> col(h.begin(), h.begin() + k + 2);
  for (index_t i = 0; i < k; ++i) {
    const auto [c, s] = rot_[i];
    const double t0 = c * col[i] + s * col[i + 1];
    const double t1 = -s * col[i] + c * col[i + 1];
    col[i] = t0;
    col[i + 1] = t1;
  }

  double r = 0.0;
  GivensRotation g = make_givens(col[k], col[k + 1], r);
  rot_.push_back(g);
  col[k] = r;
  col[k + 1] = 0.0;

  // Rotate the RHS.
  const double t0 = g.c * g_[k] + g.s * g_[k + 1];
  const double t1 = -g.s * g_[k] + g.c * g_[k + 1];
  g_[k] = t0;
  g_[k + 1] = t1;

  for (index_t i = 0; i <= k + 1; ++i) r_(i, k) = col[i];
  ++ncols_;
}

std::vector<double> HessenbergLeastSquares::solve_y() const {
  std::vector<double> y(ncols_, 0.0);
  for (index_t i = ncols_ - 1; i >= 0; --i) {
    double s = g_[i];
    for (index_t j = i + 1; j < ncols_; ++j) s -= r_(i, j) * y[j];
    y[i] = s / r_(i, i);
  }
  return y;
}

}  // namespace tsbo::dense
