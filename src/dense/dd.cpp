#include "dense/dd.hpp"

#include <cassert>
#include <cmath>

namespace tsbo::dense {

double dot_dd(const double* x, const double* y, index_t n) {
  dd acc;
  for (index_t i = 0; i < n; ++i) {
    const dd p = two_prod(x[i], y[i]);
    dd_add(acc, p);
  }
  return dd_to_double(acc);
}

void gram_dd(ConstMatrixView a, MatrixView g) {
  assert(g.rows == a.cols && g.cols == a.cols);
  for (index_t j = 0; j < a.cols; ++j) {
    for (index_t i = 0; i <= j; ++i) {
      const double v = dot_dd(a.col(i), a.col(j), a.rows);
      g(i, j) = v;
      g(j, i) = v;
    }
  }
}

void gemm_tn_dd(ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  assert(c.rows == a.cols && c.cols == b.cols && a.rows == b.rows);
  for (index_t j = 0; j < b.cols; ++j) {
    for (index_t i = 0; i < a.cols; ++i) {
      c(i, j) = dot_dd(a.col(i), b.col(j), a.rows);
    }
  }
}

}  // namespace tsbo::dense
