#include "dense/dd.hpp"

#include "par/config.hpp"
#include "util/aligned.hpp"
#include "util/simd.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tsbo::dense {

namespace {
// Same cache tile as blas3.cpp: a 256-row slice of the tall operands
// stays resident while the dd accumulators live in registers.  Divides
// par::kReduceChunk, so reduction chunks are whole numbers of tiles.
constexpr index_t kRowBlock = 256;
static_assert(par::kReduceChunk % static_cast<std::size_t>(kRowBlock) == 0);

constexpr index_t kW = static_cast<index_t>(simd::kLanes);

// Vectorized dd accumulation (the prime SIMD target: two_sum/two_prod
// are branch-free, so every lane runs the exact scalar EFT sequence on
// its strided subsequence).  Accumulation order per [0, nb) range is
// fixed — two vector dd accumulators over stride 2*kW, folded lanewise
// then lane-by-lane in ascending order, scalar tail appended last — so
// the fixed-chunk reduction on top stays bit-identical at any thread
// count.

/// dd dot product of a0 and b over [0, nb).
inline dd dot_dd_range(const double* a0, const double* bj, index_t nb) {
  simd::VecDD va = simd::dd_zero(), vb = simd::dd_zero();
  index_t r = 0;
  for (; r + 2 * kW <= nb; r += 2 * kW) {
    simd::dd_add(va, simd::vec_two_prod(simd::load(a0 + r),
                                        simd::load(bj + r)));
    simd::dd_add(vb, simd::vec_two_prod(simd::load(a0 + r + kW),
                                        simd::load(bj + r + kW)));
  }
  for (; r + kW <= nb; r += kW) {
    simd::dd_add(va, simd::vec_two_prod(simd::load(a0 + r),
                                        simd::load(bj + r)));
  }
  simd::dd_add(va, vb);
  dd s = simd::reduce(va);
  for (; r < nb; ++r) dd_add(s, two_prod(a0[r], bj[r]));
  return s;
}

/// Two dd dot products sharing the streamed bj tile (the gemm_tn_dd
/// inner kernel): four vector dd accumulators keep the long
/// renormalization chains independent.
inline void dot2_dd_range(const double* a0, const double* a1,
                          const double* bj, index_t nb, dd& s0, dd& s1) {
  simd::VecDD v0a = simd::dd_zero(), v0b = simd::dd_zero();
  simd::VecDD v1a = simd::dd_zero(), v1b = simd::dd_zero();
  index_t r = 0;
  for (; r + 2 * kW <= nb; r += 2 * kW) {
    const simd::Vec b0 = simd::load(bj + r);
    const simd::Vec b1 = simd::load(bj + r + kW);
    simd::dd_add(v0a, simd::vec_two_prod(simd::load(a0 + r), b0));
    simd::dd_add(v0b, simd::vec_two_prod(simd::load(a0 + r + kW), b1));
    simd::dd_add(v1a, simd::vec_two_prod(simd::load(a1 + r), b0));
    simd::dd_add(v1b, simd::vec_two_prod(simd::load(a1 + r + kW), b1));
  }
  for (; r + kW <= nb; r += kW) {
    const simd::Vec b0 = simd::load(bj + r);
    simd::dd_add(v0a, simd::vec_two_prod(simd::load(a0 + r), b0));
    simd::dd_add(v1a, simd::vec_two_prod(simd::load(a1 + r), b0));
  }
  simd::dd_add(v0a, v0b);
  simd::dd_add(v1a, v1b);
  dd t0 = simd::reduce(v0a);
  dd t1 = simd::reduce(v1a);
  for (; r < nb; ++r) {
    dd_add(t0, two_prod(a0[r], bj[r]));
    dd_add(t1, two_prod(a1[r], bj[r]));
  }
  s0 = t0;
  s1 = t1;
}

}  // namespace

double dot_dd(const double* x, const double* y, index_t n) {
  const dd acc = dot_dd_range(x, y, n);
  return dd_to_double(acc);
}

void gemm_tn_dd(ConstMatrixView a, ConstMatrixView b, MatrixView c_hi,
                MatrixView c_lo) {
  assert(c_hi.rows == a.cols && c_hi.cols == b.cols && a.rows == b.rows);
  assert(c_lo.rows == c_hi.rows && c_lo.cols == c_hi.cols);
  const index_t m = a.rows, p = a.cols, n = b.cols;
  if (p == 0 || n == 0) return;

  // Self-Gram detection: A^T A is symmetric and the (i, j) and (j, i)
  // dot products would run identical dd sequences (two_prod commutes),
  // so compute only i <= j and mirror — halving the dominant dd cost
  // of mixed-precision CholQR while staying bitwise symmetric.
  const bool symmetric = a.data == b.data && a.cols == b.cols && a.ld == b.ld;

  // Deterministic chunked reduction over the long row dimension: one
  // p x n dd partial block per fixed chunk (bounds depend only on m),
  // combined in ascending chunk order below — the same scheme as
  // gemm_tn, with dd arithmetic in both the tile loop and the combine.
  const std::size_t pn =
      static_cast<std::size_t>(p) * static_cast<std::size_t>(n);
  const std::size_t nchunks =
      par::reduce_chunk_count(static_cast<std::size_t>(m));
  util::aligned_vector<dd> partials(std::max<std::size_t>(nchunks, 1) * pn);
  par::for_reduce_chunks(
      static_cast<std::size_t>(m),
      [&](std::size_t ci, std::size_t rb, std::size_t re) {
        dd* part = partials.data() + ci * pn;  // column-major p x n
        const auto rlo = static_cast<index_t>(rb);
        const auto rhi = static_cast<index_t>(re);
        for (index_t r0 = rlo; r0 < rhi; r0 += kRowBlock) {
          const index_t nb = std::min(kRowBlock, rhi - r0);
          for (index_t j = 0; j < n; ++j) {
            const double* bj = b.col(j) + r0;
            dd* pj = part + static_cast<std::size_t>(j) * p;
            const index_t ilim = symmetric ? j + 1 : p;
            index_t i = 0;
            // Two vectorized dd dot products per pass share the
            // streamed bj tile; the vector accumulators stay in
            // registers across the tile.
            for (; i + 1 < ilim; i += 2) {
              dd s0, s1;
              dot2_dd_range(a.col(i) + r0, a.col(i + 1) + r0, bj, nb, s0, s1);
              dd_add(pj[i], s0);
              dd_add(pj[i + 1], s1);
            }
            for (; i < ilim; ++i) {
              dd_add(pj[i], dot_dd_range(a.col(i) + r0, bj, nb));
            }
          }
        }
      });
  for (index_t j = 0; j < n; ++j) {
    const index_t ilim = symmetric ? j + 1 : p;
    for (index_t i = 0; i < ilim; ++i) {
      dd acc;
      for (std::size_t ci = 0; ci < nchunks; ++ci) {
        dd_add(acc, partials[ci * pn + static_cast<std::size_t>(j) * p +
                             static_cast<std::size_t>(i)]);
      }
      c_hi(i, j) = acc.hi;
      c_lo(i, j) = acc.lo;
    }
  }
  if (symmetric) {
    for (index_t j = 0; j < n; ++j) {
      for (index_t i = j + 1; i < p; ++i) {
        c_hi(i, j) = c_hi(j, i);
        c_lo(i, j) = c_lo(j, i);
      }
    }
  }
}

void gemm_tn_dd(ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  assert(c.rows == a.cols && c.cols == b.cols && a.rows == b.rows);
  Matrix lo(c.rows, c.cols);
  Matrix hi(c.rows, c.cols);
  gemm_tn_dd(a, b, hi.view(), lo.view());
  dd_round(hi.view(), lo.view(), c);
}

void gram_dd(ConstMatrixView a, MatrixView g) {
  assert(g.rows == a.cols && g.cols == a.cols);
  // gemm_tn_dd detects the self-Gram aliasing and computes only the
  // upper triangle + mirror, so the output is bitwise symmetric.
  gemm_tn_dd(a, a, g);
}

void dd_round(ConstMatrixView hi, ConstMatrixView lo, MatrixView out) {
  assert(hi.rows == out.rows && hi.cols == out.cols);
  assert(lo.rows == out.rows && lo.cols == out.cols);
  for (index_t j = 0; j < out.cols; ++j) {
    for (index_t i = 0; i < out.rows; ++i) {
      out(i, j) = dd_to_double(dd{hi(i, j), lo(i, j)});
    }
  }
}

CholResult potrf_upper_dd(MatrixView a_hi, MatrixView a_lo) {
  assert(a_hi.rows == a_hi.cols);
  assert(a_lo.rows == a_hi.rows && a_lo.cols == a_hi.cols);
  const index_t n = a_hi.rows;
  const auto at = [&](index_t i, index_t j) -> dd {
    return {a_hi(i, j), a_lo(i, j)};
  };
  const auto put = [&](index_t i, index_t j, const dd& v) {
    a_hi(i, j) = v.hi;
    a_lo(i, j) = v.lo;
  };
  for (index_t j = 0; j < n; ++j) {
    // d = a_jj - sum_k r_kj^2, entirely in dd.
    dd d = at(j, j);
    for (index_t k = 0; k < j; ++k) {
      const dd rkj = at(k, j);
      d = dd_sub(d, dd_mul(rkj, rkj));
    }
    if (!(d.hi > 0.0) || !std::isfinite(d.hi)) {
      return {j + 1};
    }
    const dd rjj = dd_sqrt(d);
    put(j, j, rjj);
    for (index_t c = j + 1; c < n; ++c) {
      dd s = at(j, c);
      for (index_t k = 0; k < j; ++k) {
        s = dd_sub(s, dd_mul(at(k, j), at(k, c)));
      }
      put(j, c, dd_div(s, rjj));
    }
  }
  // Zero the strict lower triangles so the pair output is exactly R.
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j + 1; i < n; ++i) {
      a_hi(i, j) = 0.0;
      a_lo(i, j) = 0.0;
    }
  }
  return {0};
}

CholResult potrf_upper_dd_shifted(MatrixView a_hi, MatrixView a_lo,
                                  double shift) {
  assert(a_hi.rows == a_hi.cols);
  for (index_t j = 0; j < a_hi.cols; ++j) {
    dd d{a_hi(j, j), a_lo(j, j)};
    dd_add(d, shift);
    a_hi(j, j) = d.hi;
    a_lo(j, j) = d.lo;
  }
  return potrf_upper_dd(a_hi, a_lo);
}

}  // namespace tsbo::dense
