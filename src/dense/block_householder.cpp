#include "dense/block_householder.hpp"

#include <cassert>
#include <cmath>

namespace tsbo::dense {

BlockHessenbergLeastSquares::BlockHessenbergLeastSquares(index_t max_cols,
                                                         index_t b,
                                                         ConstMatrixView s0)
    : b_(b),
      r_(max_cols + b, max_cols),
      v_(b + 1, max_cols),
      g_(max_cols + b, b),
      beta_(static_cast<std::size_t>(max_cols), 0.0) {
  assert(b >= 1 && s0.rows == b && s0.cols == b);
  for (index_t t = 0; t < b; ++t) {
    for (index_t i = 0; i < b; ++i) g_(i, t) = s0(i, t);
  }
}

void BlockHessenbergLeastSquares::append_column(std::span<const double> h) {
  const index_t k = ncols_;
  assert(k < r_.cols());
  assert(static_cast<index_t>(h.size()) == k + b_ + 1);
  double* col = r_.col(k);
  for (index_t i = 0; i <= k + b_; ++i) col[i] = h[static_cast<std::size_t>(i)];

  // Apply the previous reflectors in order; reflector j spans the b+1
  // rows [j, j+b] (v[0] == 1 implicit).
  for (index_t j = 0; j < k; ++j) {
    if (beta_[static_cast<std::size_t>(j)] == 0.0) continue;
    const double* vj = v_.col(j);
    double dot = col[j];
    for (index_t i = 1; i <= b_; ++i) dot += vj[i] * col[j + i];
    dot *= beta_[static_cast<std::size_t>(j)];
    col[j] -= dot;
    for (index_t i = 1; i <= b_; ++i) col[j + i] -= dot * vj[i];
  }

  // One new reflector annihilates the b subdiagonal entries at once
  // (Golub & Van Loan alg. 5.1.1 `house`, stable v0 branch): the
  // transformed diagonal becomes mu = ||H(k..k+b, k)|| >= 0.
  const double alpha = col[k];
  double sigma = 0.0;
  for (index_t i = 1; i <= b_; ++i) sigma += col[k + i] * col[k + i];
  double* vk = v_.col(k);
  vk[0] = 1.0;
  if (sigma == 0.0) {
    beta_[static_cast<std::size_t>(k)] = 0.0;
    for (index_t i = 1; i <= b_; ++i) vk[i] = 0.0;
  } else {
    const double mu = std::sqrt(alpha * alpha + sigma);
    const double v0 =
        alpha <= 0.0 ? alpha - mu : -sigma / (alpha + mu);  // == alpha - mu
    const double beta = 2.0 * v0 * v0 / (sigma + v0 * v0);
    beta_[static_cast<std::size_t>(k)] = beta;
    for (index_t i = 1; i <= b_; ++i) vk[i] = col[k + i] / v0;
    col[k] = mu;
    for (index_t i = 1; i <= b_; ++i) col[k + i] = 0.0;
    // Update every RHS column's rows [k, k+b].
    for (index_t t = 0; t < b_; ++t) {
      double* gc = g_.col(t);
      double dot = gc[k];
      for (index_t i = 1; i <= b_; ++i) dot += vk[i] * gc[k + i];
      dot *= beta;
      gc[k] -= dot;
      for (index_t i = 1; i <= b_; ++i) gc[k + i] -= dot * vk[i];
    }
  }
  ++ncols_;
}

double BlockHessenbergLeastSquares::residual_norm(index_t t) const {
  assert(t >= 0 && t < b_);
  double s = 0.0;
  for (index_t i = 0; i < b_; ++i) {
    const double g = g_(ncols_ + i, t);
    s += g * g;
  }
  return std::sqrt(s);
}

Matrix BlockHessenbergLeastSquares::solve_y() const {
  Matrix y(ncols_, b_);
  for (index_t t = 0; t < b_; ++t) {
    for (index_t i = ncols_ - 1; i >= 0; --i) {
      double s = g_(i, t);
      for (index_t j = i + 1; j < ncols_; ++j) s -= r_(i, j) * y(j, t);
      y(i, t) = s / r_(i, i);
    }
  }
  return y;
}

}  // namespace tsbo::dense
