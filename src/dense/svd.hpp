#pragma once
// Singular values and condition numbers via one-sided Jacobi.
//
// The paper's numerical studies (Figs. 6-9) track condition numbers up
// to ~1e16; forming the Gram matrix and taking eigenvalues would square
// the condition number and lose everything past 1e8.  One-sided Jacobi
// applied to the matrix itself (or to the R factor of a backward-stable
// Householder QR for tall inputs) computes even tiny singular values to
// high relative accuracy, matching what MATLAB's svd() gives the
// authors.

#include "dense/matrix.hpp"

#include <vector>

namespace tsbo::dense {

/// Singular values of A (descending).  Tall inputs (rows > cols) are
/// first reduced by Householder QR to the cols x cols R factor.
std::vector<double> singular_values(ConstMatrixView a);

/// kappa_2(A) = sigma_max / sigma_min.  Returns +inf when the smallest
/// singular value underflows to zero (numerically rank-deficient).
double cond_2(ConstMatrixView a);

/// 2-norm (largest singular value).
double norm_2(ConstMatrixView a);

/// ||I - A^T A||_2 for a tall-skinny A — the orthogonality error metric
/// used throughout the paper.
double orthogonality_error(ConstMatrixView a);

}  // namespace tsbo::dense
