#include "dense/householder.hpp"

#include "dense/blas1.hpp"

#include <cassert>
#include <cmath>
#include <span>

namespace tsbo::dense {

HouseholderQR geqrf(ConstMatrixView a) {
  assert(a.rows >= a.cols);
  HouseholderQR f{copy_of(a), std::vector<double>(a.cols, 0.0)};
  const index_t n = a.rows, s = a.cols;
  Matrix& m = f.qr;

  for (index_t j = 0; j < s; ++j) {
    double* colj = m.col(j);
    // Householder vector for x = m(j:n, j).
    const double normx =
        nrm2(std::span<const double>(colj + j, static_cast<std::size_t>(n - j)));
    if (normx == 0.0) {
      f.tau[j] = 0.0;
      continue;
    }
    const double alpha = colj[j];
    const double beta = alpha >= 0.0 ? -normx : normx;
    const double v0 = alpha - beta;
    f.tau[j] = -v0 / beta;  // tau = (beta - alpha) / beta
    const double inv_v0 = 1.0 / v0;
    for (index_t i = j + 1; i < n; ++i) colj[i] *= inv_v0;
    colj[j] = beta;

    // Apply (I - tau v v^T) to the trailing columns; v = [1; m(j+1:n, j)].
    for (index_t c = j + 1; c < s; ++c) {
      double* colc = m.col(c);
      double w = colc[j];
      for (index_t i = j + 1; i < n; ++i) w += colj[i] * colc[i];
      w *= f.tau[j];
      colc[j] -= w;
      for (index_t i = j + 1; i < n; ++i) colc[i] -= w * colj[i];
    }
  }
  return f;
}

Matrix extract_r(const HouseholderQR& f) {
  const index_t s = f.qr.cols();
  Matrix r(s, s);
  for (index_t j = 0; j < s; ++j) {
    for (index_t i = 0; i <= j; ++i) r(i, j) = f.qr(i, j);
  }
  // Normalize signs: make diag(R) >= 0 by flipping rows of R (the
  // corresponding Q columns are flipped in form_q).
  for (index_t i = 0; i < s; ++i) {
    if (r(i, i) < 0.0) {
      for (index_t j = i; j < s; ++j) r(i, j) = -r(i, j);
    }
  }
  return r;
}

Matrix form_q(const HouseholderQR& f) {
  const index_t n = f.qr.rows(), s = f.qr.cols();
  Matrix q(n, s);
  for (index_t j = 0; j < s; ++j) q(j, j) = 1.0;

  // Apply reflectors in reverse order: Q = H_0 H_1 ... H_{s-1} E.
  for (index_t j = s - 1; j >= 0; --j) {
    const double tau = f.tau[j];
    if (tau == 0.0) continue;
    const double* vj = f.qr.col(j);
    for (index_t c = 0; c < s; ++c) {
      double* colc = q.col(c);
      double w = colc[j];
      for (index_t i = j + 1; i < n; ++i) w += vj[i] * colc[i];
      w *= tau;
      colc[j] -= w;
      for (index_t i = j + 1; i < n; ++i) colc[i] -= w * vj[i];
    }
  }

  // Match extract_r's sign normalization: column i of Q flips whenever
  // row i of R flipped.
  for (index_t i = 0; i < s; ++i) {
    if (f.qr(i, i) < 0.0) {
      double* coli = q.col(i);
      for (index_t r = 0; r < n; ++r) coli[r] = -coli[r];
    }
  }
  return q;
}

ThinQR householder_qr(ConstMatrixView a) {
  HouseholderQR f = geqrf(a);
  return {form_q(f), extract_r(f)};
}

}  // namespace tsbo::dense
