#pragma once
// Cholesky factorization with breakdown reporting.
//
// CholQR computes chol(V^T V); when kappa(V) exceeds ~eps^{-1/2} the
// Gram matrix is numerically indefinite and the factorization *must*
// fail loudly (paper condition (1)).  potrf therefore returns the pivot
// index of the first non-positive diagonal instead of throwing, and the
// orthogonalization layer chooses the recovery policy (hard error or
// the shifted retry of Fukaya et al. [11]).

#include "dense/matrix.hpp"

namespace tsbo::dense {

/// Result of a Cholesky factorization attempt.
struct CholResult {
  /// 0 on success; otherwise the 1-based index of the first pivot that
  /// was not strictly positive (LAPACK `info` convention).
  index_t info = 0;
  [[nodiscard]] bool ok() const { return info == 0; }
};

/// In-place upper Cholesky: A = R^T R.  On exit the upper triangle of
/// `a` holds R; the strict lower triangle is zeroed.  The diagonal of R
/// is non-negative by construction.
CholResult potrf_upper(MatrixView a);

/// Shifted Cholesky: factors A + shift*I.  Used by shifted CholQR;
/// the caller picks the shift (typically c * eps * ||A||).
CholResult potrf_upper_shifted(MatrixView a, double shift);

/// 1-norm of a square matrix (max column sum) — used to size shifts.
double one_norm(ConstMatrixView a);

}  // namespace tsbo::dense
