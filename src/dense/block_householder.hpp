#pragma once
// Householder-on-H least squares for block GMRES.
//
// Block GMRES with block width b produces a band Hessenberg matrix H
// (lower bandwidth b) and minimizes ||E1 S0 - H Y||_F columnwise, where
// S0 is the b x b R-factor of the seed residual block (phist's
// bgmres.m/bfgmres.m recurrences).  Givens rotations would need b
// rotations per column; the standard block technique instead applies
// ONE Householder reflector per column, spanning the b+1 rows
// [k, k+b], to annihilate the b subdiagonal entries at once.  The
// transformed right-hand side then carries every RHS column's residual
// norm for free: after k columns, RHS column t's minimal residual is
// the 2-norm of its rows [k, k+b) — the block generalization of the
// |g_{k+1}| readout of the scalar Givens solver (dense/givens.hpp),
// to which this reduces exactly at b == 1 up to reflector sign.

#include "dense/matrix.hpp"

#include <span>
#include <vector>

namespace tsbo::dense {

/// Progressive block least-squares solver for band Hessenberg systems.
/// Columns arrive one flat column at a time (s*b per panel in block
/// s-step GMRES); append_column() applies all previous reflectors,
/// generates one new length-(b+1) reflector, and updates the b-column
/// rotated RHS.
class BlockHessenbergLeastSquares {
 public:
  /// max_cols: flat restart length m*b; s0: b x b seed R-factor (the
  /// CholQR factor of the initial residual block) forming the
  /// right-hand side E1 S0.
  BlockHessenbergLeastSquares(index_t max_cols, index_t b,
                              ConstMatrixView s0);

  /// Appends flat column k (0-based, k == cols()): h holds the k+b+1
  /// leading entries H(0..k+b, k).
  void append_column(std::span<const double> h);

  /// Minimal residual norm of RHS column t after cols() columns:
  /// ||G(cols()..cols()+b-1, t)||_2.
  [[nodiscard]] double residual_norm(index_t t) const;

  [[nodiscard]] index_t cols() const { return ncols_; }
  [[nodiscard]] index_t block_width() const { return b_; }

  /// Solves the triangular system for Y (cols() x b): column t
  /// minimizes ||E1 s0(:, t) - H y_t||.
  [[nodiscard]] Matrix solve_y() const;

 private:
  index_t b_;
  index_t ncols_ = 0;
  Matrix r_;     // transformed H, (max_cols + b) x max_cols
  Matrix v_;     // Householder vectors, (b + 1) x max_cols (v[0] == 1)
  Matrix g_;     // transformed RHS, (max_cols + b) x b
  std::vector<double> beta_;  // reflector scalars
};

}  // namespace tsbo::dense
