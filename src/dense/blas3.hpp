#pragma once
// BLAS-3 style blocked kernels.
//
// These carry the paper's performance argument: block orthogonalization
// (BCGS/CholQR/BCGS-PIP) spends its local flops in GEMM with a block
// size of s+1 (one-stage) or bs+1 (two-stage second stage), and larger
// block sizes mean more reuse of the streamed tall operand per pass.
// The kernels below are row-blocked so that the panel tile stays in
// cache while the tall matrix streams through once, and threaded over
// row tiles via par::ThreadPool.  Reductions (gemm_tn, frobenius_norm)
// follow the fixed-chunk deterministic scheme of par/config.hpp, so
// results are bit-identical at any thread count.

#include "dense/matrix.hpp"

namespace tsbo::dense {

/// C = alpha * A * B + beta * C   (A: m x k, B: k x n, C: m x n)
void gemm_nn(double alpha, ConstMatrixView a, ConstMatrixView b, double beta,
             MatrixView c);

/// C = alpha * A^T * B + beta * C   (A: m x k, B: m x n, C: k x n)
///
/// This is the "GEMM for dot-products" of the paper's Fig. 2: the block
/// inner product Q^T V, and the fused Gram matrix [Q, V]^T V of
/// BCGS-PIP.  A and B stream; C is tiny and accumulates in cache.
void gemm_tn(double alpha, ConstMatrixView a, ConstMatrixView b, double beta,
             MatrixView c);

/// C = alpha * A * B^T + beta * C   (A: m x k, B: n x k, C: m x n)
void gemm_nt(double alpha, ConstMatrixView a, ConstMatrixView b, double beta,
             MatrixView c);

/// B := B * U^{-1}  with U upper triangular (the "TRSM for normalize"
/// of CholQR, paper Fig. 3a).  B is n x s tall-skinny.
void trsm_right_upper(ConstMatrixView u, MatrixView b);

/// B := B * U  (multiply on the right by upper triangular U).
void trmm_right_upper(ConstMatrixView u, MatrixView b);

/// C = A^T A (upper triangle filled, mirrored to lower) — the Gram
/// matrix kernel of CholQR.
void syrk_tn(ConstMatrixView a, MatrixView c);

/// Frobenius norm of a view.
double frobenius_norm(ConstMatrixView a);

}  // namespace tsbo::dense
