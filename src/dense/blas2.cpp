#include "dense/blas2.hpp"

#include "par/config.hpp"

#include <cassert>
#include <cstddef>

namespace tsbo::dense {

void gemv(double alpha, ConstMatrixView a, std::span<const double> x,
          double beta, std::span<double> y) {
  assert(static_cast<index_t>(x.size()) == a.cols);
  assert(static_cast<index_t>(y.size()) == a.rows);
  // Threaded over disjoint row ranges; the column sweep inside each
  // range keeps unit stride, and the per-element accumulation order
  // over j is fixed, so any row partition is exact.
  par::parallel_for_grained(y.size(), [&](std::size_t b, std::size_t e) {
    if (beta != 1.0) {
      for (std::size_t i = b; i < e; ++i) y[i] *= beta;
    }
    for (index_t j = 0; j < a.cols; ++j) {
      const double ax = alpha * x[static_cast<std::size_t>(j)];
      const double* col = a.col(j);
      for (std::size_t i = b; i < e; ++i) y[i] += ax * col[i];
    }
  });
}

void gemv_t(double alpha, ConstMatrixView a, std::span<const double> x,
            double beta, std::span<double> y) {
  assert(static_cast<index_t>(x.size()) == a.rows);
  assert(static_cast<index_t>(y.size()) == a.cols);
  for (index_t j = 0; j < a.cols; ++j) {
    const double* col = a.col(j);
    double s = 0.0;
    for (index_t i = 0; i < a.rows; ++i) s += col[i] * x[i];
    y[j] = alpha * s + beta * y[j];
  }
}

void ger(double alpha, std::span<const double> x, std::span<const double> y,
         MatrixView a) {
  assert(static_cast<index_t>(x.size()) == a.rows);
  assert(static_cast<index_t>(y.size()) == a.cols);
  for (index_t j = 0; j < a.cols; ++j) {
    const double ay = alpha * y[j];
    double* col = a.col(j);
    for (index_t i = 0; i < a.rows; ++i) col[i] += ay * x[i];
  }
}

void trsv_upper(ConstMatrixView u, std::span<double> x) {
  assert(u.rows == u.cols);
  assert(static_cast<index_t>(x.size()) == u.rows);
  for (index_t j = u.cols - 1; j >= 0; --j) {
    x[j] /= u(j, j);
    const double xj = x[j];
    const double* col = u.col(j);
    for (index_t i = 0; i < j; ++i) x[i] -= xj * col[i];
  }
}

void trsv_lower(ConstMatrixView l, std::span<double> x) {
  assert(l.rows == l.cols);
  assert(static_cast<index_t>(x.size()) == l.rows);
  for (index_t j = 0; j < l.cols; ++j) {
    x[j] /= l(j, j);
    const double xj = x[j];
    const double* col = l.col(j);
    for (index_t i = j + 1; i < l.rows; ++i) x[i] -= xj * col[i];
  }
}

}  // namespace tsbo::dense
