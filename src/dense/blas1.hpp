#pragma once
// BLAS-1 style vector kernels.
//
// These are the building blocks of the *standard* GMRES orthogonalization
// path (the paper's performance baseline): dot products and axpys with
// no data reuse, which is exactly why the block (BLAS-3) algorithms win.
//
// All kernels are threaded through par::ThreadPool for long vectors.
// Reductions use the fixed-chunk deterministic scheme of
// par/config.hpp: results are bit-identical at any thread count.

#include <span>

namespace tsbo::dense {

/// x . y
double dot(std::span<const double> x, std::span<const double> y);

/// sum_i x_i^2 (unscaled; prefer nrm2 when overflow is a concern).
double sumsq(std::span<const double> x);

/// ||x||_2 computed with scaling against overflow/underflow.
double nrm2(std::span<const double> x);

/// y += alpha * x
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// x *= alpha
void scal(double alpha, std::span<double> x);

/// y = x
void vcopy(std::span<const double> x, std::span<double> y);

/// max_i |x_i|
double amax(std::span<const double> x);

}  // namespace tsbo::dense
