#pragma once
// Householder QR for tall-skinny matrices.
//
// Shared-memory reference used (a) as the unconditionally stable intra-
// block factorization in "BCGS2 with HHQR" (paper Fig. 2b option 1) and
// (b) to compute accurate R factors for condition-number measurement
// (singular values of R equal those of the input, and Householder QR is
// backward stable so even tiny singular values are trustworthy).
//
// The distributed O(s)-reduce variant lives in ortho/intra.*; this file
// is purely node-local dense linear algebra.

#include "dense/matrix.hpp"

#include <vector>

namespace tsbo::dense {

/// Compact WY-free Householder factorization state: reflectors stored
/// below the diagonal of `qr`, scales in `tau`.
struct HouseholderQR {
  Matrix qr;                // n x s, R in upper triangle, v_j below diag
  std::vector<double> tau;  // s reflector coefficients
};

/// Factors A (n x s, n >= s) into QR.  A is consumed by copy.
HouseholderQR geqrf(ConstMatrixView a);

/// Extracts the s x s upper-triangular R (diagonal sign-normalized to
/// be non-negative, matching the paper's BlkOrth convention).
Matrix extract_r(const HouseholderQR& f);

/// Forms the explicit thin Q (n x s) with the same sign convention as
/// extract_r, so that Q * R == A.
Matrix form_q(const HouseholderQR& f);

/// Convenience: thin QR with non-negative diagonal R.
/// Returns {Q (n x s), R (s x s)}.
struct ThinQR {
  Matrix q;
  Matrix r;
};
ThinQR householder_qr(ConstMatrixView a);

}  // namespace tsbo::dense
