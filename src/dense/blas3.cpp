#include "dense/blas3.hpp"

#include "par/config.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace tsbo::dense {

namespace {
// Row-block height: a 256 x ncols tile of the tall operand stays in L1/L2
// while all columns of the small operand are applied to it.  Divides
// par::kReduceChunk, so reduction chunks are whole numbers of tiles.
constexpr index_t kRowBlock = 256;
static_assert(par::kReduceChunk % static_cast<std::size_t>(kRowBlock) == 0);

/// Shared GEMM prologue: C := beta * C.  beta == 0 overwrites (clearing
/// NaN/Inf) rather than multiplying.  Threaded over rows for tall C.
void scale_columns(double beta, MatrixView c) {
  if (beta == 1.0 || c.rows == 0 || c.cols == 0) return;
  par::parallel_for_grained(
      static_cast<std::size_t>(c.rows), [&](std::size_t b, std::size_t e) {
        const auto nb = static_cast<index_t>(e - b);
        for (index_t j = 0; j < c.cols; ++j) {
          double* cj = c.col(j) + static_cast<index_t>(b);
          if (beta == 0.0) {
            std::fill_n(cj, nb, 0.0);
          } else {
            for (index_t i = 0; i < nb; ++i) cj[i] *= beta;
          }
        }
      });
}

}  // namespace

void gemm_nn(double alpha, ConstMatrixView a, ConstMatrixView b, double beta,
             MatrixView c) {
  assert(a.rows == c.rows && a.cols == b.rows && b.cols == c.cols);
  const index_t m = a.rows, k = a.cols, n = b.cols;
  scale_columns(beta, c);
  if (alpha == 0.0 || k == 0) return;

  // Output rows are disjoint across threads, and the accumulation order
  // along k for each (i, j) is fixed, so any row partition is exact.
  par::parallel_for_tiles(
      static_cast<std::size_t>(m), static_cast<std::size_t>(kRowBlock),
      [&](std::size_t rb, std::size_t re) {
        const auto r0lo = static_cast<index_t>(rb);
        const auto r0hi = static_cast<index_t>(re);
        for (index_t i0 = r0lo; i0 < r0hi; i0 += kRowBlock) {
          const index_t ib = std::min(kRowBlock, r0hi - i0);
          for (index_t j = 0; j < n; ++j) {
            double* cj = c.col(j) + i0;
            // Unroll the accumulation over pairs of inner columns: halves
            // the number of passes over the C tile.
            index_t l = 0;
            for (; l + 1 < k; l += 2) {
              const double b0 = alpha * b(l, j);
              const double b1 = alpha * b(l + 1, j);
              const double* a0 = a.col(l) + i0;
              const double* a1 = a.col(l + 1) + i0;
              for (index_t i = 0; i < ib; ++i) cj[i] += b0 * a0[i] + b1 * a1[i];
            }
            for (; l < k; ++l) {
              const double b0 = alpha * b(l, j);
              const double* a0 = a.col(l) + i0;
              for (index_t i = 0; i < ib; ++i) cj[i] += b0 * a0[i];
            }
          }
        }
      });
}

void gemm_tn(double alpha, ConstMatrixView a, ConstMatrixView b, double beta,
             MatrixView c) {
  assert(a.cols == c.rows && a.rows == b.rows && b.cols == c.cols);
  const index_t m = a.rows, p = a.cols, n = b.cols;
  scale_columns(beta, c);
  if (alpha == 0.0 || m == 0 || p == 0 || n == 0) return;

  // Deterministic chunked reduction over the long row dimension: one
  // p x n partial Gram block per fixed chunk (bounds depend only on m),
  // combined in ascending chunk order below.
  const std::size_t pn =
      static_cast<std::size_t>(p) * static_cast<std::size_t>(n);
  const std::size_t nchunks =
      par::reduce_chunk_count(static_cast<std::size_t>(m));
  std::vector<double> partials(nchunks * pn, 0.0);
  par::for_reduce_chunks(
      static_cast<std::size_t>(m),
      [&](std::size_t ci, std::size_t rb, std::size_t re) {
        double* part = partials.data() + ci * pn;  // column-major p x n
        const auto rlo = static_cast<index_t>(rb);
        const auto rhi = static_cast<index_t>(re);
        for (index_t r0 = rlo; r0 < rhi; r0 += kRowBlock) {
          const index_t nb = std::min(kRowBlock, rhi - r0);
          for (index_t j = 0; j < n; ++j) {
            const double* bj = b.col(j) + r0;
            double* pj = part + static_cast<std::size_t>(j) * p;
            index_t i = 0;
            // Two output dot-products per pass share the streamed bj tile.
            for (; i + 1 < p; i += 2) {
              const double* a0 = a.col(i) + r0;
              const double* a1 = a.col(i + 1) + r0;
              double s0 = 0.0, s1 = 0.0;
              for (index_t r = 0; r < nb; ++r) {
                s0 += a0[r] * bj[r];
                s1 += a1[r] * bj[r];
              }
              pj[i] += s0;
              pj[i + 1] += s1;
            }
            for (; i < p; ++i) {
              const double* a0 = a.col(i) + r0;
              double s0 = 0.0;
              for (index_t r = 0; r < nb; ++r) s0 += a0[r] * bj[r];
              pj[i] += s0;
            }
          }
        }
      });
  for (std::size_t ci = 0; ci < nchunks; ++ci) {
    const double* part = partials.data() + ci * pn;
    for (index_t j = 0; j < n; ++j) {
      double* cj = c.col(j);
      const double* pj = part + static_cast<std::size_t>(j) * p;
      for (index_t i = 0; i < p; ++i) cj[i] += alpha * pj[i];
    }
  }
}

void gemm_nt(double alpha, ConstMatrixView a, ConstMatrixView b, double beta,
             MatrixView c) {
  assert(a.rows == c.rows && a.cols == b.cols && b.rows == c.cols);
  const index_t m = a.rows, k = a.cols, n = b.rows;
  scale_columns(beta, c);
  if (alpha == 0.0 || k == 0) return;
  par::parallel_for_tiles(
      static_cast<std::size_t>(m), static_cast<std::size_t>(kRowBlock),
      [&](std::size_t rb, std::size_t re) {
        const auto rlo = static_cast<index_t>(rb);
        const auto nb = static_cast<index_t>(re - rb);
        for (index_t j = 0; j < n; ++j) {
          double* cj = c.col(j) + rlo;
          for (index_t l = 0; l < k; ++l) {
            const double blj = alpha * b(j, l);
            const double* al = a.col(l) + rlo;
            for (index_t i = 0; i < nb; ++i) cj[i] += blj * al[i];
          }
        }
      });
}

void trsm_right_upper(ConstMatrixView u, MatrixView b) {
  assert(u.rows == u.cols && u.cols == b.cols);
  const index_t n = b.rows, s = b.cols;
  // Row-tiled: the i0-tile of all s columns stays in cache through the
  // whole triangular sweep.  An untiled sweep re-streams the tall panel
  // O(s) times, which dominates at the two-stage big-panel width.
  // Rows never interact in B := B U^{-1}, so tiles run in parallel.
  par::parallel_for_tiles(
      static_cast<std::size_t>(n), static_cast<std::size_t>(kRowBlock),
      [&](std::size_t rb, std::size_t re) {
        const auto rlo = static_cast<index_t>(rb);
        const auto rhi = static_cast<index_t>(re);
        for (index_t i0 = rlo; i0 < rhi; i0 += kRowBlock) {
          const index_t ib = std::min(kRowBlock, rhi - i0);
          for (index_t j = 0; j < s; ++j) {
            double* bj = b.col(j) + i0;
            for (index_t l = 0; l < j; ++l) {
              const double ulj = u(l, j);
              if (ulj == 0.0) continue;
              const double* bl = b.col(l) + i0;
              for (index_t i = 0; i < ib; ++i) bj[i] -= ulj * bl[i];
            }
            const double inv = 1.0 / u(j, j);
            for (index_t i = 0; i < ib; ++i) bj[i] *= inv;
          }
        }
      });
}

void trmm_right_upper(ConstMatrixView u, MatrixView b) {
  assert(u.rows == u.cols && u.cols == b.cols);
  const index_t n = b.rows, s = b.cols;
  // Row-tiled like trsm_right_upper; columns processed right-to-left
  // within a tile so each source column is still unmodified when read.
  par::parallel_for_tiles(
      static_cast<std::size_t>(n), static_cast<std::size_t>(kRowBlock),
      [&](std::size_t rb, std::size_t re) {
        const auto rlo = static_cast<index_t>(rb);
        const auto rhi = static_cast<index_t>(re);
        for (index_t i0 = rlo; i0 < rhi; i0 += kRowBlock) {
          const index_t ib = std::min(kRowBlock, rhi - i0);
          for (index_t j = s - 1; j >= 0; --j) {
            double* bj = b.col(j) + i0;
            const double ujj = u(j, j);
            for (index_t i = 0; i < ib; ++i) bj[i] *= ujj;
            for (index_t l = 0; l < j; ++l) {
              const double ulj = u(l, j);
              if (ulj == 0.0) continue;
              const double* bl = b.col(l) + i0;
              for (index_t i = 0; i < ib; ++i) bj[i] += ulj * bl[i];
            }
          }
        }
      });
}

void syrk_tn(ConstMatrixView a, MatrixView c) {
  assert(c.rows == a.cols && c.cols == a.cols);
  gemm_tn(1.0, a, a, 0.0, c);
  // gemm_tn already fills the full square; symmetrize to kill rounding
  // asymmetry so Cholesky sees an exactly symmetric Gram matrix.
  for (index_t j = 0; j < c.cols; ++j) {
    for (index_t i = 0; i < j; ++i) {
      const double v = 0.5 * (c(i, j) + c(j, i));
      c(i, j) = v;
      c(j, i) = v;
    }
  }
}

double frobenius_norm(ConstMatrixView a) {
  // One chunked reduction over the row dimension covering all columns
  // per chunk: a single pool dispatch, deterministic because the chunk
  // bounds are fixed and partials combine in ascending order.
  const auto m = static_cast<std::size_t>(a.rows);
  const std::size_t nchunks = par::reduce_chunk_count(m);
  if (a.cols == 0 || nchunks == 0) return 0.0;
  std::vector<double> partials(nchunks, 0.0);
  par::for_reduce_chunks(m, [&](std::size_t ci, std::size_t b, std::size_t e) {
    double acc = 0.0;
    for (index_t j = 0; j < a.cols; ++j) {
      const double* col = a.col(j);
      for (std::size_t i = b; i < e; ++i) acc += col[i] * col[i];
    }
    partials[ci] = acc;
  });
  double s = 0.0;
  for (const double p : partials) s += p;
  return std::sqrt(s);
}

}  // namespace tsbo::dense
