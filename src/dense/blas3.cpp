#include "dense/blas3.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tsbo::dense {

namespace {
// Row-block height: a 256 x ncols tile of the tall operand stays in L1/L2
// while all columns of the small operand are applied to it.
constexpr index_t kRowBlock = 256;
}  // namespace

void gemm_nn(double alpha, ConstMatrixView a, ConstMatrixView b, double beta,
             MatrixView c) {
  assert(a.rows == c.rows && a.cols == b.rows && b.cols == c.cols);
  const index_t m = a.rows, k = a.cols, n = b.cols;
  if (beta != 1.0) {
    for (index_t j = 0; j < n; ++j) {
      double* cj = c.col(j);
      if (beta == 0.0) {
        std::fill_n(cj, m, 0.0);
      } else {
        for (index_t i = 0; i < m; ++i) cj[i] *= beta;
      }
    }
  }
  if (alpha == 0.0 || k == 0) return;

  for (index_t i0 = 0; i0 < m; i0 += kRowBlock) {
    const index_t ib = std::min(kRowBlock, m - i0);
    for (index_t j = 0; j < n; ++j) {
      double* cj = c.col(j) + i0;
      // Unroll the accumulation over pairs of inner columns: halves the
      // number of passes over the C tile.
      index_t l = 0;
      for (; l + 1 < k; l += 2) {
        const double b0 = alpha * b(l, j);
        const double b1 = alpha * b(l + 1, j);
        const double* a0 = a.col(l) + i0;
        const double* a1 = a.col(l + 1) + i0;
        for (index_t i = 0; i < ib; ++i) cj[i] += b0 * a0[i] + b1 * a1[i];
      }
      for (; l < k; ++l) {
        const double b0 = alpha * b(l, j);
        const double* a0 = a.col(l) + i0;
        for (index_t i = 0; i < ib; ++i) cj[i] += b0 * a0[i];
      }
    }
  }
}

void gemm_tn(double alpha, ConstMatrixView a, ConstMatrixView b, double beta,
             MatrixView c) {
  assert(a.cols == c.rows && a.rows == b.rows && b.cols == c.cols);
  const index_t m = a.rows, p = a.cols, n = b.cols;
  if (beta != 1.0) {
    for (index_t j = 0; j < n; ++j) {
      double* cj = c.col(j);
      if (beta == 0.0) {
        std::fill_n(cj, p, 0.0);
      } else {
        for (index_t i = 0; i < p; ++i) cj[i] *= beta;
      }
    }
  }
  if (alpha == 0.0 || m == 0) return;

  for (index_t r0 = 0; r0 < m; r0 += kRowBlock) {
    const index_t rb = std::min(kRowBlock, m - r0);
    for (index_t j = 0; j < n; ++j) {
      const double* bj = b.col(j) + r0;
      double* cj = c.col(j);
      index_t i = 0;
      // Two output dot-products per pass share the streamed bj tile.
      for (; i + 1 < p; i += 2) {
        const double* a0 = a.col(i) + r0;
        const double* a1 = a.col(i + 1) + r0;
        double s0 = 0.0, s1 = 0.0;
        for (index_t r = 0; r < rb; ++r) {
          s0 += a0[r] * bj[r];
          s1 += a1[r] * bj[r];
        }
        cj[i] += alpha * s0;
        cj[i + 1] += alpha * s1;
      }
      for (; i < p; ++i) {
        const double* a0 = a.col(i) + r0;
        double s0 = 0.0;
        for (index_t r = 0; r < rb; ++r) s0 += a0[r] * bj[r];
        cj[i] += alpha * s0;
      }
    }
  }
}

void gemm_nt(double alpha, ConstMatrixView a, ConstMatrixView b, double beta,
             MatrixView c) {
  assert(a.rows == c.rows && a.cols == b.cols && b.rows == c.cols);
  const index_t m = a.rows, k = a.cols, n = b.rows;
  if (beta != 1.0) {
    for (index_t j = 0; j < n; ++j) {
      double* cj = c.col(j);
      if (beta == 0.0) {
        std::fill_n(cj, m, 0.0);
      } else {
        for (index_t i = 0; i < m; ++i) cj[i] *= beta;
      }
    }
  }
  if (alpha == 0.0 || k == 0) return;
  for (index_t j = 0; j < n; ++j) {
    double* cj = c.col(j);
    for (index_t l = 0; l < k; ++l) {
      const double blj = alpha * b(j, l);
      const double* al = a.col(l);
      for (index_t i = 0; i < m; ++i) cj[i] += blj * al[i];
    }
  }
}

void trsm_right_upper(ConstMatrixView u, MatrixView b) {
  assert(u.rows == u.cols && u.cols == b.cols);
  const index_t n = b.rows, s = b.cols;
  // Row-tiled: the i0-tile of all s columns stays in cache through the
  // whole triangular sweep.  An untiled sweep re-streams the tall panel
  // O(s) times, which dominates at the two-stage big-panel width.
  for (index_t i0 = 0; i0 < n; i0 += kRowBlock) {
    const index_t ib = std::min(kRowBlock, n - i0);
    for (index_t j = 0; j < s; ++j) {
      double* bj = b.col(j) + i0;
      for (index_t l = 0; l < j; ++l) {
        const double ulj = u(l, j);
        if (ulj == 0.0) continue;
        const double* bl = b.col(l) + i0;
        for (index_t i = 0; i < ib; ++i) bj[i] -= ulj * bl[i];
      }
      const double inv = 1.0 / u(j, j);
      for (index_t i = 0; i < ib; ++i) bj[i] *= inv;
    }
  }
}

void trmm_right_upper(ConstMatrixView u, MatrixView b) {
  assert(u.rows == u.cols && u.cols == b.cols);
  const index_t n = b.rows, s = b.cols;
  // Row-tiled like trsm_right_upper; columns processed right-to-left
  // within a tile so each source column is still unmodified when read.
  for (index_t i0 = 0; i0 < n; i0 += kRowBlock) {
    const index_t ib = std::min(kRowBlock, n - i0);
    for (index_t j = s - 1; j >= 0; --j) {
      double* bj = b.col(j) + i0;
      const double ujj = u(j, j);
      for (index_t i = 0; i < ib; ++i) bj[i] *= ujj;
      for (index_t l = 0; l < j; ++l) {
        const double ulj = u(l, j);
        if (ulj == 0.0) continue;
        const double* bl = b.col(l) + i0;
        for (index_t i = 0; i < ib; ++i) bj[i] += ulj * bl[i];
      }
    }
  }
}

void syrk_tn(ConstMatrixView a, MatrixView c) {
  assert(c.rows == a.cols && c.cols == a.cols);
  gemm_tn(1.0, a, a, 0.0, c);
  // gemm_tn already fills the full square; symmetrize to kill rounding
  // asymmetry so Cholesky sees an exactly symmetric Gram matrix.
  for (index_t j = 0; j < c.cols; ++j) {
    for (index_t i = 0; i < j; ++i) {
      const double v = 0.5 * (c(i, j) + c(j, i));
      c(i, j) = v;
      c(j, i) = v;
    }
  }
}

double frobenius_norm(ConstMatrixView a) {
  double s = 0.0;
  for (index_t j = 0; j < a.cols; ++j) {
    const double* col = a.col(j);
    for (index_t i = 0; i < a.rows; ++i) s += col[i] * col[i];
  }
  return std::sqrt(s);
}

}  // namespace tsbo::dense
