#include "dense/blas3.hpp"

#include "par/config.hpp"
#include "util/aligned.hpp"
#include "util/simd.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tsbo::dense {

namespace {
// Row-block height: a 256 x ncols tile of the tall operand stays in L1/L2
// while all columns of the small operand are applied to it.  Divides
// par::kReduceChunk, so reduction chunks are whole numbers of tiles.
constexpr index_t kRowBlock = 256;
static_assert(par::kReduceChunk % static_cast<std::size_t>(kRowBlock) == 0);

// Small-operand (panel-width) tile: gemm_nn's inner dimension and
// gemm_tn's output-row dimension are the flat panel width, which the
// block (rhs=k) solver grows to s*k and the two-stage flush to bs*k —
// wide enough that streaming every small-operand column per C tile
// spills L2.  Tiling at 64 columns keeps a 256 x 64 operand tile
// (128 KiB) hot across the other operand's sweep.  EVEN on purpose:
// tile boundaries then never split a fused_axpy2 / dot2 pair, and the
// per-element accumulation order stays exactly the untiled ascending
// order, so results are bitwise-unchanged at every shape.
constexpr index_t kColBlock = 64;
static_assert(kColBlock % 2 == 0);

// Below this many m * p * n multiply-adds, gemm_tn's chunked reduction
// runs inline: pool dispatch and the per-chunk partial buffer dominate
// tall-skinny Gram shapes (1e5 x 10 is 1e7; 1e5 x 20 at 4e7 still
// profits from threads).
constexpr std::size_t kGemmTnSerialWork = 30'000'000;

constexpr index_t kW = static_cast<index_t>(simd::kLanes);

// Tile positions (multiples of kRowBlock) and the vector/tail split
// within a tile depend only on the problem size, never on the thread
// partition, so mixing fused vector lanes with scalar tails stays
// bit-stable across thread counts.

/// Shared GEMM prologue: C := beta * C.  beta == 0 overwrites (clearing
/// NaN/Inf) rather than multiplying.  Threaded over rows for tall C.
void scale_columns(double beta, MatrixView c) {
  if (beta == 1.0 || c.rows == 0 || c.cols == 0) return;
  const simd::Vec vb = simd::set1(beta);
  par::parallel_for_grained(
      static_cast<std::size_t>(c.rows), [&](std::size_t b, std::size_t e) {
        const auto nb = static_cast<index_t>(e - b);
        for (index_t j = 0; j < c.cols; ++j) {
          double* cj = c.col(j) + static_cast<index_t>(b);
          if (beta == 0.0) {
            std::fill_n(cj, nb, 0.0);
          } else {
            index_t i = 0;
            for (; i + kW <= nb; i += kW) {
              simd::store(cj + i, simd::mul(vb, simd::load(cj + i)));
            }
            for (; i < nb; ++i) cj[i] *= beta;
          }
        }
      });
}

/// cj[0, nb) += b0 * a0[0, nb) + b1 * a1[0, nb), fused per element.
inline void fused_axpy2(double b0, const double* a0, double b1,
                        const double* a1, double* cj, index_t nb) {
  const simd::Vec v0 = simd::set1(b0);
  const simd::Vec v1 = simd::set1(b1);
  index_t i = 0;
  for (; i + kW <= nb; i += kW) {
    simd::Vec acc = simd::load(cj + i);
    acc = simd::mul_add(v0, simd::load(a0 + i), acc);
    acc = simd::mul_add(v1, simd::load(a1 + i), acc);
    simd::store(cj + i, acc);
  }
  for (; i < nb; ++i) {
    cj[i] = simd::mul_add(b1, a1[i], simd::mul_add(b0, a0[i], cj[i]));
  }
}

/// cj[0, nb) += b0 * a0[0, nb), fused per element.
inline void fused_axpy1(double b0, const double* a0, double* cj, index_t nb) {
  const simd::Vec v0 = simd::set1(b0);
  index_t i = 0;
  for (; i + kW <= nb; i += kW) {
    simd::store(cj + i,
                simd::mul_add(v0, simd::load(a0 + i), simd::load(cj + i)));
  }
  for (; i < nb; ++i) cj[i] = simd::mul_add(b0, a0[i], cj[i]);
}

/// Two dot products (a0 . b), (a1 . b) over [0, nb) sharing the
/// streamed b tile: two vector accumulators per product, folded in a
/// fixed order, scalar tail appended last.
inline void dot2(const double* a0, const double* a1, const double* bj,
                 index_t nb, double& s0, double& s1) {
  simd::Vec v0a = simd::zero(), v0b = simd::zero();
  simd::Vec v1a = simd::zero(), v1b = simd::zero();
  index_t r = 0;
  for (; r + 2 * kW <= nb; r += 2 * kW) {
    const simd::Vec b0 = simd::load(bj + r);
    const simd::Vec b1 = simd::load(bj + r + kW);
    v0a = simd::mul_add(simd::load(a0 + r), b0, v0a);
    v0b = simd::mul_add(simd::load(a0 + r + kW), b1, v0b);
    v1a = simd::mul_add(simd::load(a1 + r), b0, v1a);
    v1b = simd::mul_add(simd::load(a1 + r + kW), b1, v1b);
  }
  for (; r + kW <= nb; r += kW) {
    const simd::Vec b0 = simd::load(bj + r);
    v0a = simd::mul_add(simd::load(a0 + r), b0, v0a);
    v1a = simd::mul_add(simd::load(a1 + r), b0, v1a);
  }
  double t0 = simd::reduce_add(simd::add(v0a, v0b));
  double t1 = simd::reduce_add(simd::add(v1a, v1b));
  for (; r < nb; ++r) {
    t0 += a0[r] * bj[r];
    t1 += a1[r] * bj[r];
  }
  s0 = t0;
  s1 = t1;
}

inline double dot1(const double* a0, const double* bj, index_t nb) {
  simd::Vec v0a = simd::zero(), v0b = simd::zero();
  index_t r = 0;
  for (; r + 2 * kW <= nb; r += 2 * kW) {
    v0a = simd::mul_add(simd::load(a0 + r), simd::load(bj + r), v0a);
    v0b = simd::mul_add(simd::load(a0 + r + kW), simd::load(bj + r + kW), v0b);
  }
  for (; r + kW <= nb; r += kW) {
    v0a = simd::mul_add(simd::load(a0 + r), simd::load(bj + r), v0a);
  }
  double s = simd::reduce_add(simd::add(v0a, v0b));
  for (; r < nb; ++r) s += a0[r] * bj[r];
  return s;
}

}  // namespace

void gemm_nn(double alpha, ConstMatrixView a, ConstMatrixView b, double beta,
             MatrixView c) {
  assert(a.rows == c.rows && a.cols == b.rows && b.cols == c.cols);
  const index_t m = a.rows, k = a.cols, n = b.cols;
  scale_columns(beta, c);
  if (alpha == 0.0 || k == 0) return;

  // Output rows are disjoint across threads, and the accumulation order
  // along k for each (i, j) is fixed, so any row partition is exact.
  par::parallel_for_tiles(
      static_cast<std::size_t>(m), static_cast<std::size_t>(kRowBlock),
      [&](std::size_t rb, std::size_t re) {
        const auto r0lo = static_cast<index_t>(rb);
        const auto r0hi = static_cast<index_t>(re);
        for (index_t i0 = r0lo; i0 < r0hi; i0 += kRowBlock) {
          const index_t ib = std::min(kRowBlock, r0hi - i0);
          // Inner-dimension tiles (even boundaries, see kColBlock): the
          // 256 x 64 A tile stays hot across all of C's columns, and
          // because tiles never split an axpy pair the per-element
          // accumulation order is the untiled ascending order exactly.
          for (index_t l0 = 0; l0 < k; l0 += kColBlock) {
            const index_t lhi = std::min(k, l0 + kColBlock);
            for (index_t j = 0; j < n; ++j) {
              double* cj = c.col(j) + i0;
              // Unroll the accumulation over pairs of inner columns:
              // halves the number of passes over the C tile.
              index_t l = l0;
              for (; l + 1 < lhi; l += 2) {
                fused_axpy2(alpha * b(l, j), a.col(l) + i0,
                            alpha * b(l + 1, j), a.col(l + 1) + i0, cj, ib);
              }
              for (; l < lhi; ++l) {
                fused_axpy1(alpha * b(l, j), a.col(l) + i0, cj, ib);
              }
            }
          }
        }
      });
}

void gemm_tn(double alpha, ConstMatrixView a, ConstMatrixView b, double beta,
             MatrixView c) {
  assert(a.cols == c.rows && a.rows == b.rows && b.cols == c.cols);
  const index_t m = a.rows, p = a.cols, n = b.cols;
  scale_columns(beta, c);
  if (alpha == 0.0 || m == 0 || p == 0 || n == 0) return;

  // Deterministic chunked reduction over the long row dimension: one
  // p x n partial Gram block per fixed chunk (bounds depend only on m),
  // combined in ascending chunk order.  Both execution paths below run
  // the identical chunk schedule, so results are bitwise independent of
  // the thread count.
  const std::size_t pn =
      static_cast<std::size_t>(p) * static_cast<std::size_t>(n);
  const std::size_t nchunks =
      par::reduce_chunk_count(static_cast<std::size_t>(m));

  // Accumulates rows [rlo, rhi) of the Gram block into `part`
  // (column-major p x n).
  const auto accumulate = [&](double* part, index_t rlo, index_t rhi) {
    for (index_t r0 = rlo; r0 < rhi; r0 += kRowBlock) {
      const index_t nb = std::min(kRowBlock, rhi - r0);
      // Output-row tiles over A's columns (even boundaries, see
      // kColBlock): the 256 x 64 A tile is reused across every B
      // column instead of re-streaming all p columns per j.  Each
      // pj[i] still receives exactly one addend per r0 tile in
      // ascending r0 order, and tiles never split a dot2 pair, so the
      // result is bitwise the untiled one.
      for (index_t i0 = 0; i0 < p; i0 += kColBlock) {
        const index_t ihi = std::min(p, i0 + kColBlock);
        for (index_t j = 0; j < n; ++j) {
          const double* bj = b.col(j) + r0;
          double* pj = part + static_cast<std::size_t>(j) * p;
          index_t i = i0;
          // Two output dot-products per pass share the streamed bj tile.
          for (; i + 1 < ihi; i += 2) {
            double s0 = 0.0, s1 = 0.0;
            dot2(a.col(i) + r0, a.col(i + 1) + r0, bj, nb, s0, s1);
            pj[i] += s0;
            pj[i + 1] += s1;
          }
          for (; i < ihi; ++i) {
            pj[i] += dot1(a.col(i) + r0, bj, nb);
          }
        }
      }
    }
  };
  const auto combine = [&](const double* part) {
    for (index_t j = 0; j < n; ++j) {
      double* cj = c.col(j);
      const double* pj = part + static_cast<std::size_t>(j) * p;
      for (index_t i = 0; i < p; ++i) cj[i] += alpha * pj[i];
    }
  };

  // Tall-skinny fast path: at the narrow Gram shapes (s ~ 10) the
  // per-chunk work is a few hundred kiloflops, and pool dispatch plus
  // the nchunks * pn partial buffer cost more than the multiply does —
  // threads = 2 ran ~25% BELOW threads = 1 at 100000x10.  Run the same
  // chunk schedule inline, folding each chunk through one reused
  // partial block in ascending order (arithmetic identical to the
  // threaded combine).
  if (static_cast<std::size_t>(m) * pn < kGemmTnSerialWork) {
    util::aligned_vector<double> part(pn);
    for (std::size_t ci = 0; ci < nchunks; ++ci) {
      std::fill(part.begin(), part.end(), 0.0);
      const auto rlo = static_cast<index_t>(ci * par::kReduceChunk);
      const auto rhi = static_cast<index_t>(
          std::min((ci + 1) * par::kReduceChunk, static_cast<std::size_t>(m)));
      accumulate(part.data(), rlo, rhi);
      combine(part.data());
    }
    return;
  }

  // Pad each per-chunk partial block to a 64-byte boundary so chunks
  // written by different threads never share a cache line; the combine
  // reads only the first pn entries of each block.
  const std::size_t stride = (pn + 7) & ~std::size_t{7};
  util::aligned_vector<double> partials(nchunks * stride, 0.0);
  par::for_reduce_chunks(
      static_cast<std::size_t>(m),
      [&](std::size_t ci, std::size_t rb, std::size_t re) {
        accumulate(partials.data() + ci * stride, static_cast<index_t>(rb),
                   static_cast<index_t>(re));
      });
  for (std::size_t ci = 0; ci < nchunks; ++ci) {
    combine(partials.data() + ci * stride);
  }
}

void gemm_nt(double alpha, ConstMatrixView a, ConstMatrixView b, double beta,
             MatrixView c) {
  assert(a.rows == c.rows && a.cols == b.cols && b.rows == c.cols);
  const index_t m = a.rows, k = a.cols, n = b.rows;
  scale_columns(beta, c);
  if (alpha == 0.0 || k == 0) return;
  par::parallel_for_tiles(
      static_cast<std::size_t>(m), static_cast<std::size_t>(kRowBlock),
      [&](std::size_t rb, std::size_t re) {
        const auto rlo = static_cast<index_t>(rb);
        const auto nb = static_cast<index_t>(re - rb);
        for (index_t j = 0; j < n; ++j) {
          double* cj = c.col(j) + rlo;
          index_t l = 0;
          for (; l + 1 < k; l += 2) {
            fused_axpy2(alpha * b(j, l), a.col(l) + rlo, alpha * b(j, l + 1),
                        a.col(l + 1) + rlo, cj, nb);
          }
          for (; l < k; ++l) {
            fused_axpy1(alpha * b(j, l), a.col(l) + rlo, cj, nb);
          }
        }
      });
}

void trsm_right_upper(ConstMatrixView u, MatrixView b) {
  assert(u.rows == u.cols && u.cols == b.cols);
  const index_t n = b.rows, s = b.cols;
  // Row-tiled: the i0-tile of all s columns stays in cache through the
  // whole triangular sweep.  An untiled sweep re-streams the tall panel
  // O(s) times, which dominates at the two-stage big-panel width.
  // Rows never interact in B := B U^{-1}, so tiles run in parallel.
  par::parallel_for_tiles(
      static_cast<std::size_t>(n), static_cast<std::size_t>(kRowBlock),
      [&](std::size_t rb, std::size_t re) {
        const auto rlo = static_cast<index_t>(rb);
        const auto rhi = static_cast<index_t>(re);
        for (index_t i0 = rlo; i0 < rhi; i0 += kRowBlock) {
          const index_t ib = std::min(kRowBlock, rhi - i0);
          for (index_t j = 0; j < s; ++j) {
            double* bj = b.col(j) + i0;
            for (index_t l = 0; l < j; ++l) {
              const double ulj = u(l, j);
              if (ulj == 0.0) continue;
              fused_axpy1(-ulj, b.col(l) + i0, bj, ib);
            }
            const double inv = 1.0 / u(j, j);
            const simd::Vec vinv = simd::set1(inv);
            index_t i = 0;
            for (; i + kW <= ib; i += kW) {
              simd::store(bj + i, simd::mul(vinv, simd::load(bj + i)));
            }
            for (; i < ib; ++i) bj[i] *= inv;
          }
        }
      });
}

void trmm_right_upper(ConstMatrixView u, MatrixView b) {
  assert(u.rows == u.cols && u.cols == b.cols);
  const index_t n = b.rows, s = b.cols;
  // Row-tiled like trsm_right_upper; columns processed right-to-left
  // within a tile so each source column is still unmodified when read.
  par::parallel_for_tiles(
      static_cast<std::size_t>(n), static_cast<std::size_t>(kRowBlock),
      [&](std::size_t rb, std::size_t re) {
        const auto rlo = static_cast<index_t>(rb);
        const auto rhi = static_cast<index_t>(re);
        for (index_t i0 = rlo; i0 < rhi; i0 += kRowBlock) {
          const index_t ib = std::min(kRowBlock, rhi - i0);
          for (index_t j = s - 1; j >= 0; --j) {
            double* bj = b.col(j) + i0;
            const double ujj = u(j, j);
            const simd::Vec vjj = simd::set1(ujj);
            index_t i = 0;
            for (; i + kW <= ib; i += kW) {
              simd::store(bj + i, simd::mul(vjj, simd::load(bj + i)));
            }
            for (; i < ib; ++i) bj[i] *= ujj;
            for (index_t l = 0; l < j; ++l) {
              const double ulj = u(l, j);
              if (ulj == 0.0) continue;
              fused_axpy1(ulj, b.col(l) + i0, bj, ib);
            }
          }
        }
      });
}

void syrk_tn(ConstMatrixView a, MatrixView c) {
  assert(c.rows == a.cols && c.cols == a.cols);
  gemm_tn(1.0, a, a, 0.0, c);
  // gemm_tn already fills the full square; symmetrize to kill rounding
  // asymmetry so Cholesky sees an exactly symmetric Gram matrix.
  for (index_t j = 0; j < c.cols; ++j) {
    for (index_t i = 0; i < j; ++i) {
      const double v = 0.5 * (c(i, j) + c(j, i));
      c(i, j) = v;
      c(j, i) = v;
    }
  }
}

double frobenius_norm(ConstMatrixView a) {
  // One chunked reduction over the row dimension covering all columns
  // per chunk: a single pool dispatch, deterministic because the chunk
  // bounds are fixed and partials combine in ascending order.
  const auto m = static_cast<std::size_t>(a.rows);
  const std::size_t nchunks = par::reduce_chunk_count(m);
  if (a.cols == 0 || nchunks == 0) return 0.0;
  util::aligned_vector<double> partials(nchunks, 0.0);
  par::for_reduce_chunks(m, [&](std::size_t ci, std::size_t b, std::size_t e) {
    double acc = 0.0;
    for (index_t j = 0; j < a.cols; ++j) {
      const double* col = a.col(j) + b;
      acc += dot1(col, col, static_cast<index_t>(e - b));
    }
    partials[ci] = acc;
  });
  double s = 0.0;
  for (const double p : partials) s += p;
  return std::sqrt(s);
}

}  // namespace tsbo::dense
