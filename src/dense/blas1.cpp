#include "dense/blas1.hpp"

#include "par/config.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace tsbo::dense {

namespace {

// Per-chunk kernels: each processes [begin, end) with a fixed
// accumulation order, so the chunked drivers below are deterministic
// for any thread count (see par/config.hpp).

double dot_range(const double* x, const double* y, std::size_t begin,
                 std::size_t end) {
  // Four partial accumulators break the serial dependence chain and let
  // the compiler vectorize; they also slightly improve rounding.
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = begin;
  const std::size_t n4 = begin + (end - begin) / 4 * 4;
  for (; i < n4; i += 4) {
    s0 += x[i] * y[i];
    s1 += x[i + 1] * y[i + 1];
    s2 += x[i + 2] * y[i + 2];
    s3 += x[i + 3] * y[i + 3];
  }
  for (; i < end; ++i) s0 += x[i] * y[i];
  return (s0 + s1) + (s2 + s3);
}

double sumsq_range(const double* x, std::size_t begin, std::size_t end) {
  return dot_range(x, x, begin, end);
}

double amax_range(const double* x, std::size_t begin, std::size_t end) {
  double m = 0.0;
  for (std::size_t i = begin; i < end; ++i) m = std::max(m, std::abs(x[i]));
  return m;
}

/// Runs `range_fn` over the fixed chunks of [0, n) and combines the
/// per-chunk partials in ascending chunk order with `combine`.
template <typename RangeFn, typename Combine>
double chunked_reduce(std::size_t n, const RangeFn& range_fn,
                      const Combine& combine) {
  if (n <= par::kReduceChunk) return range_fn(0, n);
  const std::size_t nchunks = par::reduce_chunk_count(n);
  std::vector<double> partials(nchunks, 0.0);
  par::for_reduce_chunks(
      n, [&](std::size_t ci, std::size_t b, std::size_t e) {
        partials[ci] = range_fn(b, e);
      });
  double acc = partials[0];
  for (std::size_t ci = 1; ci < nchunks; ++ci) acc = combine(acc, partials[ci]);
  return acc;
}

}  // namespace

double dot(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  return chunked_reduce(
      x.size(),
      [&](std::size_t b, std::size_t e) {
        return dot_range(x.data(), y.data(), b, e);
      },
      [](double a, double b) { return a + b; });
}

double sumsq(std::span<const double> x) {
  return chunked_reduce(
      x.size(),
      [&](std::size_t b, std::size_t e) { return sumsq_range(x.data(), b, e); },
      [](double a, double b) { return a + b; });
}

double nrm2(std::span<const double> x) {
  // Two-pass scaled norm: cheap and robust for the magnitudes GMRES
  // produces (Krylov vectors can overflow the naive sum of squares).
  double m = amax(x);
  if (m == 0.0 || !std::isfinite(m)) return m;
  const double inv = 1.0 / m;
  const double s = chunked_reduce(
      x.size(),
      [&](std::size_t b, std::size_t e) {
        double acc = 0.0;
        for (std::size_t i = b; i < e; ++i) {
          const double t = x[i] * inv;
          acc += t * t;
        }
        return acc;
      },
      [](double a, double b) { return a + b; });
  return m * std::sqrt(s);
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  assert(x.size() == y.size());
  par::parallel_for_grained(x.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) y[i] += alpha * x[i];
  });
}

void scal(double alpha, std::span<double> x) {
  par::parallel_for_grained(x.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) x[i] *= alpha;
  });
}

void vcopy(std::span<const double> x, std::span<double> y) {
  assert(x.size() == y.size());
  par::parallel_for_grained(x.size(), [&](std::size_t b, std::size_t e) {
    std::copy(x.begin() + static_cast<std::ptrdiff_t>(b),
              x.begin() + static_cast<std::ptrdiff_t>(e),
              y.begin() + static_cast<std::ptrdiff_t>(b));
  });
}

double amax(std::span<const double> x) {
  return chunked_reduce(
      x.size(),
      [&](std::size_t b, std::size_t e) { return amax_range(x.data(), b, e); },
      [](double a, double b) { return std::max(a, b); });
}

}  // namespace tsbo::dense
