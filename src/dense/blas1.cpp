#include "dense/blas1.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tsbo::dense {

double dot(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  // Four partial accumulators break the serial dependence chain and let
  // the compiler vectorize; they also slightly improve rounding.
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  const std::size_t n4 = x.size() - x.size() % 4;
  for (; i < n4; i += 4) {
    s0 += x[i] * y[i];
    s1 += x[i + 1] * y[i + 1];
    s2 += x[i + 2] * y[i + 2];
    s3 += x[i + 3] * y[i + 3];
  }
  for (; i < x.size(); ++i) s0 += x[i] * y[i];
  return (s0 + s1) + (s2 + s3);
}

double nrm2(std::span<const double> x) {
  // Two-pass scaled norm: cheap and robust for the magnitudes GMRES
  // produces (Krylov vectors can overflow the naive sum of squares).
  double m = amax(x);
  if (m == 0.0 || !std::isfinite(m)) return m;
  double s = 0.0;
  const double inv = 1.0 / m;
  for (double v : x) {
    const double t = v * inv;
    s += t * t;
  }
  return m * std::sqrt(s);
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scal(double alpha, std::span<double> x) {
  for (double& v : x) v *= alpha;
}

void vcopy(std::span<const double> x, std::span<double> y) {
  assert(x.size() == y.size());
  std::copy(x.begin(), x.end(), y.begin());
}

double amax(std::span<const double> x) {
  double m = 0.0;
  for (double v : x) m = std::max(m, std::abs(v));
  return m;
}

}  // namespace tsbo::dense
