#include "dense/blas1.hpp"

#include "par/config.hpp"
#include "util/aligned.hpp"
#include "util/simd.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tsbo::dense {

namespace {

// Per-chunk kernels: each processes [begin, end) with a fixed
// accumulation order (vector lanes at fixed offsets from `begin`, then
// the scalar tail), so the chunked drivers below are deterministic for
// any thread count (see par/config.hpp and util/simd.hpp).

constexpr std::size_t kW = simd::kLanes;

double dot_range(const double* x, const double* y, std::size_t begin,
                 std::size_t end) {
  const double* px = x + begin;
  const double* py = y + begin;
  const std::size_t n = end - begin;
  // Four independent vector accumulators break the FMA dependence chain;
  // they are combined pairwise in a fixed order below.
  simd::Vec a0 = simd::zero(), a1 = simd::zero();
  simd::Vec a2 = simd::zero(), a3 = simd::zero();
  std::size_t i = 0;
  for (; i + 4 * kW <= n; i += 4 * kW) {
    a0 = simd::mul_add(simd::load(px + i), simd::load(py + i), a0);
    a1 = simd::mul_add(simd::load(px + i + kW), simd::load(py + i + kW), a1);
    a2 = simd::mul_add(simd::load(px + i + 2 * kW),
                       simd::load(py + i + 2 * kW), a2);
    a3 = simd::mul_add(simd::load(px + i + 3 * kW),
                       simd::load(py + i + 3 * kW), a3);
  }
  for (; i + kW <= n; i += kW) {
    a0 = simd::mul_add(simd::load(px + i), simd::load(py + i), a0);
  }
  double s =
      simd::reduce_add(simd::add(simd::add(a0, a1), simd::add(a2, a3)));
  for (; i < n; ++i) s += px[i] * py[i];
  return s;
}

double sumsq_range(const double* x, std::size_t begin, std::size_t end) {
  return dot_range(x, x, begin, end);
}

double amax_range(const double* x, std::size_t begin, std::size_t end) {
  const double* px = x + begin;
  const std::size_t n = end - begin;
  simd::Vec vm = simd::zero();
  std::size_t i = 0;
  for (; i + kW <= n; i += kW) {
    vm = simd::max(vm, simd::abs(simd::load(px + i)));
  }
  double m = simd::reduce_max(vm);
  for (; i < n; ++i) m = std::max(m, std::abs(px[i]));
  return m;
}

double scaled_sumsq_range(const double* x, double inv, std::size_t begin,
                          std::size_t end) {
  const double* px = x + begin;
  const std::size_t n = end - begin;
  const simd::Vec vinv = simd::set1(inv);
  simd::Vec a0 = simd::zero(), a1 = simd::zero();
  std::size_t i = 0;
  for (; i + 2 * kW <= n; i += 2 * kW) {
    const simd::Vec t0 = simd::mul(simd::load(px + i), vinv);
    const simd::Vec t1 = simd::mul(simd::load(px + i + kW), vinv);
    a0 = simd::mul_add(t0, t0, a0);
    a1 = simd::mul_add(t1, t1, a1);
  }
  for (; i + kW <= n; i += kW) {
    const simd::Vec t0 = simd::mul(simd::load(px + i), vinv);
    a0 = simd::mul_add(t0, t0, a0);
  }
  double s = simd::reduce_add(simd::add(a0, a1));
  for (; i < n; ++i) {
    const double t = px[i] * inv;
    s += t * t;
  }
  return s;
}

/// Runs `range_fn` over the fixed chunks of [0, n) and combines the
/// per-chunk partials in ascending chunk order with `combine`.
template <typename RangeFn, typename Combine>
double chunked_reduce(std::size_t n, const RangeFn& range_fn,
                      const Combine& combine) {
  if (n <= par::kReduceChunk) return range_fn(0, n);
  const std::size_t nchunks = par::reduce_chunk_count(n);
  util::aligned_vector<double> partials(nchunks, 0.0);
  par::for_reduce_chunks(
      n, [&](std::size_t ci, std::size_t b, std::size_t e) {
        partials[ci] = range_fn(b, e);
      });
  double acc = partials[0];
  for (std::size_t ci = 1; ci < nchunks; ++ci) acc = combine(acc, partials[ci]);
  return acc;
}

}  // namespace

double dot(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  return chunked_reduce(
      x.size(),
      [&](std::size_t b, std::size_t e) {
        return dot_range(x.data(), y.data(), b, e);
      },
      [](double a, double b) { return a + b; });
}

double sumsq(std::span<const double> x) {
  return chunked_reduce(
      x.size(),
      [&](std::size_t b, std::size_t e) { return sumsq_range(x.data(), b, e); },
      [](double a, double b) { return a + b; });
}

double nrm2(std::span<const double> x) {
  // Two-pass scaled norm: cheap and robust for the magnitudes GMRES
  // produces (Krylov vectors can overflow the naive sum of squares).
  double m = amax(x);
  if (m == 0.0 || !std::isfinite(m)) return m;
  const double inv = 1.0 / m;
  const double s = chunked_reduce(
      x.size(),
      [&](std::size_t b, std::size_t e) {
        return scaled_sumsq_range(x.data(), inv, b, e);
      },
      [](double a, double b) { return a + b; });
  return m * std::sqrt(s);
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  assert(x.size() == y.size());
  const simd::Vec va = simd::set1(alpha);
  par::parallel_for_grained(x.size(), [&](std::size_t b, std::size_t e) {
    const double* px = x.data();
    double* py = y.data();
    std::size_t i = b;
    for (; i + kW <= e; i += kW) {
      simd::store(py + i,
                  simd::mul_add(va, simd::load(px + i), simd::load(py + i)));
    }
    // Same rounding as the vector body: the grained partition moves
    // with the thread count, so the tail must match lane-for-lane.
    for (; i < e; ++i) py[i] = simd::mul_add(alpha, px[i], py[i]);
  });
}

void scal(double alpha, std::span<double> x) {
  const simd::Vec va = simd::set1(alpha);
  par::parallel_for_grained(x.size(), [&](std::size_t b, std::size_t e) {
    double* px = x.data();
    std::size_t i = b;
    for (; i + kW <= e; i += kW) {
      simd::store(px + i, simd::mul(va, simd::load(px + i)));
    }
    for (; i < e; ++i) px[i] *= alpha;
  });
}

void vcopy(std::span<const double> x, std::span<double> y) {
  assert(x.size() == y.size());
  par::parallel_for_grained(x.size(), [&](std::size_t b, std::size_t e) {
    std::copy(x.begin() + static_cast<std::ptrdiff_t>(b),
              x.begin() + static_cast<std::ptrdiff_t>(e),
              y.begin() + static_cast<std::ptrdiff_t>(b));
  });
}

double amax(std::span<const double> x) {
  return chunked_reduce(
      x.size(),
      [&](std::size_t b, std::size_t e) { return amax_range(x.data(), b, e); },
      [](double a, double b) { return std::max(a, b); });
}

}  // namespace tsbo::dense
