#include "dense/cholesky.hpp"

#include <cassert>
#include <cmath>

namespace tsbo::dense {

CholResult potrf_upper(MatrixView a) {
  assert(a.rows == a.cols);
  const index_t n = a.rows;
  for (index_t j = 0; j < n; ++j) {
    // d = a_jj - sum_k r_kj^2
    double d = a(j, j);
    const double* colj = a.col(j);
    for (index_t k = 0; k < j; ++k) d -= colj[k] * colj[k];
    if (!(d > 0.0) || !std::isfinite(d)) {
      return {j + 1};
    }
    const double rjj = std::sqrt(d);
    a(j, j) = rjj;
    const double inv = 1.0 / rjj;
    for (index_t c = j + 1; c < n; ++c) {
      double s = a(j, c);
      const double* colc = a.col(c);
      for (index_t k = 0; k < j; ++k) s -= colj[k] * colc[k];
      a(j, c) = s * inv;
    }
  }
  // Zero the strict lower triangle so the output is exactly R.
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j + 1; i < n; ++i) a(i, j) = 0.0;
  }
  return {0};
}

CholResult potrf_upper_shifted(MatrixView a, double shift) {
  assert(a.rows == a.cols);
  for (index_t j = 0; j < a.cols; ++j) a(j, j) += shift;
  return potrf_upper(a);
}

double one_norm(ConstMatrixView a) {
  double best = 0.0;
  for (index_t j = 0; j < a.cols; ++j) {
    double s = 0.0;
    const double* col = a.col(j);
    for (index_t i = 0; i < a.rows; ++i) s += std::abs(col[i]);
    best = s > best ? s : best;
  }
  return best;
}

}  // namespace tsbo::dense
