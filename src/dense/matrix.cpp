#include "dense/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace tsbo::dense {

Matrix Matrix::identity(index_t n) {
  Matrix m(n, n);
  for (index_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix copy_of(ConstMatrixView a) {
  Matrix out(a.rows, a.cols);
  copy(a, out.view());
  return out;
}

void copy(ConstMatrixView src, MatrixView dst) {
  assert(src.rows == dst.rows && src.cols == dst.cols);
  for (index_t j = 0; j < src.cols; ++j) {
    std::copy_n(src.col(j), src.rows, dst.col(j));
  }
}

void fill(MatrixView a, double v) {
  for (index_t j = 0; j < a.cols; ++j) {
    std::fill_n(a.col(j), a.rows, v);
  }
}

double max_abs_diff(ConstMatrixView a, ConstMatrixView b) {
  assert(a.rows == b.rows && a.cols == b.cols);
  double d = 0.0;
  for (index_t j = 0; j < a.cols; ++j) {
    const double* pa = a.col(j);
    const double* pb = b.col(j);
    for (index_t i = 0; i < a.rows; ++i) {
      d = std::max(d, std::abs(pa[i] - pb[i]));
    }
  }
  return d;
}

}  // namespace tsbo::dense
