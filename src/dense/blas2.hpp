#pragma once
// BLAS-2 style matrix-vector kernels (used by HHQR and small projected
// operations on the Hessenberg system).

#include "dense/matrix.hpp"

#include <span>

namespace tsbo::dense {

/// y = alpha * A x + beta * y
void gemv(double alpha, ConstMatrixView a, std::span<const double> x,
          double beta, std::span<double> y);

/// y = alpha * A^T x + beta * y
void gemv_t(double alpha, ConstMatrixView a, std::span<const double> x,
            double beta, std::span<double> y);

/// A += alpha * x y^T
void ger(double alpha, std::span<const double> x, std::span<const double> y,
         MatrixView a);

/// Solves U x = b in place (U upper triangular, non-unit diagonal).
void trsv_upper(ConstMatrixView u, std::span<double> x);

/// Solves L x = b in place (L lower triangular, non-unit diagonal).
void trsv_lower(ConstMatrixView l, std::span<double> x);

}  // namespace tsbo::dense
