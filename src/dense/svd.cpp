#include "dense/svd.hpp"

#include "dense/blas3.hpp"
#include "dense/householder.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace tsbo::dense {

namespace {

/// One-sided Jacobi on a square (or modestly tall) matrix held in `w`:
/// orthogonalizes columns pairwise; on exit the column norms are the
/// singular values.
std::vector<double> jacobi_singular_values(Matrix w) {
  const index_t n = w.rows(), s = w.cols();
  assert(n >= s);
  const double tol = 1e-14;
  const int max_sweeps = 60;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool converged = true;
    for (index_t p = 0; p < s - 1; ++p) {
      for (index_t q = p + 1; q < s; ++q) {
        double app = 0.0, aqq = 0.0, apq = 0.0;
        const double* cp = w.col(p);
        const double* cq = w.col(q);
        for (index_t i = 0; i < n; ++i) {
          app += cp[i] * cp[i];
          aqq += cq[i] * cq[i];
          apq += cp[i] * cq[i];
        }
        if (std::abs(apq) <= tol * std::sqrt(app * aqq)) continue;
        converged = false;

        // Classic Jacobi rotation zeroing the (p,q) Gram entry.
        const double zeta = (aqq - app) / (2.0 * apq);
        const double t = (zeta >= 0.0)
                             ? 1.0 / (zeta + std::sqrt(1.0 + zeta * zeta))
                             : 1.0 / (zeta - std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double sn = c * t;
        double* mp = w.col(p);
        double* mq = w.col(q);
        for (index_t i = 0; i < n; ++i) {
          const double vp = mp[i], vq = mq[i];
          mp[i] = c * vp - sn * vq;
          mq[i] = sn * vp + c * vq;
        }
      }
    }
    if (converged) break;
  }

  std::vector<double> sv(s);
  for (index_t j = 0; j < s; ++j) {
    const double* cj = w.col(j);
    double ss = 0.0;
    for (index_t i = 0; i < n; ++i) ss += cj[i] * cj[i];
    sv[j] = std::sqrt(ss);
  }
  std::sort(sv.begin(), sv.end(), std::greater<>());
  return sv;
}

}  // namespace

std::vector<double> singular_values(ConstMatrixView a) {
  assert(a.rows >= a.cols);
  if (a.cols == 0) return {};
  if (a.rows > 2 * a.cols) {
    // QR-reduce first: sigma(A) == sigma(R) and Householder QR is
    // backward stable, so small singular values survive.
    HouseholderQR f = geqrf(a);
    return jacobi_singular_values(extract_r(f));
  }
  return jacobi_singular_values(copy_of(a));
}

double cond_2(ConstMatrixView a) {
  const std::vector<double> sv = singular_values(a);
  if (sv.empty()) return 1.0;
  const double smin = sv.back();
  if (smin <= 0.0) return std::numeric_limits<double>::infinity();
  return sv.front() / smin;
}

double norm_2(ConstMatrixView a) {
  if (a.rows < a.cols) {
    // Transpose to tall orientation; singular values are shared.
    Matrix t(a.cols, a.rows);
    for (index_t j = 0; j < a.cols; ++j) {
      for (index_t i = 0; i < a.rows; ++i) t(j, i) = a(i, j);
    }
    const auto sv = singular_values(t.view());
    return sv.empty() ? 0.0 : sv.front();
  }
  const auto sv = singular_values(a);
  return sv.empty() ? 0.0 : sv.front();
}

double orthogonality_error(ConstMatrixView a) {
  Matrix g(a.cols, a.cols);
  syrk_tn(a, g.view());
  for (index_t j = 0; j < a.cols; ++j) g(j, j) -= 1.0;
  return norm_2(g.view());
}

}  // namespace tsbo::dense
