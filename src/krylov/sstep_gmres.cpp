#include "krylov/sstep_gmres.hpp"

#include "dense/blas1.hpp"
#include "dense/blas2.hpp"
#include "dense/givens.hpp"
#include "krylov/hessenberg.hpp"
#include "util/aligned.hpp"

#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

namespace tsbo::krylov {

const char* ortho_scheme_name(OrthoScheme s) {
  switch (s) {
    case OrthoScheme::kBcgs2CholQr2:
      return "BCGS2(CholQR2)";
    case OrthoScheme::kBcgs2Hhqr:
      return "BCGS2(HHQR)";
    case OrthoScheme::kBcgsPip:
      return "BCGS-PIP";
    case OrthoScheme::kBcgsPip2:
      return "BCGS-PIP2";
    case OrthoScheme::kTwoStage:
      return "Two-stage";
  }
  return "?";
}

std::unique_ptr<ortho::BlockOrthoManager> make_manager(
    const SStepGmresConfig& cfg) {
  if (cfg.manager_factory) {
    auto manager = cfg.manager_factory(cfg);
    if (manager == nullptr) {
      throw std::invalid_argument(
          "make_manager: manager_factory returned null for this config");
    }
    return manager;
  }
  switch (cfg.scheme) {
    case OrthoScheme::kBcgs2CholQr2:
      return ortho::make_bcgs2_manager(ortho::IntraKind::kCholQR2);
    case OrthoScheme::kBcgs2Hhqr:
      return ortho::make_bcgs2_manager(ortho::IntraKind::kHHQR);
    case OrthoScheme::kBcgsPip:
      return ortho::make_bcgs_pip_manager();
    case OrthoScheme::kBcgsPip2:
      return ortho::make_bcgs_pip2_manager();
    case OrthoScheme::kTwoStage:
      return ortho::make_two_stage_manager(cfg.bs);
  }
  throw std::invalid_argument("make_manager: unknown scheme");
}

namespace {

void validate(const SStepGmresConfig& cfg) {
  if (cfg.s <= 0 || cfg.m <= 0 || cfg.m % cfg.s != 0) {
    throw std::invalid_argument("sstep_gmres: s must divide m");
  }
  if (cfg.scheme == OrthoScheme::kTwoStage) {
    if (cfg.bs < cfg.s || cfg.bs > cfg.m || cfg.bs % cfg.s != 0) {
      throw std::invalid_argument(
          "sstep_gmres: two-stage requires s <= bs <= m with s | bs");
    }
  }
  if ((cfg.basis == BasisKind::kNewton || cfg.basis == BasisKind::kChebyshev) &&
      !(cfg.lambda_max > cfg.lambda_min)) {
    throw std::invalid_argument(
        "sstep_gmres: Newton/Chebyshev bases need a spectral interval");
  }
  if (cfg.autopilot.enabled) {
    if (!(cfg.autopilot.kappa_high > cfg.autopilot.kappa_low) ||
        !(cfg.autopilot.kappa_low > 0.0)) {
      throw std::invalid_argument(
          "sstep_gmres: autopilot needs 0 < kappa_low < kappa_high");
    }
    if (cfg.autopilot.s_min < 1 || cfg.autopilot.patience < 1) {
      throw std::invalid_argument(
          "sstep_gmres: autopilot needs s_min >= 1 and patience >= 1");
    }
  }
}

/// The Newton/Chebyshev recurrences depend on the panel width, so a
/// basis built here is valid only for the step size it was built with —
/// the autopilot rebuilds on every s change.
KrylovBasis make_basis(const SStepGmresConfig& cfg, index_t s) {
  switch (cfg.basis) {
    case BasisKind::kMonomial:
      return KrylovBasis::monomial(cfg.m);
    case BasisKind::kNewton:
      return KrylovBasis::newton(cfg.m, s, cfg.lambda_min, cfg.lambda_max);
    case BasisKind::kChebyshev:
      return KrylovBasis::chebyshev(cfg.m, s, cfg.lambda_min, cfg.lambda_max);
  }
  throw std::invalid_argument("sstep_gmres: unknown basis");
}

/// Step-size ladder for the autopilot: ascending divisors d of m with
/// autopilot.s_min <= d <= s, additionally required to divide bs when
/// the configured s does (preserving the two-stage invariant s | bs).
/// Always ends with the configured s, which is exempt from the s_min
/// floor — the user's choice is the ladder's top rung by definition.
std::vector<index_t> step_ladder(const SStepGmresConfig& cfg) {
  std::vector<index_t> ladder;
  const bool tie_bs = cfg.bs % cfg.s == 0;
  for (index_t d = 1; d <= cfg.s; ++d) {
    if (cfg.m % d != 0) continue;
    if (tie_bs && cfg.bs % d != 0) continue;
    if (d < cfg.autopilot.s_min && d != cfg.s) continue;
    ladder.push_back(d);
  }
  if (ladder.empty() || ladder.back() != cfg.s) ladder.push_back(cfg.s);
  return ladder;
}

/// With the double-double Gram in effect the plain-double kappa_high no
/// longer binds; escalation pressure resumes only near the dd validity
/// edge (basis kappa ~ u_dd^{-1/2} ~ 1e15, taken with two orders of
/// margin, mirroring kappa_high's default margin to eps^{-1/2}).
constexpr double kDdKappaHigh = 1e13;

void residual(par::Communicator& comm, const sparse::DistCsr& a,
              std::span<const double> b, std::span<const double> x,
              std::span<double> r, std::span<double> tmp,
              util::PhaseTimers* timers) {
  a.spmv(comm, x, tmp, timers);
  for (std::size_t i = 0; i < r.size(); ++i) r[i] = b[i] - tmp[i];
}

}  // namespace

SolveResult sstep_gmres(par::Communicator& comm, const sparse::DistCsr& a,
                        const precond::Preconditioner* m_prec,
                        std::span<const double> b, std::span<double> x,
                        const SStepGmresConfig& cfg) {
  validate(cfg);
  const auto nloc = static_cast<std::size_t>(a.n_local());
  assert(b.size() == nloc && x.size() == nloc);

  SolveResult res;
  const par::CommStats comm_before = comm.stats();
  ortho::OrthoContext octx;
  octx.comm = &comm;
  octx.timers = &res.timers;
  // The autopilot owns breakdown handling: force kThrow so breakdowns
  // surface to the re-base recovery instead of being shift-perturbed
  // (supersedes the configured policy while enabled).
  const bool ap = cfg.autopilot.enabled;
  octx.policy = ap ? ortho::BreakdownPolicy::kThrow : cfg.policy;
  octx.mixed_precision_gram = cfg.mixed_precision_gram;
  octx.inject_breakdown = cfg.inject_chol_breakdown;

  PrecOperator op(a, m_prec);
  // Scale the monomial/Newton recurrences by an operator-norm estimate
  // so the raw MPK vectors stay O(1): without this the monomial basis
  // grows like ||A||^s per panel and the Gram matrices overflow their
  // conditioning long before condition (5) is the binding constraint.
  // (Chebyshev's own gamma already normalizes.)
  double gamma_scale = 0.0;
  if (cfg.basis != BasisKind::kChebyshev) {
    const sparse::CsrMatrix& local = a.local_matrix();
    double est = 0.0;
    for (sparse::ord i = 0; i < local.rows; ++i) {
      double row = 0.0;
      double diag = 1.0;
      for (sparse::offset k = local.row_ptr[i]; k < local.row_ptr[i + 1]; ++k) {
        const auto kk = static_cast<std::size_t>(k);
        row += std::abs(local.values[kk]);
        if (local.col_idx[kk] == i) diag = std::abs(local.values[kk]);
      }
      // With a (roughly diagonal-normalizing) preconditioner the
      // operator is closer to D^{-1}A; estimate accordingly.
      est = std::max(est, m_prec != nullptr && diag > 0.0 ? row / diag : row);
    }
    gamma_scale = comm.allreduce_max_scalar(est);
  }
  const auto build_basis = [&](index_t s) {
    KrylovBasis kb = make_basis(cfg, s);
    if (gamma_scale > 0.0) kb = kb.with_gamma_scale(gamma_scale);
    return kb;
  };
  KrylovBasis kbasis = build_basis(cfg.s);
  std::unique_ptr<ortho::BlockOrthoManager> manager = make_manager(cfg);

  // Autopilot state: the step-size ladder plus the Gram precision in
  // effect.  All transitions are driven by globally-reduced estimates,
  // so every rank holds identical state after every restart.
  const std::vector<index_t> ladder =
      ap ? step_ladder(cfg) : std::vector<index_t>{cfg.s};
  std::size_t rung = ladder.size() - 1;  // index of the configured s
  index_t s_cur = cfg.s;
  bool dd_cur = cfg.mixed_precision_gram;
  int healthy = 0;  // consecutive cycles below kappa_low
  res.autopilot_final_s = s_cur;
  res.autopilot_final_dd = dd_cur;

  dense::Matrix basis(static_cast<index_t>(nloc), cfg.m + 1);
  dense::Matrix rmat(cfg.m + 1, cfg.m + 1);
  dense::Matrix lmat(cfg.m + 1, cfg.m + 1);
  dense::Matrix hmat(cfg.m + 1, cfg.m);
  util::aligned_vector<double> r(nloc), tmp(nloc), z(nloc);

  res.timers.start("total");
  residual(comm, a, b, x, r, tmp, &res.timers);
  const double gamma0 = ortho::global_norm(octx, r);
  double gamma = gamma0;
  if (gamma0 == 0.0) res.converged = true;
  // Convergence reference: the initial-residual norm by default (for a
  // zero guess that IS ||b||, bit-for-bit), or the caller's fixed norm
  // (the warm-start path — a good x0 then starts partway to the
  // target instead of re-normalizing it).
  const double ref = cfg.conv_reference > 0.0 ? cfg.conv_reference : gamma0;
  if (cfg.conv_reference > 0.0 && gamma0 <= cfg.rtol * ref) {
    res.converged = true;
  }

  while (!res.converged && res.iters < cfg.max_iters &&
         res.restarts < cfg.max_restarts) {
    // Cooperative cancellation / deadline poll, only when a token is
    // installed (zero extra syncs otherwise).  The collective max makes
    // the stop decision identical on every rank even though the flag
    // flips asynchronously, so no rank is left inside a collective.
    if (cfg.cancel != nullptr) {
      const double stop =
          comm.allreduce_max_scalar(cfg.cancel->should_stop() ? 1.0 : 0.0);
      if (stop > 0.0) {
        if (cfg.cancel->cancelled()) {
          res.cancelled = true;
        } else {
          res.deadline_expired = true;
        }
        break;
      }
    }
    // Seed the cycle: column 0 = r / gamma; R = L = identity seed.
    {
      double* q0 = basis.col(0);
      const double inv = 1.0 / gamma;
      for (std::size_t i = 0; i < nloc; ++i) q0[i] = r[i] * inv;
    }
    rmat.set_zero();
    lmat.set_zero();
    rmat(0, 0) = 1.0;
    manager->reset();
    dense::HessenbergLeastSquares ls(cfg.m, gamma);

    index_t assembled = 0;  // Hessenberg columns appended so far
    index_t generated = 1;  // basis columns stage-1-processed so far
    bool inner_converged = false;
    bool have_next = false;  // speculative next-panel columns in place

    const index_t npanel = cfg.m / s_cur;
    double cycle_kappa = 0.0;
    bool cycle_breakdown = false;
    // Basis-level conditioning estimate for the cycle: sqrt of the
    // monitor's Gram estimate (kappa(G) ~ kappa(V)^2).  Computed from
    // the replicated post-reduce factor — identical bits on every rank
    // at any thread count.
    const auto poll_monitor = [&] {
      const double gram_est = octx.take_gram_kappa_peak();
      if (gram_est > 0.0) {
        cycle_kappa = std::max(cycle_kappa, std::sqrt(gram_est));
      }
    };
    try {
      for (index_t p = 0; p < npanel; ++p) {
        const index_t start = p * s_cur;
        if (have_next) {
          // The lookahead already generated this panel's columns inside
          // the previous panel's reduce window (and recorded the raw MPK
          // start with the manager).
          res.lookahead_hits += 1;
          have_next = false;
        } else {
          manager->note_mpk_start(octx, lmat.view(), start);
          matrix_powers(comm, op, kbasis, basis.view(), start + 1, s_cur,
                        &res.timers);
        }

        index_t nfinal;
        if (manager->add_panel_begin(octx, basis.view(), start + 1, s_cur,
                                     cfg.pipeline_depth > 0)) {
          // Pipelined lookahead: with the stage-1 fused Gram reduce in
          // flight, generate the NEXT panel's matrix-powers columns from
          // this panel's raw (not yet transformed) last column.  The
          // schedule is the same at every pipeline_depth — the option
          // selects only whether the window earns overlap credit — so
          // the solution is bitwise independent of it.
          const index_t next = start + s_cur;
          if (p + 1 < npanel) {
            manager->note_mpk_start_raw(octx, next);
            matrix_powers(comm, op, kbasis, basis.view(), next + 1, s_cur,
                          &res.timers);
            have_next = true;
          }
          nfinal = manager->add_panel_finish(octx, basis.view(), start + 1,
                                             s_cur, rmat.view(), lmat.view());
          if (have_next) {
            // Deferred normalization: rescale the speculative panel by
            // the manager's power-of-two scale now that the stage-1
            // factor is known (exact — commutes with the recurrence).
            // Scale 0 means the manager's quality guard rejected the
            // speculation (raw column too decayed): discard the panel
            // and fall back to regeneration at the top of the next
            // iteration.  The MPK compute still overlapped the reduce.
            const double alpha = manager->lookahead_scale(next);
            if (alpha == 0.0) {
              res.lookahead_misses += 1;
              have_next = false;
            } else if (alpha != 1.0) {
              for (index_t c = next + 1; c <= next + s_cur; ++c) {
                double* col = basis.col(c);
                for (std::size_t i = 0; i < nloc; ++i) col[i] *= alpha;
              }
            }
          }
        } else {
          nfinal = manager->add_panel(octx, basis.view(), start + 1, s_cur,
                                      rmat.view(), lmat.view());
        }
        // Count the panel only once its orthogonalization held: a
        // thrown CholeskyBreakdown rolls the cycle back to the last
        // accepted column, excluding the broken panel's columns.
        generated = start + 1 + s_cur;
        poll_monitor();

        if (nfinal - 1 > assembled) {
          res.timers.start("ortho/small");
          assemble_hessenberg(rmat.view(), lmat.view(), kbasis, s_cur,
                              assembled, nfinal - 1, hmat.view());
          for (index_t k = assembled; k < nfinal - 1; ++k) {
            ls.append_column(std::span<const double>(
                hmat.col(k), static_cast<std::size_t>(k) + 2));
          }
          res.timers.stop("ortho/small");
          assembled = nfinal - 1;
          if (ls.residual_norm() <= cfg.rtol * ref) {
            inner_converged = true;
            break;
          }
        }
      }
    } catch (const ortho::CholeskyBreakdown&) {
      // Autopilot recovery: the broken panel's columns are beyond
      // `generated`, so the cycle re-bases from the last accepted
      // column below.  Without the autopilot the breakdown propagates
      // (kThrow semantics unchanged).
      if (!ap) throw;
      cycle_breakdown = true;
      poll_monitor();
    }

    // A speculative panel left in place by an early inner break (or a
    // recovered breakdown) was generated but never consumed: its
    // columns are simply abandoned.
    if (have_next) {
      res.lookahead_misses += 1;
      have_next = false;
    }

    // Flush a partially filled big panel (bs not dividing m, an early
    // inner break, or a cycle cut short by a recovered breakdown).
    index_t nfinal = generated;
    if (!cycle_breakdown) {
      try {
        nfinal = manager->finalize(octx, basis.view(), generated, rmat.view(),
                                   lmat.view());
      } catch (const ortho::CholeskyBreakdown&) {
        if (!ap) throw;
        cycle_breakdown = true;
      }
    }
    if (cycle_breakdown) {
      // Re-base: discard broken state, keep whatever prefix the manager
      // can still finalize, and let the normal correction + restart
      // continue from the last accepted column.
      res.rebase_recoveries += 1;
      nfinal = manager->rebase_after_breakdown(octx, basis.view(), generated,
                                               rmat.view(), lmat.view());
    }
    poll_monitor();
    if (nfinal - 1 > assembled) {
      res.timers.start("ortho/small");
      assemble_hessenberg(rmat.view(), lmat.view(), kbasis, s_cur, assembled,
                          nfinal - 1, hmat.view());
      for (index_t k = assembled; k < nfinal - 1; ++k) {
        ls.append_column(std::span<const double>(
            hmat.col(k), static_cast<std::size_t>(k) + 2));
      }
      res.timers.stop("ortho/small");
      assembled = nfinal - 1;
      if (ls.residual_norm() <= cfg.rtol * ref) inner_converged = true;
    }

    // Correction: x += M^{-1} (Q_{1:assembled} y).
    const index_t used = ls.cols();
    if (used > 0) {
      const std::vector<double> y = ls.solve_y();
      res.timers.start("ortho/small");
      dense::gemv(1.0, basis.view().columns(0, used), y, 0.0, z);
      res.timers.stop("ortho/small");
      op.apply_minv(z, tmp, &res.timers);
      dense::axpy(1.0, tmp, x);
    }
    res.iters += assembled;
    res.restarts += 1;
    res.relres = ref > 0.0 ? ls.residual_norm() / ref : 0.0;

    residual(comm, a, b, x, r, tmp, &res.timers);
    gamma = ortho::global_norm(octx, r);
    if (inner_converged || gamma <= cfg.rtol * ref) res.converged = true;

    // Conditioning monitor summary (maintained even with the autopilot
    // off — free observability from the Cholesky diagonals).
    res.autopilot_max_kappa = std::max(res.autopilot_max_kappa, cycle_kappa);

    if (ap) {
      // A breakdown before any panel's factor succeeded leaves no
      // diagonal-ratio estimate; record the honest "beyond measurement"
      // value rather than a healthy-looking zero.
      const double kappa_rec =
          (cycle_breakdown && cycle_kappa == 0.0)
              ? std::numeric_limits<double>::infinity()
              : cycle_kappa;
      const auto record = [&](const char* kind, index_t s_after,
                              bool dd_after) {
        res.autopilot_events.push_back(AutopilotEvent{
            res.restarts, kind, kappa_rec, s_cur, s_after, dd_cur, dd_after});
      };
      if (cycle_breakdown) record("rebase", s_cur, dd_cur);
      if (!res.converged) {
        if (cycle_breakdown && assembled == 0 && rung == 0 && dd_cur) {
          // Saturated ladder (s at minimum, dd Gram) and a cycle that
          // accepted nothing: no escalation can make progress.
          throw ortho::CholeskyBreakdown(
              "sstep_gmres: stability autopilot saturated (s at minimum, "
              "double-double Gram) with no columns accepted in the cycle");
        }
        const double high = dd_cur ? kDdKappaHigh : cfg.autopilot.kappa_high;
        if (cycle_breakdown || cycle_kappa > high) {
          healthy = 0;
          if (rung > 0) {
            record("shrink_s", ladder[rung - 1], dd_cur);
            rung -= 1;
            s_cur = ladder[rung];
            kbasis = build_basis(s_cur);
          } else if (!dd_cur) {
            record("escalate_gram", s_cur, true);
            dd_cur = true;
            octx.mixed_precision_gram = true;
          }
        } else if (cycle_kappa < cfg.autopilot.kappa_low &&
                   (dd_cur != cfg.mixed_precision_gram || s_cur != cfg.s)) {
          healthy += 1;
          if (healthy >= cfg.autopilot.patience) {
            healthy = 0;
            if (dd_cur && !cfg.mixed_precision_gram) {
              record("relax_gram", s_cur, false);
              dd_cur = false;
              octx.mixed_precision_gram = false;
            } else if (rung + 1 < ladder.size()) {
              record("grow_s", ladder[rung + 1], dd_cur);
              rung += 1;
              s_cur = ladder[rung];
              kbasis = build_basis(s_cur);
            }
          }
        } else {
          healthy = 0;
        }
      }
      res.autopilot_final_s = s_cur;
      res.autopilot_final_dd = dd_cur;
    }
    if (cfg.on_restart) {
      cfg.on_restart(ProgressEvent{res.iters, res.restarts, res.relres,
                                   ref > 0.0 ? gamma / ref : 0.0,
                                   res.converged, &res.timers});
    }
  }

  res.timers.stop("total");
  residual(comm, a, b, x, r, tmp, &res.timers);
  const double final_norm = ortho::global_norm(octx, r);
  res.true_relres = ref > 0.0 ? final_norm / ref : 0.0;
  res.comm_stats = par::subtract(comm.stats(), comm_before);
  res.cholesky_breakdowns = octx.cholesky_breakdowns;
  res.shift_retries = octx.shift_retries;
  return res;
}

}  // namespace tsbo::krylov
