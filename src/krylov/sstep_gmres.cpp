#include "krylov/sstep_gmres.hpp"

#include "dense/blas1.hpp"
#include "dense/blas2.hpp"
#include "dense/givens.hpp"
#include "krylov/hessenberg.hpp"
#include "util/aligned.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace tsbo::krylov {

const char* ortho_scheme_name(OrthoScheme s) {
  switch (s) {
    case OrthoScheme::kBcgs2CholQr2:
      return "BCGS2(CholQR2)";
    case OrthoScheme::kBcgs2Hhqr:
      return "BCGS2(HHQR)";
    case OrthoScheme::kBcgsPip:
      return "BCGS-PIP";
    case OrthoScheme::kBcgsPip2:
      return "BCGS-PIP2";
    case OrthoScheme::kTwoStage:
      return "Two-stage";
  }
  return "?";
}

std::unique_ptr<ortho::BlockOrthoManager> make_manager(
    const SStepGmresConfig& cfg) {
  if (cfg.manager_factory) {
    auto manager = cfg.manager_factory(cfg);
    if (manager == nullptr) {
      throw std::invalid_argument(
          "make_manager: manager_factory returned null for this config");
    }
    return manager;
  }
  switch (cfg.scheme) {
    case OrthoScheme::kBcgs2CholQr2:
      return ortho::make_bcgs2_manager(ortho::IntraKind::kCholQR2);
    case OrthoScheme::kBcgs2Hhqr:
      return ortho::make_bcgs2_manager(ortho::IntraKind::kHHQR);
    case OrthoScheme::kBcgsPip:
      return ortho::make_bcgs_pip_manager();
    case OrthoScheme::kBcgsPip2:
      return ortho::make_bcgs_pip2_manager();
    case OrthoScheme::kTwoStage:
      return ortho::make_two_stage_manager(cfg.bs);
  }
  throw std::invalid_argument("make_manager: unknown scheme");
}

namespace {

void validate(const SStepGmresConfig& cfg) {
  if (cfg.s <= 0 || cfg.m <= 0 || cfg.m % cfg.s != 0) {
    throw std::invalid_argument("sstep_gmres: s must divide m");
  }
  if (cfg.scheme == OrthoScheme::kTwoStage) {
    if (cfg.bs < cfg.s || cfg.bs > cfg.m || cfg.bs % cfg.s != 0) {
      throw std::invalid_argument(
          "sstep_gmres: two-stage requires s <= bs <= m with s | bs");
    }
  }
  if ((cfg.basis == BasisKind::kNewton || cfg.basis == BasisKind::kChebyshev) &&
      !(cfg.lambda_max > cfg.lambda_min)) {
    throw std::invalid_argument(
        "sstep_gmres: Newton/Chebyshev bases need a spectral interval");
  }
}

KrylovBasis make_basis(const SStepGmresConfig& cfg) {
  switch (cfg.basis) {
    case BasisKind::kMonomial:
      return KrylovBasis::monomial(cfg.m);
    case BasisKind::kNewton:
      return KrylovBasis::newton(cfg.m, cfg.s, cfg.lambda_min, cfg.lambda_max);
    case BasisKind::kChebyshev:
      return KrylovBasis::chebyshev(cfg.m, cfg.s, cfg.lambda_min,
                                    cfg.lambda_max);
  }
  throw std::invalid_argument("sstep_gmres: unknown basis");
}

void residual(par::Communicator& comm, const sparse::DistCsr& a,
              std::span<const double> b, std::span<const double> x,
              std::span<double> r, std::span<double> tmp,
              util::PhaseTimers* timers) {
  a.spmv(comm, x, tmp, timers);
  for (std::size_t i = 0; i < r.size(); ++i) r[i] = b[i] - tmp[i];
}

}  // namespace

SolveResult sstep_gmres(par::Communicator& comm, const sparse::DistCsr& a,
                        const precond::Preconditioner* m_prec,
                        std::span<const double> b, std::span<double> x,
                        const SStepGmresConfig& cfg) {
  validate(cfg);
  const auto nloc = static_cast<std::size_t>(a.n_local());
  assert(b.size() == nloc && x.size() == nloc);

  SolveResult res;
  const par::CommStats comm_before = comm.stats();
  ortho::OrthoContext octx;
  octx.comm = &comm;
  octx.timers = &res.timers;
  octx.policy = cfg.policy;
  octx.mixed_precision_gram = cfg.mixed_precision_gram;

  PrecOperator op(a, m_prec);
  KrylovBasis kbasis = make_basis(cfg);
  // Scale the monomial/Newton recurrences by an operator-norm estimate
  // so the raw MPK vectors stay O(1): without this the monomial basis
  // grows like ||A||^s per panel and the Gram matrices overflow their
  // conditioning long before condition (5) is the binding constraint.
  // (Chebyshev's own gamma already normalizes.)
  if (cfg.basis != BasisKind::kChebyshev) {
    const sparse::CsrMatrix& local = a.local_matrix();
    double est = 0.0;
    for (sparse::ord i = 0; i < local.rows; ++i) {
      double row = 0.0;
      double diag = 1.0;
      for (sparse::offset k = local.row_ptr[i]; k < local.row_ptr[i + 1]; ++k) {
        const auto kk = static_cast<std::size_t>(k);
        row += std::abs(local.values[kk]);
        if (local.col_idx[kk] == i) diag = std::abs(local.values[kk]);
      }
      // With a (roughly diagonal-normalizing) preconditioner the
      // operator is closer to D^{-1}A; estimate accordingly.
      est = std::max(est, m_prec != nullptr && diag > 0.0 ? row / diag : row);
    }
    est = comm.allreduce_max_scalar(est);
    if (est > 0.0) kbasis = kbasis.with_gamma_scale(est);
  }
  std::unique_ptr<ortho::BlockOrthoManager> manager = make_manager(cfg);

  dense::Matrix basis(static_cast<index_t>(nloc), cfg.m + 1);
  dense::Matrix rmat(cfg.m + 1, cfg.m + 1);
  dense::Matrix lmat(cfg.m + 1, cfg.m + 1);
  dense::Matrix hmat(cfg.m + 1, cfg.m);
  util::aligned_vector<double> r(nloc), tmp(nloc), z(nloc);

  res.timers.start("total");
  residual(comm, a, b, x, r, tmp, &res.timers);
  const double gamma0 = ortho::global_norm(octx, r);
  double gamma = gamma0;
  if (gamma0 == 0.0) res.converged = true;

  while (!res.converged && res.iters < cfg.max_iters &&
         res.restarts < cfg.max_restarts) {
    // Seed the cycle: column 0 = r / gamma; R = L = identity seed.
    {
      double* q0 = basis.col(0);
      const double inv = 1.0 / gamma;
      for (std::size_t i = 0; i < nloc; ++i) q0[i] = r[i] * inv;
    }
    rmat.set_zero();
    lmat.set_zero();
    rmat(0, 0) = 1.0;
    manager->reset();
    dense::HessenbergLeastSquares ls(cfg.m, gamma);

    index_t assembled = 0;  // Hessenberg columns appended so far
    index_t generated = 1;  // basis columns stage-1-processed so far
    bool inner_converged = false;
    bool have_next = false;  // speculative next-panel columns in place

    const index_t npanel = cfg.m / cfg.s;
    for (index_t p = 0; p < npanel; ++p) {
      const index_t start = p * cfg.s;
      if (have_next) {
        // The lookahead already generated this panel's columns inside
        // the previous panel's reduce window (and recorded the raw MPK
        // start with the manager).
        res.lookahead_hits += 1;
        have_next = false;
      } else {
        manager->note_mpk_start(octx, lmat.view(), start);
        matrix_powers(comm, op, kbasis, basis.view(), start + 1, cfg.s,
                      &res.timers);
      }
      generated = start + 1 + cfg.s;

      index_t nfinal;
      if (manager->add_panel_begin(octx, basis.view(), start + 1, cfg.s,
                                   cfg.pipeline_depth > 0)) {
        // Pipelined lookahead: with the stage-1 fused Gram reduce in
        // flight, generate the NEXT panel's matrix-powers columns from
        // this panel's raw (not yet transformed) last column.  The
        // schedule is the same at every pipeline_depth — the option
        // selects only whether the window earns overlap credit — so
        // the solution is bitwise independent of it.
        const index_t next = start + cfg.s;
        if (p + 1 < npanel) {
          manager->note_mpk_start_raw(octx, next);
          matrix_powers(comm, op, kbasis, basis.view(), next + 1, cfg.s,
                        &res.timers);
          have_next = true;
        }
        nfinal = manager->add_panel_finish(octx, basis.view(), start + 1,
                                           cfg.s, rmat.view(), lmat.view());
        if (have_next) {
          // Deferred normalization: rescale the speculative panel by
          // the manager's power-of-two scale now that the stage-1
          // factor is known (exact — commutes with the recurrence).
          // Scale 0 means the manager's quality guard rejected the
          // speculation (raw column too decayed): discard the panel
          // and fall back to regeneration at the top of the next
          // iteration.  The MPK compute still overlapped the reduce.
          const double alpha = manager->lookahead_scale(next);
          if (alpha == 0.0) {
            res.lookahead_misses += 1;
            have_next = false;
          } else if (alpha != 1.0) {
            for (index_t c = next + 1; c <= next + cfg.s; ++c) {
              double* col = basis.col(c);
              for (std::size_t i = 0; i < nloc; ++i) col[i] *= alpha;
            }
          }
        }
      } else {
        nfinal = manager->add_panel(octx, basis.view(), start + 1, cfg.s,
                                    rmat.view(), lmat.view());
      }

      if (nfinal - 1 > assembled) {
        res.timers.start("ortho/small");
        assemble_hessenberg(rmat.view(), lmat.view(), kbasis, cfg.s, assembled,
                            nfinal - 1, hmat.view());
        for (index_t k = assembled; k < nfinal - 1; ++k) {
          ls.append_column(std::span<const double>(
              hmat.col(k), static_cast<std::size_t>(k) + 2));
        }
        res.timers.stop("ortho/small");
        assembled = nfinal - 1;
        if (ls.residual_norm() <= cfg.rtol * gamma0) {
          inner_converged = true;
          break;
        }
      }
    }

    // A speculative panel left in place by an early inner break was
    // generated but never consumed: its columns are simply abandoned
    // (finalize sees only the stage-1-processed count).
    if (have_next) res.lookahead_misses += 1;

    // Flush a partially filled big panel (only happens when bs does not
    // divide m, or after an early inner break; both leave usable final
    // columns for the solution update).
    const index_t nfinal =
        manager->finalize(octx, basis.view(), generated, rmat.view(),
                          lmat.view());
    if (nfinal - 1 > assembled) {
      res.timers.start("ortho/small");
      assemble_hessenberg(rmat.view(), lmat.view(), kbasis, cfg.s, assembled,
                          nfinal - 1, hmat.view());
      for (index_t k = assembled; k < nfinal - 1; ++k) {
        ls.append_column(std::span<const double>(
            hmat.col(k), static_cast<std::size_t>(k) + 2));
      }
      res.timers.stop("ortho/small");
      assembled = nfinal - 1;
      if (ls.residual_norm() <= cfg.rtol * gamma0) inner_converged = true;
    }

    // Correction: x += M^{-1} (Q_{1:assembled} y).
    const index_t used = ls.cols();
    if (used > 0) {
      const std::vector<double> y = ls.solve_y();
      res.timers.start("ortho/small");
      dense::gemv(1.0, basis.view().columns(0, used), y, 0.0, z);
      res.timers.stop("ortho/small");
      op.apply_minv(z, tmp, &res.timers);
      dense::axpy(1.0, tmp, x);
    }
    res.iters += assembled;
    res.restarts += 1;
    res.relres = gamma0 > 0.0 ? ls.residual_norm() / gamma0 : 0.0;

    residual(comm, a, b, x, r, tmp, &res.timers);
    gamma = ortho::global_norm(octx, r);
    if (inner_converged || gamma <= cfg.rtol * gamma0) res.converged = true;
    if (cfg.on_restart) {
      cfg.on_restart(ProgressEvent{res.iters, res.restarts, res.relres,
                                   gamma0 > 0.0 ? gamma / gamma0 : 0.0,
                                   res.converged, &res.timers});
    }
  }

  res.timers.stop("total");
  residual(comm, a, b, x, r, tmp, &res.timers);
  const double final_norm = ortho::global_norm(octx, r);
  res.true_relres = gamma0 > 0.0 ? final_norm / gamma0 : 0.0;
  res.comm_stats = par::subtract(comm.stats(), comm_before);
  res.cholesky_breakdowns = octx.cholesky_breakdowns;
  res.shift_retries = octx.shift_retries;
  return res;
}

}  // namespace tsbo::krylov
