#pragma once
// Matrix-powers kernel (paper Fig. 1 lines 6-9, Fig. 5 lines 4-12).
//
// The paper's Trilinos implementation deliberately uses the *standard*
// MPK — s sequential applications of (preconditioned) SpMV, each with
// neighborhood communication — rather than a communication-avoiding
// MPK, because CA-MPK composes poorly with general preconditioners
// (Section III).  We implement the same, driving the split-phase
// DistCsr::spmv so each of the s halo exchanges is overlapped with the
// interior rows of its own product (the modeled p2p latency is
// discounted by that compute; see par/communicator.hpp).

#include "krylov/basis.hpp"
#include "precond/preconditioner.hpp"
#include "sparse/dist_csr.hpp"
#include "util/aligned.hpp"

namespace tsbo::krylov {

/// The solver's operator: y = A M^{-1} x (right preconditioning), or
/// plain y = A x when no preconditioner is attached.
class PrecOperator {
 public:
  PrecOperator(const sparse::DistCsr& a, const precond::Preconditioner* m)
      : a_(a), m_(m), tmp_(static_cast<std::size_t>(a.n_local())) {}

  [[nodiscard]] const sparse::DistCsr& matrix() const { return a_; }
  [[nodiscard]] const precond::Preconditioner* preconditioner() const {
    return m_;
  }

  void apply(par::Communicator& comm, std::span<const double> x,
             std::span<double> y, util::PhaseTimers* timers) const;

  /// Multi-column operator apply Y = A M^{-1} X: one fused
  /// preconditioner sweep plus ONE halo exchange for all b columns
  /// (DistCsr::spmm).  Column-major rank-local views.
  void apply_block(par::Communicator& comm, dense::ConstMatrixView x,
                   dense::MatrixView y, util::PhaseTimers* timers) const;

  /// Applies only M^{-1} (for recovering x from the preconditioned
  /// correction).  Identity when no preconditioner.
  void apply_minv(std::span<const double> x, std::span<double> y,
                  util::PhaseTimers* timers) const;

  /// Multi-column M^{-1} apply (identity copy when no preconditioner).
  void apply_minv_multi(dense::ConstMatrixView x, dense::MatrixView y,
                        util::PhaseTimers* timers) const;

 private:
  const sparse::DistCsr& a_;
  const precond::Preconditioner* m_;
  mutable util::aligned_vector<double> tmp_;
  mutable util::aligned_vector<double> tmp_multi_;  ///< nloc x b scratch
};

/// Runs MPK: fills basis columns [first_out, first_out + s) from the
/// recurrence v_{k+1} = (Op x_k - theta_k x_k - sigma_k v_{k-1}) /
/// gamma_k, where x_k is basis column first_out - 1 + k_local and the
/// global step index is its column index.
void matrix_powers(par::Communicator& comm, const PrecOperator& op,
                   const KrylovBasis& basis, dense::MatrixView basis_cols,
                   index_t first_out, index_t s, util::PhaseTimers* timers);

/// Block MPK for block s-step GMRES: fills basis BLOCK columns
/// [first_out_block, first_out_block + s) — each block is b flat
/// columns — from the same three-term recurrence applied blockwise,
/// with the step index counted in BLOCKS (block j uses basis.step(j-1)
/// for its generation, matching the single-RHS solver's per-column
/// step indexing at b == 1).  Each of the s steps costs one fused
/// operator application (one preconditioner sweep + ONE halo
/// exchange for all b columns).
void matrix_powers_block(par::Communicator& comm, const PrecOperator& op,
                         const KrylovBasis& basis, dense::MatrixView basis_cols,
                         index_t first_out_block, index_t s, index_t b,
                         util::PhaseTimers* timers);

}  // namespace tsbo::krylov
