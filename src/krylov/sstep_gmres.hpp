#pragma once
// s-step (communication-avoiding) GMRES — paper Fig. 1 — with pluggable
// block orthogonalization (paper Sections IV-V).
//
// Per outer block: the matrix-powers kernel generates s new basis
// vectors (standard MPK: s sequential preconditioned SpMVs), then the
// configured BlockOrthoManager orthogonalizes them.  The Hessenberg
// matrix is assembled from the accumulated R/L coefficient matrices
// (H L = R-shifted; see hessenberg.hpp) for every column the manager
// has finalized, and convergence is checked at that granularity:
// every s steps for the one-stage schemes, every bs steps for the
// two-stage scheme — reproducing the paper's iteration-count rounding
// (Table III: 60251 / 60255 / 60300).

#include "krylov/gmres.hpp"
#include "krylov/matrix_powers.hpp"
#include "krylov/solver.hpp"
#include "ortho/manager.hpp"

#include <span>

namespace tsbo::krylov {

struct SStepGmresConfig {
  index_t m = 60;  ///< restart length; must be a multiple of s
  index_t s = 5;   ///< step size (paper's conservative default)
  index_t bs = 60; ///< two-stage second step size (s <= bs <= m, s | bs)

  OrthoScheme scheme = OrthoScheme::kTwoStage;
  BasisKind basis = BasisKind::kMonomial;
  /// Spectral interval for Newton/Chebyshev bases (ignored for
  /// monomial).
  double lambda_min = 0.0;
  double lambda_max = 0.0;

  double rtol = 1e-6;
  /// Convergence reference norm; 0 = relative to ||b - A x0|| (the
  /// classic criterion), > 0 = relative to this fixed norm (see
  /// GmresConfig::conv_reference — the warm-start path).
  double conv_reference = 0.0;
  long max_iters = 1000000;
  int max_restarts = 1000000;
  ortho::BreakdownPolicy policy = ortho::BreakdownPolicy::kShift;
  bool mixed_precision_gram = false;  ///< double-double Gram extension

  /// Pipelined-runtime lookahead depth.  Whenever the manager supports
  /// split add_panel (two-stage, plain-double Gram), the solver runs
  /// the lookahead schedule: the stage-1 Gram reduce is issued
  /// split-phase and the NEXT panel's matrix-powers columns are
  /// generated from the current panel's raw last column before the
  /// wait, with deferred power-of-two normalization.  pipeline_depth
  /// selects only the ACCOUNTING of that window: 0 charges the reduce
  /// latency fully exposed, >= 1 credits the in-window MPK compute as
  /// overlapped (depths beyond 1 behave as 1 — a single panel of
  /// lookahead).  The arithmetic is identical at every depth, so
  /// solutions are bitwise independent of this option.
  int pipeline_depth = 0;

  /// Stability autopilot (docs/algorithms.md "Stability autopilot").
  /// When enabled, the solver polls the ortho layer's per-panel Gram
  /// conditioning monitor (OrthoContext::take_gram_kappa_peak; sqrt of
  /// the Gram estimate lower-bounds the basis kappa the paper's
  /// conditions (1)/(5)/(9) constrain) and, at each restart boundary,
  /// walks a policy ladder: shrink s toward s_min while the estimate
  /// exceeds kappa_high, then escalate the Gram to double-double; relax
  /// one rung (dd first, then grow s back toward the configured s)
  /// after `patience` consecutive cycles below kappa_low.  A
  /// CholeskyBreakdown mid-cycle is caught and the cycle re-based from
  /// the last accepted column (BlockOrthoManager::
  /// rebase_after_breakdown) instead of aborting — the breakdown
  /// policy is forced to kThrow internally so breakdowns surface to
  /// the autopilot rather than being shift-perturbed.  All inputs are
  /// globally-reduced quantities: decisions are bitwise-deterministic
  /// at any rank x thread count.
  struct Autopilot {
    bool enabled = false;
    /// Basis-kappa estimate above which the policy escalates a rung.
    /// Default sits an order of magnitude inside the eps^{-1/2} ~ 6.7e7
    /// plain-double cliff, so escalation fires before breakdown does.
    double kappa_high = 1e7;
    /// Estimate below which a cycle counts as healthy.
    double kappa_low = 1e5;
    index_t s_min = 1;  ///< smallest step size the ladder may shrink to
    int patience = 2;   ///< healthy cycles required before relaxing
  };
  Autopilot autopilot;

  /// Deterministic fault-injection seam, forwarded to
  /// OrthoContext::inject_breakdown (tests only): called once per Gram
  /// Cholesky with the global attempt ordinal; return true to force
  /// that factorization to report indefinite.
  std::function<bool(long)> inject_chol_breakdown;

  /// Optional per-restart observer (see solver.hpp).
  ProgressCallback on_restart;

  /// Cooperative cancellation: when non-null, polled at every restart
  /// boundary through a collective max-reduce (all ranks take the same
  /// exit; adds one sync per restart only when installed).  On stop the
  /// result carries cancelled / deadline_expired and the best iterate.
  const par::CancelToken* cancel = nullptr;

  /// When set, make_manager() calls this instead of switching on
  /// `scheme` — the extension point the api ortho registry uses, so new
  /// block-orthogonalization schemes plug in without growing the enum.
  std::function<std::unique_ptr<ortho::BlockOrthoManager>(
      const SStepGmresConfig&)>
      manager_factory;
};

/// Solves A M^{-1} u = b, x += M^{-1} u from the initial guess in `x`.
/// Collective over `comm`; b and x are rank-local row blocks.
SolveResult sstep_gmres(par::Communicator& comm, const sparse::DistCsr& a,
                        const precond::Preconditioner* m_prec,
                        std::span<const double> b, std::span<double> x,
                        const SStepGmresConfig& cfg);

/// Builds the manager the config names (exposed for tests/benches).
std::unique_ptr<ortho::BlockOrthoManager> make_manager(
    const SStepGmresConfig& cfg);

}  // namespace tsbo::krylov
