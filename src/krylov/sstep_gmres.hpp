#pragma once
// s-step (communication-avoiding) GMRES — paper Fig. 1 — with pluggable
// block orthogonalization (paper Sections IV-V).
//
// Per outer block: the matrix-powers kernel generates s new basis
// vectors (standard MPK: s sequential preconditioned SpMVs), then the
// configured BlockOrthoManager orthogonalizes them.  The Hessenberg
// matrix is assembled from the accumulated R/L coefficient matrices
// (H L = R-shifted; see hessenberg.hpp) for every column the manager
// has finalized, and convergence is checked at that granularity:
// every s steps for the one-stage schemes, every bs steps for the
// two-stage scheme — reproducing the paper's iteration-count rounding
// (Table III: 60251 / 60255 / 60300).

#include "krylov/gmres.hpp"
#include "krylov/matrix_powers.hpp"
#include "krylov/solver.hpp"
#include "ortho/manager.hpp"

#include <span>

namespace tsbo::krylov {

struct SStepGmresConfig {
  index_t m = 60;  ///< restart length; must be a multiple of s
  index_t s = 5;   ///< step size (paper's conservative default)
  index_t bs = 60; ///< two-stage second step size (s <= bs <= m, s | bs)

  OrthoScheme scheme = OrthoScheme::kTwoStage;
  BasisKind basis = BasisKind::kMonomial;
  /// Spectral interval for Newton/Chebyshev bases (ignored for
  /// monomial).
  double lambda_min = 0.0;
  double lambda_max = 0.0;

  double rtol = 1e-6;
  long max_iters = 1000000;
  int max_restarts = 1000000;
  ortho::BreakdownPolicy policy = ortho::BreakdownPolicy::kShift;
  bool mixed_precision_gram = false;  ///< double-double Gram extension

  /// Pipelined-runtime lookahead depth.  Whenever the manager supports
  /// split add_panel (two-stage, plain-double Gram), the solver runs
  /// the lookahead schedule: the stage-1 Gram reduce is issued
  /// split-phase and the NEXT panel's matrix-powers columns are
  /// generated from the current panel's raw last column before the
  /// wait, with deferred power-of-two normalization.  pipeline_depth
  /// selects only the ACCOUNTING of that window: 0 charges the reduce
  /// latency fully exposed, >= 1 credits the in-window MPK compute as
  /// overlapped (depths beyond 1 behave as 1 — a single panel of
  /// lookahead).  The arithmetic is identical at every depth, so
  /// solutions are bitwise independent of this option.
  int pipeline_depth = 0;

  /// Optional per-restart observer (see solver.hpp).
  ProgressCallback on_restart;

  /// When set, make_manager() calls this instead of switching on
  /// `scheme` — the extension point the api ortho registry uses, so new
  /// block-orthogonalization schemes plug in without growing the enum.
  std::function<std::unique_ptr<ortho::BlockOrthoManager>(
      const SStepGmresConfig&)>
      manager_factory;
};

/// Solves A M^{-1} u = b, x += M^{-1} u from the initial guess in `x`.
/// Collective over `comm`; b and x are rank-local row blocks.
SolveResult sstep_gmres(par::Communicator& comm, const sparse::DistCsr& a,
                        const precond::Preconditioner* m_prec,
                        std::span<const double> b, std::span<double> x,
                        const SStepGmresConfig& cfg);

/// Builds the manager the config names (exposed for tests/benches).
std::unique_ptr<ortho::BlockOrthoManager> make_manager(
    const SStepGmresConfig& cfg);

}  // namespace tsbo::krylov
