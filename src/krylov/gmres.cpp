#include "krylov/gmres.hpp"

#include "dense/blas1.hpp"
#include "dense/blas2.hpp"
#include "dense/givens.hpp"
#include "ortho/cgs.hpp"
#include "util/aligned.hpp"

#include <cassert>
#include <vector>

namespace tsbo::krylov {

namespace {

/// r = b - A x (one SpMV).
void residual(par::Communicator& comm, const sparse::DistCsr& a,
              std::span<const double> b, std::span<const double> x,
              std::span<double> r, std::span<double> tmp,
              util::PhaseTimers* timers) {
  a.spmv(comm, x, tmp, timers);
  for (std::size_t i = 0; i < r.size(); ++i) r[i] = b[i] - tmp[i];
}

}  // namespace

SolveResult gmres(par::Communicator& comm, const sparse::DistCsr& a,
                  const precond::Preconditioner* m_prec,
                  std::span<const double> b, std::span<double> x,
                  const GmresConfig& cfg) {
  const auto nloc = static_cast<std::size_t>(a.n_local());
  assert(b.size() == nloc && x.size() == nloc);

  SolveResult res;
  const par::CommStats comm_before = comm.stats();
  ortho::OrthoContext octx;
  octx.comm = &comm;
  octx.timers = &res.timers;

  PrecOperator op(a, m_prec);
  dense::Matrix basis(static_cast<index_t>(nloc), cfg.m + 1);
  util::aligned_vector<double> r(nloc), tmp(nloc), z(nloc);

  res.timers.start("total");
  residual(comm, a, b, x, r, tmp, &res.timers);
  const double gamma0 = ortho::global_norm(octx, r);
  double gamma = gamma0;

  if (gamma0 == 0.0) {
    res.converged = true;
  }
  // Convergence reference: ||r0|| by default (for a zero guess that IS
  // ||b||, bit-for-bit), or the caller's fixed norm (warm-start path).
  const double ref = cfg.conv_reference > 0.0 ? cfg.conv_reference : gamma0;
  if (cfg.conv_reference > 0.0 && gamma0 <= cfg.rtol * ref) {
    res.converged = true;
  }

  while (!res.converged && res.iters < cfg.max_iters &&
         res.restarts < cfg.max_restarts) {
    // Cooperative cancellation / deadline poll, only when a token is
    // installed (zero extra syncs otherwise).  The collective max makes
    // the stop decision identical on every rank even though the flag
    // flips asynchronously, so no rank is left inside a collective.
    if (cfg.cancel != nullptr) {
      const double stop =
          comm.allreduce_max_scalar(cfg.cancel->should_stop() ? 1.0 : 0.0);
      if (stop > 0.0) {
        if (cfg.cancel->cancelled()) {
          res.cancelled = true;
        } else {
          res.deadline_expired = true;
        }
        break;
      }
    }
    // Seed the cycle: q_0 = r / gamma.
    {
      double* q0 = basis.col(0);
      const double inv = 1.0 / gamma;
      for (std::size_t i = 0; i < nloc; ++i) q0[i] = r[i] * inv;
    }
    dense::HessenbergLeastSquares ls(cfg.m, gamma);
    std::vector<double> h(static_cast<std::size_t>(cfg.m) + 2);

    bool inner_converged = false;
    for (index_t k = 0; k < cfg.m && res.iters < cfg.max_iters; ++k) {
      std::span<const double> qk(basis.col(k), nloc);
      std::span<double> w(basis.col(k + 1), nloc);
      op.apply(comm, qk, w, &res.timers);

      std::span<double> hk(h.data(), static_cast<std::size_t>(k) + 2);
      if (cfg.ortho == GmresConfig::Ortho::kCgs2) {
        ortho::cgs2_step(octx, basis.view().columns(0, k + 1), w, hk);
      } else {
        ortho::mgs_step(octx, basis.view().columns(0, k + 1), w, hk);
      }

      res.timers.start("ortho/small");
      ls.append_column(hk);
      res.timers.stop("ortho/small");
      res.iters += 1;

      if (ls.residual_norm() <= cfg.rtol * ref) {
        inner_converged = true;
        break;
      }
      if (hk[static_cast<std::size_t>(k) + 1] == 0.0) {
        // Happy breakdown: the Krylov space is invariant.
        inner_converged = true;
        break;
      }
    }

    // Correction: x += M^{-1} (Q y).
    const index_t used = ls.cols();
    if (used > 0) {
      const std::vector<double> y = ls.solve_y();
      res.timers.start("ortho/small");
      dense::gemv(1.0, basis.view().columns(0, used), y, 0.0, z);
      res.timers.stop("ortho/small");
      op.apply_minv(z, tmp, &res.timers);
      dense::axpy(1.0, tmp, x);
    }
    res.restarts += 1;
    res.relres = ref > 0.0 ? ls.residual_norm() / ref : 0.0;

    residual(comm, a, b, x, r, tmp, &res.timers);
    gamma = ortho::global_norm(octx, r);
    if (inner_converged || gamma <= cfg.rtol * ref) {
      res.converged = true;
    }
    if (cfg.on_restart) {
      cfg.on_restart(ProgressEvent{res.iters, res.restarts, res.relres,
                                   ref > 0.0 ? gamma / ref : 0.0,
                                   res.converged, &res.timers});
    }
  }

  res.timers.stop("total");
  residual(comm, a, b, x, r, tmp, &res.timers);
  const double final_norm = ortho::global_norm(octx, r);
  res.true_relres = ref > 0.0 ? final_norm / ref : 0.0;
  res.comm_stats = par::subtract(comm.stats(), comm_before);
  res.cholesky_breakdowns = octx.cholesky_breakdowns;
  res.shift_retries = octx.shift_retries;
  return res;
}

}  // namespace tsbo::krylov
