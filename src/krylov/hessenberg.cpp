#include "krylov/hessenberg.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace tsbo::krylov {

void assemble_hessenberg(dense::ConstMatrixView r, dense::ConstMatrixView l,
                         const KrylovBasis& basis, index_t s, index_t c0,
                         index_t c1, dense::MatrixView h) {
  assert(c0 >= 0 && c0 <= c1 && c1 <= h.cols);
  assert(r.rows >= c1 + 1 && l.rows >= c1 + 1);

  std::vector<double> rhat(static_cast<std::size_t>(c1) + 1);
  for (index_t k = c0; k < c1; ++k) {
    const BasisStep& st = basis.step(k);

    // Rhat(:, k) = gamma R(:, k+1) + theta L(:, k) + sigma rep(v_{k-1}),
    // nonzero in rows 0..k+1.
    for (index_t i = 0; i <= k + 1; ++i) {
      double v = st.gamma * r(i, k + 1);
      if (st.theta != 0.0) v += st.theta * l(i, k);
      if (st.sigma != 0.0 && k >= 1) {
        const bool prev_is_start = ((k - 1) % s) == 0;
        v += st.sigma * (prev_is_start ? l(i, k - 1) : r(i, k - 1));
      }
      rhat[static_cast<std::size_t>(i)] = v;
    }

    // Solve H(:, k) L(k, k) = Rhat(:, k) - sum_{j<k} H(:, j) L(j, k).
    for (index_t j = 0; j < k; ++j) {
      const double ljk = l(j, k);
      if (ljk == 0.0) continue;
      for (index_t i = 0; i <= j + 1; ++i) {
        rhat[static_cast<std::size_t>(i)] -= h(i, j) * ljk;
      }
    }
    const double lkk = l(k, k);
    if (lkk == 0.0 || !std::isfinite(lkk)) {
      throw std::runtime_error(
          "assemble_hessenberg: singular basis representation (L diagonal)");
    }
    const double inv = 1.0 / lkk;
    for (index_t i = 0; i <= k + 1; ++i) {
      h(i, k) = rhat[static_cast<std::size_t>(i)] * inv;
    }
    for (index_t i = k + 2; i < h.rows; ++i) h(i, k) = 0.0;
  }
}

}  // namespace tsbo::krylov
