#include "krylov/hessenberg.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace tsbo::krylov {

void assemble_hessenberg(dense::ConstMatrixView r, dense::ConstMatrixView l,
                         const KrylovBasis& basis, index_t s, index_t c0,
                         index_t c1, dense::MatrixView h) {
  assemble_hessenberg_block(r, l, basis, s, 1, c0, c1, h);
}

void assemble_hessenberg_block(dense::ConstMatrixView r,
                               dense::ConstMatrixView l,
                               const KrylovBasis& basis, index_t s, index_t b,
                               index_t c0, index_t c1, dense::MatrixView h) {
  assert(b >= 1);
  assert(c0 >= 0 && c0 <= c1 && c1 <= h.cols);
  assert(r.rows >= c1 + b && l.rows >= c1 + b);

  std::vector<double> rhat(static_cast<std::size_t>(c1 + b));
  for (index_t k = c0; k < c1; ++k) {
    const index_t kb = k / b;  // block step index
    const BasisStep& st = basis.step(kb);

    // Rhat(:, k) = gamma R(:, k+b) + theta L(:, k) + sigma rep(v_{k-b}),
    // nonzero in rows 0..k+b.
    for (index_t i = 0; i <= k + b; ++i) {
      double v = st.gamma * r(i, k + b);
      if (st.theta != 0.0) v += st.theta * l(i, k);
      if (st.sigma != 0.0 && kb >= 1) {
        const bool prev_is_start = ((kb - 1) % s) == 0;
        v += st.sigma * (prev_is_start ? l(i, k - b) : r(i, k - b));
      }
      rhat[static_cast<std::size_t>(i)] = v;
    }

    // Solve H(:, k) L(k, k) = Rhat(:, k) - sum_{j<k} H(:, j) L(j, k).
    for (index_t j = 0; j < k; ++j) {
      const double ljk = l(j, k);
      if (ljk == 0.0) continue;
      for (index_t i = 0; i <= j + b; ++i) {
        rhat[static_cast<std::size_t>(i)] -= h(i, j) * ljk;
      }
    }
    const double lkk = l(k, k);
    if (lkk == 0.0 || !std::isfinite(lkk)) {
      throw std::runtime_error(
          "assemble_hessenberg: singular basis representation (L diagonal)");
    }
    const double inv = 1.0 / lkk;
    for (index_t i = 0; i <= k + b; ++i) {
      h(i, k) = rhat[static_cast<std::size_t>(i)] * inv;
    }
    for (index_t i = k + b + 1; i < h.rows; ++i) h(i, k) = 0.0;
  }
}

}  // namespace tsbo::krylov
