#include "krylov/basis.hpp"

#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace tsbo::krylov {

KrylovBasis KrylovBasis::monomial(index_t m) {
  return {BasisKind::kMonomial,
          std::vector<BasisStep>(static_cast<std::size_t>(m))};
}

std::vector<double> leja_order(std::vector<double> points) {
  if (points.empty()) return points;
  std::vector<double> out;
  out.reserve(points.size());
  // Start from the point of largest magnitude.
  std::size_t pick = 0;
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (std::abs(points[i]) > std::abs(points[pick])) pick = i;
  }
  out.push_back(points[pick]);
  points.erase(points.begin() + static_cast<std::ptrdiff_t>(pick));

  while (!points.empty()) {
    double best = -std::numeric_limits<double>::infinity();
    pick = 0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      // Product of distances in log space to avoid under/overflow.
      double prod = 0.0;
      for (const double c : out) prod += std::log(std::abs(points[i] - c) + 1e-300);
      if (prod > best) {
        best = prod;
        pick = i;
      }
    }
    out.push_back(points[pick]);
    points.erase(points.begin() + static_cast<std::ptrdiff_t>(pick));
  }
  return out;
}

KrylovBasis KrylovBasis::newton(index_t m, index_t s, double lmin,
                                double lmax) {
  if (s <= 0 || m % s != 0) {
    throw std::invalid_argument("KrylovBasis::newton: s must divide m");
  }
  // s Chebyshev points of [lmin, lmax], Leja-ordered, reused per panel.
  std::vector<double> pts(static_cast<std::size_t>(s));
  const double d = 0.5 * (lmax + lmin);
  const double c = 0.5 * (lmax - lmin);
  for (index_t k = 0; k < s; ++k) {
    pts[static_cast<std::size_t>(k)] =
        d + c * std::cos(M_PI * (2.0 * k + 1.0) / (2.0 * s));
  }
  pts = leja_order(pts);

  std::vector<BasisStep> steps(static_cast<std::size_t>(m));
  for (index_t k = 0; k < m; ++k) {
    steps[static_cast<std::size_t>(k)].theta = pts[static_cast<std::size_t>(k % s)];
  }
  return {BasisKind::kNewton, std::move(steps)};
}

KrylovBasis KrylovBasis::chebyshev(index_t m, index_t s, double lmin,
                                   double lmax) {
  if (s <= 0 || m % s != 0) {
    throw std::invalid_argument("KrylovBasis::chebyshev: s must divide m");
  }
  const double d = 0.5 * (lmax + lmin);
  const double c = 0.5 * (lmax - lmin);
  if (c <= 0.0) {
    throw std::invalid_argument("KrylovBasis::chebyshev: empty interval");
  }
  std::vector<BasisStep> steps(static_cast<std::size_t>(m));
  for (index_t k = 0; k < m; ++k) {
    BasisStep& st = steps[static_cast<std::size_t>(k)];
    if (k % s == 0) {
      // Panel-local recurrence start: p_1 = (z - d)/c * p_0.
      st = {d, 0.0, c};
    } else {
      // p_{k+1} = (2/c)(z - d) p_k - p_{k-1}.
      st = {d, 0.5 * c, 0.5 * c};
    }
  }
  return {BasisKind::kChebyshev, std::move(steps)};
}

KrylovBasis KrylovBasis::with_gamma_scale(double factor) const {
  KrylovBasis out = *this;
  for (BasisStep& st : out.steps_) st.gamma *= factor;
  return out;
}

dense::Matrix KrylovBasis::change_of_basis() const {
  const index_t m = steps();
  dense::Matrix t(m + 1, m);
  for (index_t k = 0; k < m; ++k) {
    const BasisStep& st = step(k);
    t(k + 1, k) = st.gamma;
    t(k, k) = st.theta;
    if (k > 0) t(k - 1, k) = st.sigma;
  }
  return t;
}

}  // namespace tsbo::krylov
