#pragma once
// Hessenberg assembly for s-step GMRES (paper Fig. 1 line 14).
//
// The solver maintains, in the final orthonormal basis Q:
//   R(:, k) — coefficients of the raw Krylov column v_k,
//   L(:, k) — coefficients of x_k, the column MPK actually applied A to
//             (unit vector for a final column; a stage-2 transform
//             column for a two-stage pre-processed column; R(:, k) for
//             a raw interior column).
// From the basis recurrence  A x_k = gamma_k v_{k+1} + theta_k x_k +
// sigma_k v_{k-1}  it follows that  H L = Rhat  with
//   Rhat(:, k) = gamma_k R(:, k+1) + theta_k L(:, k) + sigma_k rep(v_{k-1}),
// where rep(v_{k-1}) is L(:, k-1) if column k-1 was a panel start
// (its raw form was overwritten) and R(:, k-1) otherwise.  Since L is
// upper triangular with nonzero diagonal, H columns are recovered
// progressively left to right — matching the solver's per-(big-)panel
// convergence checks.

#include "dense/matrix.hpp"
#include "krylov/basis.hpp"

namespace tsbo::krylov {

/// Assembles H columns [c0, c1) into h ((m+1) x m storage), given that
/// columns [0, c0) were already assembled in previous calls.  `s` is
/// the panel size (identifies panel-start columns k with k % s == 0).
void assemble_hessenberg(dense::ConstMatrixView r, dense::ConstMatrixView l,
                         const KrylovBasis& basis, index_t s, index_t c0,
                         index_t c1, dense::MatrixView h);

/// Block-width-b generalization (block GMRES with b right-hand sides):
/// flat basis column c belongs to block c / b, the three-term
/// recurrence steps are counted in BLOCKS (basis.step(c / b)), and the
/// resulting H is block Hessenberg with lower bandwidth b —
///   Rhat(:, c) = gamma R(:, c+b) + theta L(:, c) + sigma rep(c-b),
/// nonzero in rows 0..c+b, where rep is L(:, c-b) when block c/b - 1
/// was a panel-start block and R(:, c-b) otherwise.  `s` counts panel
/// size in blocks.  b == 1 is exactly the single-RHS assembly above.
void assemble_hessenberg_block(dense::ConstMatrixView r,
                               dense::ConstMatrixView l,
                               const KrylovBasis& basis, index_t s, index_t b,
                               index_t c0, index_t c1, dense::MatrixView h);

}  // namespace tsbo::krylov
