#pragma once
// Block s-step GMRES: the s-step solver of sstep_gmres.hpp generalized
// to b right-hand sides solved simultaneously (ROADMAP "batched
// multi-RHS" item; block Hessenberg + Householder-on-H recurrences
// after phist's bgmres.m/bfgmres.m).
//
// The Krylov basis interleaves the b RHS streams: flat basis column
// c = j*b + t carries RHS t's contribution to block step j, so each
// outer panel is s*b flat columns wide — the two-stage BCGS+CholQR
// machinery, the fused dd Gram reduce, and the stage-2 flush all run
// unchanged on the wider panels, and the synchronization count per
// outer iteration is identical to the single-RHS solver (the panels
// are wider, not more numerous).  Every operator application feeds all
// b columns through ONE fused preconditioner sweep + ONE halo exchange
// (DistCsr::spmm), so MPK communication is amortized k-fold.
//
// Per-RHS convergence is tracked independently through the block
// least-squares residual readout; columns that have converged are
// DEFLATED at restart boundaries — their solution column freezes and
// the next cycle restarts with a narrower block — so one hard RHS
// cannot force converged ones to keep iterating.  The restart seed is
// the CholQR of the active residual block; its R factor S0 forms the
// least-squares right-hand side E1 S0.
//
// b == 1 delegates to sstep_gmres: the single-RHS path stays bitwise
// identical (the block path's Householder-on-H and serial-order spmm
// round differently from the Givens solver and the gather-vectorized
// spmv).  For b > 1, results are bitwise-reproducible across thread
// counts and stable across rank counts — the repo's standard
// determinism contract ({1,2,7}^2 pinned in tests/test_block_gmres.cpp).
// The pipelined lookahead and the stability autopilot are single-RHS
// features: pipeline_depth and autopilot settings are ignored here.

#include "krylov/sstep_gmres.hpp"

namespace tsbo::krylov {

struct BlockSStepGmresConfig {
  /// Shared s-step settings (m/s/bs counted in BLOCK steps — the basis
  /// reaches m*b + b flat columns).  autopilot and pipeline_depth are
  /// ignored; cancel/on_restart/manager_factory are honored.
  SStepGmresConfig base;

  /// Per-RHS convergence reference norms (column-ordered).  Empty =
  /// each column relative to its own initial residual norm; otherwise
  /// must hold one fixed reference per RHS (the warm-start ||b_t||
  /// path, see SStepGmresConfig::conv_reference).
  std::vector<double> conv_reference;
};

/// Solves A M^{-1} U = B, X += M^{-1} U for the b = b_rhs.cols
/// right-hand sides in `b_rhs` from the initial guesses in `x`
/// (rank-local row blocks, column-major).  Collective over `comm`.
SolveResult block_sstep_gmres(par::Communicator& comm,
                              const sparse::DistCsr& a,
                              const precond::Preconditioner* m_prec,
                              dense::ConstMatrixView b_rhs,
                              dense::MatrixView x,
                              const BlockSStepGmresConfig& cfg);

}  // namespace tsbo::krylov
