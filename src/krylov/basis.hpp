#pragma once
// Krylov basis polynomials for the matrix-powers kernel.
//
// MPK generates v_{k+1} from x_k (the stored column A is applied to)
// through the three-term step
//     v_{k+1} = ( A x_k - theta_k x_k - sigma_k v_{k-1} ) / gamma_k ,
// equivalently  A x_k = gamma_k v_{k+1} + theta_k x_k + sigma_k v_{k-1},
// which is exactly what the Hessenberg assembly consumes (the paper's
// change-of-basis matrix T in Fig. 1 line 14).
//
//   monomial : theta = sigma = 0, gamma = 1 (the paper's evaluated
//              choice, Section VI)
//   Newton   : theta_k = Leja-ordered Chebyshev points of a real
//              spectral interval, sigma = 0 (paper's discussed
//              extension, ref [1])
//   Chebyshev: scaled three-term Chebyshev recurrence on the interval,
//              restarted at every panel boundary (sigma_k = 0 there, as
//              the previous raw vector is no longer available).

#include "dense/matrix.hpp"

#include <vector>

namespace tsbo::krylov {

using dense::index_t;

enum class BasisKind { kMonomial, kNewton, kChebyshev };

struct BasisStep {
  double theta = 0.0;
  double sigma = 0.0;
  double gamma = 1.0;
};

class KrylovBasis {
 public:
  /// Monomial basis for m steps.
  static KrylovBasis monomial(index_t m);

  /// Newton basis: s Leja-ordered Chebyshev points of [lmin, lmax],
  /// reused every panel (Bai/Hu/Reichel practice).
  static KrylovBasis newton(index_t m, index_t s, double lmin, double lmax);

  /// Chebyshev basis on [lmin, lmax], three-term recurrence restarted
  /// at each panel boundary.
  static KrylovBasis chebyshev(index_t m, index_t s, double lmin, double lmax);

  [[nodiscard]] BasisKind kind() const { return kind_; }
  [[nodiscard]] index_t steps() const { return static_cast<index_t>(steps_.size()); }
  [[nodiscard]] const BasisStep& step(index_t k) const {
    return steps_[static_cast<std::size_t>(k)];
  }

  /// The (m+1) x m change-of-basis matrix T with A X = V T structure
  /// restricted to the polynomial recurrence (columns: gamma on the
  /// subdiagonal, theta on the diagonal, sigma on the superdiagonal).
  /// Exposed for tests and documentation.
  [[nodiscard]] dense::Matrix change_of_basis() const;

  /// Returns a copy with every gamma multiplied by `factor`.  The
  /// solver scales the monomial/Newton bases by a matrix-norm estimate
  /// so MPK vectors stay O(1) in norm — the standard remedy for the
  /// exponential growth of the raw monomial basis (the scaling is
  /// absorbed exactly by the change-of-basis bookkeeping).
  [[nodiscard]] KrylovBasis with_gamma_scale(double factor) const;

 private:
  KrylovBasis(BasisKind kind, std::vector<BasisStep> steps)
      : kind_(kind), steps_(std::move(steps)) {}

  BasisKind kind_;
  std::vector<BasisStep> steps_;
};

/// Leja ordering of a point set: greedily maximizes the product of
/// distances to already-chosen points (stabilizes the Newton basis).
std::vector<double> leja_order(std::vector<double> points);

}  // namespace tsbo::krylov
