#pragma once
// Shared solver configuration and result types.

#include "ortho/multivector.hpp"
#include "par/communicator.hpp"
#include "util/timer.hpp"

namespace tsbo::krylov {

using dense::index_t;

/// Which block-orthogonalization scheme the s-step solver uses
/// (Table III's four columns plus diagnostics).
enum class OrthoScheme {
  kBcgs2CholQr2,  ///< original s-step GMRES (5 reduces / s steps)
  kBcgs2Hhqr,     ///< stability reference (O(s) reduces / s steps)
  kBcgsPip,       ///< single-pass PIP (1 reduce; no re-orthogonalization)
  kBcgsPip2,      ///< the paper's new one-stage variant (2 reduces)
  kTwoStage,      ///< the paper's contribution (1 + s/bs reduces)
};

const char* ortho_scheme_name(OrthoScheme s);

/// Outcome of a linear solve.
struct SolveResult {
  bool converged = false;
  long iters = 0;      ///< inner iterations (paper's "# iters" column)
  int restarts = 0;    ///< completed restart cycles
  double relres = 0.0; ///< recurrence residual estimate at exit
  double true_relres = 0.0;  ///< ||b - A x|| / ||b|| measured at exit

  util::PhaseTimers timers;   ///< SpMV / precond / ortho phase breakdown
  par::CommStats comm_stats;  ///< collected from the rank's communicator
  int cholesky_breakdowns = 0;
  int shift_retries = 0;

  /// Convenience sums over the timer buckets (seconds).
  [[nodiscard]] double time_spmv() const {
    return timers.seconds("spmv/comm") + timers.seconds("spmv/local");
  }
  [[nodiscard]] double time_precond() const { return timers.seconds("precond"); }
  [[nodiscard]] double time_ortho() const {
    return timers.seconds("ortho/dot") + timers.seconds("ortho/reduce") +
           timers.seconds("ortho/update") + timers.seconds("ortho/trsm") +
           timers.seconds("ortho/chol") + timers.seconds("ortho/hhqr") +
           timers.seconds("ortho/small");
  }
  [[nodiscard]] double time_total() const { return timers.seconds("total"); }
};

}  // namespace tsbo::krylov
