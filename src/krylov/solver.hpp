#pragma once
// Shared solver configuration and result types.

#include "ortho/multivector.hpp"
#include "par/communicator.hpp"
#include "util/timer.hpp"

#include <functional>
#include <string>
#include <vector>

namespace tsbo::krylov {

using dense::index_t;

/// Which block-orthogonalization scheme the s-step solver uses
/// (Table III's four columns plus diagnostics).
enum class OrthoScheme {
  kBcgs2CholQr2,  ///< original s-step GMRES (5 reduces / s steps)
  kBcgs2Hhqr,     ///< stability reference (O(s) reduces / s steps)
  kBcgsPip,       ///< single-pass PIP (1 reduce; no re-orthogonalization)
  kBcgsPip2,      ///< the paper's new one-stage variant (2 reduces)
  kTwoStage,      ///< the paper's contribution (1 + s/bs reduces)
};

const char* ortho_scheme_name(OrthoScheme s);

/// Snapshot handed to a solver's per-restart observer (progress
/// reporting, residual-history capture).  `timers` points at the live
/// per-rank accumulator: valid only for the duration of the callback.
/// Note the "total" bucket is still running at a restart boundary —
/// snapshot the phase buckets (ortho/*, spmv/*, precond), which are
/// closed between events.
struct ProgressEvent {
  long iters = 0;       ///< cumulative inner iterations
  int restarts = 0;     ///< completed restart cycles
  double relres = 0.0;  ///< recurrence residual estimate
  /// ||b - A x|| / ||b|| recomputed explicitly at the restart boundary
  /// (free: restarted GMRES rebuilds the residual anyway).
  double explicit_relres = 0.0;
  bool converged = false;
  const util::PhaseTimers* timers = nullptr;
};

/// Invoked once per completed restart cycle, on the rank that carries
/// the callback (the api facade installs it on rank 0 only).  Must be
/// cheap: it runs inside the timed solve.
using ProgressCallback = std::function<void(const ProgressEvent&)>;

/// Sums over the phase-timer buckets (seconds).  The single source of
/// truth for which buckets make up each paper-level phase — shared by
/// SolveResult's accessors and the api layer's per-restart snapshots.
[[nodiscard]] inline double spmv_seconds(const util::PhaseTimers& t) {
  return t.seconds("spmv/comm") + t.seconds("spmv/local");
}
[[nodiscard]] inline double precond_seconds(const util::PhaseTimers& t) {
  return t.seconds("precond");
}
[[nodiscard]] inline double ortho_seconds(const util::PhaseTimers& t) {
  return t.seconds("ortho/dot") + t.seconds("ortho/reduce") +
         t.seconds("ortho/update") + t.seconds("ortho/trsm") +
         t.seconds("ortho/chol") + t.seconds("ortho/hhqr") +
         t.seconds("ortho/small");
}

/// One stability-autopilot decision, recorded by sstep_gmres when
/// SStepGmresConfig::autopilot is enabled.  Every decision is driven by
/// globally-reduced quantities (the replicated Gram factor's diagonal),
/// so all ranks record identical event streams at any thread count.
/// Kinds: "shrink_s" / "grow_s" (step-size ladder moves),
/// "escalate_gram" / "relax_gram" (double <-> double-double Gram), and
/// "rebase" (a CholeskyBreakdown was caught and the cycle re-based from
/// the last accepted column).
struct AutopilotEvent {
  int restart = 0;     ///< completed restart cycles when the decision fired
  std::string kind;
  double kappa = 0.0;  ///< cycle's peak basis-kappa estimate that drove it
  index_t s_before = 0;
  index_t s_after = 0;
  bool dd_before = false;  ///< Gram precision before/after (double-double?)
  bool dd_after = false;
};

/// Per-right-hand-side outcome of a block (multi-RHS) solve.  The
/// block solver tracks each column's convergence independently and
/// deflates converged columns at restart boundaries.
struct RhsResult {
  bool converged = false;
  long iters = 0;          ///< flat inner iterations the column was active for
  double relres = 0.0;     ///< recurrence residual estimate at exit
  double true_relres = 0.0;  ///< explicit residual measured at exit
  int deflated_at_restart = -1;  ///< restart index the column froze at (-1 =
                                 ///< active through the final cycle)
};

/// Outcome of a linear solve.
struct SolveResult {
  bool converged = false;
  long iters = 0;      ///< inner iterations (paper's "# iters" column)
  int restarts = 0;    ///< completed restart cycles
  double relres = 0.0; ///< recurrence residual estimate at exit
  double true_relres = 0.0;  ///< ||b - A x|| / ||b|| measured at exit

  util::PhaseTimers timers;   ///< SpMV / precond / ortho phase breakdown
  par::CommStats comm_stats;  ///< collected from the rank's communicator
  int cholesky_breakdowns = 0;
  int shift_retries = 0;

  /// Cooperative-cancellation exits (Config::cancel): the solve was
  /// stopped at a restart boundary by an explicit cancel() or by its
  /// deadline.  x holds the best iterate so far; converged stays as
  /// the iteration left it (normally false).  All ranks agree (the
  /// poll is a collective max-reduce).
  bool cancelled = false;
  bool deadline_expired = false;

  /// Pipelined s-step runtime counters: speculative next-panel MPK
  /// sweeps generated inside a stage-1 reduce window that were consumed
  /// by the following panel (hits) vs discarded because the cycle
  /// converged or ended first (misses).  Zero for schemes without a
  /// split stage-1 path.
  long lookahead_hits = 0;
  long lookahead_misses = 0;

  /// Stability-autopilot trace (sstep_gmres).  max_kappa is maintained
  /// by the conditioning monitor whether or not the autopilot policy is
  /// enabled; the events/recoveries only accrue when it is.
  std::vector<AutopilotEvent> autopilot_events;
  double autopilot_max_kappa = 0.0;  ///< peak per-panel basis-kappa estimate
  int rebase_recoveries = 0;  ///< CholeskyBreakdowns recovered by re-basing
  index_t autopilot_final_s = 0;     ///< step size in effect at exit
  bool autopilot_final_dd = false;   ///< Gram precision in effect at exit

  /// Per-RHS outcomes of a block (rhs=k) solve, in column order; empty
  /// for single-RHS solves.  The scalar fields above then aggregate:
  /// converged = all columns converged, relres/true_relres = the worst
  /// column's.
  std::vector<RhsResult> rhs_results;

  /// Convenience sums over the timer buckets (seconds).
  [[nodiscard]] double time_spmv() const { return spmv_seconds(timers); }
  [[nodiscard]] double time_precond() const { return precond_seconds(timers); }
  [[nodiscard]] double time_ortho() const { return ortho_seconds(timers); }
  [[nodiscard]] double time_total() const { return timers.seconds("total"); }
};

}  // namespace tsbo::krylov
