#pragma once
// Standard restarted GMRES (Saad/Schultz) — the paper's baseline
// "GMRES + CGS2" (Table III column 1).
//
// Right-preconditioned, restarted every m steps, one CGS2
// orthogonalization per step (3 global reduces: two projection passes
// plus the norm).  Convergence is declared from the Givens residual
// recurrence, checked every step — which is why the paper's standard
// GMRES iteration counts are exact (60251) while the s-step variants
// round up to panel boundaries.

#include "krylov/matrix_powers.hpp"
#include "krylov/solver.hpp"

#include <span>

namespace tsbo::krylov {

struct GmresConfig {
  index_t m = 60;          ///< restart length (paper uses 60)
  double rtol = 1e-6;      ///< relative residual tolerance (paper: 1e-6)
  /// Convergence reference norm.  0 (the default) keeps the classic
  /// criterion relative to the initial-residual norm ||b - A x0||.
  /// When > 0 (the warm-start path: api::Solver sets ||b|| whenever an
  /// initial guess is installed), convergence and the reported relres
  /// are measured against this fixed norm instead — a good x0 then
  /// genuinely cuts iterations rather than re-normalizing the target.
  double conv_reference = 0.0;
  long max_iters = 1000000;
  int max_restarts = 1000000;
  enum class Ortho { kCgs2, kMgs } ortho = Ortho::kCgs2;
  /// Optional per-restart observer (see solver.hpp).
  ProgressCallback on_restart;
  /// Cooperative cancellation: when non-null, polled at every restart
  /// boundary through a collective max-reduce (all ranks take the same
  /// exit; adds one sync per restart only when installed).  On stop the
  /// result carries cancelled / deadline_expired and the best iterate.
  const par::CancelToken* cancel = nullptr;
};

/// Solves A M^{-1} u = b, x += M^{-1} u from the initial guess in `x`.
/// Collective over `comm`; b and x are rank-local row blocks.
SolveResult gmres(par::Communicator& comm, const sparse::DistCsr& a,
                  const precond::Preconditioner* m_prec,
                  std::span<const double> b, std::span<double> x,
                  const GmresConfig& cfg);

}  // namespace tsbo::krylov
