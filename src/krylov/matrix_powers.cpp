#include "krylov/matrix_powers.hpp"

#include <algorithm>
#include <cassert>

namespace tsbo::krylov {

void PrecOperator::apply(par::Communicator& comm, std::span<const double> x,
                         std::span<double> y, util::PhaseTimers* timers) const {
  if (m_ != nullptr) {
    if (timers) timers->start("precond");
    m_->apply(x, tmp_);
    if (timers) timers->stop("precond");
    a_.spmv(comm, tmp_, y, timers);
  } else {
    a_.spmv(comm, x, y, timers);
  }
}

void PrecOperator::apply_block(par::Communicator& comm,
                               dense::ConstMatrixView x, dense::MatrixView y,
                               util::PhaseTimers* timers) const {
  if (m_ != nullptr) {
    const auto nloc = static_cast<std::size_t>(x.rows);
    tmp_multi_.resize(nloc * static_cast<std::size_t>(x.cols));
    dense::MatrixView mx{tmp_multi_.data(), x.rows, x.cols, x.rows};
    if (timers) timers->start("precond");
    m_->apply_multi(nloc, static_cast<std::size_t>(x.cols), x.data,
                    static_cast<std::size_t>(x.ld), mx.data,
                    static_cast<std::size_t>(mx.ld));
    if (timers) timers->stop("precond");
    a_.spmm(comm, mx, y, timers);
  } else {
    a_.spmm(comm, x, y, timers);
  }
}

void PrecOperator::apply_minv(std::span<const double> x, std::span<double> y,
                              util::PhaseTimers* timers) const {
  if (m_ != nullptr) {
    if (timers) timers->start("precond");
    m_->apply(x, y);
    if (timers) timers->stop("precond");
  } else {
    std::copy(x.begin(), x.end(), y.begin());
  }
}

void matrix_powers(par::Communicator& comm, const PrecOperator& op,
                   const KrylovBasis& basis, dense::MatrixView basis_cols,
                   index_t first_out, index_t s, util::PhaseTimers* timers) {
  assert(first_out >= 1 && first_out + s <= basis_cols.cols + 1);
  const auto nloc = static_cast<std::size_t>(basis_cols.rows);

  for (index_t k = 0; k < s; ++k) {
    const index_t out_col = first_out + k;
    const index_t in_col = out_col - 1;
    const BasisStep& st = basis.step(in_col);

    std::span<const double> x(basis_cols.col(in_col), nloc);
    std::span<double> v(basis_cols.col(out_col), nloc);
    op.apply(comm, x, v, timers);

    if (st.theta != 0.0 || st.sigma != 0.0 || st.gamma != 1.0) {
      const double* prev =
          st.sigma != 0.0 ? basis_cols.col(in_col - 1) : nullptr;
      const double inv_gamma = 1.0 / st.gamma;
      for (std::size_t i = 0; i < nloc; ++i) {
        double t = v[i] - st.theta * x[i];
        if (prev != nullptr) t -= st.sigma * prev[i];
        v[i] = t * inv_gamma;
      }
    }
  }
}

void PrecOperator::apply_minv_multi(dense::ConstMatrixView x,
                                    dense::MatrixView y,
                                    util::PhaseTimers* timers) const {
  const auto nloc = static_cast<std::size_t>(x.rows);
  if (m_ != nullptr) {
    if (timers) timers->start("precond");
    m_->apply_multi(nloc, static_cast<std::size_t>(x.cols), x.data,
                    static_cast<std::size_t>(x.ld), y.data,
                    static_cast<std::size_t>(y.ld));
    if (timers) timers->stop("precond");
  } else {
    for (index_t t = 0; t < x.cols; ++t) {
      std::copy(x.col(t), x.col(t) + nloc, y.col(t));
    }
  }
}

void matrix_powers_block(par::Communicator& comm, const PrecOperator& op,
                         const KrylovBasis& basis, dense::MatrixView basis_cols,
                         index_t first_out_block, index_t s, index_t b,
                         util::PhaseTimers* timers) {
  assert(first_out_block >= 1 && b >= 1);
  assert((first_out_block + s) * b <= basis_cols.cols + b);
  const auto nloc = static_cast<std::size_t>(basis_cols.rows);

  for (index_t k = 0; k < s; ++k) {
    const index_t out_block = first_out_block + k;
    const index_t in_block = out_block - 1;
    const BasisStep& st = basis.step(in_block);

    dense::ConstMatrixView x = basis_cols.columns(in_block * b, b);
    dense::MatrixView v = basis_cols.columns(out_block * b, b);
    op.apply_block(comm, x, v, timers);

    if (st.theta != 0.0 || st.sigma != 0.0 || st.gamma != 1.0) {
      const double inv_gamma = 1.0 / st.gamma;
      for (index_t t = 0; t < b; ++t) {
        const double* xc = x.col(t);
        const double* prev =
            st.sigma != 0.0 ? basis_cols.col((in_block - 1) * b + t) : nullptr;
        double* vc = v.col(t);
        for (std::size_t i = 0; i < nloc; ++i) {
          double tv = vc[i] - st.theta * xc[i];
          if (prev != nullptr) tv -= st.sigma * prev[i];
          vc[i] = tv * inv_gamma;
        }
      }
    }
  }
}

}  // namespace tsbo::krylov
