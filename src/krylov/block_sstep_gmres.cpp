#include "krylov/block_sstep_gmres.hpp"

#include "dense/blas1.hpp"
#include "dense/blas3.hpp"
#include "dense/block_householder.hpp"
#include "krylov/hessenberg.hpp"
#include "util/aligned.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace tsbo::krylov {

namespace {

void validate(const BlockSStepGmresConfig& cfg, index_t k) {
  const SStepGmresConfig& c = cfg.base;
  if (c.s <= 0 || c.m <= 0 || c.m % c.s != 0) {
    throw std::invalid_argument("block_sstep_gmres: s must divide m");
  }
  if (c.scheme == OrthoScheme::kTwoStage) {
    if (c.bs < c.s || c.bs > c.m || c.bs % c.s != 0) {
      throw std::invalid_argument(
          "block_sstep_gmres: two-stage requires s <= bs <= m with s | bs");
    }
  }
  if ((c.basis == BasisKind::kNewton || c.basis == BasisKind::kChebyshev) &&
      !(c.lambda_max > c.lambda_min)) {
    throw std::invalid_argument(
        "block_sstep_gmres: Newton/Chebyshev bases need a spectral interval");
  }
  if (!cfg.conv_reference.empty() &&
      static_cast<index_t>(cfg.conv_reference.size()) != k) {
    throw std::invalid_argument(
        "block_sstep_gmres: conv_reference must hold one norm per RHS");
  }
}

KrylovBasis make_basis(const SStepGmresConfig& cfg) {
  switch (cfg.basis) {
    case BasisKind::kMonomial:
      return KrylovBasis::monomial(cfg.m);
    case BasisKind::kNewton:
      return KrylovBasis::newton(cfg.m, cfg.s, cfg.lambda_min, cfg.lambda_max);
    case BasisKind::kChebyshev:
      return KrylovBasis::chebyshev(cfg.m, cfg.s, cfg.lambda_min,
                                    cfg.lambda_max);
  }
  throw std::invalid_argument("block_sstep_gmres: unknown basis");
}

/// Operator-norm estimate for the monomial/Newton gamma scaling —
/// identical to the single-RHS solver's (one allreduce).
double gamma_scale_estimate(par::Communicator& comm, const sparse::DistCsr& a,
                            const precond::Preconditioner* m_prec) {
  const sparse::CsrMatrix& local = a.local_matrix();
  double est = 0.0;
  for (sparse::ord i = 0; i < local.rows; ++i) {
    double row = 0.0;
    double diag = 1.0;
    for (sparse::offset k = local.row_ptr[i]; k < local.row_ptr[i + 1]; ++k) {
      const auto kk = static_cast<std::size_t>(k);
      row += std::abs(local.values[kk]);
      if (local.col_idx[kk] == i) diag = std::abs(local.values[kk]);
    }
    est = std::max(est, m_prec != nullptr && diag > 0.0 ? row / diag : row);
  }
  return comm.allreduce_max_scalar(est);
}

}  // namespace

SolveResult block_sstep_gmres(par::Communicator& comm,
                              const sparse::DistCsr& a,
                              const precond::Preconditioner* m_prec,
                              dense::ConstMatrixView b_rhs,
                              dense::MatrixView x,
                              const BlockSStepGmresConfig& cfg) {
  const index_t k = b_rhs.cols;
  const auto nloc = static_cast<std::size_t>(a.n_local());
  assert(static_cast<std::size_t>(b_rhs.rows) == nloc && x.cols == k &&
         static_cast<std::size_t>(x.rows) == nloc);
  validate(cfg, k);

  if (k == 1) {
    // Single RHS: the block machinery would round differently
    // (Householder-on-H vs Givens, serial spmm vs gather spmv); the
    // determinism contract pins k=1 bitwise to the existing solver, so
    // delegate outright.
    SStepGmresConfig scfg = cfg.base;
    if (!cfg.conv_reference.empty()) scfg.conv_reference = cfg.conv_reference[0];
    SolveResult res = sstep_gmres(
        comm, a, m_prec, std::span<const double>(b_rhs.col(0), nloc),
        std::span<double>(x.col(0), nloc), scfg);
    RhsResult rr;
    rr.converged = res.converged;
    rr.iters = res.iters;
    rr.relres = res.relres;
    rr.true_relres = res.true_relres;
    res.rhs_results.assign(1, rr);
    return res;
  }

  const SStepGmresConfig& base = cfg.base;
  SolveResult res;
  res.rhs_results.resize(static_cast<std::size_t>(k));
  const par::CommStats comm_before = comm.stats();
  ortho::OrthoContext octx;
  octx.comm = &comm;
  octx.timers = &res.timers;
  octx.policy = base.policy;
  octx.mixed_precision_gram = base.mixed_precision_gram;
  octx.inject_breakdown = base.inject_chol_breakdown;

  PrecOperator op(a, m_prec);
  double gamma_scale = 0.0;
  if (base.basis != BasisKind::kChebyshev) {
    gamma_scale = gamma_scale_estimate(comm, a, m_prec);
  }
  KrylovBasis kbasis = make_basis(base);
  if (gamma_scale > 0.0) kbasis = kbasis.with_gamma_scale(gamma_scale);

  const index_t m = base.m;
  const index_t s = base.s;
  // Flat storage sized for the full block width; deflated cycles use
  // the leading (m+1)*b_act columns.
  dense::Matrix basis(static_cast<index_t>(nloc), (m + 1) * k);
  dense::Matrix rmat((m + 1) * k, (m + 1) * k);
  dense::Matrix lmat((m + 1) * k, (m + 1) * k);
  dense::Matrix hmat((m + 1) * k, m * k);
  dense::Matrix ract(static_cast<index_t>(nloc), k);
  dense::Matrix xact(static_cast<index_t>(nloc), k);
  dense::Matrix tmpact(static_cast<index_t>(nloc), k);
  dense::Matrix zact(static_cast<index_t>(nloc), k);
  dense::Matrix gmat(k, k);
  dense::Matrix s0(k, k);

  // Active (not yet deflated) columns, by original RHS index.
  std::vector<index_t> active;
  active.reserve(static_cast<std::size_t>(k));
  for (index_t t = 0; t < k; ++t) active.push_back(t);
  std::vector<double> ref(static_cast<std::size_t>(k), 0.0);
  bool have_refs = false;

  std::unique_ptr<ortho::BlockOrthoManager> manager;
  index_t manager_b = 0;

  res.timers.start("total");
  while (true) {
    if (base.cancel != nullptr) {
      const double stop =
          comm.allreduce_max_scalar(base.cancel->should_stop() ? 1.0 : 0.0);
      if (stop > 0.0) {
        if (base.cancel->cancelled()) {
          res.cancelled = true;
        } else {
          res.deadline_expired = true;
        }
        break;
      }
    }
    const index_t b_act = static_cast<index_t>(active.size());

    // --- Restart boundary: residual block, Gram, deflation, seed -----
    // One spmm (one halo exchange) + ONE Gram reduce serve the
    // explicit residual norms, the deflation decision, AND the seed
    // CholQR factor — the same single-synchronization boundary as the
    // single-RHS solver's residual-norm reduce.
    for (index_t t = 0; t < b_act; ++t) {
      std::copy(x.col(active[static_cast<std::size_t>(t)]),
                x.col(active[static_cast<std::size_t>(t)]) + nloc,
                xact.col(t));
    }
    a.spmm(comm, xact.block(0, 0, xact.rows(), b_act),
           tmpact.block(0, 0, tmpact.rows(), b_act), &res.timers);
    for (index_t t = 0; t < b_act; ++t) {
      const double* bc = b_rhs.col(active[static_cast<std::size_t>(t)]);
      const double* ax = tmpact.col(t);
      double* rc = ract.col(t);
      for (std::size_t i = 0; i < nloc; ++i) rc[i] = bc[i] - ax[i];
    }
    dense::MatrixView g = gmat.block(0, 0, b_act, b_act);
    ortho::block_dot(octx, ract.block(0, 0, ract.rows(), b_act),
                     ract.block(0, 0, ract.rows(), b_act), g);
    if (!have_refs) {
      for (index_t t = 0; t < b_act; ++t) {
        const index_t col = active[static_cast<std::size_t>(t)];
        ref[static_cast<std::size_t>(col)] =
            cfg.conv_reference.empty()
                ? std::sqrt(std::max(0.0, g(t, t)))
                : cfg.conv_reference[static_cast<std::size_t>(col)];
      }
      have_refs = true;
    }
    // Deflation: freeze converged columns; survivors keep their
    // sub-Gram (no second reduce).
    std::vector<index_t> keep;
    keep.reserve(static_cast<std::size_t>(b_act));
    for (index_t t = 0; t < b_act; ++t) {
      const index_t col = active[static_cast<std::size_t>(t)];
      const double gamma = std::sqrt(std::max(0.0, g(t, t)));
      RhsResult& rr = res.rhs_results[static_cast<std::size_t>(col)];
      const double rcol = ref[static_cast<std::size_t>(col)];
      rr.relres = rcol > 0.0 ? gamma / rcol : 0.0;
      if (gamma <= base.rtol * rcol) {
        rr.converged = true;
        rr.deflated_at_restart = res.restarts;
      } else {
        keep.push_back(t);
      }
    }
    if (keep.size() != active.size()) {
      std::vector<index_t> next;
      next.reserve(keep.size());
      for (std::size_t i = 0; i < keep.size(); ++i) {
        for (std::size_t j = 0; j < keep.size(); ++j) {
          gmat(static_cast<index_t>(i), static_cast<index_t>(j)) =
              g(keep[i], keep[j]);
        }
        if (keep[i] != static_cast<index_t>(i)) {
          std::copy(ract.col(keep[i]), ract.col(keep[i]) + nloc,
                    ract.col(static_cast<index_t>(i)));
        }
        next.push_back(active[static_cast<std::size_t>(keep[i])]);
      }
      active = std::move(next);
    }
    if (active.empty()) {
      res.converged = true;
      break;
    }
    if (res.iters >= base.max_iters || res.restarts >= base.max_restarts) {
      break;
    }
    const index_t bw = static_cast<index_t>(active.size());

    // Seed CholQR off the already-reduced Gram: S0 = chol(G), basis
    // block 0 = R0 S0^{-1}.  No extra synchronization.
    dense::copy(gmat.block(0, 0, bw, bw), s0.block(0, 0, bw, bw));
    dense::MatrixView s0v = s0.block(0, 0, bw, bw);
    ortho::chol_factor(octx, s0v, "block GMRES seed");
    for (index_t t = 0; t < bw; ++t) {
      std::copy(ract.col(t), ract.col(t) + nloc, basis.col(t));
    }
    dense::MatrixView basis_v = basis.block(0, 0, basis.rows(), (m + 1) * bw);
    ortho::block_scale(octx, s0v, basis_v.columns(0, bw));

    if (manager == nullptr || manager_b != bw) {
      SStepGmresConfig mcfg = base;
      mcfg.m = m * bw;
      mcfg.s = s * bw;
      mcfg.bs = base.bs * bw;
      manager = make_manager(mcfg);
      manager_b = bw;
    }
    manager->reset_cycle(bw);

    rmat.set_zero();
    lmat.set_zero();
    for (index_t t = 0; t < bw; ++t) rmat(t, t) = 1.0;
    dense::MatrixView rv = rmat.block(0, 0, (m + 1) * bw, (m + 1) * bw);
    dense::MatrixView lv = lmat.block(0, 0, (m + 1) * bw, (m + 1) * bw);
    dense::MatrixView hv = hmat.block(0, 0, (m + 1) * bw, m * bw);
    dense::BlockHessenbergLeastSquares ls(m * bw, bw, s0v);

    index_t assembled = 0;  // flat Hessenberg columns appended
    index_t generated = bw;
    bool inner_converged = false;
    const auto all_below_tol = [&] {
      for (index_t t = 0; t < bw; ++t) {
        const double rcol = ref[static_cast<std::size_t>(
            active[static_cast<std::size_t>(t)])];
        if (!(ls.residual_norm(t) <= base.rtol * rcol)) return false;
      }
      return true;
    };
    const auto append_new_columns = [&](index_t nfinal) {
      if (nfinal - bw <= assembled) return;
      res.timers.start("ortho/small");
      assemble_hessenberg_block(rv, lv, kbasis, s, bw, assembled, nfinal - bw,
                                hv);
      for (index_t c = assembled; c < nfinal - bw; ++c) {
        ls.append_column(std::span<const double>(
            hv.col(c), static_cast<std::size_t>(c + bw + 1)));
      }
      res.timers.stop("ortho/small");
      assembled = nfinal - bw;
    };

    const index_t npanel = m / s;
    for (index_t p = 0; p < npanel; ++p) {
      const index_t start_flat = p * s * bw;
      for (index_t t = 0; t < bw; ++t) {
        manager->note_mpk_start(octx, lv, start_flat + t);
      }
      matrix_powers_block(comm, op, kbasis, basis_v, p * s + 1, s, bw,
                          &res.timers);
      const index_t nfinal = manager->add_panel(
          octx, basis_v, start_flat + bw, s * bw, rv, lv);
      generated = start_flat + bw + s * bw;
      append_new_columns(nfinal);
      if (assembled > 0 && all_below_tol()) {
        inner_converged = true;
        break;
      }
    }
    // Flush a partially filled big panel (bs not dividing m, or an
    // early inner break) so the correction sees every column.
    {
      const index_t nfinal =
          manager->finalize(octx, basis_v, generated, rv, lv);
      append_new_columns(nfinal);
    }
    (void)inner_converged;  // the boundary pass re-detects convergence

    // Correction: X_active += M^{-1} (Q_{1:assembled} Y).
    const index_t used = ls.cols();
    if (used > 0) {
      const dense::Matrix y = ls.solve_y();
      res.timers.start("ortho/small");
      dense::gemm_nn(1.0, basis_v.columns(0, used), y.view(), 0.0,
                     zact.block(0, 0, zact.rows(), bw));
      res.timers.stop("ortho/small");
      op.apply_minv_multi(zact.block(0, 0, zact.rows(), bw),
                          tmpact.block(0, 0, tmpact.rows(), bw), &res.timers);
      for (index_t t = 0; t < bw; ++t) {
        dense::axpy(1.0,
                    std::span<const double>(tmpact.col(t), nloc),
                    std::span<double>(x.col(active[static_cast<std::size_t>(t)]),
                                      nloc));
      }
    }
    res.iters += assembled;
    res.restarts += 1;
    double worst = 0.0;
    for (index_t t = 0; t < bw; ++t) {
      const index_t col = active[static_cast<std::size_t>(t)];
      RhsResult& rr = res.rhs_results[static_cast<std::size_t>(col)];
      rr.iters += assembled / bw;
      const double rcol = ref[static_cast<std::size_t>(col)];
      rr.relres = rcol > 0.0 ? ls.residual_norm(t) / rcol : 0.0;
      worst = std::max(worst, rr.relres);
    }
    res.relres = worst;
    if (base.on_restart) {
      base.on_restart(ProgressEvent{res.iters, res.restarts, res.relres, worst,
                                    res.converged, &res.timers});
    }
  }
  res.timers.stop("total");

  // Final explicit residuals for EVERY column (frozen ones included) —
  // one spmm + one Gram reduce, mirroring the single-RHS exit path.
  a.spmm(comm, x, tmpact.block(0, 0, tmpact.rows(), k), &res.timers);
  for (index_t t = 0; t < k; ++t) {
    const double* bc = b_rhs.col(t);
    const double* ax = tmpact.col(t);
    double* rc = ract.col(t);
    for (std::size_t i = 0; i < nloc; ++i) rc[i] = bc[i] - ax[i];
  }
  ortho::block_dot(octx, ract.view(), ract.view(), gmat.view());
  double worst_true = 0.0;
  double worst_rel = 0.0;
  for (index_t t = 0; t < k; ++t) {
    RhsResult& rr = res.rhs_results[static_cast<std::size_t>(t)];
    const double norm = std::sqrt(std::max(0.0, gmat(t, t)));
    const double rcol = ref[static_cast<std::size_t>(t)];
    rr.true_relres = rcol > 0.0 ? norm / rcol : 0.0;
    worst_true = std::max(worst_true, rr.true_relres);
    worst_rel = std::max(worst_rel, rr.relres);
  }
  res.true_relres = worst_true;
  res.relres = worst_rel;
  res.comm_stats = par::subtract(comm.stats(), comm_before);
  res.cholesky_breakdowns = octx.cholesky_breakdowns;
  res.shift_retries = octx.shift_retries;
  return res;
}

}  // namespace tsbo::krylov
