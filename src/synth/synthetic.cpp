#include "synth/synthetic.hpp"

#include "dense/blas3.hpp"
#include "dense/householder.hpp"
#include "util/random.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace tsbo::synth {

using dense::index_t;
using dense::Matrix;

namespace {

/// Applies the reflector (I - 2 u u^T) (unit u) to every column of m.
void apply_reflector(Matrix& m, const std::vector<double>& u) {
  const index_t n = m.rows();
  assert(static_cast<index_t>(u.size()) == n);
  for (index_t j = 0; j < m.cols(); ++j) {
    double* col = m.col(j);
    double w = 0.0;
    for (index_t i = 0; i < n; ++i) w += u[static_cast<std::size_t>(i)] * col[i];
    w *= 2.0;
    for (index_t i = 0; i < n; ++i) col[i] -= w * u[static_cast<std::size_t>(i)];
  }
}

}  // namespace

Matrix random_orthonormal(index_t n, index_t s, std::uint64_t seed) {
  if (s > n) throw std::invalid_argument("random_orthonormal: s > n");
  util::Xoshiro256 rng(seed);

  // Householder QR of a Gaussian matrix is the gold standard but costs
  // O(n s^2); past a work threshold switch to a product of a few dense
  // random reflectors applied to identity columns — still *exactly*
  // orthonormal, random enough for conditioning studies.
  const double work = static_cast<double>(n) * s * s;
  if (work <= 64.0 * 1024 * 1024) {
    Matrix g(n, s);
    util::fill_normal(rng, g.data());
    auto [q, r] = dense::householder_qr(g.view());
    return q;
  }

  Matrix q(n, s);
  for (index_t j = 0; j < s; ++j) q(j, j) = 1.0;
  constexpr int kReflectors = 4;
  std::vector<double> u(static_cast<std::size_t>(n));
  for (int k = 0; k < kReflectors; ++k) {
    double norm2_u = 0.0;
    for (double& v : u) {
      v = rng.normal();
      norm2_u += v * v;
    }
    const double inv = 1.0 / std::sqrt(norm2_u);
    for (double& v : u) v *= inv;
    apply_reflector(q, u);
  }
  return q;
}

Matrix logscaled(index_t n, index_t s, double kappa, std::uint64_t seed) {
  if (kappa < 1.0) throw std::invalid_argument("logscaled: kappa < 1");
  Matrix x = random_orthonormal(n, s, seed * 2 + 1);
  Matrix y = random_orthonormal(s, s, seed * 2 + 2);

  // sigma_k log-spaced in [1/kappa, 1].
  std::vector<double> sigma(static_cast<std::size_t>(s));
  for (index_t k = 0; k < s; ++k) {
    const double t = s == 1 ? 0.0 : static_cast<double>(k) / (s - 1);
    sigma[static_cast<std::size_t>(k)] = std::pow(kappa, -t);
  }

  // V = (X * Sigma) * Y^T.
  for (index_t k = 0; k < s; ++k) {
    double* col = x.col(k);
    for (index_t i = 0; i < n; ++i) col[i] *= sigma[static_cast<std::size_t>(k)];
  }
  Matrix v(n, s);
  dense::gemm_nt(1.0, x.view(), y.view(), 0.0, v.view());
  return v;
}

std::vector<double> glued_panel_singular_values(const GluedSpec& spec, int j) {
  assert(j >= 0 && j < spec.panels);
  const index_t s = spec.panel_cols;
  // Panel j singular values log-spaced in [top_j / kappa_panel, top_j]
  // with top_j = growth^{-j}: every panel has kappa exactly
  // kappa_panel, the global max stays 1 (panel 0), and the global min
  // after j+1 panels is growth^{-j}/kappa_panel, i.e. cumulative
  // kappa(V_{1:j+1}) = growth^j * kappa_panel.
  const double top = std::pow(spec.growth, -static_cast<double>(j));
  std::vector<double> sv(static_cast<std::size_t>(s));
  for (index_t k = 0; k < s; ++k) {
    const double t = s == 1 ? 0.0 : static_cast<double>(k) / (s - 1);
    sv[static_cast<std::size_t>(k)] = top * std::pow(spec.kappa_panel, -t);
  }
  return sv;
}

Matrix glued(const GluedSpec& spec, std::uint64_t seed) {
  if (spec.n <= 0 || spec.panels <= 0 || spec.panel_cols <= 0) {
    throw std::invalid_argument("glued: empty spec");
  }
  const index_t total = spec.panel_cols * spec.panels;
  if (total > spec.n) throw std::invalid_argument("glued: more cols than rows");

  Matrix x = random_orthonormal(spec.n, total, seed * 3 + 1);
  Matrix v(spec.n, total);

  for (int j = 0; j < spec.panels; ++j) {
    const index_t c0 = spec.panel_cols * j;
    const std::vector<double> sv = glued_panel_singular_values(spec, j);
    Matrix y = random_orthonormal(spec.panel_cols, spec.panel_cols,
                                  seed * 3 + 100 + static_cast<std::uint64_t>(j));
    // panel_j = X(:, c0:c0+s) * diag(sv) * Y^T
    Matrix xs(spec.n, spec.panel_cols);
    dense::copy(x.view().columns(c0, spec.panel_cols), xs.view());
    for (index_t k = 0; k < spec.panel_cols; ++k) {
      double* col = xs.col(k);
      for (index_t i = 0; i < spec.n; ++i) col[i] *= sv[static_cast<std::size_t>(k)];
    }
    auto panel = v.view().columns(c0, spec.panel_cols);
    dense::gemm_nt(1.0, xs.view(), y.view(), 0.0, panel);
  }
  return v;
}

}  // namespace tsbo::synth
