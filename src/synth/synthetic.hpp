#pragma once
// Synthetic dense test matrices for the paper's numerical studies.
//
// Fig. 6 uses "logscaled" matrices: V = X Sigma Y^T with random
// orthonormal X, Y and log-spaced singular values, so kappa(V) is set
// exactly.  Figs. 7-8 use "glued" matrices (Smoktunowicz et al. /
// BlockStab tradition): panels with individually prescribed condition
// numbers whose concatenation has a prescribed (possibly growing)
// condition number.  We construct them as V = X * blockdiag_j(Sigma_j
// Y_j^T): X has orthonormal columns shared across panels and each panel
// gets its own singular values, so panel j has exactly kappa_panel and
// the union of all Sigma_j entries fixes the cumulative kappa.

#include "dense/matrix.hpp"

#include <cstdint>
#include <vector>

namespace tsbo::synth {

/// n x s matrix with exactly orthonormal columns.  For large n*s^2 the
/// matrix is built as a product of `reflectors` random Householder
/// reflectors applied to the first s identity columns (exact
/// orthonormality, O(reflectors * n * s) cost); small cases use full
/// Householder QR of a Gaussian matrix.
dense::Matrix random_orthonormal(dense::index_t n, dense::index_t s,
                                 std::uint64_t seed);

/// Logscaled matrix of Fig. 6: V = X Sigma Y^T, singular values
/// log-spaced in [1/kappa, 1].
dense::Matrix logscaled(dense::index_t n, dense::index_t s, double kappa,
                        std::uint64_t seed);

/// Specification of a glued matrix.
struct GluedSpec {
  dense::index_t n = 0;           // rows
  int panels = 0;                 // number of panels
  dense::index_t panel_cols = 0;  // columns per panel
  double kappa_panel = 1e7;       // condition number of every panel
  /// Cumulative growth: kappa(V_{1:j}) = growth^{j-1} * kappa_panel.
  /// growth = 1 gives the Fig. 7 matrix (uniform kappa); growth = 2
  /// gives the Fig. 8 matrix (2^{j-1} * 1e7).
  double growth = 1.0;
};

/// Builds the glued matrix (panels stacked left to right).
dense::Matrix glued(const GluedSpec& spec, std::uint64_t seed);

/// The exact singular values the construction assigns to panel j
/// (descending) — used by tests to verify the generator itself.
std::vector<double> glued_panel_singular_values(const GluedSpec& spec, int j);

}  // namespace tsbo::synth
