#include "api/solver.hpp"

#include "par/config.hpp"
#include "par/spmd.hpp"
#include "sparse/partition.hpp"
#include "sparse/scaling.hpp"
#include "sparse/spmv.hpp"

#include <algorithm>
#include <mutex>
#include <span>
#include <stdexcept>

namespace tsbo::api {

std::vector<double> ones_rhs(const sparse::CsrMatrix& a) {
  std::vector<double> x(static_cast<std::size_t>(a.rows), 1.0);
  std::vector<double> b(static_cast<std::size_t>(a.rows), 0.0);
  sparse::spmv(a, x, b);
  return b;
}

sparse::CsrMatrix make_matrix(const SolverOptions& opts, std::string* label) {
  sparse::CsrMatrix a = matrix_registry().at(opts.matrix).make(opts);
  if (opts.equilibrate) sparse::equilibrate_max(a);
  if (label != nullptr) {
    *label = opts.matrix == "file" ? opts.matrix_file : opts.matrix;
  }
  return a;
}

Solver& Solver::set_matrix(sparse::CsrMatrix a, std::string label) {
  owned_matrix_ = std::move(a);
  matrix_ = &owned_matrix_;
  matrix_label_ = std::move(label);
  return *this;
}

Solver& Solver::set_matrix_ref(const sparse::CsrMatrix& a, std::string label) {
  matrix_ = &a;
  matrix_label_ = std::move(label);
  return *this;
}

Solver& Solver::set_rhs(std::vector<double> b) {
  b_ = std::move(b);
  return *this;
}

Solver& Solver::set_initial_guess(std::vector<double> x0) {
  x0_ = std::move(x0);
  return *this;
}

Solver& Solver::on_restart(krylov::ProgressCallback cb) {
  user_callback_ = std::move(cb);
  return *this;
}

const sparse::CsrMatrix& Solver::matrix() {
  if (matrix_ == nullptr) {
    owned_matrix_ = make_matrix(opts_, &matrix_label_);
    matrix_ = &owned_matrix_;
  }
  return *matrix_;
}

const std::vector<double>& Solver::rhs() {
  if (b_.empty()) b_ = ones_rhs(matrix());
  return b_;
}

SolveReport Solver::solve() {
  opts_.validate();
  const sparse::CsrMatrix& a = matrix();
  const std::vector<double>& b = rhs();
  const auto n = static_cast<std::size_t>(a.rows);
  if (b.size() != n) {
    throw std::invalid_argument("api::Solver: rhs length " +
                                std::to_string(b.size()) +
                                " != matrix rows " + std::to_string(n));
  }
  if (!x0_.empty() && x0_.size() != n) {
    throw std::invalid_argument("api::Solver: initial guess length " +
                                std::to_string(x0_.size()) +
                                " != matrix rows " + std::to_string(n));
  }

  SolveReport report;
  report.options = opts_;
  report.matrix = MatrixStats{matrix_label_, a.rows, a.nnz(), a.nnz_per_row()};
  report.ranks = opts_.ranks;
  report.threads = par::num_threads();

  x_.assign(n, 0.0);
  const PrecondEntry& prec_entry = precond_registry().at(opts_.precond);

  krylov::SolveResult out;
  util::PhaseTimers merged;
  std::vector<RestartRecord> history;
  std::mutex merge_mutex;

  // The observer runs on rank 0 only, so `history` needs no locking.
  const krylov::ProgressCallback observer =
      [this, &history](const krylov::ProgressEvent& ev) {
        RestartRecord rec;
        rec.restart = ev.restarts;
        rec.iters = ev.iters;
        rec.relres = ev.relres;
        rec.explicit_relres = ev.explicit_relres;
        if (ev.timers != nullptr) {
          rec.seconds_spmv = krylov::spmv_seconds(*ev.timers);
          rec.seconds_precond = krylov::precond_seconds(*ev.timers);
          rec.seconds_ortho = krylov::ortho_seconds(*ev.timers);
        }
        history.push_back(rec);
        if (user_callback_) user_callback_(ev);
      };

  par::spmd_run(opts_.ranks, opts_.network_model(),
                [&](par::Communicator& comm) {
    const sparse::RowPartition part(a.rows, comm.size());
    const sparse::DistCsr dist(a, part, comm.rank());
    const auto begin = static_cast<std::size_t>(part.begin(comm.rank()));
    const auto nloc = static_cast<std::size_t>(dist.n_local());

    std::vector<double> x(nloc, 0.0);
    if (!x0_.empty()) {
      std::copy_n(x0_.begin() + static_cast<std::ptrdiff_t>(begin), nloc,
                  x.begin());
    }
    const std::span<const double> b_local(b.data() + begin, nloc);

    const std::unique_ptr<precond::Preconditioner> prec =
        prec_entry.make(opts_, dist);

    krylov::SolveResult res;
    if (opts_.is_sstep()) {
      krylov::SStepGmresConfig cfg = opts_.sstep_config();
      if (comm.rank() == 0) cfg.on_restart = observer;
      res = krylov::sstep_gmres(comm, dist, prec.get(), b_local, x, cfg);
    } else {
      krylov::GmresConfig cfg = opts_.gmres_config();
      if (comm.rank() == 0) cfg.on_restart = observer;
      res = krylov::gmres(comm, dist, prec.get(), b_local, x, cfg);
    }

    std::lock_guard lock(merge_mutex);
    merged.merge_max(res.timers);
    std::copy(x.begin(), x.end(),
              x_.begin() + static_cast<std::ptrdiff_t>(begin));
    if (comm.rank() == 0) out = res;
  });

  // Critical-path convention: per-phase max across ranks.
  out.timers = merged;
  report.result = out;
  report.history = std::move(history);
  return report;
}

}  // namespace tsbo::api
