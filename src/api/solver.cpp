#include "api/solver.hpp"

#include "krylov/block_sstep_gmres.hpp"
#include "par/config.hpp"
#include "par/spmd.hpp"
#include "sparse/partition.hpp"
#include "sparse/scaling.hpp"
#include "sparse/spmv.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <stdexcept>

namespace tsbo::api {

std::vector<double> ones_rhs(const sparse::CsrMatrix& a) {
  std::vector<double> x(static_cast<std::size_t>(a.rows), 1.0);
  std::vector<double> b(static_cast<std::size_t>(a.rows), 0.0);
  sparse::spmv(a, x, b);
  return b;
}

std::vector<double> batch_rhs(const sparse::CsrMatrix& a, int k) {
  if (k < 1) {
    throw std::invalid_argument("api::batch_rhs: k must be >= 1, got " +
                                std::to_string(k));
  }
  const auto n = static_cast<std::size_t>(a.rows);
  std::vector<double> b(n * static_cast<std::size_t>(k), 0.0);
  std::vector<double> x(n, 1.0);
  std::vector<double> bt(n, 0.0);
  for (int t = 0; t < k; ++t) {
    if (t > 0) {
      // Deterministic per-column perturbation of the ones solution
      // (integer splitmix-style hash -> [0, 0.5)), so the RHS block is
      // full-rank (scaled copies of one column would be) and every
      // column is bit-reproducible across platforms.
      for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t h = (static_cast<std::uint64_t>(i) + 1) *
                          0x9E3779B97F4A7C15ull *
                          (static_cast<std::uint64_t>(t) + 1);
        h ^= h >> 31;
        x[i] = 1.0 + 0.5 * static_cast<double>(h >> 11) * 0x1p-53;
      }
    }
    sparse::spmv(a, x, bt);
    std::copy(bt.begin(), bt.end(),
              b.begin() + static_cast<std::ptrdiff_t>(n) * t);
  }
  return b;
}

sparse::CsrMatrix make_matrix(const SolverOptions& opts, std::string* label) {
  sparse::CsrMatrix a = matrix_registry().at(opts.matrix).make(opts);
  if (opts.equilibrate) sparse::equilibrate_max(a);
  if (label != nullptr) {
    *label = opts.matrix == "file" ? opts.matrix_file : opts.matrix;
  }
  return a;
}

Solver& Solver::set_matrix(sparse::CsrMatrix a, std::string label) {
  owned_matrix_ = std::move(a);
  matrix_ = &owned_matrix_;
  matrix_label_ = std::move(label);
  return *this;
}

Solver& Solver::set_matrix_ref(const sparse::CsrMatrix& a, std::string label) {
  matrix_ = &a;
  matrix_label_ = std::move(label);
  return *this;
}

Solver& Solver::set_rhs(std::vector<double> b) {
  b_ = std::move(b);
  b_ref_ = nullptr;
  return *this;
}

Solver& Solver::set_rhs_ref(const std::vector<double>& b) {
  b_ref_ = &b;
  return *this;
}

Solver& Solver::set_partitioned_operator(
    const std::vector<sparse::DistCsr>* pieces) {
  partitioned_ = pieces;
  return *this;
}

Solver& Solver::set_precond_factory(PrecondFactory factory) {
  precond_factory_ = std::move(factory);
  return *this;
}

Solver& Solver::set_local_workspace(
    std::vector<util::aligned_vector<double>>* ws) {
  workspace_ = ws;
  return *this;
}

Solver& Solver::set_initial_guess(std::vector<double> x0) {
  x0_ = std::move(x0);
  return *this;
}

Solver& Solver::on_restart(krylov::ProgressCallback cb) {
  user_callback_ = std::move(cb);
  return *this;
}

Solver& Solver::set_fault_injector(par::FaultInjector* injector) {
  fault_injector_ = injector;
  return *this;
}

Solver& Solver::set_cancel_token(const par::CancelToken* token) {
  cancel_token_ = token;
  return *this;
}

const sparse::CsrMatrix& Solver::matrix() {
  if (matrix_ == nullptr) {
    owned_matrix_ = make_matrix(opts_, &matrix_label_);
    matrix_ = &owned_matrix_;
  }
  return *matrix_;
}

const std::vector<double>& Solver::rhs() {
  if (b_ref_ != nullptr) return *b_ref_;
  if (b_.empty()) {
    b_ = opts_.rhs > 1 ? batch_rhs(matrix(), opts_.rhs) : ones_rhs(matrix());
  }
  return b_;
}

SolveReport Solver::solve() {
  opts_.validate();
  const sparse::CsrMatrix& a = matrix();
  const std::vector<double>& b = rhs();
  const auto n = static_cast<std::size_t>(a.rows);
  const auto nrhs = static_cast<std::size_t>(opts_.rhs);
  if (b.size() != n * nrhs) {
    throw std::invalid_argument(
        "api::Solver: rhs length " + std::to_string(b.size()) +
        " != matrix rows * rhs = " + std::to_string(n) + " * " +
        std::to_string(nrhs));
  }
  if (!x0_.empty() && x0_.size() != n * nrhs) {
    throw std::invalid_argument(
        "api::Solver: initial guess length " + std::to_string(x0_.size()) +
        " != matrix rows * rhs = " + std::to_string(n) + " * " +
        std::to_string(nrhs));
  }
  if (partitioned_ != nullptr &&
      partitioned_->size() != static_cast<std::size_t>(opts_.ranks)) {
    throw std::invalid_argument(
        "api::Solver: partitioned operator has " +
        std::to_string(partitioned_->size()) + " pieces for ranks=" +
        std::to_string(opts_.ranks));
  }
  if (workspace_ != nullptr &&
      workspace_->size() != static_cast<std::size_t>(opts_.ranks)) {
    throw std::invalid_argument("api::Solver: local workspace has " +
                                std::to_string(workspace_->size()) +
                                " lanes for ranks=" +
                                std::to_string(opts_.ranks));
  }

  SolveReport report;
  report.options = opts_;
  report.matrix = MatrixStats{matrix_label_, a.rows, a.nnz(), a.nnz_per_row()};
  report.ranks = opts_.ranks;
  report.threads = par::num_threads();

  x_.assign(n * nrhs, 0.0);
  const PrecondEntry& prec_entry = precond_registry().at(opts_.precond);

  // With an initial guess the convergence target is rtol * ||b|| (a
  // fixed serial norm, identical at every rank/thread count) instead
  // of rtol * ||b - A x0||: a good x0 then starts partway to the
  // target rather than re-normalizing it — the warm-start contract.
  // Zero-guess solves keep the classic criterion, where the two agree.
  // Batched solves track one reference per RHS column, so a warm
  // start on one column never re-normalizes another's target.
  double conv_reference = 0.0;
  std::vector<double> conv_refs;
  if (!x0_.empty()) {
    for (std::size_t t = 0; t < nrhs; ++t) {
      double sq = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double v = b[t * n + i];
        sq += v * v;
      }
      conv_refs.push_back(std::sqrt(sq));
    }
    conv_reference = conv_refs[0];
  }

  // Resilience plumbing: borrow the caller's job-scoped injector /
  // token (the service path) or build per-call standalone ones from
  // the options.  A fresh standalone injector starts at attempt 1 with
  // nothing fired, so repeated solve() calls see identical schedules.
  std::optional<par::FaultInjector> own_injector;
  par::FaultInjector* injector = fault_injector_;
  if (injector == nullptr && !opts_.faults.empty()) {
    own_injector.emplace(par::FaultPlan::parse(opts_.faults), opts_.ranks);
    injector = &own_injector.value();
  }
  std::optional<par::CancelToken> own_token;
  const par::CancelToken* cancel = cancel_token_;
  if (cancel == nullptr && opts_.deadline_ms > 0) {
    own_token.emplace();
    own_token->set_deadline_after(std::chrono::milliseconds(opts_.deadline_ms));
    cancel = &own_token.value();
  }

  krylov::SolveResult out;
  util::PhaseTimers merged;
  std::vector<RestartRecord> history;
  std::mutex merge_mutex;

  // The observer runs on rank 0 only, so `history` needs no locking.
  const krylov::ProgressCallback observer =
      [this, &history](const krylov::ProgressEvent& ev) {
        RestartRecord rec;
        rec.restart = ev.restarts;
        rec.iters = ev.iters;
        rec.relres = ev.relres;
        rec.explicit_relres = ev.explicit_relres;
        if (ev.timers != nullptr) {
          rec.seconds_spmv = krylov::spmv_seconds(*ev.timers);
          rec.seconds_precond = krylov::precond_seconds(*ev.timers);
          rec.seconds_ortho = krylov::ortho_seconds(*ev.timers);
        }
        history.push_back(rec);
        if (user_callback_) user_callback_(ev);
      };

  par::spmd_run(opts_.ranks, opts_.network_model(),
                [&](par::Communicator& comm) {
    // Fault seam first: every instrumented site below (DistCsr::spmv,
    // the ortho Gram, the collectives themselves) consults through
    // this rank's communicator.
    comm.set_fault_injector(injector);
    // Operator piece: borrowed from the caller (the operator cache's
    // prebuilt partition + comm plan) or built fresh for this solve.
    std::optional<sparse::DistCsr> built;
    if (partitioned_ == nullptr) {
      built.emplace(a, sparse::RowPartition(a.rows, comm.size()), comm.rank());
    }
    const sparse::DistCsr& dist =
        partitioned_ != nullptr
            ? (*partitioned_)[static_cast<std::size_t>(comm.rank())]
            : *built;
    const auto begin = static_cast<std::size_t>(dist.row_begin());
    const auto nloc = static_cast<std::size_t>(dist.n_local());

    // Rank-local solution storage: caller-borrowed aligned scratch when
    // set (fully overwritten below, so reuse never changes bits), else
    // a fresh per-solve vector.
    std::vector<double> x_own;
    std::span<double> x;
    if (workspace_ != nullptr) {
      auto& w = (*workspace_)[static_cast<std::size_t>(comm.rank())];
      w.assign(nloc * nrhs, 0.0);
      x = std::span<double>(w.data(), nloc * nrhs);
    } else {
      x_own.assign(nloc * nrhs, 0.0);
      x = std::span<double>(x_own);
    }
    if (!x0_.empty()) {
      for (std::size_t t = 0; t < nrhs; ++t) {
        std::copy_n(x0_.begin() + static_cast<std::ptrdiff_t>(t * n + begin),
                    nloc, x.begin() + static_cast<std::ptrdiff_t>(t * nloc));
      }
    }
    const std::span<const double> b_local(b.data() + begin, nloc);

    const std::unique_ptr<precond::Preconditioner> prec =
        precond_factory_ ? precond_factory_(opts_, dist, comm.rank())
                         : prec_entry.make(opts_, dist);

    krylov::SolveResult res;
    if (nrhs > 1) {
      // Batched multi-RHS path: one block solve over all k columns.
      // The rank-local RHS block is a strided view into the global b
      // (column t at offset t*n + begin, leading dimension n).
      krylov::BlockSStepGmresConfig bcfg;
      bcfg.base = opts_.sstep_config();
      bcfg.base.cancel = cancel;
      if (comm.rank() == 0) bcfg.base.on_restart = observer;
      bcfg.conv_reference = conv_refs;
      const dense::ConstMatrixView bv{
          b.data() + begin, static_cast<dense::index_t>(nloc),
          static_cast<dense::index_t>(nrhs), static_cast<dense::index_t>(n)};
      const dense::MatrixView xv{x.data(), static_cast<dense::index_t>(nloc),
                                 static_cast<dense::index_t>(nrhs),
                                 static_cast<dense::index_t>(nloc)};
      res = krylov::block_sstep_gmres(comm, dist, prec.get(), bv, xv, bcfg);
    } else if (opts_.is_sstep()) {
      krylov::SStepGmresConfig cfg = opts_.sstep_config();
      cfg.conv_reference = conv_reference;
      cfg.cancel = cancel;
      if (comm.rank() == 0) cfg.on_restart = observer;
      res = krylov::sstep_gmres(comm, dist, prec.get(), b_local, x, cfg);
    } else {
      krylov::GmresConfig cfg = opts_.gmres_config();
      cfg.conv_reference = conv_reference;
      cfg.cancel = cancel;
      if (comm.rank() == 0) cfg.on_restart = observer;
      res = krylov::gmres(comm, dist, prec.get(), b_local, x, cfg);
    }

    std::lock_guard lock(merge_mutex);
    merged.merge_max(res.timers);
    for (std::size_t t = 0; t < nrhs; ++t) {
      std::copy_n(x.begin() + static_cast<std::ptrdiff_t>(t * nloc), nloc,
                  x_.begin() + static_cast<std::ptrdiff_t>(t * n + begin));
    }
    if (comm.rank() == 0) out = res;
  });

  // Critical-path convention: per-phase max across ranks.
  out.timers = merged;
  report.result = out;
  report.history = std::move(history);

  // Resilience record: fired-fault trail (rank 0's deterministic copy)
  // and the end-of-solve residual guard.
  if (injector != nullptr) {
    report.resilience.fault_trail = injector->trail(0);
  }
  report.resilience.guard_enabled = opts_.verify_residual == 1;
  if (opts_.verify_residual == 1) {
    if (out.cancelled || out.deadline_expired) {
      // A cooperative stop exits with whatever iterate it had; judging
      // that against the convergence tolerance would be noise.
      report.resilience.guard_verdict = "skipped";
    } else {
      // Serial recompute against the assembled global matrix —
      // independent of the distributed pieces and their halo state, so
      // corrupted exchange buffers cannot vouch for themselves.  The
      // reference is the serial ||b||; the factor absorbs the benign
      // recurrence-vs-true gap (Carson & Ma, arXiv:2409.03079) and
      // parallel-vs-serial rounding in ref (see kResidualGuardFactor).
      // Batched solves judge every RHS column independently (against
      // its own reported relres when available); one corrupted column
      // flags the whole job, and the scalar verdict echoes the worst
      // column.
      std::vector<double> ax(n, 0.0);
      bool sound_all = true;
      double worst_rel = 0.0;
      double worst_tol = 0.0;
      for (std::size_t t = 0; t < nrhs; ++t) {
        const std::span<const double> xt(x_.data() + t * n, n);
        const std::span<const double> bt(b.data() + t * n, n);
        sparse::spmv(a, xt, ax);
        double rr = 0.0;
        double bb = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          const double d = bt[i] - ax[i];
          rr += d * d;
          bb += bt[i] * bt[i];
        }
        const double ref = std::sqrt(bb);
        const double true_rel = ref > 0.0 ? std::sqrt(rr) / ref : std::sqrt(rr);
        const double col_relres = t < out.rhs_results.size()
                                      ? out.rhs_results[t].relres
                                      : out.relres;
        const double tol =
            kResidualGuardFactor * std::max(col_relres, opts_.rtol);
        // NaN-safe on purpose: a NaN true_rel (or NaN relres making tol
        // NaN) fails the <= and lands in "corrupted".
        const bool sound = true_rel <= tol;
        sound_all = sound_all && sound;
        if (t == 0 || !(true_rel <= worst_rel)) {
          worst_rel = true_rel;
          worst_tol = tol;
        }
        if (nrhs > 1) {
          report.resilience.guard_rhs_verdicts.push_back(sound ? "ok"
                                                               : "corrupted");
          report.resilience.guard_rhs_true_relres.push_back(true_rel);
        }
      }
      report.resilience.guard_true_relres = worst_rel;
      report.resilience.guard_tolerance = worst_tol;
      report.resilience.guard_verdict = sound_all ? "ok" : "corrupted";
      if (!sound_all) report.resilience.outcome = "corrupted";
    }
  }
  if (report.resilience.outcome == "ok") {
    if (out.cancelled) report.resilience.outcome = "cancelled";
    if (out.deadline_expired) report.resilience.outcome = "timed_out";
  }
  return report;
}

}  // namespace tsbo::api
