#pragma once
// Name-keyed factory registries for the solver facade.
//
// Three registries replace the enum switches the bench binaries used to
// hand-roll: block-orthogonalization schemes, preconditioners, and
// matrix sources (structured generators, SuiteSparse surrogates, and
// MatrixMarket files).  A new scheme registers a name + factory —
// callers select it with "ortho=<name>" and nothing else changes.
// Lookups fail loudly, listing the known names with a did-you-mean
// hint.
//
// The built-in entries are registered on first access (function-local
// singletons); the registries are mutable on purpose so experimental
// schemes (e.g. the random-sketching direction of arXiv:2503.16717) can
// self-register from their own translation units.

#include "krylov/gmres.hpp"
#include "krylov/sstep_gmres.hpp"
#include "precond/preconditioner.hpp"
#include "sparse/csr.hpp"
#include "sparse/dist_csr.hpp"
#include "util/cli.hpp"

#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace tsbo::api {

struct SolverOptions;

/// Ordered name -> Entry map with loud, suggestion-bearing lookup
/// failures.  Registration order is preserved (names() drives "run all
/// schemes" sweeps, so built-ins stay in paper order).
template <typename Entry>
class Registry {
 public:
  explicit Registry(std::string kind) : kind_(std::move(kind)) {}

  /// Registers `name`; re-registering an existing name replaces it
  /// (tests exploit this to inject fakes).
  void add(const std::string& name, Entry entry) {
    for (auto& [k, e] : entries_) {
      if (k == name) {
        e = std::move(entry);
        return;
      }
    }
    entries_.emplace_back(name, std::move(entry));
  }

  [[nodiscard]] bool contains(const std::string& name) const {
    for (const auto& [k, e] : entries_) {
      if (k == name) return true;
    }
    return false;
  }

  /// Throws std::invalid_argument on unknown names, naming the registry,
  /// the closest known name, and the full known set.
  [[nodiscard]] const Entry& at(const std::string& name) const {
    for (const auto& [k, e] : entries_) {
      if (k == name) return e;
    }
    std::string msg = "api: unknown " + kind_ + " \"" + name + "\"";
    const std::string hint = util::did_you_mean(name, names());
    if (!hint.empty()) msg += " (did you mean \"" + hint + "\"?)";
    msg += "; known:";
    for (const auto& [k, e] : entries_) msg += " " + k;
    throw std::invalid_argument(msg);
  }

  [[nodiscard]] std::vector<std::string> names() const {
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& [k, e] : entries_) out.push_back(k);
    return out;
  }

 private:
  std::string kind_;
  std::vector<std::pair<std::string, Entry>> entries_;
};

/// A block-orthogonalization scheme (or a standard-GMRES ortho).  One
/// of the two configure hooks is set, matching `sstep`.
struct OrthoEntry {
  std::string description;
  bool sstep = true;
  /// Applies the scheme to a lowered s-step config (sets `scheme` for
  /// built-ins, or `manager_factory` for registered extensions).
  std::function<void(const SolverOptions&, krylov::SStepGmresConfig&)>
      configure_sstep;
  /// Applies the scheme to a lowered standard-GMRES config.
  std::function<void(const SolverOptions&, krylov::GmresConfig&)>
      configure_gmres;
};

/// Preconditioner factory: builds the rank-local preconditioner for one
/// rank's matrix block.  May return nullptr ("none").
struct PrecondEntry {
  std::string description;
  std::function<std::unique_ptr<precond::Preconditioner>(
      const SolverOptions&, const sparse::DistCsr&)>
      make;
};

/// Matrix source: builds the (replicated) system matrix from the
/// options' geometry/size keys.
struct MatrixEntry {
  std::string description;
  std::function<sparse::CsrMatrix(const SolverOptions&)> make;
};

Registry<OrthoEntry>& ortho_registry();
Registry<PrecondEntry>& precond_registry();
Registry<MatrixEntry>& matrix_registry();

}  // namespace tsbo::api
