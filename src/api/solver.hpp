#pragma once
// The tsbo::api::Solver facade: one configuration-driven entry point
// for the end-to-end experiment flow the paper runs — pick a matrix,
// a preconditioner, an ortho scheme and (m, s, bs); run under the SPMD
// runtime; get back a SolveReport with phase timers, sync counts, and
// residual history.  ("Pipeline" here would collide with the pipelined
// s-step runtime — that lives in krylov/sstep_gmres.hpp under
// pipeline_depth.)
//
//   auto opts = api::SolverOptions::parse(
//       "solver=sstep ortho=two_stage matrix=laplace2d_9pt nx=256 ranks=4");
//   api::Solver solver(opts);
//   api::SolveReport report = solver.solve();
//   report.save_json("run.json");
//
// The facade owns the boilerplate the bench binaries used to repeat:
// matrix construction through matrix_registry() (plus optional paper
// max-scaling), the all-ones-solution RHS, row partitioning, per-rank
// preconditioner construction through precond_registry(), critical-path
// timer merging, and gathering the distributed solution.

#include "api/options.hpp"
#include "api/registry.hpp"
#include "api/report.hpp"
#include "sparse/csr.hpp"
#include "sparse/dist_csr.hpp"
#include "util/aligned.hpp"

#include <functional>
#include <string>
#include <vector>

namespace tsbo::api {

/// RHS such that the solution is the all-ones vector (paper Section
/// VIII): b = A * ones.
std::vector<double> ones_rhs(const sparse::CsrMatrix& a);

/// k-column batch RHS (length rows * k, column t at offset t * rows).
/// Column 0 is exactly ones_rhs (so rhs=1 batches match single-RHS
/// runs); columns t > 0 solve deterministic per-column perturbations
/// of the ones vector, keeping the RHS block full-rank — a
/// rank-deficient block would make the block solver's seed CholQR
/// singular.
std::vector<double> batch_rhs(const sparse::CsrMatrix& a, int k);

/// Builds the matrix the options name via matrix_registry(), applying
/// the paper's column-then-row max-scaling when opts.equilibrate is
/// set.  `label` (optional) receives the provenance name.
sparse::CsrMatrix make_matrix(const SolverOptions& opts,
                              std::string* label = nullptr);

class Solver {
 public:
  explicit Solver(SolverOptions opts) : opts_(std::move(opts)) {}

  // Non-copyable/movable: matrix_ may point into owned_matrix_ (or at a
  // caller-borrowed matrix), so a byte-wise copy/move would dangle.
  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  [[nodiscard]] SolverOptions& options() { return opts_; }
  [[nodiscard]] const SolverOptions& options() const { return opts_; }

  /// Injects the system matrix instead of building it from the matrix
  /// keys.  The owning overload copies/moves; set_matrix_ref() borrows
  /// (the caller keeps `a` alive across solve() — the bench sweeps use
  /// this to share one matrix over many runs).
  Solver& set_matrix(sparse::CsrMatrix a, std::string label = "injected");
  Solver& set_matrix_ref(const sparse::CsrMatrix& a,
                         std::string label = "injected");

  /// Overrides the RHS (default: ones_rhs of the matrix; batch_rhs
  /// when opts.rhs > 1).  Batched solves expect length rows * rhs,
  /// column t at offset t * rows.
  Solver& set_rhs(std::vector<double> b);

  /// Borrowing variant of set_rhs (the caller keeps `b` alive across
  /// solve(); the solver service shares one cached RHS over many jobs).
  Solver& set_rhs_ref(const std::vector<double>& b);

  /// Injects prebuilt per-rank operator pieces (element r is rank r's
  /// DistCsr; size must equal opts.ranks) so solve() skips row
  /// partitioning and DistCsr construction — the expensive comm-plan /
  /// interior-boundary-split setup the operator cache amortizes.  The
  /// pieces must describe the same matrix passed to set_matrix_ref().
  /// Borrowed, like set_matrix_ref.  NOTE: DistCsr's halo buffer makes
  /// spmv non-reentrant per piece, so two solve() calls sharing one
  /// vector must not run concurrently (the service serializes per cache
  /// entry).
  Solver& set_partitioned_operator(const std::vector<sparse::DistCsr>* pieces);

  /// Per-rank preconditioner factory override: when set, solve() calls
  /// this instead of precond_registry().at(opts.precond).make(), letting
  /// a caller reuse precomputed precond::*Setup state (coloring,
  /// eigenvalue estimates) across solves.  May return nullptr ("none").
  using PrecondFactory = std::function<std::unique_ptr<precond::Preconditioner>(
      const SolverOptions&, const sparse::DistCsr&, int rank)>;
  Solver& set_precond_factory(PrecondFactory factory);

  /// Borrows per-rank aligned scratch (element r backs rank r's local
  /// solution vector; resized as needed, fully overwritten each solve,
  /// so reuse never changes bits).  The operator cache hands one
  /// workspace per cached operator so repeat solves skip the per-rank
  /// allocations.  Size must equal opts.ranks.
  Solver& set_local_workspace(std::vector<util::aligned_vector<double>>* ws);

  /// Initial guess (default: zero).  Global length (rows * rhs for
  /// batched solves, column-major like the RHS).  When set,
  /// convergence (and the reported relres) is measured against the
  /// fixed norm ||b|| instead of the initial-residual norm, so a good
  /// guess genuinely cuts iterations (the service's warm-start path).
  Solver& set_initial_guess(std::vector<double> x0);

  /// Per-restart observer, invoked on rank 0 inside the solve (see
  /// krylov::ProgressEvent).  The facade always records the restart
  /// history into the report; this hook adds live reporting on top.
  Solver& on_restart(krylov::ProgressCallback cb);

  /// Borrows a job-scoped fault injector (util/fault.hpp): solve()
  /// installs it on every rank's communicator, so the comm / spmv /
  /// gram sites fire from its plan and the report carries its trail.
  /// When unset and opts.faults is non-empty, solve() builds a fresh
  /// injector per call instead.  The service passes one injector
  /// across a job's retry attempts (fired faults stay fired).
  Solver& set_fault_injector(par::FaultInjector* injector);

  /// Borrows a cancellation token polled at restart boundaries (see
  /// krylov::*Config::cancel).  When unset and opts.deadline_ms > 0,
  /// solve() arms a fresh per-call deadline token.  The service shares
  /// one token per job so cancel(id) reaches a running solve.
  Solver& set_cancel_token(const par::CancelToken* token);

  /// The system matrix (building it from the options if not injected).
  const sparse::CsrMatrix& matrix();

  /// The RHS (building ones_rhs if not set).
  const std::vector<double>& rhs();

  /// Runs the configured solver under the SPMD runtime and returns the
  /// report.  Throws std::invalid_argument on bad options and
  /// propagates solver exceptions (e.g. ortho::CholeskyBreakdown under
  /// breakdown=throw).  Repeatable: each call is a fresh run.
  SolveReport solve();

  /// Gathered global solution of the last solve() (rows * rhs doubles
  /// for batched solves, column t at offset t * rows).
  [[nodiscard]] const std::vector<double>& solution() const { return x_; }

 private:
  SolverOptions opts_;
  sparse::CsrMatrix owned_matrix_;
  const sparse::CsrMatrix* matrix_ = nullptr;  // points at owned_ or borrowed
  std::string matrix_label_;
  std::vector<double> b_;
  const std::vector<double>* b_ref_ = nullptr;  // borrowed RHS, wins over b_
  std::vector<double> x0_;
  std::vector<double> x_;
  const std::vector<sparse::DistCsr>* partitioned_ = nullptr;  // borrowed
  PrecondFactory precond_factory_;
  std::vector<util::aligned_vector<double>>* workspace_ = nullptr;  // borrowed
  krylov::ProgressCallback user_callback_;
  par::FaultInjector* fault_injector_ = nullptr;      // borrowed
  const par::CancelToken* cancel_token_ = nullptr;    // borrowed
};

}  // namespace tsbo::api
