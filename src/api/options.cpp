#include "api/options.hpp"

#include "api/registry.hpp"
#include "util/cli.hpp"
#include "util/fault.hpp"
#include "util/json.hpp"

#include <cmath>
#include <functional>
#include <stdexcept>

namespace tsbo::api {

namespace {

[[noreturn]] void bad_value(const std::string& key, const std::string& value,
                            const char* wanted) {
  throw std::invalid_argument("SolverOptions: invalid value \"" + value +
                              "\" for key " + key + " (expected " + wanted +
                              ")");
}

int parse_int(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const int v = std::stoi(value, &used);
    if (used != value.size()) bad_value(key, value, "integer");
    return v;
  } catch (const std::invalid_argument&) {
    bad_value(key, value, "integer");
  } catch (const std::out_of_range&) {
    bad_value(key, value, "integer");
  }
}

long parse_long(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const long v = std::stol(value, &used);
    if (used != value.size()) bad_value(key, value, "integer");
    return v;
  } catch (const std::invalid_argument&) {
    bad_value(key, value, "integer");
  } catch (const std::out_of_range&) {
    bad_value(key, value, "integer");
  }
}

double parse_double(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const double v = std::stod(value, &used);
    if (used != value.size()) bad_value(key, value, "number");
    return v;
  } catch (const std::invalid_argument&) {
    bad_value(key, value, "number");
  } catch (const std::out_of_range&) {
    bad_value(key, value, "number");
  }
}

bool parse_bool(const std::string& key, const std::string& value) {
  if (value == "1" || value == "true" || value == "yes" || value == "on" ||
      value.empty()) {
    return true;  // empty: bare "--flag" style
  }
  if (value == "0" || value == "false" || value == "no" || value == "off") {
    return false;
  }
  bad_value(key, value, "boolean (0/1/true/false)");
}

/// One string-keyed field: how to read and write it on a SolverOptions.
struct FieldDef {
  const char* key;
  std::function<std::string(const SolverOptions&)> get;
  std::function<void(SolverOptions&, const std::string&)> set;
};

FieldDef str_field(const char* key, std::string SolverOptions::* member) {
  return {key, [member](const SolverOptions& o) { return o.*member; },
          [member](SolverOptions& o, const std::string& v) { o.*member = v; }};
}

FieldDef int_field(const char* key, int SolverOptions::* member) {
  return {key,
          [member](const SolverOptions& o) { return std::to_string(o.*member); },
          [key, member](SolverOptions& o, const std::string& v) {
            o.*member = parse_int(key, v);
          }};
}

FieldDef long_field(const char* key, long SolverOptions::* member) {
  return {key,
          [member](const SolverOptions& o) { return std::to_string(o.*member); },
          [key, member](SolverOptions& o, const std::string& v) {
            o.*member = parse_long(key, v);
          }};
}

FieldDef double_field(const char* key, double SolverOptions::* member) {
  return {key,
          [member](const SolverOptions& o) {
            // Shortest round-tripping decimal (parse(to_kv()) identity).
            return util::json_number(o.*member);
          },
          [key, member](SolverOptions& o, const std::string& v) {
            o.*member = parse_double(key, v);
          }};
}

FieldDef bool_field(const char* key, bool SolverOptions::* member) {
  return {key,
          [member](const SolverOptions& o) {
            return std::string(o.*member ? "1" : "0");
          },
          [key, member](SolverOptions& o, const std::string& v) {
            o.*member = parse_bool(key, v);
          }};
}

const std::vector<FieldDef>& fields() {
  static const std::vector<FieldDef> defs = {
      str_field("solver", &SolverOptions::solver),
      str_field("ortho", &SolverOptions::ortho),
      str_field("basis", &SolverOptions::basis),
      str_field("precond", &SolverOptions::precond),
      int_field("m", &SolverOptions::m),
      int_field("s", &SolverOptions::s),
      int_field("bs", &SolverOptions::bs),
      double_field("rtol", &SolverOptions::rtol),
      long_field("max_iters", &SolverOptions::max_iters),
      int_field("max_restarts", &SolverOptions::max_restarts),
      double_field("lambda_min", &SolverOptions::lambda_min),
      double_field("lambda_max", &SolverOptions::lambda_max),
      bool_field("mixed_precision_gram", &SolverOptions::mixed_precision_gram),
      str_field("breakdown", &SolverOptions::breakdown),
      int_field("pipeline_depth", &SolverOptions::pipeline_depth),
      bool_field("autopilot", &SolverOptions::autopilot),
      double_field("ap_kappa_high", &SolverOptions::ap_kappa_high),
      double_field("ap_kappa_low", &SolverOptions::ap_kappa_low),
      int_field("ap_s_min", &SolverOptions::ap_s_min),
      int_field("ap_patience", &SolverOptions::ap_patience),
      int_field("precond_sweeps", &SolverOptions::precond_sweeps),
      int_field("precond_degree", &SolverOptions::precond_degree),
      double_field("precond_lambda_min", &SolverOptions::precond_lambda_min),
      double_field("precond_lambda_max", &SolverOptions::precond_lambda_max),
      int_field("ranks", &SolverOptions::ranks),
      str_field("net", &SolverOptions::net),
      int_field("rhs", &SolverOptions::rhs),
      int_field("warm_start", &SolverOptions::warm_start),
      long_field("deadline_ms", &SolverOptions::deadline_ms),
      int_field("retries", &SolverOptions::retries),
      int_field("quarantine_after", &SolverOptions::quarantine_after),
      int_field("verify_residual", &SolverOptions::verify_residual),
      str_field("faults", &SolverOptions::faults),
      str_field("matrix", &SolverOptions::matrix),
      str_field("matrix_file", &SolverOptions::matrix_file),
      int_field("nx", &SolverOptions::nx),
      int_field("ny", &SolverOptions::ny),
      int_field("nz", &SolverOptions::nz),
      int_field("n", &SolverOptions::n),
      bool_field("equilibrate", &SolverOptions::equilibrate),
  };
  return defs;
}

const FieldDef* find_field(const std::string& key) {
  for (const FieldDef& f : fields()) {
    if (key == f.key) return &f;
  }
  return nullptr;
}

}  // namespace

const std::vector<std::string>& SolverOptions::keys() {
  static const std::vector<std::string> ks = [] {
    std::vector<std::string> out;
    for (const FieldDef& f : fields()) out.emplace_back(f.key);
    return out;
  }();
  return ks;
}

void SolverOptions::set(const std::string& key, const std::string& value) {
  const FieldDef* f = find_field(key);
  if (f == nullptr) {
    std::string msg = "SolverOptions: unknown key \"" + key + "\"";
    const std::string hint = util::did_you_mean(key, keys());
    if (!hint.empty()) msg += " (did you mean \"" + hint + "\"?)";
    throw std::invalid_argument(msg);
  }
  f->set(*this, value);
}

std::string SolverOptions::get(const std::string& key) const {
  const FieldDef* f = find_field(key);
  if (f == nullptr) {
    throw std::invalid_argument("SolverOptions: unknown key \"" + key + "\"");
  }
  return f->get(*this);
}

SolverOptions SolverOptions::parse(
    const std::vector<std::pair<std::string, std::string>>& kv,
    SolverOptions base) {
  bool solver_set = false, ortho_set = false;
  for (const auto& [k, v] : kv) {
    base.set(k, v);
    solver_set = solver_set || k == "solver";
    ortho_set = ortho_set || k == "ortho";
  }
  // Resolve the ortho default so parse(to_kv()) round-trips; likewise
  // when an overlay switches the solver kind without naming a scheme
  // ("solver=gmres" on an s-step base), an inherited scheme of the
  // wrong kind resets to the new solver's default.
  const bool incompatible_inherit =
      solver_set && !ortho_set && ortho_registry().contains(base.ortho) &&
      ortho_registry().at(base.ortho).sstep != base.is_sstep();
  if (incompatible_inherit) base.ortho.clear();
  base.ortho = base.resolved_ortho();
  return base;
}

SolverOptions SolverOptions::parse(
    const std::vector<std::pair<std::string, std::string>>& kv) {
  return parse(kv, SolverOptions{});
}

SolverOptions SolverOptions::parse(const std::string& spec) {
  return parse(spec, SolverOptions{});
}

SolverOptions SolverOptions::from_cli(const util::Cli& cli) {
  return from_cli(cli, SolverOptions{});
}

SolverOptions SolverOptions::parse(const std::string& spec,
                                   SolverOptions base) {
  // Whitespace-separated key=value tokens; values may be double-quoted
  // to carry spaces (to_string() quotes such values, keeping the
  // parse(to_string()) identity for e.g. paths with spaces).
  std::vector<std::pair<std::string, std::string>> kv;
  std::size_t i = 0;
  const auto is_ws = [](char c) { return c == ' ' || c == '\t' || c == '\n'; };
  while (i < spec.size()) {
    while (i < spec.size() && is_ws(spec[i])) ++i;
    if (i >= spec.size()) break;
    const std::size_t start = i;
    while (i < spec.size() && !is_ws(spec[i]) && spec[i] != '=') ++i;
    if (i >= spec.size() || spec[i] != '=' || i == start) {
      throw std::invalid_argument("SolverOptions: expected key=value, got \"" +
                                  spec.substr(start, i - start) + "\"");
    }
    const std::string key = spec.substr(start, i - start);
    ++i;  // '='
    std::string value;
    if (i < spec.size() && spec[i] == '"') {
      const std::size_t close = spec.find('"', ++i);
      if (close == std::string::npos) {
        throw std::invalid_argument(
            "SolverOptions: unterminated quoted value for key " + key);
      }
      value = spec.substr(i, close - i);
      i = close + 1;
    } else {
      const std::size_t vstart = i;
      while (i < spec.size() && !is_ws(spec[i])) ++i;
      value = spec.substr(vstart, i - vstart);
    }
    kv.emplace_back(key, value);
  }
  return parse(kv, std::move(base));
}

SolverOptions SolverOptions::from_cli(const util::Cli& cli,
                                      SolverOptions base) {
  std::vector<std::pair<std::string, std::string>> kv;
  for (const std::string& key : keys()) {
    if (cli.has(key)) kv.emplace_back(key, cli.get(key, ""));
  }
  return parse(kv, std::move(base));
}

std::vector<std::pair<std::string, std::string>> SolverOptions::to_kv() const {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(fields().size());
  for (const FieldDef& f : fields()) out.emplace_back(f.key, f.get(*this));
  return out;
}

std::string SolverOptions::to_string() const {
  std::string out;
  for (const auto& [k, v] : to_kv()) {
    if (!out.empty()) out.push_back(' ');
    const bool needs_quotes =
        v.find_first_of(" \t\n") != std::string::npos;
    out += k + "=" + (needs_quotes ? "\"" + v + "\"" : v);
  }
  return out;
}

void SolverOptions::validate() const {
  if (solver != "gmres" && solver != "sstep") {
    throw std::invalid_argument(
        "SolverOptions: solver must be \"gmres\" or \"sstep\", got \"" +
        solver + "\"");
  }
  const OrthoEntry& ortho_entry = ortho_registry().at(resolved_ortho());
  if (ortho_entry.sstep != is_sstep()) {
    throw std::invalid_argument("SolverOptions: ortho \"" + resolved_ortho() +
                                "\" is not available for solver \"" + solver +
                                "\"");
  }
  if (basis != "monomial" && basis != "newton" && basis != "chebyshev") {
    throw std::invalid_argument(
        "SolverOptions: basis must be monomial|newton|chebyshev, got \"" +
        basis + "\"");
  }
  if (breakdown != "shift" && breakdown != "throw") {
    throw std::invalid_argument(
        "SolverOptions: breakdown must be shift|throw, got \"" + breakdown +
        "\"");
  }
  (void)precond_registry().at(precond);  // throws on unknown names
  (void)matrix_registry().at(matrix);    // throws on unknown names
  (void)network_model();                 // throws on unknown names

  // Numeric range validation: every violation names the key, echoes
  // the offending value, and states the accepted range — the same
  // spirit as the unknown-key did-you-mean hint, so a typo'd
  // "--pipeline_depth=-1" fails loudly instead of corrupting the run.
  const auto out_of_range = [](const char* key, const std::string& value,
                               const char* wanted) {
    throw std::invalid_argument(std::string("SolverOptions: ") + key + "=" +
                                value + " out of range (expected " + wanted +
                                ")");
  };
  const auto require_int = [&](const char* key, long v, long min,
                               const char* wanted) {
    if (v < min) out_of_range(key, std::to_string(v), wanted);
  };
  require_int("m", m, 1, ">= 1");
  require_int("s", s, 1, ">= 1");
  require_int("bs", bs, 1, ">= 1");
  require_int("max_iters", max_iters, 1, ">= 1");
  require_int("max_restarts", max_restarts, 1, ">= 1");
  require_int("pipeline_depth", pipeline_depth, 0, ">= 0");
  require_int("precond_sweeps", precond_sweeps, 1, ">= 1");
  require_int("precond_degree", precond_degree, 1, ">= 1");
  require_int("ranks", ranks, 1, ">= 1");
  require_int("rhs", rhs, 1, ">= 1");
  if (rhs > 1 && !is_sstep()) {
    throw std::invalid_argument(
        "SolverOptions: rhs=" + std::to_string(rhs) +
        " requires solver=sstep (batched multi-RHS solves run through "
        "block s-step GMRES)");
  }
  require_int("nx", nx, 1, ">= 1");
  require_int("ny", ny, 0, ">= 0 (0 inherits nx)");
  require_int("nz", nz, 0, ">= 0 (0 inherits nx)");
  require_int("n", n, 0, ">= 0 (0 = registry default)");
  if (warm_start < 0 || warm_start > 1) {
    out_of_range("warm_start", std::to_string(warm_start), "0 or 1");
  }
  require_int("deadline_ms", deadline_ms, 0, ">= 0 (0 = no deadline)");
  require_int("retries", retries, 0, ">= 0");
  require_int("quarantine_after", quarantine_after, 0,
              ">= 0 (0 = no quarantine)");
  if (verify_residual < 0 || verify_residual > 1) {
    out_of_range("verify_residual", std::to_string(verify_residual), "0 or 1");
  }
  (void)par::FaultPlan::parse(faults);  // throws its own syntax errors
  if (!(rtol > 0.0) || !std::isfinite(rtol)) {
    out_of_range("rtol", util::json_number(rtol), "a finite number > 0");
  }
  // Guard-vacuity cross-check: the corrupted verdict fires when the
  // true residual exceeds kResidualGuardFactor * max(relres, rtol), so
  // with rtol >= 1/kResidualGuardFactor even a completely wrong
  // solution (true relres ~ 1) passes — the guard could never fire.
  if (verify_residual == 1 && rtol * kResidualGuardFactor >= 1.0) {
    throw std::invalid_argument(
        "SolverOptions: verify_residual=1 with rtol=" +
        util::json_number(rtol) +
        " makes the residual guard vacuous (it only flags true relres > " +
        util::json_number(kResidualGuardFactor) +
        "*max(relres, rtol)); did you mean a converging tolerance like "
        "rtol=1e-6?");
  }
  // Spectral-interval keys: any finite value is meaningful (0/0 = "let
  // the solver estimate"), but NaN/inf would silently poison the basis
  // shifts or the Chebyshev recurrence coefficients.
  if (!std::isfinite(lambda_min)) {
    out_of_range("lambda_min", util::json_number(lambda_min),
                 "a finite number");
  }
  if (!std::isfinite(lambda_max)) {
    out_of_range("lambda_max", util::json_number(lambda_max),
                 "a finite number");
  }
  if (!std::isfinite(precond_lambda_min)) {
    out_of_range("precond_lambda_min", util::json_number(precond_lambda_min),
                 "a finite number");
  }
  if (!std::isfinite(precond_lambda_max)) {
    out_of_range("precond_lambda_max", util::json_number(precond_lambda_max),
                 "a finite number");
  }
  if (autopilot && !is_sstep()) {
    throw std::invalid_argument(
        "SolverOptions: autopilot=1 requires solver=sstep (the monitor "
        "lives in the s-step panel loop)");
  }
  require_int("ap_s_min", ap_s_min, 1, ">= 1");
  require_int("ap_patience", ap_patience, 1, ">= 1");
  if (!(ap_kappa_low > 0.0) || !std::isfinite(ap_kappa_low)) {
    out_of_range("ap_kappa_low", util::json_number(ap_kappa_low),
                 "a finite number > 0");
  }
  if (!(ap_kappa_high > ap_kappa_low) || !std::isfinite(ap_kappa_high)) {
    out_of_range("ap_kappa_high", util::json_number(ap_kappa_high),
                 "a finite number > ap_kappa_low");
  }
}

krylov::GmresConfig SolverOptions::gmres_config() const {
  validate();
  if (is_sstep()) {
    throw std::invalid_argument(
        "SolverOptions: gmres_config() requires solver=gmres");
  }
  krylov::GmresConfig cfg;
  cfg.m = m;
  cfg.rtol = rtol;
  cfg.max_iters = max_iters;
  cfg.max_restarts = max_restarts;
  ortho_registry().at(resolved_ortho()).configure_gmres(*this, cfg);
  return cfg;
}

krylov::SStepGmresConfig SolverOptions::sstep_config() const {
  validate();
  if (!is_sstep()) {
    throw std::invalid_argument(
        "SolverOptions: sstep_config() requires solver=sstep");
  }
  krylov::SStepGmresConfig cfg;
  cfg.m = m;
  cfg.s = s;
  cfg.bs = bs;
  cfg.rtol = rtol;
  cfg.max_iters = max_iters;
  cfg.max_restarts = max_restarts;
  cfg.lambda_min = lambda_min;
  cfg.lambda_max = lambda_max;
  cfg.mixed_precision_gram = mixed_precision_gram;
  cfg.pipeline_depth = pipeline_depth;
  cfg.autopilot.enabled = autopilot;
  cfg.autopilot.kappa_high = ap_kappa_high;
  cfg.autopilot.kappa_low = ap_kappa_low;
  cfg.autopilot.s_min = ap_s_min;
  cfg.autopilot.patience = ap_patience;
  cfg.policy = breakdown == "throw" ? ortho::BreakdownPolicy::kThrow
                                    : ortho::BreakdownPolicy::kShift;
  if (basis == "newton") {
    cfg.basis = krylov::BasisKind::kNewton;
  } else if (basis == "chebyshev") {
    cfg.basis = krylov::BasisKind::kChebyshev;
  } else {
    cfg.basis = krylov::BasisKind::kMonomial;
  }
  ortho_registry().at(resolved_ortho()).configure_sstep(*this, cfg);
  return cfg;
}

par::NetworkModel SolverOptions::network_model() const {
  if (net == "off") return par::NetworkModel::off();
  if (net == "calibrated") return par::NetworkModel::calibrated();
  if (net == "ethernet") return par::NetworkModel::ethernet();
  if (net == "hw" || net == "cluster") return par::NetworkModel::cluster();
  throw std::invalid_argument(
      "SolverOptions: net must be off|calibrated|ethernet|hw|cluster, got \"" +
      net + "\"");
}

}  // namespace tsbo::api
