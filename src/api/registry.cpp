#include "api/registry.hpp"

#include "api/options.hpp"
#include "precond/chebyshev.hpp"
#include "precond/gauss_seidel.hpp"
#include "precond/jacobi.hpp"
#include "sparse/generators.hpp"
#include "sparse/mm_io.hpp"
#include "sparse/suitesparse_like.hpp"

namespace tsbo::api {

namespace {

using sparse::ord;

Registry<OrthoEntry> make_ortho_registry() {
  Registry<OrthoEntry> reg("ortho scheme");

  // Standard-GMRES orthogonalizations.
  {
    OrthoEntry e;
    e.description = "classical Gram-Schmidt, twice (3 reduces/step)";
    e.sstep = false;
    e.configure_gmres = [](const SolverOptions&, krylov::GmresConfig& cfg) {
      cfg.ortho = krylov::GmresConfig::Ortho::kCgs2;
    };
    reg.add("cgs2", e);
  }
  {
    OrthoEntry e;
    e.description = "modified Gram-Schmidt (O(k) reduces/step)";
    e.sstep = false;
    e.configure_gmres = [](const SolverOptions&, krylov::GmresConfig& cfg) {
      cfg.ortho = krylov::GmresConfig::Ortho::kMgs;
    };
    reg.add("mgs", e);
  }

  // s-step block orthogonalizations (Table III columns + diagnostics).
  const auto scheme_entry = [&reg](const std::string& name,
                                   std::string description,
                                   krylov::OrthoScheme scheme) {
    OrthoEntry e;
    e.description = std::move(description);
    e.sstep = true;
    e.configure_sstep = [scheme](const SolverOptions&,
                                 krylov::SStepGmresConfig& cfg) {
      cfg.scheme = scheme;
    };
    reg.add(name, e);
  };
  scheme_entry("bcgs2", "BCGS2 + CholQR2, the original s-step (5 reduces/panel)",
               krylov::OrthoScheme::kBcgs2CholQr2);
  scheme_entry("bcgs2_hhqr", "BCGS2 + Householder QR, stability reference",
               krylov::OrthoScheme::kBcgs2Hhqr);
  scheme_entry("bcgs_pip", "single-pass BCGS-PIP (1 reduce, no re-ortho)",
               krylov::OrthoScheme::kBcgsPip);
  scheme_entry("bcgs_pip2", "BCGS-PIP2, the paper's one-stage (2 reduces)",
               krylov::OrthoScheme::kBcgsPip2);
  scheme_entry("two_stage",
               "the paper's two-stage scheme (1 + s/bs reduces/panel)",
               krylov::OrthoScheme::kTwoStage);
  return reg;
}

Registry<PrecondEntry> make_precond_registry() {
  Registry<PrecondEntry> reg("preconditioner");
  {
    PrecondEntry e;
    e.description = "unpreconditioned";
    e.make = [](const SolverOptions&, const sparse::DistCsr&) {
      return std::unique_ptr<precond::Preconditioner>();
    };
    reg.add("none", e);
  }
  {
    PrecondEntry e;
    e.description = "point Jacobi (diagonal scaling)";
    e.make = [](const SolverOptions&, const sparse::DistCsr& a) {
      return std::unique_ptr<precond::Preconditioner>(
          std::make_unique<precond::Jacobi>(a));
    };
    reg.add("jacobi", e);
  }
  {
    PrecondEntry e;
    e.description = "local multicolor Gauss-Seidel (paper Fig. 13)";
    e.make = [](const SolverOptions& opts, const sparse::DistCsr& a) {
      return std::unique_ptr<precond::Preconditioner>(
          std::make_unique<precond::MulticolorGaussSeidel>(
              a, opts.precond_sweeps, /*symmetric=*/false));
    };
    reg.add("mc-gs", e);
  }
  {
    PrecondEntry e;
    e.description = "local symmetric multicolor Gauss-Seidel";
    e.make = [](const SolverOptions& opts, const sparse::DistCsr& a) {
      return std::unique_ptr<precond::Preconditioner>(
          std::make_unique<precond::MulticolorGaussSeidel>(
              a, opts.precond_sweeps, /*symmetric=*/true));
    };
    reg.add("mc-sgs", e);
  }
  {
    PrecondEntry e;
    e.description =
        "local Chebyshev polynomial (precond_degree; explicit interval via "
        "precond_lambda_min/max, else power-method estimate)";
    e.make = [](const SolverOptions& opts, const sparse::DistCsr& a) {
      if (opts.precond_lambda_max > opts.precond_lambda_min &&
          opts.precond_lambda_max > 0.0) {
        return std::unique_ptr<precond::Preconditioner>(
            std::make_unique<precond::ChebyshevPolynomial>(
                a, opts.precond_degree, opts.precond_lambda_min,
                opts.precond_lambda_max));
      }
      return std::unique_ptr<precond::Preconditioner>(
          std::make_unique<precond::ChebyshevPolynomial>(
              a, opts.precond_degree));
    };
    reg.add("chebyshev", e);
  }
  return reg;
}

Registry<MatrixEntry> make_matrix_registry() {
  Registry<MatrixEntry> reg("matrix source");
  const auto grid2d = [&reg](const std::string& name, std::string description,
                             sparse::CsrMatrix (*gen)(ord, ord)) {
    MatrixEntry e;
    e.description = std::move(description);
    e.make = [gen](const SolverOptions& o) {
      return gen(static_cast<ord>(o.nx), static_cast<ord>(o.ny_or_nx()));
    };
    reg.add(name, e);
  };
  const auto grid3d = [&reg](const std::string& name, std::string description,
                             sparse::CsrMatrix (*gen)(ord, ord, ord)) {
    MatrixEntry e;
    e.description = std::move(description);
    e.make = [gen](const SolverOptions& o) {
      return gen(static_cast<ord>(o.nx), static_cast<ord>(o.ny_or_nx()),
                 static_cast<ord>(o.nz_or_nx()));
    };
    reg.add(name, e);
  };

  grid2d("laplace2d_5pt", "2-D Laplace, 5-pt stencil (paper Table II)",
         sparse::laplace2d_5pt);
  grid2d("laplace2d_9pt", "2-D Laplace, 9-pt stencil (paper Table III)",
         sparse::laplace2d_9pt);
  grid3d("laplace3d_7pt", "3-D Laplace, 7-pt stencil (paper Table IV)",
         sparse::laplace3d_7pt);
  grid3d("laplace3d_27pt", "3-D Laplace, 27-pt stencil",
         sparse::laplace3d_27pt);
  {
    MatrixEntry e;
    e.description =
        "3-D convection-diffusion, upwinded wind (1, 0.5, 0.25); "
        "nonsymmetric";
    e.make = [](const SolverOptions& o) {
      return sparse::convection_diffusion3d(
          static_cast<ord>(o.nx), static_cast<ord>(o.ny_or_nx()),
          static_cast<ord>(o.nz_or_nx()), 1.0, 0.5, 0.25);
    };
    reg.add("convection_diffusion3d", e);
  }
  {
    MatrixEntry e;
    e.description = "3-D elasticity-like, 3 dofs/node, 7-pt per component";
    e.make = [](const SolverOptions& o) {
      return sparse::elasticity3d(static_cast<ord>(o.nx),
                                  static_cast<ord>(o.ny_or_nx()),
                                  static_cast<ord>(o.nz_or_nx()));
    };
    reg.add("elasticity3d", e);
  }
  {
    MatrixEntry e;
    e.description = "3-D elasticity-like, 27-pt per component (ML_Geer-ish)";
    e.make = [](const SolverOptions& o) {
      return sparse::elasticity3d(static_cast<ord>(o.nx),
                                  static_cast<ord>(o.ny_or_nx()),
                                  static_cast<ord>(o.nz_or_nx()),
                                  /*wide=*/true);
    };
    reg.add("elasticity3d_wide", e);
  }
  {
    MatrixEntry e;
    e.description =
        "2-D heterogeneous diffusion, 9-pt, lognormal conductivities over "
        "2.5 decades";
    e.make = [](const SolverOptions& o) {
      return sparse::heterogeneous2d(static_cast<ord>(o.nx),
                                     static_cast<ord>(o.ny_or_nx()),
                                     /*nine_point=*/true, 2.5, /*seed=*/7);
    };
    reg.add("heterogeneous2d", e);
  }
  {
    MatrixEntry e;
    e.description = "3-D anisotropic diffusion (1, 1e-2, 1e-2)";
    e.make = [](const SolverOptions& o) {
      return sparse::anisotropic3d(static_cast<ord>(o.nx),
                                   static_cast<ord>(o.ny_or_nx()),
                                   static_cast<ord>(o.nz_or_nx()), 1e-2, 1e-2);
    };
    reg.add("anisotropic3d", e);
  }
  // The paper's SuiteSparse surrogates, sized by the `n` key.
  for (const std::string& name : sparse::surrogate_names()) {
    MatrixEntry e;
    e.description = "SuiteSparse surrogate (paper Table IV / Fig. 9)";
    e.make = [name](const SolverOptions& o) {
      return sparse::make_surrogate(name, o.n > 0 ? static_cast<ord>(o.n)
                                                  : static_cast<ord>(40000))
          .matrix;
    };
    reg.add(name, e);
  }
  {
    MatrixEntry e;
    e.description = "MatrixMarket file named by matrix_file";
    e.make = [](const SolverOptions& o) {
      if (o.matrix_file.empty()) {
        throw std::invalid_argument(
            "api: matrix=file requires matrix_file=<path>");
      }
      return sparse::read_matrix_market_file(o.matrix_file);
    };
    reg.add("file", e);
  }
  return reg;
}

}  // namespace

Registry<OrthoEntry>& ortho_registry() {
  static Registry<OrthoEntry> reg = make_ortho_registry();
  return reg;
}

Registry<PrecondEntry>& precond_registry() {
  static Registry<PrecondEntry> reg = make_precond_registry();
  return reg;
}

Registry<MatrixEntry>& matrix_registry() {
  static Registry<MatrixEntry> reg = make_matrix_registry();
  return reg;
}

}  // namespace tsbo::api
