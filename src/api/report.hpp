#pragma once
// Machine-readable solve reports.
//
// A SolveReport wraps the krylov::SolveResult of one run with its full
// provenance — the options echo, matrix statistics, rank/thread counts,
// per-phase timers, communication counters, and the per-restart
// residual history captured by the facade's observer — and serializes
// to JSON (schema "tsbo.solve_report/7", golden-checked by
// tests/test_api.cpp).  ReportLog accumulates reports so every bench
// binary can emit a uniform --json=<path> artifact.

#include "api/options.hpp"
#include "krylov/solver.hpp"
#include "util/fault.hpp"
#include "util/json.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace tsbo::api {

/// Schema tags embedded in the JSON artifacts; bump on breaking layout
/// changes.  /2: the comm section grew bytes_exchanged plus the
/// split-phase overlap accounting (exposed_seconds == the modeled
/// fabric time actually spun, overlapped_seconds == the share hidden
/// behind compute between a begin and its wait; their sum is the total
/// modeled cost).  injected_seconds is kept as an alias of
/// exposed_seconds for older tooling.  /3: the result section grew the
/// pipelined-runtime lookahead counters (lookahead_hits /
/// lookahead_misses — speculative next-panel MPK sweeps consumed vs
/// discarded; zero for schemes without a split stage-1 path).  /4: the
/// result section grew the stability-autopilot object (enabled,
/// max_kappa_estimate — the conditioning monitor's peak basis-kappa,
/// maintained even with the autopilot off — rebase_recoveries, final_s,
/// final_gram, and the per-decision events array: restart / kind /
/// kappa / s_before / s_after / gram_before / gram_after).  /5: a
/// top-level service object describing how the persistent solver
/// service (src/service/) executed the run — enabled, cache_hit,
/// warm_started, queue_seconds (submit -> dispatch wait),
/// setup_seconds (operator build time paid by this job; 0 on a hit),
/// the reused-setup breakdown (matrix / partition / precond_setup /
/// rhs), and the cache_key echo.  Standalone solves emit the same
/// object with enabled=false and all counters zero, so consumers can
/// key off one shape.  /6: the result section grew cancelled /
/// deadline_expired (cooperative-cancellation exits), and a top-level
/// resilience object — outcome (ok | failed | timed_out | cancelled |
/// quarantined | corrupted), attempts, the residual-guard verdict
/// (guard: enabled / verdict off|ok|skipped|corrupted / true_relres /
/// tolerance), and the injected-fault trail (fault_trail: site /
/// ordinal / action / delay_ms / attempt per fired fault, rank 0's
/// deterministic record).  Standalone solves emit outcome "ok" with
/// attempts=1 unless their own guard or cancellation says otherwise.
/// /7: batched multi-RHS (rhs=k) solves — the result section grew a
/// per-RHS results[] array (index / converged / iters / relres /
/// true_relres / deflated_at_restart, empty for single-RHS solves;
/// the scalar result fields then aggregate: converged = all columns,
/// relres/true_relres = worst column), and the resilience guard grew a
/// matching per-column columns[] array (verdict + true_relres per RHS)
/// so one corrupted column is attributable.
inline constexpr const char* kSolveReportSchema = "tsbo.solve_report/7";
inline constexpr const char* kReportLogSchema = "tsbo.report_log/1";

struct MatrixStats {
  std::string name;  ///< registry key, file path, or caller label
  long rows = 0;
  long long nnz = 0;
  double nnz_per_row = 0.0;
};

/// One observer sample: state at a completed restart cycle.
struct RestartRecord {
  int restart = 0;
  long iters = 0;
  double relres = 0.0;           ///< recurrence estimate
  double explicit_relres = 0.0;  ///< recomputed ||b - A x|| / ||b||
  double seconds_spmv = 0.0;     ///< cumulative phase seconds so far
  double seconds_precond = 0.0;
  double seconds_ortho = 0.0;
};

/// The ortho-phase buckets the paper's breakdown figures plot
/// (Figs. 10-12).
struct OrthoBreakdown {
  double dot = 0.0;     ///< local block dot products
  double reduce = 0.0;  ///< global all-reduces (incl. modeled latency)
  double update = 0.0;  ///< vector updates (GEMM)
  double factor = 0.0;  ///< Cholesky + TRSM (+ HHQR)
  double small = 0.0;   ///< Hessenberg/Givens bookkeeping
  [[nodiscard]] double total() const {
    return dot + reduce + update + factor + small;
  }
};

OrthoBreakdown breakdown_of(const krylov::SolveResult& r);

/// How the persistent solver service executed a job (all-zero /
/// enabled=false for standalone solves).  Filled by
/// service::SolverService; the facade itself never sets it.
struct ServiceStats {
  bool enabled = false;      ///< ran through a SolverService
  bool cache_hit = false;    ///< operator came from the keyed cache
  bool warm_started = false; ///< x0 seeded from a previous solution
  double queue_seconds = 0.0;  ///< submit -> dispatch wait
  double setup_seconds = 0.0;  ///< operator build paid by this job
  bool reused_matrix = false;         ///< assembled CSR reused
  bool reused_partition = false;      ///< DistCsr + comm plan reused
  bool reused_precond_setup = false;  ///< coloring / eigen estimate reused
  bool reused_rhs = false;            ///< cached ones-RHS reused
  std::string cache_key;  ///< operator-cache key echo ("" off-service)
};

/// Resilience record of one job: terminal outcome, attempt count, the
/// residual-guard verdict, and the injected-fault trail.  Standalone
/// solves fill the guard + trail; the service overwrites outcome /
/// attempts with the job-level view (retries, quarantine).
struct ResilienceStats {
  /// ok | failed | timed_out | cancelled | quarantined | corrupted.
  std::string outcome = "ok";
  int attempts = 1;
  bool guard_enabled = false;     ///< verify_residual=1 was requested
  /// off (guard not requested) | ok | skipped (cancelled / timed-out
  /// exits are not judged) | corrupted.
  std::string guard_verdict = "off";
  double guard_true_relres = 0.0;  ///< serial ||b - A x|| / ||b||
  double guard_tolerance = 0.0;    ///< threshold the verdict compared against
  /// Per-RHS guard verdicts of a block (rhs=k) solve, column order;
  /// empty for single-RHS solves.  The scalar verdict above is then
  /// the worst column's (any corrupted column flags the whole job).
  std::vector<std::string> guard_rhs_verdicts;
  std::vector<double> guard_rhs_true_relres;  ///< per-column serial residuals
  std::vector<par::FaultRecord> fault_trail;  ///< fired faults (rank 0)
};

struct SolveReport {
  SolverOptions options;
  MatrixStats matrix;
  int ranks = 1;
  unsigned threads = 1;
  krylov::SolveResult result;
  ServiceStats service;
  ResilienceStats resilience;
  std::vector<RestartRecord> history;

  /// Emits this report as one JSON object into an open writer (used by
  /// ReportLog to nest reports in an array).
  void write_json(util::JsonWriter& w) const;

  /// The report as a standalone JSON document.
  [[nodiscard]] std::string json() const;

  /// Writes json() to `path`; throws std::runtime_error on I/O failure.
  void save_json(const std::string& path) const;
};

/// Accumulates the reports of one harness run and writes them as one
/// {"schema": "tsbo.report_log/1", "label": ..., "reports": [...]}
/// document.
class ReportLog {
 public:
  explicit ReportLog(std::string label) : label_(std::move(label)) {}

  void add(SolveReport report) { reports_.push_back(std::move(report)); }

  [[nodiscard]] std::size_t size() const { return reports_.size(); }
  [[nodiscard]] const std::vector<SolveReport>& reports() const {
    return reports_;
  }

  [[nodiscard]] std::string json() const;

  /// Writes json() to `path`; "" and "none" are no-ops (the benches'
  /// default).  Returns whether a file was written.
  bool save(const std::string& path) const;

 private:
  std::string label_;
  std::vector<SolveReport> reports_;
};

}  // namespace tsbo::api
