#include "api/report.hpp"

namespace tsbo::api {

OrthoBreakdown breakdown_of(const krylov::SolveResult& r) {
  OrthoBreakdown b;
  b.dot = r.timers.seconds("ortho/dot");
  b.reduce = r.timers.seconds("ortho/reduce");
  b.update = r.timers.seconds("ortho/update");
  b.factor = r.timers.seconds("ortho/chol") + r.timers.seconds("ortho/trsm") +
             r.timers.seconds("ortho/hhqr");
  b.small = r.timers.seconds("ortho/small");
  return b;
}

void SolveReport::write_json(util::JsonWriter& w) const {
  w.begin_object();
  w.kv("schema", kSolveReportSchema);

  w.key("options").begin_object();
  for (const auto& [k, v] : options.to_kv()) w.kv(k, v);
  w.end_object();

  w.key("matrix").begin_object();
  w.kv("name", matrix.name)
      .kv("rows", static_cast<std::int64_t>(matrix.rows))
      .kv("nnz", static_cast<std::int64_t>(matrix.nnz))
      .kv("nnz_per_row", matrix.nnz_per_row);
  w.end_object();

  w.key("environment").begin_object();
  w.kv("ranks", ranks).kv("threads", threads);
  w.end_object();

  w.key("result").begin_object();
  w.kv("converged", result.converged)
      .kv("iters", result.iters)
      .kv("restarts", result.restarts)
      .kv("relres", result.relres)
      .kv("true_relres", result.true_relres)
      .kv("cholesky_breakdowns", result.cholesky_breakdowns)
      .kv("shift_retries", result.shift_retries)
      .kv("lookahead_hits", result.lookahead_hits)
      .kv("lookahead_misses", result.lookahead_misses)
      .kv("cancelled", result.cancelled)
      .kv("deadline_expired", result.deadline_expired);

  // Per-RHS outcomes of a block (rhs=k) solve; empty for single-RHS.
  w.key("results").begin_array();
  for (std::size_t t = 0; t < result.rhs_results.size(); ++t) {
    const krylov::RhsResult& rr = result.rhs_results[t];
    w.begin_object();
    w.kv("index", static_cast<std::int64_t>(t))
        .kv("converged", rr.converged)
        .kv("iters", rr.iters)
        .kv("relres", rr.relres)
        .kv("true_relres", rr.true_relres)
        .kv("deflated_at_restart", rr.deflated_at_restart);
    w.end_object();
  }
  w.end_array();

  w.key("autopilot").begin_object();
  w.kv("enabled", options.autopilot)
      .kv("max_kappa_estimate", result.autopilot_max_kappa)
      .kv("rebase_recoveries", result.rebase_recoveries)
      .kv("final_s", static_cast<std::int64_t>(result.autopilot_final_s))
      .kv("final_gram", result.autopilot_final_dd ? "dd" : "double");
  w.key("events").begin_array();
  for (const krylov::AutopilotEvent& ev : result.autopilot_events) {
    w.begin_object();
    w.kv("restart", ev.restart)
        .kv("kind", ev.kind)
        .kv("kappa", ev.kappa)
        .kv("s_before", static_cast<std::int64_t>(ev.s_before))
        .kv("s_after", static_cast<std::int64_t>(ev.s_after))
        .kv("gram_before", ev.dd_before ? "dd" : "double")
        .kv("gram_after", ev.dd_after ? "dd" : "double");
    w.end_object();
  }
  w.end_array();
  w.end_object();  // autopilot

  w.key("time").begin_object();
  w.kv("spmv", result.time_spmv())
      .kv("precond", result.time_precond())
      .kv("ortho", result.time_ortho())
      .kv("total", result.time_total());
  const OrthoBreakdown bd = breakdown_of(result);
  w.key("ortho_breakdown").begin_object();
  w.kv("dot", bd.dot)
      .kv("reduce", bd.reduce)
      .kv("update", bd.update)
      .kv("factor", bd.factor)
      .kv("small", bd.small);
  w.end_object();
  w.end_object();  // time

  // Every raw phase bucket (critical-path max across ranks).
  w.key("phase_seconds").begin_object();
  for (const std::string& name : result.timers.names()) {
    w.kv(name, result.timers.seconds(name));
  }
  w.end_object();

  w.key("comm").begin_object();
  w.kv("allreduces", result.comm_stats.allreduces)
      .kv("broadcasts", result.comm_stats.broadcasts)
      .kv("p2p_rounds", result.comm_stats.p2p_rounds)
      .kv("barriers", result.comm_stats.barriers)
      .kv("bytes_allreduced", result.comm_stats.bytes_allreduced)
      .kv("bytes_exchanged", result.comm_stats.bytes_exchanged)
      .kv("injected_seconds", result.comm_stats.injected_seconds)
      .kv("exposed_seconds", result.comm_stats.injected_seconds)
      .kv("overlapped_seconds", result.comm_stats.overlapped_seconds);
  w.end_object();
  w.end_object();  // result

  w.key("service").begin_object();
  w.kv("enabled", service.enabled)
      .kv("cache_hit", service.cache_hit)
      .kv("warm_started", service.warm_started)
      .kv("queue_seconds", service.queue_seconds)
      .kv("setup_seconds", service.setup_seconds);
  w.key("reused").begin_object();
  w.kv("matrix", service.reused_matrix)
      .kv("partition", service.reused_partition)
      .kv("precond_setup", service.reused_precond_setup)
      .kv("rhs", service.reused_rhs);
  w.end_object();
  w.kv("cache_key", service.cache_key);
  w.end_object();  // service

  w.key("resilience").begin_object();
  w.kv("outcome", resilience.outcome)
      .kv("attempts", resilience.attempts);
  w.key("guard").begin_object();
  w.kv("enabled", resilience.guard_enabled)
      .kv("verdict", resilience.guard_verdict)
      .kv("true_relres", resilience.guard_true_relres)
      .kv("tolerance", resilience.guard_tolerance);
  w.key("columns").begin_array();
  for (std::size_t t = 0; t < resilience.guard_rhs_verdicts.size(); ++t) {
    w.begin_object();
    w.kv("verdict", resilience.guard_rhs_verdicts[t])
        .kv("true_relres", t < resilience.guard_rhs_true_relres.size()
                               ? resilience.guard_rhs_true_relres[t]
                               : 0.0);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.key("fault_trail").begin_array();
  for (const par::FaultRecord& f : resilience.fault_trail) {
    w.begin_object();
    w.kv("site", par::fault_site_name(f.site))
        .kv("ordinal", f.ordinal)
        .kv("action", par::fault_action_name(f.action))
        .kv("delay_ms", f.delay_ms)
        .kv("attempt", f.attempt);
    w.end_object();
  }
  w.end_array();
  w.end_object();  // resilience

  w.key("history").begin_array();
  for (const RestartRecord& rec : history) {
    w.begin_object();
    w.kv("restart", rec.restart)
        .kv("iters", rec.iters)
        .kv("relres", rec.relres)
        .kv("explicit_relres", rec.explicit_relres)
        .kv("seconds_spmv", rec.seconds_spmv)
        .kv("seconds_precond", rec.seconds_precond)
        .kv("seconds_ortho", rec.seconds_ortho);
    w.end_object();
  }
  w.end_array();

  w.end_object();
}

std::string SolveReport::json() const {
  util::JsonWriter w;
  write_json(w);
  return w.str();
}

void SolveReport::save_json(const std::string& path) const {
  util::write_text_file(path, json() + "\n");
}

std::string ReportLog::json() const {
  util::JsonWriter w;
  w.begin_object();
  w.kv("schema", kReportLogSchema);
  w.kv("label", label_);
  w.key("reports").begin_array();
  for (const SolveReport& r : reports_) r.write_json(w);
  w.end_array();
  w.end_object();
  return w.str();
}

bool ReportLog::save(const std::string& path) const {
  if (path.empty() || path == "none") return false;
  util::write_text_file(path, json() + "\n");
  return true;
}

}  // namespace tsbo::api
