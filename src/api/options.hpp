#pragma once
// String-keyed solver configuration: the single description of a run
// that the facade (api/solver.hpp), the bench harnesses, the examples,
// and the tests all share.
//
// Every field parses from and serializes to "key=value" string pairs
// ("solver=sstep ortho=two_stage basis=newton m=60 s=5 bs=60 ..."),
// with unknown-key and invalid-value errors instead of silent
// acceptance, so a run is reproducible from the one-line echo a
// SolveReport carries.  Scheme/preconditioner/matrix names resolve
// through the api registries (api/registry.hpp) — adding a scheme means
// registering a name, not growing an enum switch.
//
// Paper notation mapping (see docs/algorithms.md for the full table):
//   m  = restart length,  s = step size,  bs = two-stage big-panel
//   size; ortho names = Table III columns (cgs2 / bcgs2 / bcgs_pip2 /
//   two_stage).

#include "krylov/gmres.hpp"
#include "krylov/sstep_gmres.hpp"
#include "par/network_model.hpp"

#include <string>
#include <utility>
#include <vector>

namespace tsbo::util {
class Cli;
}

namespace tsbo::api {

/// Residual-guard gap factor (see SolverOptions::verify_residual): a
/// solve is flagged corrupted when the serially recomputed true
/// residual exceeds kResidualGuardFactor * max(reported relres, rtol).
/// The factor absorbs the benign gap Carson & Ma (arXiv:2409.03079)
/// bound between the recurrence estimate and the true residual of a
/// backward-stable s-step GMRES, plus the parallel-vs-serial
/// recompute rounding; a flipped exponent bit overshoots it by many
/// orders of magnitude.
inline constexpr double kResidualGuardFactor = 100.0;

struct SolverOptions {
  // ---- algorithm ----------------------------------------------------
  std::string solver = "sstep";  ///< "gmres" | "sstep"
  /// ortho_registry() key; "" resolves to the solver's default at
  /// parse/validate time ("cgs2" for gmres, "two_stage" for sstep).
  std::string ortho;
  std::string basis = "monomial";  ///< monomial | newton | chebyshev
  std::string precond = "none";    ///< precond_registry() key
  int m = 60;   ///< restart length (paper: 60)
  int s = 5;    ///< step size (paper's conservative default)
  int bs = 60;  ///< two-stage second step size (s <= bs <= m, s | bs)
  double rtol = 1e-6;
  long max_iters = 1000000;
  int max_restarts = 1000000;
  /// Spectral interval for Newton/Chebyshev bases.
  double lambda_min = 0.0;
  double lambda_max = 0.0;
  bool mixed_precision_gram = false;  ///< double-double Gram extension
  std::string breakdown = "shift";    ///< "shift" | "throw"
  /// Pipelined s-step runtime lookahead depth: 0 = reduce latency fully
  /// exposed, >= 1 = next-panel MPK compute credited against the
  /// stage-1 reduce window.  Bitwise-identical solutions at every
  /// depth; see krylov::SStepGmresConfig::pipeline_depth.
  int pipeline_depth = 0;
  /// Stability autopilot (sstep only; see
  /// krylov::SStepGmresConfig::Autopilot and docs/algorithms.md):
  /// monitor the per-panel Gram conditioning estimate, shrink/grow s
  /// between restarts, escalate the Gram to double-double on demand,
  /// and recover from CholeskyBreakdown by re-basing instead of
  /// aborting (the breakdown= policy is superseded while enabled).
  bool autopilot = false;
  double ap_kappa_high = 1e7;  ///< escalate above this basis-kappa estimate
  double ap_kappa_low = 1e5;   ///< cycles below this count as healthy
  int ap_s_min = 1;            ///< smallest step size the ladder may reach
  int ap_patience = 2;         ///< healthy cycles before relaxing a rung
  int precond_sweeps = 1;   ///< Gauss-Seidel sweeps
  int precond_degree = 4;   ///< Chebyshev polynomial degree
  /// Explicit Chebyshev-preconditioner interval; 0/0 = power-method
  /// estimate.
  double precond_lambda_min = 0.0;
  double precond_lambda_max = 0.0;

  // ---- execution ----------------------------------------------------
  int ranks = 4;            ///< SPMD rank count
  std::string net = "off";  ///< off | calibrated | ethernet | hw
  /// Number of right-hand sides solved as one batch (block s-step
  /// GMRES, krylov/block_sstep_gmres.hpp).  rhs=1 is the classic
  /// single-RHS path, bitwise-unchanged.  rhs=k > 1 requires
  /// solver=sstep: the facade expects a length n*k RHS (column t at
  /// offset t*n), runs all k columns through shared panels — one halo
  /// exchange per operator application, one Gram reduce per stage
  /// regardless of k — and reports per-RHS results[] in the /7 schema.
  int rhs = 1;
  /// Warm-start request (0 or 1; interpreted by the solver service,
  /// src/service/): 1 seeds x0 from the cached operator's previous
  /// solution when the same operator is solved again with a perturbed
  /// RHS.  Standalone api::Solver runs ignore it (cold path untouched);
  /// an int rather than a bool so "warm_start=2" fails validate() with
  /// the standard out-of-range text instead of parse-time rejection.
  int warm_start = 0;

  // ---- resilience (docs/algorithms.md "Fault injection & resilience")
  /// Wall-clock budget per job in milliseconds; 0 = none.  The service
  /// arms a CancelToken at dispatch (covering queue-exit to completion
  /// across every retry attempt); standalone api::Solver runs arm one
  /// per solve().  Polled at restart boundaries — a solve overruns by
  /// at most one restart cycle, then completes as timed_out with the
  /// best iterate so far.
  long deadline_ms = 0;
  /// Extra attempts after a failed or corrupted attempt (service only;
  /// ok / timed_out / cancelled never retry).  Backoff between attempts
  /// is exponential with deterministic jitter derived from the job id.
  int retries = 0;
  /// Circuit breaker: after this many CONSECUTIVE non-ok completions of
  /// the same canonical spec, further jobs of that spec fail fast as
  /// `quarantined` until one succeeds.  0 = disabled.
  int quarantine_after = 0;
  /// 0 or 1: recompute the true residual ||b - A x|| / ||b|| serially
  /// against the assembled matrix after the iteration and compare with
  /// the reported relres.  Motivated by Carson & Ma's backward-stability
  /// analysis of s-step GMRES (arXiv:2409.03079): for a sound solve the
  /// two agree to a modest factor, so a gap beyond
  /// kResidualGuardFactor * max(relres, rtol) flags the solve
  /// `corrupted` (soft errors the recurrence would report as
  /// converged).  Under the service a corrupted verdict triggers a
  /// retry with the cached operator re-validated against its stored
  /// checksum.
  int verify_residual = 0;
  /// Fault-injection plan (par::FaultPlan::parse syntax), "" = none:
  /// "site@ordinal:action[;...]", action = throw | corrupt | delay<ms>.
  std::string faults;

  // ---- matrix source (when the facade builds the matrix) ------------
  std::string matrix = "laplace2d_5pt";  ///< matrix_registry() key
  std::string matrix_file;               ///< path for matrix = "file"
  int nx = 64;  ///< grid extent; ny/nz = 0 inherit nx
  int ny = 0;
  int nz = 0;
  int n = 0;  ///< surrogate target row count (0 = registry default)
  bool equilibrate = false;  ///< paper Section VI max-scaling

  /// All option keys, in canonical (serialization) order.
  static const std::vector<std::string>& keys();

  /// Applies `kv` on top of `base`.  Throws std::invalid_argument on an
  /// unknown key (with a did-you-mean hint) or an unparsable value, and
  /// resolves an empty `ortho` to the solver's default so that
  /// parse(to_kv()) round-trips exactly.
  static SolverOptions parse(
      const std::vector<std::pair<std::string, std::string>>& kv,
      SolverOptions base);
  static SolverOptions parse(
      const std::vector<std::pair<std::string, std::string>>& kv);

  /// Whitespace-separated "key=value" form of the above.
  static SolverOptions parse(const std::string& spec, SolverOptions base);
  static SolverOptions parse(const std::string& spec);

  /// Reads every option key from a parsed command line (absent keys
  /// keep `base` values).  Marks all keys as known for
  /// Cli::reject_unknown().
  static SolverOptions from_cli(const util::Cli& cli, SolverOptions base);
  static SolverOptions from_cli(const util::Cli& cli);

  /// Single-key accessors (string domain).  Throw on unknown keys.
  void set(const std::string& key, const std::string& value);
  [[nodiscard]] std::string get(const std::string& key) const;

  /// Every field as key=value pairs in keys() order; parse(to_kv()) is
  /// the identity.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> to_kv() const;

  /// One-line "key=value key=value ..." echo (the report provenance).
  [[nodiscard]] std::string to_string() const;

  /// Cross-field validation: known solver/ortho/basis/precond/net
  /// names, ortho entry compatible with the solver kind, positive
  /// sizes.  Structural s | m constraints stay with the krylov solvers.
  void validate() const;

  [[nodiscard]] bool is_sstep() const { return solver == "sstep"; }

  /// `ortho` with "" resolved to the solver's default — what validate()
  /// and the config lowering actually use, so a default-constructed
  /// struct (never passed through parse()) still names a valid scheme.
  [[nodiscard]] std::string resolved_ortho() const {
    if (!ortho.empty()) return ortho;
    return solver == "gmres" ? "cgs2" : "two_stage";
  }

  /// Lowered configs for the krylov layer (validate() implied).
  /// gmres_config() requires solver = "gmres", sstep_config() requires
  /// solver = "sstep".
  [[nodiscard]] krylov::GmresConfig gmres_config() const;
  [[nodiscard]] krylov::SStepGmresConfig sstep_config() const;

  [[nodiscard]] par::NetworkModel network_model() const;

  /// Grid extents with ny/nz = 0 resolved to nx.
  [[nodiscard]] int ny_or_nx() const { return ny > 0 ? ny : nx; }
  [[nodiscard]] int nz_or_nx() const { return nz > 0 ? nz : nx; }

  bool operator==(const SolverOptions&) const = default;
};

}  // namespace tsbo::api
