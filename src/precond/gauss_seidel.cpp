#include "precond/gauss_seidel.hpp"

#include <algorithm>
#include <cassert>

namespace tsbo::precond {

std::vector<int> greedy_coloring(const sparse::CsrMatrix& local,
                                 sparse::ord n_owned) {
  std::vector<int> color(static_cast<std::size_t>(n_owned), -1);
  std::vector<char> used;  // colors used by already-colored neighbors
  for (sparse::ord i = 0; i < n_owned; ++i) {
    used.assign(used.size(), 0);
    for (sparse::offset k = local.row_ptr[i]; k < local.row_ptr[i + 1]; ++k) {
      const sparse::ord j = local.col_idx[static_cast<std::size_t>(k)];
      if (j < n_owned && j != i && color[static_cast<std::size_t>(j)] >= 0) {
        const auto c = static_cast<std::size_t>(color[static_cast<std::size_t>(j)]);
        if (c >= used.size()) used.resize(c + 1, 0);
        used[c] = 1;
      }
    }
    int c = 0;
    while (static_cast<std::size_t>(c) < used.size() &&
           used[static_cast<std::size_t>(c)]) {
      ++c;
    }
    if (static_cast<std::size_t>(c) >= used.size()) used.resize(c + 1, 0);
    color[static_cast<std::size_t>(i)] = c;
  }
  return color;
}

MulticolorGaussSeidel::MulticolorGaussSeidel(const sparse::DistCsr& a,
                                             int sweeps, bool symmetric)
    : sweeps_(sweeps), symmetric_(symmetric) {
  // Rank-local diagonal block (ghosts dropped: block Jacobi across
  // ranks), built from the interior/boundary split so only boundary
  // rows pay the ghost-column filter.
  block_ = a.local_diagonal_block();
  const sparse::ord n = block_.rows;

  inv_diag_.assign(static_cast<std::size_t>(n), 1.0);
  for (sparse::ord i = 0; i < n; ++i) {
    const double d = block_.at(i, i);
    if (d != 0.0) inv_diag_[static_cast<std::size_t>(i)] = 1.0 / d;
  }

  color_of_ = greedy_coloring(block_, n);
  num_colors_ = 0;
  for (const int c : color_of_) num_colors_ = std::max(num_colors_, c + 1);
  color_rows_.assign(static_cast<std::size_t>(num_colors_), {});
  for (sparse::ord i = 0; i < n; ++i) {
    color_rows_[static_cast<std::size_t>(color_of_[static_cast<std::size_t>(i)])]
        .push_back(i);
  }
}

void MulticolorGaussSeidel::relax_color(int color, std::span<const double> x,
                                        std::span<double> y) const {
  for (const sparse::ord i :
       color_rows_[static_cast<std::size_t>(color)]) {
    double s = x[static_cast<std::size_t>(i)];
    for (sparse::offset k = block_.row_ptr[i]; k < block_.row_ptr[i + 1]; ++k) {
      const sparse::ord j = block_.col_idx[static_cast<std::size_t>(k)];
      if (j != i) {
        s -= block_.values[static_cast<std::size_t>(k)] *
             y[static_cast<std::size_t>(j)];
      }
    }
    y[static_cast<std::size_t>(i)] = s * inv_diag_[static_cast<std::size_t>(i)];
  }
}

void MulticolorGaussSeidel::apply(std::span<const double> x,
                                  std::span<double> y) const {
  assert(x.size() == inv_diag_.size() && y.size() == inv_diag_.size());
  std::fill(y.begin(), y.end(), 0.0);
  for (int sweep = 0; sweep < sweeps_; ++sweep) {
    for (int c = 0; c < num_colors_; ++c) relax_color(c, x, y);
    if (symmetric_) {
      for (int c = num_colors_ - 1; c >= 0; --c) relax_color(c, x, y);
    }
  }
}

}  // namespace tsbo::precond
