#include "precond/gauss_seidel.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace tsbo::precond {

std::vector<int> greedy_coloring(const sparse::CsrMatrix& local,
                                 sparse::ord n_owned) {
  std::vector<int> color(static_cast<std::size_t>(n_owned), -1);
  std::vector<char> used;  // colors used by already-colored neighbors
  for (sparse::ord i = 0; i < n_owned; ++i) {
    used.assign(used.size(), 0);
    for (sparse::offset k = local.row_ptr[i]; k < local.row_ptr[i + 1]; ++k) {
      const sparse::ord j = local.col_idx[static_cast<std::size_t>(k)];
      if (j < n_owned && j != i && color[static_cast<std::size_t>(j)] >= 0) {
        const auto c = static_cast<std::size_t>(color[static_cast<std::size_t>(j)]);
        if (c >= used.size()) used.resize(c + 1, 0);
        used[c] = 1;
      }
    }
    int c = 0;
    while (static_cast<std::size_t>(c) < used.size() &&
           used[static_cast<std::size_t>(c)]) {
      ++c;
    }
    if (static_cast<std::size_t>(c) >= used.size()) used.resize(c + 1, 0);
    color[static_cast<std::size_t>(i)] = c;
  }
  return color;
}

MulticolorSetup::MulticolorSetup(const sparse::DistCsr& a) {
  // Rank-local diagonal block (ghosts dropped: block Jacobi across
  // ranks), built from the interior/boundary split so only boundary
  // rows pay the ghost-column filter.
  block = a.local_diagonal_block();
  const sparse::ord n = block.rows;

  inv_diag.assign(static_cast<std::size_t>(n), 1.0);
  for (sparse::ord i = 0; i < n; ++i) {
    const double d = block.at(i, i);
    if (d != 0.0) inv_diag[static_cast<std::size_t>(i)] = 1.0 / d;
  }

  color_of = greedy_coloring(block, n);
  num_colors = 0;
  for (const int c : color_of) num_colors = std::max(num_colors, c + 1);
  color_rows.assign(static_cast<std::size_t>(num_colors), {});
  for (sparse::ord i = 0; i < n; ++i) {
    color_rows[static_cast<std::size_t>(color_of[static_cast<std::size_t>(i)])]
        .push_back(i);
  }
}

std::size_t MulticolorSetup::bytes() const {
  std::size_t b = block.storage_bytes();
  b += inv_diag.capacity() * sizeof(double);
  b += color_of.capacity() * sizeof(int);
  b += color_rows.capacity() * sizeof(std::vector<sparse::ord>);
  for (const auto& rows : color_rows) b += rows.capacity() * sizeof(sparse::ord);
  return b;
}

MulticolorGaussSeidel::MulticolorGaussSeidel(const sparse::DistCsr& a,
                                             int sweeps, bool symmetric)
    : MulticolorGaussSeidel(std::make_shared<const MulticolorSetup>(a), sweeps,
                            symmetric) {}

MulticolorGaussSeidel::MulticolorGaussSeidel(
    std::shared_ptr<const MulticolorSetup> setup, int sweeps, bool symmetric)
    : setup_(std::move(setup)), sweeps_(sweeps), symmetric_(symmetric) {
  assert(setup_ != nullptr);
}

void MulticolorGaussSeidel::relax_color(int color, std::span<const double> x,
                                        std::span<double> y) const {
  const sparse::CsrMatrix& block = setup_->block;
  const std::vector<double>& inv_diag = setup_->inv_diag;
  for (const sparse::ord i :
       setup_->color_rows[static_cast<std::size_t>(color)]) {
    double s = x[static_cast<std::size_t>(i)];
    for (sparse::offset k = block.row_ptr[i]; k < block.row_ptr[i + 1]; ++k) {
      const sparse::ord j = block.col_idx[static_cast<std::size_t>(k)];
      if (j != i) {
        s -= block.values[static_cast<std::size_t>(k)] *
             y[static_cast<std::size_t>(j)];
      }
    }
    y[static_cast<std::size_t>(i)] = s * inv_diag[static_cast<std::size_t>(i)];
  }
}

void MulticolorGaussSeidel::apply(std::span<const double> x,
                                  std::span<double> y) const {
  assert(x.size() == setup_->inv_diag.size() &&
         y.size() == setup_->inv_diag.size());
  std::fill(y.begin(), y.end(), 0.0);
  for (int sweep = 0; sweep < sweeps_; ++sweep) {
    for (int c = 0; c < setup_->num_colors; ++c) relax_color(c, x, y);
    if (symmetric_) {
      for (int c = setup_->num_colors - 1; c >= 0; --c) relax_color(c, x, y);
    }
  }
}

}  // namespace tsbo::precond
