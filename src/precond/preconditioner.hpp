#pragma once
// Preconditioner interface.
//
// The paper applies SpMV "typically combined with a preconditioner"
// (Section I) and evaluates a local Gauss-Seidel preconditioner (block
// Jacobi with Gauss-Seidel in each block, Fig. 13).  All provided
// preconditioners are *local*: apply() touches only the rank's own rows
// and requires no communication, exactly like the paper's block-Jacobi
// family.  Solvers use right preconditioning (solve A M^{-1} u = b,
// x = M^{-1} u), so the Krylov residual norm is the true residual norm.

#include <cstddef>
#include <span>
#include <string>

namespace tsbo::precond {

class Preconditioner {
 public:
  virtual ~Preconditioner() = default;

  /// y = M^{-1} x on the rank-local rows.  x and y have the local
  /// length; aliasing x == y is not allowed.
  virtual void apply(std::span<const double> x, std::span<double> y) const = 0;

  /// Multi-column apply: column t of the n x ncols column-major operand
  /// x (leading dimension ldx) maps to column t of y (ldy).  All
  /// provided preconditioners are local and column-independent, so the
  /// default is a per-column apply() loop — each column's bits match a
  /// single-vector apply exactly.  Subclasses may override to fuse the
  /// sweep (stream M once for all columns) as long as per-column bits
  /// are preserved.
  virtual void apply_multi(std::size_t n, std::size_t ncols, const double* x,
                           std::size_t ldx, double* y, std::size_t ldy) const {
    for (std::size_t t = 0; t < ncols; ++t) {
      apply(std::span<const double>(x + t * ldx, n),
            std::span<double>(y + t * ldy, n));
    }
  }

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace tsbo::precond
