#pragma once
// Preconditioner interface.
//
// The paper applies SpMV "typically combined with a preconditioner"
// (Section I) and evaluates a local Gauss-Seidel preconditioner (block
// Jacobi with Gauss-Seidel in each block, Fig. 13).  All provided
// preconditioners are *local*: apply() touches only the rank's own rows
// and requires no communication, exactly like the paper's block-Jacobi
// family.  Solvers use right preconditioning (solve A M^{-1} u = b,
// x = M^{-1} u), so the Krylov residual norm is the true residual norm.

#include <span>
#include <string>

namespace tsbo::precond {

class Preconditioner {
 public:
  virtual ~Preconditioner() = default;

  /// y = M^{-1} x on the rank-local rows.  x and y have the local
  /// length; aliasing x == y is not allowed.
  virtual void apply(std::span<const double> x, std::span<double> y) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace tsbo::precond
