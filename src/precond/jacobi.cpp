#include "precond/jacobi.hpp"

#include <cassert>

namespace tsbo::precond {

Jacobi::Jacobi(const sparse::DistCsr& a) {
  const sparse::CsrMatrix& local = a.local_matrix();
  inv_diag_.assign(static_cast<std::size_t>(local.rows), 1.0);
  for (sparse::ord i = 0; i < local.rows; ++i) {
    // Diagonal entry: global column row_begin+i maps to local column i.
    for (sparse::offset k = local.row_ptr[i]; k < local.row_ptr[i + 1]; ++k) {
      if (local.col_idx[static_cast<std::size_t>(k)] == i) {
        const double d = local.values[static_cast<std::size_t>(k)];
        if (d != 0.0) inv_diag_[static_cast<std::size_t>(i)] = 1.0 / d;
        break;
      }
    }
  }
}

void Jacobi::apply(std::span<const double> x, std::span<double> y) const {
  assert(x.size() == inv_diag_.size() && y.size() == inv_diag_.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i] * inv_diag_[i];
}

}  // namespace tsbo::precond
