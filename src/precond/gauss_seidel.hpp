#pragma once
// Local (multicolor) Gauss-Seidel preconditioner — the paper's Fig. 13
// preconditioner: block Jacobi across ranks with Gauss-Seidel sweeps in
// each local block [2], using multicolor ordering [10] as in
// Kokkos-Kernels.
//
// apply() solves (approximately) M y = x where M is the Gauss-Seidel
// splitting of the rank-local diagonal block: sweeping colors in order
// with y initialized to zero, each unknown is relaxed once per sweep;
// unknowns of equal color are independent (the GPU-parallel property
// the paper gets from Kokkos-Kernels' coloring — here it fixes the
// sweep order deterministically).

#include "precond/preconditioner.hpp"
#include "sparse/dist_csr.hpp"

#include <vector>

namespace tsbo::precond {

/// Greedy distance-1 coloring of the local block's adjacency; returns
/// color ids (0-based) per local row.  Exposed for tests.
std::vector<int> greedy_coloring(const sparse::CsrMatrix& local,
                                 sparse::ord n_owned);

class MulticolorGaussSeidel final : public Preconditioner {
 public:
  /// sweeps: forward relaxation passes; symmetric: follow each forward
  /// pass with a reverse-color pass.
  explicit MulticolorGaussSeidel(const sparse::DistCsr& a, int sweeps = 1,
                                 bool symmetric = false);

  void apply(std::span<const double> x, std::span<double> y) const override;
  [[nodiscard]] std::string name() const override {
    return symmetric_ ? "MC-SymGS" : "MC-GS";
  }

  [[nodiscard]] int num_colors() const { return num_colors_; }

 private:
  void relax_color(int color, std::span<const double> x,
                   std::span<double> y) const;

  // Local diagonal block only (ghost columns dropped): block-Jacobi
  // across ranks.
  sparse::CsrMatrix block_;
  std::vector<double> inv_diag_;
  std::vector<int> color_of_;
  std::vector<std::vector<sparse::ord>> color_rows_;
  int num_colors_ = 0;
  int sweeps_;
  bool symmetric_;
};

}  // namespace tsbo::precond
