#pragma once
// Local (multicolor) Gauss-Seidel preconditioner — the paper's Fig. 13
// preconditioner: block Jacobi across ranks with Gauss-Seidel sweeps in
// each local block [2], using multicolor ordering [10] as in
// Kokkos-Kernels.
//
// apply() solves (approximately) M y = x where M is the Gauss-Seidel
// splitting of the rank-local diagonal block: sweeping colors in order
// with y initialized to zero, each unknown is relaxed once per sweep;
// unknowns of equal color are independent (the GPU-parallel property
// the paper gets from Kokkos-Kernels' coloring — here it fixes the
// sweep order deterministically).
//
// The expensive, sweep-independent part of construction — extracting
// the diagonal block, inverting the diagonal, and coloring — lives in
// MulticolorSetup so a long-lived service (src/service/) can build it
// once per operator and share it across solves; the fused constructor
// below builds a private setup through the identical code path, so the
// two construction routes are bitwise-interchangeable.

#include "precond/preconditioner.hpp"
#include "sparse/dist_csr.hpp"

#include <memory>
#include <vector>

namespace tsbo::precond {

/// Greedy distance-1 coloring of the local block's adjacency; returns
/// color ids (0-based) per local row.  Exposed for tests.
std::vector<int> greedy_coloring(const sparse::CsrMatrix& local,
                                 sparse::ord n_owned);

/// Reusable multicolor Gauss-Seidel setup for one rank's operator
/// block: the ghost-stripped diagonal block, its inverted diagonal, and
/// the greedy coloring.  Depends only on the matrix — not on the sweep
/// count or symmetry flag, which are apply-time parameters.  Immutable
/// after construction, so one setup may back any number of
/// MulticolorGaussSeidel instances (and concurrent applies).
struct MulticolorSetup {
  explicit MulticolorSetup(const sparse::DistCsr& a);

  sparse::CsrMatrix block;  ///< rank-local diagonal block, ghosts dropped
  std::vector<double> inv_diag;
  std::vector<int> color_of;
  std::vector<std::vector<sparse::ord>> color_rows;
  int num_colors = 0;

  /// Approximate heap footprint (operator-cache byte accounting).
  [[nodiscard]] std::size_t bytes() const;
};

class MulticolorGaussSeidel final : public Preconditioner {
 public:
  /// sweeps: forward relaxation passes; symmetric: follow each forward
  /// pass with a reverse-color pass.
  explicit MulticolorGaussSeidel(const sparse::DistCsr& a, int sweeps = 1,
                                 bool symmetric = false);

  /// Shares a prebuilt setup (the operator-cache path).  Bitwise
  /// identical to the fused constructor for the same matrix.
  MulticolorGaussSeidel(std::shared_ptr<const MulticolorSetup> setup,
                        int sweeps = 1, bool symmetric = false);

  void apply(std::span<const double> x, std::span<double> y) const override;
  [[nodiscard]] std::string name() const override {
    return symmetric_ ? "MC-SymGS" : "MC-GS";
  }

  [[nodiscard]] int num_colors() const { return setup_->num_colors; }

 private:
  void relax_color(int color, std::span<const double> x,
                   std::span<double> y) const;

  std::shared_ptr<const MulticolorSetup> setup_;
  int sweeps_;
  bool symmetric_;
};

}  // namespace tsbo::precond
