#include "precond/chebyshev.hpp"
#include "util/aligned.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tsbo::precond {

ChebyshevPolynomial::ChebyshevPolynomial(const sparse::DistCsr& a, int degree,
                                         double lmin, double lmax)
    : ChebyshevPolynomial(a, degree, 0) {
  lmin_ = lmin;
  lmax_ = lmax;
}

ChebyshevPolynomial::ChebyshevPolynomial(const sparse::DistCsr& a, int degree,
                                         int power_iters)
    : degree_(degree) {
  // Rank-local diagonal block (ghosts dropped), built from the
  // DistCsr interior/boundary split — see local_diagonal_block().
  block_ = a.local_diagonal_block();
  const sparse::ord n = block_.rows;

  inv_diag_.assign(static_cast<std::size_t>(n), 1.0);
  for (sparse::ord i = 0; i < n; ++i) {
    const double d = block_.at(i, i);
    if (d != 0.0) inv_diag_[static_cast<std::size_t>(i)] = 1.0 / d;
  }

  p_.assign(static_cast<std::size_t>(n), 0.0);
  z_.assign(static_cast<std::size_t>(n), 0.0);
  r_.assign(static_cast<std::size_t>(n), 0.0);

  // Power method on D^{-1} A_local for lambda_max.
  util::aligned_vector<double> v(static_cast<std::size_t>(n), 1.0), w(static_cast<std::size_t>(n));
  double lambda = 1.0;
  for (int it = 0; it < power_iters; ++it) {
    scaled_spmv(v, w);
    double nrm = 0.0;
    for (const double val : w) nrm += val * val;
    nrm = std::sqrt(nrm);
    if (nrm == 0.0) break;
    lambda = nrm;
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = w[i] / nrm;
  }
  lmax_ = 1.1 * lambda;       // Ifpack2-style safety factor
  lmin_ = lmax_ / 30.0;       // default eigRatio
}

void ChebyshevPolynomial::scaled_spmv(std::span<const double> x,
                                      std::span<double> y) const {
  const sparse::ord n = block_.rows;
  for (sparse::ord i = 0; i < n; ++i) {
    double s = 0.0;
    for (sparse::offset k = block_.row_ptr[i]; k < block_.row_ptr[i + 1]; ++k) {
      s += block_.values[static_cast<std::size_t>(k)] *
           x[static_cast<std::size_t>(block_.col_idx[static_cast<std::size_t>(k)])];
    }
    y[static_cast<std::size_t>(i)] = s * inv_diag_[static_cast<std::size_t>(i)];
  }
}

void ChebyshevPolynomial::apply(std::span<const double> x,
                                std::span<double> y) const {
  assert(x.size() == inv_diag_.size() && y.size() == inv_diag_.size());
  const std::size_t n = x.size();

  // Chebyshev acceleration (Saad, "Iterative Methods for Sparse Linear
  // Systems", Alg. 12.1) on the Jacobi-scaled system D^{-1}A y = D^{-1}x
  // over the interval [lmin, lmax].
  const double theta = 0.5 * (lmax_ + lmin_);
  const double delta = 0.5 * (lmax_ - lmin_);
  const double sigma1 = theta / delta;
  double rho = 1.0 / sigma1;

  std::fill(y.begin(), y.end(), 0.0);
  // r = D^{-1} x (y = 0); d = r / theta.
  for (std::size_t i = 0; i < n; ++i) {
    r_[i] = x[i] * inv_diag_[i];
    p_[i] = r_[i] / theta;
  }
  for (int k = 0; k < degree_; ++k) {
    for (std::size_t i = 0; i < n; ++i) y[i] += p_[i];
    if (k + 1 == degree_) break;
    // r = D^{-1}x - D^{-1}A y
    scaled_spmv(y, z_);
    for (std::size_t i = 0; i < n; ++i) r_[i] = x[i] * inv_diag_[i] - z_[i];
    const double rho_next = 1.0 / (2.0 * sigma1 - rho);
    const double c1 = rho_next * rho;
    const double c2 = 2.0 * rho_next / delta;
    for (std::size_t i = 0; i < n; ++i) p_[i] = c1 * p_[i] + c2 * r_[i];
    rho = rho_next;
  }
}

}  // namespace tsbo::precond
