#include "precond/chebyshev.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace tsbo::precond {

ChebyshevSetup::ChebyshevSetup(const sparse::DistCsr& a) {
  // Rank-local diagonal block (ghosts dropped), built from the
  // DistCsr interior/boundary split — see local_diagonal_block().
  block = a.local_diagonal_block();
  const sparse::ord n = block.rows;

  inv_diag.assign(static_cast<std::size_t>(n), 1.0);
  for (sparse::ord i = 0; i < n; ++i) {
    const double d = block.at(i, i);
    if (d != 0.0) inv_diag[static_cast<std::size_t>(i)] = 1.0 / d;
  }
}

ChebyshevSetup::ChebyshevSetup(const sparse::DistCsr& a, int power_iters)
    : ChebyshevSetup(a) {
  // Power method on D^{-1} A_local for lambda_max.
  const sparse::ord n = block.rows;
  util::aligned_vector<double> v(static_cast<std::size_t>(n), 1.0),
      w(static_cast<std::size_t>(n));
  double lambda = 1.0;
  for (int it = 0; it < power_iters; ++it) {
    scaled_spmv(v, w);
    double nrm = 0.0;
    for (const double val : w) nrm += val * val;
    nrm = std::sqrt(nrm);
    if (nrm == 0.0) break;
    lambda = nrm;
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = w[i] / nrm;
  }
  lmax = 1.1 * lambda;  // Ifpack2-style safety factor
  lmin = lmax / 30.0;   // default eigRatio
}

ChebyshevSetup::ChebyshevSetup(const sparse::DistCsr& a, double lmin_in,
                               double lmax_in)
    : ChebyshevSetup(a) {
  lmin = lmin_in;
  lmax = lmax_in;
}

void ChebyshevSetup::scaled_spmv(std::span<const double> x,
                                 std::span<double> y) const {
  const sparse::ord n = block.rows;
  for (sparse::ord i = 0; i < n; ++i) {
    double s = 0.0;
    for (sparse::offset k = block.row_ptr[i]; k < block.row_ptr[i + 1]; ++k) {
      s += block.values[static_cast<std::size_t>(k)] *
           x[static_cast<std::size_t>(block.col_idx[static_cast<std::size_t>(k)])];
    }
    y[static_cast<std::size_t>(i)] = s * inv_diag[static_cast<std::size_t>(i)];
  }
}

std::size_t ChebyshevSetup::bytes() const {
  return block.storage_bytes() + inv_diag.capacity() * sizeof(double);
}

ChebyshevPolynomial::ChebyshevPolynomial(const sparse::DistCsr& a, int degree,
                                         double lmin, double lmax)
    : ChebyshevPolynomial(std::make_shared<const ChebyshevSetup>(a, lmin, lmax),
                          degree) {}

ChebyshevPolynomial::ChebyshevPolynomial(const sparse::DistCsr& a, int degree,
                                         int power_iters)
    : ChebyshevPolynomial(
          std::make_shared<const ChebyshevSetup>(a, power_iters), degree) {}

ChebyshevPolynomial::ChebyshevPolynomial(
    std::shared_ptr<const ChebyshevSetup> setup, int degree)
    : setup_(std::move(setup)), degree_(degree) {
  assert(setup_ != nullptr);
  const auto n = setup_->inv_diag.size();
  p_.assign(n, 0.0);
  z_.assign(n, 0.0);
  r_.assign(n, 0.0);
}

void ChebyshevPolynomial::apply(std::span<const double> x,
                                std::span<double> y) const {
  assert(x.size() == setup_->inv_diag.size() &&
         y.size() == setup_->inv_diag.size());
  const std::size_t n = x.size();
  const util::aligned_vector<double>& inv_diag = setup_->inv_diag;

  // Chebyshev acceleration (Saad, "Iterative Methods for Sparse Linear
  // Systems", Alg. 12.1) on the Jacobi-scaled system D^{-1}A y = D^{-1}x
  // over the interval [lmin, lmax].
  const double theta = 0.5 * (setup_->lmax + setup_->lmin);
  const double delta = 0.5 * (setup_->lmax - setup_->lmin);
  const double sigma1 = theta / delta;
  double rho = 1.0 / sigma1;

  std::fill(y.begin(), y.end(), 0.0);
  // r = D^{-1} x (y = 0); d = r / theta.
  for (std::size_t i = 0; i < n; ++i) {
    r_[i] = x[i] * inv_diag[i];
    p_[i] = r_[i] / theta;
  }
  for (int k = 0; k < degree_; ++k) {
    for (std::size_t i = 0; i < n; ++i) y[i] += p_[i];
    if (k + 1 == degree_) break;
    // r = D^{-1}x - D^{-1}A y
    setup_->scaled_spmv(y, z_);
    for (std::size_t i = 0; i < n; ++i) r_[i] = x[i] * inv_diag[i] - z_[i];
    const double rho_next = 1.0 / (2.0 * sigma1 - rho);
    const double c1 = rho_next * rho;
    const double c2 = 2.0 * rho_next / delta;
    for (std::size_t i = 0; i < n; ++i) p_[i] = c1 * p_[i] + c2 * r_[i];
    rho = rho_next;
  }
}

}  // namespace tsbo::precond
