#pragma once
// Point Jacobi (diagonal) preconditioner.

#include "precond/preconditioner.hpp"
#include "sparse/dist_csr.hpp"

#include <vector>

namespace tsbo::precond {

class Jacobi final : public Preconditioner {
 public:
  /// Extracts the local diagonal of `a`.  Zero diagonals become 1
  /// (identity action on those rows).
  explicit Jacobi(const sparse::DistCsr& a);

  void apply(std::span<const double> x, std::span<double> y) const override;
  [[nodiscard]] std::string name() const override { return "Jacobi"; }

 private:
  std::vector<double> inv_diag_;
};

}  // namespace tsbo::precond
