#pragma once
// Local Chebyshev polynomial preconditioner.
//
// y = p_d(D^{-1} A_local) D^{-1} x approximates A_local^{-1} x on the
// rank-local diagonal block using the standard Chebyshev iteration on
// an eigenvalue interval estimate.  Communication-free (block Jacobi
// across ranks), so it composes with s-step GMRES without extra
// synchronization — the property the paper's preconditioner discussion
// (Section III) needs.
//
// The matrix-dependent construction work — extracting the diagonal
// block, inverting the diagonal, and running the power method for the
// eigenvalue interval — lives in ChebyshevSetup so a long-lived
// service (src/service/) can pay for it once per operator and reuse it
// across solves.  The fused constructors delegate to the same code
// path, so both routes yield bitwise-identical preconditioners.

#include "precond/preconditioner.hpp"
#include "sparse/dist_csr.hpp"
#include "util/aligned.hpp"

#include <memory>
#include <vector>

namespace tsbo::precond {

/// Reusable Chebyshev setup for one rank's operator block: the
/// ghost-stripped diagonal block, its inverted diagonal, and the
/// estimated (or explicitly given) eigenvalue interval of the
/// Jacobi-scaled block.  Depends only on the matrix and the interval
/// parameters — not on the polynomial degree, which is an apply-time
/// parameter.  Immutable after construction.
struct ChebyshevSetup {
  /// Estimates the interval with `power_iters` power-method steps and
  /// the standard heuristics lmax *= 1.1, lmin = lmax / 30 (Ifpack2
  /// defaults).
  ChebyshevSetup(const sparse::DistCsr& a, int power_iters);

  /// Explicit eigenvalue interval (no estimation) — for operators
  /// whose spectrum is known.
  ChebyshevSetup(const sparse::DistCsr& a, double lmin, double lmax);

  sparse::CsrMatrix block;  ///< rank-local diagonal block, ghosts dropped
  util::aligned_vector<double> inv_diag;
  double lmax = 1.0;
  double lmin = 0.1;

  /// y = D^{-1} A_local x on the stored block (the operator the power
  /// method and the Chebyshev recurrence both iterate with).
  void scaled_spmv(std::span<const double> x, std::span<double> y) const;

  /// Approximate heap footprint (operator-cache byte accounting).
  [[nodiscard]] std::size_t bytes() const;

 private:
  explicit ChebyshevSetup(const sparse::DistCsr& a);
};

class ChebyshevPolynomial final : public Preconditioner {
 public:
  /// degree: polynomial degree (number of local SpMVs per apply).
  /// The eigenvalue interval of the Jacobi-scaled block is estimated
  /// with `power_iters` power-method steps; the standard heuristics
  /// lmax *= 1.1, lmin = lmax / 30 are applied (Ifpack2 defaults).
  explicit ChebyshevPolynomial(const sparse::DistCsr& a, int degree = 4,
                               int power_iters = 10);

  /// Explicit eigenvalue interval of the Jacobi-scaled block (no
  /// estimation) — for operators whose spectrum is known.
  ChebyshevPolynomial(const sparse::DistCsr& a, int degree, double lmin,
                      double lmax);

  /// Shares a prebuilt setup (the operator-cache path).  Bitwise
  /// identical to the fused constructors for the same matrix and
  /// interval parameters.
  ChebyshevPolynomial(std::shared_ptr<const ChebyshevSetup> setup, int degree);

  void apply(std::span<const double> x, std::span<double> y) const override;
  [[nodiscard]] std::string name() const override { return "Chebyshev"; }

  [[nodiscard]] double lambda_max() const { return setup_->lmax; }

 private:
  std::shared_ptr<const ChebyshevSetup> setup_;
  int degree_;
  // Per-instance scratch: apply() mutates these, so instances are not
  // safe for concurrent applies even though the shared setup is.
  mutable util::aligned_vector<double> p_, z_, r_;
};

}  // namespace tsbo::precond
