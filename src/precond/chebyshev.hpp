#pragma once
// Local Chebyshev polynomial preconditioner.
//
// y = p_d(D^{-1} A_local) D^{-1} x approximates A_local^{-1} x on the
// rank-local diagonal block using the standard Chebyshev iteration on
// an eigenvalue interval estimate.  Communication-free (block Jacobi
// across ranks), so it composes with s-step GMRES without extra
// synchronization — the property the paper's preconditioner discussion
// (Section III) needs.

#include "precond/preconditioner.hpp"
#include "sparse/dist_csr.hpp"
#include "util/aligned.hpp"

#include <vector>

namespace tsbo::precond {

class ChebyshevPolynomial final : public Preconditioner {
 public:
  /// degree: polynomial degree (number of local SpMVs per apply).
  /// The eigenvalue interval of the Jacobi-scaled block is estimated
  /// with `power_iters` power-method steps; the standard heuristics
  /// lmax *= 1.1, lmin = lmax / 30 are applied (Ifpack2 defaults).
  explicit ChebyshevPolynomial(const sparse::DistCsr& a, int degree = 4,
                               int power_iters = 10);

  /// Explicit eigenvalue interval of the Jacobi-scaled block (no
  /// estimation) — for operators whose spectrum is known.
  ChebyshevPolynomial(const sparse::DistCsr& a, int degree, double lmin,
                      double lmax);

  void apply(std::span<const double> x, std::span<double> y) const override;
  [[nodiscard]] std::string name() const override { return "Chebyshev"; }

  [[nodiscard]] double lambda_max() const { return lmax_; }

 private:
  void scaled_spmv(std::span<const double> x, std::span<double> y) const;

  sparse::CsrMatrix block_;  // local diagonal block
  util::aligned_vector<double> inv_diag_;
  int degree_;
  double lmax_ = 1.0;
  double lmin_ = 0.1;
  mutable util::aligned_vector<double> p_, z_, r_;
};

}  // namespace tsbo::precond
