#include "par/network_model.hpp"

// Header-only alpha-beta model; translation unit reserved for future
// trace-calibrated models (e.g. per-rank-count measured latencies).
