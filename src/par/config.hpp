#pragma once
// Process-wide threading configuration and deterministic dispatch
// helpers for the node-local kernel layer.
//
// Determinism contract: every reduction kernel built on these helpers
// partitions its iteration space into *fixed-size* chunks
// (kReduceChunk) whose boundaries depend only on the problem size —
// never on the thread count — computes one partial result per chunk,
// and combines the partials in ascending chunk order.  The schedule
// (which thread runs which chunk, or whether any threads run at all)
// therefore never affects the bits of the result: serial and parallel
// runs, at any thread count, produce identical output.  Element-wise
// kernels (axpy, GEMM row sweeps, SpMV) write disjoint outputs with a
// fixed per-element accumulation order, so they are schedule-
// independent under any partition.
//
// Thread count resolution order:
//   set_num_threads(n > 0)  >  TSBO_NUM_THREADS  >  hardware_concurrency.
//
// Nested and concurrent callers degrade to the serial path instead of
// fighting over the shared pool (see ScopedSerial below; SPMD rank
// threads are always serial-only); because of the contract above this
// changes timing only, never results.

#include "par/thread_pool.hpp"

#include <cstddef>
#include <functional>

namespace tsbo::util {
class Cli;
}

namespace tsbo::par {

/// Fixed reduction chunk: 16 cache tiles of 256 rows.  Small enough to
/// load-balance paper-scale panels (1e5 rows -> ~25 chunks across 8
/// threads), large enough that the ordered partial-combine epilogue is
/// negligible.
inline constexpr std::size_t kReduceChunk = 4096;

/// Resolved target thread count (always >= 1).
unsigned num_threads();

/// Overrides the thread count; 0 re-resolves from TSBO_NUM_THREADS /
/// hardware.  Not safe to call while kernels are executing.
void set_num_threads(unsigned n);

/// Minimum iteration count before an element-wise kernel pays the
/// pool-dispatch cost (overridable via TSBO_PARALLEL_GRAIN).
std::size_t parallel_grain();
void set_parallel_grain(std::size_t grain);

/// Applies --threads=N and --parallel-grain=N from a parsed command
/// line (bench/example binaries call this right after Cli parsing).
void configure_from_cli(const util::Cli& cli);

/// Shared pool sized to num_threads(); lazily (re)built.
ThreadPool& pool();

/// Marks the calling thread serial-only for its lifetime: every
/// dispatch helper below runs inline on this thread until the guard is
/// destroyed.  The SPMD runtime wraps each simulated rank in one —
/// rank threads are pinned to a core and model MPI processes, so
/// node-level kernel threading inside a rank would oversubscribe the
/// machine and change what the rank-scaling benchmarks measure.  The
/// dispatch helpers also install one around their own pool dispatch,
/// so a kernel nested inside another kernel's chunk stays inline
/// instead of re-entering the pool.
class ScopedSerial {
 public:
  ScopedSerial();
  ~ScopedSerial();
  ScopedSerial(const ScopedSerial&) = delete;
  ScopedSerial& operator=(const ScopedSerial&) = delete;
};

/// fn(begin, end) over a disjoint partition of [0, n).  Runs inline
/// when n < parallel_grain(), a single thread is configured, or the
/// pool is already busy with another dispatch.
void parallel_for_grained(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn);

/// Like parallel_for_grained, but partition boundaries are multiples of
/// `tile`, so cache-tiled kernels keep whole tiles per thread.
void parallel_for_tiles(
    std::size_t n, std::size_t tile,
    const std::function<void(std::size_t, std::size_t)>& fn);

/// Runs fn(job) for every job index in [0, n), scheduling whole jobs as
/// unit chunks across the shared pool (ThreadPool::parallel_for_chunked
/// with chunk = 1): the job -> lane partition is claimed off one
/// monotone cursor, so jobs are dispatched strictly in ascending index
/// order regardless of lane count.  Falls back to an inline ascending
/// loop when a single thread is configured, this thread is serial-only,
/// or the pool is busy with another dispatch — the dispatch order is
/// identical either way.  Intended for coarse, long-running jobs (the
/// solver service schedules whole solves through it); element-wise
/// kernels should keep using parallel_for_grained.
void parallel_jobs(std::size_t n, const std::function<void(std::size_t)>& fn);

/// Number of fixed reduction chunks covering [0, n).
inline std::size_t reduce_chunk_count(std::size_t n) {
  return (n + kReduceChunk - 1) / kReduceChunk;
}

/// fn(chunk, begin, end) for every fixed chunk of [0, n); chunk bounds
/// depend only on n.  Callers combine their per-chunk partials in
/// ascending chunk index order to stay deterministic.
void for_reduce_chunks(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

}  // namespace tsbo::par
