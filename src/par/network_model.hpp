#pragma once
// Interconnect cost model for the SPMD emulation layer.
//
// The reproduction runs all "MPI ranks" as threads of one process, so
// real collectives complete in shared-memory time (~1 us) instead of
// the multi-microsecond fabric latencies that make orthogonalization
// synchronization-bound in the paper.  To recover the paper's regime,
// every collective/point-to-point additionally busy-waits for the time
// an alpha-beta model assigns to it.  Shapes (who wins, crossovers vs.
// rank count) then depend on *synchronization counts* and *message
// sizes* exactly as on a real cluster.  Absolute times remain
// machine-specific; see EXPERIMENTS.md.

#include <cmath>
#include <cstddef>
#include <span>

namespace tsbo::par {

struct NetworkModel {
  bool enabled = false;
  /// Per-tree-stage latency of a global all-reduce (seconds).
  double alpha_allreduce = 12e-6;
  /// Point-to-point message latency (seconds).
  double alpha_p2p = 4e-6;
  /// Inverse bandwidth (seconds per byte), applied per tree stage for
  /// collectives and per message for p2p.
  double beta_per_byte = 0.1e-9;  // ~10 GB/s effective

  /// Cost of an all-reduce of `bytes` across `ranks` ranks: a binomial
  /// reduce-broadcast tree of ceil(log2 p) stages.
  [[nodiscard]] double allreduce_seconds(int ranks, std::size_t bytes) const {
    if (!enabled || ranks < 2) return 0.0;
    const double stages = std::ceil(std::log2(static_cast<double>(ranks)));
    return stages * (alpha_allreduce + static_cast<double>(bytes) * beta_per_byte);
  }

  /// Cost of one point-to-point message of `bytes`.
  [[nodiscard]] double p2p_seconds(std::size_t bytes) const {
    if (!enabled) return 0.0;
    return alpha_p2p + static_cast<double>(bytes) * beta_per_byte;
  }

  /// Cost of one neighbor-exchange round with the given per-peer
  /// message sizes.  The NIC injects messages one after another
  /// (single-port model), so the round costs the SUM of the per-peer
  /// message costs — charging only the largest message would let a
  /// rank talk to arbitrarily many neighbors for free and understate
  /// exactly the latency term strong-scaling runs are supposed to
  /// expose.  For a single peer this reduces to p2p_seconds(bytes).
  [[nodiscard]] double p2p_round_seconds(
      std::span<const std::size_t> peer_bytes) const {
    if (!enabled) return 0.0;
    double t = 0.0;
    for (const std::size_t b : peer_bytes) {
      t += alpha_p2p + static_cast<double>(b) * beta_per_byte;
    }
    return t;
  }

  /// Overlap accounting for the split-phase runtime: of `modeled`
  /// fabric seconds, the share hidden behind `compute_seconds` of local
  /// work performed between begin and wait is `overlapped`; only the
  /// remainder is `exposed` (spun on the critical path).  This is the
  /// standard nonblocking-collective model — latency progresses while
  /// the host computes, and the wait pays max(0, modeled - compute).
  struct OverlapSplit {
    double exposed = 0.0;
    double overlapped = 0.0;
  };
  [[nodiscard]] static OverlapSplit split_overlap(double modeled,
                                                  double compute_seconds) {
    const double hidden =
        modeled < compute_seconds
            ? modeled
            : (compute_seconds > 0.0 ? compute_seconds : 0.0);
    return {modeled - hidden, hidden};
  }

  /// No injected cost: pure shared-memory collectives (unit tests).
  static NetworkModel off() { return NetworkModel{}; }

  /// Literal GPU-cluster fabric numbers (Summit order of magnitude:
  /// ~10 us collective stage latency, ~10 GB/s effective link).  Note:
  /// with these literal values our scalar CPU ranks are NOT in the
  /// paper's latency-bound regime, because a V100 executes the local
  /// BLAS-3 roughly two orders of magnitude faster than one CPU core —
  /// see calibrated().
  static NetworkModel cluster() {
    NetworkModel m;
    m.enabled = true;
    return m;
  }

  /// Ratio-calibrated fabric: latency scaled up by the same ~70x
  /// factor by which our scalar CPU ranks are slower than the paper's
  /// V100s at the local orthogonalization kernels, so the
  /// latency-to-compute RATIO — which determines every shape in
  /// Tables II-IV and Figs. 10-13 — matches the paper's Summit runs.
  /// This is the default for the reproduction benches (EXPERIMENTS.md
  /// documents the calibration).
  static NetworkModel calibrated() {
    NetworkModel m;
    m.enabled = true;
    m.alpha_allreduce = 0.8e-3;
    m.alpha_p2p = 0.25e-3;
    m.beta_per_byte = 7e-9;
    return m;
  }

  /// Slower commodity network; widens the communication-bound regime
  /// (useful for ablations).
  static NetworkModel ethernet() {
    NetworkModel m;
    m.enabled = true;
    m.alpha_allreduce = 40e-6;
    m.alpha_p2p = 15e-6;
    m.beta_per_byte = 0.4e-9;
    return m;
  }
};

}  // namespace tsbo::par
