#pragma once
// MPI-like communicator over the in-process SPMD runtime.
//
// Each simulated rank is a thread; collectives run over shared memory
// with deterministic reduction order (every rank computes the identical
// rank-0..p-1 sum), so redundant small factorizations — Cholesky of the
// reduced Gram matrix, the projected least-squares solve — produce
// bit-identical results on all ranks exactly as the paper's Trilinos
// implementation relies on.  The attached NetworkModel injects fabric
// latency per operation; CommStats counts synchronizations so tests can
// assert the paper's per-algorithm sync counts (5 / 2 / 1 + s/bs).
//
// Split-phase runtime: every collective exists in a nonblocking
// begin+wait form (iallreduce_sum / iallreduce_sum_dd / ibroadcast
// returning a CommRequest, and the exchange_begin/exchange_end pair for
// neighbor rounds).  The modeled fabric latency of a split-phase
// operation is *discounted* by the wall-clock compute performed between
// begin and wait — CommStats::overlapped_seconds accounts the hidden
// share, injected_seconds the exposed share actually spun — so
// compute–communication overlap changes the measured time exactly as
// MPI_Iallreduce + MPI_Wait would on a real fabric, while the reduced
// values themselves stay bitwise independent of the overlap window.
// The blocking collectives are thin begin+wait pairs over the same
// machinery (with no overlap credit: their window contains no compute).
//
// Multiple requests may be in flight per rank (up to kMaxInflight),
// including neighbor exchanges nested inside a pending collective
// window — the pipelined s-step runtime launches next-panel MPK halo
// exchanges while the stage-1 Gram reduce is outstanding.  Per-window
// overlap accounting mirrors a real fabric: every pending operation
// progresses concurrently in wall-clock time, so one stretch of
// compute earns credit in EVERY window that spans it, and the exposed
// spin of one wait counts as progress for its still-pending siblings
// (the NIC keeps working while the host blocks in MPI_Wait).  Waits
// must occur in the same order on every rank (the usual MPI collective
// ordering contract); out-of-order with respect to issue order is
// fine.

#include "par/network_model.hpp"
#include "util/fault.hpp"

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace tsbo::par {

class Communicator;

/// Per-rank communication counters.
struct CommStats {
  std::uint64_t allreduces = 0;
  std::uint64_t broadcasts = 0;
  std::uint64_t p2p_rounds = 0;
  std::uint64_t barriers = 0;
  std::uint64_t bytes_allreduced = 0;
  std::uint64_t bytes_exchanged = 0;  // p2p payload pulled by this rank
  /// Modeled fabric time actually spun (exposed to the critical path).
  double injected_seconds = 0.0;
  /// Modeled fabric time hidden behind compute between a split-phase
  /// begin and its wait.  injected + overlapped == total modeled cost.
  double overlapped_seconds = 0.0;
};

/// after - before, for windowed accounting around a solver call.
CommStats subtract(const CommStats& after, const CommStats& before);

/// Number of split-phase collectives a rank may have in flight at
/// once (the publication slots are a small ring, like an MPI
/// implementation with a few pre-posted envelopes).
inline constexpr int kMaxInflight = 8;

/// Handle for one in-flight split-phase collective.  Move-only; up to
/// kMaxInflight requests may be outstanding per rank, and waits may be
/// issued in any order as long as every rank waits in the SAME order.
/// wait() completes the operation — called implicitly by the
/// destructor so an exception unwinding through an overlap window
/// keeps all ranks in lockstep (siblings still pending are unaffected).
/// Between begin and wait the caller must not touch the published
/// buffers.
class CommRequest {
 public:
  CommRequest() = default;
  CommRequest(CommRequest&& o) noexcept { *this = std::move(o); }
  CommRequest& operator=(CommRequest&& o) noexcept;
  CommRequest(const CommRequest&) = delete;
  CommRequest& operator=(const CommRequest&) = delete;
  ~CommRequest() { wait(); }

  /// Completes the collective: synchronizes with peers, materializes
  /// the result in the begin-call's buffers, and injects the exposed
  /// share of the modeled latency.  No-op on an empty/completed handle.
  void wait();

  /// Opts this request out of overlap accounting: the full modeled
  /// latency is charged as exposed at wait().  The blocking wrappers
  /// (Communicator's and the ortho layer's) use it so only engineered
  /// begin/wait windows earn overlapped_seconds.
  void no_overlap_credit() { overlap_credit_ = false; }

  [[nodiscard]] bool active() const { return comm_ != nullptr; }

 private:
  friend class Communicator;
  enum class Kind { kSum, kSumDd, kBcast };

  Communicator* comm_ = nullptr;
  Kind kind_ = Kind::kSum;
  std::span<double> a_{};  // inout payload (hi plane for kSumDd)
  std::span<double> b_{};  // lo plane (kSumDd only)
  int root_ = 0;           // kBcast only
  int slot_ = 0;           // publication-slot index within the ring
  double modeled_seconds_ = 0.0;
  bool overlap_credit_ = true;  // blocking wrappers opt out
  std::chrono::steady_clock::time_point begin_{};
};

/// Shared state of one SPMD execution; owned by spmd_run().
class SpmdContext {
 public:
  SpmdContext(int nranks, NetworkModel model);

  [[nodiscard]] int nranks() const { return nranks_; }
  [[nodiscard]] const NetworkModel& model() const { return model_; }

 private:
  friend class Communicator;

  int nranks_;
  NetworkModel model_;

  // Sense-reversing central barrier.
  std::atomic<int> arrived_{0};
  std::atomic<int> sense_{0};

  // Publication slots for zero-copy collectives: a ring of kMaxInflight
  // entries per rank, so several split-phase requests can be in flight
  // at once.  Slot (rank, s) lives at index rank * kMaxInflight + s.
  // Slot assignment is rank-local but deterministic, and SPMD programs
  // issue collectives in the same order on every rank, so all ranks
  // agree on which slot a given logical collective occupies.
  std::vector<const void*> slots_;
  std::vector<std::size_t> sizes_;

  // Dedicated per-rank slot for neighbor exchanges, separate from the
  // collective ring so a halo exchange can open inside a pending
  // collective window without clobbering its publication.
  std::vector<const void*> xslots_;
  std::vector<std::size_t> xsizes_;
};

/// Rank-local handle used inside spmd_run() bodies.  Not thread-safe
/// across ranks by design: one Communicator per rank thread.
class Communicator {
 public:
  Communicator(SpmdContext& ctx, int rank);

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return ctx_.nranks_; }

  /// Blocks until all ranks arrive.
  void barrier();

  /// In-place sum-reduction of `inout` across all ranks; every rank
  /// receives the identical deterministic sum.  One logical global
  /// synchronization (the paper's unit of communication accounting).
  void allreduce_sum(std::span<double> inout);

  /// In-place max-reduction.
  void allreduce_max(std::span<double> inout);

  /// In-place sum-reduction of pair-form double-double values: element
  /// i of the global sum is the dd accumulation (util/eft.hpp, rank
  /// 0..p-1 order) of every rank's hi[i] + lo[i].  Summing the hi and
  /// lo planes with two plain allreduce_sum calls would re-round each
  /// partial to double and forfeit the extended precision; this fused
  /// form keeps the cross-rank Gram reduction at u_dd ~ 4.9e-32 and
  /// counts as ONE synchronization (it is one fused message of 2x the
  /// payload, exactly like MPI's MPI_SUM on a paired custom datatype).
  void allreduce_sum_dd(std::span<double> hi, std::span<double> lo);

  /// Split-phase counterparts: publish the payload and return
  /// immediately; the reduction completes (and the result lands in the
  /// caller's buffers) at CommRequest::wait().  Compute performed
  /// between begin and wait is credited against the modeled fabric
  /// latency (CommStats::overlapped_seconds).  The sum is bitwise
  /// identical to the blocking form regardless of the overlap window.
  [[nodiscard]] CommRequest iallreduce_sum(std::span<double> inout);
  [[nodiscard]] CommRequest iallreduce_sum_dd(std::span<double> hi,
                                              std::span<double> lo);

  /// Convenience scalar all-reduce.
  double allreduce_sum_scalar(double x);
  double allreduce_max_scalar(double x);

  /// Copies root's buffer into every rank's `data`.
  void broadcast(std::span<double> data, int root);

  /// Split-phase broadcast: root publishes at begin; every rank's
  /// `data` holds root's payload after wait().
  [[nodiscard]] CommRequest ibroadcast(std::span<double> data, int root);

  /// Gathers variable-length rank-local blocks to `root`; returns the
  /// concatenation (rank order) on root and an empty vector elsewhere.
  std::vector<double> gather(std::span<const double> local, int root);

  /// One neighbor-exchange round: the caller publishes its own send
  /// buffer and reads peers' buffers; the communicator handles the
  /// two-phase synchronization and charges one p2p round to the cost
  /// model — the per-peer overload sums each peer message's cost
  /// (NetworkModel::p2p_round_seconds, single-port injection), the
  /// legacy single-size overloads charge one message.  Compute
  /// performed between exchange_begin and exchange_end (interior SpMV
  /// rows in the overlapped DistCsr::spmv) is credited against the
  /// modeled p2p latency, mirroring MPI_Irecv/Isend + interior work +
  /// Waitall.  An exchange may nest inside pending split-phase
  /// collective windows (it uses dedicated publication slots).
  ///
  /// Usage:
  ///   comm.exchange_begin(my_send_buffer);
  ///   ... local compute, then read peer buffers via peer_buffer(r) ...
  ///   comm.exchange_end(peer_recv_bytes, total_recv_bytes);
  void exchange_begin(std::span<const double> send);
  [[nodiscard]] std::span<const double> peer_buffer(int peer) const;
  void exchange_end(std::span<const std::size_t> peer_recv_bytes,
                    std::size_t total_recv_bytes);
  void exchange_end(std::size_t max_recv_bytes, std::size_t total_recv_bytes);
  void exchange_end(std::size_t max_recv_bytes) {
    exchange_end(max_recv_bytes, max_recv_bytes);
  }

  [[nodiscard]] const CommStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CommStats{}; }

  /// Installs the fault-injection seam for this rank (util/fault.hpp);
  /// nullptr (the default) disables it with zero overhead on the hot
  /// paths.  Borrowed, job-scoped; the api facade installs it at the
  /// top of each spmd body.  The comm layer consults the
  /// `comm.allreduce` site at the entry of every (i)allreduce; kernel
  /// layers (DistCsr::spmv, the ortho Gram) consult their own sites
  /// through consult_fault() on the communicator they already hold.
  void set_fault_injector(FaultInjector* injector) { fault_ = injector; }
  [[nodiscard]] FaultInjector* fault_injector() const { return fault_; }

  /// Consults a named fault site on this rank; no-op without an
  /// installed injector.
  void consult_fault(FaultSite site,
                     const FaultInjector::CorruptFn& corrupt = {}) {
    if (fault_ != nullptr) fault_->consult(rank_, site, corrupt);
  }

 private:
  friend class CommRequest;

  void inject(double seconds);
  /// Charges `modeled` fabric seconds, crediting `compute_seconds` of
  /// it as overlapped and spinning only the exposed remainder.
  void inject_with_overlap(double modeled, double compute_seconds);
  CommRequest make_request(CommRequest::Kind kind, std::span<double> a,
                           std::span<double> b, int root, double modeled);
  void complete(CommRequest& req);
  /// Publishes `data` in the rank's collective ring slot `slot`.
  void publish(int slot, std::span<const double> data);
  [[nodiscard]] const double* peer_slot(int peer, int slot) const;

  SpmdContext& ctx_;
  int rank_;
  int local_sense_ = 0;
  int inflight_ = 0;  // outstanding split-phase collectives
  bool slot_busy_[kMaxInflight] = {};
  std::chrono::steady_clock::time_point exchange_begin_{};
  bool exchange_open_ = false;
  // Per-slot staging for dd publications: the packed [hi..., lo...]
  // payload must stay stable for the life of its request, so each ring
  // slot owns a buffer.  Non-dd sums publish the caller's buffer
  // directly (zero copy) and only use staging at fold time.
  std::vector<double> staging_[kMaxInflight];
  std::vector<double> scratch_;   // fold workspace (waits are serialized)
  std::vector<double> scratch2_;  // dd fold result (staging stays published)
  CommStats stats_;
  FaultInjector* fault_ = nullptr;  // borrowed, job-scoped (may be null)
};

}  // namespace tsbo::par
