#pragma once
// MPI-like communicator over the in-process SPMD runtime.
//
// Each simulated rank is a thread; collectives run over shared memory
// with deterministic reduction order (every rank computes the identical
// rank-0..p-1 sum), so redundant small factorizations — Cholesky of the
// reduced Gram matrix, the projected least-squares solve — produce
// bit-identical results on all ranks exactly as the paper's Trilinos
// implementation relies on.  The attached NetworkModel injects fabric
// latency per operation; CommStats counts synchronizations so tests can
// assert the paper's per-algorithm sync counts (5 / 2 / 1 + s/bs).

#include "par/network_model.hpp"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace tsbo::par {

/// Per-rank communication counters.
struct CommStats {
  std::uint64_t allreduces = 0;
  std::uint64_t broadcasts = 0;
  std::uint64_t p2p_rounds = 0;
  std::uint64_t barriers = 0;
  std::uint64_t bytes_allreduced = 0;
  double injected_seconds = 0.0;  // total modeled fabric time
};

/// after - before, for windowed accounting around a solver call.
CommStats subtract(const CommStats& after, const CommStats& before);

/// Shared state of one SPMD execution; owned by spmd_run().
class SpmdContext {
 public:
  SpmdContext(int nranks, NetworkModel model);

  [[nodiscard]] int nranks() const { return nranks_; }
  [[nodiscard]] const NetworkModel& model() const { return model_; }

 private:
  friend class Communicator;

  int nranks_;
  NetworkModel model_;

  // Sense-reversing central barrier.
  std::atomic<int> arrived_{0};
  std::atomic<int> sense_{0};

  // Publication slots for zero-copy collectives (one per rank).
  std::vector<const void*> slots_;
  std::vector<std::size_t> sizes_;
};

/// Rank-local handle used inside spmd_run() bodies.  Not thread-safe
/// across ranks by design: one Communicator per rank thread.
class Communicator {
 public:
  Communicator(SpmdContext& ctx, int rank);

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return ctx_.nranks_; }

  /// Blocks until all ranks arrive.
  void barrier();

  /// In-place sum-reduction of `inout` across all ranks; every rank
  /// receives the identical deterministic sum.  One logical global
  /// synchronization (the paper's unit of communication accounting).
  void allreduce_sum(std::span<double> inout);

  /// In-place max-reduction.
  void allreduce_max(std::span<double> inout);

  /// In-place sum-reduction of pair-form double-double values: element
  /// i of the global sum is the dd accumulation (util/eft.hpp, rank
  /// 0..p-1 order) of every rank's hi[i] + lo[i].  Summing the hi and
  /// lo planes with two plain allreduce_sum calls would re-round each
  /// partial to double and forfeit the extended precision; this fused
  /// form keeps the cross-rank Gram reduction at u_dd ~ 4.9e-32 and
  /// counts as ONE synchronization (it is one fused message of 2x the
  /// payload, exactly like MPI's MPI_SUM on a paired custom datatype).
  void allreduce_sum_dd(std::span<double> hi, std::span<double> lo);

  /// Convenience scalar all-reduce.
  double allreduce_sum_scalar(double x);
  double allreduce_max_scalar(double x);

  /// Copies root's buffer into every rank's `data`.
  void broadcast(std::span<double> data, int root);

  /// Gathers variable-length rank-local blocks to `root`; returns the
  /// concatenation (rank order) on root and an empty vector elsewhere.
  std::vector<double> gather(std::span<const double> local, int root);

  /// One neighbor-exchange round: `pull` describes, for each source
  /// rank this rank needs data from, a callback-free copy plan.  The
  /// caller publishes its own send buffer and reads peers' buffers; the
  /// communicator handles the two-phase synchronization and charges one
  /// p2p round of `max_recv_bytes` to the cost model.
  ///
  /// Usage:
  ///   comm.exchange_begin(my_send_buffer);
  ///   ... read peer buffers via comm.peer_buffer(r) ...
  ///   comm.exchange_end(max_recv_bytes);
  void exchange_begin(std::span<const double> send);
  [[nodiscard]] std::span<const double> peer_buffer(int peer) const;
  void exchange_end(std::size_t max_recv_bytes);

  [[nodiscard]] const CommStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CommStats{}; }

 private:
  void inject(double seconds);

  SpmdContext& ctx_;
  int rank_;
  int local_sense_ = 0;
  std::vector<double> scratch_;   // published send buffer / reduce result
  std::vector<double> scratch2_;  // dd fold result (scratch_ stays published)
  CommStats stats_;
};

}  // namespace tsbo::par
