#pragma once
// Persistent worker-thread pool with blocked-range parallel_for.
//
// Used for node-local data parallelism (matrix generation, single-rank
// kernels).  The SPMD distributed runtime in spmd.hpp deliberately does
// NOT use this pool: there, each simulated MPI rank is its own thread
// with rank-private data, mirroring the one-rank-per-GPU layout of the
// paper's Summit runs.

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tsbo::par {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Runs fn(begin, end) over a partition of [0, n) across the workers
  /// and the calling thread; blocks until all chunks complete.  If any
  /// chunk throws, the first exception (in completion order) is
  /// rethrown on the calling thread after all chunks have finished; the
  /// pool stays usable.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// Like parallel_for, but with a caller-chosen chunk size: chunk i is
  /// [i*chunk, min(n, (i+1)*chunk)), so the work partition depends only
  /// on (n, chunk) — never on the worker count.  Chunks are claimed in
  /// ascending order (one shared monotone cursor), so chunk i+1 never
  /// starts before chunk i has been handed to a lane.  chunk = 1 makes
  /// every index its own work item — the solver service schedules whole
  /// solve jobs this way.  No small-n inline shortcut: even n = 1 goes
  /// through the claim protocol (it simply runs on the calling thread).
  void parallel_for_chunked(
      std::size_t n, std::size_t chunk,
      const std::function<void(std::size_t, std::size_t)>& fn);

  /// Process-wide default pool (lazily constructed).
  static ThreadPool& global();

 private:
  void worker_loop();

  struct Job {
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    std::size_t n = 0;
    std::size_t chunk = 0;
    std::size_t next = 0;       // next chunk start (guarded by mutex)
    std::size_t remaining = 0;  // unfinished chunks
    std::exception_ptr error;   // first exception thrown by a chunk
  };

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  Job job_;
  bool has_job_ = false;
  bool stop_ = false;
  std::uint64_t generation_ = 0;
};

}  // namespace tsbo::par
