#pragma once
// SPMD launcher: runs fn(comm) on `nranks` rank-threads.
//
// This is the reproduction's stand-in for `mpirun -np p`: every rank is
// a thread with private data, communicating only through Communicator
// collectives.  Ranks are pinned round-robin to cores when the host has
// enough of them, so strong-scaling measurements are not distorted by
// the OS migrating rank threads.

#include "par/communicator.hpp"

#include <functional>

namespace tsbo::par {

/// Runs `fn` on nranks rank-threads sharing one SpmdContext.  The first
/// exception thrown by any rank is rethrown on the caller after all
/// ranks have been joined.
void spmd_run(int nranks, const NetworkModel& model,
              const std::function<void(Communicator&)>& fn);

/// Convenience overload without latency injection.
void spmd_run(int nranks, const std::function<void(Communicator&)>& fn);

/// Splits n rows into `nranks` contiguous blocks (1-D block row
/// partition, paper Section VII); returns the [begin, end) of `rank`.
/// Remainder rows go to the lowest ranks, matching Tpetra's default.
struct RowRange {
  long begin = 0;
  long end = 0;
  [[nodiscard]] long size() const { return end - begin; }
};
RowRange block_row_range(long n, int nranks, int rank);

}  // namespace tsbo::par
