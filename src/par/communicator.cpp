#include "par/communicator.hpp"

#include "util/eft.hpp"
#include "util/timer.hpp"

#include <cassert>
#include <cstring>
#include <utility>
#include <vector>

namespace tsbo::par {

CommStats subtract(const CommStats& after, const CommStats& before) {
  CommStats d;
  d.allreduces = after.allreduces - before.allreduces;
  d.broadcasts = after.broadcasts - before.broadcasts;
  d.p2p_rounds = after.p2p_rounds - before.p2p_rounds;
  d.barriers = after.barriers - before.barriers;
  d.bytes_allreduced = after.bytes_allreduced - before.bytes_allreduced;
  d.bytes_exchanged = after.bytes_exchanged - before.bytes_exchanged;
  d.injected_seconds = after.injected_seconds - before.injected_seconds;
  d.overlapped_seconds = after.overlapped_seconds - before.overlapped_seconds;
  return d;
}

CommRequest& CommRequest::operator=(CommRequest&& o) noexcept {
  if (this != &o) {
    wait();  // complete anything this handle still owns
    comm_ = std::exchange(o.comm_, nullptr);
    kind_ = o.kind_;
    a_ = o.a_;
    b_ = o.b_;
    root_ = o.root_;
    slot_ = o.slot_;
    modeled_seconds_ = o.modeled_seconds_;
    overlap_credit_ = o.overlap_credit_;
    begin_ = o.begin_;
  }
  return *this;
}

void CommRequest::wait() {
  if (comm_ == nullptr) return;
  Communicator* c = std::exchange(comm_, nullptr);
  c->complete(*this);
}

SpmdContext::SpmdContext(int nranks, NetworkModel model)
    : nranks_(nranks),
      model_(model),
      slots_(static_cast<std::size_t>(nranks) * kMaxInflight, nullptr),
      sizes_(static_cast<std::size_t>(nranks) * kMaxInflight, 0),
      xslots_(static_cast<std::size_t>(nranks), nullptr),
      xsizes_(static_cast<std::size_t>(nranks), 0) {
  assert(nranks >= 1);
}

Communicator::Communicator(SpmdContext& ctx, int rank)
    : ctx_(ctx), rank_(rank) {
  assert(rank >= 0 && rank < ctx.nranks());
}

void Communicator::barrier() {
  stats_.barriers += 1;
  if (ctx_.nranks_ == 1) return;
  const int my_sense = local_sense_ ^= 1;
  if (ctx_.arrived_.fetch_add(1, std::memory_order_acq_rel) ==
      ctx_.nranks_ - 1) {
    ctx_.arrived_.store(0, std::memory_order_relaxed);
    ctx_.sense_.store(my_sense, std::memory_order_release);
  } else {
    while (ctx_.sense_.load(std::memory_order_acquire) != my_sense) {
      // spin
    }
  }
}

void Communicator::inject(double seconds) {
  if (seconds <= 0.0) return;
  stats_.injected_seconds += seconds;
  util::spin_wait(seconds);
}

void Communicator::inject_with_overlap(double modeled,
                                       double compute_seconds) {
  if (modeled <= 0.0) return;
  const NetworkModel::OverlapSplit split =
      NetworkModel::split_overlap(modeled, compute_seconds);
  stats_.overlapped_seconds += split.overlapped;
  inject(split.exposed);
}

CommRequest Communicator::make_request(CommRequest::Kind kind,
                                       std::span<double> a,
                                       std::span<double> b, int root,
                                       double modeled) {
  // Deterministic first-free scan: SPMD ranks issue collectives in
  // identical order, so every rank assigns the same ring slot to the
  // same logical collective and complete() can read peers' slots by
  // its own index.
  int slot = 0;
  while (slot < kMaxInflight && slot_busy_[slot]) ++slot;
  assert(slot < kMaxInflight &&
         "too many split-phase collectives in flight (kMaxInflight)");
  slot_busy_[slot] = true;
  ++inflight_;
  CommRequest req;
  req.comm_ = this;
  req.kind_ = kind;
  req.a_ = a;
  req.b_ = b;
  req.root_ = root;
  req.slot_ = slot;
  req.modeled_seconds_ = modeled;
  req.begin_ = std::chrono::steady_clock::now();
  return req;
}

void Communicator::publish(int slot, std::span<const double> data) {
  const std::size_t idx =
      static_cast<std::size_t>(rank_) * kMaxInflight +
      static_cast<std::size_t>(slot);
  ctx_.slots_[idx] = data.data();
  ctx_.sizes_[idx] = data.size();
}

const double* Communicator::peer_slot(int peer, int slot) const {
  const std::size_t idx =
      static_cast<std::size_t>(peer) * kMaxInflight +
      static_cast<std::size_t>(slot);
  return static_cast<const double*>(ctx_.slots_[idx]);
}

CommRequest Communicator::iallreduce_sum(std::span<double> inout) {
  // Fault seam, before any publication/accounting: a throw here leaves
  // no half-open collective on any rank.  A corrupt flips the same bit
  // of every rank's local contribution at the same index.
  consult_fault(FaultSite::kCommAllreduce, [inout](long ordinal) {
    if (!inout.empty()) {
      FaultInjector::flip_bit(
          inout[static_cast<std::size_t>(ordinal) % inout.size()]);
    }
  });
  stats_.allreduces += 1;
  stats_.bytes_allreduced += inout.size_bytes();
  CommRequest req = make_request(
      CommRequest::Kind::kSum, inout, {}, 0,
      ctx_.model_.allreduce_seconds(ctx_.nranks_, inout.size_bytes()));
  if (ctx_.nranks_ > 1) publish(req.slot_, inout);
  return req;
}

CommRequest Communicator::iallreduce_sum_dd(std::span<double> hi,
                                            std::span<double> lo) {
  assert(hi.size() == lo.size());
  const std::size_t n = hi.size();
  consult_fault(FaultSite::kCommAllreduce, [hi](long ordinal) {
    if (!hi.empty()) {
      FaultInjector::flip_bit(
          hi[static_cast<std::size_t>(ordinal) % hi.size()]);
    }
  });
  stats_.allreduces += 1;
  stats_.bytes_allreduced += hi.size_bytes() + lo.size_bytes();
  CommRequest req =
      make_request(CommRequest::Kind::kSumDd, hi, lo, 0,
                   ctx_.model_.allreduce_seconds(
                       ctx_.nranks_, hi.size_bytes() + lo.size_bytes()));
  if (ctx_.nranks_ > 1) {
    // Publish one packed [hi..., lo...] buffer per rank; every rank
    // then folds the pairs in rank order with normalized dd adds at
    // wait(), so all ranks hold the identical extended-precision sum.
    // Each ring slot owns its staging buffer so the packed payload
    // stays stable while sibling requests come and go.
    std::vector<double>& st = staging_[req.slot_];
    st.resize(2 * n);
    std::memcpy(st.data(), hi.data(), hi.size_bytes());
    std::memcpy(st.data() + n, lo.data(), lo.size_bytes());
    publish(req.slot_, st);
  }
  return req;
}

CommRequest Communicator::ibroadcast(std::span<double> data, int root) {
  stats_.broadcasts += 1;
  CommRequest req = make_request(
      CommRequest::Kind::kBcast, data, {}, root,
      ctx_.model_.allreduce_seconds(ctx_.nranks_, data.size_bytes()));
  if (ctx_.nranks_ > 1 && rank_ == root) publish(req.slot_, data);
  return req;
}

void Communicator::complete(CommRequest& req) {
  assert(inflight_ > 0 && slot_busy_[req.slot_]);
  // Compute performed since begin is what the fabric latency hides.
  // The wall-clock window includes exposed spins of earlier waits on
  // purpose: the fabric progresses every pending operation while the
  // host blocks in one wait, exactly like overlapping MPI requests.
  const double elapsed =
      req.overlap_credit_
          ? std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          req.begin_)
                .count()
          : 0.0;
  const int slot = req.slot_;
  [[maybe_unused]] const auto slot_size = [&](int r) {
    return ctx_.sizes_[static_cast<std::size_t>(r) * kMaxInflight +
                       static_cast<std::size_t>(slot)];
  };
  switch (req.kind_) {
    case CommRequest::Kind::kSum: {
      std::span<double> inout = req.a_;
      if (ctx_.nranks_ > 1) {
        barrier();  // all ranks published
        // Deterministic order: sum rank 0..p-1 contributions.  Waits
        // are serialized on each rank, so one fold workspace suffices
        // even with siblings still pending in other slots.
        scratch_.assign(inout.size(), 0.0);
        for (int r = 0; r < ctx_.nranks_; ++r) {
          assert(slot_size(r) == inout.size());
          const double* src = peer_slot(r, slot);
          for (std::size_t i = 0; i < inout.size(); ++i) scratch_[i] += src[i];
        }
        barrier();  // all ranks finished reading before buffers are reused
        std::memcpy(inout.data(), scratch_.data(), inout.size_bytes());
      }
      break;
    }
    case CommRequest::Kind::kSumDd: {
      std::span<double> hi = req.a_;
      std::span<double> lo = req.b_;
      const std::size_t n = hi.size();
      if (ctx_.nranks_ > 1) {
        barrier();
        scratch2_.resize(2 * n);
        for (std::size_t i = 0; i < n; ++i) {
          eft::dd acc;
          for (int r = 0; r < ctx_.nranks_; ++r) {
            assert(slot_size(r) == 2 * n);
            const double* src = peer_slot(r, slot);
            eft::dd_add(acc, eft::dd{src[i], src[n + i]});
          }
          scratch2_[i] = acc.hi;
          scratch2_[n + i] = acc.lo;
        }
        barrier();  // all ranks finished reading before buffers are reused
        std::memcpy(hi.data(), scratch2_.data(), hi.size_bytes());
        std::memcpy(lo.data(), scratch2_.data() + n, lo.size_bytes());
      }
      break;
    }
    case CommRequest::Kind::kBcast: {
      std::span<double> data = req.a_;
      if (ctx_.nranks_ > 1) {
        barrier();  // root published
        if (rank_ != req.root_) {
          assert(slot_size(req.root_) == data.size());
          std::memcpy(data.data(), peer_slot(req.root_, slot),
                      data.size_bytes());
        }
        barrier();
      }
      break;
    }
  }
  slot_busy_[slot] = false;
  --inflight_;
  inject_with_overlap(req.modeled_seconds_, elapsed);
}

void Communicator::allreduce_sum(std::span<double> inout) {
  CommRequest req = iallreduce_sum(inout);
  req.no_overlap_credit();  // no compute inside a blocking call
  req.wait();
}

void Communicator::allreduce_sum_dd(std::span<double> hi,
                                    std::span<double> lo) {
  CommRequest req = iallreduce_sum_dd(hi, lo);
  req.no_overlap_credit();
  req.wait();
}

void Communicator::allreduce_max(std::span<double> inout) {
  consult_fault(FaultSite::kCommAllreduce, [inout](long ordinal) {
    if (!inout.empty()) {
      FaultInjector::flip_bit(
          inout[static_cast<std::size_t>(ordinal) % inout.size()]);
    }
  });
  stats_.allreduces += 1;
  stats_.bytes_allreduced += inout.size_bytes();
  if (ctx_.nranks_ > 1) {
    // Ticket a ring slot so this blocking collective can run while
    // split-phase siblings are pending: same deterministic scan as
    // make_request, released before returning.
    int slot = 0;
    while (slot < kMaxInflight && slot_busy_[slot]) ++slot;
    assert(slot < kMaxInflight);
    slot_busy_[slot] = true;
    publish(slot, inout);
    barrier();
    scratch_.assign(inout.size(), 0.0);
    for (std::size_t i = 0; i < inout.size(); ++i) {
      double m = peer_slot(0, slot)[i];
      for (int r = 1; r < ctx_.nranks_; ++r) {
        const double v = peer_slot(r, slot)[i];
        m = v > m ? v : m;
      }
      scratch_[i] = m;
    }
    barrier();
    std::memcpy(inout.data(), scratch_.data(), inout.size_bytes());
    slot_busy_[slot] = false;
  }
  inject(ctx_.model_.allreduce_seconds(ctx_.nranks_, inout.size_bytes()));
}

double Communicator::allreduce_sum_scalar(double x) {
  allreduce_sum(std::span<double>(&x, 1));
  return x;
}

double Communicator::allreduce_max_scalar(double x) {
  allreduce_max(std::span<double>(&x, 1));
  return x;
}

void Communicator::broadcast(std::span<double> data, int root) {
  CommRequest req = ibroadcast(data, root);
  req.no_overlap_credit();
  req.wait();
}

std::vector<double> Communicator::gather(std::span<const double> local,
                                         int root) {
  int slot = 0;  // ticketed like allreduce_max; nests under siblings
  while (slot < kMaxInflight && slot_busy_[slot]) ++slot;
  assert(slot < kMaxInflight);
  slot_busy_[slot] = true;
  publish(slot, local);
  barrier();
  std::vector<double> out;
  if (rank_ == root) {
    std::size_t total = 0;
    for (int r = 0; r < ctx_.nranks_; ++r) total += ctx_.sizes_[
        static_cast<std::size_t>(r) * kMaxInflight +
        static_cast<std::size_t>(slot)];
    out.reserve(total);
    for (int r = 0; r < ctx_.nranks_; ++r) {
      const double* src = peer_slot(r, slot);
      const std::size_t sz = ctx_.sizes_[
          static_cast<std::size_t>(r) * kMaxInflight +
          static_cast<std::size_t>(slot)];
      out.insert(out.end(), src, src + sz);
    }
  }
  barrier();
  slot_busy_[slot] = false;
  return out;
}

void Communicator::exchange_begin(std::span<const double> send) {
  assert(!exchange_open_ && "one neighbor exchange at a time");
  exchange_open_ = true;
  ctx_.xslots_[rank_] = send.data();
  ctx_.xsizes_[rank_] = send.size();
  barrier();
  // The overlap window opens once every peer has published: compute
  // from here to exchange_end stands in for interior work behind
  // MPI_Irecv/Isend.
  exchange_begin_ = std::chrono::steady_clock::now();
}

std::span<const double> Communicator::peer_buffer(int peer) const {
  assert(peer >= 0 && peer < ctx_.nranks_);
  return {static_cast<const double*>(ctx_.xslots_[peer]),
          ctx_.xsizes_[peer]};
}

void Communicator::exchange_end(std::span<const std::size_t> peer_recv_bytes,
                                std::size_t total_recv_bytes) {
  assert(exchange_open_);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    exchange_begin_)
          .count();
  barrier();
  exchange_open_ = false;
  stats_.p2p_rounds += 1;
  stats_.bytes_exchanged += total_recv_bytes;
  inject_with_overlap(ctx_.model_.p2p_round_seconds(peer_recv_bytes), elapsed);
}

void Communicator::exchange_end(std::size_t max_recv_bytes,
                                std::size_t total_recv_bytes) {
  // Legacy single-size form: one message per round.  Identical cost to
  // a one-element per-peer round, so delegate.
  const std::size_t one[] = {max_recv_bytes};
  exchange_end(std::span<const std::size_t>(one, 1), total_recv_bytes);
}

}  // namespace tsbo::par
