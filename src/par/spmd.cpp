#include "par/spmd.hpp"

#include "par/config.hpp"

#include <algorithm>
#include <cassert>
#include <exception>
#include <thread>
#include <vector>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace tsbo::par {

namespace {

void pin_to_core(unsigned core) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(core % std::max(1u, std::thread::hardware_concurrency()), &set);
  pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)core;
#endif
}

}  // namespace

void spmd_run(int nranks, const NetworkModel& model,
              const std::function<void(Communicator&)>& fn) {
  assert(nranks >= 1);
  SpmdContext ctx(nranks, model);
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));

  const bool pin = nranks <= static_cast<int>(std::thread::hardware_concurrency());

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      if (pin) pin_to_core(static_cast<unsigned>(r));
      try {
        // Rank threads model MPI processes pinned one-per-core: kernel
        // calls inside a rank stay serial so rank-scaling benchmarks
        // measure rank parallelism, not nested node-level threading.
        ScopedSerial serial;
        Communicator comm(ctx, r);
        fn(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

void spmd_run(int nranks, const std::function<void(Communicator&)>& fn) {
  spmd_run(nranks, NetworkModel::off(), fn);
}

RowRange block_row_range(long n, int nranks, int rank) {
  assert(nranks >= 1 && rank >= 0 && rank < nranks);
  const long base = n / nranks;
  const long rem = n % nranks;
  const long begin = rank * base + std::min<long>(rank, rem);
  const long size = base + (rank < rem ? 1 : 0);
  return {begin, begin + size};
}

}  // namespace tsbo::par
