#include "par/config.hpp"

#include "util/cli.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

namespace tsbo::par {

namespace {

constexpr std::size_t kDefaultGrain = 1 << 14;

unsigned env_threads() {
  const char* s = std::getenv("TSBO_NUM_THREADS");
  if (s == nullptr) return 0;
  const long v = std::strtol(s, nullptr, 10);
  return v > 0 ? static_cast<unsigned>(v) : 0;
}

std::size_t env_grain() {
  const char* s = std::getenv("TSBO_PARALLEL_GRAIN");
  if (s == nullptr) return 0;
  const long v = std::strtol(s, nullptr, 10);
  return v > 0 ? static_cast<std::size_t>(v) : 0;
}

unsigned resolve_threads() {
  const unsigned env = env_threads();
  if (env > 0) return env;
  return std::max(1u, std::thread::hardware_concurrency());
}

struct Config {
  std::mutex mutex;  // guards resolution + pool (re)construction
  std::unique_ptr<ThreadPool> pool;
  // Resolved values, readable lock-free on every kernel invocation
  // (BLAS-1 calls are far too frequent to take a global mutex).
  std::atomic<unsigned> threads{0};        // 0 = not yet resolved
  std::atomic<std::size_t> grain{0};       // 0 = not yet resolved
  std::atomic<ThreadPool*> pool_cache{nullptr};
  std::mutex dispatch;  // held for the duration of a pool dispatch
};

Config& cfg() {
  static Config c;
  return c;
}

// Depth of serial-only regions on this thread: ScopedSerial guards plus
// the dispatchers' own pool dispatches.  Nonzero means "run inline" —
// never touch the dispatch mutex, which the standard forbids try_lock
// on when this same thread already holds it.
thread_local int tl_serial_depth = 0;

}  // namespace

ScopedSerial::ScopedSerial() { ++tl_serial_depth; }
ScopedSerial::~ScopedSerial() { --tl_serial_depth; }

unsigned num_threads() {
  auto& c = cfg();
  const unsigned cached = c.threads.load(std::memory_order_relaxed);
  if (cached != 0) return cached;
  std::lock_guard lock(c.mutex);
  if (c.threads.load(std::memory_order_relaxed) == 0) {
    c.threads.store(resolve_threads(), std::memory_order_relaxed);
  }
  return c.threads.load(std::memory_order_relaxed);
}

void set_num_threads(unsigned n) {
  auto& c = cfg();
  std::lock_guard lock(c.mutex);
  const unsigned resolved = n > 0 ? n : resolve_threads();
  c.threads.store(resolved, std::memory_order_relaxed);
  if (c.pool && c.pool->size() + 1 != resolved) {
    c.pool_cache.store(nullptr, std::memory_order_release);
    c.pool.reset();
  }
}

std::size_t parallel_grain() {
  auto& c = cfg();
  const std::size_t cached = c.grain.load(std::memory_order_relaxed);
  if (cached != 0) return cached;
  std::lock_guard lock(c.mutex);
  if (c.grain.load(std::memory_order_relaxed) == 0) {
    const std::size_t env = env_grain();
    c.grain.store(env > 0 ? env : kDefaultGrain, std::memory_order_relaxed);
  }
  return c.grain.load(std::memory_order_relaxed);
}

void set_parallel_grain(std::size_t grain) {
  auto& c = cfg();
  std::lock_guard lock(c.mutex);
  c.grain.store(grain > 0 ? grain : kDefaultGrain, std::memory_order_relaxed);
}

void configure_from_cli(const util::Cli& cli) {
  const int threads = cli.get_int("threads", 0);
  if (threads > 0) set_num_threads(static_cast<unsigned>(threads));
  const long grain = cli.get_long("parallel-grain", 0);
  if (grain > 0) set_parallel_grain(static_cast<std::size_t>(grain));
}

ThreadPool& pool() {
  auto& c = cfg();
  ThreadPool* cached = c.pool_cache.load(std::memory_order_acquire);
  if (cached != nullptr) return *cached;
  const unsigned threads = num_threads();
  std::lock_guard lock(c.mutex);
  if (!c.pool) c.pool = std::make_unique<ThreadPool>(threads);
  c.pool_cache.store(c.pool.get(), std::memory_order_release);
  return *c.pool;
}

namespace {

/// Runs `work(begin, end)`-style jobs of `njobs` units on the pool,
/// falling back to one inline `work(0, njobs)` call when threading is
/// off, the job is too small for the pool to split (mirrors the
/// ThreadPool's own `n < 2 * nthreads` inline path without paying for
/// the lock), this thread is serial-only, or the pool is busy.
template <typename Work>
void dispatch(std::size_t njobs, std::size_t grain_units, const Work& work) {
  const unsigned threads = num_threads();
  if (tl_serial_depth > 0 || threads <= 1 || njobs < 2 * threads ||
      grain_units < parallel_grain()) {
    work(0, njobs);
    return;
  }
  auto& c = cfg();
  std::unique_lock lock(c.dispatch, std::try_to_lock);
  if (!lock.owns_lock()) {  // concurrent caller on another thread
    work(0, njobs);
    return;
  }
  // Chunks of this job that run on the calling thread must not
  // re-enter the pool (and must not try_lock a mutex this thread
  // holds); worker threads are covered by the busy dispatch mutex.
  ScopedSerial serial;
  pool().parallel_for(njobs, work);
}

}  // namespace

void parallel_for_grained(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  dispatch(n, n, fn);
}

void parallel_for_tiles(
    std::size_t n, std::size_t tile,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (tile == 0) tile = 1;
  const std::size_t ntiles = (n + tile - 1) / tile;
  dispatch(ntiles, n, [&fn, tile, n](std::size_t tb, std::size_t te) {
    fn(tb * tile, std::min(te * tile, n));
  });
}

void parallel_jobs(std::size_t n,
                   const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const auto run_range = [&fn](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  };
  const unsigned threads = num_threads();
  if (tl_serial_depth > 0 || threads <= 1 || n == 1) {
    run_range(0, n);
    return;
  }
  auto& c = cfg();
  std::unique_lock lock(c.dispatch, std::try_to_lock);
  if (!lock.owns_lock()) {  // concurrent caller on another thread
    run_range(0, n);
    return;
  }
  // Job bodies that land on the calling thread must not re-enter the
  // pool; see dispatch() above.  Jobs are coarse by contract, so no
  // grain check: even two jobs are worth a second lane.
  ScopedSerial serial;
  pool().parallel_for_chunked(n, 1, run_range);
}

void for_reduce_chunks(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t nchunks = reduce_chunk_count(n);
  // grain_units = n: reductions amortize dispatch over elements, and
  // their chunk partition is fixed regardless of how this executes.
  dispatch(nchunks, n, [&fn, n](std::size_t cb, std::size_t ce) {
    for (std::size_t ci = cb; ci < ce; ++ci) {
      fn(ci, ci * kReduceChunk, std::min((ci + 1) * kReduceChunk, n));
    }
  });
}

}  // namespace tsbo::par
