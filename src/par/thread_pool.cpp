#include "par/thread_pool.hpp"

#include <algorithm>

namespace tsbo::par {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  // The calling thread participates in parallel_for, so spawn one fewer.
  const unsigned workers = threads > 1 ? threads - 1 : 0;
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t nthreads = workers_.size() + 1;
  if (nthreads == 1 || n < 2 * nthreads) {
    fn(0, n);
    return;
  }
  // ~4 chunks per thread for load balance without excessive contention.
  parallel_for_chunked(n, std::max<std::size_t>(1, n / (4 * nthreads)), fn);
}

void ThreadPool::parallel_for_chunked(
    std::size_t n, std::size_t chunk,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  chunk = std::max<std::size_t>(1, chunk);
  if (workers_.empty()) {
    // Single-lane pool: drain the chunks inline, same ascending order
    // and same error contract (first exception rethrown after every
    // chunk has run).
    std::exception_ptr error;
    for (std::size_t begin = 0; begin < n; begin += chunk) {
      try {
        fn(begin, std::min(begin + chunk, n));
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    if (error) std::rethrow_exception(error);
    return;
  }
  const std::size_t nchunks = (n + chunk - 1) / chunk;

  {
    std::lock_guard lock(mutex_);
    job_ = Job{&fn, n, chunk, 0, nchunks, nullptr};
    has_job_ = true;
    ++generation_;
  }
  cv_work_.notify_all();

  // The caller also consumes chunks.
  for (;;) {
    std::size_t begin, end;
    {
      std::lock_guard lock(mutex_);
      if (job_.next >= job_.n) break;
      begin = job_.next;
      end = std::min(begin + job_.chunk, job_.n);
      job_.next = end;
    }
    try {
      fn(begin, end);
    } catch (...) {
      std::lock_guard lock(mutex_);
      if (!job_.error) job_.error = std::current_exception();
    }
    std::lock_guard lock(mutex_);
    if (--job_.remaining == 0) {
      has_job_ = false;
      cv_done_.notify_all();
      break;
    }
  }

  std::exception_ptr error;
  {
    std::unique_lock lock(mutex_);
    cv_done_.wait(lock, [this] { return !has_job_; });
    error = job_.error;
    job_.error = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    {
      std::unique_lock lock(mutex_);
      cv_work_.wait(lock, [&] { return stop_ || (has_job_ && generation_ != seen); });
      if (stop_) return;
      seen = generation_;
      fn = job_.fn;
    }
    for (;;) {
      std::size_t begin, end;
      {
        std::lock_guard lock(mutex_);
        if (!has_job_ || job_.fn != fn || job_.next >= job_.n) break;
        begin = job_.next;
        end = std::min(begin + job_.chunk, job_.n);
        job_.next = end;
      }
      try {
        (*fn)(begin, end);
      } catch (...) {
        std::lock_guard lock(mutex_);
        if (has_job_ && job_.fn == fn && !job_.error) {
          job_.error = std::current_exception();
        }
      }
      std::lock_guard lock(mutex_);
      if (has_job_ && job_.fn == fn && --job_.remaining == 0) {
        has_job_ = false;
        cv_done_.notify_all();
        break;
      }
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace tsbo::par
