#include "util/stats.hpp"

// Header-only accumulator; translation unit kept so the module has a
// stable home if richer statistics (variance, quantiles) are added.
