#pragma once
// Wall-clock and hierarchical phase timers.
//
// The benchmark harnesses need the same per-phase accounting the paper
// reports (SpMV / Ortho / Total, and within Ortho: dot-products,
// vector-updates, Cholesky+TRSM).  PhaseTimers is a small named-section
// accumulator; each rank of the SPMD runtime owns one, and the harness
// reduces them (max across ranks, as MPI codes conventionally report).

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tsbo::util {

/// Monotonic wall-clock stopwatch with microsecond-ish resolution.
class WallTimer {
 public:
  WallTimer() { reset(); }

  void reset() { start_ = clock::now(); }

  /// Seconds since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Named accumulating phase timers: start/stop pairs add into a bucket.
///
/// Phases are flat names by convention written hierarchically
/// ("ortho/dot", "ortho/update", "spmv", ...).  Not thread-safe: each
/// SPMD rank owns its own instance.
class PhaseTimers {
 public:
  /// Starts (or restarts) the named phase.  Phases may not be nested
  /// with the same name.
  void start(const std::string& name);

  /// Stops the named phase and accumulates the elapsed time.
  void stop(const std::string& name);

  /// Adds raw seconds into a bucket (used when a cost model injects
  /// virtual time).
  void add(const std::string& name, double seconds);

  /// Accumulated seconds of a phase; zero when never started.
  [[nodiscard]] double seconds(const std::string& name) const;

  /// Number of start/stop (or add) events recorded for the phase.
  [[nodiscard]] std::uint64_t count(const std::string& name) const;

  /// All phase names seen, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

  void clear() { buckets_.clear(); }

  /// Element-wise merge of another timer set, taking the *maximum*
  /// per-phase time (the MPI convention for reporting the critical
  /// path across ranks).
  void merge_max(const PhaseTimers& other);

  /// Element-wise sum (for aggregating totals over repetitions).
  void merge_sum(const PhaseTimers& other);

 private:
  struct Bucket {
    double seconds = 0.0;
    std::uint64_t count = 0;
    std::chrono::steady_clock::time_point started{};
    bool running = false;
  };
  std::map<std::string, Bucket> buckets_;
};

/// RAII guard: times a region into `timers[name]`.
class ScopedPhase {
 public:
  ScopedPhase(PhaseTimers& timers, std::string name)
      : timers_(timers), name_(std::move(name)) {
    timers_.start(name_);
  }
  ~ScopedPhase() { timers_.stop(name_); }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseTimers& timers_;
  std::string name_;
};

/// Busy-waits for the given duration with sub-microsecond fidelity.
/// Used by the network cost model to inject latency; sleep_for() is far
/// too coarse at the 5-50 us scale of interconnect latencies.
void spin_wait(double seconds);

}  // namespace tsbo::util
