#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace tsbo::util {

std::string json_quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) return "null";
  return std::string(buf, end);
}

void JsonWriter::indent() {
  out_.push_back('\n');
  out_.append(2 * stack_.size(), ' ');
}

void JsonWriter::before_value() {
  if (done_) throw std::logic_error("JsonWriter: document already complete");
  if (stack_.empty()) return;
  Frame& top = stack_.back();
  if (top.scope == Scope::kObject) {
    if (!top.key_pending) {
      throw std::logic_error("JsonWriter: value in object requires key()");
    }
    top.key_pending = false;
  } else {
    if (top.members > 0) out_.push_back(',');
    indent();
  }
}

void JsonWriter::after_value() {
  if (stack_.empty()) {
    done_ = true;
  } else {
    stack_.back().members += 1;
  }
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_.push_back('{');
  stack_.push_back(Frame{Scope::kObject});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back().scope != Scope::kObject ||
      stack_.back().key_pending) {
    throw std::logic_error("JsonWriter: mismatched end_object()");
  }
  const bool had_members = stack_.back().members > 0;
  stack_.pop_back();
  if (had_members) indent();
  out_.push_back('}');
  after_value();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_.push_back('[');
  stack_.push_back(Frame{Scope::kArray});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back().scope != Scope::kArray) {
    throw std::logic_error("JsonWriter: mismatched end_array()");
  }
  const bool had_members = stack_.back().members > 0;
  stack_.pop_back();
  if (had_members) indent();
  out_.push_back(']');
  after_value();
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  if (done_ || stack_.empty() || stack_.back().scope != Scope::kObject ||
      stack_.back().key_pending) {
    throw std::logic_error("JsonWriter: key() outside an object member slot");
  }
  if (stack_.back().members > 0) out_.push_back(',');
  indent();
  out_ += json_quote(k);
  out_ += ": ";
  stack_.back().key_pending = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  before_value();
  out_ += json_quote(v);
  after_value();
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  out_ += json_number(v);
  after_value();
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  after_value();
  return *this;
}

JsonWriter& JsonWriter::value(long long v) {
  before_value();
  out_ += std::to_string(v);
  after_value();
  return *this;
}

JsonWriter& JsonWriter::value(unsigned long long v) {
  before_value();
  out_ += std::to_string(v);
  after_value();
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  after_value();
  return *this;
}

std::string JsonWriter::str() const {
  if (!stack_.empty()) {
    throw std::logic_error("JsonWriter: str() with open scopes");
  }
  if (!done_) throw std::logic_error("JsonWriter: empty document");
  return out_;
}

// ---- validator -------------------------------------------------------

namespace {

/// Recursive-descent syntax checker; no value materialization.
class Checker {
 public:
  explicit Checker(const std::string& text) : text_(text) {}

  bool run(std::string* error) {
    try {
      skip_ws();
      parse_value(0);
      skip_ws();
      if (pos_ != text_.size()) fail("trailing content");
      return true;
    } catch (const std::runtime_error& e) {
      if (error != nullptr) *error = e.what();
      return false;
    }
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json offset " + std::to_string(pos_) + ": " +
                             why);
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  char next() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_++];
  }

  void expect(char c) {
    if (next() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  void literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (next() != *p) fail(std::string("bad literal, expected ") + word);
    }
  }

  void parse_string() {
    expect('"');
    while (true) {
      const char c = next();
      if (c == '"') return;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character");
      if (c == '\\') {
        const char e = next();
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            const char h = next();
            if (std::isxdigit(static_cast<unsigned char>(h)) == 0) {
              fail("bad \\u escape");
            }
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          fail("bad escape character");
        }
      }
    }
  }

  void digits() {
    if (std::isdigit(static_cast<unsigned char>(peek())) == 0) {
      fail("expected digit");
    }
    while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
  }

  void parse_number() {
    if (peek() == '-') ++pos_;
    if (peek() == '0') {
      ++pos_;
    } else {
      digits();
    }
    if (peek() == '.') {
      ++pos_;
      digits();
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      digits();
    }
  }

  void parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    switch (peek()) {
      case '{': {
        ++pos_;
        skip_ws();
        if (peek() == '}') {
          ++pos_;
          return;
        }
        while (true) {
          skip_ws();
          parse_string();
          skip_ws();
          expect(':');
          skip_ws();
          parse_value(depth + 1);
          skip_ws();
          const char c = next();
          if (c == '}') return;
          if (c != ',') {
            --pos_;
            fail("expected ',' or '}'");
          }
        }
      }
      case '[': {
        ++pos_;
        skip_ws();
        if (peek() == ']') {
          ++pos_;
          return;
        }
        while (true) {
          skip_ws();
          parse_value(depth + 1);
          skip_ws();
          const char c = next();
          if (c == ']') return;
          if (c != ',') {
            --pos_;
            fail("expected ',' or ']'");
          }
        }
      }
      case '"':
        parse_string();
        return;
      case 't':
        literal("true");
        return;
      case 'f':
        literal("false");
        return;
      case 'n':
        literal("null");
        return;
      default:
        parse_number();
        return;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool json_validate(const std::string& text, std::string* error) {
  return Checker(text).run(error);
}

void write_text_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    throw std::runtime_error("write_text_file: cannot write " + path);
  }
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const int closed = std::fclose(f);
  if (written != text.size() || closed != 0) {
    throw std::runtime_error("write_text_file: short write to " + path);
  }
}

}  // namespace tsbo::util
