#pragma once
// Min/mean/max accumulators for the paper's multi-seed studies.

#include <cstddef>
#include <limits>

namespace tsbo::util {

/// Streaming min/mean/max of a sequence of samples (e.g. orthogonality
/// error over 10 random seeds, paper Fig. 6).
class MinMeanMax {
 public:
  void add(double x) {
    min_ = x < min_ ? x : min_;
    max_ = x > max_ ? x : max_;
    sum_ += x;
    ++n_;
  }

  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  [[nodiscard]] std::size_t count() const { return n_; }

 private:
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double sum_ = 0.0;
  std::size_t n_ = 0;
};

}  // namespace tsbo::util
