#include "util/aligned.hpp"

#include <algorithm>
#include <utility>

namespace tsbo::util {

namespace {

double* allocate_doubles(std::size_t n) {
  if (n == 0) return nullptr;
  return static_cast<double*>(
      ::operator new(n * sizeof(double), std::align_val_t{kBufferAlign}));
}

void deallocate_doubles(double* p, std::size_t n) noexcept {
  if (p != nullptr) {
    ::operator delete(p, n * sizeof(double), std::align_val_t{kBufferAlign});
  }
}

}  // namespace

AlignedBuffer::AlignedBuffer(std::size_t n)
    : data_(allocate_doubles(n)), size_(n) {
  set_zero();
}

AlignedBuffer::AlignedBuffer(const AlignedBuffer& other)
    : data_(allocate_doubles(other.size_)), size_(other.size_) {
  // Parallel copy doubles as the first touch of the new pages, using
  // the same contiguous partition the kernels stream with.
  par::parallel_for_grained(size_, [&](std::size_t b, std::size_t e) {
    std::copy(other.data_ + b, other.data_ + e, data_ + b);
  });
}

AlignedBuffer::AlignedBuffer(AlignedBuffer&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

AlignedBuffer& AlignedBuffer::operator=(const AlignedBuffer& other) {
  if (this != &other) *this = AlignedBuffer(other);
  return *this;
}

AlignedBuffer& AlignedBuffer::operator=(AlignedBuffer&& other) noexcept {
  if (this != &other) {
    deallocate_doubles(data_, size_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

AlignedBuffer::~AlignedBuffer() { deallocate_doubles(data_, size_); }

void AlignedBuffer::set_zero() {
  par::parallel_for_grained(size_, [&](std::size_t b, std::size_t e) {
    std::fill(data_ + b, data_ + e, 0.0);
  });
}

}  // namespace tsbo::util
