#pragma once
// Minimal command-line option parsing for bench/example binaries.
//
// Every harness accepts "--key=value" overrides so that paper
// experiments can be re-run at different scales without recompiling,
// e.g.  bench_table03 --nx=1024 --restarts=4 --ranks=1,2,4,8
//
// Typo safety: every has()/get*() call records the key as *known*;
// after a harness has read all its options it calls reject_unknown(),
// which errors on any --flag that was never queried — with a
// did-you-mean hint — instead of silently ignoring e.g. --shceme.

#include <set>
#include <string>
#include <vector>

namespace tsbo::util {

/// Parses "--key=value" and bare "--flag" arguments.  Unknown
/// positional arguments throw; this keeps harness invocations honest.
class Cli {
 public:
  Cli(int argc, char** argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const;
  [[nodiscard]] int get_int(const std::string& key, int fallback) const;
  [[nodiscard]] long get_long(const std::string& key, long fallback) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  /// Comma-separated integer list ("1,2,4,8").
  [[nodiscard]] std::vector<int> get_int_list(const std::string& key,
                                              std::vector<int> fallback) const;

  /// Throws std::invalid_argument if any parsed --key was never queried
  /// by has()/get*(), naming the offender and the closest known key.
  /// Call after all options have been read, before the real work.
  void reject_unknown() const;

  /// Keys present on the command line, in order.
  [[nodiscard]] std::vector<std::string> keys() const;

 private:
  std::vector<std::pair<std::string, std::string>> kv_;
  mutable std::set<std::string> queried_;
};

/// " (did you mean --x?)"-style suggestion: the candidate within
/// Levenshtein distance <= 2 closest to `word`, or "" when none is.
std::string did_you_mean(const std::string& word,
                         const std::vector<std::string>& candidates);

}  // namespace tsbo::util
