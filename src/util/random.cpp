#include "util/random.hpp"

#include <cmath>

namespace tsbo::util {

double Xoshiro256::normal() {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = 2.0 * uniform() - 1.0;
    v = 2.0 * uniform() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  have_spare_ = true;
  return u * factor;
}

void fill_normal(Xoshiro256& rng, std::span<double> out) {
  for (double& x : out) x = rng.normal();
}

void fill_uniform(Xoshiro256& rng, std::span<double> out, double lo, double hi) {
  for (double& x : out) x = rng.uniform(lo, hi);
}

}  // namespace tsbo::util
