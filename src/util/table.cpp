#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace tsbo::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::add(const std::string& cell) {
  if (rows_.empty()) rows_.emplace_back();
  rows_.back().push_back(cell);
  return *this;
}

Table& Table::add(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return add(os.str());
}

Table& Table::add(int v) { return add(std::to_string(v)); }
Table& Table::add(long v) { return add(std::to_string(v)); }
Table& Table::add(unsigned long v) { return add(std::to_string(v)); }

Table& Table::separator() {
  separators_.push_back(rows_.size());
  return *this;
}

std::string Table::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& r) {
    std::string line = "|";
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < r.size() ? r[c] : std::string();
      line += " " + cell + std::string(width[c] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };
  auto render_sep = [&]() {
    std::string line = "+";
    for (std::size_t c = 0; c < width.size(); ++c) {
      line += std::string(width[c] + 2, '-') + "+";
    }
    return line + "\n";
  };

  std::string out = render_sep() + render_row(header_) + render_sep();
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    out += render_row(rows_[i]);
    if (std::find(separators_.begin(), separators_.end(), i + 1) !=
        separators_.end()) {
      out += render_sep();
    }
  }
  out += render_sep();
  return out;
}

void Table::print() const { std::fputs(str().c_str(), stdout); }

std::string speedup_str(double baseline, double value, int precision) {
  if (value <= 0.0) return "-";
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << (baseline / value) << "x";
  return os.str();
}

std::string sci(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", digits, v);
  return buf;
}

}  // namespace tsbo::util
