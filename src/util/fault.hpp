#pragma once
// Deterministic fault injection and cooperative cancellation.
//
// A FaultPlan is a list of (site, ordinal, action) triples: "at the
// ordinal-th visit of the named site, do X".  The instrumented layers
// (par::Communicator collectives, sparse::DistCsr::spmv, the ortho
// layer's fused stage-1 Gram, the solver service's dispatch) consult
// their site through the FaultInjector installed on the rank's
// communicator.  Determinism contract: SPMD ranks issue the
// instrumented operations in identical order, each rank owns its own
// per-site ordinal counters, and a fault fires iff (site, ordinal)
// matches a not-yet-fired plan entry — a pure function of the plan and
// the operation stream.  So every rank fires the same faults at the
// same logical point, trails are identical rank-to-rank, and the whole
// schedule is bitwise-reproducible at any ranks x threads combination
// (the counters never depend on wall clock or thread interleaving).
//
// Ordinal addressing is also rank-count-invariant: sites are consulted
// at logical algorithm boundaries (once per spmv, once per stage-1
// Gram, ...) that exist at every rank count — e.g. DistCsr::spmv
// consults `comm.exchange` even at ranks=1, where no exchange happens.
//
// Actions:
//   throw       InjectedFault raised on every rank at the consult
//               point (before any publication, so no rank is left
//               inside a half-open collective).
//   delay<ms>   every rank sleeps <ms> milliseconds — wall-clock only,
//               values untouched (deadline / overlap tests).
//   corrupt     one double has exponent bit 58 flipped (a 2^64 scale
//               change: huge enough that the residual guard always
//               sees it, finite so the arithmetic keeps running).  The
//               consulting site chooses the payload; the spmv sites
//               address a *global* vector entry, so the corrupted
//               state — and the whole downstream trajectory — is
//               bitwise-identical at any rank count.
//
// The injector is scoped to a JOB, not a solve: fired entries never
// re-fire, so a retried attempt runs clean (the service's
// retry-after-corrupt path converges to the clean solution bitwise).
//
// This generalizes PR 7's SStepGmresConfig::inject_chol_breakdown
// seam from one hard-coded site to a declarative plan.
//
// CancelToken lives here too: the cooperative cancellation flag +
// deadline the krylov solvers poll at restart boundaries.

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

namespace tsbo::par {

/// The named injection sites (docs/algorithms.md "Fault injection").
enum class FaultSite : int {
  kCommAllreduce = 0,  ///< entry of every (i)allreduce collective
  kCommExchange,       ///< halo-exchange leg of DistCsr::spmv
  kSpmvInterior,       ///< interior sweep of DistCsr::spmv
  kGramStage1,         ///< fused stage-1 Gram (ortho layer)
  kServiceDispatch,    ///< per-attempt job dispatch (solver service)
};
inline constexpr int kNumFaultSites = 5;

const char* fault_site_name(FaultSite site);

enum class FaultAction : int {
  kThrow = 0,
  kDelay,
  kCorrupt,
};

const char* fault_action_name(FaultAction action);

/// One planned fault: fire `action` at the `ordinal`-th visit of
/// `site` (per attempt; ordinals restart at 0 each attempt).
struct FaultSpec {
  FaultSite site = FaultSite::kCommAllreduce;
  long ordinal = 0;
  FaultAction action = FaultAction::kThrow;
  int delay_ms = 0;  ///< kDelay only
};

/// A parseable, serializable fault schedule.  Spec syntax (the
/// SolverOptions `faults` key):
///   "site@ordinal:action[;site@ordinal:action...]"
/// with action one of "throw", "corrupt", "delay<ms>", e.g.
///   "comm.allreduce@3:throw;spmv.interior@2:corrupt;gram.stage1@1:delay250"
struct FaultPlan {
  std::vector<FaultSpec> faults;

  /// Parses the spec syntax above; "" yields an empty plan.  Throws
  /// std::invalid_argument (with a did-you-mean hint on site-name
  /// typos) on malformed input.
  static FaultPlan parse(const std::string& spec);

  /// Round-trips through parse().
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] bool empty() const { return faults.empty(); }
};

/// Raised by a "throw" fault — on every rank, at the same consult
/// point, with identical what() text.
class InjectedFault : public std::runtime_error {
 public:
  InjectedFault(FaultSite site, long ordinal);

  [[nodiscard]] FaultSite site() const { return site_; }
  [[nodiscard]] long ordinal() const { return ordinal_; }

 private:
  FaultSite site_;
  long ordinal_;
};

/// One fired fault (a trail entry; identical on every rank).
struct FaultRecord {
  FaultSite site = FaultSite::kCommAllreduce;
  long ordinal = 0;
  FaultAction action = FaultAction::kThrow;
  int delay_ms = 0;
  int attempt = 1;  ///< 1-based attempt the fault fired in
};

/// Executes a FaultPlan deterministically (see the header comment for
/// the full contract).  One injector per job; each rank thread
/// consults through its own RankState, so no synchronization is
/// needed and counters can never race.
class FaultInjector {
 public:
  /// Applies the corrupt action: receives the matched plan ordinal and
  /// flips one bit of the site's payload at a position derived from it.
  using CorruptFn = std::function<void(long ordinal)>;

  FaultInjector(FaultPlan plan, int nranks);

  /// Resets every rank's per-site ordinal counters for a fresh attempt
  /// (fired flags persist: a fired fault never re-fires, so retries
  /// run clean).  Call only between attempts, never during a solve.
  void begin_attempt(int attempt);

  /// Consults `site` from rank `rank`'s thread: advances the rank's
  /// counter and, on a match, records the fault and applies its action
  /// (throw InjectedFault / sleep / invoke `corrupt`).
  void consult(int rank, FaultSite site, const CorruptFn& corrupt = {});

  /// The corrupt primitive: XORs exponent bit 58 (a 2^64 scale flip).
  static void flip_bit(double& v);

  /// The fired-fault trail of one rank (all ranks' trails are
  /// identical for the SPMD sites; rank 0 additionally carries
  /// service.dispatch entries, so reports read rank 0's).
  [[nodiscard]] const std::vector<FaultRecord>& trail(int rank = 0) const {
    return ranks_.at(static_cast<std::size_t>(rank)).trail;
  }

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] bool empty() const { return plan_.empty(); }

 private:
  struct RankState {
    std::array<long, kNumFaultSites> counters{};
    std::vector<char> fired;  ///< per plan entry, persists across attempts
    std::vector<FaultRecord> trail;
  };

  FaultPlan plan_;
  int attempt_ = 1;
  std::vector<RankState> ranks_;
};

/// Cooperative cancellation: a flag (cancel()) plus an optional
/// monotonic-clock deadline.  The krylov solvers poll should_stop() at
/// restart boundaries — through a collective max-reduce, so every rank
/// takes the same exit and no rank is left inside a collective.
/// Thread-safe: cancel() may race with polls; set_deadline_after()
/// must happen-before the token is shared (the service arms it at
/// dispatch, before the solve starts).
class CancelToken {
 public:
  void cancel() { cancelled_.store(true, std::memory_order_release); }

  /// Arms the deadline `budget` from now.
  void set_deadline_after(std::chrono::milliseconds budget) {
    deadline_ = std::chrono::steady_clock::now() + budget;
    has_deadline_.store(true, std::memory_order_release);
  }

  [[nodiscard]] bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool deadline_expired() const {
    return has_deadline_.load(std::memory_order_acquire) &&
           std::chrono::steady_clock::now() >= deadline_;
  }
  [[nodiscard]] bool should_stop() const {
    return cancelled() || deadline_expired();
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> has_deadline_{false};
  std::chrono::steady_clock::time_point deadline_{};
};

}  // namespace tsbo::par
