#include "util/timer.hpp"

#include <stdexcept>

namespace tsbo::util {

void PhaseTimers::start(const std::string& name) {
  Bucket& b = buckets_[name];
  if (b.running) {
    throw std::logic_error("PhaseTimers: phase already running: " + name);
  }
  b.running = true;
  b.started = std::chrono::steady_clock::now();
}

void PhaseTimers::stop(const std::string& name) {
  auto it = buckets_.find(name);
  if (it == buckets_.end() || !it->second.running) {
    throw std::logic_error("PhaseTimers: phase not running: " + name);
  }
  Bucket& b = it->second;
  b.seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - b.started)
          .count();
  b.count += 1;
  b.running = false;
}

void PhaseTimers::add(const std::string& name, double seconds) {
  Bucket& b = buckets_[name];
  b.seconds += seconds;
  b.count += 1;
}

double PhaseTimers::seconds(const std::string& name) const {
  auto it = buckets_.find(name);
  return it == buckets_.end() ? 0.0 : it->second.seconds;
}

std::uint64_t PhaseTimers::count(const std::string& name) const {
  auto it = buckets_.find(name);
  return it == buckets_.end() ? 0 : it->second.count;
}

std::vector<std::string> PhaseTimers::names() const {
  std::vector<std::string> out;
  out.reserve(buckets_.size());
  for (const auto& [k, v] : buckets_) out.push_back(k);
  return out;
}

void PhaseTimers::merge_max(const PhaseTimers& other) {
  for (const auto& [k, v] : other.buckets_) {
    Bucket& b = buckets_[k];
    b.seconds = std::max(b.seconds, v.seconds);
    b.count = std::max(b.count, v.count);
  }
}

void PhaseTimers::merge_sum(const PhaseTimers& other) {
  for (const auto& [k, v] : other.buckets_) {
    Bucket& b = buckets_[k];
    b.seconds += v.seconds;
    b.count += v.count;
  }
}

void spin_wait(double seconds) {
  if (seconds <= 0.0) return;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(seconds));
  while (std::chrono::steady_clock::now() < deadline) {
    // spin
  }
}

}  // namespace tsbo::util
