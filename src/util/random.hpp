#pragma once
// Deterministic, fast random number generation.
//
// All experiments are seeded so that paper-reproduction runs are exactly
// repeatable; figures that report min/avg/max over 10 seeds (paper
// Fig. 6) iterate seed = 0..9.  xoshiro256** is used instead of
// std::mt19937_64 for speed when filling large random matrices.

#include <cstdint>
#include <span>

namespace tsbo::util {

/// xoshiro256** by Blackman & Vigna: tiny state, excellent statistical
/// quality, much faster than Mersenne Twister for bulk generation.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 seeding as recommended by the authors.
    std::uint64_t z = seed;
    for (auto& s : state_) {
      z += 0x9e3779b97f4a7c15ull;
      std::uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      s = x ^ (x >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Standard normal via Marsaglia polar method.
  double normal();

  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n) { return next() % n; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
  bool have_spare_ = false;
  double spare_ = 0.0;
};

/// Fills `out` with i.i.d. standard normal samples.
void fill_normal(Xoshiro256& rng, std::span<double> out);

/// Fills `out` with uniform samples in [lo, hi).
void fill_uniform(Xoshiro256& rng, std::span<double> out, double lo, double hi);

}  // namespace tsbo::util
