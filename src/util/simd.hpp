#pragma once
// Portable fixed-width SIMD layer for the kernel hot loops.
//
// One ISA is selected at compile time (no runtime dispatch — the whole
// build agrees on one lane width, which is what makes the determinism
// contract below checkable):
//
//   macro context                     Vec width   isa_name()
//   __AVX512F__                        8 x f64     "avx512"
//   __AVX2__ && __FMA__                4 x f64     "avx2"
//   __ARM_NEON                         2 x f64     "neon"
//   otherwise / TSBO_DISABLE_SIMD      4 x f64     "scalar" (plain C++)
//
// The CMake option TSBO_SIMD picks the ISA flags (default "native");
// -DTSBO_DISABLE_SIMD=ON is the escape hatch that forces the scalar
// fallback regardless of what the compiler would support.
//
// Determinism contract (same-build): every operation here is a fixed
// per-lane instruction sequence, and the horizontal reductions fold
// lanes in a fixed order (pairwise for reduce_add/reduce_max, ascending
// lane index for the dd reduce).  A kernel built on Vec therefore
// produces bit-identical results run-to-run and across thread counts —
// the fixed-chunk reduction scheme of par/config.hpp is untouched and
// lane boundaries within a chunk depend only on the chunk bounds.
// Cross-ISA bit-identity is explicitly NOT promised: an avx512 build
// and a scalar build associate additions differently (both are valid
// O(eps) results; the dd kernels agree to ~u_dd either way).
//
// EFT primitives: vec_two_sum / vec_two_prod / dd_add on VecDD apply
// exactly the scalar util/eft.hpp flop sequence to every lane (the EFTs
// are branch-free, which is why they vectorize cleanly), so lane l of a
// vectorized dd accumulation is bit-identical to a scalar eft
// accumulation of that lane's strided subsequence — tests/test_simd.cpp
// pins this.  vec_two_prod requires a correctly rounded fused
// multiply-add: hardware FMA on the SIMD ISAs, std::fma on the scalar
// fallback.
//
// mul_add(a, b, c) = a*b + c is the *performance* contract (fused where
// the ISA has FMA, two roundings on the scalar fallback); use the EFT
// primitives, never mul_add, where exactness matters.

#include "util/eft.hpp"

#include <cmath>
#include <cstddef>
#include <cstdint>

#if !defined(TSBO_DISABLE_SIMD)
#if defined(__AVX512F__)
#define TSBO_SIMD_AVX512 1
#include <immintrin.h>
#elif defined(__AVX2__) && defined(__FMA__)
#define TSBO_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__ARM_NEON)
#define TSBO_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif

namespace tsbo::simd {

#if defined(TSBO_SIMD_AVX512)

struct Vec {
  __m512d v;
  static constexpr std::size_t kLanes = 8;
};

inline const char* isa_name() { return "avx512"; }
inline Vec zero() { return {_mm512_setzero_pd()}; }
inline Vec set1(double x) { return {_mm512_set1_pd(x)}; }
inline Vec load(const double* p) { return {_mm512_loadu_pd(p)}; }
inline void store(double* p, Vec a) { _mm512_storeu_pd(p, a.v); }
inline Vec add(Vec a, Vec b) { return {_mm512_add_pd(a.v, b.v)}; }
inline Vec sub(Vec a, Vec b) { return {_mm512_sub_pd(a.v, b.v)}; }
inline Vec mul(Vec a, Vec b) { return {_mm512_mul_pd(a.v, b.v)}; }
/// a*b + c, fused.
inline Vec mul_add(Vec a, Vec b, Vec c) {
  return {_mm512_fmadd_pd(a.v, b.v, c.v)};
}
/// a*b - c as a single correctly rounded operation (EFT residuals).
inline Vec fms_exact(Vec a, Vec b, Vec c) {
  return {_mm512_fmsub_pd(a.v, b.v, c.v)};
}
inline Vec abs(Vec a) { return {_mm512_abs_pd(a.v)}; }
inline Vec max(Vec a, Vec b) { return {_mm512_max_pd(a.v, b.v)}; }
/// Loads lanes base[idx[0..kLanes)] (32-bit indices, CSR ordinals).
inline Vec gather(const double* base, const std::int32_t* idx) {
  const __m256i vi =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx));
  return {_mm512_i32gather_pd(vi, base, 8)};
}

#elif defined(TSBO_SIMD_AVX2)

struct Vec {
  __m256d v;
  static constexpr std::size_t kLanes = 4;
};

inline const char* isa_name() { return "avx2"; }
inline Vec zero() { return {_mm256_setzero_pd()}; }
inline Vec set1(double x) { return {_mm256_set1_pd(x)}; }
inline Vec load(const double* p) { return {_mm256_loadu_pd(p)}; }
inline void store(double* p, Vec a) { _mm256_storeu_pd(p, a.v); }
inline Vec add(Vec a, Vec b) { return {_mm256_add_pd(a.v, b.v)}; }
inline Vec sub(Vec a, Vec b) { return {_mm256_sub_pd(a.v, b.v)}; }
inline Vec mul(Vec a, Vec b) { return {_mm256_mul_pd(a.v, b.v)}; }
inline Vec mul_add(Vec a, Vec b, Vec c) {
  return {_mm256_fmadd_pd(a.v, b.v, c.v)};
}
inline Vec fms_exact(Vec a, Vec b, Vec c) {
  return {_mm256_fmsub_pd(a.v, b.v, c.v)};
}
inline Vec abs(Vec a) {
  return {_mm256_andnot_pd(_mm256_set1_pd(-0.0), a.v)};
}
inline Vec max(Vec a, Vec b) { return {_mm256_max_pd(a.v, b.v)}; }
inline Vec gather(const double* base, const std::int32_t* idx) {
  const __m128i vi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx));
  return {_mm256_i32gather_pd(base, vi, 8)};
}

#elif defined(TSBO_SIMD_NEON)

struct Vec {
  float64x2_t v;
  static constexpr std::size_t kLanes = 2;
};

inline const char* isa_name() { return "neon"; }
inline Vec zero() { return {vdupq_n_f64(0.0)}; }
inline Vec set1(double x) { return {vdupq_n_f64(x)}; }
inline Vec load(const double* p) { return {vld1q_f64(p)}; }
inline void store(double* p, Vec a) { vst1q_f64(p, a.v); }
inline Vec add(Vec a, Vec b) { return {vaddq_f64(a.v, b.v)}; }
inline Vec sub(Vec a, Vec b) { return {vsubq_f64(a.v, b.v)}; }
inline Vec mul(Vec a, Vec b) { return {vmulq_f64(a.v, b.v)}; }
inline Vec mul_add(Vec a, Vec b, Vec c) {
  return {vfmaq_f64(c.v, a.v, b.v)};
}
inline Vec fms_exact(Vec a, Vec b, Vec c) {
  return {vfmaq_f64(vnegq_f64(c.v), a.v, b.v)};
}
inline Vec abs(Vec a) { return {vabsq_f64(a.v)}; }
inline Vec max(Vec a, Vec b) { return {vmaxq_f64(a.v, b.v)}; }
inline Vec gather(const double* base, const std::int32_t* idx) {
  const double t[2] = {base[idx[0]], base[idx[1]]};
  return {vld1q_f64(t)};
}

#else  // scalar fallback (also selected by TSBO_DISABLE_SIMD)

struct Vec {
  static constexpr std::size_t kLanes = 4;
  double v[kLanes];
};

inline const char* isa_name() { return "scalar"; }
inline Vec zero() { return {{0.0, 0.0, 0.0, 0.0}}; }
inline Vec set1(double x) { return {{x, x, x, x}}; }
inline Vec load(const double* p) { return {{p[0], p[1], p[2], p[3]}}; }
inline void store(double* p, Vec a) {
  for (std::size_t l = 0; l < Vec::kLanes; ++l) p[l] = a.v[l];
}
inline Vec add(Vec a, Vec b) {
  Vec r;
  for (std::size_t l = 0; l < Vec::kLanes; ++l) r.v[l] = a.v[l] + b.v[l];
  return r;
}
inline Vec sub(Vec a, Vec b) {
  Vec r;
  for (std::size_t l = 0; l < Vec::kLanes; ++l) r.v[l] = a.v[l] - b.v[l];
  return r;
}
inline Vec mul(Vec a, Vec b) {
  Vec r;
  for (std::size_t l = 0; l < Vec::kLanes; ++l) r.v[l] = a.v[l] * b.v[l];
  return r;
}
inline Vec mul_add(Vec a, Vec b, Vec c) {
  Vec r;
  for (std::size_t l = 0; l < Vec::kLanes; ++l) {
    r.v[l] = a.v[l] * b.v[l] + c.v[l];
  }
  return r;
}
inline Vec fms_exact(Vec a, Vec b, Vec c) {
  Vec r;
  for (std::size_t l = 0; l < Vec::kLanes; ++l) {
    r.v[l] = std::fma(a.v[l], b.v[l], -c.v[l]);
  }
  return r;
}
inline Vec abs(Vec a) {
  Vec r;
  for (std::size_t l = 0; l < Vec::kLanes; ++l) r.v[l] = std::abs(a.v[l]);
  return r;
}
inline Vec max(Vec a, Vec b) {
  Vec r;
  for (std::size_t l = 0; l < Vec::kLanes; ++l) {
    r.v[l] = a.v[l] > b.v[l] ? a.v[l] : b.v[l];
  }
  return r;
}
inline Vec gather(const double* base, const std::int32_t* idx) {
  Vec r;
  for (std::size_t l = 0; l < Vec::kLanes; ++l) r.v[l] = base[idx[l]];
  return r;
}

#endif

inline constexpr std::size_t kLanes = Vec::kLanes;

/// Scalar counterpart of mul_add with the same rounding behavior (one
/// rounding on FMA ISAs, two on the scalar fallback).  Remainder loops
/// of *element-wise* kernels whose partition boundaries move with the
/// thread count (axpy-style) must use this so an element's bits do not
/// depend on whether it fell in the vector body or the scalar tail.
inline double mul_add(double a, double b, double c) {
#if defined(TSBO_SIMD_AVX512) || defined(TSBO_SIMD_AVX2) || \
    defined(TSBO_SIMD_NEON)
  return std::fma(a, b, c);
#else
  return a * b + c;
#endif
}

// ---- horizontal reductions (fixed order) -----------------------------

/// Pairwise fold in fixed order: ((l0+l1)+(l2+l3))+((l4+l5)+(l6+l7)).
inline double reduce_add(Vec a) {
  double t[Vec::kLanes];
  store(t, a);
  for (std::size_t width = Vec::kLanes; width > 1; width /= 2) {
    for (std::size_t l = 0; l < width / 2; ++l) {
      t[l] = t[2 * l] + t[2 * l + 1];
    }
  }
  return t[0];
}

/// Same fixed pairwise fold with max (order is moot for max but fixed).
inline double reduce_max(Vec a) {
  double t[Vec::kLanes];
  store(t, a);
  for (std::size_t width = Vec::kLanes; width > 1; width /= 2) {
    for (std::size_t l = 0; l < width / 2; ++l) {
      t[l] = t[2 * l] > t[2 * l + 1] ? t[2 * l] : t[2 * l + 1];
    }
  }
  return t[0];
}

// ---- vectorized error-free transformations ---------------------------
// Per-lane the flop sequences are identical to util/eft.hpp; see the
// header comment for the exactness and determinism contracts.

/// Unevaluated per-lane sum hi + lo (a dd value in every lane).
struct VecDD {
  Vec hi, lo;
};

inline VecDD dd_zero() { return {zero(), zero()}; }

/// Per-lane eft::quick_two_sum (requires |a| >= |b| lane-wise).
inline VecDD vec_quick_two_sum(Vec a, Vec b) {
  const Vec s = add(a, b);
  return {s, sub(b, sub(s, a))};
}

/// Per-lane eft::two_sum (branch-free Knuth).
inline VecDD vec_two_sum(Vec a, Vec b) {
  const Vec s = add(a, b);
  const Vec bb = sub(s, a);
  const Vec err = add(sub(a, sub(s, bb)), sub(b, bb));
  return {s, err};
}

/// Per-lane eft::two_prod (FMA residual).
inline VecDD vec_two_prod(Vec a, Vec b) {
  const Vec p = mul(a, b);
  return {p, fms_exact(a, b, p)};
}

/// Per-lane eft::dd_add(dd&, double), renormalized.
inline void dd_add(VecDD& x, Vec y) {
  const VecDD s = vec_two_sum(x.hi, y);
  x = vec_quick_two_sum(s.hi, add(s.lo, x.lo));
}

/// Per-lane eft::dd_add(dd&, dd) (QD accurate variant), renormalized.
inline void dd_add(VecDD& x, const VecDD& y) {
  VecDD s = vec_two_sum(x.hi, y.hi);
  const VecDD t = vec_two_sum(x.lo, y.lo);
  s = vec_quick_two_sum(s.hi, add(s.lo, t.hi));
  x = vec_quick_two_sum(s.hi, add(s.lo, t.lo));
}

/// Folds the per-lane dd partials into one scalar dd in ascending lane
/// order with the scalar renormalized eft::dd_add.
inline eft::dd reduce(const VecDD& x) {
  double hi[Vec::kLanes], lo[Vec::kLanes];
  store(hi, x.hi);
  store(lo, x.lo);
  eft::dd acc{hi[0], lo[0]};
  for (std::size_t l = 1; l < Vec::kLanes; ++l) {
    eft::dd_add(acc, eft::dd{hi[l], lo[l]});
  }
  return acc;
}

}  // namespace tsbo::simd
