#pragma once
// ASCII table rendering for paper-style benchmark output.
//
// Every bench binary prints rows in the same layout as the paper's
// tables (e.g. Table III: "# nodes | # iters | SpMV | Ortho | Total |
// speedups"), so a reader can diff shapes side by side.

#include <string>
#include <vector>

namespace tsbo::util {

/// Column-aligned ASCII table.  Cells are strings; numeric helpers
/// format with fixed precision.  Rendering pads to the widest cell.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row.  Cells are appended with add().
  Table& row();

  Table& add(const std::string& cell);
  Table& add(const char* cell) { return add(std::string(cell)); }
  /// Fixed-point formatted double.
  Table& add(double v, int precision = 2);
  Table& add(int v);
  Table& add(long v);
  Table& add(unsigned long v);

  /// Inserts a horizontal separator line after the current row.
  Table& separator();

  /// Renders the table; every line is terminated by '\n'.
  [[nodiscard]] std::string str() const;

  /// Renders and writes to stdout.
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::size_t> separators_;  // separator after rows_[i]
};

/// "2.6x"-style speedup formatting used throughout the paper's tables.
std::string speedup_str(double baseline, double value, int precision = 1);

/// Scientific notation with the given significant digits ("1.2e-14").
std::string sci(double v, int digits = 2);

}  // namespace tsbo::util
