#pragma once
// Cache-line-aligned storage for the kernel layer.
//
// Every buffer that the SIMD kernels stream (dense panels, CSR arrays,
// ortho/krylov scratch vectors) is allocated on a 64-byte boundary:
// loads stay unaligned-safe (the kernels use loadu), but an aligned
// base keeps vectors from straddling cache lines and makes the panel
// start a page-friendly first-touch target.
//
// Two tools:
//   * AlignedAllocator / aligned_vector — drop-in std::vector storage
//     at 64-byte alignment.  The allocator is stateless, so vector
//     copy/move/swap preserve the alignment invariant by construction.
//   * AlignedBuffer — owning double buffer for dense::Matrix panels
//     with *parallel first-touch* initialization: the zero-fill (and
//     the copy in the copy constructor) run through
//     par::parallel_for_grained, so on NUMA systems the pages of a tall
//     panel land on the threads that will stream them, in the same
//     contiguous partition the kernels use.

#include "par/config.hpp"

#include <cstddef>
#include <new>
#include <span>
#include <vector>

namespace tsbo::util {

/// Alignment of every kernel-visible buffer (one x86 cache line; also a
/// whole number of AVX-512 vectors).
inline constexpr std::size_t kBufferAlign = 64;

template <typename T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}  // NOLINT

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{kBufferAlign}));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t{kBufferAlign});
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
};

/// std::vector with 64-byte-aligned storage (value semantics unchanged).
template <typename T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

/// AlignedAllocator that default-initializes on no-argument construct:
/// resize(n) leaves trivial element types uninitialized instead of
/// serially zero-filling, so a parallel fill pass that writes every
/// element is the *first* touch of the pages (NUMA placement by the
/// writer threads).  Only for buffers whose producer provably writes
/// every element — e.g. the CSR assembly passes.  Explicit-value forms
/// (assign(n, v), resize(n, v), push_back) behave as usual.
template <typename T>
struct DefaultInitAlignedAllocator : AlignedAllocator<T> {
  using value_type = T;

  DefaultInitAlignedAllocator() noexcept = default;
  template <typename U>
  DefaultInitAlignedAllocator(  // NOLINT
      const DefaultInitAlignedAllocator<U>&) noexcept {}

  template <typename U>
  void construct(U* p) noexcept(noexcept(::new (static_cast<void*>(p)) U)) {
    ::new (static_cast<void*>(p)) U;
  }

  template <typename U>
  bool operator==(const DefaultInitAlignedAllocator<U>&) const noexcept {
    return true;
  }
};

/// std::vector that is 64-byte aligned and skips zero-fill on resize
/// (see DefaultInitAlignedAllocator's contract).
template <typename T>
using aligned_uninit_vector = std::vector<T, DefaultInitAlignedAllocator<T>>;

/// Owning 64-byte-aligned double buffer with parallel first-touch
/// initialization.  Copy re-touches in parallel; move transfers the
/// (already aligned) allocation; a moved-from buffer is empty.
class AlignedBuffer {
 public:
  AlignedBuffer() = default;
  /// Allocates n doubles and zero-fills them in parallel (first touch).
  explicit AlignedBuffer(std::size_t n);
  AlignedBuffer(const AlignedBuffer& other);
  AlignedBuffer(AlignedBuffer&& other) noexcept;
  AlignedBuffer& operator=(const AlignedBuffer& other);
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept;
  ~AlignedBuffer();

  [[nodiscard]] double* data() { return data_; }
  [[nodiscard]] const double* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }

  [[nodiscard]] double& operator[](std::size_t i) { return data_[i]; }
  [[nodiscard]] double operator[](std::size_t i) const { return data_[i]; }

  [[nodiscard]] std::span<double> span() { return {data_, size_}; }
  [[nodiscard]] std::span<const double> span() const {
    return {data_, size_};
  }

  /// Parallel zero-fill (same partition as the allocating first touch).
  void set_zero();

 private:
  double* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace tsbo::util
