#pragma once
// Error-free transformations (EFT) and normalized double-double (dd)
// scalar arithmetic, after Dekker (1971), Knuth TAOCP 4.2.2, and the
// QD library of Hida, Li and Bailey [15].
//
// This header lives in util/ (no dependencies) so that both the dense
// kernels (dense/dd.hpp) and the SPMD communicator's double-double
// all-reduce (par/communicator.cpp) share one definition of the
// arithmetic: the deterministic distributed Gram reduction must apply
// bit-identical operations on every rank.
//
// Precision contract: a *normalized* dd value x = hi + lo satisfies
// |lo| <= ulp(hi)/2, giving an effective unit roundoff of
// u_dd = 2^-104 ~ 4.9e-32 (~31 significant decimal digits).  Every
// routine below returns a normalized result; the renormalization step
// (quick_two_sum after folding low-order terms) is what the seed
// implementation omitted and what bounds the accumulated error of long
// Gram sums — without it the low word drifts out of alignment with the
// high word and the effective precision decays toward plain double.
//
// The EFTs themselves are exact (no rounding error at all):
//   two_sum : a + b == s + err     in exact arithmetic
//   two_prod: a * b == p + err     (via IEEE-754 fused multiply-add)
// dd composite ops (add/sub/mul/div/sqrt) are correct to O(u_dd)
// relative error, assuming no overflow/underflow of intermediates.

#include <cmath>

namespace tsbo::eft {

/// Effective unit roundoff of normalized double-double: 2^-104.
inline constexpr double kUnitRoundoff = 0x1p-104;

/// Unevaluated sum hi + lo; normalized when |lo| <= ulp(hi)/2.
struct dd {
  double hi = 0.0;
  double lo = 0.0;
};

/// EFT for |a| >= |b| (or a == 0): a + b = s + err exactly, 3 flops.
inline dd quick_two_sum(double a, double b) {
  const double s = a + b;
  return {s, b - (s - a)};
}

/// Branch-free EFT (Knuth): a + b = s + err exactly for any a, b.
inline dd two_sum(double a, double b) {
  const double s = a + b;
  const double bb = s - a;
  const double err = (a - (s - bb)) + (b - bb);
  return {s, err};
}

/// EFT product via FMA: a * b = p + err exactly.
inline dd two_prod(double a, double b) {
  const double p = a * b;
  const double err = std::fma(a, b, -p);
  return {p, err};
}

/// x += y (double-double accumulate of a double), renormalized.
inline void dd_add(dd& x, double y) {
  const dd s = two_sum(x.hi, y);
  x = quick_two_sum(s.hi, s.lo + x.lo);
}

/// x += y (full double-double addition, QD "accurate" variant),
/// renormalized.
inline void dd_add(dd& x, const dd& y) {
  dd s = two_sum(x.hi, y.hi);
  const dd t = two_sum(x.lo, y.lo);
  s = quick_two_sum(s.hi, s.lo + t.hi);
  x = quick_two_sum(s.hi, s.lo + t.lo);
}

inline dd dd_neg(const dd& a) { return {-a.hi, -a.lo}; }

/// a - b.
inline dd dd_sub(const dd& a, const dd& b) {
  dd r = a;
  dd_add(r, dd_neg(b));
  return r;
}

/// a * b for dd a and double b.
inline dd dd_mul(const dd& a, double b) {
  dd p = two_prod(a.hi, b);
  return quick_two_sum(p.hi, p.lo + a.lo * b);
}

/// a * b (full double-double product; the a.lo * b.lo term is below
/// u_dd and dropped).
inline dd dd_mul(const dd& a, const dd& b) {
  dd p = two_prod(a.hi, b.hi);
  return quick_two_sum(p.hi, p.lo + (a.hi * b.lo + a.lo * b.hi));
}

/// a / b via three Newton-style correction terms (QD accurate division).
inline dd dd_div(const dd& a, const dd& b) {
  const double q1 = a.hi / b.hi;
  dd r = dd_sub(a, dd_mul(b, q1));
  const double q2 = r.hi / b.hi;
  r = dd_sub(r, dd_mul(b, q2));
  const double q3 = r.hi / b.hi;
  dd q = quick_two_sum(q1, q2);
  dd_add(q, q3);
  return q;
}

/// sqrt(a) via one Karp-Markstein correction of the double estimate.
/// Requires a >= 0; a.hi == 0 returns 0, a.hi < 0 returns quiet NaN.
inline dd dd_sqrt(const dd& a) {
  if (a.hi <= 0.0) return {std::sqrt(a.hi), 0.0};
  const double x = 1.0 / std::sqrt(a.hi);
  const double ax = a.hi * x;  // ~ sqrt(a) to double precision
  const dd err = dd_sub(a, two_prod(ax, ax));
  return quick_two_sum(ax, err.hi * (x * 0.5));
}

/// Rounds back to working precision (correct rounding of hi + lo for a
/// normalized input).
inline double to_double(const dd& x) { return x.hi + x.lo; }

}  // namespace tsbo::eft
