#pragma once
// Minimal JSON emission and validation.
//
// One shared writer for every machine-readable artifact the repo emits
// (api::SolveReport, the bench report logs, BENCH_kernels.json), so
// escaping and number formatting are correct in exactly one place.
// There is deliberately no DOM/parser: reports are streamed out, and
// the only consumer that *reads* them back is Python
// (bench/compare_bench.py).  json_validate() is a pure syntax checker
// used by the schema tests and by ReportLog's self-check.

#include <cstdint>
#include <string>
#include <vector>

namespace tsbo::util {

/// Escapes and double-quotes `s` per RFC 8259 (control characters as
/// \u00XX; non-ASCII bytes pass through, valid for UTF-8 input).
std::string json_quote(const std::string& s);

/// Shortest decimal representation that round-trips to the same double
/// (std::to_chars).  Non-finite values become null — JSON has no
/// NaN/Inf.
std::string json_number(double v);

/// Streaming JSON writer: explicit begin/end scopes, automatic comma
/// placement, two-space pretty printing.  Scope misuse (value where a
/// key is required, end_object inside an array, ...) throws
/// std::logic_error — writer bugs surface in tests, not as corrupt
/// artifacts.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Member key; must be inside an object and followed by a value or a
  /// begin_*().
  JsonWriter& key(const std::string& k);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v) { return value(std::string(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(bool v);
  JsonWriter& value(int v) { return value(static_cast<long long>(v)); }
  JsonWriter& value(long v) { return value(static_cast<long long>(v)); }
  JsonWriter& value(unsigned v) {
    return value(static_cast<unsigned long long>(v));
  }
  JsonWriter& value(unsigned long v) {
    return value(static_cast<unsigned long long>(v));
  }
  JsonWriter& value(long long v);
  JsonWriter& value(unsigned long long v);
  JsonWriter& null();

  /// key() + value() in one call.
  template <typename T>
  JsonWriter& kv(const std::string& k, const T& v) {
    key(k);
    return value(v);
  }

  /// The document; throws std::logic_error while scopes remain open.
  [[nodiscard]] std::string str() const;

 private:
  enum class Scope { kObject, kArray };
  struct Frame {
    Scope scope;
    int members = 0;
    bool key_pending = false;  // object: key emitted, value outstanding
  };

  void before_value();
  void after_value();
  void indent();

  std::string out_;
  std::vector<Frame> stack_;
  bool done_ = false;  // a complete top-level value was written
};

/// True when `text` is one syntactically valid JSON value (with
/// trailing whitespace allowed).  On failure `error` (if non-null)
/// receives a byte offset + reason message.
bool json_validate(const std::string& text, std::string* error = nullptr);

/// Writes `text` to `path`, throwing std::runtime_error on open or
/// short-write failure — so a full disk can never leave a truncated
/// artifact behind while the caller reports success.
void write_text_file(const std::string& path, const std::string& text);

}  // namespace tsbo::util
