#include "util/cli.hpp"

#include <sstream>
#include <stdexcept>

namespace tsbo::util {

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("Cli: expected --key[=value], got: " + arg);
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      kv_.emplace_back(arg, "");
    } else {
      kv_.emplace_back(arg.substr(0, eq), arg.substr(eq + 1));
    }
  }
}

bool Cli::has(const std::string& key) const {
  for (const auto& [k, v] : kv_) {
    if (k == key) return true;
  }
  return false;
}

std::string Cli::get(const std::string& key, const std::string& fallback) const {
  for (const auto& [k, v] : kv_) {
    if (k == key) return v;
  }
  return fallback;
}

int Cli::get_int(const std::string& key, int fallback) const {
  return has(key) ? std::stoi(get(key, "")) : fallback;
}

long Cli::get_long(const std::string& key, long fallback) const {
  return has(key) ? std::stol(get(key, "")) : fallback;
}

double Cli::get_double(const std::string& key, double fallback) const {
  return has(key) ? std::stod(get(key, "")) : fallback;
}

std::vector<int> Cli::get_int_list(const std::string& key,
                                   std::vector<int> fallback) const {
  if (!has(key)) return fallback;
  std::vector<int> out;
  std::stringstream ss(get(key, ""));
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::stoi(item));
  }
  if (out.empty()) {
    throw std::invalid_argument("Cli: empty integer list for --" + key);
  }
  return out;
}

}  // namespace tsbo::util
