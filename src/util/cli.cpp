#include "util/cli.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace tsbo::util {

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("Cli: expected --key[=value], got: " + arg);
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      kv_.emplace_back(arg, "");
    } else {
      kv_.emplace_back(arg.substr(0, eq), arg.substr(eq + 1));
    }
  }
}

bool Cli::has(const std::string& key) const {
  queried_.insert(key);
  for (const auto& [k, v] : kv_) {
    if (k == key) return true;
  }
  return false;
}

std::string Cli::get(const std::string& key, const std::string& fallback) const {
  queried_.insert(key);
  for (const auto& [k, v] : kv_) {
    if (k == key) return v;
  }
  return fallback;
}

int Cli::get_int(const std::string& key, int fallback) const {
  return has(key) ? std::stoi(get(key, "")) : fallback;
}

long Cli::get_long(const std::string& key, long fallback) const {
  return has(key) ? std::stol(get(key, "")) : fallback;
}

double Cli::get_double(const std::string& key, double fallback) const {
  return has(key) ? std::stod(get(key, "")) : fallback;
}

std::vector<int> Cli::get_int_list(const std::string& key,
                                   std::vector<int> fallback) const {
  if (!has(key)) return fallback;
  std::vector<int> out;
  std::stringstream ss(get(key, ""));
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::stoi(item));
  }
  if (out.empty()) {
    throw std::invalid_argument("Cli: empty integer list for --" + key);
  }
  return out;
}

std::vector<std::string> Cli::keys() const {
  std::vector<std::string> out;
  out.reserve(kv_.size());
  for (const auto& [k, v] : kv_) out.push_back(k);
  return out;
}

void Cli::reject_unknown() const {
  const std::vector<std::string> known(queried_.begin(), queried_.end());
  std::string msg;
  for (const auto& [k, v] : kv_) {
    if (queried_.count(k) != 0) continue;
    if (!msg.empty()) msg += "; ";
    msg += "unknown option --" + k;
    const std::string hint = did_you_mean(k, known);
    if (!hint.empty()) msg += " (did you mean --" + hint + "?)";
  }
  if (!msg.empty()) {
    throw std::invalid_argument("Cli: " + msg);
  }
}

namespace {

std::size_t levenshtein(const std::string& a, const std::string& b) {
  std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

}  // namespace

std::string did_you_mean(const std::string& word,
                         const std::vector<std::string>& candidates) {
  std::string best;
  std::size_t best_dist = 3;  // suggestions only within distance 2
  for (const std::string& c : candidates) {
    if (c == word) continue;
    const std::size_t d = levenshtein(word, c);
    if (d < best_dist) {
      best_dist = d;
      best = c;
    }
  }
  return best;
}

}  // namespace tsbo::util
