#include "util/fault.hpp"

#include "util/cli.hpp"

#include <cstring>
#include <thread>

namespace tsbo::par {
namespace {

constexpr const char* kSiteNames[kNumFaultSites] = {
    "comm.allreduce", "comm.exchange", "spmv.interior", "gram.stage1",
    "service.dispatch",
};

std::vector<std::string> site_name_list() {
  return {kSiteNames, kSiteNames + kNumFaultSites};
}

[[noreturn]] void bad_spec(const std::string& token, const std::string& why) {
  throw std::invalid_argument(
      "FaultPlan: bad fault spec \"" + token + "\" (" + why +
      "; expected site@ordinal:action with action throw|corrupt|delay<ms>)");
}

}  // namespace

const char* fault_site_name(FaultSite site) {
  return kSiteNames[static_cast<int>(site)];
}

const char* fault_action_name(FaultAction action) {
  switch (action) {
    case FaultAction::kThrow:
      return "throw";
    case FaultAction::kDelay:
      return "delay";
    case FaultAction::kCorrupt:
      return "corrupt";
  }
  return "?";
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string token = spec.substr(pos, end - pos);
    pos = end + 1;
    if (token.empty()) continue;

    const std::size_t at = token.find('@');
    const std::size_t colon = token.find(':', at == std::string::npos ? 0 : at);
    if (at == std::string::npos || colon == std::string::npos || at == 0) {
      bad_spec(token, "missing '@' or ':'");
    }
    const std::string site_name = token.substr(0, at);
    const std::string ordinal_text = token.substr(at + 1, colon - at - 1);
    const std::string action_text = token.substr(colon + 1);

    FaultSpec f;
    int site = 0;
    while (site < kNumFaultSites && site_name != kSiteNames[site]) ++site;
    if (site == kNumFaultSites) {
      const std::string hint = util::did_you_mean(site_name, site_name_list());
      bad_spec(token, "unknown site \"" + site_name + "\"" +
                          (hint.empty() ? "" : " (did you mean " + hint + "?)"));
    }
    f.site = static_cast<FaultSite>(site);

    try {
      std::size_t used = 0;
      f.ordinal = std::stol(ordinal_text, &used);
      if (used != ordinal_text.size() || f.ordinal < 0) throw std::exception();
    } catch (const std::exception&) {
      bad_spec(token, "ordinal must be a non-negative integer");
    }

    if (action_text == "throw") {
      f.action = FaultAction::kThrow;
    } else if (action_text == "corrupt") {
      f.action = FaultAction::kCorrupt;
    } else if (action_text.rfind("delay", 0) == 0) {
      f.action = FaultAction::kDelay;
      const std::string ms_text = action_text.substr(5);
      try {
        std::size_t used = 0;
        f.delay_ms = std::stoi(ms_text, &used);
        if (ms_text.empty() || used != ms_text.size() || f.delay_ms < 0) {
          throw std::exception();
        }
      } catch (const std::exception&) {
        bad_spec(token, "delay wants a millisecond count, e.g. delay250");
      }
    } else {
      bad_spec(token, "unknown action \"" + action_text + "\"");
    }
    plan.faults.push_back(f);
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  std::string out;
  for (const FaultSpec& f : faults) {
    if (!out.empty()) out += ';';
    out += fault_site_name(f.site);
    out += '@';
    out += std::to_string(f.ordinal);
    out += ':';
    out += fault_action_name(f.action);
    if (f.action == FaultAction::kDelay) out += std::to_string(f.delay_ms);
  }
  return out;
}

InjectedFault::InjectedFault(FaultSite site, long ordinal)
    : std::runtime_error("injected fault: throw at " +
                         std::string(fault_site_name(site)) + "#" +
                         std::to_string(ordinal)),
      site_(site),
      ordinal_(ordinal) {}

FaultInjector::FaultInjector(FaultPlan plan, int nranks)
    : plan_(std::move(plan)),
      ranks_(static_cast<std::size_t>(nranks < 1 ? 1 : nranks)) {
  for (RankState& st : ranks_) st.fired.assign(plan_.faults.size(), 0);
}

void FaultInjector::begin_attempt(int attempt) {
  attempt_ = attempt;
  for (RankState& st : ranks_) st.counters.fill(0);
}

void FaultInjector::consult(int rank, FaultSite site,
                            const CorruptFn& corrupt) {
  RankState& st = ranks_.at(static_cast<std::size_t>(rank));
  const long ord = st.counters[static_cast<int>(site)]++;
  for (std::size_t e = 0; e < plan_.faults.size(); ++e) {
    const FaultSpec& f = plan_.faults[e];
    if (st.fired[e] != 0 || f.site != site || f.ordinal != ord) continue;
    st.fired[e] = 1;
    st.trail.push_back({f.site, f.ordinal, f.action, f.delay_ms, attempt_});
    switch (f.action) {
      case FaultAction::kThrow:
        throw InjectedFault(site, ord);
      case FaultAction::kDelay:
        std::this_thread::sleep_for(std::chrono::milliseconds(f.delay_ms));
        break;
      case FaultAction::kCorrupt:
        if (corrupt) corrupt(ord);
        break;
    }
  }
}

void FaultInjector::flip_bit(double& v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  bits ^= std::uint64_t{1} << 58;
  std::memcpy(&v, &bits, sizeof(bits));
}

}  // namespace tsbo::par
