#pragma once
// Persistent solver service: a long-lived front end over api::Solver
// for workloads that issue many solves against a small set of
// operators (the production-serving shape the ROADMAP names).
//
//   service::SolverService svc;
//   auto id1 = svc.submit("matrix=laplace2d_5pt nx=128 ranks=2");
//   auto id2 = svc.submit("matrix=laplace2d_5pt nx=128 ranks=2 warm_start=1");
//   service::JobResult r = svc.wait(id2);   // r.report.service.cache_hit
//
// Jobs are SolverOptions key=value strings (or parsed structs) entering
// a bounded FIFO queue.  A scheduler thread dispatches each batch over
// the shared par::ThreadPool via par::parallel_jobs: whole solves are
// unit work items claimed in ascending submission order off one
// monotone cursor, so dispatch order is FIFO and the thread-slice
// assignment inside each solve follows the library-wide determinism
// contract — a job's results are bitwise-identical to the same solve
// run standalone, at any thread or rank count.
//
// Expensive per-operator setup (matrix assembly, partitioned DistCsr
// with comm plan, preconditioner coloring / eigenvalue estimates, the
// ones-RHS, aligned scratch) is reused across jobs through the keyed
// OperatorCache.  Jobs against the same operator serialize on the
// entry (the DistCsr halo buffer is single-solve); jobs against
// different operators run concurrently.  With warm_start=1 a repeat
// solve seeds x0 from a cached solution keyed by the RHS fingerprint
// (most-recent fallback for perturbed right-hand sides); warm_start=0
// jobs are bit-for-bit cold.
//
// Hardening (the resilience layer): every job carries a CancelToken —
// cancel(id) reaches queued and running jobs alike, deadline_ms arms a
// wall-clock deadline at dispatch, and the solver polls cooperatively
// at restart boundaries.  retries=k re-runs failed / corrupted-verdict
// attempts (exponential backoff with deterministic per-job jitter)
// through one job-scoped FaultInjector, so one-shot injected faults do
// not re-fire and the retry is bitwise-identical to a clean solve.  A
// spec that fails quarantine_after times consecutively is quarantined:
// later identical specs fail fast instead of burning pool slots.
// After a corrupted verdict the cached matrix is re-validated against
// its build-time checksum and the entry invalidated if mutated.  Every
// job resolves to a terminal JobOutcome — the queue always drains.
//
// Every successfully-run job's SolveReport (schema tsbo.solve_report/7,
// service + resilience objects filled in) is appended to a
// service-level ReportLog for uniform --json artifacts.

#include "api/report.hpp"
#include "service/operator_cache.hpp"
#include "util/fault.hpp"

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace tsbo::service {

struct ServiceConfig {
  /// Bounded FIFO depth: submit() blocks while this many jobs await
  /// dispatch (backpressure, not rejection).
  std::size_t queue_capacity = 64;
  /// OperatorCache LRU byte budget.
  std::size_t cache_budget_bytes = std::size_t{256} << 20;
  /// ReportLog label of the --json artifact.
  std::string label = "service";
  /// Per-dispatch-round cap on jobs sharing one operator-cache key
  /// (0 = uncapped, the historical grab-the-whole-queue behavior).
  /// Same-key jobs serialize on the entry's in_use mutex anyway; the
  /// cap keeps a burst against one operator from occupying every pool
  /// slot while other operators' jobs starve behind it.  Overflow
  /// jobs stay queued — relative order preserved — and dispatch in
  /// later rounds.
  std::size_t max_inflight_per_key = 0;
  /// Exponential-backoff base for retries: attempt k+1 waits
  /// base * 2^(k-1) ms plus a deterministic per-job jitter
  /// (job id mod 3 ms) so colliding retry storms de-synchronize
  /// reproducibly.
  long retry_backoff_ms = 1;
};

/// Terminal state of a job.  Every submitted job reaches exactly one —
/// the queue always drains, whatever was injected.
enum class JobOutcome {
  kOk = 0,      ///< solve completed, residual guard (if on) passed
  kFailed,      ///< final attempt threw (injected or real exception)
  kTimedOut,    ///< deadline_ms expired (cooperative stop or pre-attempt)
  kCancelled,   ///< cancel(id) landed before/while the job ran
  kQuarantined, ///< spec exceeded quarantine_after consecutive failures
  kCorrupted,   ///< residual guard flagged the final attempt's solution
};

/// Stable lower-case name ("ok", "failed", ... — the report's
/// resilience.outcome vocabulary).
const char* to_string(JobOutcome outcome);

/// Completed job: the /6 report (service + resilience objects filled),
/// the gathered solution, and the dispatch sequence number (ascending
/// in dispatch order — the FIFO determinism pin).  `error` is non-empty
/// when no attempt produced a report (exception, quarantine, or a stop
/// before dispatch); report/solution are then meaningless.  Cancelled /
/// timed-out / corrupted jobs whose final attempt ran to a report keep
/// error empty — `outcome` is the authoritative terminal state.
struct JobResult {
  std::uint64_t id = 0;
  std::uint64_t dispatch_seq = 0;
  JobOutcome outcome = JobOutcome::kOk;
  int attempts = 1;  ///< attempts actually started (1 + retries used)
  api::SolveReport report;
  std::vector<double> solution;
  std::string error;
};

class SolverService {
 public:
  explicit SolverService(ServiceConfig cfg = {});

  /// Drains every queued job, then stops the scheduler.  Unclaimed
  /// results are discarded.
  ~SolverService();

  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  /// Enqueues a solve described by a SolverOptions spec string.
  /// Parses and validates eagerly, so bad options throw here (with the
  /// parse/validate error text) rather than surfacing asynchronously.
  /// Blocks while the queue is at capacity.  Returns the job id.
  std::uint64_t submit(const std::string& spec);
  std::uint64_t submit(api::SolverOptions opts);

  /// Same, with an explicit RHS instead of the operator's cached
  /// ones-RHS (the perturbed-RHS repeat-solve path).
  std::uint64_t submit(const std::string& spec, std::vector<double> rhs);
  std::uint64_t submit(api::SolverOptions opts, std::vector<double> rhs);

  /// Blocks until job `id` completes and returns (consumes) its
  /// result.  Throws std::invalid_argument for unknown/claimed ids.
  JobResult wait(std::uint64_t id);

  /// Requests cooperative cancellation of job `id`: a queued job
  /// resolves to kCancelled without dispatching; a running solve stops
  /// at its next restart boundary.  Returns false when the job is
  /// unknown or already completed (cancellation raced completion —
  /// wait() then returns the finished result).
  bool cancel(std::uint64_t id);

  /// Blocks until every submitted job has completed; returns all
  /// unclaimed results in submission (id) order.
  std::vector<JobResult> drain();

  [[nodiscard]] OperatorCache::Stats cache_stats() const {
    return cache_.stats();
  }
  [[nodiscard]] const OperatorCache& cache() const { return cache_; }

  /// All completed jobs' reports, in completion order.  Call only when
  /// no jobs are in flight (e.g. after drain()).
  [[nodiscard]] const api::ReportLog& log() const { return log_; }

 private:
  struct Job {
    std::uint64_t id = 0;
    api::SolverOptions opts;
    std::vector<double> rhs;  ///< empty = use the cached ones-RHS
    bool has_rhs = false;
    std::chrono::steady_clock::time_point submitted;
    /// Created at enqueue so cancel(id) reaches the job at any stage;
    /// shared with the solve through api::Solver::set_cancel_token.
    std::shared_ptr<par::CancelToken> token;
  };

  std::uint64_t enqueue(Job job);
  void scheduler_loop();
  void run_job(Job& job, std::uint64_t dispatch_seq);
  /// One solve attempt against the cached operator; fills res.report /
  /// res.solution on success and returns the attempt's outcome.
  /// Exceptions (injected throws included) propagate to run_job's
  /// retry loop.
  JobOutcome run_attempt(Job& job, par::FaultInjector* injector,
                         double queue_seconds, JobResult& res);

  ServiceConfig cfg_;
  OperatorCache cache_;
  api::ReportLog log_;

  mutable std::mutex mu_;
  std::condition_variable cv_work_;   // scheduler: queue non-empty / stop
  std::condition_variable cv_space_;  // submitters: queue below capacity
  std::condition_variable cv_done_;   // waiters: a job completed
  std::deque<Job> queue_;
  std::map<std::uint64_t, JobResult> results_;
  /// Live jobs' cancel tokens (enqueue -> completion), for cancel(id).
  std::map<std::uint64_t, std::shared_ptr<par::CancelToken>> tokens_;
  /// Consecutive non-ok terminal outcomes per spec (opts.to_string()),
  /// reset on ok; drives quarantine_after.
  std::map<std::string, int> consecutive_failures_;
  std::uint64_t next_id_ = 1;
  std::uint64_t inflight_ = 0;  ///< submitted, not yet completed
  bool stop_ = false;

  std::uint64_t dispatch_counter_ = 0;  // scheduler thread only
  std::thread scheduler_;               // last member: starts in ctor
};

}  // namespace tsbo::service
