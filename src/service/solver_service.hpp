#pragma once
// Persistent solver service: a long-lived front end over api::Solver
// for workloads that issue many solves against a small set of
// operators (the production-serving shape the ROADMAP names).
//
//   service::SolverService svc;
//   auto id1 = svc.submit("matrix=laplace2d_5pt nx=128 ranks=2");
//   auto id2 = svc.submit("matrix=laplace2d_5pt nx=128 ranks=2 warm_start=1");
//   service::JobResult r = svc.wait(id2);   // r.report.service.cache_hit
//
// Jobs are SolverOptions key=value strings (or parsed structs) entering
// a bounded FIFO queue.  A scheduler thread dispatches each batch over
// the shared par::ThreadPool via par::parallel_jobs: whole solves are
// unit work items claimed in ascending submission order off one
// monotone cursor, so dispatch order is FIFO and the thread-slice
// assignment inside each solve follows the library-wide determinism
// contract — a job's results are bitwise-identical to the same solve
// run standalone, at any thread or rank count.
//
// Expensive per-operator setup (matrix assembly, partitioned DistCsr
// with comm plan, preconditioner coloring / eigenvalue estimates, the
// ones-RHS, aligned scratch) is reused across jobs through the keyed
// OperatorCache.  Jobs against the same operator serialize on the
// entry (the DistCsr halo buffer is single-solve); jobs against
// different operators run concurrently.  With warm_start=1 a repeat
// solve seeds x0 from the operator's previous solution; warm_start=0
// jobs are bit-for-bit cold.
//
// Every job's SolveReport (schema tsbo.solve_report/5, service object
// filled in) is appended to a service-level ReportLog for uniform
// --json artifacts.

#include "api/report.hpp"
#include "service/operator_cache.hpp"

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace tsbo::service {

struct ServiceConfig {
  /// Bounded FIFO depth: submit() blocks while this many jobs await
  /// dispatch (backpressure, not rejection).
  std::size_t queue_capacity = 64;
  /// OperatorCache LRU byte budget.
  std::size_t cache_budget_bytes = std::size_t{256} << 20;
  /// ReportLog label of the --json artifact.
  std::string label = "service";
};

/// Completed job: the /5 report (service object filled), the gathered
/// solution, and the dispatch sequence number (ascending in submission
/// order — the FIFO determinism pin).  `error` is non-empty when the
/// solve threw; report/solution are then meaningless.
struct JobResult {
  std::uint64_t id = 0;
  std::uint64_t dispatch_seq = 0;
  api::SolveReport report;
  std::vector<double> solution;
  std::string error;
};

class SolverService {
 public:
  explicit SolverService(ServiceConfig cfg = {});

  /// Drains every queued job, then stops the scheduler.  Unclaimed
  /// results are discarded.
  ~SolverService();

  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  /// Enqueues a solve described by a SolverOptions spec string.
  /// Parses and validates eagerly, so bad options throw here (with the
  /// parse/validate error text) rather than surfacing asynchronously.
  /// Blocks while the queue is at capacity.  Returns the job id.
  std::uint64_t submit(const std::string& spec);
  std::uint64_t submit(api::SolverOptions opts);

  /// Same, with an explicit RHS instead of the operator's cached
  /// ones-RHS (the perturbed-RHS repeat-solve path).
  std::uint64_t submit(const std::string& spec, std::vector<double> rhs);
  std::uint64_t submit(api::SolverOptions opts, std::vector<double> rhs);

  /// Blocks until job `id` completes and returns (consumes) its
  /// result.  Throws std::invalid_argument for unknown/claimed ids.
  JobResult wait(std::uint64_t id);

  /// Blocks until every submitted job has completed; returns all
  /// unclaimed results in submission (id) order.
  std::vector<JobResult> drain();

  [[nodiscard]] OperatorCache::Stats cache_stats() const {
    return cache_.stats();
  }
  [[nodiscard]] const OperatorCache& cache() const { return cache_; }

  /// All completed jobs' reports, in completion order.  Call only when
  /// no jobs are in flight (e.g. after drain()).
  [[nodiscard]] const api::ReportLog& log() const { return log_; }

 private:
  struct Job {
    std::uint64_t id = 0;
    api::SolverOptions opts;
    std::vector<double> rhs;  ///< empty = use the cached ones-RHS
    bool has_rhs = false;
    std::chrono::steady_clock::time_point submitted;
  };

  std::uint64_t enqueue(Job job);
  void scheduler_loop();
  void run_job(Job& job, std::uint64_t dispatch_seq);

  ServiceConfig cfg_;
  OperatorCache cache_;
  api::ReportLog log_;

  mutable std::mutex mu_;
  std::condition_variable cv_work_;   // scheduler: queue non-empty / stop
  std::condition_variable cv_space_;  // submitters: queue below capacity
  std::condition_variable cv_done_;   // waiters: a job completed
  std::deque<Job> queue_;
  std::map<std::uint64_t, JobResult> results_;
  std::uint64_t next_id_ = 1;
  std::uint64_t inflight_ = 0;  ///< submitted, not yet completed
  bool stop_ = false;

  std::uint64_t dispatch_counter_ = 0;  // scheduler thread only
  std::thread scheduler_;               // last member: starts in ctor
};

}  // namespace tsbo::service
