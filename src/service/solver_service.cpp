#include "service/solver_service.hpp"

#include "api/solver.hpp"
#include "par/config.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

namespace tsbo::service {

const char* to_string(JobOutcome outcome) {
  switch (outcome) {
    case JobOutcome::kOk: return "ok";
    case JobOutcome::kFailed: return "failed";
    case JobOutcome::kTimedOut: return "timed_out";
    case JobOutcome::kCancelled: return "cancelled";
    case JobOutcome::kQuarantined: return "quarantined";
    case JobOutcome::kCorrupted: return "corrupted";
  }
  return "unknown";
}

namespace {

/// Whether the registry's chebyshev entry would take the power-method
/// estimate path for these options (the only Chebyshev variant whose
/// setup the cache holds; an explicit interval is cheap to rebuild).
bool chebyshev_estimates(const api::SolverOptions& opts) {
  return opts.precond == "chebyshev" &&
         !(opts.precond_lambda_max > opts.precond_lambda_min &&
           opts.precond_lambda_max > 0.0);
}

/// Matches the default `power_iters` of the fused
/// ChebyshevPolynomial(a, degree) constructor the registry's estimate
/// path calls — keep in sync so cached setups stay bitwise-pinned.
constexpr int kChebyshevPowerIters = 10;

}  // namespace

SolverService::SolverService(ServiceConfig cfg)
    : cfg_(std::move(cfg)),
      cache_(cfg_.cache_budget_bytes),
      log_(cfg_.label),
      scheduler_([this] { scheduler_loop(); }) {}

SolverService::~SolverService() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  scheduler_.join();
}

std::uint64_t SolverService::submit(const std::string& spec) {
  return submit(api::SolverOptions::parse(spec));
}

std::uint64_t SolverService::submit(const std::string& spec,
                                    std::vector<double> rhs) {
  return submit(api::SolverOptions::parse(spec), std::move(rhs));
}

std::uint64_t SolverService::submit(api::SolverOptions opts) {
  opts.validate();
  Job job;
  job.opts = std::move(opts);
  return enqueue(std::move(job));
}

std::uint64_t SolverService::submit(api::SolverOptions opts,
                                    std::vector<double> rhs) {
  opts.validate();
  Job job;
  job.opts = std::move(opts);
  job.rhs = std::move(rhs);
  job.has_rhs = true;
  return enqueue(std::move(job));
}

std::uint64_t SolverService::enqueue(Job job) {
  std::unique_lock lock(mu_);
  cv_space_.wait(lock, [this] {
    return stop_ || queue_.size() < cfg_.queue_capacity;
  });
  if (stop_) {
    throw std::runtime_error("service: submit() on a stopping SolverService");
  }
  job.id = next_id_++;
  job.submitted = std::chrono::steady_clock::now();
  job.token = std::make_shared<par::CancelToken>();
  tokens_.emplace(job.id, job.token);
  const std::uint64_t id = job.id;
  queue_.push_back(std::move(job));
  ++inflight_;
  cv_work_.notify_one();
  return id;
}

JobResult SolverService::wait(std::uint64_t id) {
  std::unique_lock lock(mu_);
  if (id == 0 || id >= next_id_) {
    throw std::invalid_argument("service: wait() on unknown job id " +
                                std::to_string(id));
  }
  cv_done_.wait(lock, [this, id] { return results_.count(id) != 0; });
  auto it = results_.find(id);
  JobResult out = std::move(it->second);
  results_.erase(it);
  return out;
}

bool SolverService::cancel(std::uint64_t id) {
  std::lock_guard lock(mu_);
  auto it = tokens_.find(id);
  if (it == tokens_.end()) return false;  // unknown or already completed
  it->second->cancel();
  return true;
}

std::vector<JobResult> SolverService::drain() {
  std::unique_lock lock(mu_);
  cv_done_.wait(lock, [this] { return inflight_ == 0; });
  std::vector<JobResult> out;
  out.reserve(results_.size());
  for (auto& [id, res] : results_) out.push_back(std::move(res));
  results_.clear();
  return out;  // std::map iteration = ascending id = submission order
}

void SolverService::scheduler_loop() {
  for (;;) {
    std::vector<Job> batch;
    {
      std::unique_lock lock(mu_);
      cv_work_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and fully drained
      if (cfg_.max_inflight_per_key == 0) {
        batch.assign(std::make_move_iterator(queue_.begin()),
                     std::make_move_iterator(queue_.end()));
        queue_.clear();
      } else {
        // Fairness cap: take at most max_inflight_per_key jobs per
        // operator key this round, front to back, leaving the overflow
        // queued in place.  Relative order is preserved on both sides,
        // and the front job is always taken, so every round makes
        // progress.
        std::map<std::string, std::size_t> picked;
        std::deque<Job> overflow;
        for (Job& j : queue_) {
          std::size_t& count = picked[operator_cache_key(j.opts)];
          if (count < cfg_.max_inflight_per_key) {
            ++count;
            batch.push_back(std::move(j));
          } else {
            overflow.push_back(std::move(j));
          }
        }
        queue_ = std::move(overflow);
      }
      cv_space_.notify_all();
    }
    // Whole solves as unit work items, claimed in ascending index
    // order: FIFO dispatch, deterministic thread-slice assignment.
    const std::uint64_t base = dispatch_counter_;
    par::parallel_jobs(batch.size(), [this, &batch, base](std::size_t i) {
      run_job(batch[i], base + static_cast<std::uint64_t>(i));
    });
    dispatch_counter_ += batch.size();
  }
}

void SolverService::run_job(Job& job, std::uint64_t dispatch_seq) {
  JobResult res;
  res.id = job.id;
  res.dispatch_seq = dispatch_seq;
  const double queue_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    job.submitted)
          .count();
  const std::string spec = job.opts.to_string();

  // Quarantine fail-fast: a spec that kept failing does not get to
  // burn another pool slot (and its retries) on every resubmission.
  bool quarantined = false;
  if (job.opts.quarantine_after > 0) {
    std::lock_guard lock(mu_);
    const auto it = consecutive_failures_.find(spec);
    if (it != consecutive_failures_.end() &&
        it->second >= job.opts.quarantine_after) {
      quarantined = true;
      res.outcome = JobOutcome::kQuarantined;
      res.error = "service: spec quarantined after " +
                  std::to_string(it->second) + " consecutive failures";
    }
  }

  if (!quarantined) {
    // The deadline clock starts at dispatch, not submit: queue wait is
    // the service's fault, not the job's.
    if (job.opts.deadline_ms > 0) {
      job.token->set_deadline_after(
          std::chrono::milliseconds(job.opts.deadline_ms));
    }
    // One injector across all attempts: fired one-shot faults stay
    // fired, so a retry re-runs the exact solve minus the event.
    std::optional<par::FaultInjector> injector;
    if (!job.opts.faults.empty()) {
      injector.emplace(par::FaultPlan::parse(job.opts.faults), job.opts.ranks);
    }

    const int max_attempts = 1 + std::max(0, job.opts.retries);
    for (int attempt = 1; attempt <= max_attempts; ++attempt) {
      if (job.token->cancelled()) {
        res.outcome = JobOutcome::kCancelled;
        res.error = "service: job cancelled before attempt " +
                    std::to_string(attempt);
        break;
      }
      if (job.token->deadline_expired()) {
        res.outcome = JobOutcome::kTimedOut;
        res.error = "service: deadline expired before attempt " +
                    std::to_string(attempt);
        break;
      }
      res.attempts = attempt;
      res.error.clear();
      if (injector.has_value()) injector->begin_attempt(attempt);
      try {
        res.outcome = run_attempt(
            job, injector.has_value() ? &injector.value() : nullptr,
            queue_seconds, res);
      } catch (const std::exception& e) {
        res.outcome = JobOutcome::kFailed;
        res.error = e.what();
      }
      // Terminal for this job: success, or a stop that retrying cannot
      // beat (the deadline stays expired; cancellation stays requested).
      if (res.outcome == JobOutcome::kOk ||
          res.outcome == JobOutcome::kTimedOut ||
          res.outcome == JobOutcome::kCancelled) {
        break;
      }
      if (attempt == max_attempts) break;
      // Exponential backoff with deterministic per-job jitter before
      // the retry (failed or corrupted attempt).
      const long base = std::max<long>(1, cfg_.retry_backoff_ms);
      const long backoff = base << (attempt - 1);
      const long jitter = static_cast<long>(job.id % 3);
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff + jitter));
    }
  }

  // The report always states the job-level terminal view, whether or
  // not an attempt ran.
  res.report.resilience.outcome = to_string(res.outcome);
  res.report.resilience.attempts = res.attempts;

  std::lock_guard lock(mu_);
  if (job.opts.quarantine_after > 0) {
    if (res.outcome == JobOutcome::kOk) {
      consecutive_failures_[spec] = 0;
    } else if (res.outcome == JobOutcome::kFailed ||
               res.outcome == JobOutcome::kCorrupted ||
               res.outcome == JobOutcome::kTimedOut) {
      ++consecutive_failures_[spec];
    }
  }
  tokens_.erase(job.id);
  if (res.error.empty()) log_.add(res.report);
  results_.emplace(res.id, std::move(res));
  --inflight_;
  cv_done_.notify_all();
}

JobOutcome SolverService::run_attempt(Job& job, par::FaultInjector* injector,
                                      double queue_seconds, JobResult& res) {
  bool hit = false;
  const std::shared_ptr<CachedOperator> op = cache_.acquire(job.opts, &hit);

  // One solve at a time per entry: the DistCsr pieces' halo buffers
  // are single-solve, and the warm-start seeds must not be torn.
  std::lock_guard entry_lock(op->in_use);

  // Dispatch-site fault seam, consulted with rank 0's counter (the
  // dispatch is a rank-independent service action).  corrupt flips a
  // bit in the *cached* global matrix — the soft-error-in-cached-state
  // scenario the checksum revalidation below exists for.
  if (injector != nullptr) {
    sparse::CsrMatrix& m = op->matrix;
    injector->consult(0, par::FaultSite::kServiceDispatch, [&m](long ordinal) {
      const sparse::offset nnz = m.nnz();
      if (nnz <= 0) return;
      par::FaultInjector::flip_bit(
          m.values[static_cast<std::size_t>(ordinal % nnz)]);
    });
  }

  const api::SolverOptions& opts = job.opts;
  const bool use_mc =
      opts.precond == "mc-gs" || opts.precond == "mc-sgs";
  const bool use_cheb = chebyshev_estimates(opts);
  const auto populated = [](const auto& setups) {
    return !setups.empty() &&
           std::all_of(setups.begin(), setups.end(),
                       [](const auto& s) { return s != nullptr; });
  };
  const bool setups_ready = (use_mc && populated(op->mc_setups)) ||
                            (use_cheb && populated(op->cheb_setups));

  api::Solver solver(opts);
  solver.set_matrix_ref(op->matrix, op->label);
  solver.set_partitioned_operator(&op->pieces);
  solver.set_local_workspace(&op->workspace);
  // Batched (rhs=k) jobs without an explicit RHS solve the standard
  // batch block (column 0 == the cached ones-RHS); built per attempt,
  // since the operator cache key excludes solver settings like rhs.
  std::vector<double> batch_b;
  const auto nrhs = static_cast<std::size_t>(std::max(1, opts.rhs));
  const bool default_batch = nrhs > 1 && !job.has_rhs;
  if (default_batch) batch_b = api::batch_rhs(op->matrix, opts.rhs);
  const std::vector<double>& rhs_vec =
      job.has_rhs ? job.rhs : (default_batch ? batch_b : op->ones_b);
  solver.set_rhs_ref(rhs_vec);
  solver.set_fault_injector(injector);
  solver.set_cancel_token(job.token.get());
  if (use_mc) {
    solver.set_precond_factory(
        [op](const api::SolverOptions& o, const sparse::DistCsr& a,
             int rank) -> std::unique_ptr<precond::Preconditioner> {
          auto& slot = op->mc_setups[static_cast<std::size_t>(rank)];
          if (!slot) {
            slot = std::make_shared<const precond::MulticolorSetup>(a);
          }
          return std::make_unique<precond::MulticolorGaussSeidel>(
              slot, o.precond_sweeps, /*symmetric=*/o.precond == "mc-sgs");
        });
  } else if (use_cheb) {
    solver.set_precond_factory(
        [op](const api::SolverOptions& o, const sparse::DistCsr& a,
             int rank) -> std::unique_ptr<precond::Preconditioner> {
          auto& slot = op->cheb_setups[static_cast<std::size_t>(rank)];
          if (!slot) {
            slot = std::make_shared<const precond::ChebyshevSetup>(
                a, kChebyshevPowerIters);
          }
          return std::make_unique<precond::ChebyshevPolynomial>(
              slot, o.precond_degree);
        });
  }

  // Warm start: per-RHS-column fingerprints.  Column t seeds from the
  // seed whose fingerprint matches that column's RHS bits exactly, so
  // interleaved job streams (and batch columns) never inherit a
  // mismatched guess; batch columns with no match stay zero-seeded.
  // Single-RHS jobs keep the most-recent-seed fallback for
  // perturbed-RHS repeats.
  const auto n = static_cast<std::size_t>(op->matrix.rows);
  std::vector<std::uint64_t> fps(nrhs);
  for (std::size_t t = 0; t < nrhs; ++t) {
    fps[t] =
        rhs_fingerprint(std::span<const double>(rhs_vec.data() + t * n, n));
  }
  bool warm = false;
  if (opts.warm_start == 1 && !op->seeds.empty()) {
    std::vector<double> x0(n * nrhs, 0.0);
    bool any_seeded = false;
    for (std::size_t t = 0; t < nrhs; ++t) {
      const CachedOperator::SolutionSeed* pick = nullptr;
      for (const CachedOperator::SolutionSeed& s : op->seeds) {
        if (s.rhs_fingerprint == fps[t]) {
          pick = &s;
          break;
        }
      }
      if (pick == nullptr && nrhs == 1) pick = &op->seeds.front();
      if (pick != nullptr && pick->x.size() == n) {
        std::copy(pick->x.begin(), pick->x.end(),
                  x0.begin() + static_cast<std::ptrdiff_t>(t * n));
        any_seeded = true;
      }
    }
    if (any_seeded) {
      solver.set_initial_guess(std::move(x0));
      warm = true;
    }
  }

  api::SolveReport report = solver.solve();

  report.service.enabled = true;
  report.service.cache_hit = hit;
  report.service.warm_started = warm;
  report.service.queue_seconds = queue_seconds;
  report.service.setup_seconds = hit ? 0.0 : op->build_seconds;
  report.service.reused_matrix = hit;
  report.service.reused_partition = hit;
  report.service.reused_precond_setup = setups_ready;
  report.service.reused_rhs = hit && !job.has_rhs && nrhs == 1;
  report.service.cache_key = op->key;

  // Attempt-level classification from the facade's resilience record.
  JobOutcome outcome = JobOutcome::kOk;
  if (report.resilience.guard_verdict == "corrupted") {
    outcome = JobOutcome::kCorrupted;
  } else if (report.result.cancelled) {
    outcome = JobOutcome::kCancelled;
  } else if (report.result.deadline_expired) {
    outcome = JobOutcome::kTimedOut;
  }

  if (outcome == JobOutcome::kOk) {
    // Seed future warm starts only from sound solutions (MRU, capped).
    // Batched solves store one seed per column, keyed by that column's
    // fingerprint, so later single-RHS (or re-batched) jobs solving
    // the same b find it.
    auto& seeds = op->seeds;
    const std::vector<double>& sol = solver.solution();
    for (std::size_t t = 0; t < nrhs; ++t) {
      for (auto it = seeds.begin(); it != seeds.end(); ++it) {
        if (it->rhs_fingerprint == fps[t]) {
          seeds.erase(it);
          break;
        }
      }
      seeds.insert(
          seeds.begin(),
          CachedOperator::SolutionSeed{
              fps[t],
              std::vector<double>(
                  sol.begin() + static_cast<std::ptrdiff_t>(t * n),
                  sol.begin() + static_cast<std::ptrdiff_t>((t + 1) * n))});
    }
    if (seeds.size() > kMaxSolutionSeeds) seeds.resize(kMaxSolutionSeeds);
  } else if (outcome == JobOutcome::kCorrupted) {
    // The guard says the answer is unsound.  If the cached matrix no
    // longer matches its build-time checksum, the cached state itself
    // was mutated — drop the entry so the retry rebuilds clean.
    if (op->matrix.checksum() != op->matrix_checksum) {
      cache_.invalidate(op->key);
    }
  }

  res.report = std::move(report);
  res.solution = solver.solution();

  // Lazy setups and warm-start seeds grew the entry: re-account.
  cache_.refresh_bytes(op);
  return outcome;
}

}  // namespace tsbo::service
