#include "service/solver_service.hpp"

#include "api/solver.hpp"
#include "par/config.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace tsbo::service {

namespace {

/// Whether the registry's chebyshev entry would take the power-method
/// estimate path for these options (the only Chebyshev variant whose
/// setup the cache holds; an explicit interval is cheap to rebuild).
bool chebyshev_estimates(const api::SolverOptions& opts) {
  return opts.precond == "chebyshev" &&
         !(opts.precond_lambda_max > opts.precond_lambda_min &&
           opts.precond_lambda_max > 0.0);
}

/// Matches the default `power_iters` of the fused
/// ChebyshevPolynomial(a, degree) constructor the registry's estimate
/// path calls — keep in sync so cached setups stay bitwise-pinned.
constexpr int kChebyshevPowerIters = 10;

}  // namespace

SolverService::SolverService(ServiceConfig cfg)
    : cfg_(std::move(cfg)),
      cache_(cfg_.cache_budget_bytes),
      log_(cfg_.label),
      scheduler_([this] { scheduler_loop(); }) {}

SolverService::~SolverService() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  scheduler_.join();
}

std::uint64_t SolverService::submit(const std::string& spec) {
  return submit(api::SolverOptions::parse(spec));
}

std::uint64_t SolverService::submit(const std::string& spec,
                                    std::vector<double> rhs) {
  return submit(api::SolverOptions::parse(spec), std::move(rhs));
}

std::uint64_t SolverService::submit(api::SolverOptions opts) {
  opts.validate();
  Job job;
  job.opts = std::move(opts);
  return enqueue(std::move(job));
}

std::uint64_t SolverService::submit(api::SolverOptions opts,
                                    std::vector<double> rhs) {
  opts.validate();
  Job job;
  job.opts = std::move(opts);
  job.rhs = std::move(rhs);
  job.has_rhs = true;
  return enqueue(std::move(job));
}

std::uint64_t SolverService::enqueue(Job job) {
  std::unique_lock lock(mu_);
  cv_space_.wait(lock, [this] {
    return stop_ || queue_.size() < cfg_.queue_capacity;
  });
  if (stop_) {
    throw std::runtime_error("service: submit() on a stopping SolverService");
  }
  job.id = next_id_++;
  job.submitted = std::chrono::steady_clock::now();
  const std::uint64_t id = job.id;
  queue_.push_back(std::move(job));
  ++inflight_;
  cv_work_.notify_one();
  return id;
}

JobResult SolverService::wait(std::uint64_t id) {
  std::unique_lock lock(mu_);
  if (id == 0 || id >= next_id_) {
    throw std::invalid_argument("service: wait() on unknown job id " +
                                std::to_string(id));
  }
  cv_done_.wait(lock, [this, id] { return results_.count(id) != 0; });
  auto it = results_.find(id);
  JobResult out = std::move(it->second);
  results_.erase(it);
  return out;
}

std::vector<JobResult> SolverService::drain() {
  std::unique_lock lock(mu_);
  cv_done_.wait(lock, [this] { return inflight_ == 0; });
  std::vector<JobResult> out;
  out.reserve(results_.size());
  for (auto& [id, res] : results_) out.push_back(std::move(res));
  results_.clear();
  return out;  // std::map iteration = ascending id = submission order
}

void SolverService::scheduler_loop() {
  for (;;) {
    std::vector<Job> batch;
    {
      std::unique_lock lock(mu_);
      cv_work_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and fully drained
      batch.assign(std::make_move_iterator(queue_.begin()),
                   std::make_move_iterator(queue_.end()));
      queue_.clear();
      cv_space_.notify_all();
    }
    // Whole solves as unit work items, claimed in ascending index
    // order: FIFO dispatch, deterministic thread-slice assignment.
    const std::uint64_t base = dispatch_counter_;
    par::parallel_jobs(batch.size(), [this, &batch, base](std::size_t i) {
      run_job(batch[i], base + static_cast<std::uint64_t>(i));
    });
    dispatch_counter_ += batch.size();
  }
}

void SolverService::run_job(Job& job, std::uint64_t dispatch_seq) {
  JobResult res;
  res.id = job.id;
  res.dispatch_seq = dispatch_seq;
  const double queue_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    job.submitted)
          .count();
  try {
    bool hit = false;
    const std::shared_ptr<CachedOperator> op = cache_.acquire(job.opts, &hit);

    // One solve at a time per entry: the DistCsr pieces' halo buffers
    // are single-solve, and last_solution must not be torn.
    std::lock_guard entry_lock(op->in_use);

    const api::SolverOptions& opts = job.opts;
    const bool use_mc =
        opts.precond == "mc-gs" || opts.precond == "mc-sgs";
    const bool use_cheb = chebyshev_estimates(opts);
    const auto populated = [](const auto& setups) {
      return !setups.empty() &&
             std::all_of(setups.begin(), setups.end(),
                         [](const auto& s) { return s != nullptr; });
    };
    const bool setups_ready = (use_mc && populated(op->mc_setups)) ||
                              (use_cheb && populated(op->cheb_setups));

    api::Solver solver(opts);
    solver.set_matrix_ref(op->matrix, op->label);
    solver.set_partitioned_operator(&op->pieces);
    solver.set_local_workspace(&op->workspace);
    solver.set_rhs_ref(job.has_rhs ? job.rhs : op->ones_b);
    if (use_mc) {
      solver.set_precond_factory(
          [op](const api::SolverOptions& o, const sparse::DistCsr& a,
               int rank) -> std::unique_ptr<precond::Preconditioner> {
            auto& slot = op->mc_setups[static_cast<std::size_t>(rank)];
            if (!slot) {
              slot = std::make_shared<const precond::MulticolorSetup>(a);
            }
            return std::make_unique<precond::MulticolorGaussSeidel>(
                slot, o.precond_sweeps, /*symmetric=*/o.precond == "mc-sgs");
          });
    } else if (use_cheb) {
      solver.set_precond_factory(
          [op](const api::SolverOptions& o, const sparse::DistCsr& a,
               int rank) -> std::unique_ptr<precond::Preconditioner> {
            auto& slot = op->cheb_setups[static_cast<std::size_t>(rank)];
            if (!slot) {
              slot = std::make_shared<const precond::ChebyshevSetup>(
                  a, kChebyshevPowerIters);
            }
            return std::make_unique<precond::ChebyshevPolynomial>(
                slot, o.precond_degree);
          });
    }

    const bool warm = opts.warm_start == 1 && op->has_solution;
    if (warm) solver.set_initial_guess(op->last_solution);

    api::SolveReport report = solver.solve();

    op->last_solution = solver.solution();
    op->has_solution = true;

    report.service.enabled = true;
    report.service.cache_hit = hit;
    report.service.warm_started = warm;
    report.service.queue_seconds = queue_seconds;
    report.service.setup_seconds = hit ? 0.0 : op->build_seconds;
    report.service.reused_matrix = hit;
    report.service.reused_partition = hit;
    report.service.reused_precond_setup = setups_ready;
    report.service.reused_rhs = hit && !job.has_rhs;
    report.service.cache_key = op->key;

    res.report = std::move(report);
    res.solution = solver.solution();

    // Lazy setups and last_solution grew the entry: re-account.
    cache_.refresh_bytes(op);
  } catch (const std::exception& e) {
    res.error = e.what();
  }

  std::lock_guard lock(mu_);
  if (res.error.empty()) log_.add(res.report);
  results_.emplace(res.id, std::move(res));
  --inflight_;
  cv_done_.notify_all();
}

}  // namespace tsbo::service
