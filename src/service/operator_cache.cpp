#include "service/operator_cache.hpp"

#include "api/solver.hpp"
#include "sparse/partition.hpp"
#include "util/timer.hpp"

#include <utility>

namespace tsbo::service {

std::string operator_cache_key(const api::SolverOptions& opts) {
  // Canonical "key=value" echo of exactly the operator-determining
  // keys, in fixed order, so the key doubles as human-readable
  // provenance in the /5 report's service object.
  std::string out;
  for (const char* key : {"matrix", "matrix_file", "nx", "ny", "nz", "n",
                          "equilibrate", "ranks"}) {
    if (!out.empty()) out.push_back(' ');
    out += std::string(key) + "=" + opts.get(key);
  }
  return out;
}

std::uint64_t rhs_fingerprint(std::span<const double> b) {
  // FNV-1a over the raw value bits (same fold as Csr::checksum), so
  // -0.0 vs 0.0 and single-bit perturbations all produce distinct
  // fingerprints.
  constexpr std::uint64_t kOffset = 1469598103934665603ull;
  constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t h = kOffset;
  const auto* bytes = reinterpret_cast<const unsigned char*>(b.data());
  const std::size_t nbytes = b.size() * sizeof(double);
  for (std::size_t i = 0; i < nbytes; ++i) {
    h ^= bytes[i];
    h *= kPrime;
  }
  return h;
}

std::uint64_t rhs_fingerprint(const std::vector<double>& b) {
  return rhs_fingerprint(std::span<const double>(b.data(), b.size()));
}

std::size_t CachedOperator::bytes() const {
  std::size_t b = matrix.storage_bytes();
  for (const sparse::DistCsr& piece : pieces) b += piece.footprint_bytes();
  b += ones_b.capacity() * sizeof(double);
  for (const auto& w : workspace) b += w.capacity() * sizeof(double);
  for (const auto& s : mc_setups) {
    if (s) b += s->bytes();
  }
  for (const auto& s : cheb_setups) {
    if (s) b += s->bytes();
  }
  for (const SolutionSeed& seed : seeds) {
    b += seed.x.capacity() * sizeof(double);
  }
  return b;
}

std::shared_ptr<CachedOperator> build_operator(const api::SolverOptions& opts) {
  auto op = std::make_shared<CachedOperator>();
  util::WallTimer timer;
  op->key = operator_cache_key(opts);
  // Same construction path as a standalone api::Solver::solve(): the
  // registry build (+ equilibration), the 1-D block row partition, one
  // DistCsr per rank, and the all-ones RHS — so solves against the
  // cached pieces are bitwise-identical to cold solves.
  op->matrix = api::make_matrix(opts, &op->label);
  const sparse::RowPartition part(op->matrix.rows, opts.ranks);
  op->pieces.reserve(static_cast<std::size_t>(opts.ranks));
  for (int r = 0; r < opts.ranks; ++r) {
    op->pieces.emplace_back(op->matrix, part, r);
  }
  op->ones_b = api::ones_rhs(op->matrix);
  op->workspace.resize(static_cast<std::size_t>(opts.ranks));
  op->mc_setups.resize(static_cast<std::size_t>(opts.ranks));
  op->cheb_setups.resize(static_cast<std::size_t>(opts.ranks));
  op->build_seconds = timer.seconds();
  op->matrix_checksum = op->matrix.checksum();
  return op;
}

OperatorCache::OperatorCache(std::size_t budget_bytes)
    : budget_(budget_bytes) {}

std::shared_ptr<CachedOperator> OperatorCache::acquire(
    const api::SolverOptions& opts, bool* hit) {
  const std::string key = operator_cache_key(opts);
  {
    std::lock_guard lock(mu_);
    for (auto it = lru_.begin(); it != lru_.end(); ++it) {
      if (it->op->key == key) {
        lru_.splice(lru_.begin(), lru_, it);  // touch
        ++stats_.hits;
        if (hit != nullptr) *hit = true;
        return lru_.front().op;
      }
    }
  }
  // Miss: build outside the lock (construction is the expensive part
  // the cache exists to amortize; holding mu_ here would serialize
  // unrelated operators behind it).
  std::shared_ptr<CachedOperator> built = build_operator(opts);
  std::lock_guard lock(mu_);
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    if (it->op->key == key) {  // lost the insert race: share the winner
      lru_.splice(lru_.begin(), lru_, it);
      ++stats_.hits;
      if (hit != nullptr) *hit = true;
      return lru_.front().op;
    }
  }
  ++stats_.misses;
  if (hit != nullptr) *hit = false;
  const std::size_t b = built->bytes();
  lru_.push_front(Slot{built, b});
  total_bytes_ += b;
  enforce_budget_locked();
  return built;
}

void OperatorCache::refresh_bytes(const std::shared_ptr<CachedOperator>& op) {
  std::lock_guard lock(mu_);
  for (Slot& slot : lru_) {
    if (slot.op == op) {
      const std::size_t b = op->bytes();
      total_bytes_ += b - slot.bytes;
      slot.bytes = b;
      enforce_budget_locked();
      return;
    }
  }
}

bool OperatorCache::invalidate(const std::string& key) {
  std::lock_guard lock(mu_);
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    if (it->op->key == key) {
      total_bytes_ -= it->bytes;
      lru_.erase(it);
      ++stats_.evictions;
      return true;
    }
  }
  return false;
}

void OperatorCache::enforce_budget_locked() {
  // Evict least-recently-used entries until under budget; the MRU
  // entry always survives so the job that just acquired it can run.
  while (total_bytes_ > budget_ && lru_.size() > 1) {
    total_bytes_ -= lru_.back().bytes;
    lru_.pop_back();
    ++stats_.evictions;
  }
}

OperatorCache::Stats OperatorCache::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

std::size_t OperatorCache::size() const {
  std::lock_guard lock(mu_);
  return lru_.size();
}

std::size_t OperatorCache::total_bytes() const {
  std::lock_guard lock(mu_);
  return total_bytes_;
}

std::size_t OperatorCache::budget_bytes() const {
  std::lock_guard lock(mu_);
  return budget_;
}

bool OperatorCache::contains(const std::string& key) const {
  std::lock_guard lock(mu_);
  for (const Slot& slot : lru_) {
    if (slot.op->key == key) return true;
  }
  return false;
}

}  // namespace tsbo::service
