#pragma once
// Keyed operator cache for the persistent solver service.
//
// The paper's amortization argument — setup-heavy two-stage
// BCGS+CholQR pays for itself over many panels — extends from panels
// to whole solves once a long-lived process serves repeat requests
// against the same operator.  This cache holds everything a solve
// needs that depends only on (matrix source, size, partition): the
// assembled CSR matrix, every rank's interior/boundary-partitioned
// DistCsr with its comm plan, the all-ones RHS, per-rank aligned
// solution scratch, lazily built preconditioner setups (MC-GS
// coloring, Chebyshev eigenvalue estimate), and the previous solution
// for warm starts.  Entries are LRU-evicted under a configurable byte
// budget; hits/misses/evictions are counted for the service report.
//
// Thread safety: the cache map itself is mutex-guarded.  Entries are
// handed out as shared_ptr, so an evicted entry stays alive until the
// job using it finishes.  A CachedOperator's DistCsr pieces share a
// mutable halo buffer per piece, so at most one solve may run against
// an entry at a time — callers hold `in_use` for the solve (the
// service serializes same-operator jobs this way; different operators
// run concurrently).

#include "api/options.hpp"
#include "precond/chebyshev.hpp"
#include "precond/gauss_seidel.hpp"
#include "sparse/csr.hpp"
#include "sparse/dist_csr.hpp"
#include "util/aligned.hpp"

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace tsbo::service {

/// Canonical cache key of an operator: the option keys that determine
/// the assembled matrix and its partition (matrix source + geometry +
/// equilibration + rank count).  Solver/ortho/preconditioner settings
/// are deliberately excluded — they change how the operator is used,
/// not what it is.
std::string operator_cache_key(const api::SolverOptions& opts);

/// Deterministic FNV-1a fold of an RHS's value bits — the fingerprint
/// warm-start seeds are keyed by, so interleaved job streams with
/// different right-hand sides never seed each other with mismatched
/// guesses.  The span overload fingerprints one column of a batched
/// (rhs=k) job's RHS block, so batch columns and single-RHS jobs that
/// solve the same b share seeds.
std::uint64_t rhs_fingerprint(std::span<const double> b);
std::uint64_t rhs_fingerprint(const std::vector<double>& b);

/// Warm-start seeds kept per cached operator (most-recent first).
inline constexpr std::size_t kMaxSolutionSeeds = 8;

/// One cached operator and its reusable setup.
struct CachedOperator {
  std::string key;
  std::string label;          ///< matrix provenance (report label)
  sparse::CsrMatrix matrix;   ///< assembled (and equilibrated) CSR
  std::vector<sparse::DistCsr> pieces;  ///< element r = rank r's piece
  std::vector<double> ones_b;           ///< b = A * ones (default RHS)
  /// Per-rank aligned solution scratch (api::Solver::set_local_workspace).
  std::vector<util::aligned_vector<double>> workspace;

  // Lazily built preconditioner setups, one per rank; empty slots until
  // the first solve that needs them.  Each solve's rank r touches only
  // slot r, and solves on one entry are serialized by `in_use`, so the
  // slots need no extra locking.
  std::vector<std::shared_ptr<const precond::MulticolorSetup>> mc_setups;
  std::vector<std::shared_ptr<const precond::ChebyshevSetup>> cheb_setups;

  /// Warm-start seeds: gathered solutions of recent solves against
  /// this operator, keyed by the RHS fingerprint they solved (exact
  /// fingerprint match preferred; most-recent as fallback for a
  /// perturbed RHS).  Most-recent first, capped at kMaxSolutionSeeds;
  /// guarded by in_use.
  struct SolutionSeed {
    std::uint64_t rhs_fingerprint = 0;
    std::vector<double> x;
  };
  std::vector<SolutionSeed> seeds;

  std::mutex in_use;  ///< held for the duration of one solve

  double build_seconds = 0.0;  ///< wall time the cache miss paid

  /// matrix.checksum() at build time.  After a corrupted-verdict solve
  /// the service re-validates the live matrix against this; a mismatch
  /// means the cached operator itself was mutated (injected
  /// service.dispatch corruption, stray write, soft error) and the
  /// entry is invalidated so the retry rebuilds clean state.
  std::uint64_t matrix_checksum = 0;

  /// Approximate heap footprint of everything above.
  [[nodiscard]] std::size_t bytes() const;
};

class OperatorCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  /// budget_bytes: LRU eviction threshold.  A single entry larger than
  /// the whole budget is still admitted (evicting everything else) —
  /// the cache never refuses to serve a job.
  explicit OperatorCache(std::size_t budget_bytes);

  /// Returns the entry for `opts`' operator, building it on a miss
  /// (outside the cache lock; a concurrent builder of the same key may
  /// win the insert race, in which case its entry is shared and this
  /// build is discarded).  `hit` (optional) receives whether reusable
  /// state existed.
  std::shared_ptr<CachedOperator> acquire(const api::SolverOptions& opts,
                                          bool* hit);

  /// Re-reads `op->bytes()` and re-enforces the budget — call after
  /// growing an entry in place (lazy preconditioner setups).
  void refresh_bytes(const std::shared_ptr<CachedOperator>& op);

  /// Drops the entry with `key` (if cached): the next acquire()
  /// rebuilds it.  Jobs already holding the shared_ptr keep their
  /// (possibly poisoned) entry alive until they finish.  Returns
  /// whether an entry was dropped.
  bool invalidate(const std::string& key);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t total_bytes() const;
  [[nodiscard]] std::size_t budget_bytes() const;
  [[nodiscard]] bool contains(const std::string& key) const;

 private:
  struct Slot {
    std::shared_ptr<CachedOperator> op;
    std::size_t bytes = 0;  ///< accounted footprint at last refresh
  };

  void enforce_budget_locked();

  mutable std::mutex mu_;
  std::size_t budget_;
  std::list<Slot> lru_;  ///< front = most recently used
  std::size_t total_bytes_ = 0;
  Stats stats_;
};

/// Builds a CachedOperator for `opts` (matrix assembly, per-rank
/// DistCsr partition, ones-RHS, workspace).  Exposed for tests that
/// need to size byte budgets.
std::shared_ptr<CachedOperator> build_operator(const api::SolverOptions& opts);

}  // namespace tsbo::service
