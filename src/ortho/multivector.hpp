#pragma once
// Distributed tall-skinny multivector primitives.
//
// Basis vectors are stored as rank-local row blocks (1-D block row
// layout, paper Section VII) of a column-major panel.  The primitives
// here are the paper's three orthogonalization building blocks:
//   * block dot products  R = Q^T V   (local GEMM + one global reduce)
//   * vector updates      V -= Q R    (local GEMM, no communication)
//   * normalization       V := V R^{-1} (local TRSM, no communication)
// plus the fused Gram matrix [Q, V]^T V that makes BCGS-PIP a
// *single-reduce* algorithm, and a breakdown-aware Cholesky wrapper.
//
// Every routine is collective across the communicator in OrthoContext;
// with a null communicator the same code runs single-rank (used by the
// MATLAB-style numerical studies of Figs. 6-8).

#include "dense/cholesky.hpp"
#include "dense/matrix.hpp"
#include "par/communicator.hpp"
#include "util/aligned.hpp"
#include "util/timer.hpp"

#include <functional>
#include <stdexcept>
#include <string>
#include <utility>

namespace tsbo::ortho {

using dense::ConstMatrixView;
using dense::index_t;
using dense::MatrixView;

/// What to do when the Cholesky factorization of a Gram matrix breaks
/// down (input condition number past ~eps^{-1/2}, paper condition (1)).
enum class BreakdownPolicy {
  kThrow,  ///< raise CholeskyBreakdown (numerical studies want to see it)
  kShift,  ///< retry with a diagonal shift (Fukaya et al. [11] remedy)
};

/// Raised on unrecoverable Gram-matrix breakdown.
class CholeskyBreakdown : public std::runtime_error {
 public:
  explicit CholeskyBreakdown(const std::string& what)
      : std::runtime_error(what) {}
};

/// Shared knobs + instrumentation for every orthogonalization call.
struct OrthoContext {
  par::Communicator* comm = nullptr;   ///< null -> single-rank execution
  util::PhaseTimers* timers = nullptr; ///< optional phase breakdown
  BreakdownPolicy policy = BreakdownPolicy::kThrow;
  /// Accumulate Gram matrices in double-double AND keep them in
  /// double-double through the Cholesky factorization (mixed-precision
  /// CholQR extension, paper related work [26]/[27]).  Contract: with
  /// this set, CholQR2 / BCGS-PIP deliver O(eps) orthogonality for
  /// kappa(V) up to ~1e15 (u_dd^{-1/2}) instead of ~1e8 (eps^{-1/2});
  /// only the triangular factor is rounded back to double, for the
  /// TRSM.  Costs ~5-10x the plain local Gram flops and 2x the reduce
  /// payload; the synchronization count is unchanged.
  bool mixed_precision_gram = false;

  // Instrumentation (mutated by the kernels).
  int cholesky_breakdowns = 0;  ///< failures seen (before recovery)
  int shift_retries = 0;        ///< shifted re-factorizations performed

  // --- Conditioning monitor (stability-autopilot input) ---------------
  // Every successful Gram Cholesky records a free conditioning estimate
  // from its triangular factor's diagonal,
  //     est = (max_i |r_ii| / min_i |r_ii|)^2  <=  kappa_2(G),
  // so sqrt(est) lower-bounds the basis condition number kappa_2(V)
  // the paper's conditions (1)/(5)/(9) constrain.  The factor is
  // computed from the *globally reduced* (rank-replicated) Gram, so the
  // estimate is bitwise-identical on every rank at any thread count —
  // safe to branch on without extra communication.  Note: schemes whose
  // intra-block step never factors a Gram (HHQR) contribute nothing.
  double last_gram_kappa = 0.0;  ///< estimate from the latest factorization
  double gram_kappa_peak = 0.0;  ///< running max since the last take_*()
  /// Returns the running peak and resets it; the s-step solver polls
  /// this once per panel (the stage-1 factorization dominates the peak;
  /// re-orthogonalization passes see O(1)-conditioned Grams).
  double take_gram_kappa_peak() {
    const double peak = gram_kappa_peak;
    gram_kappa_peak = 0.0;
    return peak;
  }

  /// Deterministic fault-injection seam (tests only).  Consulted once
  /// per Gram Cholesky with the global attempt ordinal; returning true
  /// makes that factorization report indefinite before any factor or
  /// shift attempt runs.  Gram factorizations happen on replicated
  /// post-reduce data in a collectively-ordered sequence, so the
  /// ordinal — and hence the injected breakdown — is identical on
  /// every rank at any thread count.
  std::function<bool(long)> inject_breakdown;
  long chol_attempts = 0;  ///< Gram Cholesky calls so far (seam ordinal)

  [[nodiscard]] int nranks() const { return comm ? comm->size() : 1; }
};

/// Exception-safe override of ctx.mixed_precision_gram for one pass.
/// The re-orthogonalization passes of the *2 algorithms use it to drop
/// to plain double once a clean first pass has left kappa(Q) = O(1) —
/// the dd Gram's 5-10x cost buys no stability there.
class ScopedGramPrecision {
 public:
  ScopedGramPrecision(OrthoContext& ctx, bool value)
      : ctx_(ctx), saved_(ctx.mixed_precision_gram) {
    ctx_.mixed_precision_gram = value;
  }
  ~ScopedGramPrecision() { ctx_.mixed_precision_gram = saved_; }
  ScopedGramPrecision(const ScopedGramPrecision&) = delete;
  ScopedGramPrecision& operator=(const ScopedGramPrecision&) = delete;

 private:
  OrthoContext& ctx_;
  bool saved_;
};

/// Local work a caller wants executed inside a split-phase reduce
/// window (between the iallreduce begin and its wait), where the
/// modeled fabric latency hides it.  Must not depend on the reduce
/// result.  It may open NESTED communication windows (halo exchanges,
/// further split-phase collectives up to par::kMaxInflight) — the
/// pipelined s-step runtime runs a whole matrix-powers sweep, halo
/// exchanges included, inside the stage-1 Gram reduce window — but it
/// must not wait on this reduce's own request, and every rank must
/// issue the identical nested sequence.
using OverlapHook = std::function<void()>;

/// In-flight global reduce of a (possibly strided) matrix view, issued
/// by the ireduce_* / fused_gram_*_ireduce entry points.  wait()
/// completes the communication and unpacks the reduced coefficients
/// into the view handed at issue time; the destructor waits, so an
/// exception unwinding through an overlap window stays collective.
/// Several PendingReduces may be outstanding per communicator (each
/// owns one of the rank's par::kMaxInflight publication slots), with
/// waits issued in the same order on every rank.
class PendingReduce {
 public:
  PendingReduce() = default;
  PendingReduce(PendingReduce&& o) noexcept { *this = std::move(o); }
  PendingReduce& operator=(PendingReduce&& o) noexcept {
    if (this != &o) {
      wait();
      req_ = std::move(o.req_);
      ctx_ = o.ctx_;
      packed_hi_ = std::move(o.packed_hi_);
      packed_lo_ = std::move(o.packed_lo_);
      hi_ = o.hi_;
      lo_ = o.lo_;
      dd_ = o.dd_;
      pending_ = o.pending_;
      o.pending_ = false;
    }
    return *this;
  }
  ~PendingReduce() { wait(); }

  void wait();

  /// Forwards CommRequest::no_overlap_credit(): the blocking wrappers
  /// (reduce-and-wait with an empty window) use it so overlapped
  /// seconds only accrue in engineered overlap windows.
  void no_overlap_credit() { req_.no_overlap_credit(); }

 private:
  friend PendingReduce ireduce_sum(OrthoContext& ctx, MatrixView c);
  friend PendingReduce ireduce_sum_dd(OrthoContext& ctx, MatrixView hi,
                                      MatrixView lo);

  par::CommRequest req_;
  OrthoContext* ctx_ = nullptr;
  // Packed staging for strided views (sub-blocks of the solver's R);
  // heap storage keeps the published pointers stable across moves.
  util::aligned_vector<double> packed_hi_, packed_lo_;
  MatrixView hi_{}, lo_{};
  bool dd_ = false;
  bool pending_ = false;
};

/// Issues the global sum-reduce of `c` split-phase and returns the
/// in-flight handle; local work done before wait() is credited against
/// the modeled reduce latency.  The reduced bits are identical to the
/// blocking reduce regardless of the overlap window.
[[nodiscard]] PendingReduce ireduce_sum(OrthoContext& ctx, MatrixView c);

/// Pair-form (double-double) counterpart; one fused dd all-reduce.
[[nodiscard]] PendingReduce ireduce_sum_dd(OrthoContext& ctx, MatrixView hi,
                                           MatrixView lo);

/// C = A^T B followed by a global sum-reduce of C.  One synchronization.
/// With ctx.mixed_precision_gram the local product is accumulated in
/// double-double but rounded to double before the reduce — use
/// block_dot_dd when the downstream consumer (a Cholesky) needs the
/// extended precision to survive.  `overlap` (optional) runs inside
/// the reduce window.
void block_dot(OrthoContext& ctx, ConstMatrixView a, ConstMatrixView b,
               MatrixView c, const OverlapHook& overlap = nullptr);

/// Pair-form block dot: C = A^T B accumulated in double-double and
/// returned unrounded as c_hi + c_lo, including across ranks (one
/// fused dd all-reduce == one synchronization).  Feed the pair into
/// chol_factor_dd to run mixed-precision CholQR end to end.
void block_dot_dd(OrthoContext& ctx, ConstMatrixView a, ConstMatrixView b,
                  MatrixView c_hi, MatrixView c_lo);

/// G = [Q, V]^T V in a single reduce: G is (q + s) x s where q = Q.cols,
/// s = V.cols.  Rows [0, q) hold Q^T V; rows [q, q+s) hold V^T V.
/// This is the Pythagorean trick that gives BCGS-PIP its single
/// synchronization (paper Fig. 4a line 1).
void fused_gram(OrthoContext& ctx, ConstMatrixView q, ConstMatrixView v,
                MatrixView g);

/// Split-phase fused Gram: computes the local [Q, V]^T V, issues the
/// reduce, and returns the in-flight handle so the caller can run
/// result-independent panel work before waiting.
[[nodiscard]] PendingReduce fused_gram_ireduce(OrthoContext& ctx,
                                               ConstMatrixView q,
                                               ConstMatrixView v, MatrixView g);

/// Pair-form fused Gram G = [Q, V]^T V (same layout as fused_gram) in
/// double-double, one fused dd all-reduce.  Used by the mixed-precision
/// BCGS-PIP path so the Pythagorean update and Cholesky stay in dd.
void fused_gram_dd(OrthoContext& ctx, ConstMatrixView q, ConstMatrixView v,
                   MatrixView g_hi, MatrixView g_lo);

/// Split-phase pair-form fused Gram.
[[nodiscard]] PendingReduce fused_gram_dd_ireduce(OrthoContext& ctx,
                                                  ConstMatrixView q,
                                                  ConstMatrixView v,
                                                  MatrixView g_hi,
                                                  MatrixView g_lo);

/// V -= Q * C.  Local GEMM; no communication.
void block_update(OrthoContext& ctx, ConstMatrixView q, ConstMatrixView c,
                  MatrixView v);

/// V := V * R^{-1}.  Local TRSM; no communication.
void block_scale(OrthoContext& ctx, ConstMatrixView r, MatrixView v);

/// Breakdown-aware Cholesky of the (small, replicated) Gram matrix g;
/// overwrites g with the upper factor.  Under kShift, retries with
/// progressively larger diagonal shifts (never more than 3 attempts);
/// under kThrow, raises CholeskyBreakdown naming `what`.
void chol_factor(OrthoContext& ctx, MatrixView g, const std::string& what);

/// Double-double counterpart of chol_factor: factors the pair-form
/// Gram g_hi + g_lo entirely in dd (valid for kappa(G) up to ~u_dd^{-1}
/// ~ 2e31, i.e. kappa(V) up to ~1e15) and leaves R in pair form in
/// g_hi/g_lo; round with dense::dd_round for the working-precision
/// TRSM.  Under kShift, retries with diagonal shifts sized to
/// u_dd * ||G|| (not eps * ||G||), so recovery perturbs ~1e16x less
/// than the double path.
void chol_factor_dd(OrthoContext& ctx, MatrixView g_hi, MatrixView g_lo,
                    const std::string& what);

/// ||x||_2 across ranks (one reduce).
double global_norm(OrthoContext& ctx, std::span<const double> x);

}  // namespace tsbo::ortho
