#pragma once
// Distributed tall-skinny multivector primitives.
//
// Basis vectors are stored as rank-local row blocks (1-D block row
// layout, paper Section VII) of a column-major panel.  The primitives
// here are the paper's three orthogonalization building blocks:
//   * block dot products  R = Q^T V   (local GEMM + one global reduce)
//   * vector updates      V -= Q R    (local GEMM, no communication)
//   * normalization       V := V R^{-1} (local TRSM, no communication)
// plus the fused Gram matrix [Q, V]^T V that makes BCGS-PIP a
// *single-reduce* algorithm, and a breakdown-aware Cholesky wrapper.
//
// Every routine is collective across the communicator in OrthoContext;
// with a null communicator the same code runs single-rank (used by the
// MATLAB-style numerical studies of Figs. 6-8).

#include "dense/cholesky.hpp"
#include "dense/matrix.hpp"
#include "par/communicator.hpp"
#include "util/timer.hpp"

#include <stdexcept>
#include <string>

namespace tsbo::ortho {

using dense::ConstMatrixView;
using dense::index_t;
using dense::MatrixView;

/// What to do when the Cholesky factorization of a Gram matrix breaks
/// down (input condition number past ~eps^{-1/2}, paper condition (1)).
enum class BreakdownPolicy {
  kThrow,  ///< raise CholeskyBreakdown (numerical studies want to see it)
  kShift,  ///< retry with a diagonal shift (Fukaya et al. [11] remedy)
};

/// Raised on unrecoverable Gram-matrix breakdown.
class CholeskyBreakdown : public std::runtime_error {
 public:
  explicit CholeskyBreakdown(const std::string& what)
      : std::runtime_error(what) {}
};

/// Shared knobs + instrumentation for every orthogonalization call.
struct OrthoContext {
  par::Communicator* comm = nullptr;   ///< null -> single-rank execution
  util::PhaseTimers* timers = nullptr; ///< optional phase breakdown
  BreakdownPolicy policy = BreakdownPolicy::kThrow;
  /// Accumulate Gram matrices in double-double AND keep them in
  /// double-double through the Cholesky factorization (mixed-precision
  /// CholQR extension, paper related work [26]/[27]).  Contract: with
  /// this set, CholQR2 / BCGS-PIP deliver O(eps) orthogonality for
  /// kappa(V) up to ~1e15 (u_dd^{-1/2}) instead of ~1e8 (eps^{-1/2});
  /// only the triangular factor is rounded back to double, for the
  /// TRSM.  Costs ~5-10x the plain local Gram flops and 2x the reduce
  /// payload; the synchronization count is unchanged.
  bool mixed_precision_gram = false;

  // Instrumentation (mutated by the kernels).
  int cholesky_breakdowns = 0;  ///< failures seen (before recovery)
  int shift_retries = 0;        ///< shifted re-factorizations performed

  [[nodiscard]] int nranks() const { return comm ? comm->size() : 1; }
};

/// Exception-safe override of ctx.mixed_precision_gram for one pass.
/// The re-orthogonalization passes of the *2 algorithms use it to drop
/// to plain double once a clean first pass has left kappa(Q) = O(1) —
/// the dd Gram's 5-10x cost buys no stability there.
class ScopedGramPrecision {
 public:
  ScopedGramPrecision(OrthoContext& ctx, bool value)
      : ctx_(ctx), saved_(ctx.mixed_precision_gram) {
    ctx_.mixed_precision_gram = value;
  }
  ~ScopedGramPrecision() { ctx_.mixed_precision_gram = saved_; }
  ScopedGramPrecision(const ScopedGramPrecision&) = delete;
  ScopedGramPrecision& operator=(const ScopedGramPrecision&) = delete;

 private:
  OrthoContext& ctx_;
  bool saved_;
};

/// C = A^T B followed by a global sum-reduce of C.  One synchronization.
/// With ctx.mixed_precision_gram the local product is accumulated in
/// double-double but rounded to double before the reduce — use
/// block_dot_dd when the downstream consumer (a Cholesky) needs the
/// extended precision to survive.
void block_dot(OrthoContext& ctx, ConstMatrixView a, ConstMatrixView b,
               MatrixView c);

/// Pair-form block dot: C = A^T B accumulated in double-double and
/// returned unrounded as c_hi + c_lo, including across ranks (one
/// fused dd all-reduce == one synchronization).  Feed the pair into
/// chol_factor_dd to run mixed-precision CholQR end to end.
void block_dot_dd(OrthoContext& ctx, ConstMatrixView a, ConstMatrixView b,
                  MatrixView c_hi, MatrixView c_lo);

/// G = [Q, V]^T V in a single reduce: G is (q + s) x s where q = Q.cols,
/// s = V.cols.  Rows [0, q) hold Q^T V; rows [q, q+s) hold V^T V.
/// This is the Pythagorean trick that gives BCGS-PIP its single
/// synchronization (paper Fig. 4a line 1).
void fused_gram(OrthoContext& ctx, ConstMatrixView q, ConstMatrixView v,
                MatrixView g);

/// Pair-form fused Gram G = [Q, V]^T V (same layout as fused_gram) in
/// double-double, one fused dd all-reduce.  Used by the mixed-precision
/// BCGS-PIP path so the Pythagorean update and Cholesky stay in dd.
void fused_gram_dd(OrthoContext& ctx, ConstMatrixView q, ConstMatrixView v,
                   MatrixView g_hi, MatrixView g_lo);

/// V -= Q * C.  Local GEMM; no communication.
void block_update(OrthoContext& ctx, ConstMatrixView q, ConstMatrixView c,
                  MatrixView v);

/// V := V * R^{-1}.  Local TRSM; no communication.
void block_scale(OrthoContext& ctx, ConstMatrixView r, MatrixView v);

/// Breakdown-aware Cholesky of the (small, replicated) Gram matrix g;
/// overwrites g with the upper factor.  Under kShift, retries with
/// progressively larger diagonal shifts (never more than 3 attempts);
/// under kThrow, raises CholeskyBreakdown naming `what`.
void chol_factor(OrthoContext& ctx, MatrixView g, const std::string& what);

/// Double-double counterpart of chol_factor: factors the pair-form
/// Gram g_hi + g_lo entirely in dd (valid for kappa(G) up to ~u_dd^{-1}
/// ~ 2e31, i.e. kappa(V) up to ~1e15) and leaves R in pair form in
/// g_hi/g_lo; round with dense::dd_round for the working-precision
/// TRSM.  Under kShift, retries with diagonal shifts sized to
/// u_dd * ||G|| (not eps * ||G||), so recovery perturbs ~1e16x less
/// than the double path.
void chol_factor_dd(OrthoContext& ctx, MatrixView g_hi, MatrixView g_lo,
                    const std::string& what);

/// ||x||_2 across ranks (one reduce).
double global_norm(OrthoContext& ctx, std::span<const double> x);

}  // namespace tsbo::ortho
