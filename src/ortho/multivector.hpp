#pragma once
// Distributed tall-skinny multivector primitives.
//
// Basis vectors are stored as rank-local row blocks (1-D block row
// layout, paper Section VII) of a column-major panel.  The primitives
// here are the paper's three orthogonalization building blocks:
//   * block dot products  R = Q^T V   (local GEMM + one global reduce)
//   * vector updates      V -= Q R    (local GEMM, no communication)
//   * normalization       V := V R^{-1} (local TRSM, no communication)
// plus the fused Gram matrix [Q, V]^T V that makes BCGS-PIP a
// *single-reduce* algorithm, and a breakdown-aware Cholesky wrapper.
//
// Every routine is collective across the communicator in OrthoContext;
// with a null communicator the same code runs single-rank (used by the
// MATLAB-style numerical studies of Figs. 6-8).

#include "dense/cholesky.hpp"
#include "dense/matrix.hpp"
#include "par/communicator.hpp"
#include "util/timer.hpp"

#include <stdexcept>
#include <string>

namespace tsbo::ortho {

using dense::ConstMatrixView;
using dense::index_t;
using dense::MatrixView;

/// What to do when the Cholesky factorization of a Gram matrix breaks
/// down (input condition number past ~eps^{-1/2}, paper condition (1)).
enum class BreakdownPolicy {
  kThrow,  ///< raise CholeskyBreakdown (numerical studies want to see it)
  kShift,  ///< retry with a diagonal shift (Fukaya et al. [11] remedy)
};

/// Raised on unrecoverable Gram-matrix breakdown.
class CholeskyBreakdown : public std::runtime_error {
 public:
  explicit CholeskyBreakdown(const std::string& what)
      : std::runtime_error(what) {}
};

/// Shared knobs + instrumentation for every orthogonalization call.
struct OrthoContext {
  par::Communicator* comm = nullptr;   ///< null -> single-rank execution
  util::PhaseTimers* timers = nullptr; ///< optional phase breakdown
  BreakdownPolicy policy = BreakdownPolicy::kThrow;
  /// Accumulate Gram matrices in double-double (mixed-precision CholQR
  /// extension, paper related work [26]/[27]).
  bool mixed_precision_gram = false;

  // Instrumentation (mutated by the kernels).
  int cholesky_breakdowns = 0;  ///< failures seen (before recovery)
  int shift_retries = 0;        ///< shifted re-factorizations performed

  [[nodiscard]] int nranks() const { return comm ? comm->size() : 1; }
};

/// C = A^T B followed by a global sum-reduce of C.  One synchronization.
void block_dot(OrthoContext& ctx, ConstMatrixView a, ConstMatrixView b,
               MatrixView c);

/// G = [Q, V]^T V in a single reduce: G is (q + s) x s where q = Q.cols,
/// s = V.cols.  Rows [0, q) hold Q^T V; rows [q, q+s) hold V^T V.
/// This is the Pythagorean trick that gives BCGS-PIP its single
/// synchronization (paper Fig. 4a line 1).
void fused_gram(OrthoContext& ctx, ConstMatrixView q, ConstMatrixView v,
                MatrixView g);

/// V -= Q * C.  Local GEMM; no communication.
void block_update(OrthoContext& ctx, ConstMatrixView q, ConstMatrixView c,
                  MatrixView v);

/// V := V * R^{-1}.  Local TRSM; no communication.
void block_scale(OrthoContext& ctx, ConstMatrixView r, MatrixView v);

/// Breakdown-aware Cholesky of the (small, replicated) Gram matrix g;
/// overwrites g with the upper factor.  Under kShift, retries with
/// progressively larger diagonal shifts (never more than 3 attempts);
/// under kThrow, raises CholeskyBreakdown naming `what`.
void chol_factor(OrthoContext& ctx, MatrixView g, const std::string& what);

/// ||x||_2 across ranks (one reduce).
double global_norm(OrthoContext& ctx, std::span<const double> x);

}  // namespace tsbo::ortho
