#pragma once
// Intra-block orthogonalization kernels (paper Section IV, Fig. 3).
//
// All routines replace V (rank-local rows x s) by its orthonormal Q in
// place and write the s x s upper-triangular factor into `r` so that
// Q r == V (up to rounding).  Synchronization counts, the paper's
// central accounting:
//   CholQR            1 reduce     (Gram + redundant Cholesky + TRSM)
//   CholQR2           2 reduces
//   shifted CholQR3   3 reduces    (stability remedy of [11])
//   HHQR              O(s) reduces (column-wise distributed Householder)
//   MGS               O(s) reduces (reference)
//
// Precision / conditioning contracts (eps ~ 1.1e-16, u_dd = 2^-104):
//   CholQR    orthogonality ~ kappa(V)^2 * eps; Cholesky breaks down
//             past kappa(V) ~ eps^{-1/2} ~ 6.7e7 (paper condition (1))
//   CholQR2   O(eps) orthogonality for kappa(V) < eps^{-1/2}
//   CholQR/CholQR2 with ctx.mixed_precision_gram: the Gram matrix is
//             accumulated AND factorized in double-double, extending
//             the valid range to kappa(V) up to ~u_dd^{-1/2} ~ 1e15
//             at unchanged synchronization count
//   shifted CholQR3 / HHQR: O(eps) for any numerically full-rank V
//   MGS       orthogonality ~ kappa(V) * eps
// Breakdowns surface per ctx.policy (throw vs shifted retry); see
// multivector.hpp.

#include "ortho/multivector.hpp"

namespace tsbo::ortho {

/// Cholesky QR (paper Fig. 3a).  One global reduce.
void cholqr(OrthoContext& ctx, MatrixView v, MatrixView r);

/// Cholesky QR twice (paper Fig. 3b).  Two global reduces; the factor
/// written to `r` is the product T * R of both passes.
void cholqr2(OrthoContext& ctx, MatrixView v, MatrixView r);

/// Shifted CholQR followed by CholQR2 ("shifted CholQR3", Fukaya et
/// al. [11]): stable for any numerically full-rank input at 1.5x the
/// cost of CholQR2.  Three global reduces.
void shifted_cholqr3(OrthoContext& ctx, MatrixView v, MatrixView r);

/// Distributed Householder QR: column-by-column reflectors spanning all
/// ranks, 2 reduces per column plus 1 broadcast-equivalent for R and
/// one reduce per column to form the explicit Q — the BLAS-1/2,
/// O(s)-synchronization behaviour the paper contrasts CholQR against.
/// Requires rank 0 to own at least s rows (1-D block layout, n >> s).
void hhqr(OrthoContext& ctx, MatrixView v, MatrixView r);

/// Modified Gram-Schmidt, column-wise (reference implementation; 2
/// reduces per column).
void mgs(OrthoContext& ctx, MatrixView v, MatrixView r);

}  // namespace tsbo::ortho
