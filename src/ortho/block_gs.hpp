#pragma once
// Inter-block orthogonalization algorithms (paper Section IV).
//
// Each routine orthogonalizes the new panel V (rank-local rows x s)
// against the previously orthonormalized columns Q (rank-local rows x
// q) and internally, writing the coefficients into the caller's R
// blocks:   r_prev (q x s) and r_diag (s x s)  so that, on exit,
//   V_in == Q * r_prev + V_out * r_diag       (V_out orthonormal).
//
// Global synchronizations per call (the paper's accounting):
//   bcgs_project            1
//   bcgs2 (CholQR2 intra)   5   = 1 + 2 + 1 + 1        (Fig. 2b)
//   bcgs2 (HHQR intra)      O(s)
//   bcgs_pip                1                           (Fig. 4a)
//   bcgs_pip2               2                           (Fig. 4b)
//
// Conditioning contracts: the Pythagorean variants factor
// S = V^T V - (Q^T V)^T (Q^T V), which squares the conditioning like
// CholQR — valid while kappa([Q, V]) < eps^{-1/2} ~ 6.7e7 (paper
// condition (5)).  With ctx.mixed_precision_gram the fused Gram, the
// Pythagorean subtraction, and the Cholesky all run in double-double
// (only R is rounded back for the update/TRSM), extending validity to
// kappa([Q, V]) up to ~u_dd^{-1/2} ~ 1e15 at the same sync counts.
// bcgs_pip2 / bcgs2 then deliver O(eps) orthogonality; single-pass
// bcgs_pip leaves O(kappa^2 eps) (or O(kappa eps_dd)) residual
// orthogonality and is meant as a stage-1 pre-processing step.

#include "ortho/multivector.hpp"

namespace tsbo::ortho {

/// Intra-block algorithm used for the first factorization inside BCGS2.
enum class IntraKind {
  kCholQR2,       ///< BLAS-3, 2 reduces — the paper's performance choice
  kHHQR,          ///< BLAS-1/2, O(s) reduces — the stability reference
  kShiftedCholQR3 ///< 3 reduces; unconditionally stable for full-rank V
};

/// Single BCGS projection (paper Fig. 2a): r_prev = Q^T V; V -= Q r_prev.
/// One reduce.  No intra-block factorization.  `overlap` (optional)
/// runs inside the reduce's split-phase window — see OverlapHook.
void bcgs_project(OrthoContext& ctx, ConstMatrixView q, MatrixView v,
                  MatrixView r_prev, const OverlapHook& overlap = nullptr);

/// BCGS2 (paper Fig. 2b): first BCGS + intra-block factorization, then
/// a second BCGS + CholQR, with the exact triangular fix-ups
///   r_prev += T_prev * r_diag,   r_diag := T_diag * r_diag.
/// With q == 0 this reduces to the intra-block factorization alone.
void bcgs2(OrthoContext& ctx, ConstMatrixView q, MatrixView v,
           MatrixView r_prev, MatrixView r_diag,
           IntraKind intra = IntraKind::kCholQR2);

/// BCGS-PIP (paper Fig. 4a): single-reduce inter+intra pass via the
/// Pythagorean fused Gram matrix.  With q == 0 this is CholQR.  The
/// fused Gram reduce is issued split-phase; `overlap` (optional) runs
/// while it is in flight, so trailing result-independent panel work
/// hides behind the modeled reduce latency.  Sync count unchanged.
void bcgs_pip(OrthoContext& ctx, ConstMatrixView q, MatrixView v,
              MatrixView r_prev, MatrixView r_diag,
              const OverlapHook& overlap = nullptr);

/// In-flight state of a split BCGS-PIP: between bcgs_pip_begin and
/// bcgs_pip_finish the fused Gram reduce is outstanding and the panel
/// is still in its RAW (untransformed) state — the pipelined s-step
/// runtime generates the next panel's matrix-powers columns in that
/// gap.  Move-only via the owned PendingReduce; destroying it unwaited
/// completes the reduce (PendingReduce's destructor), keeping ranks
/// collective on exceptions.
///
/// Member order is load-bearing: `g` is the buffer published to the
/// in-flight reduce, so `pending` must be declared after it —
/// destruction then completes the collective (whose final barrier
/// holds every rank until all peers have read the published spans)
/// before the buffer is freed.
struct BcgsPipSplit {
  dense::Matrix g;  ///< fused Gram landing buffer, (q + s) x s
  PendingReduce pending;
  index_t nq = 0;
  index_t s = 0;
  bool active = false;
};

/// Issues the fused Gram reduce of bcgs_pip split-phase and returns
/// with it in flight.  Plain-double path only: callers must fall back
/// to bcgs_pip when ctx.mixed_precision_gram is set.  The begin/finish
/// pair performs the exact operation sequence of bcgs_pip (one reduce,
/// identical bits); only the owner of the overlap window differs.
[[nodiscard]] BcgsPipSplit bcgs_pip_begin(OrthoContext& ctx, ConstMatrixView q,
                                          ConstMatrixView v);

/// Completes a split BCGS-PIP: waits on the reduce, then runs the
/// Pythagorean update, Cholesky, and panel transform exactly as
/// bcgs_pip does.  `q`/`v` must be the views passed to begin.
void bcgs_pip_finish(OrthoContext& ctx, BcgsPipSplit& split, ConstMatrixView q,
                     MatrixView v, MatrixView r_prev, MatrixView r_diag);

/// BCGS-PIP2 (paper Fig. 4b): BCGS-PIP twice with triangular fix-ups.
/// Two reduces.  With q == 0 this is CholQR2.  The second pass's
/// scratch is allocated inside the first reduce's overlap window.
void bcgs_pip2(OrthoContext& ctx, ConstMatrixView q, MatrixView v,
               MatrixView r_prev, MatrixView r_diag);

}  // namespace tsbo::ortho
