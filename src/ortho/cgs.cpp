#include "ortho/cgs.hpp"

#include "dense/blas1.hpp"
#include "dense/blas2.hpp"
#include "util/aligned.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

namespace tsbo::ortho {

namespace {

/// c = Q^T v with one reduce ("dot-products" bucket).
void project(OrthoContext& ctx, ConstMatrixView q, std::span<const double> v,
             std::span<double> c) {
  if (ctx.timers) ctx.timers->start("ortho/dot");
  dense::gemv_t(1.0, q, v, 0.0, c);
  if (ctx.timers) ctx.timers->stop("ortho/dot");
  if (ctx.comm) {
    if (ctx.timers) ctx.timers->start("ortho/reduce");
    ctx.comm->allreduce_sum(c);
    if (ctx.timers) ctx.timers->stop("ortho/reduce");
  }
}

/// v -= Q c ("vector-updates" bucket).
void update(OrthoContext& ctx, ConstMatrixView q, std::span<const double> c,
            std::span<double> v) {
  if (ctx.timers) ctx.timers->start("ortho/update");
  dense::gemv(-1.0, q, c, 1.0, v);
  if (ctx.timers) ctx.timers->stop("ortho/update");
}

}  // namespace

void cgs2_step(OrthoContext& ctx, ConstMatrixView q, std::span<double> v,
               std::span<double> h) {
  const auto nq = static_cast<std::size_t>(q.cols);
  assert(h.size() == nq + 1);
  std::fill(h.begin(), h.end(), 0.0);

  if (nq > 0) {
    util::aligned_vector<double> c(nq, 0.0);
    project(ctx, q, v, c);
    update(ctx, q, c, v);
    for (std::size_t i = 0; i < nq; ++i) h[i] = c[i];

    // Re-orthogonalization pass.
    project(ctx, q, v, c);
    update(ctx, q, c, v);
    for (std::size_t i = 0; i < nq; ++i) h[i] += c[i];
  }

  const double nrm = global_norm(ctx, v);
  h[nq] = nrm;
  if (nrm > 0.0) {
    if (ctx.timers) ctx.timers->start("ortho/update");
    dense::scal(1.0 / nrm, v);
    if (ctx.timers) ctx.timers->stop("ortho/update");
  }
}

void mgs_step(OrthoContext& ctx, ConstMatrixView q, std::span<double> v,
              std::span<double> h) {
  const auto nq = static_cast<std::size_t>(q.cols);
  assert(h.size() == nq + 1);
  for (std::size_t k = 0; k < nq; ++k) {
    ConstMatrixView col = q.columns(static_cast<index_t>(k), 1);
    std::span<const double> qk(col.data, static_cast<std::size_t>(col.rows));
    double hk = dense::dot(qk, v);
    if (ctx.comm) {
      if (ctx.timers) ctx.timers->start("ortho/reduce");
      hk = ctx.comm->allreduce_sum_scalar(hk);
      if (ctx.timers) ctx.timers->stop("ortho/reduce");
    }
    h[k] = hk;
    dense::axpy(-hk, qk, v);
  }
  const double nrm = global_norm(ctx, v);
  h[nq] = nrm;
  if (nrm > 0.0) dense::scal(1.0 / nrm, v);
}

}  // namespace tsbo::ortho
