#include "ortho/manager.hpp"

#include "dense/blas3.hpp"

#include <cassert>
#include <stdexcept>

namespace tsbo::ortho {

namespace {

/// Writes the unit column e_k into l(:, k).
void set_unit_column(MatrixView l, index_t k) {
  dense::fill(l.block(0, k, l.rows, 1), 0.0);
  l(k, k) = 1.0;
}

/// Copies r(:, k) into l(:, k) for k in [c0, c1).
void copy_r_columns_to_l(ConstMatrixView r, MatrixView l, index_t c0,
                         index_t c1) {
  for (index_t k = c0; k < c1; ++k) {
    dense::copy(r.block(0, k, r.rows, 1), l.block(0, k, l.rows, 1));
  }
}

// ---------------------------------------------------------------------------
// One-stage managers: every panel is fully orthogonalized on arrival.
// ---------------------------------------------------------------------------

class OneStageManager : public BlockOrthoManager {
 public:
  void note_mpk_start(OrthoContext&, MatrixView l, index_t start) override {
    // MPK always starts from a final orthonormal column: L(:, start) = e.
    set_unit_column(l, start);
  }

  index_t add_panel(OrthoContext& ctx, MatrixView basis, index_t q0, index_t s,
                    MatrixView r, MatrixView l) override {
    ConstMatrixView qprev = basis.columns(0, q0);
    MatrixView panel = basis.columns(q0, s);
    MatrixView r_prev = r.block(0, q0, q0, s);
    MatrixView r_diag = r.block(q0, q0, s, s);
    run(ctx, qprev, panel, r_prev, r_diag);
    copy_r_columns_to_l(r, l, q0, q0 + s);
    return q0 + s;
  }

  index_t finalize(OrthoContext&, MatrixView, index_t q_total, MatrixView,
                   MatrixView) override {
    return q_total;  // nothing pending
  }

  void reset() override {}

 protected:
  virtual void run(OrthoContext& ctx, ConstMatrixView q, MatrixView v,
                   MatrixView r_prev, MatrixView r_diag) = 0;
};

class Bcgs2Manager final : public OneStageManager {
 public:
  explicit Bcgs2Manager(IntraKind intra) : intra_(intra) {}

  [[nodiscard]] std::string name() const override {
    switch (intra_) {
      case IntraKind::kCholQR2:
        return "BCGS2(CholQR2)";
      case IntraKind::kHHQR:
        return "BCGS2(HHQR)";
      case IntraKind::kShiftedCholQR3:
        return "BCGS2(sCholQR3)";
    }
    return "BCGS2";
  }

  [[nodiscard]] double syncs_per_s_steps(index_t s, index_t) const override {
    switch (intra_) {
      case IntraKind::kCholQR2:
        return 5.0;
      case IntraKind::kHHQR:
        return 3.0 + 3.0 * static_cast<double>(s);
      case IntraKind::kShiftedCholQR3:
        return 6.0;
    }
    return 5.0;
  }

 private:
  void run(OrthoContext& ctx, ConstMatrixView q, MatrixView v,
           MatrixView r_prev, MatrixView r_diag) override {
    bcgs2(ctx, q, v, r_prev, r_diag, intra_);
  }

  IntraKind intra_;
};

class BcgsPipManager final : public OneStageManager {
 public:
  [[nodiscard]] std::string name() const override { return "BCGS-PIP"; }
  [[nodiscard]] double syncs_per_s_steps(index_t, index_t) const override {
    return 1.0;
  }

 private:
  void run(OrthoContext& ctx, ConstMatrixView q, MatrixView v,
           MatrixView r_prev, MatrixView r_diag) override {
    bcgs_pip(ctx, q, v, r_prev, r_diag);
  }
};

class BcgsPip2Manager final : public OneStageManager {
 public:
  [[nodiscard]] std::string name() const override { return "BCGS-PIP2"; }
  [[nodiscard]] double syncs_per_s_steps(index_t, index_t) const override {
    return 2.0;
  }

 private:
  void run(OrthoContext& ctx, ConstMatrixView q, MatrixView v,
           MatrixView r_prev, MatrixView r_diag) override {
    bcgs_pip2(ctx, q, v, r_prev, r_diag);
  }
};

// ---------------------------------------------------------------------------
// Two-stage manager (paper Fig. 5).
// ---------------------------------------------------------------------------

class TwoStageManager final : public BlockOrthoManager {
 public:
  explicit TwoStageManager(index_t bs) : bs_(bs) {
    if (bs <= 0) throw std::invalid_argument("TwoStageManager: bs <= 0");
  }

  [[nodiscard]] std::string name() const override { return "Two-stage"; }

  [[nodiscard]] double syncs_per_s_steps(index_t s, index_t bs) const override {
    return 1.0 + static_cast<double>(s) / static_cast<double>(bs > 0 ? bs : bs_);
  }

  void reset() override {
    big_begin_ = 1;
    pending_ = 0;
    pending_starts_.clear();
  }

  void note_mpk_start(OrthoContext&, MatrixView l, index_t start) override {
    if (start < big_begin_) {
      // Final column (cycle start or big-panel boundary): Fig. 5 line 6.
      set_unit_column(l, start);
    } else {
      // Pre-processed column inside the open big panel (Fig. 5 line 8):
      // its representation in the final basis is a stage-2 transform
      // column, known only after the flush.
      pending_starts_.push_back(start);
    }
  }

  index_t add_panel(OrthoContext& ctx, MatrixView basis, index_t q0, index_t s,
                    MatrixView r, MatrixView l) override {
    if (big_begin_ == 0 || q0 < big_begin_) {
      throw std::logic_error("TwoStageManager: panels must arrive in order");
    }
    // Stage 1 (Fig. 5 line 14): one BCGS-PIP of the panel against ALL
    // previous columns — final ones and the pre-processed ones of the
    // open big panel.  One global reduce.
    ConstMatrixView qall = basis.columns(0, q0);
    MatrixView panel = basis.columns(q0, s);
    bcgs_pip(ctx, qall, panel, r.block(0, q0, q0, s), r.block(q0, q0, s, s));
    pending_ += s;

    if (pending_ >= bs_) {
      return flush(ctx, basis, q0 + s, r, l);
    }
    return big_begin_;  // only columns before the big panel are final
  }

  index_t finalize(OrthoContext& ctx, MatrixView basis, index_t q_total,
                   MatrixView r, MatrixView l) override {
    if (pending_ > 0) return flush(ctx, basis, q_total, r, l);
    return q_total;
  }

 private:
  /// Stage 2 (Fig. 5 lines 16-19): one BCGS-PIP of the whole big panel
  /// of `pending_` columns against the final columns, followed by the
  /// triangular fix-up of the stage-1 coefficients and the L
  /// bookkeeping for Hessenberg assembly.
  index_t flush(OrthoContext& ctx, MatrixView basis, index_t q_end,
                MatrixView r, MatrixView l) {
    const index_t qprev = big_begin_;
    const index_t nbig = q_end - big_begin_;
    assert(nbig == pending_);

    ConstMatrixView qfinal = basis.columns(0, qprev);
    MatrixView big = basis.columns(qprev, nbig);
    dense::Matrix t_prev(qprev, nbig);
    dense::Matrix t_diag(nbig, nbig);
    // The stage-1 coefficients are fixed before stage 2 runs, so the
    // fix-up's R-block snapshot is result-independent trailing work:
    // it rides in the stage-2 fused-Gram reduce window.
    dense::Matrix rbig;
    bcgs_pip(ctx, qfinal, big, t_prev.view(), t_diag.view(), [&] {
      rbig = dense::copy_of(r.block(qprev, qprev, nbig, nbig));
    });

    // R fix-up (Fig. 5 lines 18-19):
    //   R[0:qprev, big]   += T_prev * R[big, big]
    //   R[big,  big]       = T_diag * R[big, big]
    if (qprev > 0) {
      dense::gemm_nn(1.0, t_prev.view(), rbig.view(), 1.0,
                     r.block(0, qprev, qprev, nbig));
    }
    dense::gemm_nn(1.0, t_diag.view(), rbig.view(), 0.0,
                   r.block(qprev, qprev, nbig, nbig));

    // Interior raw columns: L = final R.
    copy_r_columns_to_l(r, l, qprev, q_end);

    // MPK start columns inside the big panel were consumed in their
    // *pre-processed* state q-hat = Q_final_prev T_prev + Q_big T_diag:
    // their L columns are the stage-2 transform columns.
    for (const index_t start : pending_starts_) {
      const index_t local = start - qprev;
      assert(local >= 0 && local < nbig);
      MatrixView lc = l.block(0, start, l.rows, 1);
      dense::fill(lc, 0.0);
      for (index_t i = 0; i < qprev; ++i) l(i, start) = t_prev(i, local);
      for (index_t i = 0; i < nbig; ++i) l(qprev + i, start) = t_diag(i, local);
    }

    pending_starts_.clear();
    pending_ = 0;
    big_begin_ = q_end;
    return q_end;
  }

  index_t bs_;
  index_t big_begin_ = 1;  // first column of the open big panel
  index_t pending_ = 0;    // pre-processed columns awaiting stage 2
  std::vector<index_t> pending_starts_;
};

}  // namespace

std::unique_ptr<BlockOrthoManager> make_bcgs2_manager(IntraKind intra) {
  return std::make_unique<Bcgs2Manager>(intra);
}

std::unique_ptr<BlockOrthoManager> make_bcgs_pip_manager() {
  return std::make_unique<BcgsPipManager>();
}

std::unique_ptr<BlockOrthoManager> make_bcgs_pip2_manager() {
  return std::make_unique<BcgsPip2Manager>();
}

std::unique_ptr<BlockOrthoManager> make_two_stage_manager(index_t bs) {
  return std::make_unique<TwoStageManager>(bs);
}

}  // namespace tsbo::ortho
