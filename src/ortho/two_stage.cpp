#include "ortho/manager.hpp"

#include "dense/blas3.hpp"

#include <cassert>
#include <stdexcept>

namespace tsbo::ortho {

namespace {

/// Minimum new-direction fraction |r_cc| / ||R(:, last)|| of a raw
/// lookahead start column for the speculative panel to be kept.  A raw
/// column below this is dominated by already-spanned directions, and
/// the single-pass stage-1 of the panel speculated from it loses the
/// new content to cancellation — empirically the threshold where the
/// hand-off stops costing restart cycles (decayed monomial chains sit
/// at 1e-6..1e-8; healthy Newton/Chebyshev starts at 1e-1 and up).
constexpr double kLookaheadGuard = 0x1p-6;

/// Writes the unit column e_k into l(:, k).
void set_unit_column(MatrixView l, index_t k) {
  dense::fill(l.block(0, k, l.rows, 1), 0.0);
  l(k, k) = 1.0;
}

/// Copies r(:, k) into l(:, k) for k in [c0, c1).
void copy_r_columns_to_l(ConstMatrixView r, MatrixView l, index_t c0,
                         index_t c1) {
  for (index_t k = c0; k < c1; ++k) {
    dense::copy(r.block(0, k, r.rows, 1), l.block(0, k, l.rows, 1));
  }
}

// ---------------------------------------------------------------------------
// One-stage managers: every panel is fully orthogonalized on arrival.
// ---------------------------------------------------------------------------

class OneStageManager : public BlockOrthoManager {
 public:
  void note_mpk_start(OrthoContext&, MatrixView l, index_t start) override {
    // MPK always starts from a final orthonormal column: L(:, start) = e.
    set_unit_column(l, start);
  }

  index_t add_panel(OrthoContext& ctx, MatrixView basis, index_t q0, index_t s,
                    MatrixView r, MatrixView l) override {
    ConstMatrixView qprev = basis.columns(0, q0);
    MatrixView panel = basis.columns(q0, s);
    MatrixView r_prev = r.block(0, q0, q0, s);
    MatrixView r_diag = r.block(q0, q0, s, s);
    run(ctx, qprev, panel, r_prev, r_diag);
    copy_r_columns_to_l(r, l, q0, q0 + s);
    return q0 + s;
  }

  index_t finalize(OrthoContext&, MatrixView, index_t q_total, MatrixView,
                   MatrixView) override {
    return q_total;  // nothing pending
  }

  void reset() override {}

 protected:
  virtual void run(OrthoContext& ctx, ConstMatrixView q, MatrixView v,
                   MatrixView r_prev, MatrixView r_diag) = 0;
};

class Bcgs2Manager final : public OneStageManager {
 public:
  explicit Bcgs2Manager(IntraKind intra) : intra_(intra) {}

  [[nodiscard]] std::string name() const override {
    switch (intra_) {
      case IntraKind::kCholQR2:
        return "BCGS2(CholQR2)";
      case IntraKind::kHHQR:
        return "BCGS2(HHQR)";
      case IntraKind::kShiftedCholQR3:
        return "BCGS2(sCholQR3)";
    }
    return "BCGS2";
  }

  [[nodiscard]] double syncs_per_s_steps(index_t s, index_t) const override {
    switch (intra_) {
      case IntraKind::kCholQR2:
        return 5.0;
      case IntraKind::kHHQR:
        return 3.0 + 3.0 * static_cast<double>(s);
      case IntraKind::kShiftedCholQR3:
        return 6.0;
    }
    return 5.0;
  }

 private:
  void run(OrthoContext& ctx, ConstMatrixView q, MatrixView v,
           MatrixView r_prev, MatrixView r_diag) override {
    bcgs2(ctx, q, v, r_prev, r_diag, intra_);
  }

  IntraKind intra_;
};

class BcgsPipManager final : public OneStageManager {
 public:
  [[nodiscard]] std::string name() const override { return "BCGS-PIP"; }
  [[nodiscard]] double syncs_per_s_steps(index_t, index_t) const override {
    return 1.0;
  }

 private:
  void run(OrthoContext& ctx, ConstMatrixView q, MatrixView v,
           MatrixView r_prev, MatrixView r_diag) override {
    bcgs_pip(ctx, q, v, r_prev, r_diag);
  }
};

class BcgsPip2Manager final : public OneStageManager {
 public:
  [[nodiscard]] std::string name() const override { return "BCGS-PIP2"; }
  [[nodiscard]] double syncs_per_s_steps(index_t, index_t) const override {
    return 2.0;
  }

 private:
  void run(OrthoContext& ctx, ConstMatrixView q, MatrixView v,
           MatrixView r_prev, MatrixView r_diag) override {
    bcgs_pip2(ctx, q, v, r_prev, r_diag);
  }
};

// ---------------------------------------------------------------------------
// Two-stage manager (paper Fig. 5).
// ---------------------------------------------------------------------------

class TwoStageManager final : public BlockOrthoManager {
 public:
  explicit TwoStageManager(index_t bs) : bs_(bs) {
    if (bs <= 0) throw std::invalid_argument("TwoStageManager: bs <= 0");
  }

  [[nodiscard]] std::string name() const override { return "Two-stage"; }

  [[nodiscard]] double syncs_per_s_steps(index_t s, index_t bs) const override {
    return 1.0 + static_cast<double>(s) / static_cast<double>(bs > 0 ? bs : bs_);
  }

  void reset() override {
    big_begin_ = 1;
    pending_ = 0;
    pending_starts_.clear();
    raw_starts_.clear();
    last_raw_start_ = -1;
    last_raw_alpha_ = 1.0;
  }

  void reset_cycle(index_t n_seed) override {
    // Block GMRES seeds n_seed final columns (the CholQR'd residual
    // block); the open big panel starts right after them.
    reset();
    big_begin_ = n_seed;
  }

  void note_mpk_start(OrthoContext&, MatrixView l, index_t start) override {
    if (start < big_begin_) {
      // Final column (cycle start or big-panel boundary): Fig. 5 line 6.
      set_unit_column(l, start);
    } else {
      // Pre-processed column inside the open big panel (Fig. 5 line 8):
      // its representation in the final basis is a stage-2 transform
      // column, known only after the flush.
      pending_starts_.push_back(start);
    }
  }

  void note_mpk_start_raw(OrthoContext&, index_t start) override {
    // Lookahead hand-off: MPK consumes the column in its RAW state, so
    // L(:, start) = alpha * R(:, start) once the flush fixes R up —
    // the raw column's final-basis representation IS R(:, start),
    // whether the column ends up interior to a big panel or on a
    // boundary.
    raw_starts_.push_back({start, 1.0});
  }

  [[nodiscard]] double lookahead_scale(index_t start) const override {
    if (start == last_raw_start_) return last_raw_alpha_;
    for (const RawStart& rs : raw_starts_) {
      if (rs.start == start) return rs.alpha;
    }
    return 1.0;
  }

  index_t add_panel(OrthoContext& ctx, MatrixView basis, index_t q0, index_t s,
                    MatrixView r, MatrixView l) override {
    if (big_begin_ == 0 || q0 < big_begin_) {
      throw std::logic_error("TwoStageManager: panels must arrive in order");
    }
    // Stage 1 (Fig. 5 line 14): one BCGS-PIP of the panel against ALL
    // previous columns — final ones and the pre-processed ones of the
    // open big panel.  One global reduce.
    ConstMatrixView qall = basis.columns(0, q0);
    MatrixView panel = basis.columns(q0, s);
    bcgs_pip(ctx, qall, panel, r.block(0, q0, q0, s), r.block(q0, q0, s, s));
    pending_ += s;

    if (pending_ >= bs_) {
      return flush(ctx, basis, q0 + s, r, l);
    }
    return big_begin_;  // only columns before the big panel are final
  }

  bool add_panel_begin(OrthoContext& ctx, MatrixView basis, index_t q0,
                       index_t s, bool overlap_credit) override {
    if (ctx.mixed_precision_gram) return false;  // dd reduce not split here
    if (big_begin_ == 0 || q0 < big_begin_) {
      throw std::logic_error("TwoStageManager: panels must arrive in order");
    }
    // Stage 1 begin: identical local Gram + reduce as add_panel's
    // bcgs_pip; the epilogue waits in add_panel_finish.  One global
    // reduce either way — the sync count is unchanged.
    split_ = bcgs_pip_begin(ctx, basis.columns(0, q0), basis.columns(q0, s));
    if (!overlap_credit) split_.pending.no_overlap_credit();
    return true;
  }

  index_t add_panel_finish(OrthoContext& ctx, MatrixView basis, index_t q0,
                           index_t s, MatrixView r, MatrixView l) override {
    if (!split_.active) {
      throw std::logic_error("TwoStageManager: finish without begin");
    }
    bcgs_pip_finish(ctx, split_, basis.columns(0, q0), basis.columns(q0, s),
                    r.block(0, q0, q0, s), r.block(q0, q0, s, s));
    pending_ += s;

    // Deferred normalization: the raw start recorded for the lookahead
    // is this panel's last column; its scale comes from the stage-1
    // Cholesky diagonal that just arrived.  Power of two, so the
    // solver's rescale of the speculative panel is exact.
    //
    // Quality guard: r(last, last) is the raw column's new-direction
    // magnitude and ||R(:, last)|| its full norm.  When the ratio drops
    // below kLookaheadGuard the speculative panel is dominated by
    // already-spanned directions and single-pass stage-1 would lose it
    // to cancellation (monomial bases decay this ratio geometrically).
    // Reject the speculation — scale 0 tells the solver to discard the
    // panel and regenerate from the processed column.  The test uses
    // only globally-reduced quantities, so every rank (and every
    // pipeline_depth) takes the same branch.
    const index_t last = q0 + s - 1;
    for (auto it = raw_starts_.begin(); it != raw_starts_.end(); ++it) {
      if (it->start != last) continue;
      double norm2 = 0.0;
      for (index_t i = 0; i <= last; ++i) norm2 += r(i, last) * r(i, last);
      const double r_cc = r(last, last);
      last_raw_start_ = last;
      if (!(r_cc * r_cc >= kLookaheadGuard * kLookaheadGuard * norm2)) {
        last_raw_alpha_ = 0.0;  // rejected (also catches NaN r_cc)
        raw_starts_.erase(it);
      } else {
        it->alpha = pow2_recip_scale(r_cc);
        last_raw_alpha_ = it->alpha;
      }
      break;
    }

    if (pending_ >= bs_) {
      return flush(ctx, basis, q0 + s, r, l);
    }
    return big_begin_;
  }

  index_t finalize(OrthoContext& ctx, MatrixView basis, index_t q_total,
                   MatrixView r, MatrixView l) override {
    if (pending_ > 0) return flush(ctx, basis, q_total, r, l);
    return q_total;
  }

  index_t rebase_after_breakdown(OrthoContext& ctx, MatrixView basis,
                                 index_t q_generated, MatrixView r,
                                 MatrixView l) override {
    // Speculative lookahead hand-offs at or beyond the failure point
    // die with the discarded columns.
    std::erase_if(raw_starts_,
                  [&](const RawStart& rs) { return rs.start >= q_generated; });
    // A stage-2 breakdown inside add_panel / add_panel_finish leaves
    // pending_ one panel ahead of what the solver accepted (that
    // panel's stage 1 succeeded before the flush threw); re-align to
    // the accepted prefix.
    pending_ = q_generated - big_begin_;
    if (pending_ <= 0) {
      pending_ = 0;
      pending_starts_.clear();
      return q_generated;
    }
    // The accepted prefix's stage-1 factorizations all succeeded; try
    // to finalize it.  Dropping the broken panel shrinks the big-panel
    // Gram, so this flush can succeed where the in-band one threw.  If
    // the big panel is past the cliff even without it, drop the
    // pre-processed columns too — only columns before the open big
    // panel are known-final.
    try {
      return flush(ctx, basis, q_generated, r, l);
    } catch (const CholeskyBreakdown&) {
      pending_ = 0;
      pending_starts_.clear();
      raw_starts_.clear();
      return big_begin_;
    }
  }

 private:
  /// Stage 2 (Fig. 5 lines 16-19): one BCGS-PIP of the whole big panel
  /// of `pending_` columns against the final columns, followed by the
  /// triangular fix-up of the stage-1 coefficients and the L
  /// bookkeeping for Hessenberg assembly.
  index_t flush(OrthoContext& ctx, MatrixView basis, index_t q_end,
                MatrixView r, MatrixView l) {
    const index_t qprev = big_begin_;
    const index_t nbig = q_end - big_begin_;
    assert(nbig == pending_);

    ConstMatrixView qfinal = basis.columns(0, qprev);
    MatrixView big = basis.columns(qprev, nbig);
    dense::Matrix t_prev(qprev, nbig);
    dense::Matrix t_diag(nbig, nbig);
    // The stage-1 coefficients are fixed before stage 2 runs, so the
    // fix-up's R-block snapshot is result-independent trailing work:
    // it rides in the stage-2 fused-Gram reduce window.
    dense::Matrix rbig;
    bcgs_pip(ctx, qfinal, big, t_prev.view(), t_diag.view(), [&] {
      rbig = dense::copy_of(r.block(qprev, qprev, nbig, nbig));
    });

    // R fix-up (Fig. 5 lines 18-19):
    //   R[0:qprev, big]   += T_prev * R[big, big]
    //   R[big,  big]       = T_diag * R[big, big]
    if (qprev > 0) {
      dense::gemm_nn(1.0, t_prev.view(), rbig.view(), 1.0,
                     r.block(0, qprev, qprev, nbig));
    }
    dense::gemm_nn(1.0, t_diag.view(), rbig.view(), 0.0,
                   r.block(qprev, qprev, nbig, nbig));

    // Interior raw columns: L = final R.
    copy_r_columns_to_l(r, l, qprev, q_end);

    // MPK start columns inside the big panel were consumed in their
    // *pre-processed* state q-hat = Q_final_prev T_prev + Q_big T_diag:
    // their L columns are the stage-2 transform columns.
    for (const index_t start : pending_starts_) {
      const index_t local = start - qprev;
      assert(local >= 0 && local < nbig);
      MatrixView lc = l.block(0, start, l.rows, 1);
      dense::fill(lc, 0.0);
      for (index_t i = 0; i < qprev; ++i) l(i, start) = t_prev(i, local);
      for (index_t i = 0; i < nbig; ++i) l(qprev + i, start) = t_diag(i, local);
    }

    // Lookahead raw starts: MPK consumed alpha times the raw column, so
    // L(:, start) = alpha * R(:, start) — scale the L column the
    // interior copy above just wrote (exact: alpha is a power of two).
    for (auto it = raw_starts_.begin(); it != raw_starts_.end();) {
      if (it->start >= qprev && it->start < q_end) {
        if (it->alpha != 1.0) {
          for (index_t i = 0; i <= it->start; ++i) {
            l(i, it->start) *= it->alpha;
          }
        }
        it = raw_starts_.erase(it);
      } else {
        ++it;
      }
    }

    pending_starts_.clear();
    pending_ = 0;
    big_begin_ = q_end;
    return q_end;
  }

  struct RawStart {
    index_t start;
    double alpha;
  };

  index_t bs_;
  index_t big_begin_ = 1;  // first column of the open big panel
  index_t pending_ = 0;    // pre-processed columns awaiting stage 2
  std::vector<index_t> pending_starts_;
  std::vector<RawStart> raw_starts_;  // lookahead (raw-column) MPK starts
  index_t last_raw_start_ = -1;       // most recent scale, kept past flush
  double last_raw_alpha_ = 1.0;
  BcgsPipSplit split_;  // in-flight stage-1 state between begin and finish
};

}  // namespace

std::unique_ptr<BlockOrthoManager> make_bcgs2_manager(IntraKind intra) {
  return std::make_unique<Bcgs2Manager>(intra);
}

std::unique_ptr<BlockOrthoManager> make_bcgs_pip_manager() {
  return std::make_unique<BcgsPipManager>();
}

std::unique_ptr<BlockOrthoManager> make_bcgs_pip2_manager() {
  return std::make_unique<BcgsPip2Manager>();
}

std::unique_ptr<BlockOrthoManager> make_two_stage_manager(index_t bs) {
  return std::make_unique<TwoStageManager>(bs);
}

}  // namespace tsbo::ortho
