#include "ortho/measures.hpp"

#include "dense/blas3.hpp"
#include "dense/svd.hpp"

#include <cassert>
#include <span>

namespace tsbo::ortho {

dense::Matrix gather_multivector(par::Communicator* comm,
                                 dense::ConstMatrixView local, int root) {
  if (comm == nullptr || comm->size() == 1) {
    return dense::copy_of(local);
  }
  // Row counts first (tiny), then the data blocks.
  const double my_rows = static_cast<double>(local.rows);
  std::vector<double> counts = comm->gather(std::span(&my_rows, 1), root);

  // Pack my block contiguously (column-major local block).
  dense::Matrix packed = dense::copy_of(local);
  std::vector<double> all = comm->gather(
      std::span<const double>(packed.data().data(), packed.data().size()),
      root);

  if (comm->rank() != root) return {};

  dense::index_t total_rows = 0;
  for (const double c : counts) total_rows += static_cast<dense::index_t>(c);
  dense::Matrix out(total_rows, local.cols);

  std::size_t offset = 0;
  dense::index_t row0 = 0;
  for (const double c : counts) {
    const auto rows_r = static_cast<dense::index_t>(c);
    for (dense::index_t j = 0; j < local.cols; ++j) {
      for (dense::index_t i = 0; i < rows_r; ++i) {
        out(row0 + i, j) =
            all[offset + static_cast<std::size_t>(j) * rows_r + i];
      }
    }
    offset += static_cast<std::size_t>(rows_r) * local.cols;
    row0 += rows_r;
  }
  return out;
}

double orthogonality_error(OrthoContext& ctx, dense::ConstMatrixView q_local) {
  dense::Matrix g(q_local.cols, q_local.cols);
  block_dot(ctx, q_local, q_local, g.view());
  for (dense::index_t j = 0; j < g.cols(); ++j) g(j, j) -= 1.0;
  return dense::norm_2(g.view());
}

double condition_number(OrthoContext& ctx, dense::ConstMatrixView local) {
  if (ctx.comm == nullptr || ctx.comm->size() == 1) {
    return dense::cond_2(local);
  }
  dense::Matrix full = gather_multivector(ctx.comm, local, 0);
  double kappa = 0.0;
  if (ctx.comm->rank() == 0) kappa = dense::cond_2(full.view());
  ctx.comm->broadcast(std::span(&kappa, 1), 0);
  return kappa;
}

}  // namespace tsbo::ortho
